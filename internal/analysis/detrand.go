package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand flags nondeterminism sources in simulation-path packages:
// wall-clock reads, draws from the process-global math/rand stream,
// and map iteration whose observed order can leak into results. The
// simulator's contract is that a run is a pure function of its seed —
// Shards=1 must reproduce the sequential machine bit-for-bit and K>=2
// must equal its serial replay — so any unordered or ambient input in
// internal/sim, internal/machine, internal/scenario or
// internal/topology is a silent determinism killer.
//
// A map range is tolerated only in the classic collect-then-sort
// shape: every statement in the loop body either appends a range
// variable to a slice that a later sort.* / slices.* call in the same
// block orders, or deletes from the ranged map itself.
//
// Measurement code tagged //simlint:observer must draw randomness
// (ticker stagger phases) only from streams tagged //simlint:obsstream
// — drawing from the shared simulation stream was the PR 2 bug where
// configuring SampleInterval reordered the simulation's tie-break
// draws: the observer must not perturb the observed.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "flag wall-clock time, global math/rand and unordered map iteration in simulation-path packages",
	Run:  runDetrand,
}

// simPathSuffixes are the package path components that mark
// simulation-path code. Matching is by path segment, so both
// cwnsim/internal/sim and a fixture module's internal/sim qualify.
var simPathSuffixes = []string{
	"internal/sim",
	"internal/machine",
	"internal/scenario",
	"internal/topology",
}

func isSimPath(path string) bool {
	for _, n := range simPathSuffixes {
		if path == n || strings.HasSuffix(path, "/"+n) || strings.Contains(path, "/"+n+"/") || strings.HasPrefix(path, n+"/") {
			return true
		}
	}
	return false
}

// randConstructors are the math/rand package-level functions that
// build an explicitly-seeded generator rather than drawing from the
// global stream.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDetrand(pass *Pass) error {
	if !isSimPath(pass.Pkg.Path()) {
		return nil
	}
	tags := pass.CollectTags()
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.FileStart).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pass.checkAmbientInput(n.Sel)
			case *ast.RangeStmt:
				pass.checkMapRange(file, n)
			case *ast.FuncDecl:
				if obj := pass.TypesInfo.Defs[n.Name]; obj != nil {
					if _, ok := tags.FuncTag(obj, "observer"); ok {
						pass.checkObserverDraws(n)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkAmbientInput reports uses of time.Now and of global math/rand
// top-level functions.
func (pass *Pass) checkAmbientInput(id *ast.Ident) {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine: rng.Intn on an owned stream
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(id.Pos(), "time.Now is wall-clock, not virtual time: simulation-path code must derive all times from the engine clock (sim.Engine.Now) so runs are pure functions of the seed")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(id.Pos(), "%s.%s draws from the process-global random stream: simulation-path code must use an explicitly seeded *rand.Rand (e.g. sim.Engine.Rng or a salted stream) so runs are reproducible", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkMapRange reports a range over a map unless the body only
// collects keys/values into slices that are subsequently sorted in the
// enclosing block (or only deletes from the ranged map).
func (pass *Pass) checkMapRange(file *ast.File, rs *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	var collected []string
	benign := true
	for _, stmt := range rs.Body.List {
		switch s := stmt.(type) {
		case *ast.AssignStmt:
			if target, ok := pass.appendTarget(s); ok {
				collected = append(collected, target)
				continue
			}
			benign = false
		case *ast.ExprStmt:
			if pass.isDeleteFrom(s.X, rs.X) {
				continue
			}
			benign = false
		default:
			benign = false
		}
		if !benign {
			break
		}
	}
	if benign {
		for _, target := range collected {
			if !pass.sortedLater(file, rs, target) {
				benign = false
				break
			}
		}
	}
	if !benign {
		pass.Reportf(rs.Pos(), "map iteration order is nondeterministic and this loop's effects depend on it: collect into a slice and sort before use, or restructure to avoid the map (determinism contract: a run is a pure function of its seed)")
	}
}

// appendTarget matches `X = append(X, ...)` and returns X's source
// form.
func (pass *Pass) appendTarget(s *ast.AssignStmt) (string, bool) {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return "", false
	}
	call, ok := s.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return "", false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return "", false
	}
	lhs := types.ExprString(s.Lhs[0])
	if types.ExprString(call.Args[0]) != lhs {
		return "", false
	}
	return lhs, true
}

// isDeleteFrom matches `delete(m, k)` on the ranged map m.
func (pass *Pass) isDeleteFrom(e ast.Expr, ranged ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "delete" {
		return false
	}
	return types.ExprString(call.Args[0]) == types.ExprString(ranged)
}

// sortedLater reports whether a statement after rs in its enclosing
// statement list passes target to a sort or slices function.
func (pass *Pass) sortedLater(file *ast.File, rs *ast.RangeStmt, target string) bool {
	list, idx := enclosingList(file, rs)
	if list == nil {
		return false
	}
	for _, stmt := range list[idx+1:] {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == target {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// enclosingList finds the statement list directly containing stmt and
// its index there.
func enclosingList(file *ast.File, stmt ast.Stmt) ([]ast.Stmt, int) {
	var list []ast.Stmt
	idx := -1
	ast.Inspect(file, func(n ast.Node) bool {
		if idx >= 0 {
			return false
		}
		var stmts []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			stmts = n.List
		case *ast.CaseClause:
			stmts = n.Body
		case *ast.CommClause:
			stmts = n.Body
		default:
			return true
		}
		for i, s := range stmts {
			if s == stmt {
				list, idx = stmts, i
				return false
			}
		}
		return true
	})
	return list, idx
}

// checkObserverDraws flags draws from any *math/rand.Rand inside an
// observer-tagged function unless the stream is rooted at an object
// tagged //simlint:obsstream.
func (pass *Pass) checkObserverDraws(fd *ast.FuncDecl) {
	tags := pass.CollectTags()
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.MethodVal {
			return true
		}
		recv := selection.Recv()
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return true
		}
		if p := named.Obj().Pkg().Path(); p != "math/rand" && p != "math/rand/v2" {
			return true
		}
		if named.Obj().Name() != "Rand" {
			return true
		}
		if pass.rootedAtObsStream(tags, sel.X) {
			return true
		}
		pass.Reportf(sel.Pos(), "observer code draws from a simulation RNG stream: measurement must use its own salted stream (tag the field //simlint:obsstream) so that enabling sampling cannot reorder the simulation's tie-break draws")
		return true
	})
}

// rootedAtObsStream reports whether the receiver expression resolves
// through an object tagged //simlint:obsstream.
func (pass *Pass) rootedAtObsStream(tags *Tags, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		_, ok := tags.FieldTag(obj, "obsstream")
		return ok
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.Uses[e.Sel]
		if _, ok := tags.FieldTag(obj, "obsstream"); ok {
			return true
		}
		return pass.rootedAtObsStream(tags, e.X)
	case *ast.ParenExpr:
		return pass.rootedAtObsStream(tags, e.X)
	}
	return false
}

package machine

// Pool carries the machine's per-run free lists — wire messages, goals,
// pending tasks, job states, pending-slab slot arrays — across runs, so
// a sweep replicating one configuration over many seeds pays the object
// warm-up once instead of re-allocating the whole working set every run
// (ROADMAP: machine-object reuse across runs in sweeps).
//
// Usage: set Config.Pool to a *Pool and run machines sequentially; each
// machine borrows the pooled lists at construction and returns what it
// freed at finalize. The pool affects allocation only — never results:
// recycled objects are fully reinitialized on reuse, so pooled and
// unpooled runs are bit-for-bit identical (pinned by regression test).
//
// The lists are slice stacks rather than intrusive linked lists: a
// pool retains the run's whole working set live across runs, and the
// garbage collector re-marks it every cycle — scanning a few contiguous
// pointer arrays, where chasing per-object nextFree chains made pooled
// runs ~3% slower than unpooled ones despite ~38% fewer allocations
// (the PR 4 ledger regression this layout fixes; current numbers in
// the ledger's pooling section).
//
// A Pool is NOT safe for concurrent use: give each worker goroutine its
// own (experiments.RunAll does exactly that).
type Pool struct {
	msg     []*wireMsg
	goal    []*Goal
	pending []*pendingTask
	job     []*jobState
	slab    [][]pendingSlot
}

// lend hands the pooled lists to a machine at construction.
func (p *Pool) lend(m *Machine) {
	m.msgFree, p.msg = p.msg, nil
	m.goalFree, p.goal = p.goal, nil
	m.pendingFree, p.pending = p.pending, nil
	m.jobFree, p.job = p.job, nil
	m.slabFree, p.slab = p.slab, nil
}

// reclaim takes the free lists back from a finished machine. Objects
// still live in the dead machine (queued at MaxTime, held on downed
// links) are simply not on the lists and stay with the machine for the
// garbage collector.
func (p *Pool) reclaim(m *Machine) {
	p.msg, m.msgFree = m.msgFree, nil
	p.goal, m.goalFree = m.goalFree, nil
	p.pending, m.pendingFree = m.pendingFree, nil
	p.job, m.jobFree = m.jobFree, nil
	p.slab, m.slabFree = m.slabFree, nil
}

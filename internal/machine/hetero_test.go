package machine

import (
	"math"
	"testing"

	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// exportBalance is an omniscient test balancer for a 1x2 machine: PE 0
// (where every job lands) runs a fast ticker that exports queued goals
// to PE 1 whenever PE 1's queue is shorter. Under saturation both
// queues stay non-empty, so each PE's completion count is limited by
// its service speed alone — exactly what a heterogeneous-speed test
// needs.
type exportBalance struct{}

func (exportBalance) Name() string   { return "export-balance" }
func (exportBalance) Setup(*Machine) {}
func (exportBalance) NewNode(pe *PE) NodeStrategy {
	n := balanceNode{pe}
	if pe.ID() == 0 {
		pe.Machine().NewTicker(pe, 2, n.balance)
	}
	return AdaptNode(n)
}

type balanceNode struct{ pe *PE }

func (n balanceNode) balance() {
	other := n.pe.Machine().PE(1)
	for n.pe.queueLen() > other.queueLen()+1 {
		g := n.pe.TakeOldestQueuedGoal()
		if g == nil {
			return
		}
		n.pe.SendGoal(1, g)
	}
}

func (n balanceNode) PlaceNewGoal(g *Goal)          { n.pe.Accept(g) }
func (n balanceNode) GoalArrived(g *Goal, from int) { n.pe.Accept(g) }
func (n balanceNode) Control(int, any)              {}

// TestHeterogeneousSpeedsSequential pins the service-time arithmetic
// exactly: a 2x PE serves each grain in 10/2=5 units and each combine
// in 5/2=2 (integer clock, floored), so a chain's makespan is exactly
// computable.
func TestHeterogeneousSpeedsSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.PESpeeds = []float64{2}
	st := New(topology.NewSingle(), workload.NewChain(10), keepLocal{}, cfg).Run()
	if !st.Completed {
		t.Fatal("run did not complete")
	}
	if st.Makespan != 68 { // 10 goals at 5 units + 9 combines at 2
		t.Fatalf("2x-speed chain makespan = %d, want 68 (=10*5+9*2)", st.Makespan)
	}
	if st.Utilization() != 1 {
		t.Fatalf("utilization = %f, want exactly 1", st.Utilization())
	}
}

// TestHeterogeneousSpeedsEndToEnd drives a saturated job stream through
// a 1x2 machine whose second PE runs at double speed: under greedy
// placement the fast PE completes ~2x the goals of the slow one while
// both stay essentially fully busy, and per-PE busy time reflects the
// scaled service (busy ≈ goals x scaled service time).
func TestHeterogeneousSpeedsEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.PESpeeds = []float64{1, 2}
	cfg.MaxTime = 10_000
	tree := workload.NewChain(1) // one unit-work goal per job
	st := NewStream(topology.NewGrid(1, 2), NewFixedInterval(tree, 2, 5000), exportBalance{}, cfg).Run()

	// The stream (a job every 2 units against a combined capacity of
	// 0.3 goals/unit) saturates the machine; the run is cut off at
	// MaxTime with both PEs working flat out.
	if st.Completed {
		t.Fatal("stream drained — not saturated, the test premise is broken")
	}
	slow, fast := st.GoalsPerPE[0], st.GoalsPerPE[1]
	if slow == 0 || fast == 0 {
		t.Fatalf("goals per PE = %d/%d, both must work", slow, fast)
	}
	ratio := float64(fast) / float64(slow)
	if math.Abs(ratio-2) > 0.1 {
		t.Fatalf("fast PE executed %.2fx the slow PE's goals (%d vs %d), want ~2x", ratio, fast, slow)
	}
	// Both PEs essentially continuously busy: utilization reflects the
	// scaled service times, not the raw goal counts.
	for i := 0; i < 2; i++ {
		if u := st.PEUtilization(i); u < 0.95 {
			t.Fatalf("PE %d utilization = %f, want ~1 under saturation", i, u)
		}
	}
	// Busy time per goal: 10 units on the slow PE, 5 on the fast one.
	// The in-service remainder at MaxTime skews the division by < 1.
	if got := float64(st.BusyPerPE[0]) / float64(slow); math.Abs(got-10) > 1 {
		t.Fatalf("slow PE busy/goal = %.2f, want ~10", got)
	}
	if got := float64(st.BusyPerPE[1]) / float64(fast); math.Abs(got-5) > 1 {
		t.Fatalf("fast PE busy/goal = %.2f, want ~5", got)
	}
}

// TestValidateRejectsNonFinitePESpeeds pins the NaN/Inf fix: the old
// `s <= 0` check let NaN through (every comparison with NaN is false)
// and a NaN speed would silently poison every service duration.
func TestValidateRejectsNonFinitePESpeeds(t *testing.T) {
	nan := math.NaN()
	for _, bad := range [][]float64{
		{nan},
		{math.Inf(1)},
		{math.Inf(-1)},
		{1, nan},
		{0},
		{-1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PESpeeds = %v accepted, want panic", bad)
				}
			}()
			cfg := DefaultConfig()
			cfg.PESpeeds = bad
			New(topology.NewSingle(), workload.NewFib(2), keepLocal{}, cfg)
		}()
	}
}

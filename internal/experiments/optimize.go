package experiments

import (
	"sort"

	"cwnsim/internal/report"
)

// The paper, Section 3.1: "In the interest of fairness, the parameters
// must be chosen in such a way each scheme is working at its best. We
// chose a few sample points in the space of planned experiments, and ran
// the simulations for various combination of parameters. The winning
// combinations were used for the comparison experiments."
//
// OptimizeCWN and OptimizeGM reproduce that process: evaluate every
// parameter combination at the sample points and rank by mean speedup.

// OptOutcome is one parameter combination's aggregate score.
type OptOutcome struct {
	Strategy    StrategySpec
	MeanSpeedup float64
	Runs        int
}

// SamplePoints returns the optimization sample points for a topology
// class: a medium and a large problem on a small and a medium machine
// drawn from the planned experiment space.
func SamplePoints(topos []TopoSpec, quick bool) (ts []TopoSpec, wls []WorkloadSpec) {
	if len(topos) < 3 {
		panic("experiments: need at least 3 topology sizes for sample points")
	}
	ts = []TopoSpec{topos[0], topos[2]} // 25 and 100 PEs
	wls = []WorkloadSpec{Fib(11), DC(377)}
	if !quick {
		wls = append(wls, Fib(15))
	}
	return ts, wls
}

// OptimizeCWN scores every (radius, horizon) combination over the
// sample points and returns outcomes sorted best-first.
func OptimizeCWN(topos []TopoSpec, wls []WorkloadSpec, radii, horizons []int, workers int) ([]OptOutcome, error) {
	var cands []StrategySpec
	for _, r := range radii {
		for _, h := range horizons {
			if h <= r {
				cands = append(cands, CWN(r, h))
			}
		}
	}
	return scoreCandidates(cands, topos, wls, workers)
}

// OptimizeGM scores every (low, high, interval) combination over the
// sample points and returns outcomes sorted best-first.
func OptimizeGM(topos []TopoSpec, wls []WorkloadSpec, lows, highs []int, intervals []int64, workers int) ([]OptOutcome, error) {
	var cands []StrategySpec
	for _, lo := range lows {
		for _, hi := range highs {
			if hi < lo {
				continue
			}
			for _, iv := range intervals {
				cands = append(cands, GM(lo, hi, iv))
			}
		}
	}
	return scoreCandidates(cands, topos, wls, workers)
}

func scoreCandidates(cands []StrategySpec, topos []TopoSpec, wls []WorkloadSpec, workers int) ([]OptOutcome, error) {
	var specs []RunSpec
	for _, c := range cands {
		for _, ts := range topos {
			for _, wl := range wls {
				specs = append(specs, RunSpec{Topo: ts, Workload: wl, Strategy: c})
			}
		}
	}
	results, err := RunAll(specs, workers)
	if err != nil {
		return nil, err
	}
	perCand := len(topos) * len(wls)
	out := make([]OptOutcome, len(cands))
	for i, c := range cands {
		var sum float64
		for j := 0; j < perCand; j++ {
			sum += results[i*perCand+j].Speedup
		}
		out[i] = OptOutcome{Strategy: c, MeanSpeedup: sum / float64(perCand), Runs: perCand}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].MeanSpeedup > out[b].MeanSpeedup })
	return out, nil
}

// OptimizationTable renders the Table 1 analogue: the best parameters
// found per topology class alongside the paper's selections.
func OptimizationTable(gridCWN, dlmCWN, gridGM, dlmGM OptOutcome) *report.Table {
	tb := report.NewTable("Selected parameters (Table 1)",
		"parameter", "grids (found)", "grids (paper)", "lattice-meshes (found)", "lattice-meshes (paper)")
	tb.AddRow("CWN radius", gridCWN.Strategy.Radius, 9, dlmCWN.Strategy.Radius, 5)
	tb.AddRow("CWN horizon", gridCWN.Strategy.Horizon, 2, dlmCWN.Strategy.Horizon, 1)
	tb.AddRow("GM high-water-mark", gridGM.Strategy.High, 2, dlmGM.Strategy.High, 1)
	tb.AddRow("GM low-water-mark", gridGM.Strategy.Low, 1, dlmGM.Strategy.Low, 1)
	tb.AddRow("GM interval", gridGM.Strategy.Interval, 20, dlmGM.Strategy.Interval, 20)
	return tb
}

// DefaultCWNGridSearch returns the parameter grids swept for CWN.
func DefaultCWNGridSearch(quick bool) (radii, horizons []int) {
	if quick {
		return []int{3, 5, 9}, []int{1, 2}
	}
	return []int{3, 5, 7, 9, 11}, []int{0, 1, 2, 3}
}

// DefaultGMGridSearch returns the parameter grids swept for GM.
func DefaultGMGridSearch(quick bool) (lows, highs []int, intervals []int64) {
	if quick {
		return []int{1}, []int{1, 2}, []int64{20}
	}
	return []int{1, 2}, []int{1, 2, 3, 4}, []int64{10, 20, 40}
}

// Package scenario scripts dynamic-environment perturbations into a
// run: a deterministic timeline of events the machine replays during
// the simulation. The paper compares CWN and the Gradient Model on a
// uniform, static machine; this package supplies the missing axis —
// how a *dynamic* load-distribution method re-distributes after the
// environment shifts under it.
//
// A Script is an ordered list of Events, each firing at a virtual
// time:
//
//   - SlowPE / RestorePE   rescale PE service speed mid-run (in-flight
//     service is rescaled proportionally, not restarted)
//   - FailPE / RecoverPE   compute blackout: the PE stops serving, its
//     queued goals are evacuated to the nearest live PE, and arriving
//     goals are redirected; pending tasks and queued responses freeze
//     in place until recovery (the communication co-processor stays
//     up, so routing through a failed PE still works)
//   - CrashPE              crash with state loss: queued and in-flight
//     goals, queued responses and pending tasks are destroyed; every
//     job that lost state aborts and retries from its root, with
//     GoalsLost/JobsAborted/JobsRetried accounting. RecoverPE brings a
//     crashed PE back, empty
//   - DegradeLink / RestoreLink   multiply a link's occupancy time, or
//     (factor 0) take it down entirely — messages queue at the sender
//     and flush in order on restore
//   - LoadShock   multiply the arrival process's offered rate for all
//     subsequently drawn inter-arrival gaps
//   - Chaos       a random-failure generator rather than a concrete
//     event: exponential MTBF/MTTR processes over uniformly chosen
//     PEs, drawn from a dedicated salted stream of the generator seed.
//     Script.Expand resolves it into a concrete fail/recover (or
//     crash-mode) timeline at machine construction — the same seed,
//     machine size and horizon always produce the identical timeline
//
// Scripts are plain data: build them programmatically or parse the
// compact text form used by spec files and the CLI, e.g.
//
//	fail:pes=25%@t=5000,recover@t=10000
//	crash:pes=25%@t=5000,recover@t=10000
//	slow:pes=0+1:x=0.5@t=2000,restore:pes=0+1@t=4000
//	degradelink:a=0:b=1:x=0@t=100,restorelink:a=0:b=1@t=300
//	shock:x=3@t=1000,shock:x=1@t=2000
//	chaos:mtbf=3000:mttr=800@seed=7
//
// An empty (or nil) Script schedules nothing and leaves a run
// bit-for-bit identical to one without a scenario — pinned by
// regression test — so the scripted machinery costs nothing when
// unused.
//
// Availability transitions also feed the machine's event-driven
// strategy API: failing/recovering PEs announce PEFailed/PERecovered
// with their immediate sentinel broadcast, and link outages notify
// their endpoints — strategies opting in (machine.FailureAware) can
// re-steer the moment the environment shifts instead of waiting for
// the next periodic load word.
//
// Recovery analysis: AnalyzeRecovery turns a windowed sojourn-p99
// series into the subsystem's headline metrics — the pre-disruption
// baseline p99, the peak during the disruption, and the time after the
// last restore event until the p99 holds steady at baseline again. Two
// keyings of the series exist: completion-time windows
// (Stats.SojournWindows, where jobs injected during the disruption
// echo into post-restore windows as they straggle home) and
// injection-time windows (Stats.InjSojournWindows, isolating what
// newly arriving jobs experienced); runs report both.
package scenario

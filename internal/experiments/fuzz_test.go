package experiments

import (
	"testing"
	"testing/quick"
)

// The parsers must return errors, never panic, on arbitrary input.

func TestQuickParseTopoNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseTopo(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseWorkloadNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseWorkload(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseStrategyNeverPanics(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = ParseStrategy(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Structured fuzz: colon-joined fragments resembling real inputs.
func TestQuickParseStructuredInputs(t *testing.T) {
	kinds := []string{"grid", "torus", "dlm", "hypercube", "ring", "chordal", "single", "bogus", ""}
	f := func(k uint8, a, b, c int8) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		s := kinds[int(k)%len(kinds)]
		switch int(a) % 3 {
		case 0:
			s += ":" + itoa(int(b)) + "x" + itoa(int(c))
		case 1:
			s += ":" + itoa(int(b)) + ":" + itoa(int(c))
		case 2:
			s += ":" + itoa(int(b))
		}
		if spec, err := ParseTopo(s); err == nil {
			// Parsed specs may still describe invalid machines (e.g.
			// negative sizes); Build is allowed to panic for those, so
			// only check the label is stable.
			_ = spec.Label()
			_ = spec.PEs()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func itoa(v int) string {
	// tiny strconv.Itoa wrapper to keep the fuzz input printable
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

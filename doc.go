// Package cwnsim is a from-scratch Go reproduction of L.V. Kale,
// "Comparing the Performance of Two Dynamic Load Distribution Methods"
// (ICPP 1988 / UIUCDCS-R-87-1387) — a discrete-event simulation study
// of two distributed load-balancing schemes, Contracting Within a
// Neighborhood (CWN) and Lin & Keller's Gradient Model (GM) — grown
// into an open-system serving benchmark for dynamic load balancers on
// message-passing multiprocessors.
//
// Two run lifecycles share one machine model:
//
//   - Closed system (the paper): one tree-structured computation is
//     injected at time zero and the machine drains; the figure of merit
//     is makespan/speedup. machine.New builds these runs.
//   - Open system (the extension): a machine.JobSource injects a stream
//     of root goals over virtual time — fixed-interval, Poisson, or
//     bursty arrivals — and every job's sojourn time (injection to root
//     response) is recorded; the figures of merit are mean/p50/p99
//     latency, throughput, and steady-state utilization with warm-up
//     exclusion. machine.NewStream builds these runs, and the single
//     job is just the trivial stream, so paper results are preserved
//     bit for bit.
//
// Either lifecycle can run through a scripted dynamic environment
// (internal/scenario): a deterministic timeline of PE slowdowns,
// compute blackouts with evacuation/requeue semantics, link
// degradation and outages, and arrival-rate shocks, with recovery
// metrics — time to restore steady p99, queue-imbalance curves,
// requeued-goal counts — reported per run. An empty scenario is free:
// unscripted runs stay bit-for-bit identical.
//
// The library layers, bottom-up:
//
//	internal/sim         deterministic discrete-event engine (ORACLE's kernel)
//	internal/topology    grids, tori, double-lattice-meshes, hypercubes, ...
//	internal/workload    fib/dc/random task trees (the simulated programs)
//	internal/scenario    scripted perturbation timelines + recovery analysis
//	internal/machine     PEs, channels with contention, job streams, routing
//	internal/core        CWN, GM, ACWN, and baseline strategies
//	internal/metrics     histograms, summaries, exact-percentile samples
//	internal/report      text tables, ASCII charts, heat maps, CSV
//	internal/experiments registry-driven specs and the paper's suites
//
// The experiments layer dispatches topologies, workloads, strategies
// and arrival processes through registries (experiments.RegisterTopology
// and friends), so new kinds plug in by name and flow through JSON spec
// files, the CLI parsers and every sweep without touching the dispatch.
//
// # Determinism
//
// A run is a pure function of its seed. Three disjoint seeded streams
// keep that guarantee modular: the engine stream drives every choice
// inside the simulated system (tie-breaks, simulation ticker phases),
// the source stream drives job arrival times, and the observer stream
// drives sampling phases — so neither changing the workload stream nor
// turning monitoring on or off perturbs the simulated result. The seed
// regression tests in internal/experiments pin this bit for bit.
//
// # Performance
//
// The hot path allocates nothing in steady state: events are pooled and
// dispatched through typed actions instead of closures (internal/sim),
// wire messages, goals, pending tasks and job states are recycled
// through free lists, and each PE's ready queue is a ring buffer
// (internal/machine). For unbounded job streams, Config.SojournBound
// collapses latency samples into a fixed-memory streaming histogram,
// and Config.TrackGoalDetail gates the per-goal hop/queue-delay
// bookkeeping off for sweeps that only read latency and throughput.
// The committed perf ledger BENCH_PR3.json (regenerate with `go run
// ./cmd/bench`) pins ns/op, allocs/op and events/sec for a fixed
// closed+open matrix against the frozen pre-optimization baseline,
// and records one-off A/B decisions such as the rejected 4-ary engine
// heap.
//
// Executables: cmd/lbsim (single runs), cmd/paper (regenerate every
// table and figure), cmd/optimize (the Table 1 parameter sweeps),
// cmd/sweep (ad-hoc batches), cmd/validate (the paper's claims as
// checks), cmd/serve (arrival-rate versus tail-latency sweeps for the
// open system), and cmd/bench (the performance ledger). The benchmarks
// in bench_test.go regenerate each table/figure at reduced scale and
// report achieved speedup/utilization as custom benchmark metrics;
// BenchmarkLedger tracks the allocation and event-throughput figures.
package cwnsim

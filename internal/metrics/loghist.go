package metrics

import "math"

// logHist is the bounded-memory streaming form a Sample collapses into:
// a log-linear histogram over non-negative values, HDR-histogram style.
// Each power-of-two range [2^e, 2^(e+1)) splits into 32 equal
// sub-buckets, so a bucket's representative value is within 1/32 (~3%)
// of any observation it holds; values below 1 share one underflow
// bucket (absolute error < 1 — sojourn times are integers ≥ 0). Memory
// is a fixed ~16 KB regardless of stream length, and the structure is
// fully deterministic: no sampling, no randomness.
//
//simlint:mergeable
type logHist struct {
	counts []int64
	n      int64
	sum    float64
	lo, hi float64 // exact min/max
}

const (
	histSubBits = 5
	histSubs    = 1 << histSubBits // sub-buckets per octave
	histOctaves = 63               // covers [1, 2^63)
	histBuckets = 1 + histOctaves*histSubs
)

func newLogHist() *logHist {
	return &logHist{counts: make([]int64, histBuckets)}
}

// bucket maps a value to its bucket index. Negative values clamp to the
// underflow bucket (latency-style data is non-negative by construction).
func bucket(x float64) int {
	if x < 1 || math.IsNaN(x) {
		return 0
	}
	frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
	if exp > histOctaves {
		return histBuckets - 1
	}
	sub := int((frac - 0.5) * (2 * histSubs))
	if sub >= histSubs { // frac == nextafter(1, 0) rounding guard
		sub = histSubs - 1
	}
	return 1 + (exp-1)*histSubs + sub
}

// value returns the bucket's representative (its geometric middle).
func value(idx int) float64 {
	if idx == 0 {
		return 0.5
	}
	e := (idx-1)/histSubs + 1
	sub := (idx - 1) % histSubs
	frac := 0.5 + (float64(sub)+0.5)/(2*histSubs)
	return math.Ldexp(frac, e)
}

func (h *logHist) add(x float64) {
	h.counts[bucket(x)]++
	if h.n == 0 {
		h.lo, h.hi = x, x
	} else {
		if x < h.lo {
			h.lo = x
		}
		if x > h.hi {
			h.hi = x
		}
	}
	h.n++
	h.sum += x
}

// merge folds o's observations into h. Bucket counts add exactly; the
// result is identical to having streamed both inputs into one histogram.
func (h *logHist) merge(o *logHist) {
	if o.n == 0 {
		return
	}
	if h.n == 0 {
		h.lo, h.hi = o.lo, o.hi
	} else {
		if o.lo < h.lo {
			h.lo = o.lo
		}
		if o.hi > h.hi {
			h.hi = o.hi
		}
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.n += o.n
	h.sum += o.sum
}

func (h *logHist) mean() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.sum / float64(h.n)
}

func (h *logHist) min() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.lo
}

func (h *logHist) max() float64 {
	if h.n == 0 {
		return math.NaN()
	}
	return h.hi
}

// percentile answers the nearest-rank quantile from the histogram,
// clamped to the exact observed range so p→0 and p→1 stay honest.
func (h *logHist) percentile(p float64) float64 {
	if h.n == 0 {
		return math.NaN()
	}
	need := int64(math.Ceil(p * float64(h.n)))
	if need < 1 {
		need = 1
	}
	// The extreme ranks are known exactly.
	if need == 1 {
		return h.lo
	}
	if need == h.n {
		return h.hi
	}
	var cum int64
	for idx, c := range h.counts {
		cum += c
		if cum >= need {
			v := value(idx)
			if v < h.lo {
				v = h.lo
			}
			if v > h.hi {
				v = h.hi
			}
			return v
		}
	}
	return h.hi
}

// Command validate re-checks every qualitative claim of the paper
// against fresh simulations and prints PASS/FAIL per claim — the
// reproduction validating itself. Exit status 1 if any claim fails.
//
//	go run ./cmd/validate          # full scale (tens of seconds)
//	go run ./cmd/validate -quick   # reduced problems (a few seconds)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cwnsim/internal/experiments"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "reduced problem sizes")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	)
	flag.Parse()

	start := time.Now()
	results := experiments.RunClaims(*quick, *workers)
	failed := 0
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failed++
		}
		fmt.Printf("[%s] %-22s %s\n", status, r.ID, r.Statement)
		fmt.Printf("       %s\n", r.Detail)
	}
	fmt.Printf("\n%d/%d claims hold (%v)\n", len(results)-failed, len(results), time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		os.Exit(1)
	}
}

package machine

// Strategy is a load-distribution scheme. One Strategy value configures
// a whole machine; NewNode supplies the per-PE state. Implementations
// live in package core (CWN, the Gradient Model, baselines).
//
// Strategies run on the PEs' communication co-processors, as the paper
// assumes: their decisions cost channel time (for the messages they
// send) but never PE compute time.
type Strategy interface {
	// Name identifies the strategy in reports, e.g. "CWN(r=9,h=2)".
	Name() string
	// Setup runs once before the simulation starts, after the machine
	// is wired. Strategies typically capture the topology diameter or
	// validate parameters here.
	Setup(m *Machine)
	// NewNode returns the per-PE strategy state. Called once per PE
	// after Setup. Strategies register periodic processes here via
	// Machine.NewTicker.
	NewNode(pe *PE) NodeStrategy
}

// NodeStrategy is the per-PE half of a Strategy.
type NodeStrategy interface {
	// PlaceNewGoal decides where a goal created on this PE goes: keep
	// it (pe.Accept) or ship it (pe.SendGoal).
	PlaceNewGoal(g *Goal)
	// GoalArrived handles a goal message delivered from neighbor
	// `from`: accept it or forward it on.
	GoalArrived(g *Goal, from int)
	// Control handles a strategy control payload from neighbor `from`
	// (e.g. a Gradient Model proximity update). Strategies that use no
	// control traffic may ignore it.
	Control(from int, payload any)
}

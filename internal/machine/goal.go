package machine

import (
	"cwnsim/internal/sim"
	"cwnsim/internal/workload"
)

// Goal is one task instance in flight: the unit of load distribution.
// A goal is created on the PE executing its parent, placed by the
// strategy (possibly travelling several hops), accepted by exactly one
// PE, executed there once, and never moved again.
//
// Goal objects are pooled: once a goal has executed and (for inner
// tasks) its children's responses have been combined, the machine
// recycles the object for a future goal. Strategies must therefore not
// retain a *Goal after handing it back to the machine via Accept,
// SendGoal or RouteGoal — the shipped strategies never do. The
// poolsafe analyzer (internal/analysis) enforces the machine-side
// discipline at vet time.
//
//simlint:pooled
type Goal struct {
	// ID is unique within a run, in creation order (0 = the first
	// job's root).
	ID int64
	// Task is the immutable tree node this goal evaluates.
	Task *workload.Task
	// job is the injected job this goal descends from; its tree supplies
	// the Combine function and its injection time anchors the sojourn
	// measurement when the root goal responds.
	job *jobState
	// Origin is the PE on which the goal was created.
	Origin int
	// ParentPE is where the parent task waits; responses are routed
	// there. -1 for the root goal.
	ParentPE int
	// ParentID is the parent goal's ID (-1 for the root).
	ParentID int64
	// Hops counts link/bus traversals so far — the paper's "count field
	// that says how many hops the message has travelled from the
	// source". For CWN it includes backtracking, so it can exceed the
	// final topological distance from Origin.
	Hops int
	// CreatedAt and AcceptedAt record virtual times for agility stats.
	CreatedAt  sim.Time
	AcceptedAt sim.Time

	// epoch snapshots the job's attempt epoch at creation. A crash
	// (state-loss failure) aborts a job by bumping its epoch; goals
	// carrying an older epoch are stale — their attempt is dead — and
	// the machine discards them wherever they surface (delivery,
	// service completion). Only consulted on lossy (crash-scripted)
	// runs.
	epoch uint64
}

// response carries a completed goal's value back to its parent task.
type response struct {
	dstPE  int   // the parent's PE
	goalID int64 // the *parent* goal awaiting this value
	value  int64
	hops   int
}

// itemKind discriminates ready-queue entries.
type itemKind uint8

const (
	itemGoal itemKind = iota
	itemResponse
)

// item is one entry in a PE's ready queue: a message waiting to be
// processed (the paper's definition of load).
type item struct {
	kind itemKind
	goal *Goal
	resp response
}

// pendingTask is a task that has spawned children and awaits their
// responses. It never migrates (Section 2 of the paper). Pending tasks
// are pooled alongside goals; vals keeps its backing array across
// reuses.
//
//simlint:pooled
type pendingTask struct {
	goal      *Goal
	remaining int
	vals      []int64
}

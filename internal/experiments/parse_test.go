package experiments

import "testing"

func TestParseTopo(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"grid:10x10", "grid-10x10"},
		{"torus:4x8", "torus-4x8"},
		{"dlm:10x10:5", "dlm-10x10-s5"},
		{"hypercube:7", "hypercube-d7"},
		{"torus3d:4x4x4", "torus3d-4x4x4"},
		{"chordal:16:4", "chordal-16-c4"},
		{"ring:9", "ring-9"},
		{"complete:6", "complete-6"},
		{"star:5", "star-5"},
		{"bus:8", "bus-8"},
		{"single", "single"},
	}
	for _, c := range good {
		ts, err := ParseTopo(c.in)
		if err != nil {
			t.Errorf("ParseTopo(%q): %v", c.in, err)
			continue
		}
		if ts.Label() != c.want {
			t.Errorf("ParseTopo(%q) = %s, want %s", c.in, ts.Label(), c.want)
		}
		ts.Build() // must construct
	}
	bad := []string{"", "grid", "grid:10", "grid:ax b", "dlm:10x10", "dlm:10x10:x", "hypercube", "hypercube:x", "ring:x", "mobius:4", "torus3d:4x4", "torus3d:axbxc", "chordal:16", "chordal:x:4"}
	for _, in := range bad {
		if _, err := ParseTopo(in); err == nil {
			t.Errorf("ParseTopo(%q) succeeded, want error", in)
		}
	}
}

func TestParseWorkload(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"fib:15", "fib(15)"},
		{"dc:4181", "dc(1,4181)"},
		{"dc:5:17", "dc(5,17)"},
		{"binary:6", "binary(6)"},
		{"skew:10", "skew(10)"},
		{"chain:50", "chain(50)"},
		{"random:200:7", "random(200,seed=7)"},
	}
	for _, c := range good {
		ws, err := ParseWorkload(c.in)
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", c.in, err)
			continue
		}
		if ws.Label() != c.want {
			t.Errorf("ParseWorkload(%q) = %s, want %s", c.in, ws.Label(), c.want)
		}
		ws.Build()
	}
	bad := []string{"", "fib", "fib:x", "dc", "dc:1:2:3", "random", "ackermann:3"}
	for _, in := range bad {
		if _, err := ParseWorkload(in); err == nil {
			t.Errorf("ParseWorkload(%q) succeeded, want error", in)
		}
	}
}

func TestParseStrategy(t *testing.T) {
	good := []struct {
		in   string
		want string
	}{
		{"cwn:9:2", "CWN(r=9,h=2)"},
		{"gm:1:2:20", "GM(l=1,h=2,i=20)"},
		{"local", "Local"},
		{"randomwalk:3", "RandomWalk(3)"},
		{"roundrobin", "RoundRobin"},
		{"worksteal:20:1", "WorkSteal(i=20,t=1)"},
	}
	for _, c := range good {
		ss, err := ParseStrategy(c.in)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", c.in, err)
			continue
		}
		if ss.Label() != c.want {
			t.Errorf("ParseStrategy(%q) = %s, want %s", c.in, ss.Label(), c.want)
		}
	}
	if ss, err := ParseStrategy("acwn:9:2:3:40"); err != nil || ss.Kind != "acwn" || !ss.Redistribute {
		t.Errorf("acwn parse = %+v, %v", ss, err)
	}
	if ss, err := ParseStrategy("diffusion:20"); err != nil || ss.Kind != "diffusion" || ss.Interval != 20 {
		t.Errorf("diffusion parse = %+v, %v", ss, err)
	}
	if ss, err := ParseStrategy("ideal"); err != nil || ss.Kind != "ideal" {
		t.Errorf("ideal parse = %+v, %v", ss, err)
	}
	bad := []string{"", "cwn", "cwn:9", "cwn:9:x", "gm:1:2", "worksteal:20", "diffusion", "telepathy"}
	for _, in := range bad {
		if _, err := ParseStrategy(in); err == nil {
			t.Errorf("ParseStrategy(%q) succeeded, want error", in)
		}
	}
}

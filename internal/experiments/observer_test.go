package experiments

import "testing"

// TestMonitoringDoesNotChangeResult pins the PR 2 observer-effect fix:
// enabling SampleInterval/MonitorPE used to draw the sampler's stagger
// phase from the engine stream, shifting every subsequent tie-break
// draw — turning monitoring on changed the simulated result. Observer
// phases now come from a dedicated salted stream, so the simulated
// system (makespan, result, busy time, message counts) must be
// bit-for-bit identical with sampling on and off.
func TestMonitoringDoesNotChangeResult(t *testing.T) {
	cases := []struct {
		strat StrategySpec
		topo  TopoSpec
	}{
		{CWN(9, 2), Grid(10)},
		{GM(1, 2, 20), Grid(10)},
		{ACWN(9, 2, 3, 40), DLM(10, 5)},
	}
	for _, c := range cases {
		base := RunSpec{Topo: c.topo, Workload: Fib(11), Strategy: c.strat}
		plain, err := base.ExecuteErr()
		if err != nil {
			t.Fatalf("%s on %s: %v", c.strat.Label(), c.topo.Label(), err)
		}
		sampled := base
		sampled.SampleInterval = 50
		sampled.MonitorPE = true
		mon, err := sampled.ExecuteErr()
		if err != nil {
			t.Fatalf("%s on %s (monitored): %v", c.strat.Label(), c.topo.Label(), err)
		}
		if mon.Stats.Timeline.Len() == 0 || mon.Stats.Monitor.Len() == 0 {
			t.Fatalf("%s on %s: monitoring produced no samples", c.strat.Label(), c.topo.Label())
		}
		if plain.Makespan != mon.Makespan {
			t.Errorf("%s on %s: makespan %d with sampling off vs %d on — the observer changed the result",
				c.strat.Label(), c.topo.Label(), plain.Makespan, mon.Makespan)
		}
		if plain.Stats.Result != mon.Stats.Result {
			t.Errorf("%s on %s: result %d vs %d under monitoring",
				c.strat.Label(), c.topo.Label(), plain.Stats.Result, mon.Stats.Result)
		}
		if plain.Stats.TotalBusy != mon.Stats.TotalBusy || plain.Stats.TotalMessages() != mon.Stats.TotalMessages() {
			t.Errorf("%s on %s: busy/messages %d/%d vs %d/%d under monitoring",
				c.strat.Label(), c.topo.Label(),
				plain.Stats.TotalBusy, plain.Stats.TotalMessages(),
				mon.Stats.TotalBusy, mon.Stats.TotalMessages())
		}
	}
}

// TestMonitoringDoesNotChangeStream is the open-system variant: a
// Poisson stream's latency distribution must not move when sampling is
// switched on.
func TestMonitoringDoesNotChangeStream(t *testing.T) {
	base := RunSpec{
		Topo:     Grid(5),
		Workload: Fib(8),
		Strategy: CWN(3, 1),
		Arrival:  PoissonArrivals(80, 40),
		Warmup:   400,
	}
	plain, err := base.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	sampled := base
	sampled.SampleInterval = 100
	mon, err := sampled.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Makespan != mon.Makespan || plain.P99Soj != mon.P99Soj || plain.MeanSoj != mon.MeanSoj {
		t.Fatalf("sampling changed the stream: makespan %d vs %d, p99 %f vs %f",
			plain.Makespan, mon.Makespan, plain.P99Soj, mon.P99Soj)
	}
}

package experiments

import (
	"fmt"

	"cwnsim/internal/metrics"
	"cwnsim/internal/report"
	"cwnsim/internal/workload"
)

// PaperGrids returns the five grid sizes of the comparison: 25, 64, 100,
// 256 and 400 PEs.
func PaperGrids() []TopoSpec {
	return []TopoSpec{Grid(5), Grid(8), Grid(10), Grid(16), Grid(20)}
}

// PaperDLMs returns the five double-lattice-meshes, with the bus spans
// shown in the paper's plot captions (span 5 where the side divides by
// 5, span 4 for the 8×8 and 16×16).
func PaperDLMs() []TopoSpec {
	return []TopoSpec{DLM(5, 5), DLM(8, 4), DLM(10, 5), DLM(16, 4), DLM(20, 5)}
}

// PaperHypercubes returns the appendix hypercubes (dimensions 5-7; 32,
// 64 and 128 PEs).
func PaperHypercubes() []TopoSpec {
	return []TopoSpec{Hypercube(5), Hypercube(6), Hypercube(7)}
}

// PaperCWNFor returns CWN with Table 1's parameters for the topology
// class: radius 9 / horizon 2 on grids, radius 5 / horizon 1 on
// lattice-meshes. The appendix gives no hypercube parameters; radius 5 /
// horizon 1 (diameter-scale radius, as on the DLM) is used.
func PaperCWNFor(ts TopoSpec) StrategySpec {
	switch ts.Kind {
	case "dlm", "hypercube":
		return CWN(5, 1)
	default:
		return CWN(9, 2)
	}
}

// PaperGMFor returns the Gradient Model with Table 1's parameters:
// low 1 / high 2 / interval 20 on grids (and hypercubes), low 1 / high 1
// / interval 20 on lattice-meshes.
func PaperGMFor(ts TopoSpec) StrategySpec {
	if ts.Kind == "dlm" {
		return GM(1, 1, 20)
	}
	return GM(1, 2, 20)
}

// PaperWorkloads returns the six problem sizes for a program kind
// ("fib" or "dc"). In quick mode only the four smallest are returned
// (up to 753 goals), which keeps tests and benchmarks fast.
func PaperWorkloads(kind string, quick bool) []WorkloadSpec {
	var out []WorkloadSpec
	switch kind {
	case "fib":
		for _, m := range workload.PaperFibSizes {
			out = append(out, Fib(m))
		}
	case "dc":
		for _, x := range workload.PaperDCSizes {
			out = append(out, DC(x))
		}
	default:
		panic(fmt.Sprintf("experiments: unknown program kind %q", kind))
	}
	if quick {
		out = out[:4]
	}
	return out
}

// SpeedupSuite returns the full comparison behind Table 2: 2 programs ×
// 6 sizes × 10 topologies × 2 strategies = 240 runs (2×4×6×2 = 96 in
// quick mode, which also drops the two largest machines).
func SpeedupSuite(quick bool) []RunSpec {
	topos := append(PaperGrids(), PaperDLMs()...)
	var specs []RunSpec
	for _, prog := range []string{"dc", "fib"} {
		for _, wl := range PaperWorkloads(prog, quick) {
			for _, ts := range topos {
				if quick && ts.PEs() > 100 {
					continue
				}
				specs = append(specs,
					RunSpec{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts)},
					RunSpec{Topo: ts, Workload: wl, Strategy: PaperGMFor(ts)},
				)
			}
		}
	}
	return specs
}

// SpeedupTable renders Table 2 ("Speedup of CWN over GM"): one row per
// program size, one column per topology, each cell the ratio of CWN
// speedup to GM speedup for that configuration.
func SpeedupTable(results []*Result) *report.Table {
	idx := Index(results)
	var topos []TopoSpec
	seen := map[string]bool{}
	for _, r := range results {
		if !seen[r.Spec.Topo.Label()] {
			seen[r.Spec.Topo.Label()] = true
			topos = append(topos, r.Spec.Topo)
		}
	}
	headers := []string{"workload"}
	for _, ts := range topos {
		headers = append(headers, ts.Label())
	}
	tb := report.NewTable("Speedup of CWN over GM (Table 2)", headers...)

	var workloads []WorkloadSpec
	seenW := map[string]bool{}
	for _, r := range results {
		if !seenW[r.Spec.Workload.Label()] {
			seenW[r.Spec.Workload.Label()] = true
			workloads = append(workloads, r.Spec.Workload)
		}
	}
	for _, wl := range workloads {
		row := []any{wl.Label()}
		for _, ts := range topos {
			cwn := idx.Get(wl, ts, "cwn")
			gm := idx.Get(wl, ts, "gm")
			if cwn == nil || gm == nil {
				row = append(row, "-")
				continue
			}
			row = append(row, metrics.Ratio(cwn.Speedup, gm.Speedup))
		}
		tb.AddRow(row...)
	}
	return tb
}

// SpeedupSummary condenses a Table 2 result set into the paper's
// headline claims: how many pairings CWN wins, how many by more than
// 10%, and the largest ratio observed.
type SpeedupSummary struct {
	Pairs       int
	CWNWins     int
	Significant int // wins by more than 10%
	MaxRatio    float64
	MinRatio    float64
	GridMean    float64
	DLMMean     float64
}

// Summarize computes a SpeedupSummary from Table 2 results.
func Summarize(results []*Result) SpeedupSummary {
	idx := Index(results)
	s := SpeedupSummary{MinRatio: 1e18}
	var gridSum, dlmSum float64
	var gridN, dlmN int
	for _, r := range results {
		if r.Spec.Strategy.Kind != "cwn" {
			continue
		}
		gm := idx.Get(r.Spec.Workload, r.Spec.Topo, "gm")
		if gm == nil {
			continue
		}
		ratio := metrics.Ratio(r.Speedup, gm.Speedup)
		s.Pairs++
		if ratio > 1 {
			s.CWNWins++
		}
		if ratio > 1.1 {
			s.Significant++
		}
		if ratio > s.MaxRatio {
			s.MaxRatio = ratio
		}
		if ratio < s.MinRatio {
			s.MinRatio = ratio
		}
		if r.Spec.Topo.Kind == "dlm" {
			dlmSum += ratio
			dlmN++
		} else {
			gridSum += ratio
			gridN++
		}
	}
	if gridN > 0 {
		s.GridMean = gridSum / float64(gridN)
	}
	if dlmN > 0 {
		s.DLMMean = dlmSum / float64(dlmN)
	}
	if s.Pairs == 0 {
		s.MinRatio = 0
	}
	return s
}

// String renders the summary against the paper's claims.
func (s SpeedupSummary) String() string {
	return fmt.Sprintf(
		"pairs=%d cwnWins=%d (paper: 118/120) significant(>10%%)=%d (paper: 110) "+
			"ratio range [%.2f, %.2f] gridMean=%.2f dlmMean=%.2f (paper: grids up to ~3x, DLMs ~1.1-1.5x)",
		s.Pairs, s.CWNWins, s.Significant, s.MinRatio, s.MaxRatio, s.GridMean, s.DLMMean)
}

// UtilizationCurveSpecs returns the runs behind one of Plots 1-10 (and
// the appendix curves): the six problem sizes of one program on one
// topology under both strategies.
func UtilizationCurveSpecs(ts TopoSpec, prog string, quick bool) []RunSpec {
	var specs []RunSpec
	for _, wl := range PaperWorkloads(prog, quick) {
		specs = append(specs,
			RunSpec{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts)},
			RunSpec{Topo: ts, Workload: wl, Strategy: PaperGMFor(ts)},
		)
	}
	return specs
}

// UtilizationChart renders a Plot 1-10 analogue: average PE utilization
// (%) versus total goals, one line per strategy.
func UtilizationChart(title string, results []*Result) *report.Chart {
	series := map[string]*metrics.Series{}
	var order []string
	for _, r := range results {
		key := r.Spec.Strategy.ShortLabel()
		s, ok := series[key]
		if !ok {
			s = &metrics.Series{Label: r.Spec.Strategy.Label()}
			series[key] = s
			order = append(order, key)
		}
		s.Add(float64(r.Goals), r.Util)
	}
	ch := report.NewChart(title, "no. of goals", "% PE utilization")
	ch.YMax = 100
	marks := []rune{'+', 'o', '*', 'x'}
	for i, key := range order {
		ch.Add(series[key], marks[i%len(marks)])
	}
	return ch
}

// TimeSeriesSpecs returns the two runs behind one of Plots 11-16:
// utilization sampled over time for one workload on one topology under
// both strategies.
func TimeSeriesSpecs(ts TopoSpec, wl WorkloadSpec, sampleInterval int64) []RunSpec {
	return []RunSpec{
		{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts), SampleInterval: sampleInterval},
		{Topo: ts, Workload: wl, Strategy: PaperGMFor(ts), SampleInterval: sampleInterval},
	}
}

// CurveTable renders the data behind a utilization curve (Plots 1-10)
// in long form for external plotting: strategy, goals, util%.
func CurveTable(title string, results []*Result) *report.Table {
	tb := report.NewTable(title, "strategy", "goals", "util%", "speedup", "of-bound%")
	for _, r := range results {
		tb.AddRow(r.Spec.Strategy.ShortLabel(), r.Goals, r.Util, r.Speedup, 100*r.OfBound())
	}
	return tb
}

// TimeSeriesTable renders the data behind a time plot (Plots 11-16) in
// long form: strategy, time, util%.
func TimeSeriesTable(title string, results []*Result) *report.Table {
	tb := report.NewTable(title, "strategy", "time", "util%")
	for _, r := range results {
		for _, p := range r.Stats.Timeline.Points {
			tb.AddRow(r.Spec.Strategy.ShortLabel(), int64(p.T), p.V)
		}
	}
	return tb
}

// TimeSeriesChart renders a Plot 11-16 analogue from sampled runs.
func TimeSeriesChart(title string, results []*Result) *report.Chart {
	ch := report.NewChart(title, "time", "% PE utilization")
	ch.YMax = 100
	marks := []rune{'+', 'o', '*', 'x'}
	for i, r := range results {
		s := r.Stats.Timeline
		s.Label = r.Spec.Strategy.Label()
		ch.Add(&s, marks[i%len(marks)])
	}
	return ch
}

// HopDistributionSpecs returns the two runs behind Table 3: fib(18) on
// the 10×10 grid under both strategies. horizon selects the CWN horizon
// (the paper's Table 1 says 2, but its published histogram matches 1 —
// see EXPERIMENTS.md).
func HopDistributionSpecs(horizon int, quick bool) []RunSpec {
	wl := Fib(18)
	if quick {
		wl = Fib(13)
	}
	ts := Grid(10)
	return []RunSpec{
		{Topo: ts, Workload: wl, Strategy: CWN(9, horizon)},
		{Topo: ts, Workload: wl, Strategy: GM(1, 2, 20)},
	}
}

// HopDistributionTable renders Table 3: the distribution of distances
// travelled by goal messages, one column per hop count, one row per
// strategy, with the mean in the last column.
func HopDistributionTable(results []*Result) *report.Table {
	maxHop := 0
	for _, r := range results {
		if m := r.Stats.GoalHops.Max(); m > maxHop {
			maxHop = m
		}
	}
	headers := []string{"strategy"}
	for h := 0; h <= maxHop; h++ {
		headers = append(headers, fmt.Sprint(h))
	}
	headers = append(headers, "average")
	tb := report.NewTable("Distribution of message distance (Table 3)", headers...)
	for _, r := range results {
		row := []any{r.Spec.Strategy.ShortLabel()}
		for h := 0; h <= maxHop; h++ {
			row = append(row, r.Stats.GoalHops.Count(h))
		}
		row = append(row, r.Stats.GoalHops.Mean())
		tb.AddRow(row...)
	}
	return tb
}

package experiments

import "testing"

// faultGateSpec mirrors the cmd/bench scenario agreement gate: every
// piece of the PR 10 fault stack — domain-shaped crash chaos, periodic
// checkpoints, a bounded retry budget — in one small pinned script.
func faultGateSpec() RunSpec {
	return RunSpec{
		Topo:           Grid(4),
		Workload:       Fib(9),
		Strategy:       CWN(9, 2),
		Arrival:        IntervalArrivals(100, 60),
		Scenario:       "chaos:mtbf=1500:mttr=400:crash:domain=rack:4@seed=11,checkpoint:every=400:cost=1@t=0",
		RetryLimit:     1,
		RetryBackoff:   25,
		SampleInterval: 200,
	}
}

// TestShardScenarioCrossCheck is the tree's own copy of the cmd/bench
// scenario agreement gate: on a scripted spec whose crashes make
// outcomes placement-dependent, Shards=1 must still reproduce the
// sequential run bit for bit (recovery metrics included), parallel must
// reproduce serial replay, and the bounded-retry ledger must balance
// machine-wide in every mode.
func TestShardScenarioCrossCheck(t *testing.T) {
	if err := ScenarioCrossCheck(faultGateSpec(), 4); err != nil {
		t.Fatal(err)
	}
}

// TestShardChaosSoak10k is the CI race smoke for the sharded fault
// stack at scale: a 10,000-PE implicit torus under domain-shaped crash
// chaos with checkpoints and a bounded retry budget, run at Shards=4 —
// four real shard goroutines crossing op barriers, crash purges,
// snapshot walks and retry re-injections while the race detector
// watches. The horizon is short — the 10,000 load tickers dominate
// wall time, so the chaos cadence is compressed to keep strikes landing
// inside it (-short, the CI race configuration, compresses further);
// the long-soak version of this machine is cmd/bench's
// open/chaos-torus100-soak family.
func TestShardChaosSoak10k(t *testing.T) {
	spec := RunSpec{
		Topo:         Torus(100),
		Workload:     Fib(9),
		Strategy:     StrategySpec{Kind: "cwn", Radius: 5, Horizon: 2, FailureAware: true},
		Arrival:      PoissonArrivals(40, 25),
		Warmup:       100,
		MaxTime:      600,
		Scenario:     "chaos:mtbf=150:mttr=60:crash:domain=block:4x4@seed=5,checkpoint:every=100:cost=1@t=0",
		RetryLimit:   2,
		RetryBackoff: 20,
		Shards:       4,
	}
	if testing.Short() {
		spec.MaxTime = 150
		spec.Warmup = 40
		spec.Arrival = PoissonArrivals(40, 8)
		spec.Scenario = "chaos:mtbf=40:mttr=20:crash:domain=block:4x4@seed=5,checkpoint:every=30:cost=1@t=0"
	}
	r, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats
	if st.Events == 0 || st.JobsInjected == 0 {
		t.Fatalf("soak ran nothing: %d events, %d jobs injected", st.Events, st.JobsInjected)
	}
	if st.JobsRetried+st.JobsAbandoned != st.JobsAborted {
		t.Fatalf("retry ledger unbalanced: retried %d + abandoned %d != aborted %d",
			st.JobsRetried, st.JobsAbandoned, st.JobsAborted)
	}
	if g := st.Goodput(); g < 0 || g > 1 {
		t.Fatalf("goodput %v out of [0,1]", g)
	}
}

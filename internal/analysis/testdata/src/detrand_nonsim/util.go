// Package utilfix is NOT simulation-path code (its module path has no
// internal/sim-like segment): detrand must stay silent here even
// though the file reads the wall clock and the global rand stream —
// tooling and benchmark drivers legitimately do both.
package utilfix

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().UnixNano() }

func Jitter() int { return rand.Intn(100) }

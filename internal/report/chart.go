package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"cwnsim/internal/metrics"
)

// Chart renders one or more time series as an ASCII line chart — the
// textual equivalent of the paper's plots. Each series gets a marker
// rune; overlapping points show the later series' marker.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int     // plot area columns (default 64)
	Height int     // plot area rows (default 16)
	YMax   float64 // fixed y-axis max; 0 = auto
	series []*metrics.Series
	marks  []rune
}

// NewChart creates an empty chart.
func NewChart(title, xlabel, ylabel string) *Chart {
	return &Chart{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 64, Height: 16}
}

// Add attaches a series with the given marker.
func (c *Chart) Add(s *metrics.Series, marker rune) {
	c.series = append(c.series, s)
	c.marks = append(c.marks, marker)
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	c.Render(&b)
	return b.String()
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) {
	if c.Title != "" {
		fmt.Fprintf(w, "%s\n", c.Title)
	}
	width, height := c.Width, c.Height
	if width < 8 {
		width = 64
	}
	if height < 4 {
		height = 16
	}
	var xmin, xmax float64
	first := true
	for _, s := range c.series {
		for _, p := range s.Points {
			if first || p.T < xmin {
				xmin = p.T
			}
			if first || p.T > xmax {
				xmax = p.T
			}
			first = false
		}
	}
	if first { // no data at all
		fmt.Fprintln(w, "(no data)")
		return
	}
	ymax := c.YMax
	if ymax <= 0 {
		for _, s := range c.series {
			if v := s.MaxV(); v > ymax {
				ymax = v
			}
		}
		if ymax == 0 {
			ymax = 1
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		if s.Len() == 0 {
			continue
		}
		for col := 0; col < width; col++ {
			x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
			v := s.At(x)
			row := int(math.Round((1 - v/ymax) * float64(height-1)))
			if row < 0 {
				row = 0
			}
			if row >= height {
				row = height - 1
			}
			grid[row][col] = c.marks[si]
		}
	}
	for r := 0; r < height; r++ {
		yval := ymax * float64(height-1-r) / float64(height-1)
		fmt.Fprintf(w, "%8.1f |%s|\n", yval, string(grid[r]))
	}
	fmt.Fprintf(w, "%8s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%8s  %-*.0f%*.0f\n", "", width/2, xmin, width-width/2, xmax)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(w, "%8s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for i, s := range c.series {
		fmt.Fprintf(w, "%8s  %c %s\n", "", c.marks[i], s.Label)
	}
}

package experiments

import (
	"fmt"

	"cwnsim/internal/machine"
	"cwnsim/internal/report"
)

// The extension studies: the paper's conclusions sketch three CWN
// improvements (re-distribution, saturation control, commitment-aware
// load) and one caveat (CWN's edge may shrink at higher communication
// ratios). These suites measure each.

// AblationSpecs returns one run per strategy variant on a common
// configuration (default: fib on a 10×10 grid), isolating each proposed
// CWN improvement plus the baseline strategies.
func AblationSpecs(quick bool) []RunSpec {
	ts := Grid(10)
	wl := Fib(15)
	if quick {
		wl = Fib(11)
	}
	acwnSatOnly := ACWN(9, 2, 3, 40)
	acwnSatOnly.Redistribute = false
	acwnRedistOnly := ACWN(9, 2, 0, 40)
	acwnBoth := ACWN(9, 2, 3, 40)
	return []RunSpec{
		{Label: "CWN (paper)", Topo: ts, Workload: wl, Strategy: CWN(9, 2)},
		{Label: "ACWN saturation only", Topo: ts, Workload: wl, Strategy: acwnSatOnly},
		{Label: "ACWN redistribution only", Topo: ts, Workload: wl, Strategy: acwnRedistOnly},
		{Label: "ACWN both", Topo: ts, Workload: wl, Strategy: acwnBoth},
		{Label: "CWN + commitment-aware load", Topo: ts, Workload: wl, Strategy: CWN(9, 2), LoadMetric: "queue+pending"},
		{Label: "GM (paper)", Topo: ts, Workload: wl, Strategy: GM(1, 2, 20)},
		{Label: "Diffusion", Topo: ts, Workload: wl, Strategy: StrategySpec{Kind: "diffusion", Interval: 20}},
		{Label: "WorkSteal", Topo: ts, Workload: wl, Strategy: StrategySpec{Kind: "worksteal", Interval: 20, Threshold: 1}},
		{Label: "RandomWalk(3)", Topo: ts, Workload: wl, Strategy: StrategySpec{Kind: "randomwalk", Steps: 3}},
		{Label: "RoundRobin", Topo: ts, Workload: wl, Strategy: StrategySpec{Kind: "roundrobin"}},
		{Label: "Local (no balancing)", Topo: ts, Workload: wl, Strategy: StrategySpec{Kind: "local"}},
		{Label: "Ideal (perfect info)", Topo: ts, Workload: wl, Strategy: StrategySpec{Kind: "ideal"}},
	}
}

// CommRatioSpecs sweeps the communication:computation ratio (goal and
// response hop time against the fixed grain of 10) for both schemes —
// the paper's closing caveat that CWN "may lose some of its edge" when
// communication is costlier.
func CommRatioSpecs(quick bool) []RunSpec {
	ts := Grid(10)
	wl := Fib(15)
	if quick {
		wl = Fib(11)
	}
	hopTimes := []int64{1, 2, 5, 10, 20}
	var specs []RunSpec
	for _, ht := range hopTimes {
		specs = append(specs,
			RunSpec{
				Label: fmt.Sprintf("CWN hop=%d", ht), Topo: ts, Workload: wl,
				Strategy: PaperCWNFor(ts), GoalHopTime: ht, RespHopTime: ht,
			},
			RunSpec{
				Label: fmt.Sprintf("GM hop=%d", ht), Topo: ts, Workload: wl,
				Strategy: PaperGMFor(ts), GoalHopTime: ht, RespHopTime: ht,
			},
		)
	}
	return specs
}

// ImbalanceSpecs dials computation-tree imbalance from dc-like (0.5) to
// caterpillar-like (0.95) at fixed size, probing the paper's premise
// that the schemes must cope with unpredictable structure.
func ImbalanceSpecs(quick bool) []RunSpec {
	goals := 2001
	if quick {
		goals = 801
	}
	ts := Grid(8)
	var specs []RunSpec
	for _, frac := range []float64{0.5, 0.65, 0.8, 0.9, 0.95} {
		wl := WorkloadSpec{Kind: "imbal", N: goals, Frac: frac}
		specs = append(specs,
			RunSpec{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts)},
			RunSpec{Topo: ts, Workload: wl, Strategy: PaperGMFor(ts)},
		)
	}
	return specs
}

// DiameterStudySpecs tests the paper's conjecture that CWN's advantage
// grows with network diameter ("the superior performance of CWN on the
// grids leads us to conjecture that it performs better than the GM on
// large systems, which of course tend to have larger diameters"): the
// machine size is held at 64 PEs while the diameter varies from 1
// (complete graph) to 32 (ring).
func DiameterStudySpecs(quick bool) []RunSpec {
	wl := Fib(15)
	if quick {
		wl = Fib(12)
	}
	topos := []TopoSpec{
		{Kind: "complete", N: 64},                 // diameter 1
		{Kind: "torus3d", Rows: 4, Cols: 4, Z: 4}, // diameter 6
		{Kind: "hypercube", Dim: 6},               // diameter 6
		Torus(8),                                  // diameter 8
		{Kind: "chordal", N: 64, Chord: 8},        // diameter ~8
		Grid(8),                                   // diameter 14
		{Kind: "ring", N: 64},                     // diameter 32
	}
	var specs []RunSpec
	for _, ts := range topos {
		// Radius ~ diameter keeps CWN able to reach its horizon; GM uses
		// the grid watermarks throughout.
		radius := ts.Build().Diameter()
		if radius < 2 {
			radius = 2
		}
		if radius > 9 {
			radius = 9
		}
		specs = append(specs,
			RunSpec{Topo: ts, Workload: wl, Strategy: CWN(radius, 1)},
			RunSpec{Topo: ts, Workload: wl, Strategy: GM(1, 2, 20)},
		)
	}
	return specs
}

// DiameterStudyTable summarizes the diameter study: one row per
// topology with both speedups and the ratio.
func DiameterStudyTable(results []*Result) *report.Table {
	tb := report.NewTable("CWN/GM speedup ratio vs network diameter (64 PEs)",
		"topology", "diameter", "CWN speedup", "GM speedup", "ratio")
	for i := 0; i+1 < len(results); i += 2 {
		cwn, gm := results[i], results[i+1]
		tb.AddRow(
			cwn.Spec.Topo.Label(),
			cwn.Spec.Topo.Build().Diameter(),
			cwn.Speedup,
			gm.Speedup,
			cwn.Speedup/gm.Speedup,
		)
	}
	return tb
}

// ResultTable renders a generic per-run comparison table: utilization,
// speedup (absolute and as a share of the workload's parallelism
// ceiling), balance, travel distances and traffic.
func ResultTable(title string, results []*Result) *report.Table {
	tb := report.NewTable(title,
		"run", "PEs", "goals", "util%", "speedup", "of-bound%", "balance", "avg hops", "goal msgs", "makespan", "maxChan%")
	for _, r := range results {
		tb.AddRow(
			r.Spec.Name(),
			r.Stats.P,
			r.Goals,
			r.Util,
			r.Speedup,
			100*r.OfBound(),
			r.Balance,
			r.AvgHops,
			r.Stats.MsgCounts[machine.MsgGoal],
			int64(r.Makespan),
			100*r.Stats.MaxChannelUtilization(),
		)
	}
	return tb
}

package scenario

import (
	"math/rand"
	"sort"

	"cwnsim/internal/sim"
)

// chaosSeedSalt decorrelates the chaos generator's stream from the
// run's engine, arrival and observer streams (which salt the same user
// seed): availability sweeps can share one seed across all four
// processes without the failure timeline echoing the arrival timeline.
const chaosSeedSalt int64 = 0x5E3779B97F4A7C15

// Expand resolves the script's generator events — Chaos into concrete
// failure/recovery timelines, Checkpoint into periodic CheckpointTick
// events — on a machine of numPEs processors with measurement horizon
// `horizon`, leaving every other event untouched. A script with no
// generator events is returned as-is (same pointer — the empty scenario
// stays free). Expansion is a pure function of (generator parameters,
// numPEs, horizon): the same seed always yields the identical timeline,
// pinned by regression test.
func (s *Script) Expand(numPEs int, horizon sim.Time) *Script {
	if s.Empty() {
		return s
	}
	any := false
	for _, e := range s.Events {
		if e.Kind == Chaos || e.Kind == Checkpoint {
			any = true
			break
		}
	}
	if !any {
		return s
	}
	out := &Script{Events: make([]Event, 0, len(s.Events))}
	for _, e := range s.Events {
		switch e.Kind {
		case Chaos:
			out.Events = append(out.Events, e.generate(numPEs, horizon)...)
		case Checkpoint:
			out.Events = append(out.Events, e.ticks(horizon)...)
		default:
			out.Events = append(out.Events, e)
		}
	}
	return out
}

// ticks expands a Checkpoint generator into its concrete periodic
// CheckpointTick events: one every Every units of virtual time starting
// at At+Every, up to (exclusive) Until or the horizon.
func (e Event) ticks(horizon sim.Time) []Event {
	until := e.Until
	if until <= 0 || until > horizon {
		until = horizon
	}
	var out []Event
	for at := e.At + e.Every; at < until; at += e.Every {
		out = append(out, Event{At: at, Kind: CheckpointTick, Cost: e.Cost})
	}
	return out
}

// generate draws one chaos event's concrete timeline: failure instants
// arrive as a Poisson process (exponential gaps, mean MTBF) starting at
// the event's At, each striking a uniformly chosen PE and holding it
// down for an exponential repair time (mean MTTR, floor one unit). A PE
// already down when struck absorbs the failure (the draw is still
// consumed, keeping the stream aligned), and a strike that would take
// the last live PE down is skipped — the machine refuses to lose its
// final processor. With a Domain set, each strike targets a uniformly
// chosen failure domain instead of a single PE (see generateDomains);
// the domain-free path is bit-for-bit the pre-domain timeline.
func (e Event) generate(numPEs int, horizon sim.Time) []Event {
	if e.Domain != "" {
		return e.generateDomains(numPEs, horizon)
	}
	rng := rand.New(rand.NewSource(e.Seed ^ chaosSeedSalt))
	until := e.Until
	if until <= 0 || until > horizon {
		until = horizon
	}
	failKind := FailPE
	if e.Crash {
		failKind = CrashPE
	}
	downUntil := make([]float64, numPEs)
	var out []Event
	t := float64(e.At)
	for {
		t += rng.ExpFloat64() * e.MTBF
		at := sim.Time(t)
		if at >= until {
			break
		}
		pe := rng.Intn(numPEs)
		repair := rng.ExpFloat64() * e.MTTR
		if repair < 1 {
			repair = 1
		}
		if downUntil[pe] > t {
			continue // struck while already down: absorbed
		}
		live := 0
		for _, du := range downUntil {
			if du <= t {
				live++
			}
		}
		if live <= 1 {
			continue // never take the last live PE down
		}
		rec := t + repair
		downUntil[pe] = rec
		out = append(out,
			Event{At: at, Kind: failKind, PEs: []int{pe}},
			Event{At: sim.Time(rec), Kind: RecoverPE, PEs: []int{pe}})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// generateDomains draws a correlated-failure timeline: the Poisson gap
// and exponential repair processes are unchanged, but each strike picks
// a uniformly chosen failure domain and takes down every member of it
// that is currently up, all sharing one repair time (correlated
// recovery — the whole blast radius comes back together). A strike
// whose domain is entirely down is absorbed; one that would leave no
// live PE is skipped. Both consume their draws, keeping the stream
// aligned with the draw count, like the single-PE path.
func (e Event) generateDomains(numPEs int, horizon sim.Time) []Event {
	rng := rand.New(rand.NewSource(e.Seed ^ chaosSeedSalt))
	until := e.Until
	if until <= 0 || until > horizon {
		until = horizon
	}
	failKind := FailPE
	if e.Crash {
		failKind = CrashPE
	}
	numDomains := e.domainCount(numPEs)
	downUntil := make([]float64, numPEs)
	var out []Event
	t := float64(e.At)
	for {
		t += rng.ExpFloat64() * e.MTBF
		at := sim.Time(t)
		if at >= until {
			break
		}
		d := rng.Intn(numDomains)
		repair := rng.ExpFloat64() * e.MTTR
		if repair < 1 {
			repair = 1
		}
		var strike []int
		for _, pe := range e.domainMembers(d, numPEs) {
			if downUntil[pe] <= t {
				strike = append(strike, pe)
			}
		}
		if len(strike) == 0 {
			continue // domain already entirely down: absorbed
		}
		live := 0
		for _, du := range downUntil {
			if du <= t {
				live++
			}
		}
		if live <= len(strike) {
			continue // never take the last live PEs down
		}
		rec := t + repair
		for _, pe := range strike {
			downUntil[pe] = rec
		}
		out = append(out,
			Event{At: at, Kind: failKind, PEs: strike},
			Event{At: sim.Time(rec), Kind: RecoverPE, PEs: strike})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// domainCount returns how many failure domains tile a machine of numPEs
// processors under the event's Domain shape. Every PE belongs to
// exactly one domain.
func (e Event) domainCount(numPEs int) int {
	switch e.Domain {
	case "rack":
		return (numPEs + e.DomA - 1) / e.DomA
	case "block":
		side := gridSide(numPEs)
		bw := (side + e.DomA - 1) / e.DomA
		bh := (side + e.DomB - 1) / e.DomB
		return bw * bh
	}
	return numPEs // single-PE domains (unreachable: generate branches first)
}

// domainMembers returns domain d's PE indices in ascending order. Racks
// are contiguous index runs of DomA PEs; blocks are DomA×DomB tiles of
// the row-major gridSide×gridSide layout, clipped to the machine.
func (e Event) domainMembers(d, numPEs int) []int {
	switch e.Domain {
	case "rack":
		lo := d * e.DomA
		hi := lo + e.DomA
		if hi > numPEs {
			hi = numPEs
		}
		out := make([]int, 0, hi-lo)
		for pe := lo; pe < hi; pe++ {
			out = append(out, pe)
		}
		return out
	case "block":
		side := gridSide(numPEs)
		bw := (side + e.DomA - 1) / e.DomA
		bx, by := d%bw, d/bw
		var out []int
		for y := by * e.DomB; y < (by+1)*e.DomB && y < side; y++ {
			for x := bx * e.DomA; x < (bx+1)*e.DomA && x < side; x++ {
				if pe := y*side + x; pe < numPEs {
					out = append(out, pe)
				}
			}
		}
		return out
	}
	return []int{d}
}

// gridSide is the side of the smallest square grid covering numPEs
// processors row-major — block domains tile this grid so every PE falls
// in exactly one block even on non-square machines.
func gridSide(numPEs int) int {
	side := 1
	for side*side < numPEs {
		side++
	}
	return side
}

// Command paper regenerates every table and figure of Kale's ICPP 1988
// comparison study from fresh simulations:
//
//	table1       parameter-optimization runs (Table 1)
//	table2       the 240-run speedup comparison (Table 2)
//	table3       goal-message distance distributions (Table 3)
//	plots-dlm-dc utilization vs problem size, dc on the 5 DLMs (Plots 1-5)
//	plots-grid-dc  same on the 5 grids (Plots 6-10)
//	plots-fib    the Fibonacci curves the paper says mirror the dc plots
//	plots-time-dlm utilization vs time, DLM 10x10 (Plots 11-13)
//	plots-time-grid utilization vs time, grid 10x10 (Plots 14-16)
//	hypercube    the appendix hypercube studies (A-1..A-8)
//	ablation     the future-work extensions (ACWN et al.)
//	commratio    the communication-ratio caveat sweep
//	diameter     extension: CWN/GM ratio vs network diameter at 64 PEs
//	imbalance    extension: CWN/GM vs computation-tree skew
//	monitor      ORACLE's per-PE load display, frame by frame
//	all          everything above
//
// -quick shrinks problem and machine sizes for a fast smoke pass.
// -csv DIR additionally writes each table as CSV into DIR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cwnsim/internal/experiments"
	"cwnsim/internal/report"
)

var (
	quick   = flag.Bool("quick", false, "smaller problems and machines (fast smoke run)")
	workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
	csvDir  = flag.String("csv", "", "directory to write CSV copies of the tables")
	exps    = flag.String("exp", "all", "comma-separated experiments (see doc comment)")
)

func main() {
	flag.Parse()
	selected := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]
	start := time.Now()

	runIf := func(name string, fn func()) {
		if !all && !selected[name] {
			return
		}
		fmt.Printf("==================== %s ====================\n", name)
		t0 := time.Now()
		fn()
		fmt.Printf("-------------------- %s done in %v\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	runIf("table1", table1)
	runIf("table2", table2)
	runIf("table3", table3)
	runIf("plots-dlm-dc", func() { utilizationPlots(experiments.PaperDLMs(), "dc", 1) })
	runIf("plots-grid-dc", func() { utilizationPlots(experiments.PaperGrids(), "dc", 6) })
	runIf("plots-fib", func() {
		utilizationPlots(experiments.PaperDLMs(), "fib", 0)
		utilizationPlots(experiments.PaperGrids(), "fib", 0)
	})
	runIf("plots-time-dlm", func() { timePlots(experiments.DLM(10, 5), []int{18, 15, 11}, 11) })
	runIf("plots-time-grid", func() { timePlots(experiments.Grid(10), []int{18, 15, 9}, 14) })
	runIf("hypercube", hypercube)
	runIf("ablation", ablation)
	runIf("commratio", commRatio)
	runIf("diameter", diameter)
	runIf("imbalance", imbalance)
	runIf("monitor", monitor)

	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func emit(tb *report.Table, file string) {
	tb.Render(os.Stdout)
	fmt.Println()
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			return
		}
		f, err := os.Create(filepath.Join(*csvDir, file))
		if err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
			return
		}
		defer f.Close()
		if err := tb.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "paper:", err)
		}
	}
}

// table1 reruns the parameter-optimization experiments and prints the
// winners next to the paper's Table 1 selections.
func table1() {
	gridTs, gridWls := experiments.SamplePoints(experiments.PaperGrids(), *quick)
	dlmTs, dlmWls := experiments.SamplePoints(experiments.PaperDLMs(), *quick)
	radii, horizons := experiments.DefaultCWNGridSearch(*quick)
	lows, highs, ivs := experiments.DefaultGMGridSearch(*quick)

	gridCWN := mustOptimize(experiments.OptimizeCWN(gridTs, gridWls, radii, horizons, *workers))
	dlmCWN := mustOptimize(experiments.OptimizeCWN(dlmTs, dlmWls, radii, horizons, *workers))
	gridGM := mustOptimize(experiments.OptimizeGM(gridTs, gridWls, lows, highs, ivs, *workers))
	dlmGM := mustOptimize(experiments.OptimizeGM(dlmTs, dlmWls, lows, highs, ivs, *workers))

	emit(experiments.OptimizationTable(gridCWN[0], dlmCWN[0], gridGM[0], dlmGM[0]), "table1.csv")

	top := report.NewTable("top CWN candidates (grids)", "strategy", "mean speedup")
	for i, o := range gridCWN {
		if i >= 5 {
			break
		}
		top.AddRow(o.Strategy.Label(), o.MeanSpeedup)
	}
	top.Render(os.Stdout)
}

// table2 runs the full comparison and prints the ratio matrix plus the
// headline summary.
func table2() {
	specs := experiments.SpeedupSuite(*quick)
	fmt.Printf("running %d simulations...\n", len(specs))
	results := mustRun(specs, *workers)
	emit(experiments.SpeedupTable(results), "table2.csv")
	fmt.Println("summary:", experiments.Summarize(results).String())
}

// table3 prints the hop-distance distributions for both the horizon the
// paper's Table 1 lists (2) and the one its published histogram implies (1).
func table3() {
	for _, h := range []int{1, 2} {
		results := mustRun(experiments.HopDistributionSpecs(h, *quick), *workers)
		tb := experiments.HopDistributionTable(results)
		tb.Title = fmt.Sprintf("%s — CWN horizon %d", tb.Title, h)
		emit(tb, fmt.Sprintf("table3_h%d.csv", h))
	}
	fmt.Println("paper: CWN [1 3979 1024 713 514 375 298 223 202 1032] avg 3.15; GM [4068 2372 1045 527 195 84 43 20 4 3] avg 0.92")
}

// utilizationPlots renders the Plot 1-10 family (and the fib analogues).
func utilizationPlots(topos []experiments.TopoSpec, prog string, firstPlot int) {
	for i, ts := range topos {
		if *quick && ts.PEs() > 100 {
			continue
		}
		results := mustRun(experiments.UtilizationCurveSpecs(ts, prog, *quick), *workers)
		title := fmt.Sprintf("%s on %s", prog, ts.Label())
		if firstPlot > 0 {
			title = fmt.Sprintf("Plot %d: %s", firstPlot+len(topos)-1-i, title)
		}
		ch := experiments.UtilizationChart(title, results)
		ch.Render(os.Stdout)
		fmt.Println()
		if *csvDir != "" {
			tb := experiments.CurveTable(title, results)
			emitCSVOnly(tb, fmt.Sprintf("curve_%s_%s.csv", prog, ts.Label()))
		}
	}
}

// emitCSVOnly writes a table as CSV without printing it.
func emitCSVOnly(tb *report.Table, file string) {
	if err := os.MkdirAll(*csvDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		return
	}
	f, err := os.Create(filepath.Join(*csvDir, file))
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		return
	}
	defer f.Close()
	if err := tb.WriteCSV(f); err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
	}
}

// timePlots renders the Plot 11-16 family.
func timePlots(ts experiments.TopoSpec, fibSizes []int, firstPlot int) {
	for i, m := range fibSizes {
		if *quick && m > 15 {
			m = 13
		}
		results := mustRun(experiments.TimeSeriesSpecs(ts, experiments.Fib(m), 50), *workers)
		title := fmt.Sprintf("Plot %d: fib(%d) on %s, utilization over time", firstPlot+i, m, ts.Label())
		experiments.TimeSeriesChart(title, results).Render(os.Stdout)
		fmt.Println()
		if *csvDir != "" {
			emitCSVOnly(experiments.TimeSeriesTable(title, results),
				fmt.Sprintf("plot%d_fib%d_%s.csv", firstPlot+i, m, ts.Label()))
		}
	}
}

// hypercube renders the appendix: utilization-vs-goals curves for
// dimensions 5-7 and the dimension-7 time traces.
func hypercube() {
	for _, ts := range experiments.PaperHypercubes() {
		if *quick && ts.PEs() > 64 {
			continue
		}
		results := mustRun(experiments.UtilizationCurveSpecs(ts, "fib", *quick), *workers)
		experiments.UtilizationChart(fmt.Sprintf("Appendix: fib on %s", ts.Label()), results).Render(os.Stdout)
		fmt.Println()
	}
	dim := 7
	sizes := []int{18, 15}
	if *quick {
		dim, sizes = 5, []int{13}
	}
	for _, m := range sizes {
		results := mustRun(experiments.TimeSeriesSpecs(experiments.Hypercube(dim), experiments.Fib(m), 50), *workers)
		experiments.TimeSeriesChart(fmt.Sprintf("Appendix: fib(%d) on hypercube-d%d over time", m, dim), results).Render(os.Stdout)
		fmt.Println()
	}
}

// ablation runs the future-work extension comparison.
func ablation() {
	results := mustRun(experiments.AblationSpecs(*quick), *workers)
	emit(experiments.ResultTable("CWN extensions and baselines (paper future work)", results), "ablation.csv")
}

// commRatio runs the communication-ratio caveat sweep.
func commRatio() {
	results := mustRun(experiments.CommRatioSpecs(*quick), *workers)
	emit(experiments.ResultTable("communication:computation ratio sweep", results), "commratio.csv")
}

// diameter runs the diameter-conjecture study: same machine size,
// varying network diameter.
func diameter() {
	results := mustRun(experiments.DiameterStudySpecs(*quick), *workers)
	emit(experiments.DiameterStudyTable(results), "diameter.csv")
}

// imbalance sweeps computation-tree skew at fixed size.
func imbalance() {
	results := mustRun(experiments.ImbalanceSpecs(*quick), *workers)
	emit(experiments.ResultTable("tree-imbalance sweep (64 PEs, fixed goals)", results), "imbalance.csv")
}

// monitor reproduces ORACLE's load-distribution display: per-PE
// utilization frames for both schemes on the 10x10 grid, showing CWN's
// fast spread versus GM's hoarding frame by frame.
func monitor() {
	wl := experiments.Fib(15)
	if *quick {
		wl = experiments.Fib(13)
	}
	ts := experiments.Grid(10)
	for _, strat := range []experiments.StrategySpec{experiments.PaperCWNFor(ts), experiments.PaperGMFor(ts)} {
		res := experiments.RunSpec{
			Topo: ts, Workload: wl, Strategy: strat,
			SampleInterval: 50, MonitorPE: true,
		}.Execute()
		fmt.Printf("--- %s: load monitor, every 4th frame ---\n", res.Spec.Name())
		res.Stats.Monitor.Render(os.Stdout, 10, 10, 4)
		fmt.Println()
	}
}

// mustRun executes specs, exiting with the joined error if any run
// fails — a paper regeneration has no use for partial tables.
func mustRun(specs []experiments.RunSpec, workers int) []*experiments.Result {
	results, err := experiments.RunAll(specs, workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	return results
}

func mustOptimize(out []experiments.OptOutcome, err error) []experiments.OptOutcome {
	if err != nil {
		fmt.Fprintln(os.Stderr, "paper:", err)
		os.Exit(1)
	}
	return out
}

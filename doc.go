// Package cwnsim is a from-scratch Go reproduction of L.V. Kale,
// "Comparing the Performance of Two Dynamic Load Distribution Methods"
// (ICPP 1988 / UIUCDCS-R-87-1387): a discrete-event simulation study of
// two distributed load-balancing schemes — Contracting Within a
// Neighborhood (CWN) and Lin & Keller's Gradient Model (GM) — for
// medium-grain, tree-structured symbolic computations on message-passing
// multiprocessors.
//
// The library layers, bottom-up:
//
//	internal/sim         deterministic discrete-event engine (ORACLE's kernel)
//	internal/topology    grids, tori, double-lattice-meshes, hypercubes, ...
//	internal/workload    fib/dc/random task trees (the simulated programs)
//	internal/machine     PEs, channels with contention, message routing
//	internal/core        CWN, GM, ACWN, and baseline strategies
//	internal/metrics     histograms, summaries, time series
//	internal/report      text tables, ASCII charts, heat maps, CSV
//	internal/experiments the paper's experiment suites (Tables 1-3, all plots)
//
// Executables: cmd/lbsim (single runs), cmd/paper (regenerate every
// table and figure), cmd/optimize (the Table 1 parameter sweeps).
// See README.md for a tour and EXPERIMENTS.md for paper-vs-measured
// results. The benchmarks in bench_test.go regenerate each table/figure
// at reduced scale and report achieved speedup/utilization as custom
// benchmark metrics.
package cwnsim

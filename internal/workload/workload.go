// Package workload generates the tree-structured computations the paper
// simulates. A computation is a tree of medium-grain tasks ("goals"): a
// task either completes immediately with a value (leaf) or spawns its
// children, waits for all their responses, combines them, and responds to
// its own parent.
//
// The paper deliberately uses computations with predictable, well
// understood structure so that simulation artifacts can be attributed to
// the load-balancing scheme rather than the program: divide-and-conquer
// dc(M,N) (a well-balanced binary tree) and naive doubly-recursive
// Fibonacci (a skewed binary tree). Both are executed for their shape —
// the simulator nevertheless computes their actual numeric result, which
// the test suite checks against sequential evaluation (ORACLE's "we get
// the result of the program" property).
package workload

import (
	"fmt"
	"math/rand"
)

// Task is one goal in a computation tree. Leaf tasks carry their value;
// inner tasks combine their children's values with the tree's Combine
// function. Work scales the PE service time of this particular task
// (1 = the configured grain time).
type Task struct {
	ID    int32
	Kids  []*Task
	Value int64 // meaningful for leaves only
	Work  int32 // service-time multiplier, >= 1
}

// IsLeaf reports whether the task has no children.
func (t *Task) IsLeaf() bool { return len(t.Kids) == 0 }

// Tree is an immutable computation. Trees are read-only after
// construction and safe to share across concurrent simulations.
type Tree struct {
	Name    string
	Root    *Task
	Combine func(vals []int64) int64

	count  int
	leaves int
	depth  int
}

// Count returns the total number of tasks — the paper's "number of goals
// generated during the computation" (the x-axis of plots 1-10).
func (tr *Tree) Count() int { return tr.count }

// Leaves returns the number of leaf tasks.
func (tr *Tree) Leaves() int { return tr.leaves }

// Depth returns the longest root-to-leaf path length in edges.
func (tr *Tree) Depth() int { return tr.depth }

// String implements fmt.Stringer.
func (tr *Tree) String() string {
	return fmt.Sprintf("%s (%d goals, depth %d)", tr.Name, tr.count, tr.depth)
}

// Walk visits every task in preorder.
func (tr *Tree) Walk(fn func(*Task)) {
	stack := []*Task{tr.Root}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		fn(t)
		for i := len(t.Kids) - 1; i >= 0; i-- {
			stack = append(stack, t.Kids[i])
		}
	}
}

// Eval computes the tree's value sequentially (what a single PE would
// produce). It is iterative so that degenerate chain-shaped trees do not
// overflow the stack.
func (tr *Tree) Eval() int64 {
	type frame struct {
		task *Task
		next int
		vals []int64
	}
	stack := []frame{{task: tr.Root}}
	var result int64
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.task.IsLeaf() {
			result = f.task.Value
			stack = stack[:len(stack)-1]
			if len(stack) > 0 {
				p := &stack[len(stack)-1]
				p.vals = append(p.vals, result)
			}
			continue
		}
		if f.next < len(f.task.Kids) {
			child := f.task.Kids[f.next]
			f.next++
			stack = append(stack, frame{task: child})
			continue
		}
		result = tr.Combine(f.vals)
		stack = stack[:len(stack)-1]
		if len(stack) > 0 {
			p := &stack[len(stack)-1]
			p.vals = append(p.vals, result)
		}
	}
	return result
}

// TotalWork returns the sum of Work multipliers over all tasks.
func (tr *Tree) TotalWork() int64 {
	var total int64
	tr.Walk(func(t *Task) { total += int64(t.Work) })
	return total
}

// finalize assigns preorder IDs and computes the cached statistics.
func finalize(tr *Tree) *Tree {
	var id int32
	type frame struct {
		t *Task
		d int
	}
	stack := []frame{{tr.Root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		f.t.ID = id
		id++
		tr.count++
		if f.d > tr.depth {
			tr.depth = f.d
		}
		if f.t.IsLeaf() {
			tr.leaves++
		}
		if f.t.Work < 1 {
			f.t.Work = 1
		}
		for i := len(f.t.Kids) - 1; i >= 0; i-- {
			stack = append(stack, frame{f.t.Kids[i], f.d + 1})
		}
	}
	return tr
}

func sum(vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

// NewFib returns the naive doubly-recursive Fibonacci computation:
//
//	fib(M) <- if M < 2 then M else fib(M-1) + fib(M-2)
//
// It yields a not-so-well-balanced binary tree with 2·F(M+1)−1 goals.
// The paper uses M in {7, 9, 11, 13, 15, 18}.
func NewFib(m int) *Tree {
	if m < 0 || m > 40 {
		panic("workload: fib argument out of range [0,40]")
	}
	var gen func(k int) *Task
	gen = func(k int) *Task {
		if k < 2 {
			return &Task{Value: int64(k), Work: 1}
		}
		return &Task{Kids: []*Task{gen(k - 1), gen(k - 2)}, Work: 1}
	}
	return finalize(&Tree{
		Name:    fmt.Sprintf("fib(%d)", m),
		Root:    gen(m),
		Combine: sum,
	})
}

// NewDC returns the divide-and-conquer computation used by Lin:
//
//	dc(M,N) <- if M = N then M else dc(M,(M+N)/2) + dc(1+(M+N)/2, N)
//
// It yields a well-balanced binary tree with 2·(N−M+1)−1 goals and value
// M+(M+1)+…+N. The paper uses dc(1,X) for X in {21, 55, 144, 377, 987,
// 4181} (Fibonacci numbers, matching the fib sizes goal-for-goal).
func NewDC(m, n int) *Tree {
	if m > n {
		panic("workload: dc requires M <= N")
	}
	if n-m > 1<<22 {
		panic("workload: dc range too large")
	}
	var gen func(lo, hi int) *Task
	gen = func(lo, hi int) *Task {
		if lo == hi {
			return &Task{Value: int64(lo), Work: 1}
		}
		mid := (lo + hi) / 2
		return &Task{Kids: []*Task{gen(lo, mid), gen(mid+1, hi)}, Work: 1}
	}
	return finalize(&Tree{
		Name:    fmt.Sprintf("dc(%d,%d)", m, n),
		Root:    gen(m, n),
		Combine: sum,
	})
}

// NewFullBinary returns a perfectly balanced binary tree of the given
// depth whose leaves all carry value 1, so the root value is 2^depth.
func NewFullBinary(depth int) *Tree {
	if depth < 0 || depth > 24 {
		panic("workload: full binary depth out of range [0,24]")
	}
	var gen func(d int) *Task
	gen = func(d int) *Task {
		if d == 0 {
			return &Task{Value: 1, Work: 1}
		}
		return &Task{Kids: []*Task{gen(d - 1), gen(d - 1)}, Work: 1}
	}
	return finalize(&Tree{
		Name:    fmt.Sprintf("bin(%d)", depth),
		Root:    gen(depth),
		Combine: sum,
	})
}

// NewSkewed returns a maximally unbalanced ("caterpillar") binary tree
// with n inner nodes: each inner node has one leaf child and one inner
// child. Its depth equals n, so available parallelism is minimal — a
// stress case for any distribution scheme.
func NewSkewed(n int) *Tree {
	if n < 1 || n > 1<<20 {
		panic("workload: skewed size out of range")
	}
	// Build bottom-up to avoid deep recursion.
	node := &Task{Value: 1, Work: 1}
	for i := 0; i < n; i++ {
		node = &Task{Kids: []*Task{{Value: 1, Work: 1}, node}, Work: 1}
	}
	return finalize(&Tree{
		Name:    fmt.Sprintf("skew(%d)", n),
		Root:    node,
		Combine: sum,
	})
}

// NewChain returns a unary chain of n tasks ending in a single leaf —
// a computation with zero parallelism. Any load balancer should yield
// speedup <= 1 on it.
func NewChain(n int) *Tree {
	if n < 1 || n > 1<<20 {
		panic("workload: chain size out of range")
	}
	node := &Task{Value: 7, Work: 1}
	for i := 1; i < n; i++ {
		node = &Task{Kids: []*Task{node}, Work: 1}
	}
	return finalize(&Tree{
		Name:    fmt.Sprintf("chain(%d)", n),
		Root:    node,
		Combine: func(vals []int64) int64 { return vals[0] },
	})
}

// NewImbalanced returns a binary tree with exactly the given number of
// goals whose subtree weights split leftFrac : 1-leftFrac at every
// inner node — a dial between NewDC's perfect balance (0.5) and
// NewSkewed's caterpillar (→ 1.0). Leaves carry value 1.
func NewImbalanced(goals int, leftFrac float64) *Tree {
	if goals < 1 {
		panic("workload: imbalanced tree needs at least 1 goal")
	}
	if leftFrac <= 0 || leftFrac >= 1 {
		panic("workload: leftFrac must be in (0,1)")
	}
	var gen func(budget int) *Task
	gen = func(budget int) *Task {
		if budget <= 1 {
			return &Task{Value: 1, Work: 1}
		}
		rest := budget - 1 // this node
		left := int(float64(rest) * leftFrac)
		if left < 1 {
			left = 1
		}
		if left >= rest {
			left = rest - 1
		}
		if left < 1 {
			// rest == 1: single child keeps the count exact.
			return &Task{Kids: []*Task{gen(rest)}, Work: 1}
		}
		return &Task{Kids: []*Task{gen(left), gen(rest - left)}, Work: 1}
	}
	return finalize(&Tree{
		Name:    fmt.Sprintf("imbal(%d,%.2f)", goals, leftFrac),
		Root:    gen(goals),
		Combine: sum,
	})
}

// RandomConfig parameterizes NewRandom.
type RandomConfig struct {
	Seed      int64
	Goals     int // approximate total task count (>= 1)
	MaxKids   int // maximum children per inner task (>= 2)
	MaxWork   int // task Work drawn uniformly from [1, MaxWork]
	LeafValue int64
}

// NewRandom returns a random tree with roughly cfg.Goals tasks: an
// irregular computation whose parallelism waxes and wanes, approximating
// the paper's "in real life computations, the parallelism may rise and
// fall in cycles".
func NewRandom(cfg RandomConfig) *Tree {
	if cfg.Goals < 1 {
		panic("workload: random tree needs at least 1 goal")
	}
	if cfg.MaxKids < 2 {
		cfg.MaxKids = 2
	}
	if cfg.MaxWork < 1 {
		cfg.MaxWork = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	budget := cfg.Goals - 1
	root := &Task{Work: int32(1 + rng.Intn(cfg.MaxWork))}
	frontier := []*Task{root}
	for budget > 0 && len(frontier) > 0 {
		// Expand a random frontier node.
		i := rng.Intn(len(frontier))
		node := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		kids := 2 + rng.Intn(cfg.MaxKids-1)
		if kids > budget {
			kids = budget
		}
		if kids == 0 {
			break
		}
		for k := 0; k < kids; k++ {
			child := &Task{Work: int32(1 + rng.Intn(cfg.MaxWork))}
			node.Kids = append(node.Kids, child)
			// Half the children become leaves immediately; the rest may
			// expand further.
			if rng.Intn(2) == 0 {
				frontier = append(frontier, child)
			}
		}
		budget -= kids
	}
	// Terminal nodes become leaves with the configured value.
	var fix func(tr *Task)
	fix = func(tr *Task) {
		if len(tr.Kids) == 0 {
			tr.Value = cfg.LeafValue
			return
		}
		for _, k := range tr.Kids {
			fix(k)
		}
	}
	fix(root)
	return finalize(&Tree{
		Name:    fmt.Sprintf("random(%d,seed=%d)", cfg.Goals, cfg.Seed),
		Root:    root,
		Combine: sum,
	})
}

// FibValue returns fib(n) computed iteratively (the expected simulation
// result for NewFib(n)).
func FibValue(n int) int64 {
	a, b := int64(0), int64(1)
	for i := 0; i < n; i++ {
		a, b = b, a+b
	}
	return a
}

// FibGoalCount returns the number of goals in NewFib(n): 2·F(n+1) − 1.
func FibGoalCount(n int) int {
	return int(2*FibValue(n+1) - 1)
}

// DCSum returns the expected result of dc(m,n): the sum m+(m+1)+…+n.
func DCSum(m, n int) int64 {
	lo, hi := int64(m), int64(n)
	return (hi*(hi+1) - lo*(lo-1)) / 2
}

// DCGoalCount returns the number of goals in NewDC(m,n): 2·(n−m+1) − 1.
func DCGoalCount(m, n int) int {
	return 2*(n-m+1) - 1
}

// PaperFibSizes are the six Fibonacci problem sizes used in the paper.
var PaperFibSizes = []int{7, 9, 11, 13, 15, 18}

// PaperDCSizes are the six dc(1,X) upper bounds used in the paper.
var PaperDCSizes = []int{21, 55, 144, 377, 987, 4181}

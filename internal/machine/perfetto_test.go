package machine

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
	"cwnsim/internal/workload"
)

var updatePerfettoGolden = flag.Bool("update-perfetto-golden", false,
	"rewrite testdata/perfetto_golden.json from the pinned run")

// TestWritePerfettoGolden pins the span exporter's output byte for byte
// on a seed-pinned run: the golden file is what -trace-out would write,
// and any schema drift (field renames, ordering changes, float
// formatting) fails here before it breaks a user's Perfetto import. The
// test also checks the structural schema independently of the golden
// bytes, so a legitimate regeneration still has its shape verified.
func TestWritePerfettoGolden(t *testing.T) {
	var sp trace.Spans
	cfg := DefaultConfig()
	cfg.Trace = &sp
	st := NewStream(topology.NewGrid(3, 3), NewSingleJob(workload.NewFib(8)), spread{}, cfg).Run()
	if !st.Completed {
		t.Fatal("pinned run did not complete")
	}
	var buf bytes.Buffer
	if err := sp.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		ph, _ := ev["ph"].(string)
		if ph == "" {
			t.Fatalf("event missing ph: %v", ev)
		}
		phases[ph]++
		if ph != "M" {
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("non-metadata event missing ts: %v", ev)
			}
		}
	}
	// Every phase the exporter documents must appear: process metadata,
	// goal-lifetime async spans, execution slices, and hop instants.
	for _, ph := range []string{"M", "b", "e", "X", "i"} {
		if phases[ph] == 0 {
			t.Errorf("no %q events in output", ph)
		}
	}

	golden := filepath.Join("testdata", "perfetto_golden.json")
	if *updatePerfettoGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update-perfetto-golden): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Fatalf("perfetto output diverged from golden (%d vs %d bytes); regenerate with -update-perfetto-golden if intentional",
			buf.Len(), len(want))
	}
}

// Package analysistest runs an analyzer over a fixture module and
// checks its diagnostics against `// want` expectations embedded in
// the fixture source — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the repo's
// stdlib-only analysis framework.
//
// A fixture is a directory under testdata/src/<name>/ with its own
// go.mod (so the fixture is a self-contained module the loader can
// `go list`) and ordinary Go files. A line expected to trigger a
// diagnostic carries a trailing comment
//
//	x = time.Now() // want `time\.Now is wall-clock`
//
// holding one or more quoted regular expressions. Every diagnostic
// must match a want on its line, and every want must be matched by a
// diagnostic — unexpected findings and unmatched expectations are both
// test failures, so a fixture with no wants doubles as a proof the
// analyzer stays silent on compliant code.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"cwnsim/internal/analysis"
)

// want is one parsed expectation: a regex anchored to a file line.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture module at dir, applies the analyzer, and
// reports any mismatch between diagnostics and `// want` expectations.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkgs, err := analysis.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s contains no packages", dir)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					ws, err := parseWants(pkg.Fset, c.Pos(), c.Text)
					if err != nil {
						t.Fatalf("%s: %v", pkg.Fset.Position(c.Pos()), err)
					}
					wants = append(wants, ws...)
				}
			}
		}
	}

	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, dir, err)
	}

	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s [%s]", d.Pos, d.Message, d.Analyzer)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// claim marks the first unmatched want on the diagnostic's line whose
// regex matches the message.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the quoted regexes from a `// want "re" ...`
// comment; a comment without the marker yields nil.
func parseWants(fset *token.FileSet, pos token.Pos, text string) ([]*want, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(rest, "want ") && !strings.HasPrefix(rest, "want\t") {
		return nil, nil
	}
	rest = strings.TrimPrefix(rest, "want")
	p := fset.Position(pos)
	var out []*want
	for {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, strconv.ErrSyntax
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return nil, err
		}
		out = append(out, &want{file: p.Filename, line: p.Line, re: re, raw: pat})
		rest = rest[len(q):]
	}
	if len(out) == 0 {
		return nil, strconv.ErrSyntax // a bare "// want" is a fixture bug
	}
	return out, nil
}

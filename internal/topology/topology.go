// Package topology models the interconnection networks of the simulated
// multiprocessor: which PEs are neighbors, which communication channels
// (point-to-point links or multi-drop buses) connect them, shortest-path
// distances, and next-hop routing.
//
// The paper's experiments use three families: the 2-dimensional
// nearest-neighbor grid (with and without wraparound), the bus-based
// double-lattice-mesh from Kale's ICPP 1986 "Optimal Communication
// Neighborhoods", and — in the appendix — binary hypercubes. Ring, star,
// complete and tree networks are included for tests and extensions.
//
// A Channel is the unit of communication contention: a point-to-point
// link has two members, a bus has span-many. Two PEs are neighbors iff
// they share at least one channel; one channel transaction is one "hop".
package topology

import (
	"fmt"
	"sort"
	"sync"
)

// Channel is a communication resource shared by its member PEs. For
// point-to-point links len(Members) == 2; for buses it is the bus span.
// Exactly one message can occupy a channel at a time.
type Channel struct {
	ID      int
	Members []int
}

// Topology is an immutable interconnection network. Construct via the
// New* functions. All slices returned by accessors must be treated as
// read-only; they are shared across concurrent simulations.
//
// A topology comes in one of two forms. The materialized form (every
// New* constructor except the *Implicit ones) stores the channel list
// and adjacency and answers routing queries from a lazily built
// all-pairs BFS table — it handles arbitrary irregular networks but
// costs O(n²) memory once routing is touched. The implicit form
// (NewGridImplicit, NewTorusImplicit, NewHypercubeImplicit) stores only
// the dimensions and computes neighbors, channel IDs, distances and
// next hops arithmetically, bit-for-bit identical to the materialized
// numbering — O(1) memory at any machine size. The allocation-free
// Append*/Degree/NumChannels/ChannelAt accessors work on both forms;
// the slice-returning accessors (Channels, Neighbors, ChannelsOf,
// ChannelsBetween) also work on both but allocate per call on implicit
// topologies, so hot paths should prefer the Append* family.
type Topology struct {
	name     string
	n        int
	channels []Channel
	chansOf  [][]int // PE -> channel IDs, ascending
	nbrs     [][]int // PE -> neighbor PE IDs, ascending
	between  map[pairKey][]int

	// Implicit (computed-neighbor) form: impl selects the family and
	// rows/cols/dim its dimensions; the materialized fields above stay
	// nil. See implicit.go.
	impl implKind
	rows int
	cols int
	dim  int

	routeOnce sync.Once
	dist      [][]int32 // all-pairs shortest hop counts
	next      [][]int32 // next[src][dst] = first hop on a shortest path
	diameter  int
}

type pairKey struct{ a, b int }

// build assembles the derived structures from a channel list.
func build(name string, n int, channels []Channel) *Topology {
	if n <= 0 {
		panic("topology: non-positive size")
	}
	t := &Topology{
		name:     name,
		n:        n,
		channels: channels,
		chansOf:  make([][]int, n),
		nbrs:     make([][]int, n),
		between:  make(map[pairKey][]int),
	}
	nbrSet := make([]map[int]bool, n)
	for i := range nbrSet {
		nbrSet[i] = make(map[int]bool)
	}
	for ci := range channels {
		ch := &channels[ci]
		ch.ID = ci
		if len(ch.Members) < 2 {
			panic(fmt.Sprintf("topology %s: channel %d has %d members", name, ci, len(ch.Members)))
		}
		seen := make(map[int]bool, len(ch.Members))
		for _, pe := range ch.Members {
			if pe < 0 || pe >= n {
				panic(fmt.Sprintf("topology %s: channel %d member %d out of range", name, ci, pe))
			}
			if seen[pe] {
				panic(fmt.Sprintf("topology %s: channel %d lists PE %d twice", name, ci, pe))
			}
			seen[pe] = true
			t.chansOf[pe] = append(t.chansOf[pe], ci)
		}
		for _, a := range ch.Members {
			for _, b := range ch.Members {
				if a == b {
					continue
				}
				nbrSet[a][b] = true
				t.between[pairKey{a, b}] = append(t.between[pairKey{a, b}], ci)
			}
		}
	}
	for pe := range t.nbrs {
		for b := range nbrSet[pe] {
			t.nbrs[pe] = append(t.nbrs[pe], b)
		}
		sort.Ints(t.nbrs[pe])
	}
	return t
}

// Name returns a human-readable identifier, e.g. "grid-10x10" or
// "dlm-10x10-s5".
func (t *Topology) Name() string { return t.name }

// Size returns the number of PEs.
func (t *Topology) Size() int { return t.n }

// Channels returns all communication channels. On an implicit topology
// this materializes a fresh list on every call — cold paths only; use
// NumChannels/ChannelAt/AppendChannelMembers to stay allocation-free.
func (t *Topology) Channels() []Channel {
	if t.impl == implNone {
		return t.channels
	}
	chans := make([]Channel, t.NumChannels())
	for ci := range chans {
		chans[ci] = Channel{ID: ci, Members: t.appendImplChanMembers(nil, ci)}
	}
	return chans
}

// NumChannels returns the number of communication channels.
func (t *Topology) NumChannels() int {
	switch t.impl {
	case implNone:
		return len(t.channels)
	case implGrid:
		return t.gridChannelCount()
	case implTorus:
		n := t.gridChannelCount()
		if t.cols > 2 {
			n += t.rows
		}
		if t.rows > 2 {
			n += t.cols
		}
		return n
	default: // implHypercube
		if t.dim == 0 {
			return 0
		}
		return t.dim << uint(t.dim-1)
	}
}

// ChannelAt returns channel ci. On a materialized topology the Members
// slice is shared (read-only); on an implicit one it is freshly
// allocated — use AppendChannelMembers to reuse a buffer.
func (t *Topology) ChannelAt(ci int) Channel {
	if t.impl == implNone {
		return t.channels[ci]
	}
	return Channel{ID: ci, Members: t.appendImplChanMembers(nil, ci)}
}

// AppendChannelMembers appends channel ci's member PEs to dst and
// returns it, in the channel's stored member order. Allocation-free on
// both forms when dst has capacity.
func (t *Topology) AppendChannelMembers(dst []int, ci int) []int {
	if t.impl == implNone {
		return append(dst, t.channels[ci].Members...)
	}
	return t.appendImplChanMembers(dst, ci)
}

// ChannelsOf returns the IDs of channels PE pe is attached to,
// ascending. Allocates per call on implicit topologies.
func (t *Topology) ChannelsOf(pe int) []int {
	if t.impl == implNone {
		return t.chansOf[pe]
	}
	return t.appendImplChansOf(nil, pe)
}

// AppendChannelsOf appends the IDs of pe's channels to dst and returns
// it, ascending. Allocation-free on both forms when dst has capacity.
func (t *Topology) AppendChannelsOf(dst []int, pe int) []int {
	if t.impl == implNone {
		return append(dst, t.chansOf[pe]...)
	}
	return t.appendImplChansOf(dst, pe)
}

// Neighbors returns the PEs sharing at least one channel with pe, in
// ascending order. Allocates per call on implicit topologies.
func (t *Topology) Neighbors(pe int) []int {
	if t.impl == implNone {
		return t.nbrs[pe]
	}
	return t.appendImplNeighbors(nil, pe)
}

// AppendNeighbors appends pe's neighbors to dst and returns it, in
// ascending order. Allocation-free on both forms when dst has capacity.
func (t *Topology) AppendNeighbors(dst []int, pe int) []int {
	if t.impl == implNone {
		return append(dst, t.nbrs[pe]...)
	}
	return t.appendImplNeighbors(dst, pe)
}

// Degree returns pe's neighbor count without materializing the list.
func (t *Topology) Degree(pe int) int {
	switch t.impl {
	case implNone:
		return len(t.nbrs[pe])
	case implGrid:
		return gridDimDegree(pe/t.cols, t.rows) + gridDimDegree(pe%t.cols, t.cols)
	case implTorus:
		return torusDimDegree(t.rows) + torusDimDegree(t.cols)
	default: // implHypercube
		return t.dim
	}
}

// ChannelsBetween returns the channels directly connecting a and b
// (nil if they are not neighbors). Bus topologies may offer several.
// Allocates per call on implicit topologies.
func (t *Topology) ChannelsBetween(a, b int) []int {
	if t.impl == implNone {
		return t.between[pairKey{a, b}]
	}
	if ci, ok := t.implLinkBetween(a, b); ok {
		return []int{ci}
	}
	return nil
}

// AppendChannelsBetween appends the IDs of the channels directly
// connecting a and b to dst and returns it. Allocation-free on both
// forms when dst has capacity.
func (t *Topology) AppendChannelsBetween(dst []int, a, b int) []int {
	if t.impl == implNone {
		return append(dst, t.between[pairKey{a, b}]...)
	}
	if ci, ok := t.implLinkBetween(a, b); ok {
		return append(dst, ci)
	}
	return dst
}

// ensureRouting computes all-pairs BFS distances, next hops and the
// diameter, once, on first use.
func (t *Topology) ensureRouting() {
	t.routeOnce.Do(func() {
		n := t.n
		t.dist = make([][]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			d := make([]int32, n)
			for i := range d {
				d[i] = -1
			}
			d[src] = 0
			queue = queue[:0]
			queue = append(queue, int32(src))
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range t.nbrs[u] {
					if d[v] < 0 {
						d[v] = d[u] + 1
						queue = append(queue, int32(v))
					}
				}
			}
			t.dist[src] = d
		}
		diam := 0
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				dd := t.dist[src][dst]
				if dd < 0 {
					panic(fmt.Sprintf("topology %s: disconnected (%d unreachable from %d)", t.name, dst, src))
				}
				if int(dd) > diam {
					diam = int(dd)
				}
			}
		}
		t.diameter = diam
		// next[src][dst]: lowest-numbered neighbor of src on a shortest path.
		t.next = make([][]int32, n)
		for src := 0; src < n; src++ {
			row := make([]int32, n)
			for dst := 0; dst < n; dst++ {
				if src == dst {
					row[dst] = int32(src)
					continue
				}
				row[dst] = -1
				for _, nb := range t.nbrs[src] {
					if t.dist[nb][dst] == t.dist[src][dst]-1 {
						row[dst] = int32(nb)
						break // neighbors ascending => deterministic choice
					}
				}
				if row[dst] < 0 {
					panic("topology: no next hop on shortest path")
				}
			}
			t.next[src] = row
		}
	})
}

// Dist returns the shortest hop count between a and b.
func (t *Topology) Dist(a, b int) int {
	if t.impl != implNone {
		return t.implDist(a, b)
	}
	t.ensureRouting()
	return int(t.dist[a][b])
}

// NextHop returns the neighbor of from that is the first hop on a
// shortest path to to — the lowest-numbered such neighbor, on both
// forms. NextHop(x, x) == x.
func (t *Topology) NextHop(from, to int) int {
	if t.impl != implNone {
		return t.implNextHop(from, to)
	}
	t.ensureRouting()
	return int(t.next[from][to])
}

// Diameter returns the maximum shortest-path distance over all PE pairs.
func (t *Topology) Diameter() int {
	if t.impl != implNone {
		return t.implDiameter()
	}
	t.ensureRouting()
	return t.diameter
}

// MaxDegree returns the largest neighbor count of any PE.
func (t *Topology) MaxDegree() int {
	switch t.impl {
	case implNone:
		max := 0
		for _, nb := range t.nbrs {
			if len(nb) > max {
				max = len(nb)
			}
		}
		return max
	case implGrid, implTorus:
		// The per-dimension maxima coincide for both families, and a PE
		// attaining both always exists (interior of each dimension, or
		// any PE once the dimension wraps).
		return torusDimDegree(t.rows) + torusDimDegree(t.cols)
	default: // implHypercube
		return t.dim
	}
}

// AvgDegree returns the mean neighbor count.
func (t *Topology) AvgDegree() float64 {
	if t.impl != implNone {
		// Implicit families are point-to-point: every channel
		// contributes two neighbor list entries.
		return 2 * float64(t.NumChannels()) / float64(t.n)
	}
	total := 0
	for _, nb := range t.nbrs {
		total += len(nb)
	}
	return float64(total) / float64(t.n)
}

// String implements fmt.Stringer.
func (t *Topology) String() string {
	return fmt.Sprintf("%s (%d PEs, %d channels, diameter %d)", t.name, t.n, t.NumChannels(), t.Diameter())
}

package experiments

import (
	"math"
	"testing"
)

// TestHotPathAllocationBudget guards the PR 2 pooled paths end to end:
// with events, wire messages, goals, pending tasks and job states all
// recycled, a whole open-system run must average well under one
// allocation per ten processed events (the pre-optimization hot path
// cost ~2.3 allocations per event). The budget is deliberately loose —
// it catches a reverted pool, not scheduler noise. The gated-off
// variant (Config.TrackGoalDetail off via NoGoalDetail) must meet the
// same budget and never allocate more than the detailed path.
func TestHotPathAllocationBudget(t *testing.T) {
	measure := func(t *testing.T, spec RunSpec) float64 {
		t.Helper()
		// Warm the topology/tree caches so they are not billed to the run.
		spec.Topo.Build()
		spec.Workload.Build()
		r, err := spec.ExecuteErr()
		if err != nil {
			t.Fatal(err)
		}
		events := r.Stats.Events
		if events == 0 {
			t.Fatal("run processed no events")
		}
		allocs := testing.AllocsPerRun(3, func() {
			if _, err := spec.ExecuteErr(); err != nil {
				t.Fatal(err)
			}
		})
		if perEvent := allocs / float64(events); perEvent > 0.1 {
			t.Errorf("hot path allocates %.4f per event (%.0f per run over %d events), budget 0.1 — a pool has regressed",
				perEvent, allocs, events)
		}
		return allocs
	}
	spec := RunSpec{
		Topo:     Grid(5),
		Workload: Fib(8),
		Strategy: CWN(3, 1),
		Arrival:  PoissonArrivals(40, 150),
	}
	detailed := measure(t, spec)
	gatedSpec := spec
	gatedSpec.NoGoalDetail = true
	gated := measure(t, gatedSpec)
	// The gate exists to shed work; it must never add allocations. A
	// small slack absorbs AllocsPerRun jitter.
	if gated > detailed+8 {
		t.Errorf("gated-off path allocates more than the detailed one: %.0f vs %.0f per run", gated, detailed)
	}
}

// TestLargeGridPoissonSmoke drives the scale regime the ROADMAP targets
// — a 32×32 grid under a 2000-job Poisson stream — end to end, with the
// bounded sojourn sample exercised so a 100k-job stream would not hold
// every observation. Guarded by -short: it is the suite's one
// deliberately big run.
func TestLargeGridPoissonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 32x32 2k-job smoke in -short mode")
	}
	spec := RunSpec{
		Topo:           Grid(32),
		Workload:       Fib(9),
		Strategy:       CWN(9, 2),
		Arrival:        PoissonArrivals(40, 2000),
		Warmup:         4_000,
		SampleInterval: 50,
		SojournBound:   500,
		SeriesBound:    64,
	}
	r, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	st := r.Stats
	if !st.Completed {
		t.Fatalf("2k-job stream did not drain: %d/%d jobs done at t=%d", st.JobsDone, st.JobsInjected, st.Makespan)
	}
	if st.JobsDone != 2000 {
		t.Fatalf("JobsDone = %d, want 2000", st.JobsDone)
	}
	if !st.Sojourn.Bounded() {
		t.Fatal("sojourn sample did not collapse under SojournBound")
	}
	if len(st.JobRecords) != 500 {
		t.Fatalf("JobRecords holds %d records under SojournBound=500 — run memory is not bounded", len(st.JobRecords))
	}
	if st.Sojourn.N() != 2000 {
		t.Fatalf("bounded Sojourn sample n = %d, want all 2000 completions", st.Sojourn.N())
	}
	if n := st.Timeline.Len(); n == 0 || n > 64 {
		t.Fatalf("bounded Timeline holds %d points under SeriesBound=64", n)
	}
	if !st.Timeline.Bounded() {
		t.Fatal("Timeline did not thin under SeriesBound — run memory is not bounded")
	}
	if p99 := st.SojournP99(); math.IsNaN(p99) || p99 <= 0 {
		t.Fatalf("implausible p99 sojourn %f", p99)
	}
	if u := st.SteadyUtilization(); u <= 0 || u > 1 {
		t.Fatalf("SteadyUtilization = %f, want in (0,1]", u)
	}
	if tput := st.SteadyThroughput(); tput <= 0 {
		t.Fatalf("SteadyThroughput = %f, want > 0", tput)
	}
	if st.Events < 1_000_000 {
		t.Fatalf("only %d events — the large grid did not actually run at scale", st.Events)
	}
}

// Heterogeneous: the paper assumes identical PEs; this extension study
// asks how the same strategies behave when a quarter of the machine
// runs at one-fifth speed (a 1988 machine with a batch of slow boards,
// or a 2020s cluster with thermally throttled nodes). Load-gradient
// schemes adapt automatically — slow PEs' queues back up, so neighbors
// stop feeding them — while load-blind scattering keeps force-feeding
// the slow nodes.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func main() {
	topo := topology.NewGrid(8, 8)
	tree := workload.NewFib(15)

	speeds := make([]float64, topo.Size())
	for i := range speeds {
		if i%4 == 0 {
			speeds[i] = 0.2 // every fourth PE at one-fifth speed
		} else {
			speeds[i] = 1.0
		}
	}

	strategies := []machine.Strategy{
		core.PaperCWNGrid(),
		core.NewACWN(9, 2, 3, 40),
		core.PaperGMGrid(),
		core.NewRandomWalk(3), // load-blind control
	}

	fmt.Printf("%s on %s; 16 of 64 PEs at 0.2x speed\n\n", tree, topo)
	fmt.Printf("%-18s %12s %12s %16s\n", "strategy", "uniform", "heterogeneous", "slowdown factor")
	for _, strat := range strategies {
		uni := machine.New(topo, tree, strat, machine.DefaultConfig()).Run()
		cfg := machine.DefaultConfig()
		cfg.PESpeeds = speeds
		het := machine.New(topo, tree, strat, cfg).Run()
		fmt.Printf("%-18s %12.2f %12.2f %15.2fx\n",
			strat.Name(), uni.Speedup(), het.Speedup(),
			float64(het.Makespan)/float64(uni.Makespan))
	}
	fmt.Println("\nspeedup = total busy time / makespan; lower slowdown factor = better adaptation")
}

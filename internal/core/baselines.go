package core

import (
	"fmt"

	"cwnsim/internal/machine"
)

// Local is the no-distribution baseline: every goal executes where it
// was created. It bounds the comparison from below (speedup 1 on any
// workload, since the whole tree stays on the root PE) and doubles as a
// sequential-execution oracle in tests.
type Local struct{}

// NewLocal returns the local-only baseline.
func NewLocal() *Local { return &Local{} }

// Name implements machine.Strategy.
func (s *Local) Name() string { return "Local" }

// Setup implements machine.Strategy.
func (s *Local) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *Local) NewNode(pe *machine.PE) machine.NodeStrategy { return localNode{pe} }

type localNode struct{ pe *machine.PE }

func (n localNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated, machine.GoalArrived:
		n.pe.Accept(ev.Goal)
	}
}

// RandomWalk places each new goal at the end of a fixed-length uniform
// random walk, ignoring load entirely. It isolates how much of CWN's
// benefit comes from mere scattering versus from following the load
// gradient.
type RandomWalk struct {
	// Steps is the exact number of random hops each goal takes.
	Steps int
}

// NewRandomWalk returns a random-walk strategy taking steps hops.
func NewRandomWalk(steps int) *RandomWalk {
	if steps < 1 {
		panic("core: RandomWalk steps must be >= 1")
	}
	return &RandomWalk{Steps: steps}
}

// Name implements machine.Strategy.
func (s *RandomWalk) Name() string { return fmt.Sprintf("RandomWalk(%d)", s.Steps) }

// Setup implements machine.Strategy.
func (s *RandomWalk) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *RandomWalk) NewNode(pe *machine.PE) machine.NodeStrategy {
	return &randomWalkNode{s: s, pe: pe}
}

type randomWalkNode struct {
	s  *RandomWalk
	pe *machine.PE
}

func (n *randomWalkNode) hop(g *machine.Goal) {
	nbrs := n.pe.Neighbors()
	if len(nbrs) == 0 {
		n.pe.Accept(g)
		return
	}
	to := nbrs[n.pe.Machine().Engine().Rng().Intn(len(nbrs))]
	n.pe.SendGoal(to, g)
}

func (n *randomWalkNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		n.hop(ev.Goal)
	case machine.GoalArrived:
		if ev.Goal.Hops >= n.s.Steps {
			n.pe.Accept(ev.Goal)
			return
		}
		n.hop(ev.Goal)
	}
}

// RoundRobin scatters each PE's new goals over its neighbors in strict
// rotation, one hop, load-blind: the cheapest conceivable sender-
// initiated scheme.
type RoundRobin struct{}

// NewRoundRobin returns the rotating-neighbor baseline.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements machine.Strategy.
func (s *RoundRobin) Name() string { return "RoundRobin" }

// Setup implements machine.Strategy.
func (s *RoundRobin) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *RoundRobin) NewNode(pe *machine.PE) machine.NodeStrategy {
	return &roundRobinNode{pe: pe}
}

type roundRobinNode struct {
	pe   *machine.PE
	next int
}

func (n *roundRobinNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		nbrs := n.pe.Neighbors()
		if len(nbrs) == 0 {
			n.pe.Accept(ev.Goal)
			return
		}
		to := nbrs[n.next%len(nbrs)]
		n.next++
		n.pe.SendGoal(to, ev.Goal)
	case machine.GoalArrived:
		n.pe.Accept(ev.Goal)
	}
}

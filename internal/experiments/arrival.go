package experiments

import (
	"fmt"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
	"cwnsim/internal/workload"
)

// ArrivalSpec names an arrival process: how root goals ("jobs") enter
// the machine over virtual time. The zero value (or Kind "single") is
// the paper's closed system — one job at time zero — so existing specs
// keep their meaning. Stream kinds turn a run into an open system whose
// latency (sojourn time) and throughput are measured per job.
type ArrivalSpec struct {
	Kind   string  `json:"kind,omitempty"`   // ""/single|interval|poisson|burst
	Jobs   int     `json:"jobs,omitempty"`   // stream length in jobs
	Gap    int64   `json:"gap,omitempty"`    // fixed inter-arrival gap (interval, burst)
	Mean   float64 `json:"mean,omitempty"`   // mean inter-arrival gap (poisson)
	Burst  int     `json:"burst,omitempty"`  // jobs per burst (burst)
	Bursts int     `json:"bursts,omitempty"` // number of bursts (burst)
}

// SingleArrival returns the paper's one-shot arrival spec.
func SingleArrival() ArrivalSpec { return ArrivalSpec{Kind: "single"} }

// IntervalArrivals returns a fixed-gap stream of jobs arrivals.
func IntervalArrivals(gap int64, jobs int) ArrivalSpec {
	return ArrivalSpec{Kind: "interval", Gap: gap, Jobs: jobs}
}

// PoissonArrivals returns a Poisson stream: jobs arrivals with
// exponential inter-arrival gaps of the given mean (offered rate
// 1/mean jobs per unit time).
func PoissonArrivals(mean float64, jobs int) ArrivalSpec {
	return ArrivalSpec{Kind: "poisson", Mean: mean, Jobs: jobs}
}

// BurstArrivals returns a bursty stream: bursts rounds of burst
// simultaneous jobs, gap units apart.
func BurstArrivals(burst int, gap int64, bursts int) ArrivalSpec {
	return ArrivalSpec{Kind: "burst", Burst: burst, Gap: gap, Bursts: bursts}
}

// IsSingle reports whether the spec is the closed-system one-shot run
// (the zero value included).
func (as ArrivalSpec) IsSingle() bool { return as.Kind == "" || as.Kind == "single" }

// Build constructs a fresh JobSource emitting copies of tree, via the
// arrival registry.
func (as ArrivalSpec) Build(tree *workload.Tree) machine.JobSource {
	kind := as.Kind
	if kind == "" {
		kind = "single"
	}
	return arrivalRegistry.build(kind, arrivalInput{Spec: as, Tree: tree})
}

// Label is a short stable identifier, e.g. "poisson(g=50,n=200)";
// single-job specs label as "single" so legacy run names are unchanged
// when the label is elided.
func (as ArrivalSpec) Label() string {
	switch {
	case as.IsSingle():
		return "single"
	case as.Kind == "poisson":
		return fmt.Sprintf("poisson(g=%g,n=%d)", as.Mean, as.Jobs)
	case as.Kind == "interval":
		return fmt.Sprintf("interval(g=%d,n=%d)", as.Gap, as.Jobs)
	case as.Kind == "burst":
		return fmt.Sprintf("burst(%dx%d,g=%d)", as.Bursts, as.Burst, as.Gap)
	default:
		return as.Kind
	}
}

func init() {
	RegisterArrival("single", func(_ ArrivalSpec, tree *workload.Tree) machine.JobSource {
		return machine.NewSingleJob(tree)
	})
	RegisterArrival("interval", func(as ArrivalSpec, tree *workload.Tree) machine.JobSource {
		return machine.NewFixedInterval(tree, sim.Time(as.Gap), as.Jobs)
	})
	RegisterArrival("poisson", func(as ArrivalSpec, tree *workload.Tree) machine.JobSource {
		return machine.NewPoisson(tree, as.Mean, as.Jobs)
	})
	RegisterArrival("burst", func(as ArrivalSpec, tree *workload.Tree) machine.JobSource {
		return machine.NewBurst(tree, as.Burst, sim.Time(as.Gap), as.Bursts)
	})
}

package report

import (
	"fmt"
	"io"
	"strings"
)

// shades maps activity 0..1 to increasingly dense glyphs — the terminal
// stand-in for ORACLE's graphics monitor color continuum ("red: busy,
// blue: idle").
var shades = []rune(" .:-=+*#%@")

// Heatmap renders per-PE values in [0,1] laid out on a rows×cols grid.
type Heatmap struct {
	Title      string
	Rows, Cols int
	Values     []float64 // indexed pe = r*Cols + c
}

// NewHeatmap creates a heat map for a rows×cols PE array.
func NewHeatmap(title string, rows, cols int) *Heatmap {
	return &Heatmap{Title: title, Rows: rows, Cols: cols, Values: make([]float64, rows*cols)}
}

// Shade returns the glyph for a value in [0,1] (values are clamped).
func Shade(v float64) rune {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	i := int(v * float64(len(shades)-1))
	return shades[i]
}

// String renders the heat map.
func (h *Heatmap) String() string {
	var b strings.Builder
	h.Render(&b)
	return b.String()
}

// Render writes the heat map to w.
func (h *Heatmap) Render(w io.Writer) {
	if h.Title != "" {
		fmt.Fprintf(w, "%s\n", h.Title)
	}
	for r := 0; r < h.Rows; r++ {
		var line strings.Builder
		for c := 0; c < h.Cols; c++ {
			line.WriteRune(Shade(h.Values[r*h.Cols+c]))
			line.WriteRune(' ')
		}
		fmt.Fprintf(w, "  %s\n", strings.TrimRight(line.String(), " "))
	}
	fmt.Fprintf(w, "  scale: '%c'=idle ... '%c'=busy\n", shades[0], shades[len(shades)-1])
}

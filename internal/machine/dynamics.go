package machine

import (
	"fmt"
	"sort"
	"sync/atomic"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
)

// This file applies scripted environment events (internal/scenario) to
// a running machine: PE speed changes with in-flight rescaling, compute
// blackouts with drain/requeue semantics, link degradation and outages,
// and arrival-rate shocks. Nothing here runs unless Config.Scenario is
// non-empty.

// applyScenarioEvent dispatches one scripted event at its firing time.
func (m *Machine) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.SlowPE:
		for _, id := range ev.Targets(len(m.pes)) {
			pe := m.pes[id]
			m.setSpeed(pe, pe.nominalSpeed()*ev.Factor)
		}
	case scenario.RestorePE:
		targets := ev.Targets(len(m.pes))
		if targets == nil {
			for _, pe := range m.pes {
				if pe.Speed() != pe.nominalSpeed() {
					m.setSpeed(pe, pe.nominalSpeed())
				}
			}
			return
		}
		for _, id := range targets {
			m.setSpeed(m.pes[id], m.pes[id].nominalSpeed())
		}
	case scenario.FailPE:
		for _, id := range ev.Targets(len(m.pes)) {
			m.failPE(m.pes[id])
		}
	case scenario.CrashPE:
		for _, id := range ev.Targets(len(m.pes)) {
			m.crashPE(m.pes[id])
		}
	case scenario.RecoverPE:
		targets := ev.Targets(len(m.pes))
		if targets == nil {
			for _, pe := range m.pes {
				if m.peFailed[pe.lx] {
					m.recoverPE(pe)
				}
			}
			return
		}
		for _, id := range targets {
			m.recoverPE(m.pes[id])
		}
	case scenario.DegradeLink:
		m.setLink(ev.A, ev.B, ev.Factor, ev.Factor == 0)
	case scenario.RestoreLink:
		m.restoreLink(ev.A, ev.B)
	case scenario.LoadShock:
		m.rateMul = ev.Factor
	case scenario.CheckpointTick:
		m.checkpointTick(ev.Cost)
	}
}

// checkpointTick applies one periodic snapshot: the jobs' execution
// positions as of now become durable (recorded lazily — see jobState),
// and every live owned PE pays the scripted cost. A busy PE's in-flight
// service extends by the cost; an idle one accrues debt paid at its
// next service start. Failed PEs pay nothing — they hold no state worth
// snapshotting.
func (m *Machine) checkpointTick(cost sim.Time) {
	now := m.eng.Now()
	m.lastCkptAt = now
	if cost <= 0 {
		return
	}
	for lx := range m.peBlock {
		if m.peFailed[lx] {
			continue
		}
		pe := &m.peBlock[lx]
		if m.peBusy[lx] && m.peServiceEnd[lx] > now {
			pe.svc.Stop()
			m.peBusyTime[lx] += cost
			m.peServiceEnd[lx] += cost
			pe.svc.Schedule(m.peServiceEnd[lx] - now)
		} else {
			pe.ckptDebt += cost
		}
	}
}

// liveCount returns the machine-wide live-PE count: the group's
// barrier-maintained tally on a multi-shard run (a shard sees only its
// own block), the local scan otherwise.
func (m *Machine) liveCount() int {
	if g := m.grp; g != nil && g.failed != nil {
		return g.live
	}
	live := 0
	for _, failed := range m.peFailed {
		if !failed {
			live++
		}
	}
	return live
}

// peDown reports whether PE id (anywhere on the machine) is currently
// failed. The group's failure map is written only at window barriers,
// so mid-window reads are race-free.
func (m *Machine) peDown(id int) bool {
	if g := m.grp; g != nil && g.failed != nil {
		return g.failed[id]
	}
	return m.peFailed[m.pes[id].lx]
}

// noteFailed/noteRecovered keep the group's global failure map and live
// count in step with this shard's transitions (no-ops outside a
// multi-shard run).
func (m *Machine) noteFailed(id int) {
	if g := m.grp; g != nil && g.failed != nil {
		g.failed[id] = true
		g.live--
	}
}

func (m *Machine) noteRecovered(id int) {
	if g := m.grp; g != nil && g.failed != nil {
		g.failed[id] = false
		g.live++
	}
}

// nominalSpeed is the PE's configured base speed: PESpeeds[i] on a
// heterogeneous machine, 1 otherwise.
func (pe *PE) nominalSpeed() float64 {
	if s := pe.m.cfg.PESpeeds; s != nil {
		return s[pe.id]
	}
	return 1
}

// setSpeed changes the PE's service speed, rescaling any in-flight
// service proportionally: the remaining duration stretches or shrinks
// by oldSpeed/newSpeed, so work already performed is kept rather than
// restarted. Busy-time accounting is adjusted to the new completion.
// A SpeedAware node hears about its own clock change immediately.
func (m *Machine) setSpeed(pe *PE, speed float64) {
	old := pe.Speed()
	if m.peSpeed == nil {
		// First non-nominal speed of the run: materialize the hot-state
		// slice (zero entries read as nominal, like the nil fast path).
		m.peSpeed = make([]float64, m.peHi-m.peLo)
	}
	m.peSpeed[pe.lx] = speed
	if old != speed && pe.wantsSpeed {
		pe.node.HandleEvent(Event{Kind: PESlowed, From: pe.id, Factor: speed})
	}
	if !m.peBusy[pe.lx] || old == speed {
		return
	}
	now := m.eng.Now()
	remaining := m.peServiceEnd[pe.lx] - now
	if remaining <= 0 {
		return // completion already due this instant
	}
	scaled := sim.Time(float64(remaining) * old / speed)
	if scaled < 1 {
		scaled = 1
	}
	if scaled == remaining {
		return
	}
	pe.svc.Stop()
	m.peBusyTime[pe.lx] += scaled - remaining
	m.peServiceEnd[pe.lx] = now + scaled
	pe.svc.Schedule(scaled)
}

// failPE blacks out a PE's compute. The in-service message is cut off:
// a goal is evacuated (its partial work lost), an interrupted response
// goes back to the queue head to be combined first on recovery. Queued
// goals are evacuated to the nearest live PE in queue order; queued
// responses and pending tasks freeze in place, because the tasks
// awaiting them live here. The communication co-processor stays up —
// routing through the PE and control handling still work — and the PE
// advertises FailedLoad so load-comparing strategies steer around it.
func (m *Machine) failPE(pe *PE) {
	if m.peFailed[pe.lx] {
		return
	}
	if m.liveCount() <= 1 {
		panic("machine: scenario would fail every PE")
	}
	now := m.eng.Now()
	m.peFailed[pe.lx] = true
	m.noteFailed(pe.id)
	pe.failedAt = now

	// The refuge is invariant across this evacuation (liveness only
	// changes between events): resolve it once, not per goal.
	refuge := m.nearestLive(pe.id)

	if m.peBusy[pe.lx] {
		it := pe.inService
		pe.inService = item{}
		remaining := m.peServiceEnd[pe.lx] - now
		pe.svc.Stop()
		m.peBusy[pe.lx] = false
		if remaining > 0 {
			m.peBusyTime[pe.lx] -= remaining // the cut-off tail never happens
		}
		switch it.kind {
		case itemGoal:
			m.stats.ServiceAborts++
			m.evacuateGoal(pe.id, refuge, it.goal)
		case itemResponse:
			pe.ready.pushFront(it)
		}
	}

	// Evacuate queued goals in FIFO order, preserving their relative
	// ages at the refuge PE.
	for i := 0; i < pe.ready.len(); {
		if it := pe.ready.at(i); it.kind == itemGoal {
			g := it.goal
			pe.ready.removeAt(i)
			m.evacuateGoal(pe.id, refuge, g)
		} else {
			i++
		}
	}

	// Tell the neighborhood immediately (one broadcast per attached
	// channel, charged like any load word) rather than waiting for the
	// next periodic tick to advertise FailedLoad. The same transaction
	// carries the PEFailed notification for FailureAware neighbors.
	m.broadcastEnv(pe, PEFailed)
}

// crashPE is the state-loss variant of failPE: the PE's volatile state
// — queued and in-flight goals, queued responses, pending tasks — is
// destroyed, not evacuated. Every job that lost state here is aborted
// (its surviving goals machine-wide become stale and are discarded
// wherever they surface) and immediately retried from its root, keeping
// the original injection time so the sojourn bill includes the failed
// attempt. The communication co-processor stays up, exactly as for a
// blackout, and neighbors hear PEFailed with the sentinel broadcast.
func (m *Machine) crashPE(pe *PE) {
	if m.peFailed[pe.lx] {
		return
	}
	if m.liveCount() <= 1 {
		panic("machine: scenario would crash every PE")
	}
	now := m.eng.Now()
	m.peFailed[pe.lx] = true
	m.noteFailed(pe.id)
	pe.failedAt = now

	// Collect the jobs losing state here in deterministic encounter
	// order; the aborting flag dedups a job that lost several goals. A
	// stale goal — its attempt already aborted elsewhere, e.g. by an
	// earlier PE of the same correlated strike — is freed but must NOT
	// re-abort the job: that would charge a second abort (and burn a
	// second retry) for a single loss.
	var victims []*jobState
	collect := func(g *Goal) {
		j := g.job
		if g.epoch != j.epoch {
			return
		}
		if !j.aborting {
			j.aborting = true
			victims = append(victims, j)
		}
	}

	if m.peBusy[pe.lx] {
		it := pe.inService
		pe.inService = item{}
		remaining := m.peServiceEnd[pe.lx] - now
		pe.svc.Stop()
		m.peBusy[pe.lx] = false
		if remaining > 0 {
			m.peBusyTime[pe.lx] -= remaining // the cut-off tail never happens
		}
		if it.kind == itemGoal {
			m.stats.ServiceAborts++
			m.stats.GoalsLost++
			collect(it.goal)
			m.freeGoal(it.goal)
		}
		// An interrupted response integration is simply gone — its
		// waiting task is about to be purged with the pending map.
	}
	for pe.ready.len() > 0 {
		it := pe.ready.popFront()
		if it.kind == itemGoal {
			m.stats.GoalsLost++
			collect(it.goal)
			m.freeGoal(it.goal)
		}
		// Queued responses target local pending tasks; both vanish.
	}
	// Sweep the pending slab in goal-ID order, NOT slot order: the
	// victim sequence decides abort/reinject order and therefore goal
	// IDs and queue positions — slot order shifts as the table grows,
	// which would make identically-seeded crash runs diverge. (IDs are
	// collected first for a second reason: del back-shifts entries, so
	// deleting while iterating slots would skip some.)
	ids := make([]int64, 0, pe.pending.len())
	pe.pending.forEach(func(id int64, _ *pendingTask) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := pe.pending.get(id)
		m.stats.GoalsLost++ // the executed parent's spawn state is lost
		collect(p.goal)
		pe.pending.del(id)
		m.freeGoal(p.goal)
		m.freePending(p)
	}

	for _, j := range victims {
		j.aborting = false
		m.abortJob(j)
	}
	m.broadcastEnv(pe, PEFailed)
}

// abortJob propagates a crash loss to the whole job: the attempt epoch
// bumps (staling every surviving goal of the job, including those in
// transit — they are discarded at delivery or service completion), the
// job's queued goals and pending tasks are purged machine-wide, and the
// job is either re-injected from its checkpoint frontier or — once
// Config.RetryLimit is exhausted — abandoned. On a retry, inFlight is
// untouched: the job is still in the system, on a fresh attempt.
func (m *Machine) abortJob(j *jobState) {
	j.epoch++
	m.stats.JobsAborted++
	if g := m.grp; g != nil && g.k > 1 {
		// Crashes apply at window barriers, when every shard is
		// quiescent: purge each shard's block in shard order.
		for _, sm := range g.machines {
			sm.purgeJob(j)
		}
	} else {
		m.purgeJob(j)
	}
	if lim := m.cfg.RetryLimit; lim > 0 && j.retries >= lim {
		m.abandonJob(j)
		return
	}
	j.retries++
	m.stats.JobsRetried++
	// A configured backoff delays the re-injection by attempt# ×
	// RetryBackoff; the replay horizon below starts where the retried
	// attempt actually starts.
	var delay sim.Time
	if d := m.cfg.RetryBackoff; d > 0 {
		delay = sim.Time(j.retries) * d
	}
	// Resume from the durable frontier: what the last checkpoint tick
	// snapshotted of this job's position. On a multi-shard run every
	// live job was snapshotted eagerly at the tick's barrier, so only
	// the snapshot counts (a job injected after the tick has none). On
	// the sequential machine the snapshot is lazy: ckptProgress if the
	// job has executed since the tick (and so recorded what the tick
	// saw), otherwise its current position, which is exactly what the
	// tick snapshotted. Before any tick there is no durable state: the
	// retry recomputes from the root. The frontier becomes the replay
	// horizon — goals of the new attempt starting service before
	// replayUntil run at one unit each (startNext) — and progress
	// restarts for the new attempt.
	if m.ckpt {
		var frontier int64
		if g := m.grp; g != nil && g.k > 1 {
			if j.ckptSeen == m.lastCkptAt {
				frontier = j.ckptProgress
			}
		} else {
			frontier = j.progress
			if m.lastCkptAt < 0 {
				frontier = 0
			} else if j.ckptSeen == m.lastCkptAt {
				frontier = j.ckptProgress
			}
		}
		j.replayUntil = m.eng.Now() + delay + sim.Time(frontier)
		j.progress = 0
	}
	// The retry re-enters at the usual ingress (redirected if the root
	// PE is down) on the home shard. Not counted as a new injection —
	// the job keeps its identity and injection time. retryPending keeps
	// stall detection honest during a backoff gap.
	home := m.homeMachine()
	if delay > 0 {
		home.retryPending++
		home.eng.At(home.eng.Now()+delay, func() {
			home.retryPending--
			home.injectRoot(j)
		})
		return
	}
	home.injectRoot(j)
}

// purgeJob discards job j's stale queued goals and pending tasks from
// this machine's owned PE block, in PE order. Loss accounting accrues
// to the purging shard's stats.
func (m *Machine) purgeJob(j *jobState) {
	var stale []int64
	for lx := range m.peBlock {
		pe := &m.peBlock[lx]
		for i := 0; i < pe.ready.len(); {
			if it := pe.ready.at(i); it.kind == itemGoal && it.goal.job == j && it.goal.epoch != j.epoch {
				g := it.goal
				pe.ready.removeAt(i)
				m.stats.GoalsLost++
				m.freeGoal(g)
			} else {
				i++
			}
		}
		// Collect first, delete after: del back-shifts slab entries, so
		// deleting mid-iteration would skip entries behind the cursor.
		stale = stale[:0]
		pe.pending.forEach(func(id int64, p *pendingTask) {
			if p.goal.job == j && p.goal.epoch != j.epoch {
				stale = append(stale, id)
			}
		})
		for _, id := range stale {
			p := pe.pending.get(id)
			pe.pending.del(id)
			m.freeGoal(p.goal)
			m.freePending(p)
		}
	}
}

// abandonJob gives up on a job whose retries are exhausted: it leaves
// the system uncompleted — injected but never done, which is exactly
// what Goodput reads. Its purged attempt is already gone; any goals
// still in transit are stale (the epoch bumped) and discarded at
// delivery.
func (m *Machine) abandonJob(j *jobState) {
	m.stats.JobsAbandoned++
	var left int64
	if g := m.grp; g != nil {
		left = atomic.AddInt64(&g.inFlight, -1)
	} else {
		m.inFlight--
		left = m.inFlight
	}
	m.freeJob(j)
	// Abandoning the last in-flight job ends the run exactly as the
	// last completion would (multi-shard groups detect it at the next
	// window barrier instead).
	if m.srcDone && left == 0 && (m.grp == nil || m.grp.k == 1) {
		m.completed = true
		m.finishedAt = m.eng.Now()
		m.eng.Stop()
	}
}

// homeMachine returns the shard owning RootPE (the machine itself
// outside a sharded run) — where the source, arrivals and crash-retry
// re-injections live.
func (m *Machine) homeMachine() *Machine {
	if g := m.grp; g != nil {
		return g.machines[g.home]
	}
	return m
}

// recoverPE ends a blackout or crash: frozen responses (blackout only —
// a crash left nothing behind) resume service and the PE re-advertises
// its real load, with PERecovered for FailureAware neighbors.
func (m *Machine) recoverPE(pe *PE) {
	if !m.peFailed[pe.lx] {
		return
	}
	m.peFailed[pe.lx] = false
	m.noteRecovered(pe.id)
	pe.downTime += m.eng.Now() - pe.failedAt
	if !m.peBusy[pe.lx] && pe.ready.len() > 0 {
		pe.startNext()
	}
	m.broadcastEnv(pe, PERecovered)
}

// broadcastEnv is the immediate availability broadcast a failing or
// recovering PE sends: the load word (FailedLoad sentinel or real load)
// plus the typed notification, one transaction per attached channel,
// counted and charged exactly like the plain load broadcast it
// replaces.
func (m *Machine) broadcastEnv(pe *PE, kind EventKind) {
	m.broadcast(pe, wireEnvBcast, MsgLoad, m.cfg.CtrlHopTime, envNote{kind: kind, pe: pe.id})
}

// requeueGoal evacuates a goal arriving at failed PE `from` to the
// nearest live PE, travelling hop by hop on the co-processors like any
// routed goal. Arrival-time redirects resolve the refuge per call —
// liveness genuinely varies between deliveries; batch evacuations in
// failPE resolve it once and use evacuateGoal directly.
func (m *Machine) requeueGoal(from int, g *Goal) {
	m.evacuateGoal(from, m.nearestLive(from), g)
}

// evacuateGoal ships one goal off failed PE `from` to the chosen
// refuge, counting it.
func (m *Machine) evacuateGoal(from, refuge int, g *Goal) {
	m.stats.GoalsRequeued++
	m.routeGoal(from, refuge, g)
}

// nearestLive returns the live PE topologically closest to `from`
// (lowest id on ties), machine-wide: a multi-shard run consults the
// group's failure map (a shard's own block is only part of the
// picture). Panics when every PE is failed — scripts cannot reach that
// state (failPE refuses to kill the last live PE).
func (m *Machine) nearestLive(from int) int {
	if g := m.grp; g != nil && g.failed != nil {
		best, bestDist := -1, int(^uint(0)>>1)
		for i, failed := range g.failed {
			if failed || i == from {
				continue
			}
			if d := m.topo.Dist(from, i); d < bestDist {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			panic("machine: no live PE to requeue onto")
		}
		return best
	}
	best, bestDist := -1, int(^uint(0)>>1)
	for i := range m.pes {
		if m.peFailed[m.pes[i].lx] || i == from {
			continue
		}
		if d := m.topo.Dist(from, i); d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		panic("machine: no live PE to requeue onto")
	}
	return best
}

// setLink applies a degradation factor (or outage) to every channel
// between a and b. A positive factor on a downed channel brings it
// back up degraded — the scripted state is absolute, not sticky — so
// messages held during the outage flush at the new (stretched) pace.
// Endpoints sense outage transitions locally (carrier loss/return) and
// FailureAware endpoint nodes get LinkDown/LinkRestored.
func (m *Machine) setLink(a, b int, factor float64, down bool) {
	wasDown := m.setLinkState(a, b, factor, down)
	if down && !wasDown {
		m.notifyLink(a, b, LinkDown)
	} else if !down && wasDown {
		m.notifyLink(a, b, LinkRestored)
	}
}

// setLinkState mutates this machine's copies of the channels between a
// and b, reporting whether any was down before — the state half of
// setLink, shared with the sharded path where every shard holds its own
// channel copies and each applies the mutation itself (a bus channel's
// members can span shards beyond the named endpoints).
func (m *Machine) setLinkState(a, b int, factor float64, down bool) (wasDown bool) {
	for _, ci := range m.linkChannels(a, b) {
		ch := m.chanAt(ci)
		if ch == nil {
			continue // no owned PE attaches to this channel
		}
		if ch.down {
			wasDown = true
		}
		if down {
			ch.down = true
			continue
		}
		ch.degrade = factor
		m.bringUp(ch)
	}
	return wasDown
}

// restoreLink returns every channel between a and b to nominal,
// flushing messages held during an outage in arrival order.
func (m *Machine) restoreLink(a, b int) {
	if m.restoreLinkState(a, b) {
		m.notifyLink(a, b, LinkRestored)
	}
}

// restoreLinkState is the state half of restoreLink (see setLinkState).
func (m *Machine) restoreLinkState(a, b int) (wasDown bool) {
	for _, ci := range m.linkChannels(a, b) {
		ch := m.chanAt(ci)
		if ch == nil {
			continue // no owned PE attaches to this channel
		}
		if ch.down {
			wasDown = true
		}
		ch.degrade = 0
		m.bringUp(ch)
	}
	return wasDown
}

// notifyLink delivers a link-availability event to both endpoints'
// FailureAware nodes; From names the far end as each endpoint sees it.
func (m *Machine) notifyLink(a, b int, kind EventKind) {
	m.notifyEndpoint(a, b, kind)
	m.notifyEndpoint(b, a, kind)
}

// notifyEndpoint delivers a link-availability event to one endpoint's
// FailureAware node when this machine owns it (a shard notifies only
// its own endpoints).
func (m *Machine) notifyEndpoint(id, far int, kind EventKind) {
	if pe := m.pes[id]; pe != nil && pe.wantsFailure {
		pe.node.HandleEvent(Event{Kind: kind, From: far})
	}
}

// bringUp ends a channel outage, transmitting the held messages in
// arrival order; a channel that is not down is untouched.
func (m *Machine) bringUp(ch *chanState) {
	if !ch.down {
		return
	}
	ch.down = false
	held := ch.held
	ch.held = nil
	for _, h := range held {
		m.transmit(ch, h.dur, h.w)
	}
}

func (m *Machine) linkChannels(a, b int) []int {
	chs := m.topo.ChannelsBetween(a, b)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: scenario link event: PEs %d and %d share no channel", a, b))
	}
	return chs
}

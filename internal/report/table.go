// Package report renders simulation results the way the paper presents
// them: aligned text tables (Tables 1-3), ASCII line charts (Plots 1-16
// and the appendix), CSV for external plotting, and the per-PE
// utilization heat map that reproduces ORACLE's color graphics monitor
// ("red: busy, blue: idle") in terminal shades.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	ncols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i := 0; i < ncols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	if len(t.headers) > 0 {
		line(t.headers)
		total := 0
		for _, wd := range widths {
			total += wd
		}
		fmt.Fprintln(w, strings.Repeat("-", total+2*(ncols-1)))
	}
	for _, r := range t.rows {
		line(r)
	}
}

// WriteCSV emits the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if len(t.headers) > 0 {
		if err := cw.Write(t.headers); err != nil {
			return err
		}
	}
	for _, r := range t.rows {
		if err := cw.Write(r); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package core

import (
	"testing"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// viaClassic forces a strategy's nodes through the full compat round
// trip: the event-driven node is exposed in the classic three-method
// shape (machine.ClassicView) and re-adapted back into the event API
// (machine.AdaptNode) — the path a strategy written against the old
// interface takes, in both directions at once.
type viaClassic struct{ machine.Strategy }

func (v viaClassic) NewNode(pe *machine.PE) machine.NodeStrategy {
	return machine.AdaptNode(machine.ClassicView(v.Strategy.NewNode(pe)))
}

// compatFingerprint captures everything a divergence would disturb.
type compatFingerprint struct {
	makespan  sim.Time
	events    uint64
	result    int64
	totalBusy sim.Time
	goalMsgs  int64
	ctrlMsgs  int64
	jobsDone  int64
	sojMean   float64
}

func compatFP(st *machine.Stats) compatFingerprint {
	return compatFingerprint{
		makespan:  st.Makespan,
		events:    st.Events,
		result:    st.Result,
		totalBusy: st.TotalBusy,
		goalMsgs:  st.MsgCounts[machine.MsgGoal],
		ctrlMsgs:  st.MsgCounts[machine.MsgControl],
		jobsDone:  st.JobsDone,
		sojMean:   st.Sojourn.Mean(),
	}
}

// TestClassicAdapterBitForBit pins the compat guarantee alongside the
// empty-scenario regression: every shipped strategy produces bit-for-
// bit identical results when its nodes are driven through the
// old-shaped entry points, on both the closed single-tree run and an
// open Poisson stream. (Environment events do not survive the classic
// shape, so the scenario here is empty — exactly the regime the old
// interface covered.)
func TestClassicAdapterBitForBit(t *testing.T) {
	strategies := []func() machine.Strategy{
		func() machine.Strategy { return NewCWN(9, 2) },
		func() machine.Strategy { return NewGradient(1, 2, 20) },
		func() machine.Strategy { return NewACWN(9, 2, 3, 40) },
		func() machine.Strategy { return NewWorkSteal(20, 2) },
		func() machine.Strategy { return NewDiffusion(20) },
		func() machine.Strategy { return NewLocal() },
		func() machine.Strategy { return NewRandomWalk(3) },
		func() machine.Strategy { return NewRoundRobin() },
		func() machine.Strategy { return NewIdeal() },
	}
	topo := topology.NewGrid(4, 4)
	tree := workload.NewFib(10)
	for _, mk := range strategies {
		name := mk().Name()
		closed := func(s machine.Strategy) compatFingerprint {
			return compatFP(machine.New(topo, tree, s, machine.DefaultConfig()).Run())
		}
		open := func(s machine.Strategy) compatFingerprint {
			src := machine.NewPoisson(workload.NewFib(7), 80, 40)
			return compatFP(machine.NewStream(topo, src, s, machine.DefaultConfig()).Run())
		}
		if native, adapted := closed(mk()), closed(viaClassic{mk()}); native != adapted {
			t.Errorf("%s closed run diverged through the classic shape:\n native %+v\nadapted %+v", name, native, adapted)
		}
		if native, adapted := open(mk()), open(viaClassic{mk()}); native != adapted {
			t.Errorf("%s open run diverged through the classic shape:\n native %+v\nadapted %+v", name, native, adapted)
		}
	}
}

// Package machine is the multiprocessor model — the Go equivalent of
// ORACLE, the simulator the paper's experiments ran on. It simulates a
// message-passing machine: processing elements (PEs) that serve one
// message at a time from a FIFO ready queue, and communication channels
// (point-to-point links or multi-drop buses) that carry one message at a
// time, so both compute and communication contention are modelled.
//
// The computation model follows Section 2 of the paper: a goal executes
// for a grain time and either completes (sending a response to its
// parent's PE) or spawns sub-goals and waits for their responses; a task
// never migrates after spawning. Where each new goal executes is decided
// by a pluggable Strategy (package core provides CWN, the Gradient Model
// and several baselines). As the paper assumes, a communication
// co-processor performs routing and load-balancing work, so strategy
// decisions consume channel time but no PE compute time.
//
// A PE's "load" is the number of messages waiting in its ready queue —
// the paper's measure — optionally augmented with the count of tasks
// awaiting responses (the "future commitments" refinement from the
// paper's conclusions). Load information travels to neighbors through
// periodic short broadcasts and, optionally, piggybacked on every
// regular message.
package machine

package scenario

import (
	"sort"
	"testing"
)

// TestChaosExpandDeterministic pins the generator's seed contract: the
// same (seed, machine size, horizon) expands to the identical timeline
// every time, and a different seed draws a different one.
func TestChaosExpandDeterministic(t *testing.T) {
	script := MustParse("chaos:mtbf=800:mttr=300@seed=7")
	a := script.Expand(16, 50_000)
	b := script.Expand(16, 50_000)
	if len(a.Events) == 0 {
		t.Fatal("chaos expanded to nothing over a 50k horizon with mtbf 800")
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("expansions differ in length: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i].String() != b.Events[i].String() {
			t.Fatalf("event %d differs: %s vs %s", i, a.Events[i], b.Events[i])
		}
	}
	other := MustParse("chaos:mtbf=800:mttr=300@seed=8").Expand(16, 50_000)
	if len(other.Events) == len(a.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i].String() != other.Events[i].String() {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds drew the identical timeline")
		}
	}
}

// TestChaosExpandWellFormed checks the generated timeline's structure:
// sorted fail/recover pairs inside the horizon, each fail matched by a
// later recover of the same PE, never all PEs down at once, and crash
// mode generating CrashPE events.
func TestChaosExpandWellFormed(t *testing.T) {
	const numPEs, horizon = 4, 60_000
	sc := MustParse("chaos:mtbf=300:mttr=1000:crash@seed=5").Expand(numPEs, horizon)
	if err := sc.Validate(numPEs); err != nil {
		t.Fatalf("expanded script invalid: %v", err)
	}
	if !sort.SliceIsSorted(sc.Events, func(i, j int) bool { return sc.Events[i].At < sc.Events[j].At }) {
		t.Fatal("expanded events not in firing order")
	}
	down := map[int]bool{}
	sawCrash := false
	for _, e := range sc.Events {
		switch e.Kind {
		case CrashPE:
			sawCrash = true
			pe := e.PEs[0]
			if down[pe] {
				t.Fatalf("PE %d crashed while already down at t=%d", pe, e.At)
			}
			down[pe] = true
			if len(down) >= numPEs {
				t.Fatalf("all PEs down at t=%d", e.At)
			}
		case RecoverPE:
			pe := e.PEs[0]
			if !down[pe] {
				t.Fatalf("PE %d recovered while up at t=%d", pe, e.At)
			}
			delete(down, pe)
		default:
			t.Fatalf("unexpected kind %s in expansion", e.Kind)
		}
		if e.At >= horizon && e.Kind != RecoverPE {
			t.Fatalf("failure generated beyond the horizon: %s", e)
		}
	}
	if !sawCrash {
		t.Fatal("crash-mode chaos generated no CrashPE events")
	}
}

// TestChaosExpandLeavesConcreteScriptsAlone pins the zero-cost path: a
// script without chaos events expands to itself (same pointer), so the
// empty-scenario guarantee is untouched.
func TestChaosExpandLeavesConcreteScriptsAlone(t *testing.T) {
	sc := MustParse("fail:pes=25%@t=5000,recover@t=10000")
	if got := sc.Expand(16, 50_000); got != sc {
		t.Fatal("concrete script was copied by Expand")
	}
	var empty *Script
	if got := empty.Expand(16, 50_000); got != empty {
		t.Fatal("nil script was touched by Expand")
	}
}

// TestCrashAndChaosParseRoundTrip extends the text-form round trip to
// the two new ops.
func TestCrashAndChaosParseRoundTrip(t *testing.T) {
	for _, text := range []string{
		"crash:pes=25%@t=5000,recover@t=10000",
		"crash:pes=3+7@t=100",
		"chaos:mtbf=3000:mttr=800@seed=7",
		"chaos:mtbf=3000:mttr=800:until=20000:crash@seed=7",
	} {
		sc, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		if got := sc.String(); got != text {
			t.Fatalf("round trip %q -> %q", text, got)
		}
	}
}

// TestChaosParseErrors pins the chaos grammar's rejections.
func TestChaosParseErrors(t *testing.T) {
	for _, text := range []string{
		"chaos:mtbf=3000@seed=7",              // missing mttr
		"chaos:mttr=800@seed=7",               // missing mtbf
		"chaos:mtbf=3000:mttr=800@t=7",        // wrong suffix
		"chaos:mtbf=3000:mttr=800:z=1@seed=7", // unknown key
		"crash@t=10",                          // crash without targets passes parse...
	} {
		sc, err := Parse(text)
		if err != nil {
			continue
		}
		// ...but must then fail validation.
		if verr := sc.Validate(16); verr == nil {
			t.Fatalf("Parse+Validate accepted %q", text)
		}
	}
	if err := MustParse("chaos:mtbf=3000:mttr=-1@seed=2").Validate(16); err == nil {
		t.Fatal("negative mttr validated")
	}
}

package workload

// Analysis helpers: the classic work/span decomposition. SequentialTime
// is T1 (what one PE needs); CriticalPath is T∞ (the longest dependency
// chain, ignoring communication); their ratio bounds the speedup any
// load-distribution scheme can reach on any number of PEs. The
// experiment harness reports measured speedup against this bound.

// SequentialTime returns T1: every goal's execution plus every response
// integration, serialized.
func (tr *Tree) SequentialTime(grain, combine int64) int64 {
	var total int64
	tr.Walk(func(t *Task) {
		total += grain * int64(t.Work)
		if !t.IsLeaf() {
			total += combine * int64(len(t.Kids))
		}
	})
	return total
}

// CriticalPath returns a lower bound on makespan with unlimited PEs and
// free communication: a node costs its own execution, then waits for
// its slowest child's chain, then integrates at least that child's
// response. Computed iteratively (chains can be 10^5 deep).
func (tr *Tree) CriticalPath(grain, combine int64) int64 {
	// Post-order traversal with an explicit stack.
	type frame struct {
		t       *Task
		visited bool
	}
	span := make(map[*Task]int64, tr.count)
	stack := []frame{{tr.Root, false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !f.visited {
			stack = append(stack, frame{f.t, true})
			for _, k := range f.t.Kids {
				stack = append(stack, frame{k, false})
			}
			continue
		}
		own := grain * int64(f.t.Work)
		if f.t.IsLeaf() {
			span[f.t] = own
			continue
		}
		var worst int64
		for _, k := range f.t.Kids {
			if span[k] > worst {
				worst = span[k]
			}
		}
		span[f.t] = own + worst + combine
	}
	return span[tr.Root]
}

// MaxSpeedup returns T1/T∞ — the parallelism ceiling of the tree under
// the given charge times.
func (tr *Tree) MaxSpeedup(grain, combine int64) float64 {
	cp := tr.CriticalPath(grain, combine)
	if cp == 0 {
		return 1
	}
	return float64(tr.SequentialTime(grain, combine)) / float64(cp)
}

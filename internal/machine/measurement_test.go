package machine

import (
	"testing"

	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TestSampleFirstWindowExact pins the first-window utilization fix: a
// chain on a single PE is 100% busy from injection to completion, so
// every timeline point must read exactly 100% — including the first,
// staggered sample, whose window is shorter than SampleInterval. The
// old code divided the first window's busy time by the full interval
// and understated it.
func TestSampleFirstWindowExact(t *testing.T) {
	tree := workload.NewChain(100)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0 // single PE: no neighbors to inform
	cfg.SampleInterval = 64
	cfg.MonitorPE = true
	st := New(topology.NewSingle(), tree, keepLocal{}, cfg).Run()
	if !st.Completed {
		t.Fatal("run did not complete")
	}
	if st.Timeline.Len() < 10 {
		t.Fatalf("only %d timeline samples, expected a long busy run", st.Timeline.Len())
	}
	for _, p := range st.Timeline.Points {
		if p.V != 100 {
			t.Fatalf("sample at t=%.0f reads %.3f%%, want exactly 100 (PE continuously busy)", p.T, p.V)
		}
	}
	if st.Monitor.Len() != st.Timeline.Len() {
		t.Fatalf("monitor frames %d != timeline samples %d", st.Monitor.Len(), st.Timeline.Len())
	}
	for _, fr := range st.Monitor.Frames {
		for pe, u := range fr.Util {
			if u != 1 {
				t.Fatalf("frame at t=%d: PE %d utilization %.3f, want exactly 1", fr.At, pe, u)
			}
		}
	}
}

// TestChannelUtilizationNeverExceedsFull pins the channel-accounting
// fix: occupancy is charged in full at transmit time, so a run that
// ends with a long message still on the wire used to report > 100%
// channel utilization. Only the elapsed portion may be committed.
func TestChannelUtilizationNeverExceedsFull(t *testing.T) {
	topo := topology.NewGrid(1, 2)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	m := New(topo, workload.NewFib(2), keepLocal{}, cfg)
	// A transmission far longer than the run keeps the channel busy past
	// the makespan.
	m.eng.Schedule(0, func() { m.transmitFunc(&m.chans[0], 100_000, func() {}) })
	st := m.Run()
	if !st.Completed {
		t.Fatal("run did not complete")
	}
	if u := st.ChannelUtilization(0); u != 1 {
		t.Fatalf("ChannelUtilization = %f, want exactly 1 (busy the whole run, no more)", u)
	}
	if u := st.MaxChannelUtilization(); u > 1 {
		t.Fatalf("MaxChannelUtilization = %f > 1", u)
	}
}

// TestChannelBusyCommittedAtMaxTime covers the saturation variant: a
// stream cut off at MaxTime with queued transmissions must report only
// occupancy elapsed by the horizon.
func TestChannelBusyCommittedAtMaxTime(t *testing.T) {
	topo := topology.NewGrid(1, 2)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.MaxTime = 500
	m := New(topo, workload.NewChain(200), keepLocal{}, cfg)
	m.eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			m.transmitFunc(&m.chans[0], 200, func() {}) // 2000 units queued on a 500-unit run
		}
	})
	st := m.Run()
	if st.Completed {
		t.Fatal("run completed despite MaxTime cutoff")
	}
	if st.ChannelBusy[0] != cfg.MaxTime {
		t.Fatalf("ChannelBusy = %d, want %d (the whole truncated run)", st.ChannelBusy[0], cfg.MaxTime)
	}
	if u := st.ChannelUtilization(0); u > 1 {
		t.Fatalf("ChannelUtilization = %f > 1 at MaxTime", u)
	}
}

// TestSteadyThroughputWindow pins the like-with-like window fix:
// SteadyThroughput counts completions inside the post-warm-up window
// and divides by that window, matching the warm-up-excluded sojourn
// percentiles, while Throughput keeps describing the whole run.
func TestSteadyThroughputWindow(t *testing.T) {
	tree := workload.NewFib(5)
	cfg := DefaultConfig()
	const jobs = 10
	const gap = 500
	cfg.Warmup = 2*gap + 1
	st := NewStream(topology.NewSingle(), NewFixedInterval(tree, gap, jobs), keepLocal{}, cfg).Run()
	if !st.Completed {
		t.Fatal("stream did not drain")
	}
	var steadyDone int64
	for _, r := range st.JobRecords {
		if r.DoneAt >= cfg.Warmup {
			steadyDone++
		}
	}
	if st.SteadyJobsDone != steadyDone {
		t.Fatalf("SteadyJobsDone = %d, want %d", st.SteadyJobsDone, steadyDone)
	}
	want := float64(steadyDone) / float64(st.Makespan-cfg.Warmup)
	if got := st.SteadyThroughput(); got != want {
		t.Fatalf("SteadyThroughput = %f, want %f", got, want)
	}
	if whole := st.Throughput(); whole == st.SteadyThroughput() {
		t.Fatalf("steady and whole-run throughput coincide (%f): warm-up window not excluded", whole)
	}

	// No warm-up: the two coincide by definition.
	cfg2 := DefaultConfig()
	st2 := NewStream(topology.NewSingle(), NewFixedInterval(tree, gap, jobs), keepLocal{}, cfg2).Run()
	if st2.SteadyThroughput() != st2.Throughput() {
		t.Fatalf("no-warm-up SteadyThroughput %f != Throughput %f", st2.SteadyThroughput(), st2.Throughput())
	}
}

// TestObserverStreamIsDisjoint checks the machine-level half of the
// observer-effect fix directly: building a sampling machine must leave
// the engine stream exactly where a non-sampling build leaves it.
func TestObserverStreamIsDisjoint(t *testing.T) {
	tree := workload.NewFib(3)
	build := func(sample sim.Time) *Machine {
		cfg := DefaultConfig()
		cfg.StaggerTicks = true
		cfg.SampleInterval = sample
		return New(topology.NewGrid(3, 3), tree, keepLocal{}, cfg)
	}
	a := build(0).Engine().Rng().Int63()
	b := build(50).Engine().Rng().Int63()
	if a != b {
		t.Fatalf("sampler construction perturbed the engine stream: %d vs %d", a, b)
	}
}

package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis pass: a named checker that
// inspects a single type-checked package and reports diagnostics.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// lint:ignore suppression directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects the pass's package and reports findings via
	// pass.Reportf. A non-nil error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(*Pass) error
}

// A Pass hands one type-checked package to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test syntax trees, comments attached
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
	tags  *Tags // lazily built by CollectTags
}

// A Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All is the full simlint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detrand, Statsmerge, Poolsafe, Seqonly}
}

// Lookup returns the named analyzer from the suite, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunAnalyzers applies each analyzer to each loaded package and
// returns the surviving diagnostics (suppressed findings removed),
// sorted by file position.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		diags, err := RunPackage(pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, diags...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// RunPackage applies the analyzers to one already-type-checked package
// (the entry point cmd/simlint's vettool mode uses, where loading was
// done by the build system). Test files are excluded by the callers:
// the analyzers enforce contracts on shipped code, and test packages
// deliberately exercise violations.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	sup := collectSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzing %s: %w", a.Name, pkg.Path(), err)
		}
		for _, d := range pass.diags {
			if !sup.suppresses(d) {
				out = append(out, d)
			}
		}
	}
	return out, nil
}

// suppressions maps file:line to the analyzer names silenced there.
// A directive comment
//
//	//lint:ignore detrand reason...
//
// silences the named analyzers (comma-separated; "simlint" silences
// the whole suite) on the directive's own line and, when the directive
// stands alone on its line, on the next source line. A reason is
// mandatory — a bare directive is reported as a diagnostic itself.
type suppressions struct {
	byLine map[suppressKey]bool
}

type suppressKey struct {
	file     string
	line     int
	analyzer string
}

const ignoreDirective = "lint:ignore"

func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: make(map[suppressKey]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, ignoreDirective))
				if len(fields) < 2 {
					// Bare directive without analyzer+reason: ignore it
					// (cmd/simlint's standalone mode warns separately).
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					s.byLine[suppressKey{pos.Filename, pos.Line, name}] = true
					// A standalone directive suppresses the following
					// line too; registering it unconditionally is
					// harmless for trailing directives (the "next line"
					// key simply never matches a finding there that the
					// author did not intend to place).
					s.byLine[suppressKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return s
}

func (s *suppressions) suppresses(d Diagnostic) bool {
	return s.byLine[suppressKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		s.byLine[suppressKey{d.Pos.Filename, d.Pos.Line, "simlint"}]
}

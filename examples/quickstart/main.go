// Quickstart: simulate one tree-structured computation on a
// message-passing multiprocessor under the CWN load-distribution scheme
// and print the statistics the simulator collects.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func main() {
	// A 10x10 nearest-neighbor grid of processing elements.
	topo := topology.NewGrid(10, 10)

	// The naive doubly-recursive Fibonacci computation: 1973 goals for
	// fib(15), each goal a medium-grain task that either completes or
	// spawns two children and waits for their responses.
	tree := workload.NewFib(15)

	// Contracting Within a Neighborhood with the paper's grid
	// parameters: every new goal walks the steepest load gradient to a
	// local minimum, at least 2 and at most 9 hops from its source.
	strat := core.NewCWN(9, 2)

	// Default machine: grain 10 units, response integration 5, hop 2,
	// load broadcasts every 20 units with piggybacking.
	cfg := machine.DefaultConfig()

	stats := machine.New(topo, tree, strat, cfg).Run()

	fmt.Println(stats) // one-paragraph summary
	fmt.Println()
	fmt.Printf("the simulation computed fib(15) = %d (expected %d)\n",
		stats.Result, workload.FibValue(15))
	fmt.Printf("speedup %.1f on %d PEs (%.0f%% average utilization)\n",
		stats.Speedup(), stats.P, stats.UtilizationPercent())
	fmt.Printf("goals travelled %.2f hops on average; the farthest went %d\n",
		stats.AvgGoalHops(), stats.GoalHops.Max())
}

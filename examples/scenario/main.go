// Example scenario drives three load-distribution strategies through
// the same scripted disaster: a Poisson job stream on a 10×10 grid
// loses 25% of its PEs at t=5000 (a compute blackout — queued goals
// evacuate to the nearest live PE, arriving goals are redirected) and
// gets them back at t=10000. The comparison the static paper cannot
// express: which strategy re-distributes fastest when the environment
// shifts under it.
//
// Run with: go run ./examples/scenario
package main

import (
	"fmt"
	"os"

	"cwnsim/internal/experiments"
	"cwnsim/internal/report"
)

func main() {
	const script = "fail:pes=25%@t=5000,recover@t=10000"
	strategies := []experiments.StrategySpec{
		experiments.CWN(9, 2),
		experiments.GM(1, 2, 20),
		{Kind: "worksteal", Interval: 20, Threshold: 2},
	}

	fmt.Printf("25%%-PE blackout on grid-10x10, fib(9) jobs, Poisson arrivals (gap 25)\n")
	fmt.Printf("scenario: %s\n\n", script)

	tb := report.NewTable("recovery through the blackout",
		"strategy", "jobs done", "requeued", "aborts", "baseline p99", "peak p99", "time to steady", "eff util%")
	util := report.NewChart("mean ready-queue length over time (blackout t=5000..10000)", "virtual time", "mean queue length")
	markers := []rune{'c', 'g', 'w'}

	for i, ss := range strategies {
		spec := experiments.RunSpec{
			Topo:           experiments.Grid(10),
			Workload:       experiments.Fib(9),
			Strategy:       ss,
			Arrival:        experiments.PoissonArrivals(25, 600),
			Warmup:         1000,
			SampleInterval: 250,
			Scenario:       script,
		}
		r, err := spec.ExecuteErr()
		if err != nil {
			fmt.Fprintln(os.Stderr, "scenario example:", err)
			os.Exit(1)
		}
		rec := r.Recovery
		settle := "never"
		if rec.Recovered() {
			settle = fmt.Sprintf("%d", rec.TimeToSteady)
		}
		done := fmt.Sprintf("%d/%d", r.Stats.JobsDone, r.Stats.JobsInjected)
		if r.Saturated() {
			done += "*"
		}
		tb.AddRow(ss.Label(), done, rec.GoalsRequeued, rec.ServiceAborts,
			fmt.Sprintf("%.0f", rec.BaselineP99), fmt.Sprintf("%.0f", rec.PeakP99),
			settle, fmt.Sprintf("%.1f", r.EffUtil))

		q := r.Stats.QueueLen
		q.Label = ss.ShortLabel()
		util.Add(&q, markers[i])
	}

	tb.Render(os.Stdout)
	fmt.Println()
	util.Render(os.Stdout)
}

package machine

import (
	"math/rand"
	"testing"
)

// TestPendingSlabModel drives the open-addressed slab against a plain
// map with a goal-ID-shaped workload — sequential IDs, interleaved
// deletions, growth through several doublings — and checks every
// lookup, the count, and iteration coverage. The adversarial twist:
// bursts of IDs that collide modulo the initial table size, so the
// back-shift deletion has real clusters to repair.
func TestPendingSlabModel(t *testing.T) {
	var s pendingSlab
	s.init(nil)
	model := map[int64]*pendingTask{}
	rng := rand.New(rand.NewSource(42))
	nextID := int64(0)
	live := []int64{}

	check := func(id int64) {
		t.Helper()
		got, want := s.get(id), model[id]
		if got != want {
			t.Fatalf("get(%d) = %p, want %p", id, got, want)
		}
	}

	for step := 0; step < 20000; step++ {
		switch {
		case rng.Intn(3) != 0 || len(live) == 0:
			id := nextID
			if rng.Intn(4) == 0 {
				// A colliding ID: same residue mod the minimum table
				// size as an existing live ID.
				id = nextID + slabMinSlots*int64(1+rng.Intn(3))
			}
			nextID = id + 1
			p := &pendingTask{remaining: int(id)}
			s.put(id, p)
			model[id] = p
			live = append(live, id)
		default:
			i := rng.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			s.del(id)
			delete(model, id)
			check(id) // must now miss
		}
		if s.len() != len(model) {
			t.Fatalf("len = %d, model has %d", s.len(), len(model))
		}
		// Spot-check a few live and dead IDs every step.
		for i := 0; i < 3 && len(live) > 0; i++ {
			check(live[rng.Intn(len(live))])
		}
		check(nextID + 1000) // never inserted
	}

	// Iteration covers exactly the live set.
	seen := map[int64]bool{}
	s.forEach(func(id int64, p *pendingTask) {
		if seen[id] {
			t.Fatalf("forEach visited %d twice", id)
		}
		seen[id] = true
		if model[id] != p {
			t.Fatalf("forEach(%d) yielded wrong task", id)
		}
	})
	if len(seen) != len(model) {
		t.Fatalf("forEach visited %d entries, want %d", len(seen), len(model))
	}

	// release returns a fully cleared array ready for the next run.
	slots := s.release()
	for i, sl := range slots {
		if sl.id != slabEmpty || sl.task != nil {
			t.Fatalf("released slot %d not cleared: %+v", i, sl)
		}
	}
	var s2 pendingSlab
	s2.init(slots)
	if s2.len() != 0 {
		t.Fatalf("recycled slab reports %d entries", s2.len())
	}
	s2.put(7, &pendingTask{})
	if s2.get(7) == nil {
		t.Fatal("recycled slab lost an insert")
	}
}

package machine

// Sharded observability contracts (PR 8): one shard reproduces the
// sequential trace and sampling series bit for bit; K >= 2 shards
// conserve per-kind counts for the placement-independent event kinds
// and produce identical observability output under the parallel and
// serial window schedules; monitored sharded runs emit full-machine
// frames.

import (
	"reflect"
	"testing"

	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
	"cwnsim/internal/workload"
)

// obsRun executes one shard-matrix cell with the full observability
// surface on: tracing into sink, sampling and per-PE monitoring.
func obsRun(c shardCase, shards int, serial bool, sink trace.Sink) *Stats {
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.ShardSerial = serial
	cfg.SampleInterval = 40
	cfg.MonitorPE = true
	cfg.Trace = sink
	tree := workload.NewFib(10)
	var src JobSource = NewSingleJob(tree)
	if c.open {
		src = NewFixedInterval(tree, 120, 8)
	}
	return NewStream(c.topo(), src, c.strat, cfg).Run()
}

// conservedKinds are the event kinds whose totals are a function of the
// workload alone, not of goal placement: every goal is created,
// accepted, executed and (non-roots) responded-to exactly once under
// the test strategies. GoalSent is excluded — walk lengths depend on
// placement, which differs between the sequential and the K >= 2 runs'
// salted RNG streams.
func conservedKinds() []trace.Kind {
	return []trace.Kind{
		trace.GoalCreated, trace.GoalAccepted, trace.GoalExecStarted,
		trace.GoalExecuted, trace.RespSent, trace.RespDelivered,
	}
}

// TestShardOneObservabilityBitForBit pins the strongest contract: a
// one-shard group replays the sequential machine's trace Record call
// sequence, monitor frames and sampling series bit for bit.
func TestShardOneObservabilityBitForBit(t *testing.T) {
	for _, c := range shardCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var seqCol, oneCol trace.Collector
			seq := obsRun(c, 0, false, &seqCol)
			one := obsRun(c, 1, false, &oneCol)
			if !reflect.DeepEqual(seqCol.Events, oneCol.Events) {
				t.Fatalf("one-shard trace diverged from sequential: %d vs %d events", len(seqCol.Events), len(oneCol.Events))
			}
			if !reflect.DeepEqual(seq.Monitor.Frames, one.Monitor.Frames) {
				t.Fatalf("one-shard monitor frames diverged from sequential")
			}
			if !reflect.DeepEqual(seq.Timeline.Points, one.Timeline.Points) {
				t.Fatalf("one-shard Timeline diverged: %v vs %v", seq.Timeline.Points, one.Timeline.Points)
			}
			if !reflect.DeepEqual(seq.QueueLen.Points, one.QueueLen.Points) {
				t.Fatalf("one-shard QueueLen diverged")
			}
			if !reflect.DeepEqual(seq.QueueImbalance.Points, one.QueueImbalance.Points) {
				t.Fatalf("one-shard QueueImbalance diverged")
			}
			if len(seqCol.Events) == 0 || len(seq.Monitor.Frames) == 0 {
				t.Fatalf("vacuous comparison: %d events, %d frames", len(seqCol.Events), len(seq.Monitor.Frames))
			}
		})
	}
}

// TestShardTraceConservation pins the K >= 2 contract against the
// sequential run: the placement-independent event kinds keep their
// exact per-kind totals even though the shards route goals along
// different walks.
func TestShardTraceConservation(t *testing.T) {
	for _, c := range shardCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var seqCol, parCol trace.Collector
			obsRun(c, 0, false, &seqCol)
			obsRun(c, 3, false, &parCol)
			for _, k := range conservedKinds() {
				if s, p := seqCol.Count(k), parCol.Count(k); s != p {
					t.Errorf("%v: sequential %d events, 3 shards %d", k, s, p)
				}
			}
			if seqCol.Count(trace.GoalCreated) == 0 {
				t.Fatal("vacuous conservation check: no goals created")
			}
		})
	}
}

// TestShardTraceParallelMatchesSerial pins determinism of the merged
// observability output itself: the parallel window schedule and its
// serial replay produce identical trace streams, monitor frames and
// sampling series — byte for byte, not just conserved counts.
func TestShardTraceParallelMatchesSerial(t *testing.T) {
	for _, c := range shardCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var parCol, serCol trace.Collector
			par := obsRun(c, 3, false, &parCol)
			ser := obsRun(c, 3, true, &serCol)
			if !reflect.DeepEqual(parCol.Events, serCol.Events) {
				t.Fatalf("parallel trace diverged from serial replay: %d vs %d events", len(parCol.Events), len(serCol.Events))
			}
			if !reflect.DeepEqual(par.Monitor.Frames, ser.Monitor.Frames) {
				t.Fatalf("parallel monitor frames diverged from serial replay")
			}
			if !reflect.DeepEqual(par.Timeline.Points, ser.Timeline.Points) ||
				!reflect.DeepEqual(par.QueueLen.Points, ser.QueueLen.Points) ||
				!reflect.DeepEqual(par.QueueImbalance.Points, ser.QueueImbalance.Points) {
				t.Fatalf("parallel sampling series diverged from serial replay")
			}
			if len(parCol.Events) == 0 {
				t.Fatal("vacuous comparison: no events traced")
			}
		})
	}
}

// TestShardMonitoredSmoke32x32 is the CI race-detector smoke: a fully
// monitored and traced 4-shard run on a 32x32 grid completes and emits
// full-machine frames — every frame covers all 1024 PEs with in-range
// utilizations, at strictly increasing synchronized instants.
func TestShardMonitoredSmoke32x32(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 4
	cfg.SampleInterval = 100
	cfg.MonitorPE = true
	var col trace.Collector
	cfg.Trace = &col
	topo := topology.NewGrid(32, 32)
	st := NewStream(topo, NewFixedInterval(workload.NewFib(12), 300, 6), spread{}, cfg).Run()
	if !st.Completed {
		t.Fatalf("monitored sharded run did not complete: %+v", st)
	}
	if len(st.Monitor.Frames) == 0 {
		t.Fatal("no monitor frames")
	}
	prev := sim.Time(-1)
	for i, f := range st.Monitor.Frames {
		if len(f.Util) != topo.Size() {
			t.Fatalf("frame %d covers %d PEs, want %d", i, len(f.Util), topo.Size())
		}
		if f.At <= prev {
			t.Fatalf("frame %d instant %d not after %d", i, f.At, prev)
		}
		prev = f.At
		for pe, u := range f.Util {
			if u < 0 || u > 1.0000001 {
				t.Fatalf("frame %d PE %d utilization %v out of range", i, pe, u)
			}
		}
	}
	for _, p := range st.Timeline.Points {
		if p.V < 0 || p.V > 100.0000001 {
			t.Fatalf("timeline point %v out of [0,100]", p)
		}
	}
	if len(col.Events) == 0 {
		t.Fatal("no trace events recorded")
	}
}

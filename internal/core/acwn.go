package core

import (
	"fmt"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
)

// ACWN is "adaptive CWN": plain CWN extended with the three improvements
// the paper's conclusions call for, each independently switchable so the
// ablation benches can isolate its contribution:
//
//  1. Saturation control ("When the system is running at 100%
//     utilization, there is no need to send every goal out"): a new goal
//     stays local when both this PE's load and every known neighbor
//     load are at least SatThreshold.
//  2. A small re-distribution component ("a small, well-controlled
//     re-distribution component should be added to CWN"): a periodic
//     process re-exports one queued, unstarted goal to a known-idle
//     neighbor.
//  3. Commitment-aware load is selected machine-wide via
//     machine.Config.LoadMetric = LoadQueuePlusPending (the paper's
//     "taking future commitments into account while computing the
//     load").
type ACWN struct {
	// Radius and Horizon as in CWN.
	Radius  int
	Horizon int
	// SatThreshold enables saturation control when > 0.
	SatThreshold int
	// Redistribute enables the periodic re-distribution process.
	Redistribute bool
	// Interval is the re-distribution process period (used only when
	// Redistribute is set).
	Interval sim.Time
	// StrictMinimum selects the local-minimum test, as in CWN.
	StrictMinimum bool
}

// NewACWN returns an ACWN with both behavioural extensions enabled.
func NewACWN(radius, horizon, satThreshold int, interval sim.Time) *ACWN {
	if radius < 1 {
		panic("core: ACWN radius must be >= 1")
	}
	if horizon < 0 || horizon > radius {
		panic("core: ACWN horizon must be in [0, radius]")
	}
	if satThreshold < 0 {
		panic("core: ACWN saturation threshold must be >= 0")
	}
	if interval <= 0 {
		panic("core: ACWN interval must be positive")
	}
	return &ACWN{
		Radius:       radius,
		Horizon:      horizon,
		SatThreshold: satThreshold,
		Redistribute: true,
		Interval:     interval,
	}
}

// Name implements machine.Strategy.
func (s *ACWN) Name() string {
	return fmt.Sprintf("ACWN(r=%d,h=%d,sat=%d,redist=%v)", s.Radius, s.Horizon, s.SatThreshold, s.Redistribute)
}

// Setup implements machine.Strategy.
func (s *ACWN) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *ACWN) NewNode(pe *machine.PE) machine.NodeStrategy {
	n := &acwnNode{s: s, pe: pe}
	if s.Redistribute {
		pe.Machine().NewTicker(pe, s.Interval, n.tick)
	}
	return n
}

type acwnNode struct {
	s  *ACWN
	pe *machine.PE
}

// HandleEvent implements machine.NodeStrategy.
func (n *acwnNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		n.place(ev.Goal)
	case machine.GoalArrived:
		n.arrived(ev.Goal)
	}
}

// place behaves like CWN unless the neighborhood is saturated, in
// which case the goal stays local and the contraction traffic is saved.
func (n *acwnNode) place(g *machine.Goal) {
	nbr, least := n.pe.LeastLoadedNeighbor()
	if nbr < 0 {
		n.pe.Accept(g)
		return
	}
	if t := n.s.SatThreshold; t > 0 && n.pe.Load() >= t && least >= t {
		n.pe.Accept(g)
		return
	}
	n.pe.SendGoal(nbr, g)
}

// arrived is CWN's contraction walk, unchanged.
func (n *acwnNode) arrived(g *machine.Goal) {
	if g.Hops >= n.s.Radius {
		n.pe.Accept(g)
		return
	}
	if g.Hops >= n.s.Horizon && isLocalMinimum(n.pe, n.s.StrictMinimum) {
		n.pe.Accept(g)
		return
	}
	nbr, _ := n.pe.LeastLoadedNeighbor()
	if nbr < 0 {
		n.pe.Accept(g)
		return
	}
	n.pe.SendGoal(nbr, g)
}

// tick is the re-distribution process: when a known-idle neighbor exists
// and this PE has spare queued goals, push one over. Only unstarted
// goals move — tasks that have spawned never migrate.
func (n *acwnNode) tick() {
	if n.pe.QueuedGoals() < 2 {
		return
	}
	target := -1
	count := 0
	rng := n.pe.Machine().Engine().Rng()
	for _, nb := range n.pe.Neighbors() {
		load, seen := n.pe.KnownLoad(nb)
		if seen >= 0 && load == 0 {
			count++
			if rng.Intn(count) == 0 {
				target = nb
			}
		}
	}
	if target < 0 {
		return
	}
	if g := n.pe.TakeNewestQueuedGoal(); g != nil {
		n.pe.SendGoal(target, g)
	}
}

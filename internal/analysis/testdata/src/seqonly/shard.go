package seqonlyfix

// This file is shard-path: its functions root the seqonly traversal,
// like machine/shard.go in the real module.
//
//simlint:seqonly

func (m *machine) step(ev string) {
	m.emit(ev)
	m.seen += m.sampleWindow()
	m.applyOps()
	m.seen += m.poolGet()
	m.recycle()
	m.recycleNoReason()
}

func (m *machine) direct() {
	m.cfg.Pool.free = nil // want `shard-path code reaches sequential-only feature Pool unguarded \(reached via direct\)`
}

// scenarioDirect reaches the untagged Scenario straight from shard-path
// code: shard-safe, never reported.
func (m *machine) scenarioDirect() {
	m.cfg.Scenario.events = nil
}

// guardedDirect reads the field only in an if condition — that read is
// itself the guard, so it is allowed.
func (m *machine) guardedDirect() int64 {
	if m.cfg.Pool != nil {
		return 10
	}
	return 0
}

// This file is shard-path code: everything here runs inside a sharded
// run, where Config.validate has already rejected the one remaining
// global-state feature (Pool — free lists are single-threaded by
// design). The seqonly analyzer (internal/analysis) walks the call
// graph rooted at this file's functions and flags any unguarded reach
// into it. Sampling, monitoring, tracing and scripted Scenarios are
// shard-safe: each shard captures its own PE block's partials and
// buffers its own trace events, the coordinator applies scenario ops at
// window barriers (applyOps) and folds everything into the merged
// result at finalize (mergeSamples, mergeInjSoj, replayTrace below).
//
//simlint:seqonly
package machine

import (
	"math"
	"sort"
	"sync/atomic"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
)

// shardSeedSalt derives shard s's engine seed as
// Seed ^ s*shardSeedSalt (the PCG multiplier as an odd mixing
// constant), giving each shard its own tie-break stream. Shard 0 keeps
// the plain seed so a one-shard group replays the sequential machine's
// draws exactly.
const shardSeedSalt = 0x5851F42D4C957F2D

// xmsg is one cross-shard wire message with its delivery time: what a
// shard's outbox holds between a send and the window barrier that
// drains it into the receiving shard's engine.
type xmsg struct {
	at sim.Time
	w  *wireMsg
}

// shardSample is one shard's deferred contribution to one globally
// synchronized sampling instant: the raw partials over its own PE
// block, folded into full-machine series points by mergeSamples. The
// raw queue-length sums are carried (not a per-shard fairness index)
// because Jain's index is a ratio of sums — it cannot be merged from
// per-shard indices, only recomputed from the pooled partials.
type shardSample struct {
	at, window sim.Time
	busyDelta  sim.Time  // block busy time accrued inside the window
	qsum, qsq  float64   // block queue-length sum and sum of squares
	frame      []float64 // block per-PE utilization; nil unless MonitorPE
	soj        []float64 // window's raw sojourns; scenario runs only
}

// shardGroup coordinates the machines of one sharded run: K contiguous
// PE blocks, each a full Machine with its own event engine, free lists
// and statistics, advancing in lockstep windows of one conservative
// lookahead each. The protocol is the classic Chandy-Misra-Bryant
// window discipline run as a barrier loop:
//
//	repeat:
//	  every shard runs its engine to the window end W    (parallel)
//	  the coordinator drains all cross-shard outboxes    (sequential)
//	  completion check; advance W by the lookahead
//
// The lookahead is the minimum wire latency on any channel crossing a
// shard boundary, so no message sent inside a window can be due before
// the window after it — every shard always holds its complete event
// set for the window it is executing, with no rollbacks and no null
// messages. Determinism: shards interact only through the outboxes
// (drained in a fixed order by the single-threaded coordinator) and
// one shared in-flight job counter (atomic adds commute; branched on
// only at barriers), so a run is a pure function of seed and shard
// count — the parallel schedule cannot change the result, pinned by
// the ShardSerial cross-checks.
type shardGroup struct {
	// inFlight is the group-wide injected-but-uncompleted job count,
	// updated atomically from any shard. First field: 64-bit aligned.
	inFlight int64

	topo *topology.Topology
	cfg  Config
	part topology.Partition
	k    int // shard count after clamping to the machine size
	home int // the shard owning RootPE: source, arrivals, injection

	// lookahead is the conservative window width; winEnd the current
	// window's end, read by handOff's safety assertion.
	lookahead sim.Time
	winEnd    sim.Time

	machines []*Machine

	// Group outcome, decided at window barriers (multi-shard groups
	// never stop mid-window — which shard would observe the in-flight
	// count hit zero depends on thread schedule, not virtual time).
	completed  bool
	finishedAt sim.Time
	result     int64

	workers []shardWorker
	done    chan shardDone
	inbox   []xmsg // coordinator scratch for sorting one drain

	// Shard-local scenario replay. scn is the script expanded once at
	// construction and shared by every shard; ops is its firing-order
	// timeline, applied by the coordinator at window barriers landed
	// exactly on each op's scripted time (run clamps window ends to the
	// op cursor) — opIx cursors it. failed/live mirror the
	// shards' per-block failure state machine-wide; written only at
	// barriers, so mid-window reads (refuge selection, root redirects)
	// are race-free.
	scn    *scenario.Script
	ops    []scenario.Event
	opIx   int
	failed []bool
	live   int
}

// shardWorker is one shard's persistent goroutine: it runs its machine
// to each window end the coordinator sends.
type shardWorker struct {
	m     *Machine
	start chan sim.Time
}

// shardDone reports one shard's window completion; err carries a
// recovered panic for the coordinator to re-raise.
type shardDone struct {
	shard int
	err   any
}

// newShardGroup partitions the topology and builds the K shard
// machines. cfg must already be validated.
func newShardGroup(topo *topology.Topology, source JobSource, strat Strategy, cfg Config) *shardGroup {
	if so, ok := strat.(SequentialOnly); ok {
		panic("machine: strategy " + strat.Name() + " cannot run sharded: " + so.SequentialOnly())
	}
	k := cfg.Shards
	if k > topo.Size() {
		k = topo.Size()
	}
	part := topo.Partition(k)
	minHop := cfg.GoalHopTime
	if cfg.RespHopTime < minHop {
		minHop = cfg.RespHopTime
	}
	if cfg.CtrlHopTime < minHop {
		minHop = cfg.CtrlHopTime
	}
	g := &shardGroup{
		topo: topo,
		cfg:  cfg,
		part: part,
		k:    k,
		home: part.Assign[cfg.RootPE],
	}
	// Every channel can carry every message kind, so each channel's
	// guaranteed latency is the minimum hop time; the partition reduces
	// that over the boundary-crossing channels.
	if la, ok := part.MinCrossLatency(func(topology.Channel) int64 { return int64(minHop) }); ok {
		g.lookahead = sim.Time(la)
	} else {
		// No channel crosses a shard boundary (single-shard groups): any
		// window width is safe. Use the same width anyway so the
		// one-shard protocol run exercises the window machinery the
		// cross-checks certify.
		g.lookahead = minHop
	}
	// Expand the scenario once for the whole group; every shard shares
	// the result. Multi-shard groups also pre-sort the op timeline and
	// allocate the global failure map the shards consult mid-window.
	if !cfg.Scenario.Empty() {
		g.scn = cfg.Scenario.Expand(topo.Size(), cfg.MaxTime)
		if k > 1 {
			g.ops = g.scn.Sorted()
			g.failed = make([]bool, topo.Size())
			g.live = topo.Size()
		}
	}
	g.machines = make([]*Machine, k)
	for s := 0; s < k; s++ {
		g.machines[s] = newMachine(topo, source, strat, cfg, g, s)
	}
	// Stamp each shard's channel copies with the cross-shard member map:
	// which other shards hear a broadcast, and whether any local member
	// remains to hear it locally. Only the partition's cross-channel set
	// needs stamping — a shard-internal channel's zero state (nil
	// crossTo) already means "deliver locally only" — which keeps this
	// loop off the full channel list entirely: an implicit topology's
	// channels are enumerated per ID, never materialized.
	counts := make([]int, k)
	owners := make([]int, 0, k)
	var mbuf []int
	for _, ci := range part.Cross {
		for s := range counts {
			counts[s] = 0
		}
		owners = owners[:0]
		mbuf = topo.AppendChannelMembers(mbuf[:0], ci)
		for _, pe := range mbuf {
			s := part.Assign[pe]
			if counts[s] == 0 {
				owners = append(owners, s)
			}
			counts[s]++
		}
		sort.Ints(owners)
		for _, s := range owners {
			cs := g.machines[s].chanAt(ci)
			cs.localMembers = counts[s]
			for _, o := range owners {
				if o != s {
					cs.crossTo = append(cs.crossTo, o)
				}
			}
		}
	}
	return g
}

// run executes the window-barrier loop to completion (or MaxTime) and
// returns the merged statistics.
func (g *shardGroup) run() *Stats {
	home := g.machines[g.home]
	serial := g.k == 1 || g.cfg.ShardSerial
	if !serial {
		// Warm the shared routing tables before goroutines race to the
		// same sync.Once, and start one persistent worker per shard.
		g.topo.Dist(0, 0)
		g.startWorkers()
		defer g.stopWorkers()
	}
	home.pump()
	maxT := g.cfg.MaxTime
	// start is the last executed instant; each window runs (start,
	// start+lookahead]. It begins at -1 — nothing, including time 0, has
	// executed — so the first window is [0, lookahead-1] and a send at
	// time u always lands at u+hop >= start+1+lookahead, strictly past
	// the window end: the conservative guarantee handOff asserts.
	start := sim.Time(-1)
	for {
		end := maxT
		if w := start + g.lookahead; w < maxT {
			end = w
		}
		// Park the barrier one tick short of the next scenario op's
		// scripted time: shrinking a window is always conservative, and
		// it lets the coordinator apply the op at its exact instant
		// BEFORE that instant's machine events fire — the ordering the
		// sequential engine produces, where ops are scheduled at
		// construction and so carry the lowest sequence numbers at
		// their timestamp. opAt marks an op-landing barrier (an empty
		// window when the op falls on start+1 — that just advances the
		// cursor).
		opAt := sim.Time(-1)
		if g.opIx < len(g.ops) {
			if at := g.ops[g.opIx].At; at > start && at <= end {
				end = at - 1
				opAt = at
			}
		}
		g.winEnd = end
		if serial {
			// The serial replay: same protocol, same per-window work,
			// shard by shard on this goroutine. Shards only interact
			// through the barriers, so this must be — and is, pinned by
			// cross-check — bit-for-bit the parallel result.
			for _, m := range g.machines {
				m.eng.RunUntil(end)
			}
		} else {
			g.runWindow(end)
		}
		if g.k == 1 && home.eng.Stopped() {
			// A single shard completes exactly like the sequential
			// machine: completeJob/pump stop the engine mid-window.
			break
		}
		if opAt >= 0 {
			// Every shard is quiescent at end = opAt-1: step the clocks
			// onto the op instant (no events fire — the earliest pending
			// ones are at opAt) and apply everything scripted there.
			for _, m := range g.machines {
				m.eng.AdvanceTo(opAt)
			}
			g.applyOps(opAt)
		}
		g.drain()
		if g.k > 1 && home.srcDone && atomic.LoadInt64(&g.inFlight) == 0 {
			// At a barrier every shard is quiescent, so the shared count
			// is exact: all injected jobs responded and no arrivals
			// remain. (In-flight control traffic may outlive completion,
			// exactly as on the sequential machine.)
			g.completed = true
			break
		}
		if end >= maxT {
			break
		}
		start = end
		// Fast-forward over windows no shard has events in: begin the
		// next window one unit before the globally earliest event or
		// not-yet-applied scenario op.
		if next, ok := g.nextPending(); !ok {
			start = maxT
		} else if next > start+1 {
			start = next - 1
		}
	}
	return g.finalize()
}

func (g *shardGroup) startWorkers() {
	g.done = make(chan shardDone, g.k)
	g.workers = make([]shardWorker, g.k)
	for s := range g.workers {
		g.workers[s] = shardWorker{m: g.machines[s], start: make(chan sim.Time, 1)}
		go g.workers[s].loop(g.done)
	}
}

func (g *shardGroup) stopWorkers() {
	for s := range g.workers {
		close(g.workers[s].start)
	}
}

func (w *shardWorker) loop(done chan<- shardDone) {
	for end := range w.start {
		err := w.runOne(end)
		done <- shardDone{shard: w.m.shardID, err: err}
		if err != nil {
			return
		}
	}
}

// runOne advances the shard to the window end, converting a panic into
// a value so the coordinator can finish the barrier before re-raising.
func (w *shardWorker) runOne(end sim.Time) (err any) {
	defer func() { err = recover() }()
	w.m.eng.RunUntil(end)
	return nil
}

// runWindow releases every worker for one window and waits for all of
// them — the barrier. A shard panic is re-raised here, after the
// barrier, so no worker is left mid-window.
func (g *shardGroup) runWindow(end sim.Time) {
	for s := range g.workers {
		g.workers[s].start <- end
	}
	var first any
	for i := 0; i < g.k; i++ {
		if d := <-g.done; d.err != nil && first == nil {
			first = d.err
		}
	}
	if first != nil {
		panic(first)
	}
}

// drain moves every cross-shard outbox into its receiving shard's
// engine, in a thread-schedule-independent total order: by delivery
// time, ties by sending shard, FIFO within a shard pair. Runs on the
// coordinator between windows, when all shards are quiescent.
func (g *shardGroup) drain() {
	for dstID, dst := range g.machines {
		buf := g.inbox[:0]
		for _, src := range g.machines {
			if src == dst {
				continue
			}
			q := src.xout[dstID]
			buf = append(buf, q...)
			for i := range q {
				q[i] = xmsg{}
			}
			src.xout[dstID] = q[:0]
		}
		// Stable insertion sort: windows are one lookahead wide, so the
		// per-window buffers are small and allocation-free beats O(n log n).
		for i := 1; i < len(buf); i++ {
			for j := i; j > 0 && buf[j].at < buf[j-1].at; j-- {
				buf[j], buf[j-1] = buf[j-1], buf[j]
			}
		}
		for _, x := range buf {
			x.w.m = dst
			dst.eng.AtAction(x.at, x.w)
		}
		g.inbox = buf
	}
}

// nextEvent returns the earliest pending event time across all shards.
func (g *shardGroup) nextEvent() (sim.Time, bool) {
	var min sim.Time
	ok := false
	for _, m := range g.machines {
		if t, has := m.eng.NextEventAt(); has && (!ok || t < min) {
			min, ok = t, true
		}
	}
	return min, ok
}

// nextPending is nextEvent extended with the scenario op cursor, so the
// fast-forward cannot jump past an op's scripted time — the next
// window's clamped end must still be able to park one tick short of it.
func (g *shardGroup) nextPending() (sim.Time, bool) {
	t, ok := g.nextEvent()
	if g.opIx < len(g.ops) {
		if at := g.ops[g.opIx].At; !ok || at < t {
			t, ok = at, true
		}
	}
	return t, ok
}

// applyOps applies every scenario op scripted at or before the op
// instant the barrier just advanced onto, in firing order, while all
// shards are quiescent and before that instant's machine events run.
// Ops run before drain so their sends (evacuations, availability
// broadcasts) are delivered with this barrier's batch.
func (g *shardGroup) applyOps(end sim.Time) {
	for g.opIx < len(g.ops) && g.ops[g.opIx].At <= end {
		g.applyOp(g.ops[g.opIx])
		g.opIx++
	}
}

// owner returns the machine owning PE id.
func (g *shardGroup) owner(id int) *Machine { return g.machines[g.part.Assign[id]] }

// applyOp routes one scenario op to the shards it affects: PE ops to
// the targets' owners, link ops to every shard's channel copies,
// checkpoint ticks and restore/recover-all sweeps to all shards, load
// shocks to the home shard (which owns the arrival process). Every
// shard's engine sits exactly at the barrier time, so the op applies at
// one consistent instant machine-wide.
func (g *shardGroup) applyOp(ev scenario.Event) {
	p := g.topo.Size()
	switch ev.Kind {
	case scenario.SlowPE:
		for _, id := range ev.Targets(p) {
			m := g.owner(id)
			m.setSpeed(m.pes[id], m.pes[id].nominalSpeed()*ev.Factor)
		}
	case scenario.RestorePE:
		targets := ev.Targets(p)
		if targets == nil {
			for _, m := range g.machines {
				for lx := range m.peBlock {
					pe := &m.peBlock[lx]
					if pe.Speed() != pe.nominalSpeed() {
						m.setSpeed(pe, pe.nominalSpeed())
					}
				}
			}
			return
		}
		for _, id := range targets {
			m := g.owner(id)
			m.setSpeed(m.pes[id], m.pes[id].nominalSpeed())
		}
	case scenario.FailPE:
		for _, id := range ev.Targets(p) {
			m := g.owner(id)
			m.failPE(m.pes[id])
		}
	case scenario.CrashPE:
		for _, id := range ev.Targets(p) {
			m := g.owner(id)
			m.crashPE(m.pes[id])
		}
	case scenario.RecoverPE:
		targets := ev.Targets(p)
		if targets == nil {
			for _, m := range g.machines {
				for lx := range m.peBlock {
					if m.peFailed[lx] {
						m.recoverPE(&m.peBlock[lx])
					}
				}
			}
			return
		}
		for _, id := range targets {
			m := g.owner(id)
			m.recoverPE(m.pes[id])
		}
	case scenario.DegradeLink:
		g.applyLink(ev.A, ev.B, ev.Factor, ev.Factor == 0, false)
	case scenario.RestoreLink:
		g.applyLink(ev.A, ev.B, 0, false, true)
	case scenario.LoadShock:
		g.machines[g.home].rateMul = ev.Factor
	case scenario.CheckpointTick:
		for _, m := range g.machines {
			m.checkpointTick(ev.Cost)
		}
		// Eager snapshot: record every live job's position as of this
		// barrier. The sequential machine snapshots lazily on the next
		// goal finish, but here several shards advance one job's
		// progress inside a window — only the barrier gives one
		// consistent, schedule-independent instant. The home machine's
		// registry is compacted in the same walk: completed or abandoned
		// jobs were freed (nil tree) and recycled structs were
		// re-appended, so dead entries just drop.
		home := g.machines[g.home]
		now := home.eng.Now()
		live := home.liveJobs[:0]
		for _, j := range home.liveJobs {
			if j.tree == nil {
				continue
			}
			j.ckptProgress = atomic.LoadInt64(&j.progress)
			j.ckptSeen = now
			live = append(live, j)
		}
		for i := len(live); i < len(home.liveJobs); i++ {
			home.liveJobs[i] = nil
		}
		home.liveJobs = live
	}
}

// applyLink applies a link event group-wide: every shard mutates its
// own copies of the affected channels (a bus channel's members can span
// shards beyond the named endpoints), and the endpoint owners notify
// their FailureAware nodes on the same down/up transition the
// sequential machine notifies on.
func (g *shardGroup) applyLink(a, b int, factor float64, down, restore bool) {
	wasDown := false
	for _, m := range g.machines {
		var w bool
		if restore {
			w = m.restoreLinkState(a, b)
		} else {
			w = m.setLinkState(a, b, factor, down)
		}
		if w {
			wasDown = true
		}
	}
	var kind EventKind
	switch {
	case restore && wasDown, !restore && !down && wasDown:
		kind = LinkRestored
	case !restore && down && !wasDown:
		kind = LinkDown
	default:
		return
	}
	g.owner(a).notifyEndpoint(a, b, kind)
	g.owner(b).notifyEndpoint(b, a, kind)
}

// stalled is the group form of Machine.stalled: jobs in flight with no
// goal or response anywhere — queued, executing, or in transit on any
// shard. Transit counters increment on the sending shard and decrement
// on the receiving one, so only their sum is meaningful.
func (g *shardGroup) stalled() bool {
	if g.completed || atomic.LoadInt64(&g.inFlight) == 0 || !g.machines[g.home].srcDone {
		return false
	}
	var transit int64
	for _, m := range g.machines {
		transit += m.goalsInTransit + m.respsInTransit + m.retryPending
	}
	if transit != 0 {
		return false
	}
	for _, m := range g.machines {
		for i := range m.peBusy {
			if m.peBusy[i] || m.peBlock[i].queueLen() > 0 {
				return false
			}
		}
	}
	return true
}

// finalize merges the shards' statistics into shard 0's Stats and
// applies the group-level outcome.
func (g *shardGroup) finalize() *Stats {
	root := g.machines[0]
	if g.k == 1 {
		// The single shard carried the whole outcome itself.
		root.finalize()
		return root.stats
	}
	if g.completed {
		// Deterministic finish rule: the last completion, ties resolved
		// toward the higher shard (within one shard, engine order already
		// picked the later completion's result).
		fin := sim.Time(-1)
		for _, m := range g.machines {
			if m.stats.JobsDone > 0 && m.lastDone >= fin {
				fin = m.lastDone
				g.result = m.result
			}
		}
		g.finishedAt = fin
	}
	for _, m := range g.machines {
		m.completed = g.completed
		m.finishedAt = g.finishedAt
		m.finalize()
	}
	s := root.stats
	for _, m := range g.machines[1:] {
		s.merge(m.stats)
	}
	g.mergeSamples(s)
	g.mergeInjSoj(s)
	g.replayTrace()
	s.Completed = g.completed
	s.Result = g.result
	if g.completed {
		s.Makespan = g.finishedAt
	}
	s.Stalled = g.stalled()
	// Per-shard completion order interleaves; restore global completion
	// order, then re-apply the record cap the per-shard streams enforced
	// individually.
	sort.Slice(s.JobRecords, func(i, j int) bool {
		a, b := s.JobRecords[i], s.JobRecords[j]
		if a.DoneAt != b.DoneAt {
			return a.DoneAt < b.DoneAt
		}
		return a.ID < b.ID
	})
	if b := g.cfg.SojournBound; b > 0 && len(s.JobRecords) > b {
		s.JobRecords = s.JobRecords[:b]
	}
	return s
}

// mergeSamples folds the shards' deferred sampling partials into the
// merged statistics' full-machine series. Every shard sampled its own
// PE block at the same instants (the observer stagger phase draws from
// the plain seed on every shard), so the streams align index by index;
// divergence would mean the synchronization contract broke, which is a
// bug worth crashing on, not papering over. The folded formulas are
// exactly the sequential machine's, applied to the pooled partials.
func (g *shardGroup) mergeSamples(s *Stats) {
	if g.cfg.SampleInterval <= 0 {
		return
	}
	ref := g.machines[0].shardSamples
	for _, m := range g.machines[1:] {
		if len(m.shardSamples) != len(ref) {
			panic("machine: shard sample streams diverged in length — sample instants must be globally synchronized")
		}
	}
	p := float64(g.topo.Size())
	var frame []float64
	if g.cfg.MonitorPE {
		frame = make([]float64, g.topo.Size())
	}
	var sojs []float64
	for i, r := range ref {
		var busyDelta sim.Time
		var qsum, qsq float64
		sojs = sojs[:0]
		for _, m := range g.machines {
			sp := m.shardSamples[i]
			if sp.at != r.at || sp.window != r.window {
				panic("machine: shard sample instants diverged — sample instants must be globally synchronized")
			}
			busyDelta += sp.busyDelta
			qsum += sp.qsum
			qsq += sp.qsq
			if frame != nil {
				copy(frame[m.peLo:m.peHi], sp.frame)
			}
			sojs = append(sojs, sp.soj...)
		}
		s.Timeline.Add(float64(r.at), 100*float64(busyDelta)/(float64(r.window)*p))
		if frame != nil {
			s.Monitor.Append(r.at, frame)
		}
		s.QueueLen.Add(float64(r.at), qsum/p)
		imb := 1.0
		if qsq > 0 {
			imb = qsum * qsum / (p * qsq)
		}
		s.QueueImbalance.Add(float64(r.at), imb)
		// Windowed sojourn p99 (scenario runs): the pooled sojourns of
		// all shards' completions inside the window, the same formula
		// and warm-up drop as the sequential machine's sample().
		if len(sojs) > 0 && r.at >= g.cfg.Warmup {
			sort.Float64s(sojs)
			rank := int(math.Ceil(0.99*float64(len(sojs)))) - 1
			if rank < 0 {
				rank = 0
			}
			s.SojournWindows.Add(float64(r.at), sojs[rank])
		}
	}
}

// mergeInjSoj folds the shards' injection-keyed raw sojourn buckets
// into the merged InjSojournWindows series. Shards thin their buckets
// independently (SeriesBound), so strides can differ; every stride is a
// power of two, so re-bucketing to the widest one only concatenates —
// each pooled bucket holds exactly the sojourns of jobs injected in its
// window, and the finalized percentiles stay exact on the common grid.
func (g *shardGroup) mergeInjSoj(s *Stats) {
	if g.cfg.SampleInterval <= 0 || g.machines[0].injSoj == nil {
		return
	}
	stride := 1
	for _, m := range g.machines {
		if m.injStride > stride {
			stride = m.injStride
		}
	}
	var pooled [][]float64
	for _, m := range g.machines {
		f := stride / m.injStride
		for w, sojs := range m.injSoj {
			if len(sojs) == 0 {
				continue
			}
			cw := w / f
			for len(pooled) <= cw {
				pooled = append(pooled, nil)
			}
			pooled[cw] = append(pooled[cw], sojs...)
		}
	}
	if b := g.cfg.SeriesBound; b > 0 {
		for len(pooled) > b {
			half := (len(pooled) + 1) / 2
			for i := 0; i < half; i++ {
				merged := pooled[2*i]
				if 2*i+1 < len(pooled) {
					merged = append(merged, pooled[2*i+1]...)
				}
				pooled[i] = merged
			}
			pooled = pooled[:half]
			stride *= 2
		}
	}
	for w, sojs := range pooled {
		if len(sojs) == 0 {
			continue
		}
		end := sim.Time(w+1) * g.cfg.SampleInterval * sim.Time(stride)
		if end <= g.cfg.Warmup {
			continue
		}
		sort.Float64s(sojs)
		rank := int(math.Ceil(0.99*float64(len(sojs)))) - 1
		if rank < 0 {
			rank = 0
		}
		s.InjSojournWindows.Add(float64(end), sojs[rank])
	}
}

// replayTrace replays the shards' buffered trace events into the Sink
// in a thread-schedule-independent total order: by event time, ties by
// shard, FIFO within one shard's buffer. Runs on the coordinator after
// the workers have torn down, so the Sink keeps its single-goroutine
// contract.
func (g *shardGroup) replayTrace() {
	if g.cfg.Trace == nil {
		return
	}
	type tagged struct {
		ev    trace.Event
		shard int
		seq   int
	}
	total := 0
	for _, m := range g.machines {
		total += len(m.traceBuf)
	}
	all := make([]tagged, 0, total)
	for sh, m := range g.machines {
		for i, ev := range m.traceBuf {
			all = append(all, tagged{ev: ev, shard: sh, seq: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.At != b.ev.At {
			return a.ev.At < b.ev.At
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	if c := g.machines[0].traceCollector; c != nil {
		c.Grow(total)
	}
	for _, t := range all {
		g.cfg.Trace.Record(t.ev)
	}
}

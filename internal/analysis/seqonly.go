package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Seqonly keeps the sequential-only boundary from drifting: functions
// reachable from the shard path (every function declared in a file
// tagged //simlint:seqonly — machine/shard.go) must not reach
// global-state features that Config.validate rejects for sharded runs
// (fields tagged //simlint:globalstate: Scenario, Trace, Pool,
// sampling). Those features assume one single-threaded machine; a
// shard touching them would race or silently diverge from the serial
// replay.
//
// A reference is allowed when the code demonstrably knows the feature
// is off on the shard path: reading the field inside an if/for/switch
// condition, or anywhere inside the body of an if whose condition
// tests the same field (the `if cfg.Trace != nil { ... }` shape —
// validate guarantees the branch never runs sharded). Shared functions
// that are safe for subtler reasons are trusted boundaries: tag them
// //simlint:seqsafe <reason> and the traversal stops there.
//
// The call graph is static and package-local: calls through interfaces
// (strategies, job sources) are not followed. That is the right
// boundary here — strategy code cannot name machine internals.
var Seqonly = &Analyzer{
	Name: "seqonly",
	Doc:  "flag shard-path code reaching sequential-only (global-state) features unguarded",
	Run:  runSeqonly,
}

func runSeqonly(pass *Pass) error {
	tags := pass.CollectTags()
	if len(tags.SeqonlyFiles) == 0 {
		return nil
	}

	// Any globalstate fields declared at all? (They may be tagged in
	// this package even if the seqonly file is elsewhere — both must be
	// package-local for the analysis to see them.)
	hasGlobalState := false
	for _, ds := range tags.Fields {
		if hasVerb(ds, "globalstate") {
			hasGlobalState = true
		}
	}
	if !hasGlobalState {
		return nil
	}

	// Declared functions of this package, and the call edges between
	// them.
	decls := make(map[*types.Func]*ast.FuncDecl)
	fileOf := make(map[*types.Func]*ast.File)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
					fileOf[fn] = file
				}
			}
		}
	}

	callees := func(fd *ast.FuncDecl) []*types.Func {
		var out []*types.Func
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
			if !ok || fn.Pkg() != pass.Pkg || seen[fn] {
				return true
			}
			if _, declared := decls[fn]; declared {
				seen[fn] = true
				out = append(out, fn)
			}
			return true
		})
		return out
	}

	// BFS from the seqonly files' functions, stopping at seqsafe
	// boundaries; remember how each function was reached.
	parent := make(map[*types.Func]*types.Func)
	var queue []*types.Func
	visited := make(map[*types.Func]bool)
	enqueue := func(fn *types.Func, from *types.Func) {
		if visited[fn] {
			return
		}
		if d, trusted := tags.FuncTag(fn, "seqsafe"); trusted {
			if d.Args == "" {
				pass.Reportf(decls[fn].Pos(), "//simlint:seqsafe on %s needs a reason: say why shard-path reachability is safe here", fn.Name())
			}
			return
		}
		visited[fn] = true
		parent[fn] = from
		queue = append(queue, fn)
	}
	for file := range tags.SeqonlyFiles {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					enqueue(fn, nil)
				}
			}
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		fd := decls[fn]
		pass.checkGlobalStateRefs(tags, fn, fd, fileOf[fn], parent)
		for _, callee := range callees(fd) {
			enqueue(callee, fn)
		}
	}
	return nil
}

// checkGlobalStateRefs reports unguarded references to
// //simlint:globalstate fields inside fd.
func (pass *Pass) checkGlobalStateRefs(tags *Tags, fn *types.Func, fd *ast.FuncDecl, file *ast.File, parent map[*types.Func]*types.Func) {
	var parents map[ast.Node]ast.Node // built lazily: most functions have no refs
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[sel.Sel]
		if obj == nil {
			return true
		}
		if _, tagged := tags.FieldTag(obj, "globalstate"); !tagged {
			return true
		}
		if parents == nil {
			parents = parentMap(file)
		}
		if guardedRef(pass, parents, sel, obj) {
			return true
		}
		pass.Reportf(sel.Pos(), "shard-path code reaches sequential-only feature %s unguarded (%s): Config.validate rejects it for sharded runs — guard on the field, move the code off the shard path, or tag the function //simlint:seqsafe <reason>", obj.Name(), chain(fn, parent))
		return true
	})
}

// guardedRef reports whether the reference sits in a conditional
// position, or inside the body of an if whose condition tests the same
// field.
func guardedRef(pass *Pass, parents map[ast.Node]ast.Node, ref ast.Expr, field types.Object) bool {
	var prev ast.Node = ref
	for n := parents[ref]; n != nil; prev, n = n, parents[n] {
		switch s := n.(type) {
		case *ast.IfStmt:
			if prev == s.Cond || prev == s.Init {
				return true // the reference is the guard itself
			}
			if prev == s.Body && mentionsField(pass, s.Cond, field) {
				return true // guarded body: validate keeps this branch off shards
			}
		case *ast.ForStmt:
			if prev == s.Cond || prev == s.Init || prev == s.Post {
				return true
			}
		case *ast.SwitchStmt:
			if prev == s.Tag || prev == s.Init {
				return true
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // don't escape the enclosing function
		}
	}
	return false
}

func mentionsField(pass *Pass, cond ast.Expr, field types.Object) bool {
	if cond == nil {
		return false
	}
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == field {
			found = true
		}
		return !found
	})
	return found
}

// chain renders the reach path root → ... → fn for the diagnostic.
func chain(fn *types.Func, parent map[*types.Func]*types.Func) string {
	var names []string
	for f := fn; f != nil; f = parent[f] {
		names = append(names, f.Name())
	}
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return "reached via " + strings.Join(names, " → ")
}

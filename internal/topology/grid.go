package topology

import "fmt"

// NewGrid returns a rows×cols nearest-neighbor grid without wraparound:
// each PE links to the PEs directly above, below, left and right of it.
// Its diameter is (rows-1)+(cols-1) — for the paper's square grids of
// side 5..20 that is the quoted "8 to 38" range.
func NewGrid(rows, cols int) *Topology {
	return newGrid(rows, cols, false)
}

// NewTorus returns a rows×cols grid with wraparound connections (the
// literal reading of the paper's "nearest neighbor grid with wrap-around
// connections"). Diameter floor(rows/2)+floor(cols/2).
func NewTorus(rows, cols int) *Topology {
	return newGrid(rows, cols, true)
}

func newGrid(rows, cols int, wrap bool) *Topology {
	if rows <= 0 || cols <= 0 {
		panic("topology: grid dimensions must be positive")
	}
	n := rows * cols
	id := func(r, c int) int { return r*cols + c }
	var chans []Channel
	link := func(a, b int) {
		chans = append(chans, Channel{Members: []int{a, b}})
	}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				link(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				link(id(r, c), id(r+1, c))
			}
		}
	}
	if wrap {
		// A wrap link duplicates an existing link when the dimension has
		// size 2, and is a self-loop at size 1; skip both cases.
		if cols > 2 {
			for r := 0; r < rows; r++ {
				link(id(r, cols-1), id(r, 0))
			}
		}
		if rows > 2 {
			for c := 0; c < cols; c++ {
				link(id(rows-1, c), id(0, c))
			}
		}
	}
	kind := "grid"
	if wrap {
		kind = "torus"
	}
	return build(fmt.Sprintf("%s-%dx%d", kind, rows, cols), n, chans)
}

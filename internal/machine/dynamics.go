package machine

import (
	"fmt"
	"sort"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
)

// This file applies scripted environment events (internal/scenario) to
// a running machine: PE speed changes with in-flight rescaling, compute
// blackouts with drain/requeue semantics, link degradation and outages,
// and arrival-rate shocks. Nothing here runs unless Config.Scenario is
// non-empty.

// applyScenarioEvent dispatches one scripted event at its firing time.
func (m *Machine) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.SlowPE:
		for _, id := range ev.Targets(len(m.pes)) {
			pe := m.pes[id]
			m.setSpeed(pe, pe.nominalSpeed()*ev.Factor)
		}
	case scenario.RestorePE:
		targets := ev.Targets(len(m.pes))
		if targets == nil {
			for _, pe := range m.pes {
				if pe.Speed() != pe.nominalSpeed() {
					m.setSpeed(pe, pe.nominalSpeed())
				}
			}
			return
		}
		for _, id := range targets {
			m.setSpeed(m.pes[id], m.pes[id].nominalSpeed())
		}
	case scenario.FailPE:
		for _, id := range ev.Targets(len(m.pes)) {
			m.failPE(m.pes[id])
		}
	case scenario.CrashPE:
		for _, id := range ev.Targets(len(m.pes)) {
			m.crashPE(m.pes[id])
		}
	case scenario.RecoverPE:
		targets := ev.Targets(len(m.pes))
		if targets == nil {
			for _, pe := range m.pes {
				if m.peFailed[pe.lx] {
					m.recoverPE(pe)
				}
			}
			return
		}
		for _, id := range targets {
			m.recoverPE(m.pes[id])
		}
	case scenario.DegradeLink:
		m.setLink(ev.A, ev.B, ev.Factor, ev.Factor == 0)
	case scenario.RestoreLink:
		m.restoreLink(ev.A, ev.B)
	case scenario.LoadShock:
		m.rateMul = ev.Factor
	}
}

// nominalSpeed is the PE's configured base speed: PESpeeds[i] on a
// heterogeneous machine, 1 otherwise.
func (pe *PE) nominalSpeed() float64 {
	if s := pe.m.cfg.PESpeeds; s != nil {
		return s[pe.id]
	}
	return 1
}

// setSpeed changes the PE's service speed, rescaling any in-flight
// service proportionally: the remaining duration stretches or shrinks
// by oldSpeed/newSpeed, so work already performed is kept rather than
// restarted. Busy-time accounting is adjusted to the new completion.
// A SpeedAware node hears about its own clock change immediately.
func (m *Machine) setSpeed(pe *PE, speed float64) {
	old := pe.Speed()
	if m.peSpeed == nil {
		// First non-nominal speed of the run: materialize the hot-state
		// slice (zero entries read as nominal, like the nil fast path).
		m.peSpeed = make([]float64, m.peHi-m.peLo)
	}
	m.peSpeed[pe.lx] = speed
	if old != speed && pe.wantsSpeed {
		pe.node.HandleEvent(Event{Kind: PESlowed, From: pe.id, Factor: speed})
	}
	if !m.peBusy[pe.lx] || old == speed {
		return
	}
	now := m.eng.Now()
	remaining := m.peServiceEnd[pe.lx] - now
	if remaining <= 0 {
		return // completion already due this instant
	}
	scaled := sim.Time(float64(remaining) * old / speed)
	if scaled < 1 {
		scaled = 1
	}
	if scaled == remaining {
		return
	}
	pe.svc.Stop()
	m.peBusyTime[pe.lx] += scaled - remaining
	m.peServiceEnd[pe.lx] = now + scaled
	pe.svc.Schedule(scaled)
}

// failPE blacks out a PE's compute. The in-service message is cut off:
// a goal is evacuated (its partial work lost), an interrupted response
// goes back to the queue head to be combined first on recovery. Queued
// goals are evacuated to the nearest live PE in queue order; queued
// responses and pending tasks freeze in place, because the tasks
// awaiting them live here. The communication co-processor stays up —
// routing through the PE and control handling still work — and the PE
// advertises FailedLoad so load-comparing strategies steer around it.
func (m *Machine) failPE(pe *PE) {
	if m.peFailed[pe.lx] {
		return
	}
	live := 0
	for _, failed := range m.peFailed {
		if !failed {
			live++
		}
	}
	if live <= 1 {
		panic("machine: scenario would fail every PE")
	}
	now := m.eng.Now()
	m.peFailed[pe.lx] = true
	pe.failedAt = now

	// The refuge is invariant across this evacuation (liveness only
	// changes between events): resolve it once, not per goal.
	refuge := m.nearestLive(pe.id)

	if m.peBusy[pe.lx] {
		it := pe.inService
		pe.inService = item{}
		remaining := m.peServiceEnd[pe.lx] - now
		pe.svc.Stop()
		m.peBusy[pe.lx] = false
		if remaining > 0 {
			m.peBusyTime[pe.lx] -= remaining // the cut-off tail never happens
		}
		switch it.kind {
		case itemGoal:
			m.stats.ServiceAborts++
			m.evacuateGoal(pe.id, refuge, it.goal)
		case itemResponse:
			pe.ready.pushFront(it)
		}
	}

	// Evacuate queued goals in FIFO order, preserving their relative
	// ages at the refuge PE.
	for i := 0; i < pe.ready.len(); {
		if it := pe.ready.at(i); it.kind == itemGoal {
			g := it.goal
			pe.ready.removeAt(i)
			m.evacuateGoal(pe.id, refuge, g)
		} else {
			i++
		}
	}

	// Tell the neighborhood immediately (one broadcast per attached
	// channel, charged like any load word) rather than waiting for the
	// next periodic tick to advertise FailedLoad. The same transaction
	// carries the PEFailed notification for FailureAware neighbors.
	m.broadcastEnv(pe, PEFailed)
}

// crashPE is the state-loss variant of failPE: the PE's volatile state
// — queued and in-flight goals, queued responses, pending tasks — is
// destroyed, not evacuated. Every job that lost state here is aborted
// (its surviving goals machine-wide become stale and are discarded
// wherever they surface) and immediately retried from its root, keeping
// the original injection time so the sojourn bill includes the failed
// attempt. The communication co-processor stays up, exactly as for a
// blackout, and neighbors hear PEFailed with the sentinel broadcast.
func (m *Machine) crashPE(pe *PE) {
	if m.peFailed[pe.lx] {
		return
	}
	live := 0
	for _, failed := range m.peFailed {
		if !failed {
			live++
		}
	}
	if live <= 1 {
		panic("machine: scenario would crash every PE")
	}
	now := m.eng.Now()
	m.peFailed[pe.lx] = true
	pe.failedAt = now

	// Collect the jobs losing state here in deterministic encounter
	// order; the aborting flag dedups a job that lost several goals.
	var victims []*jobState
	collect := func(j *jobState) {
		if !j.aborting {
			j.aborting = true
			victims = append(victims, j)
		}
	}

	if m.peBusy[pe.lx] {
		it := pe.inService
		pe.inService = item{}
		remaining := m.peServiceEnd[pe.lx] - now
		pe.svc.Stop()
		m.peBusy[pe.lx] = false
		if remaining > 0 {
			m.peBusyTime[pe.lx] -= remaining // the cut-off tail never happens
		}
		if it.kind == itemGoal {
			m.stats.ServiceAborts++
			m.stats.GoalsLost++
			collect(it.goal.job)
			m.freeGoal(it.goal)
		}
		// An interrupted response integration is simply gone — its
		// waiting task is about to be purged with the pending map.
	}
	for pe.ready.len() > 0 {
		it := pe.ready.popFront()
		if it.kind == itemGoal {
			m.stats.GoalsLost++
			collect(it.goal.job)
			m.freeGoal(it.goal)
		}
		// Queued responses target local pending tasks; both vanish.
	}
	// Sweep the pending slab in goal-ID order, NOT slot order: the
	// victim sequence decides abort/reinject order and therefore goal
	// IDs and queue positions — slot order shifts as the table grows,
	// which would make identically-seeded crash runs diverge. (IDs are
	// collected first for a second reason: del back-shifts entries, so
	// deleting while iterating slots would skip some.)
	ids := make([]int64, 0, pe.pending.len())
	pe.pending.forEach(func(id int64, _ *pendingTask) { ids = append(ids, id) })
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := pe.pending.get(id)
		m.stats.GoalsLost++ // the executed parent's spawn state is lost
		collect(p.goal.job)
		pe.pending.del(id)
		m.freeGoal(p.goal)
		m.freePending(p)
	}

	for _, j := range victims {
		j.aborting = false
		m.abortJob(j)
	}
	m.broadcastEnv(pe, PEFailed)
}

// abortJob propagates a crash loss to the whole job: the attempt epoch
// bumps (staling every surviving goal of the job, including those in
// transit — they are discarded at delivery or service completion), the
// job's queued goals and pending tasks are purged machine-wide, and the
// job is re-injected from its root. inFlight is untouched: the job is
// still in the system, on a fresh attempt.
func (m *Machine) abortJob(j *jobState) {
	j.epoch++
	m.stats.JobsAborted++
	var stale []int64
	for _, pe := range m.pes {
		for i := 0; i < pe.ready.len(); {
			if it := pe.ready.at(i); it.kind == itemGoal && it.goal.job == j && it.goal.epoch != j.epoch {
				g := it.goal
				pe.ready.removeAt(i)
				m.stats.GoalsLost++
				m.freeGoal(g)
			} else {
				i++
			}
		}
		// Collect first, delete after: del back-shifts slab entries, so
		// deleting mid-iteration would skip entries behind the cursor.
		stale = stale[:0]
		pe.pending.forEach(func(id int64, p *pendingTask) {
			if p.goal.job == j && p.goal.epoch != j.epoch {
				stale = append(stale, id)
			}
		})
		for _, id := range stale {
			p := pe.pending.get(id)
			pe.pending.del(id)
			m.freeGoal(p.goal)
			m.freePending(p)
		}
	}
	m.stats.JobsRetried++
	// The retry re-enters at the usual ingress (redirected if the root
	// PE is down). Not counted as a new injection — the job keeps its
	// identity and injection time.
	m.injectRoot(j)
}

// recoverPE ends a blackout or crash: frozen responses (blackout only —
// a crash left nothing behind) resume service and the PE re-advertises
// its real load, with PERecovered for FailureAware neighbors.
func (m *Machine) recoverPE(pe *PE) {
	if !m.peFailed[pe.lx] {
		return
	}
	m.peFailed[pe.lx] = false
	pe.downTime += m.eng.Now() - pe.failedAt
	if !m.peBusy[pe.lx] && pe.ready.len() > 0 {
		pe.startNext()
	}
	m.broadcastEnv(pe, PERecovered)
}

// broadcastEnv is the immediate availability broadcast a failing or
// recovering PE sends: the load word (FailedLoad sentinel or real load)
// plus the typed notification, one transaction per attached channel,
// counted and charged exactly like the plain load broadcast it
// replaces.
func (m *Machine) broadcastEnv(pe *PE, kind EventKind) {
	m.broadcast(pe, wireEnvBcast, MsgLoad, m.cfg.CtrlHopTime, envNote{kind: kind, pe: pe.id})
}

// requeueGoal evacuates a goal arriving at failed PE `from` to the
// nearest live PE, travelling hop by hop on the co-processors like any
// routed goal. Arrival-time redirects resolve the refuge per call —
// liveness genuinely varies between deliveries; batch evacuations in
// failPE resolve it once and use evacuateGoal directly.
func (m *Machine) requeueGoal(from int, g *Goal) {
	m.evacuateGoal(from, m.nearestLive(from), g)
}

// evacuateGoal ships one goal off failed PE `from` to the chosen
// refuge, counting it.
func (m *Machine) evacuateGoal(from, refuge int, g *Goal) {
	m.stats.GoalsRequeued++
	m.routeGoal(from, refuge, g)
}

// nearestLive returns the live PE topologically closest to `from`
// (lowest id on ties). Panics when every PE is failed — scripts cannot
// reach that state (failPE refuses to kill the last live PE).
func (m *Machine) nearestLive(from int) int {
	best, bestDist := -1, int(^uint(0)>>1)
	for i := range m.pes {
		if m.peFailed[m.pes[i].lx] || i == from {
			continue
		}
		if d := m.topo.Dist(from, i); d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		panic("machine: no live PE to requeue onto")
	}
	return best
}

// setLink applies a degradation factor (or outage) to every channel
// between a and b. A positive factor on a downed channel brings it
// back up degraded — the scripted state is absolute, not sticky — so
// messages held during the outage flush at the new (stretched) pace.
// Endpoints sense outage transitions locally (carrier loss/return) and
// FailureAware endpoint nodes get LinkDown/LinkRestored.
func (m *Machine) setLink(a, b int, factor float64, down bool) {
	wasDown := false
	for _, ci := range m.linkChannels(a, b) {
		ch := &m.chans[ci]
		if ch.down {
			wasDown = true
		}
		if down {
			ch.down = true
			continue
		}
		ch.degrade = factor
		m.bringUp(ch)
	}
	if down && !wasDown {
		m.notifyLink(a, b, LinkDown)
	} else if !down && wasDown {
		m.notifyLink(a, b, LinkRestored)
	}
}

// restoreLink returns every channel between a and b to nominal,
// flushing messages held during an outage in arrival order.
func (m *Machine) restoreLink(a, b int) {
	wasDown := false
	for _, ci := range m.linkChannels(a, b) {
		ch := &m.chans[ci]
		if ch.down {
			wasDown = true
		}
		ch.degrade = 0
		m.bringUp(ch)
	}
	if wasDown {
		m.notifyLink(a, b, LinkRestored)
	}
}

// notifyLink delivers a link-availability event to both endpoints'
// FailureAware nodes; From names the far end as each endpoint sees it.
func (m *Machine) notifyLink(a, b int, kind EventKind) {
	if pe := m.pes[a]; pe.wantsFailure {
		pe.node.HandleEvent(Event{Kind: kind, From: b})
	}
	if pe := m.pes[b]; pe.wantsFailure {
		pe.node.HandleEvent(Event{Kind: kind, From: a})
	}
}

// bringUp ends a channel outage, transmitting the held messages in
// arrival order; a channel that is not down is untouched.
func (m *Machine) bringUp(ch *chanState) {
	if !ch.down {
		return
	}
	ch.down = false
	held := ch.held
	ch.held = nil
	for _, h := range held {
		m.transmit(ch, h.dur, h.w)
	}
}

func (m *Machine) linkChannels(a, b int) []int {
	chs := m.topo.ChannelsBetween(a, b)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: scenario link event: PEs %d and %d share no channel", a, b))
	}
	return chs
}

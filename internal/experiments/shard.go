package experiments

import (
	"fmt"
	"reflect"

	"cwnsim/internal/machine"
)

// ShardCrossMatrix returns the pinned run specs the shard cross-check
// certifies: completing closed and open runs across the paper's
// topologies and both headline strategies. Every case must finish
// (drain its jobs) so conservation totals are well-defined; saturated
// horizons are excluded on purpose — at MaxTime the sequential and
// sharded machines legitimately hold different in-flight sets.
func ShardCrossMatrix() []BenchCase {
	return []BenchCase{
		{Name: "closed/cwn-grid10-fib12",
			Spec: RunSpec{Topo: Grid(10), Workload: Fib(12), Strategy: CWN(9, 2)}},
		{Name: "closed/gm-grid10-fib12",
			Spec: RunSpec{Topo: Grid(10), Workload: Fib(12), Strategy: GM(1, 2, 20)}},
		{Name: "closed/cwn-torus8-fib12",
			Spec: RunSpec{Topo: Torus(8), Workload: Fib(12), Strategy: CWN(5, 2)}},
		{Name: "closed/gm-hyper6-fib11",
			Spec: RunSpec{Topo: Hypercube(6), Workload: Fib(11), Strategy: GM(1, 2, 20)}},
		{Name: "open/cwn-grid8-poisson",
			Spec: RunSpec{Topo: Grid(8), Workload: Fib(9), Strategy: CWN(9, 2),
				Arrival: PoissonArrivals(60, 200), Warmup: 2_000}},
		{Name: "open/gm-dlm10-poisson",
			Spec: RunSpec{Topo: DLM(10, 5), Workload: Fib(9), Strategy: GM(1, 2, 20),
				Arrival: PoissonArrivals(60, 150), Warmup: 2_000}},
	}
}

// shardDigest is everything a full bit-for-bit comparison of two runs
// reads: the scalar fingerprint plus the per-PE and per-channel
// distributions (a reordering that conserves totals would still shift
// work between PEs).
type shardDigest struct {
	events    uint64
	makespan  int64
	result    int64
	totalBusy int64
	jobsDone  int64
	goalsExec int64
	sojMean   float64
	sojP99    float64
	msgs      string
	busyPerPE []int64
	goalsPE   []int64
}

func shardDigestOf(st *machine.Stats) shardDigest {
	busy := make([]int64, len(st.BusyPerPE))
	for i, b := range st.BusyPerPE {
		busy[i] = int64(b)
	}
	return shardDigest{
		events:    st.Events,
		makespan:  int64(st.Makespan),
		result:    st.Result,
		totalBusy: int64(st.TotalBusy),
		jobsDone:  st.JobsDone,
		goalsExec: st.GoalsExecuted,
		sojMean:   st.Sojourn.Mean(),
		sojP99:    st.Sojourn.Percentile(0.99),
		msgs:      fmt.Sprint(st.MsgCounts),
		busyPerPE: busy,
		goalsPE:   st.GoalsPerPE,
	}
}

// ShardCrossCheck certifies the sharded runtime on one spec, in three
// layers, and returns the first disagreement as an error:
//
//  1. Shards=1 (the full window protocol on one shard) must equal the
//     sequential machine bit for bit.
//  2. Shards=k in parallel must equal its single-goroutine serial
//     replay (ShardSerial) bit for bit — results cannot depend on the
//     thread schedule.
//  3. Shards=k must agree with the sequential machine on everything
//     same-timestamp event order cannot change: completion, the
//     computed result, goal/response/job conservation, and the
//     internal consistency of the merged per-PE accounting.
//
// Both cmd/bench (the regression gate) and the experiments tests run
// this; k is the parallel shard count to certify.
func ShardCrossCheck(spec RunSpec, k int) error {
	run := func(shards int, serial bool) (*machine.Stats, error) {
		s := spec
		s.Shards = shards
		s.ShardSerial = serial
		r, err := s.ExecuteErr()
		if err != nil {
			return nil, err
		}
		return r.Stats, nil
	}
	seq, err := run(0, false)
	if err != nil {
		return fmt.Errorf("sequential: %w", err)
	}
	one, err := run(1, false)
	if err != nil {
		return fmt.Errorf("shards=1: %w", err)
	}
	if a, b := shardDigestOf(seq), shardDigestOf(one); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("shards=1 diverged from sequential:\n  seq: %+v\n  one: %+v", a, b)
	}
	par, err := run(k, false)
	if err != nil {
		return fmt.Errorf("shards=%d parallel: %w", k, err)
	}
	ser, err := run(k, true)
	if err != nil {
		return fmt.Errorf("shards=%d serial: %w", k, err)
	}
	if a, b := shardDigestOf(par), shardDigestOf(ser); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("shards=%d parallel diverged from serial replay (thread schedule leaked into results):\n  par: %+v\n  ser: %+v", k, a, b)
	}
	if !par.Completed || !seq.Completed {
		return fmt.Errorf("shards=%d completed=%v, sequential completed=%v (cross-check cases must drain)", k, par.Completed, seq.Completed)
	}
	conserved := []struct {
		name string
		a, b int64
	}{
		{"result", par.Result, seq.Result},
		{"goals", int64(par.Goals), int64(seq.Goals)},
		{"goalsExecuted", par.GoalsExecuted, seq.GoalsExecuted},
		{"respIntegrated", par.RespIntegrated, seq.RespIntegrated},
		{"jobsInjected", par.JobsInjected, seq.JobsInjected},
		{"jobsDone", par.JobsDone, seq.JobsDone},
		{"sojournN", int64(par.Sojourn.N()), int64(seq.Sojourn.N())},
	}
	for _, c := range conserved {
		if c.a != c.b {
			return fmt.Errorf("shards=%d %s = %d, sequential %d", k, c.name, c.a, c.b)
		}
	}
	var perPE, busy int64
	for _, g := range par.GoalsPerPE {
		perPE += g
	}
	for _, b := range par.BusyPerPE {
		busy += int64(b)
	}
	if perPE != par.GoalsExecuted {
		return fmt.Errorf("shards=%d per-PE goal counts sum to %d, want %d", k, perPE, par.GoalsExecuted)
	}
	if busy != int64(par.TotalBusy) {
		return fmt.Errorf("shards=%d per-PE busy sums to %d, want %d", k, busy, int64(par.TotalBusy))
	}
	return nil
}

// ScenarioCrossCheck certifies the sharded runtime on a *scripted* spec
// — scenarios whose ops (crashes in particular) make outcomes
// placement-dependent, so the crash-free ShardCrossCheck conservation
// laws do not all apply: at K >= 2 a crash kills whatever goals the
// shard-order message interleaving happened to place on the struck PEs,
// and re-execution legitimately differs from the sequential walk. What
// the fault-tolerance contract pins instead:
//
//  1. Shards=1 must reproduce the sequential run bit for bit —
//     including the recovery metrics (windowed p99 and time-to-steady),
//     which fold through the shard merge path.
//  2. Shards=k parallel must reproduce its serial replay bit for bit
//     (the thread schedule must not leak into results).
//  3. The bounded-retry ledger must balance machine-wide in every
//     mode: JobsRetried + JobsAbandoned == JobsAborted, and — when the
//     spec sets a RetryLimit and the script crashes hard enough —
//     JobsAbandoned > 0, so the gate exercises the abandonment path
//     rather than vacuously passing on a crash-free run.
//  4. The injection stream is placement-independent: JobsInjected must
//     agree across every mode, and each completed mode must account
//     for every job (done + abandoned == injected).
func ScenarioCrossCheck(spec RunSpec, k int) error {
	run := func(shards int, serial bool) (*Result, error) {
		s := spec
		s.Shards = shards
		s.ShardSerial = serial
		return s.ExecuteErr()
	}
	seq, err := run(0, false)
	if err != nil {
		return fmt.Errorf("sequential: %w", err)
	}
	one, err := run(1, false)
	if err != nil {
		return fmt.Errorf("shards=1: %w", err)
	}
	if a, b := shardDigestOf(seq.Stats), shardDigestOf(one.Stats); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("shards=1 diverged from sequential under the scenario:\n  seq: %+v\n  one: %+v", a, b)
	}
	if a, b := seq.Recovery, one.Recovery; a != nil && b != nil {
		if a.PeakP99 != b.PeakP99 || a.TimeToSteady != b.TimeToSteady || a.BaselineP99 != b.BaselineP99 {
			return fmt.Errorf("shards=1 recovery metrics diverged from sequential: seq peak %.2f t2s %d, one peak %.2f t2s %d",
				a.PeakP99, a.TimeToSteady, b.PeakP99, b.TimeToSteady)
		}
	}
	par, err := run(k, false)
	if err != nil {
		return fmt.Errorf("shards=%d parallel: %w", k, err)
	}
	ser, err := run(k, true)
	if err != nil {
		return fmt.Errorf("shards=%d serial: %w", k, err)
	}
	if a, b := shardDigestOf(par.Stats), shardDigestOf(ser.Stats); !reflect.DeepEqual(a, b) {
		return fmt.Errorf("shards=%d parallel diverged from serial replay (thread schedule leaked into results):\n  par: %+v\n  ser: %+v", k, a, b)
	}
	for _, m := range []struct {
		mode string
		st   *machine.Stats
	}{{"sequential", seq.Stats}, {fmt.Sprintf("shards=%d", k), par.Stats}} {
		if m.st.JobsRetried+m.st.JobsAbandoned != m.st.JobsAborted {
			return fmt.Errorf("%s retry ledger unbalanced: retried %d + abandoned %d != aborted %d",
				m.mode, m.st.JobsRetried, m.st.JobsAbandoned, m.st.JobsAborted)
		}
		if spec.RetryLimit > 0 && m.st.JobsAbandoned == 0 {
			return fmt.Errorf("%s abandoned no jobs under RetryLimit=%d — the gate's crash script must exhaust some retry budget", m.mode, spec.RetryLimit)
		}
		if m.st.Completed && m.st.JobsDone+m.st.JobsAbandoned != m.st.JobsInjected {
			return fmt.Errorf("%s job ledger unbalanced: done %d + abandoned %d != injected %d",
				m.mode, m.st.JobsDone, m.st.JobsAbandoned, m.st.JobsInjected)
		}
	}
	if par.Stats.JobsInjected != seq.Stats.JobsInjected {
		return fmt.Errorf("shards=%d injected %d jobs, sequential %d — the arrival stream is placement-independent and must agree",
			k, par.Stats.JobsInjected, seq.Stats.JobsInjected)
	}
	return nil
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoundedSampleStaysExactBelowLimit(t *testing.T) {
	var s Sample
	s.Bound(100)
	for i := 1; i <= 50; i++ {
		s.Add(float64(i))
	}
	if s.Bounded() {
		t.Fatal("sample collapsed below its limit")
	}
	if got := s.Percentile(0.5); got != 25 {
		t.Fatalf("p50 = %f, want exact 25", got)
	}
	if got := s.Mean(); got != 25.5 {
		t.Fatalf("mean = %f, want exact 25.5", got)
	}
}

func TestBoundedSampleCollapsesAndApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var exact, bounded Sample
	bounded.Bound(1000)
	const n = 50_000
	for i := 0; i < n; i++ {
		// Latency-shaped data: lognormal-ish positive heavy tail.
		x := math.Exp(rng.NormFloat64()*1.2 + 6)
		exact.Add(x)
		bounded.Add(x)
	}
	if !bounded.Bounded() {
		t.Fatal("sample did not collapse past its limit")
	}
	if exact.N() != n || bounded.N() != n {
		t.Fatalf("counts %d/%d, want %d", exact.N(), bounded.N(), n)
	}
	// Mean, min and max stay exact.
	if bounded.Mean() != exact.Mean() {
		t.Fatalf("bounded mean %f != exact %f", bounded.Mean(), exact.Mean())
	}
	if bounded.Min() != exact.Min() || bounded.Max() != exact.Max() {
		t.Fatalf("bounded min/max %f/%f != exact %f/%f",
			bounded.Min(), bounded.Max(), exact.Min(), exact.Max())
	}
	// Percentiles carry bounded relative error (sub-bucket width 1/32,
	// so the representative is within ~3.2% of any bucket member).
	for _, p := range []float64{0.01, 0.25, 0.5, 0.9, 0.99, 0.999} {
		e, b := exact.Percentile(p), bounded.Percentile(p)
		if rel := math.Abs(b-e) / e; rel > 0.04 {
			t.Errorf("p%.3f: bounded %f vs exact %f (rel err %.4f > 4%%)", p, b, e, rel)
		}
	}
}

func TestBoundRetroactivelyCollapses(t *testing.T) {
	var s Sample
	for i := 1; i <= 500; i++ {
		s.Add(float64(i))
	}
	s.Bound(100)
	if !s.Bounded() {
		t.Fatal("Bound below the current count did not collapse")
	}
	if s.N() != 500 {
		t.Fatalf("N = %d after collapse, want 500", s.N())
	}
	if got, want := s.Percentile(0.5), 250.0; math.Abs(got-want)/want > 0.04 {
		t.Fatalf("post-collapse p50 = %f, want ~%f", got, want)
	}
	if s.Min() != 1 || s.Max() != 500 {
		t.Fatalf("min/max %f/%f, want 1/500", s.Min(), s.Max())
	}
}

func TestBoundedSampleEmptyAndEdges(t *testing.T) {
	var s Sample
	s.Bound(2)
	for name, v := range map[string]float64{
		"mean": s.Mean(), "p50": s.Percentile(0.5), "min": s.Min(), "max": s.Max(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s of empty bounded sample = %f, want NaN", name, v)
		}
	}
	// Force a collapse with sub-1 and zero values: they share the
	// underflow bucket but min/max stay exact.
	s.Add(0)
	s.Add(0.25)
	s.Add(8)
	if !s.Bounded() {
		t.Fatal("not collapsed")
	}
	if s.Min() != 0 || s.Max() != 8 || s.N() != 3 {
		t.Fatalf("min/max/n = %f/%f/%d, want 0/8/3", s.Min(), s.Max(), s.N())
	}
	if p := s.Percentile(1); p != 8 {
		t.Fatalf("p100 = %f, want clamped to exact max 8", p)
	}
	if p := s.Percentile(0); p != 0 {
		t.Fatalf("p0 = %f, want clamped to exact min 0", p)
	}
}

func TestBoundValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bound(0) did not panic")
		}
	}()
	var s Sample
	s.Bound(0)
}

func TestBucketRoundTripMonotone(t *testing.T) {
	// Bucket indexes must be monotone in the value and the
	// representative must sit inside its bucket's relative-error band.
	prev := -1
	for _, x := range []float64{0, 0.5, 1, 1.5, 2, 3, 7, 8, 1000, 12345.678, 1e9, 1e18} {
		idx := bucket(x)
		if idx < prev {
			t.Fatalf("bucket(%g) = %d < previous %d: not monotone", x, idx, prev)
		}
		prev = idx
		if x >= 1 && x < math.Ldexp(1, 62) {
			rep := value(idx)
			if rel := math.Abs(rep-x) / x; rel > 1.0/histSubs {
				t.Fatalf("value(bucket(%g)) = %g, rel err %.4f > 1/%d", x, rep, rel, histSubs)
			}
		}
	}
}

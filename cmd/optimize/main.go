// Command optimize reruns the paper's Section 3.1 parameter-optimization
// experiments in isolation: it sweeps the CWN (radius, horizon) and
// Gradient Model (low, high, interval) parameter spaces at sample points
// of the planned experiments and ranks every combination by mean speedup
// — the process that produced the paper's Table 1.
package main

import (
	"flag"
	"fmt"
	"os"

	"cwnsim/internal/experiments"
	"cwnsim/internal/report"
)

func main() {
	var (
		family  = flag.String("family", "grid", "topology family to optimize for: grid | dlm")
		scheme  = flag.String("scheme", "both", "which scheme to sweep: cwn | gm | both")
		quick   = flag.Bool("quick", false, "smaller sweep and sample points")
		workers = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		top     = flag.Int("top", 10, "how many candidates to print")
	)
	flag.Parse()

	var topos []experiments.TopoSpec
	switch *family {
	case "grid":
		topos = experiments.PaperGrids()
	case "dlm":
		topos = experiments.PaperDLMs()
	default:
		fmt.Fprintf(os.Stderr, "optimize: unknown family %q\n", *family)
		os.Exit(2)
	}
	ts, wls := experiments.SamplePoints(topos, *quick)
	fmt.Printf("sample points: %d topologies x %d workloads\n\n", len(ts), len(wls))

	show := func(name string, out []experiments.OptOutcome) {
		tb := report.NewTable(fmt.Sprintf("%s candidates for %s (best first)", name, *family),
			"rank", "strategy", "mean speedup", "runs")
		for i, o := range out {
			if i >= *top {
				break
			}
			tb.AddRow(i+1, o.Strategy.Label(), o.MeanSpeedup, o.Runs)
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}

	if *scheme == "cwn" || *scheme == "both" {
		radii, horizons := experiments.DefaultCWNGridSearch(*quick)
		out, err := experiments.OptimizeCWN(ts, wls, radii, horizons, *workers)
		fail(err)
		show("CWN", out)
	}
	if *scheme == "gm" || *scheme == "both" {
		lows, highs, ivs := experiments.DefaultGMGridSearch(*quick)
		out, err := experiments.OptimizeGM(ts, wls, lows, highs, ivs, *workers)
		fail(err)
		show("GM", out)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "optimize:", err)
		os.Exit(1)
	}
}

package report_test

import (
	"os"

	"cwnsim/internal/report"
)

func ExampleTable() {
	tb := report.NewTable("speedups", "PEs", "CWN", "GM")
	tb.AddRow(100, 52.34, 17.63)
	tb.AddRow(400, 110.30, 12.55)
	tb.Render(os.Stdout)
	// Output:
	// speedups
	// PEs     CWN     GM
	// ------------------
	// 100   52.34  17.63
	// 400  110.30  12.55
}

func ExampleHeatmap() {
	hm := report.NewHeatmap("load", 2, 4)
	hm.Values = []float64{1, 0.7, 0.3, 0, 0.9, 0.5, 0.1, 0}
	hm.Render(os.Stdout)
	// Output:
	// load
	//   @ * :
	//   % =
	//   scale: ' '=idle ... '@'=busy
}

package core

import (
	"fmt"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
)

// WorkSteal is a receiver-initiated comparator: new goals stay local
// (like GM), and a PE whose load drops below Threshold periodically asks
// its most-loaded known neighbor for work; the victim replies with one
// queued goal or a refusal. This is the classic receiver-initiated
// policy from the load-sharing literature contemporary to the paper,
// included for the extended comparison.
type WorkSteal struct {
	// Interval is the idle-check period.
	Interval sim.Time
	// Threshold: steal attempts start when load < Threshold.
	Threshold int
	// FailureAware opts the nodes into PEFailed/PERecovered events: a
	// thief whose outstanding request targeted the failed PE cancels it
	// and re-steers to a live victim immediately instead of waiting for
	// the dead co-processor's refusal and the next tick. Off by
	// default.
	FailureAware bool
}

// NewWorkSteal returns a work-stealing strategy.
func NewWorkSteal(interval sim.Time, threshold int) *WorkSteal {
	if interval <= 0 {
		panic("core: WorkSteal interval must be positive")
	}
	if threshold < 1 {
		panic("core: WorkSteal threshold must be >= 1")
	}
	return &WorkSteal{Interval: interval, Threshold: threshold}
}

// Name implements machine.Strategy.
func (s *WorkSteal) Name() string {
	if s.FailureAware {
		return fmt.Sprintf("WorkSteal+fa(i=%d,t=%d)", s.Interval, s.Threshold)
	}
	return fmt.Sprintf("WorkSteal(i=%d,t=%d)", s.Interval, s.Threshold)
}

// Setup implements machine.Strategy.
func (s *WorkSteal) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *WorkSteal) NewNode(pe *machine.PE) machine.NodeStrategy {
	n := &stealNode{s: s, pe: pe}
	pe.Machine().NewTicker(pe, s.Interval, n.tick)
	return n
}

// stealRequest asks the receiver to donate one queued goal.
type stealRequest struct{}

// stealNack tells a thief the victim had nothing to give.
type stealNack struct{}

type stealNode struct {
	s           *WorkSteal
	pe          *machine.PE
	outstanding bool // at most one steal request in flight
	victim      int  // who the outstanding request targets (valid while outstanding)
}

// WantsFailureEvents implements machine.FailureAware, gated on the
// strategy flag.
func (n *stealNode) WantsFailureEvents() bool { return n.s.FailureAware }

// HandleEvent implements machine.NodeStrategy. New goals stay local
// (distribution is pull-based); an arriving goal is donated work, which
// re-arms the thief.
func (n *stealNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		n.pe.Accept(ev.Goal)
	case machine.GoalArrived:
		n.outstanding = false
		n.pe.Accept(ev.Goal)
	case machine.Control:
		n.control(ev.From, ev.Payload)
	case machine.PEFailed:
		// An outstanding request to the failed PE can only yield a
		// refusal (its queue was lost or evacuated): cancel it and
		// re-steer to a live victim now, not a round-trip-plus-tick
		// later.
		if n.outstanding && n.victim == ev.From {
			n.outstanding = false
			n.tick()
		}
	}
}

func (n *stealNode) tick() {
	if n.outstanding || n.pe.Load() >= n.s.Threshold {
		return
	}
	victim := n.pickVictim()
	if victim < 0 {
		return
	}
	n.outstanding = true
	n.victim = victim
	n.pe.SendControl(victim, stealRequest{})
}

// pickVictim chooses the neighbor with the largest known positive load
// (ties broken randomly); -1 when no neighbor is known to have work.
// Loads at or above machine.FailedLoad advertise a blacked-out PE
// (scenario runs) whose queue was evacuated — the worst possible
// victim, skipped so thieves keep targeting real work during an
// outage.
func (n *stealNode) pickVictim() int {
	best, choice, count := 0, -1, 0
	rng := n.pe.Machine().Engine().Rng()
	for _, nb := range n.pe.Neighbors() {
		load, seen := n.pe.KnownLoad(nb)
		if seen < 0 || load <= 0 || load >= machine.FailedLoad {
			continue
		}
		switch {
		case load > best:
			best, choice, count = load, nb, 1
		case load == best:
			count++
			if rng.Intn(count) == 0 {
				choice = nb
			}
		}
	}
	return choice
}

func (n *stealNode) control(from int, payload any) {
	switch payload.(type) {
	case stealRequest:
		if g := n.pe.TakeNewestQueuedGoal(); g != nil {
			n.pe.SendGoal(from, g)
			return
		}
		n.pe.SendControl(from, stealNack{})
	case stealNack:
		// Only the current victim's refusal re-arms the thief: a stale
		// nack from a victim already abandoned on its failure (the
		// failure-aware re-steer) must not cancel the live request.
		if n.outstanding && from == n.victim {
			n.outstanding = false
		}
	}
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// The analyzers' contracts are wired to the code under analysis with
// `//simlint:<verb>` directive comments (directive comments are hidden
// from godoc, like //go:build). Verbs:
//
//	pooled               on a type: objects are recycled through a free list
//	free                 on a func: returns its pooled param/result to a free list
//	mergeable            on a struct type: shard copies must merge field-exactly
//	nomerge <reason>     on a field: deliberately not folded by the merge
//	keep <reason>        on a field: deliberately not zeroed by the free func
//	globalstate <reason> on a field: a sequential-only feature Config.validate
//	                     rejects for sharded runs
//	seqsafe <reason>     on a func: trusted boundary; seqonly stops here
//	seqonly              anywhere in a file: its functions root the shard path
//	observer             on a func: measurement code; must not touch the
//	                     simulation RNG stream
//	obsstream            on a field/var: the dedicated observer RNG stream
type Tags struct {
	// Types, Funcs and Fields map tagged objects to their directives.
	Types  map[types.Object][]Directive
	Funcs  map[types.Object][]Directive
	Fields map[types.Object][]Directive
	// SeqonlyFiles holds the *ast.File roots tagged //simlint:seqonly.
	SeqonlyFiles map[*ast.File]bool
}

// Directive is one parsed //simlint:<verb> args comment.
type Directive struct {
	Verb string
	Args string // remainder after the verb, trimmed (reason or operand)
}

const directivePrefix = "//simlint:"

func parseDirectives(cgs ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, cg := range cgs {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			verb, args, _ := strings.Cut(rest, " ")
			out = append(out, Directive{Verb: verb, Args: strings.TrimSpace(args)})
		}
	}
	return out
}

// Has reports whether verb appears among the directives.
func hasVerb(ds []Directive, verb string) bool {
	for _, d := range ds {
		if d.Verb == verb {
			return true
		}
	}
	return false
}

// CollectTags scans the pass's files for simlint directives and
// resolves them to type-checker objects. Cached per pass.
func (p *Pass) CollectTags() *Tags {
	if p.tags != nil {
		return p.tags
	}
	t := &Tags{
		Types:        make(map[types.Object][]Directive),
		Funcs:        make(map[types.Object][]Directive),
		Fields:       make(map[types.Object][]Directive),
		SeqonlyFiles: make(map[*ast.File]bool),
	}
	p.tags = t
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, d := range parseDirectives(cg) {
				if d.Verb == "seqonly" {
					t.SeqonlyFiles[f] = true
				}
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if ds := parseDirectives(d.Doc); len(ds) > 0 {
					if obj := p.TypesInfo.Defs[d.Name]; obj != nil {
						t.Funcs[obj] = ds
					}
				}
			case *ast.GenDecl:
				declDirs := parseDirectives(d.Doc)
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					ds := append(parseDirectives(ts.Doc, ts.Comment), declDirs...)
					obj := p.TypesInfo.Defs[ts.Name]
					if obj != nil && len(ds) > 0 {
						t.Types[obj] = ds
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						p.collectFieldTags(t, st)
					}
				}
			}
		}
	}
	return t
}

func (p *Pass) collectFieldTags(t *Tags, st *ast.StructType) {
	for _, field := range st.Fields.List {
		ds := parseDirectives(field.Doc, field.Comment)
		if len(ds) == 0 {
			continue
		}
		for _, name := range field.Names {
			if obj := p.TypesInfo.Defs[name]; obj != nil {
				t.Fields[obj] = ds
			}
		}
	}
}

// TaggedType reports whether the named type (or the named type behind
// a pointer) carries the verb.
func (t *Tags) TaggedType(typ types.Type, verb string) (*types.TypeName, bool) {
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok {
		return nil, false
	}
	if hasVerb(t.Types[named.Obj()], verb) {
		return named.Obj(), true
	}
	return nil, false
}

// FuncTag returns the directive with the given verb on fn, if any.
func (t *Tags) FuncTag(fn types.Object, verb string) (Directive, bool) {
	for _, d := range t.Funcs[fn] {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

// FieldTag returns the directive with the given verb on the field or
// variable object, if any.
func (t *Tags) FieldTag(obj types.Object, verb string) (Directive, bool) {
	for _, d := range t.Fields[obj] {
		if d.Verb == verb {
			return d, true
		}
	}
	return Directive{}, false
}

package experiments

import (
	"fmt"
	"sort"
	"sync"

	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// The spec layer dispatches through registries rather than hard-coded
// switches, so new topologies, workloads, strategies and arrival
// processes plug in by name: register a builder (typically from an init
// function) and every consumer — JSON spec files, the CLI parsers, the
// sweep commands — can use the new kind immediately.
//
// Adding a kind:
//
//	func init() {
//		RegisterStrategy("mystrat", func(ss StrategySpec) machine.Strategy {
//			return newMyStrategy(ss.Interval, ss.Threshold)
//		})
//	}
//
// Builders receive the full spec value and pick the parameter fields
// they need. Registration panics on a duplicate or empty kind; lookups
// of unknown kinds panic with the sorted list of registered names.

type registry[S any, T any] struct {
	mu       sync.RWMutex
	what     string
	builders map[string]func(S) T
}

func newRegistry[S any, T any](what string) *registry[S, T] {
	return &registry[S, T]{what: what, builders: make(map[string]func(S) T)}
}

func (r *registry[S, T]) register(kind string, build func(S) T) {
	if kind == "" {
		panic(fmt.Sprintf("experiments: empty %s kind", r.what))
	}
	if build == nil {
		panic(fmt.Sprintf("experiments: nil builder for %s kind %q", r.what, kind))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.builders[kind]; dup {
		panic(fmt.Sprintf("experiments: %s kind %q registered twice", r.what, kind))
	}
	r.builders[kind] = build
}

func (r *registry[S, T]) build(kind string, spec S) T {
	r.mu.RLock()
	b, ok := r.builders[kind]
	r.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("experiments: unknown %s kind %q (registered: %v)", r.what, kind, r.kinds()))
	}
	return b(spec)
}

func (r *registry[S, T]) kinds() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.builders))
	for k := range r.builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

var (
	topoRegistry     = newRegistry[TopoSpec, *topology.Topology]("topology")
	workloadRegistry = newRegistry[WorkloadSpec, *workload.Tree]("workload")
	strategyRegistry = newRegistry[StrategySpec, machine.Strategy]("strategy")
	arrivalRegistry  = newRegistry[arrivalInput, machine.JobSource]("arrival")
)

// arrivalInput bundles what an arrival builder needs: the spec and the
// tree each injected job evaluates.
type arrivalInput struct {
	Spec ArrivalSpec
	Tree *workload.Tree
}

// RegisterTopology makes a topology kind buildable by name. The builder
// reads its dimensions from the TopoSpec fields.
func RegisterTopology(kind string, build func(TopoSpec) *topology.Topology) {
	topoRegistry.register(kind, build)
}

// RegisterWorkload makes a workload kind buildable by name.
func RegisterWorkload(kind string, build func(WorkloadSpec) *workload.Tree) {
	workloadRegistry.register(kind, build)
}

// RegisterStrategy makes a strategy kind buildable by name.
func RegisterStrategy(kind string, build func(StrategySpec) machine.Strategy) {
	strategyRegistry.register(kind, build)
}

// RegisterArrival makes an arrival-process kind buildable by name. The
// builder returns a fresh JobSource emitting copies of tree.
func RegisterArrival(kind string, build func(ArrivalSpec, *workload.Tree) machine.JobSource) {
	arrivalRegistry.register(kind, func(in arrivalInput) machine.JobSource {
		return build(in.Spec, in.Tree)
	})
}

// TopologyKinds returns the registered topology kinds, sorted.
func TopologyKinds() []string { return topoRegistry.kinds() }

// WorkloadKinds returns the registered workload kinds, sorted.
func WorkloadKinds() []string { return workloadRegistry.kinds() }

// StrategyKinds returns the registered strategy kinds, sorted.
func StrategyKinds() []string { return strategyRegistry.kinds() }

// ArrivalKinds returns the registered arrival kinds, sorted.
func ArrivalKinds() []string { return arrivalRegistry.kinds() }

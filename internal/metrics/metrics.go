// Package metrics provides the small statistics toolkit the simulator
// and the experiment harness share: integer histograms (message hop
// distributions, Table 3), running summaries (Welford mean/variance),
// and time series (the utilization-versus-time plots).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Hist is a histogram over small non-negative integers (e.g. hop counts).
// The zero value is ready to use.
//
//simlint:mergeable
type Hist struct {
	counts []int64
	total  int64
	sum    int64
}

// Add increments the bucket for v (v must be >= 0).
func (h *Hist) Add(v int) {
	if v < 0 {
		panic("metrics: negative histogram value")
	}
	for v >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[v]++
	h.total++
	h.sum += int64(v)
}

// Merge folds another histogram's observations into h (bucket counts
// add), leaving o untouched. The result equals having Added both
// streams into one histogram, in any order — the per-shard statistics
// of a sharded run merge with this.
func (h *Hist) Merge(o *Hist) {
	for v, c := range o.counts {
		if c == 0 {
			continue
		}
		for v >= len(h.counts) {
			h.counts = append(h.counts, 0)
		}
		h.counts[v] += c
	}
	h.total += o.total
	h.sum += o.sum
}

// Count returns the number of observations in bucket v.
func (h *Hist) Count(v int) int64 {
	if v < 0 || v >= len(h.counts) {
		return 0
	}
	return h.counts[v]
}

// Total returns the number of observations.
func (h *Hist) Total() int64 { return h.total }

// Max returns the largest observed value (-1 when empty).
func (h *Hist) Max() int {
	for v := len(h.counts) - 1; v >= 0; v-- {
		if h.counts[v] > 0 {
			return v
		}
	}
	return -1
}

// Mean returns the average observed value (0 when empty).
func (h *Hist) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.total)
}

// Percentile returns the smallest value v such that at least p (0..1) of
// the observations are <= v. Empty histograms return 0.
func (h *Hist) Percentile(p float64) int {
	if h.total == 0 {
		return 0
	}
	need := int64(math.Ceil(p * float64(h.total)))
	if need < 1 {
		need = 1
	}
	var cum int64
	for v, c := range h.counts {
		cum += c
		if cum >= need {
			return v
		}
	}
	return len(h.counts) - 1
}

// Counts returns a copy of the bucket counts from 0 to Max.
func (h *Hist) Counts() []int64 {
	m := h.Max()
	out := make([]int64, m+1)
	copy(out, h.counts[:m+1])
	return out
}

// String renders "v:count" pairs, e.g. "0:4068 1:2372 … mean=0.92".
func (h *Hist) String() string {
	var b strings.Builder
	for v, c := range h.counts {
		if c > 0 {
			fmt.Fprintf(&b, "%d:%d ", v, c)
		}
	}
	fmt.Fprintf(&b, "mean=%.2f", h.Mean())
	return b.String()
}

// Summary accumulates a stream of float64 observations with Welford's
// online algorithm. The zero value is ready to use.
//
//simlint:mergeable
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// Merge folds another summary into s using Chan et al.'s parallel
// variance combination, leaving o untouched. Counts, means, min and max
// combine exactly; m2 combines up to float rounding (the same rounding
// a different Add order exhibits).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	s.m2 += o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	s.mean += d * float64(o.n) / float64(n)
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n = n
}

// N returns the observation count.
func (s *Summary) N() int64 { return s.n }

// Mean returns the running mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the sample variance (0 for fewer than 2 observations).
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// String implements fmt.Stringer.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", s.n, s.Mean(), s.Stddev(), s.min, s.max)
}

// Sample accumulates a latency-style distribution (sojourn times). By
// default it retains every observation so exact order statistics can be
// computed afterwards — right when tail percentiles matter and the
// observation count per run is modest. For unbounded streams (100k-job
// arrival runs), Bound caps memory: past the cap the sample collapses
// into a streaming log-linear histogram whose percentiles carry ~3%
// relative error while mean, min, max and count stay exact. The zero
// value is ready to use (exact mode).
//
//simlint:mergeable
type Sample struct {
	xs     []float64
	sorted bool     //simlint:nomerge folded via Add replay in Merge, which resets it per observation
	limit  int      //simlint:nomerge bound config: the destination sample's bound governs the merged stream
	h      *logHist // non-nil once collapsed
}

// Bound caps the sample at limit raw observations (limit must be
// positive). If the cap is already exceeded the sample collapses
// immediately. Bounded samples answer Percentile approximately (~3%
// relative error, non-negative observations only); N, Mean, Min and Max
// remain exact.
func (s *Sample) Bound(limit int) {
	if limit <= 0 {
		panic("metrics: Sample.Bound needs a positive limit")
	}
	s.limit = limit
	if len(s.xs) > limit {
		s.collapse()
	}
}

// Bounded reports whether the sample has collapsed to streaming form.
func (s *Sample) Bounded() bool { return s.h != nil }

func (s *Sample) collapse() {
	s.h = newLogHist()
	for _, x := range s.xs {
		s.h.add(x)
	}
	s.xs, s.sorted = nil, false
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	if s.h != nil {
		s.h.add(x)
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
	if s.limit > 0 && len(s.xs) > s.limit {
		s.collapse()
	}
}

// Merge folds another sample's observations into s, leaving o
// untouched. Exact-mode inputs replay observation by observation (so
// bounds still trigger as if the values had been Added directly);
// a collapsed input forces s to collapse too and the histograms merge
// bucket-exactly.
func (s *Sample) Merge(o *Sample) {
	if o.h != nil {
		if s.h == nil {
			s.collapse()
		}
		s.h.merge(o.h)
		return
	}
	for _, x := range o.xs {
		s.Add(x)
	}
}

// N returns the observation count.
func (s *Sample) N() int {
	if s.h != nil {
		return int(s.h.n)
	}
	return len(s.xs)
}

// Mean returns the arithmetic mean (exact in both modes). Empty samples
// return NaN — "no data" must not read as a perfect zero in latency
// reports.
func (s *Sample) Mean() float64 {
	if s.h != nil {
		return s.h.mean()
	}
	if len(s.xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-quantile (p in [0,1]) by the nearest-rank
// method: the smallest observation such that at least p of the data is
// <= it. Empty samples return NaN. Bounded samples answer from the
// streaming histogram (~3% relative error).
func (s *Sample) Percentile(p float64) float64 {
	if s.h != nil {
		return s.h.percentile(p)
	}
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	rank := int(math.Ceil(p*float64(len(s.xs)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s.xs) {
		rank = len(s.xs) - 1
	}
	return s.xs[rank]
}

// Min returns the smallest observation (NaN when empty).
func (s *Sample) Min() float64 {
	if s.h != nil {
		return s.h.min()
	}
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[0]
}

// Max returns the largest observation (NaN when empty).
func (s *Sample) Max() float64 {
	if s.h != nil {
		return s.h.max()
	}
	if len(s.xs) == 0 {
		return math.NaN()
	}
	s.sort()
	return s.xs[len(s.xs)-1]
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// String renders the five-number-ish summary used in run reports.
func (s *Sample) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.0f p99=%.0f max=%.0f",
		s.N(), s.Mean(), s.Percentile(0.50), s.Percentile(0.99), s.Max())
}

// Point is one sample of a time series.
type Point struct {
	T float64
	V float64
}

// Series is an append-only time series. By default every sample is
// retained; Bound caps memory for month-long virtual runs (the
// time-series analogue of Sample.Bound).
type Series struct {
	Label  string
	Points []Point

	limit  int // 0 = retain everything
	stride int // record every stride-th accepted sample (1 = all)
	skip   int // samples dropped since the last recorded one
}

// Bound caps the series at limit retained points (limit must be >= 2).
// When an Add would exceed the cap the series thins itself — every
// other retained point is dropped and the stride between future
// recordings doubles — so arbitrarily long runs keep at most limit
// roughly uniformly spaced points. A retained point keeps its original
// windowed value: a bounded series is a subsample of the exact one, not
// a re-aggregation, so per-window figures (utilization %, windowed p99)
// stay individually exact while the time resolution halves per
// doubling. Bounding an already over-full series thins it immediately.
// Bound(0) restores the documented default — retain every point from
// here on — and limit 1 (or negative) panics; the contract is shared
// with trace.Monitor.Bound.
func (s *Series) Bound(limit int) {
	if limit == 0 {
		s.limit, s.stride, s.skip = 0, 1, 0
		return
	}
	if limit < 2 {
		panic("metrics: Series.Bound needs limit 0 (exact) or >= 2")
	}
	s.limit = limit
	if s.stride == 0 {
		s.stride = 1
	}
	for len(s.Points) > s.limit {
		s.thin()
	}
}

// Bounded reports whether the series has dropped samples to stay under
// its bound.
func (s *Series) Bounded() bool { return s.stride > 1 }

// thin halves the retained points and doubles the recording stride.
func (s *Series) thin() {
	kept := s.Points[:0]
	for i := 0; i < len(s.Points); i += 2 {
		kept = append(kept, s.Points[i])
	}
	s.Points = kept
	s.stride *= 2
	s.skip = 0
}

// Add appends a sample (or, past a bound, every stride-th sample).
func (s *Series) Add(t, v float64) {
	if s.stride > 1 {
		if s.skip++; s.skip < s.stride {
			return
		}
		s.skip = 0
	}
	s.Points = append(s.Points, Point{t, v})
	if s.limit > 0 && len(s.Points) > s.limit {
		s.thin()
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// MaxV returns the largest sample value (0 when empty).
func (s *Series) MaxV() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// At returns the interpolated value at time t (nearest-neighbor for
// out-of-range queries). Series must be sorted by T, which Add preserves
// when samples arrive in time order.
func (s *Series) At(t float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return 0
	}
	i := sort.Search(n, func(i int) bool { return s.Points[i].T >= t })
	if i == 0 {
		return s.Points[0].V
	}
	if i == n {
		return s.Points[n-1].V
	}
	a, b := s.Points[i-1], s.Points[i]
	if b.T == a.T {
		return b.V
	}
	frac := (t - a.T) / (b.T - a.T)
	return a.V + frac*(b.V-a.V)
}

// Mean returns the unweighted mean of the sample values.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// Ratio returns a/b guarding against a zero denominator (returns 0).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) for
// non-negative values: 1.0 when all values are equal (perfectly even
// load), approaching 1/n when one element holds everything. Returns 1
// for empty or all-zero input (nothing to be unfair about).
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}

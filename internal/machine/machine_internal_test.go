package machine

import (
	"testing"

	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// keepLocal is a minimal strategy: every goal runs where it was created.
type keepLocal struct{}

func (keepLocal) Name() string                { return "keep-local" }
func (keepLocal) Setup(m *Machine)            {}
func (keepLocal) NewNode(pe *PE) NodeStrategy { return AdaptNode(keepLocalNode{pe}) }

type keepLocalNode struct{ pe *PE }

func (n keepLocalNode) PlaceNewGoal(g *Goal)          { n.pe.Accept(g) }
func (n keepLocalNode) GoalArrived(g *Goal, from int) { n.pe.Accept(g) }
func (n keepLocalNode) Control(from int, payload any) {}

func TestSinglePESequentialRun(t *testing.T) {
	tree := workload.NewFib(8)
	cfg := DefaultConfig()
	m := New(topology.NewSingle(), tree, keepLocal{}, cfg)
	st := m.Run()

	if !st.Completed {
		t.Fatal("run did not complete")
	}
	if st.Result != workload.FibValue(8) {
		t.Fatalf("Result = %d, want %d", st.Result, workload.FibValue(8))
	}
	goals := int64(tree.Count())
	if st.GoalsExecuted != goals {
		t.Fatalf("GoalsExecuted = %d, want %d", st.GoalsExecuted, goals)
	}
	if st.RespIntegrated != goals-1 {
		t.Fatalf("RespIntegrated = %d, want %d", st.RespIntegrated, goals-1)
	}
	// On one PE with zero communication the machine is a sequential
	// processor: makespan is exactly the total service time and
	// utilization is exactly 1.
	wantMakespan := sim.Time(tree.Count())*cfg.GrainTime + sim.Time(tree.Count()-1)*cfg.CombineTime
	if st.Makespan != wantMakespan {
		t.Fatalf("Makespan = %d, want %d", st.Makespan, wantMakespan)
	}
	if u := st.Utilization(); u != 1.0 {
		t.Fatalf("Utilization = %f, want exactly 1", u)
	}
	if sp := st.Speedup(); sp != 1.0 {
		t.Fatalf("Speedup = %f, want exactly 1", sp)
	}
	if st.GoalHops.Max() != 0 {
		t.Fatalf("goal hops max = %d, want 0 (nothing moved)", st.GoalHops.Max())
	}
	if st.TotalMessages() != 0 {
		t.Fatalf("TotalMessages = %d, want 0 on a single PE", st.TotalMessages())
	}
}

func TestTransmitSerializesFIFO(t *testing.T) {
	topo := topology.NewGrid(1, 2)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0 // quiesce periodic load broadcasts
	m := New(topo, workload.NewFib(2), keepLocal{}, cfg)
	ch := &m.chans[0]
	var deliveries []sim.Time
	record := func() { deliveries = append(deliveries, m.eng.Now()) }
	// Three simultaneous 5-unit transmissions must serialize: 5, 10, 15.
	m.eng.Schedule(0, func() {
		m.transmitFunc(ch, 5, record)
		m.transmitFunc(ch, 5, record)
		m.transmitFunc(ch, 5, record)
	})
	m.eng.RunUntil(100)
	want := []sim.Time{5, 10, 15}
	if len(deliveries) != 3 {
		t.Fatalf("deliveries = %v", deliveries)
	}
	for i := range want {
		if deliveries[i] != want[i] {
			t.Fatalf("deliveries = %v, want %v", deliveries, want)
		}
	}
	if ch.busyTotal != 15 || ch.messages != 3 {
		t.Fatalf("busyTotal=%d messages=%d, want 15/3", ch.busyTotal, ch.messages)
	}
}

func TestTransmitAfterIdleStartsImmediately(t *testing.T) {
	topo := topology.NewGrid(1, 2)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	m := New(topo, workload.NewFib(2), keepLocal{}, cfg)
	ch := &m.chans[0]
	var at sim.Time
	m.eng.Schedule(0, func() { m.transmitFunc(ch, 5, func() {}) })
	m.eng.Schedule(50, func() { m.transmitFunc(ch, 5, func() { at = m.eng.Now() }) })
	m.eng.RunUntil(100)
	if at != 55 {
		t.Fatalf("second transmission delivered at %d, want 55", at)
	}
}

func TestPickChannelPrefersLeastBacklogged(t *testing.T) {
	topo := topology.NewDLM(5, 5, 5) // PE pairs share two parallel buses
	m := New(topo, workload.NewFib(2), keepLocal{}, DefaultConfig())
	chs := topo.ChannelsBetween(0, 1)
	if len(chs) < 2 {
		t.Fatalf("expected parallel buses between 0 and 1, got %v", chs)
	}
	m.chans[chs[0]].busyUntil = 100
	got := m.pickChannel(chs)
	if got == &m.chans[chs[0]] {
		t.Fatalf("pickChannel chose backlogged channel %d", chs[0])
	}
}

func TestTakeNewestQueuedGoalOrder(t *testing.T) {
	topo := topology.NewSingle()
	tree := workload.NewFib(3)
	m := New(topo, tree, keepLocal{}, DefaultConfig())
	pe := m.pes[0]
	g1 := m.newGoal(tree.Root, &jobState{tree: tree}, 0, -1)
	g2 := m.newGoal(tree.Root, &jobState{tree: tree}, 0, -1)
	g3 := m.newGoal(tree.Root, &jobState{tree: tree}, 0, -1)
	// Direct queue manipulation: the PE is idle so the first enqueue
	// starts service; g1 enters service, g2 and g3 wait.
	m.eng.Schedule(0, func() {
		pe.Accept(g1)
		pe.Accept(g2)
		pe.Accept(g3)
		if got := pe.TakeNewestQueuedGoal(); got != g3 {
			t.Errorf("first take = goal %d, want %d (newest)", got.ID, g3.ID)
		}
		if got := pe.TakeNewestQueuedGoal(); got != g2 {
			t.Errorf("second take = goal %d, want %d", got.ID, g2.ID)
		}
		if got := pe.TakeNewestQueuedGoal(); got != nil {
			t.Errorf("third take = goal %d, want nil (g1 in service)", got.ID)
		}
	})
	m.eng.Step()
}

func TestLoadMetrics(t *testing.T) {
	topo := topology.NewSingle()
	tree := workload.NewFib(3)
	cfg := DefaultConfig()
	cfg.LoadMetric = LoadQueuePlusPending
	m := New(topo, tree, keepLocal{}, cfg)
	pe := m.pes[0]
	pe.pending.put(99, &pendingTask{})
	g := m.newGoal(tree.Root, &jobState{tree: tree}, 0, -1)
	m.eng.Schedule(0, func() {
		pe.Accept(g) // goes straight into service: queue stays empty
		if got := pe.Load(); got != 1 {
			t.Errorf("Load = %d, want 1 (0 queued + 1 pending)", got)
		}
		if pe.QueuedGoals() != 0 {
			t.Errorf("QueuedGoals = %d, want 0", pe.QueuedGoals())
		}
		if pe.PendingTasks() != 1 {
			t.Errorf("PendingTasks = %d, want 1", pe.PendingTasks())
		}
	})
	m.eng.Step()
}

func TestCommittedBusyPartial(t *testing.T) {
	topo := topology.NewSingle()
	tree := workload.NewFib(2) // root spawns fib(1), fib(0)
	cfg := DefaultConfig()     // grain 10
	m := New(topo, tree, keepLocal{}, cfg)
	pe := m.pes[0]
	m.eng.Schedule(0, func() { pe.Accept(m.newGoal(tree.Root, &jobState{tree: tree}, -1, -1)) })
	m.eng.RunUntil(4) // mid-service of the root goal
	if got := pe.committedBusy(); got != 4 {
		t.Fatalf("committedBusy at t=4 = %d, want 4", got)
	}
}

func TestAbortedRunReportsIncomplete(t *testing.T) {
	// A chain on one PE needs ~15 units/goal; MaxTime 50 cannot finish.
	tree := workload.NewChain(100)
	cfg := DefaultConfig()
	cfg.MaxTime = 50
	m := New(topology.NewSingle(), tree, keepLocal{}, cfg)
	st := m.Run()
	if st.Completed {
		t.Fatal("expected incomplete run")
	}
	if st.Makespan != 50 {
		t.Fatalf("Makespan = %d, want 50 (the abort time)", st.Makespan)
	}
}

func TestRunTwicePanics(t *testing.T) {
	m := New(topology.NewSingle(), workload.NewFib(2), keepLocal{}, DefaultConfig())
	m.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	m.Run()
}

func TestConfigValidation(t *testing.T) {
	topo := topology.NewSingle()
	tree := workload.NewFib(2)
	bad := []func(c *Config){
		func(c *Config) { c.GrainTime = 0 },
		func(c *Config) { c.CombineTime = -1 },
		func(c *Config) { c.GoalHopTime = 0 },
		func(c *Config) { c.RootPE = 5 },
		func(c *Config) { c.MaxTime = 0 },
	}
	for i, mutate := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			cfg := DefaultConfig()
			mutate(&cfg)
			New(topo, tree, keepLocal{}, cfg)
		}()
	}
}

func TestLoadMetricString(t *testing.T) {
	if LoadQueue.String() != "queue" || LoadQueuePlusPending.String() != "queue+pending" {
		t.Fatal("LoadMetric.String wrong")
	}
	if MsgGoal.String() != "goal" || MsgResponse.String() != "response" || MsgLoad.String() != "load" || MsgControl.String() != "control" {
		t.Fatal("MsgKind.String wrong")
	}
}

func TestBroadcastReachesAllBusMembers(t *testing.T) {
	topo := topology.NewBusGlobal(5)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0 // quiesce periodic traffic
	m := New(topo, workload.NewFib(2), keepLocal{}, cfg)
	pe := m.pes[2]
	// Give the sender a distinctive load, then broadcast it.
	g1 := m.newGoal(workload.NewFib(3).Root, &jobState{tree: workload.NewFib(3)}, 0, -1)
	g2 := m.newGoal(workload.NewFib(3).Root, &jobState{tree: workload.NewFib(3)}, 0, -1)
	m.eng.Schedule(0, func() {
		pe.Accept(g1) // enters service
		pe.Accept(g2) // queued: load 1
		m.broadcastLoad(pe)
	})
	m.eng.RunUntil(10)
	for _, other := range m.pes {
		if other.id == 2 {
			continue
		}
		load, seenAt := other.KnownLoad(2)
		if load != 1 || seenAt < 0 {
			t.Fatalf("PE %d heard load %d (seen %d), want 1 from the broadcast", other.id, load, seenAt)
		}
	}
	// One bus transaction, not four.
	if m.chans[0].messages != 1 {
		t.Fatalf("bus carried %d messages, want 1", m.chans[0].messages)
	}
	if m.stats.MsgCounts[MsgLoad] != 1 {
		t.Fatalf("load message count = %d, want 1", m.stats.MsgCounts[MsgLoad])
	}
}

func TestKnownLoadUnknownNeighborPanics(t *testing.T) {
	m := New(topology.NewGrid(2, 2), workload.NewFib(2), keepLocal{}, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("KnownLoad(non-neighbor) did not panic")
		}
	}()
	m.pes[0].KnownLoad(3) // PE 3 is diagonal: not a neighbor
}

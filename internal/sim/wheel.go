package sim

// wheelSched is the two-tier scheduler: a calendar-queue-style bucket
// wheel for the near future backed by an overflow min-heap for the far
// future.
//
// The wheel covers the half-open window [base, base+wheelSpan) of
// virtual time with one slot per time unit (wheelSpan slots, power of
// two, indexed by at&wheelMask). Because time is integral and the
// window equals the slot count, every slot holds events of exactly one
// timestamp, chained in a doubly-linked FIFO — so (at, seq) ordering
// degenerates to "append on push, pop from the head", O(1) with no
// comparisons. Events beyond the window land in the overflow heap and
// drain into the wheel as the window advances; a drain pops the heap in
// (at, seq) order into slots that are empty by construction (their
// previous occupants fired a full revolution ago), and any later push
// for the same timestamp appends behind the drained events with a
// larger seq — so the per-slot FIFO is globally seq-ordered and the
// two-tier structure reproduces the heap's event order bit for bit
// (pinned by TestSchedulerEquivalence and the machine-level
// cross-checks).
//
// Where each tier wins: the wheel turns the O(log n) heap
// percolation of every push/pop — dominated by Timer re-arm traffic
// (service completions, tickers, arrival pumps) and by control-heavy
// machines keeping thousands of events resident — into pointer
// appends, at the cost of stepping the cursor over empty slots
// (cheap: one nil check per unit of virtual time) and of 16 bytes per
// slot of standing memory. The heap has no window to maintain and
// wins when events are extremely sparse in time or far-flung.
// Numbers live in the perf ledger's sched-two-tier section;
// re-measure with cmd/bench before changing defaults.
const (
	wheelBits = 11
	wheelSpan = Time(1) << wheelBits // window width and slot count
	wheelMask = int(wheelSpan - 1)
)

// wheelSlot is one bucket: a FIFO chain of events sharing a timestamp.
type wheelSlot struct {
	head, tail *Event
}

type wheelSched struct {
	slots []wheelSlot
	base  Time // time of the cursor slot; wheel events lie in [base, base+wheelSpan)
	cur   int  // slot index of base (== int(base)&wheelMask)
	count int  // events chained in the wheel (cancelled included)
	over  eventHeap
}

func newWheelSched() *wheelSched {
	return &wheelSched{slots: make([]wheelSlot, wheelSpan)}
}

func (w *wheelSched) size() int { return w.count + len(w.over) }

func (w *wheelSched) push(ev *Event) {
	if ev.at < w.base {
		// Cold path: the cursor settled on a later event's time and a
		// fresh push targets the gap (possible after RunUntil stops the
		// clock short of the next event). Rewind the window.
		w.rewind(ev.at)
	}
	if ev.at < w.base+wheelSpan {
		w.chain(ev)
	} else {
		w.over.push(ev)
	}
}

// chain appends the event to its slot's FIFO.
func (w *wheelSched) chain(ev *Event) {
	s := &w.slots[int(ev.at)&wheelMask]
	ev.index = idxWheel
	ev.next = nil
	ev.prev = s.tail
	if s.tail == nil {
		s.head = ev
	} else {
		s.tail.next = ev
	}
	s.tail = ev
	w.count++
}

// unlink removes a chained event from its slot.
func (w *wheelSched) unlink(s *wheelSlot, ev *Event) {
	if ev.prev == nil {
		s.head = ev.next
	} else {
		ev.prev.next = ev.next
	}
	if ev.next == nil {
		s.tail = ev.prev
	} else {
		ev.next.prev = ev.prev
	}
	ev.next, ev.prev = nil, nil
	ev.index = idxIdle
	w.count--
}

// drain moves overflow events that now fall inside the window onto
// their slots. The heap yields them in (at, seq) order and their slots
// are still empty of later pushes, so chain order stays seq order.
func (w *wheelSched) drain() {
	horizon := w.base + wheelSpan
	for len(w.over) > 0 && w.over[0].at < horizon {
		w.chain(w.over.pop())
	}
}

// seek positions the cursor on the earliest non-empty slot, advancing
// the window (and draining the overflow) across empty slots, and
// returns that slot — nil when nothing is pending. When the wheel is
// empty the window jumps straight to the overflow's earliest timestamp
// instead of stepping.
func (w *wheelSched) seek() *wheelSlot {
	if w.count == 0 {
		if len(w.over) == 0 {
			return nil
		}
		w.base = w.over[0].at
		w.cur = int(w.base) & wheelMask
		w.drain()
	}
	for {
		if s := &w.slots[w.cur]; s.head != nil {
			return s
		}
		w.cur = (w.cur + 1) & wheelMask
		w.base++
		w.drain()
	}
}

// rewind moves the window start back to t (t < base), evicting any
// chained event that the narrower horizon can no longer cover back to
// the overflow heap. Only reachable when the cursor ran ahead of the
// clock (seek stops on the next event's time) and a later push targets
// the gap — never on the fire path, so the O(wheelSpan) sweep is
// irrelevant to steady-state cost.
func (w *wheelSched) rewind(t Time) {
	if w.count > 0 {
		horizon := t + wheelSpan
		for i := range w.slots {
			s := &w.slots[i]
			if s.head == nil || s.head.at < horizon {
				continue
			}
			for ev := s.head; ev != nil; {
				next := ev.next
				ev.next, ev.prev = nil, nil
				w.over.push(ev)
				w.count--
				ev = next
			}
			s.head, s.tail = nil, nil
		}
	}
	w.base = t
	w.cur = int(t) & wheelMask
}

// pop removes and returns the earliest event, or nil if empty.
// Cancelled events may be returned; the engine skips them.
func (w *wheelSched) pop() *Event {
	s := w.seek()
	if s == nil {
		return nil
	}
	ev := s.head
	w.unlink(s, ev)
	return ev
}

// peek returns the next live event without removing it, discarding any
// cancelled events encountered at the front.
func (w *wheelSched) peek() *Event {
	for {
		s := w.seek()
		if s == nil {
			return nil
		}
		ev := s.head
		if !ev.canceled {
			return ev
		}
		w.unlink(s, ev)
	}
}

// remove deletes a scheduled event: an O(1) unlink for a chained event,
// an O(log n) indexed removal for an overflow event.
func (w *wheelSched) remove(ev *Event) {
	if ev.index == idxWheel {
		w.unlink(&w.slots[int(ev.at)&wheelMask], ev)
		return
	}
	w.over.removeAt(ev.index)
}

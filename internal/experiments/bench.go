package experiments

// BenchCase is one entry of the fixed benchmark matrix the perf ledger
// (BENCH_PR2.json, cmd/bench) and the `go test -bench` suite share. The
// matrix is deliberately pinned — same topologies, workloads, seeds and
// arrival streams every run — so ns/op, allocs/op and events/sec are
// comparable across commits.
type BenchCase struct {
	// Name is the ledger key, stable across PRs.
	Name string
	// Spec is the run the case times, executed once per iteration.
	Spec RunSpec
}

// BenchMatrix returns the pinned closed+open benchmark matrix.
//
// The closed cases time the paper's single-tree experiment on the two
// headline strategies; the open cases push a Poisson job stream through
// the machine — the steady-state regime where per-event and per-message
// allocation costs dominate. "open/poisson-grid8" is the ledger's
// headline case: PR 2's ≥25% allocs/op reduction is measured on it.
func BenchMatrix() []BenchCase {
	return []BenchCase{
		{
			Name: "closed/cwn-grid10-fib13",
			Spec: RunSpec{Topo: Grid(10), Workload: Fib(13), Strategy: CWN(9, 2)},
		},
		{
			Name: "closed/gm-grid10-fib13",
			Spec: RunSpec{Topo: Grid(10), Workload: Fib(13), Strategy: GM(1, 2, 20)},
		},
		{
			Name: "open/poisson-grid8",
			Spec: RunSpec{
				Topo:     Grid(8),
				Workload: Fib(9),
				Strategy: CWN(9, 2),
				Arrival:  PoissonArrivals(60, 500),
				Warmup:   3_000,
			},
		},
		{
			Name: "open/poisson-dlm10",
			Spec: RunSpec{
				Topo:     DLM(10, 5),
				Workload: Fib(9),
				Strategy: CWN(5, 1),
				Arrival:  PoissonArrivals(40, 500),
				Warmup:   2_000,
			},
		},
		{
			Name: "open/burst-grid10-gm",
			Spec: RunSpec{
				Topo:     Grid(10),
				Workload: Fib(9),
				Strategy: GM(1, 2, 20),
				Arrival:  BurstArrivals(25, 2_000, 8),
				Warmup:   2_000,
			},
		},
		{
			// The heap-heavy case (PR 3): 1024 PEs each running a load
			// ticker and a gradient process put thousands of timers in
			// the event heap at all times, with GM's proximity
			// broadcasts layering control traffic on top — the regime
			// where heap pop cost dominates and heap-arity experiments
			// are decided.
			Name: "open/ctrl-grid32-gm",
			Spec: RunSpec{
				Topo:     Grid(32),
				Workload: Fib(9),
				Strategy: GM(1, 2, 20),
				Arrival:  PoissonArrivals(30, 400),
				Warmup:   2_000,
			},
		},
	}
}

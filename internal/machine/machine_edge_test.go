package machine_test

import (
	"testing"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
	"cwnsim/internal/workload"
)

// TestResponseHopsEqualTopologicalDistance uses the trace to verify
// each response travels exactly Dist(executor, parent) hops.
func TestResponseHopsEqualTopologicalDistance(t *testing.T) {
	tree := workload.NewFib(9)
	topo := topology.NewGrid(4, 4)
	var col trace.Collector
	cfg := machine.DefaultConfig()
	cfg.Trace = &col
	st := machine.New(topo, tree, core.NewCWN(5, 1), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	// Reconstruct: RespSent at the executing PE, with Other = parent PE.
	var totalDist int64
	for _, ev := range col.ByKind(trace.RespSent) {
		totalDist += int64(topo.Dist(ev.PE, ev.Other))
	}
	var histSum int64
	for h := 0; h <= st.RespHops.Max(); h++ {
		histSum += int64(h) * st.RespHops.Count(h)
	}
	if totalDist != histSum {
		t.Fatalf("response hops %d != sum of shortest distances %d", histSum, totalDist)
	}
}

// TestGMControlTrafficCounted verifies proximity broadcasts appear in
// the control message counters and cost channel time.
func TestGMControlTrafficCounted(t *testing.T) {
	tree := workload.NewFib(11)
	cfg := machine.DefaultConfig()
	st := machine.New(topology.NewGrid(4, 4), tree, core.NewGradient(1, 2, 20), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	if st.MsgCounts[machine.MsgControl] == 0 {
		t.Error("GM sent no proximity broadcasts")
	}
}

// TestBusSaturationStillCorrect pushes a large workload over a single
// shared bus: extreme contention, but conservation and the result must
// hold, and the bus must not exceed 100% utilization.
func TestBusSaturationStillCorrect(t *testing.T) {
	tree := workload.NewFib(12)
	cfg := machine.DefaultConfig()
	st := machine.New(topology.NewBusGlobal(8), tree, core.NewCWN(2, 1), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	if st.Result != tree.Eval() {
		t.Fatalf("result %d, want %d", st.Result, tree.Eval())
	}
	if st.GoalsExecuted != int64(tree.Count()) {
		t.Fatalf("executed %d, want %d", st.GoalsExecuted, tree.Count())
	}
	if u := st.MaxChannelUtilization(); u > 1.0000001 {
		t.Fatalf("bus utilization %f > 1", u)
	}
	if u := st.MaxChannelUtilization(); u < 0.3 {
		t.Errorf("expected a heavily loaded bus, got %.2f", u)
	}
}

// TestLoadInfoStaleness verifies the KnownLoad timestamp advances with
// periodic broadcasts.
func TestLoadInfoStaleness(t *testing.T) {
	tree := workload.NewFib(10)
	topo := topology.NewGrid(2, 2)
	cfg := machine.DefaultConfig()
	cfg.PiggybackLoad = false
	cfg.LoadInterval = 20
	m := machine.New(topo, tree, core.NewLocal(), cfg)
	pe := m.PE(1)
	m.Engine().Schedule(100, func() {
		_, seen := pe.KnownLoad(0)
		if seen < 0 {
			t.Error("no load broadcast heard by t=100 with interval 20")
		}
		if seen > 100 {
			t.Errorf("seen time %d in the future", seen)
		}
	})
	m.Run()
}

// TestPEAccessors covers the remaining PE accessors.
func TestPEAccessors(t *testing.T) {
	tree := workload.NewFib(5)
	m := machine.New(topology.NewGrid(2, 2), tree, core.NewLocal(), machine.DefaultConfig())
	pe := m.PE(0)
	if pe.ID() != 0 {
		t.Error("ID")
	}
	if pe.Machine() != m {
		t.Error("Machine")
	}
	if pe.Now() != 0 {
		t.Error("Now")
	}
	if got := len(pe.Neighbors()); got != 2 {
		t.Errorf("corner of 2x2 grid has %d neighbors, want 2", got)
	}
	if pe.Node() == nil {
		t.Error("Node nil")
	}
	if m.Tree() != tree {
		t.Error("Tree")
	}
	if m.Config().GrainTime != 10 {
		t.Error("Config")
	}
	if m.Completed() {
		t.Error("Completed before run")
	}
}

// TestMsgCountsByKind checks accounting sanity under CWN: every goal
// hop and response hop is one message; load words flow periodically.
func TestMsgCountsByKind(t *testing.T) {
	tree := workload.NewFib(10)
	var col trace.Collector
	cfg := machine.DefaultConfig()
	cfg.Trace = &col
	st := machine.New(topology.NewGrid(4, 4), tree, core.NewCWN(4, 1), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	if int64(col.Count(trace.GoalSent)) != st.MsgCounts[machine.MsgGoal] {
		t.Errorf("goal sends traced %d != counted %d", col.Count(trace.GoalSent), st.MsgCounts[machine.MsgGoal])
	}
	var hopSum int64
	for h := 0; h <= st.GoalHops.Max(); h++ {
		hopSum += int64(h) * st.GoalHops.Count(h)
	}
	if hopSum != st.MsgCounts[machine.MsgGoal] {
		t.Errorf("goal hop-sum %d != goal messages %d", hopSum, st.MsgCounts[machine.MsgGoal])
	}
	if st.MsgCounts[machine.MsgLoad] == 0 {
		t.Error("no periodic load messages despite LoadInterval=20")
	}
}

// TestGoalsPerPEConservation: the per-PE execution counts partition the
// goal total.
func TestGoalsPerPEConservation(t *testing.T) {
	tree := workload.NewFib(11)
	st := machine.New(topology.NewGrid(4, 4), tree, core.NewCWN(4, 1), machine.DefaultConfig()).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	var sum int64
	for _, n := range st.GoalsPerPE {
		sum += n
	}
	if sum != st.GoalsExecuted || sum != int64(tree.Count()) {
		t.Fatalf("per-PE sum %d, GoalsExecuted %d, tree %d", sum, st.GoalsExecuted, tree.Count())
	}
}

// TestQueueDelayShowsHoarding measures the paper's hoarding effect as
// queueing delay: GM's accepted goals wait in queues far longer than
// CWN's on a grid (work piles up where it was created).
func TestQueueDelayShowsHoarding(t *testing.T) {
	tree := workload.NewFib(13)
	topo := topology.NewGrid(5, 5)
	cwn := machine.New(topo, tree, core.PaperCWNGrid(), machine.DefaultConfig()).Run()
	gm := machine.New(topo, tree, core.PaperGMGrid(), machine.DefaultConfig()).Run()
	if !cwn.Completed || !gm.Completed {
		t.Fatal("incomplete")
	}
	if gm.QueueDelay.Mean() <= cwn.QueueDelay.Mean() {
		t.Errorf("GM mean queue delay %.1f <= CWN %.1f — hoarding signature missing",
			gm.QueueDelay.Mean(), cwn.QueueDelay.Mean())
	}
	if cwn.QueueDelay.N() != int64(tree.Count()) {
		t.Errorf("delay samples %d, want %d", cwn.QueueDelay.N(), tree.Count())
	}
	if cwn.QueueDelay.Min() < 0 {
		t.Error("negative queue delay")
	}
}

// TestRouteGoalAPI exercises multi-hop goal routing directly.
func TestRouteGoalAPI(t *testing.T) {
	tree := workload.NewFib(9)
	st := machine.New(topology.NewRing(6), tree, core.NewIdeal(), machine.DefaultConfig()).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	if st.Result != tree.Eval() {
		t.Fatalf("result %d, want %d", st.Result, tree.Eval())
	}
}

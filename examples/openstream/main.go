// Openstream: drive the machine as an open system. A Poisson stream of
// fib jobs arrives at a 10x10 grid and the same traffic is replayed
// against CWN and the Gradient Model, comparing the serving metrics the
// closed-system paper experiments cannot measure: per-job sojourn time
// (mean and tail) and throughput. Arrival times are drawn from a
// dedicated seeded stream, so both strategies face the identical
// workload trace.
//
// Run with: go run ./examples/openstream
package main

import (
	"fmt"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func main() {
	topo := topology.NewGrid(10, 10)
	tree := workload.NewFib(10)

	cfg := machine.DefaultConfig()
	cfg.Warmup = 2_000 // let the machine fill before measuring

	strategies := map[string]machine.Strategy{
		"CWN": core.NewCWN(9, 2),
		"GM":  core.NewGradient(1, 2, 20),
	}
	for _, name := range []string{"CWN", "GM"} {
		// Sources are single-use iterators: one fresh source per run.
		src := machine.NewPoisson(tree, 80, 150)
		st := machine.NewStream(topo, src, strategies[name], cfg).Run()
		fmt.Printf("%-4s jobs=%d/%d  mean sojourn=%.0f  p50=%.0f  p99=%.0f  throughput=%.2f/ku  steady util=%.0f%%\n",
			name, st.JobsDone, st.JobsInjected,
			st.MeanSojourn(), st.SojournP50(), st.SojournP99(),
			1000*st.Throughput(), 100*st.SteadyUtilization())
	}
}

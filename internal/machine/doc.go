// Package machine is the multiprocessor model — the Go equivalent of
// ORACLE, the simulator the paper's experiments ran on. It simulates a
// message-passing machine: processing elements (PEs) that serve one
// message at a time from a FIFO ready queue, and communication channels
// (point-to-point links or multi-drop buses) that carry one message at a
// time, so both compute and communication contention are modelled.
//
// # Job-stream lifecycle
//
// Work enters the machine as jobs: root goals injected by a JobSource
// over virtual time. The paper's closed-system experiment — one tree
// injected at time zero, machine drains, makespan measured — is the
// trivial SingleJob source (machine.New builds it directly). Open-system
// runs use NewStream with a fixed-interval, Poisson or bursty source:
// arrivals are pulled lazily, each job's root goal is accepted at
// Config.RootPE, and the run completes when the source is exhausted and
// every job has delivered its root response. An overloaded stream that
// reaches Config.MaxTime with jobs still in flight is the saturation
// regime, reported via Stats rather than treated as a failure.
//
// Per job, the machine records a JobRecord — injection time, completion
// time, result — from which Stats derives sojourn-time distributions
// (mean/p50/p99 via metrics.Sample), throughput, and steady-state
// utilization with the ramp-up before Config.Warmup excluded.
// Determinism is preserved: arrival randomness draws from a dedicated
// stream derived from the run seed, disjoint from the engine's
// tie-breaking stream, so single-job runs reproduce the paper's event
// sequences bit for bit and equal seeds give identical streams.
//
// # Computation model
//
// The computation model follows Section 2 of the paper: a goal executes
// for a grain time and either completes (sending a response to its
// parent's PE) or spawns sub-goals and waits for their responses; a task
// never migrates after spawning. Where each new goal executes is decided
// by a pluggable Strategy (package core provides CWN, the Gradient Model
// and several baselines). As the paper assumes, a communication
// co-processor performs routing and load-balancing work, so strategy
// decisions consume channel time but no PE compute time.
//
// # Event-driven strategy API
//
// A Strategy supplies one NodeStrategy per PE, and the machine drives
// each node through a typed event stream (NodeStrategy.HandleEvent):
// GoalCreated asks for a placement decision, GoalArrived delivers a
// goal message, Control delivers strategy control payloads. Scenario
// runs add environment events — PEFailed/PERecovered ride the failing
// PE's immediate sentinel-load broadcast to its neighbors (charged
// channel time like any load word), LinkDown/LinkRestored are sensed
// locally by the link's endpoints, PESlowed tells a node its own clock
// changed, and NeighborLoadChanged mirrors every load-table update.
// Environment delivery is strictly opt-in through the FailureAware/
// SpeedAware/LoadAware capability interfaces, resolved once per node at
// construction: strategies that ignore the environment behave — and
// cost — exactly as a sentinel-only implementation. Code written
// against the pre-event three-method shape (ClassicNodeStrategy) keeps
// working through AdaptNode/Adapt, bit-for-bit (pinned by regression
// test).
//
// A PE's "load" is the number of messages waiting in its ready queue —
// the paper's measure — optionally augmented with the count of tasks
// awaiting responses (the "future commitments" refinement from the
// paper's conclusions). Load information travels to neighbors through
// periodic short broadcasts and, optionally, piggybacked on every
// regular message.
//
// # Dynamic environments
//
// Config.Scenario attaches a scripted timeline of perturbations
// (internal/scenario) that the machine replays at their virtual times:
// PE speed changes rescale in-flight service proportionally; a PE
// failure is a compute blackout — service stops, the in-service goal
// aborts and queued goals evacuate to the nearest live PE, arriving
// goals redirect, responses and pending tasks freeze in place until
// recovery, while the communication co-processor stays up and the PE
// advertises a sentinel load that steers strategies away; channels
// degrade (occupancy stretched) or go down entirely (messages hold at
// the sender and flush in order on restore); and load shocks multiply
// the arrival process's offered rate. Scenario accounting lands in
// Stats (GoalsRequeued, ServiceAborts, DownPETime, the queue-imbalance
// and windowed-p99 series) and an empty scenario leaves runs
// bit-for-bit identical to unscripted ones.
//
// A crash (the scenario `crash:` op) is the state-loss failure the
// blackout is not: the PE's queued and in-flight goals, queued
// responses and pending tasks are destroyed. Each job that lost state
// aborts — an attempt-epoch bump instantly stales its surviving goals
// machine-wide, which the machine discards wherever they surface — and
// is re-injected, keeping its original injection time so sojourn
// statistics bill the failed attempt. With periodic checkpoints
// scripted (the `checkpoint:` op), the retry resumes from the job's
// durable frontier — goals re-derived below the snapshot run at replay
// cost instead of full grain time — and every live PE pays the
// scripted snapshot cost at each tick (busy PEs extend their in-flight
// service, idle PEs accrue debt paid at the next service start). A
// positive Config.RetryLimit bounds the budget: each abort beyond it
// abandons the job for good instead of re-injecting (optionally after
// an attempt-scaled Config.RetryBackoff delay), and Stats.Goodput
// prices the loss. The accounting lands in Stats.GoalsLost/JobsAborted
// /JobsRetried/JobsAbandoned with the machine-wide invariant
// JobsRetried + JobsAbandoned == JobsAborted. Chaos generator events —
// including the correlated rack/block failure-domain modes — expand
// into concrete deterministic failure timelines at machine
// construction (ScenarioScript exposes the expanded script).
//
// Sweeps replicating one configuration across seeds can hand sequential
// machines a shared Pool (Config.Pool): the per-run free lists — wire
// messages, goals, pending tasks, job states, pending-slab slot arrays
// — carry over, cutting steady-state allocation without touching
// results.
//
// # Hot path
//
// The per-goal path is hash-free end to end: a PE indexes its pending
// tasks in an open-addressed slab keyed by goal ID (pendingslab.go —
// sequential IDs make the low bits a perfect hash), ready queues are
// ring buffers, and every transient object (wire messages, goals,
// pending tasks, job states) recycles through slice-stack free lists.
// The engine underneath runs the two-tier wheel scheduler by default
// (Config.Scheduler, internal/sim); both knobs are A/B-measurable
// through the perf ledger (cmd/bench). The free-list discipline —
// pointer fields zeroed on free, no touching an object after its
// free-list put — is machine-checked: pooled types carry
// //simlint:pooled and free functions //simlint:free, and the poolsafe
// analyzer (internal/analysis, run by CI as cmd/simlint) enforces both
// rules at vet time.
//
// # Memory layout
//
// The layout is built for million-PE machines (the ledger's
// open/poisson-torus1000 case runs 1,000,000 PEs in well under 2 GB of
// heap); the bench footprint gate holds construction to its per-PE
// budget. Four decisions carry it:
//
// Struct-of-arrays hot state. The per-event PE fields — busy, failed,
// remaining-service end, accrued busy time, speed — live in parallel
// slices on the Machine (peBusy, peFailed, peServiceEnd, peBusyTime,
// peSpeed), indexed by the PE's local index (PE.lx). An event touching
// a thousand PEs walks flat arrays instead of dereferencing a thousand
// structs; the speed slice is nil for homogeneous machines. The PE
// struct keeps the cold and per-PE-shaped state (ready ring, pending
// slab, neighbor views), and the structs themselves sit in one
// contiguous block (peBlock), not a million singleton allocations.
//
// Flat adjacency. Neighbor lists, per-neighbor load views and channel
// membership are capacity-capped subslices of shared flat backings
// (CSR form), so per-PE adjacency costs array bytes, not slice-header
// garbage and pointer-chased little arrays. Channel states are a value
// slice (chans []chanState) that never grows, so interior *chanState
// pointers stay valid for the life of the run. Neighbor lookups binary
// search the sorted neighbor list — no per-PE map.
//
// Arena chunks. Free-list misses for goals, wire messages, pending
// tasks, job states (machine.go) and events (internal/sim) carve from
// chunked arenas (arenaChunk objects at a time) instead of allocating
// singletons: the retained working set is a few contiguous blocks the
// garbage collector marks cheaply, and a carved object is a zero value
// exactly like the allocation it replaces, so results are unaffected.
// Timers and the per-PE load tickers embed by value (sim.Timer.Init,
// sim.Ticker.Init) in machine-owned blocks for the same reason.
//
// Implicit topologies. Machines past 65536 PEs promote to the
// computed-neighbor topology form (internal/topology, experiments
// TopoSpec.Implicit) — adjacency is index arithmetic, no stored edge
// lists — which the machine consumes through the same append-style
// accessors it uses to build its flat backings.
//
// # Sharded execution
//
// Config.Shards > 0 runs the machine as K spatial shards — contiguous
// PE blocks from topology.Partition, each a full sub-machine with its
// own event engine, free lists and statistics, each (for K >= 2) on
// its own goroutine. Per-shard channel state is sparse (chanIdx/
// chanAt): a shard stores chanState only for channels its own PEs
// attach to — every transmit, broadcast and link op resolves at the
// sending side — so a K-shard million-PE machine stays near the
// sequential footprint instead of paying K full channel arrays. Synchronization is conservative lookahead in the
// Chandy-Misra-Bryant tradition, run as a barrier-per-window loop: the
// window width is the minimum wire latency on any channel crossing a
// shard boundary, so no message sent inside a window can be due before
// the next one begins. Every shard therefore always holds its complete
// event set for the window it executes — no rollbacks, no null
// messages. Between windows the single-threaded coordinator drains the
// per-shard-pair outboxes into the receiving engines in a fixed total
// order (delivery time, then sending shard, then FIFO), fast-forwards
// over windows no shard has events in, and checks completion; at
// finalize the per-shard Stats merge into one (counters sum, per-PE
// arrays concatenate, distributions merge exactly).
//
// The determinism contract, pinned by cross-check tests and the
// cmd/bench gate: Shards == 1 reproduces the sequential machine bit
// for bit; Shards >= 2 is a pure function of (seed, shard count) —
// a parallel run equals its single-goroutine serial replay
// (Config.ShardSerial) bit for bit, so the thread schedule cannot
// leak into results — but orders same-timestamp cross-shard events
// differently than the sequential machine and draws per-shard RNG
// streams, so against sequential only conservation holds: completion,
// the computed result, goal/response/job totals and the sojourn count.
// Crash scripts narrow that last clause further: which goals a crash
// destroys depends on placement, so at K >= 2 even the execution
// totals legitimately differ from sequential and the cross-check
// (experiments.ScenarioCrossCheck) instead pins the retry-ledger
// invariants and the placement-independent injection stream.
//
// Observability is shard-safe: sampling (SampleInterval, MonitorPE)
// and tracing (Trace) run under any shard count with a per-shard
// capture / deterministic merge discipline. Every shard's observer
// ticker draws its phase from the plain run seed, so sample instants
// are globally synchronized; each shard records raw partials for its
// own PE block (busy-time deltas, queue-length sums and sums of
// squares, monitor frames) and finalize folds them into the merged
// Stats with the sequential machine's exact arithmetic — Jain's
// imbalance index is recomputed from the pooled raw sums because it
// does not merge from per-shard indices. Trace events buffer per shard
// and replay into the configured sink on the coordinator after the
// workers join, sorted by (time, shard, emission order), preserving
// the Sink single-goroutine contract. Shards == 1 reproduces the
// sequential series and event stream bit for bit; K >= 2 keeps the
// parallel == serial-replay guarantee and conserves per-kind event
// counts for placement-independent kinds against sequential.
//
// Scenario replay is shard-safe under an ops-first barrier discipline.
// The script expands once at construction (chaos draws included, from
// the plain run seed, so the timeline is identical under any shard
// count), and the coordinator owns it: each window barrier is clamped
// one tick short of the next scripted op's instant, so no shard ever
// executes past an op before it applies. At the barrier the
// coordinator steps every quiescent shard engine onto the instant
// (sim.Engine.AdvanceTo) and applies the op to the owning shards in
// shard order — before that instant's machine events fire, exactly the
// ordering the sequential machine's scenario timer produces. Ops whose
// scope is global (load shocks, checkpoint ticks, crash aborts purging
// a job machine-wide) walk all shards in shard order from the
// coordinator, which is single-threaded between windows, so no locks
// are involved. Recovery accounting (windowed p99 series, abort/retry/
// abandon counters, down-PE time) records per shard and folds through
// the same merge discipline as the observer state above.
//
// One global-state feature remains sequential-only (Config.validate
// rejects the combination): Pool, whose cross-run free lists are
// single-threaded by design. Strategies whose correctness needs a
// single global timeline declare it via SequentialOnly (core's
// ORACLE/ideal baseline does), which sharded construction refuses
// with the strategy's stated reason. The boundary is machine-checked
// by internal/analysis: statsmerge proves every Stats field is either
// folded by the shard merge or tagged //simlint:nomerge with a reason,
// and seqonly walks the call graph rooted at shard.go
// (//simlint:seqonly) flagging unguarded reaches into the
// //simlint:globalstate Config fields.
package machine

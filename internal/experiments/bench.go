package experiments

// BenchCase is one entry of the fixed benchmark matrix the perf ledger
// (BENCH_PR2.json, cmd/bench) and the `go test -bench` suite share. The
// matrix is deliberately pinned — same topologies, workloads, seeds and
// arrival streams every run — so ns/op, allocs/op and events/sec are
// comparable across commits.
type BenchCase struct {
	// Name is the ledger key, stable across PRs.
	Name string
	// Spec is the run the case times, executed once per iteration.
	Spec RunSpec
}

// BenchMatrix returns the pinned closed+open benchmark matrix.
//
// The closed cases time the paper's single-tree experiment on the two
// headline strategies; the open cases push a Poisson job stream through
// the machine — the steady-state regime where per-event and per-message
// allocation costs dominate. "open/poisson-grid8" is the ledger's
// headline case: PR 2's ≥25% allocs/op reduction is measured on it.
func BenchMatrix() []BenchCase {
	return []BenchCase{
		{
			Name: "closed/cwn-grid10-fib13",
			Spec: RunSpec{Topo: Grid(10), Workload: Fib(13), Strategy: CWN(9, 2)},
		},
		{
			Name: "closed/gm-grid10-fib13",
			Spec: RunSpec{Topo: Grid(10), Workload: Fib(13), Strategy: GM(1, 2, 20)},
		},
		{
			Name: "open/poisson-grid8",
			Spec: RunSpec{
				Topo:     Grid(8),
				Workload: Fib(9),
				Strategy: CWN(9, 2),
				Arrival:  PoissonArrivals(60, 500),
				Warmup:   3_000,
			},
		},
		{
			Name: "open/poisson-dlm10",
			Spec: RunSpec{
				Topo:     DLM(10, 5),
				Workload: Fib(9),
				Strategy: CWN(5, 1),
				Arrival:  PoissonArrivals(40, 500),
				Warmup:   2_000,
			},
		},
		{
			Name: "open/burst-grid10-gm",
			Spec: RunSpec{
				Topo:     Grid(10),
				Workload: Fib(9),
				Strategy: GM(1, 2, 20),
				Arrival:  BurstArrivals(25, 2_000, 8),
				Warmup:   2_000,
			},
		},
		{
			// The heap-heavy case (PR 3): 1024 PEs each running a load
			// ticker and a gradient process put thousands of timers in
			// the event heap at all times, with GM's proximity
			// broadcasts layering control traffic on top — the regime
			// where heap pop cost dominates and heap-arity experiments
			// are decided.
			Name: "open/ctrl-grid32-gm",
			Spec: RunSpec{
				Topo:     Grid(32),
				Workload: Fib(9),
				Strategy: GM(1, 2, 20),
				Arrival:  PoissonArrivals(30, 400),
				Warmup:   2_000,
			},
		},
		{
			// Scheduler-heavy case #2 (PR 5): 4096 PEs quadruple the
			// standing timer population of ctrl-grid32-gm — ~8k Timer
			// re-arms per 20 virtual units from load tickers and
			// gradient processes alone. This is the regime the two-tier
			// wheel targets: nearly every event lands within the wheel
			// window, so push/pop are pointer appends instead of
			// percolations through a ~10k-entry heap.
			Name: "open/ctrl-grid64-gm",
			Spec: RunSpec{
				Topo:     Grid(64),
				Workload: Fib(9),
				Strategy: GM(1, 2, 20),
				Arrival:  PoissonArrivals(25, 120),
				Warmup:   1_000,
				MaxTime:  20_000,
			},
		},
		{
			// Scheduler-heavy case #3 (PR 5): a long chaos-driven
			// timeline — 256 PEs under a Poisson stream with random
			// fail/recover cycles for 80k virtual units. Service
			// completions, evacuations and failure-aware re-steering
			// keep Timer stop/re-arm traffic high for the whole
			// horizon, and the chaos script parks far-future events in
			// the scheduler's second tier from construction.
			Name: "open/chaos-grid16-cwn-fa",
			Spec: RunSpec{
				Topo:     Grid(16),
				Workload: Fib(9),
				Strategy: StrategySpec{Kind: "cwn", Radius: 5, Horizon: 2, FailureAware: true},
				Arrival:  PoissonArrivals(40, 1_500),
				Warmup:   2_000,
				MaxTime:  80_000,
				Scenario: "chaos:mtbf=4000:mttr=1000@seed=3",
			},
		},
		{
			// The memory-scale case (PR 9): one million PEs on an
			// implicit torus (auto-promoted past the 65536-PE
			// threshold) under a sustained Poisson stream over a short
			// horizon. Events/sec here is dominated by the per-PE load
			// tickers sweeping the struct-of-arrays hot state; the case
			// exists to pin that a million-PE machine constructs, runs
			// and tears down inside the 2 GB heap budget the arena +
			// SoA layout targets — the footprint section gates it.
			Name: "open/poisson-torus1000",
			Spec: RunSpec{
				Topo:     Torus(1000),
				Workload: Fib(9),
				Strategy: CWN(9, 2),
				Arrival:  PoissonArrivals(20, 15),
				Warmup:   100,
				MaxTime:  300,
			},
		},
		{
			// The sharded fault soak (PR 10): the million-PE torus again,
			// but now with the full fault-tolerance stack live under
			// Shards=4 — correlated block-domain crash strikes, periodic
			// checkpoint ticks, and a bounded retry budget. The horizon is
			// short (the million load tickers dominate wall time, as in
			// poisson-torus1000) but the chaos cadence is compressed to
			// match, so every window of the conservative loop crosses op
			// barriers, crash replays and snapshot walks. Jobs all inject
			// at the root PE, so the 250x250 blocks are sized for strikes
			// to land on the active region (a 62,500-PE correlated
			// blackout) and the seed is pinned to a timeline where the
			// run exercises every ledger column: completions, aborts,
			// checkpoint-resumed retries AND budget-exhausted abandons.
			// The footprint section re-applies PR 9's 2 GiB peak-heap
			// gate to this case: fault-tolerance bookkeeping — and the
			// sentinel-broadcast storm a 62k-PE crash sets off — must not
			// break the memory story.
			Name: "open/chaos-torus1000-sharded-soak",
			Spec: RunSpec{
				Topo:         Torus(1000),
				Workload:     Fib(9),
				Strategy:     StrategySpec{Kind: "cwn", Radius: 9, Horizon: 2, FailureAware: true},
				Arrival:      PoissonArrivals(20, 25),
				Warmup:       100,
				MaxTime:      600,
				Scenario:     "chaos:mtbf=60:mttr=40:crash:domain=block:250x250@seed=7,checkpoint:every=50:cost=1@t=0",
				RetryLimit:   2,
				RetryBackoff: 20,
				Shards:       4,
			},
		},
		{
			// The long-horizon soak (PR 9): 10k PEs under chaos
			// fail/recover cycles for 60k virtual units — enough
			// recycle generations that any arena slot handed out twice,
			// stale SoA index or leaked free-list entry surfaces as a
			// conservation failure or a drifting makespan rather than
			// hiding inside a short run.
			Name: "open/chaos-torus100-soak",
			Spec: RunSpec{
				Topo:     Torus(100),
				Workload: Fib(9),
				Strategy: StrategySpec{Kind: "cwn", Radius: 5, Horizon: 2, FailureAware: true},
				Arrival:  PoissonArrivals(40, 1_200),
				Warmup:   2_000,
				MaxTime:  60_000,
				Scenario: "chaos:mtbf=6000:mttr=1500@seed=7",
			},
		},
	}
}

// SchedCases names the BenchMatrix entries the scheduler A/B (perf
// ledger sched-two-tier section, cmd/bench) measures under both the
// heap and the wheel: the standing-timer-heavy control cases plus the
// chaos timeline.
func SchedCases() []string {
	return []string{"open/ctrl-grid32-gm", "open/ctrl-grid64-gm", "open/chaos-grid16-cwn-fa"}
}

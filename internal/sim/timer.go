package sim

import "fmt"

// Timer is a reusable single-shot scheduled callback: one embedded Event
// serves every arming, so steady-state rescheduling — tickers, PE
// service completions, arrival pumps — allocates nothing per firing.
//
// A Timer is single-occupancy: it panics if re-armed while pending. Stop
// disarms immediately (removing the event from the heap, unlike the lazy
// Event.Cancel), after which the timer may be armed again.
type Timer struct {
	eng *Engine
	ev  Event
	fn  func()
}

// NewTimer returns an idle timer firing fn when armed and elapsed.
func NewTimer(eng *Engine, fn func()) *Timer {
	t := &Timer{}
	t.Init(eng, fn)
	return t
}

// Init readies a zero-value Timer in place — the embedded-field
// analogue of NewTimer. Aggregates that hold their timer by value (one
// per PE, say) initialize it with Init and pay no per-timer allocation;
// the Timer must not be copied after Init (the scheduler holds a
// pointer to the embedded Event while armed).
func (t *Timer) Init(eng *Engine, fn func()) {
	if fn == nil {
		panic("sim: Timer.Init with nil fn")
	}
	t.eng = eng
	t.fn = fn
	t.ev.fn = fn
	t.ev.index = idxIdle
}

// Schedule arms the timer to fire after delay units of virtual time.
func (t *Timer) Schedule(delay Time) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Timer.Schedule with negative delay %d at t=%d", delay, t.eng.now))
	}
	t.At(t.eng.now + delay)
}

// At arms the timer to fire at absolute virtual time at.
func (t *Timer) At(at Time) {
	if at < t.eng.now {
		panic(fmt.Sprintf("sim: Timer.At(%d) before now=%d", at, t.eng.now))
	}
	if t.Armed() {
		panic("sim: Timer re-armed while pending")
	}
	t.ev.at = at
	t.ev.seq = t.eng.seq
	t.eng.seq++
	t.eng.sched.push(&t.ev)
}

// Stop disarms a pending timer; stopping an idle timer is a no-op. It
// reports whether a pending firing was averted.
func (t *Timer) Stop() bool {
	if !t.Armed() {
		return false
	}
	t.eng.sched.remove(&t.ev)
	return true
}

// Armed reports whether a firing is pending.
func (t *Timer) Armed() bool { return t.ev.index != idxIdle }

// Next returns the pending firing time; only meaningful while Armed.
func (t *Timer) Next() Time { return t.ev.at }

package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"cwnsim/internal/sim"
)

// TestBlackoutAcceptance drives the subsystem's acceptance scenario —
// fail 25% of the PEs at t=T, recover at 2T, Poisson arrivals — through
// CWN, the Gradient Model and WorkSteal: every run must execute
// deterministically, drain (or honestly saturate, never stall), and
// report recovery metrics in the Result.
func TestBlackoutAcceptance(t *testing.T) {
	const T = 4000
	strategies := []StrategySpec{
		CWN(9, 2),
		GM(1, 2, 20),
		{Kind: "worksteal", Interval: 20, Threshold: 2},
	}
	var requeuedTotal int64
	for _, ss := range strategies {
		spec := RunSpec{
			Topo:           Grid(6),
			Workload:       Fib(8),
			Strategy:       ss,
			Arrival:        PoissonArrivals(12, 800),
			Warmup:         500,
			SampleInterval: 200,
			Scenario:       "fail:pes=25%@t=4000,recover@t=8000",
		}
		a, err := spec.ExecuteErr()
		if err != nil {
			t.Fatalf("%s: %v", ss.Label(), err)
		}
		b, err := spec.ExecuteErr()
		if err != nil {
			t.Fatalf("%s (rerun): %v", ss.Label(), err)
		}
		if a.Makespan != b.Makespan || a.Stats.Events != b.Stats.Events ||
			a.Requeued != b.Requeued || a.P99Soj != b.P99Soj {
			t.Errorf("%s: blackout run not deterministic: makespan %d/%d events %d/%d requeued %d/%d",
				ss.Label(), a.Makespan, b.Makespan, a.Stats.Events, b.Stats.Events, a.Requeued, b.Requeued)
		}
		if a.Stats.Stalled {
			t.Errorf("%s: blackout run stalled", ss.Label())
		}
		if a.Stats.DownPETime != sim.Time(9)*T { // 9 PEs (25% of 36) down for T units
			t.Errorf("%s: DownPETime = %d, want %d", ss.Label(), a.Stats.DownPETime, 9*T)
		}
		rec := a.Recovery
		if rec == nil {
			t.Fatalf("%s: no recovery report on a sampled scenario run", ss.Label())
		}
		if rec.DisruptAt != T || rec.RestoreAt != 2*T {
			t.Errorf("%s: recovery brackets %d..%d, want %d..%d", ss.Label(), rec.DisruptAt, rec.RestoreAt, T, 2*T)
		}
		if rec.GoalsRequeued != a.Requeued {
			t.Errorf("%s: Result.Requeued %d != Recovery.GoalsRequeued %d", ss.Label(), a.Requeued, rec.GoalsRequeued)
		}
		if a.EffUtil < a.Util {
			t.Errorf("%s: EffUtil %.2f < Util %.2f despite 9 dead PEs", ss.Label(), a.EffUtil, a.Util)
		}
		if a.Stats.SojournWindows.Len() == 0 || a.Stats.QueueImbalance.Len() == 0 {
			t.Errorf("%s: recovery series empty (windows=%d imbalance=%d)",
				ss.Label(), a.Stats.SojournWindows.Len(), a.Stats.QueueImbalance.Len())
		}
		requeuedTotal += a.Requeued
	}
	if requeuedTotal == 0 {
		t.Error("no strategy requeued a single goal through a 25% blackout under load")
	}
}

// TestScenarioSpecConfigWiring checks the spec plumbing: an empty
// scenario string builds a nil script (the bit-for-bit-identical empty
// scenario), a non-empty one parses into the machine config, and the
// run name carries the script.
func TestScenarioSpecConfigWiring(t *testing.T) {
	plain := RunSpec{Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1)}
	if cfg := plain.Config(); cfg.Scenario != nil {
		t.Fatal("empty scenario string produced a script")
	}
	if !plain.Config().TrackGoalDetail {
		t.Fatal("goal detail off by default")
	}

	scripted := plain
	scripted.Scenario = "fail:pes=50%@t=100,recover@t=200"
	scripted.NoGoalDetail = true
	cfg := scripted.Config()
	if cfg.Scenario.Empty() || len(cfg.Scenario.Events) != 2 {
		t.Fatalf("scenario not wired into config: %+v", cfg.Scenario)
	}
	if cfg.TrackGoalDetail {
		t.Fatal("NoGoalDetail not wired into config")
	}
	if !strings.Contains(scripted.Name(), "fail:pes=50%@t=100") {
		t.Fatalf("run name %q omits the scenario", scripted.Name())
	}
}

// TestScenarioSpecErrors: malformed scripts and scripts that cannot
// apply to the machine fail their own run with an error, not a crash.
func TestScenarioSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"garbage",
		"fail:pes=25%",          // no time
		"fail:pes=99@t=10",      // PE out of range on a 4x4 grid
		"slow:pes=0:x=0@t=10",   // zero speed
		"droplink:a=0:b=5@t=10", // not neighbors on the grid
		"fail:pes=100%@t=10",    // guaranteed to kill the last live PE
	} {
		spec := RunSpec{Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1), Scenario: bad}
		if _, err := spec.ExecuteErr(); err == nil {
			t.Errorf("scenario %q executed, want error", bad)
		}
	}
}

// TestScenarioSurvivesJSON: the scenario rides RunSpec serialization,
// so spec files and saved sweeps can carry scripted environments.
func TestScenarioSurvivesJSON(t *testing.T) {
	spec := RunSpec{
		Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1),
		Scenario: "fail:pes=25%@t=5000,recover@t=10000",
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scenario != spec.Scenario {
		t.Fatalf("scenario lost in JSON: %q", back.Scenario)
	}
	// And a plain spec's JSON does not mention it at all.
	plain, _ := json.Marshal(RunSpec{Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1)})
	if strings.Contains(string(plain), "scenario") {
		t.Fatalf("empty scenario leaks into JSON: %s", plain)
	}
}

// TestGoalDetailGateOnlyDropsDetail pins the satellite perf gate: with
// NoGoalDetail the simulated run is bit-for-bit unchanged (same events,
// makespan, messages) — only the QueueDelay/GoalHops/GoalDist records
// are empty.
func TestGoalDetailGateOnlyDropsDetail(t *testing.T) {
	base := RunSpec{
		Topo: Grid(5), Workload: Fib(9), Strategy: CWN(3, 1),
		Arrival: PoissonArrivals(50, 60),
	}
	on, err := base.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	gated := base
	gated.NoGoalDetail = true
	off, err := gated.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if on.Makespan != off.Makespan || on.Stats.Events != off.Stats.Events ||
		on.Stats.TotalBusy != off.Stats.TotalBusy || on.Stats.TotalMessages() != off.Stats.TotalMessages() {
		t.Fatal("goal-detail gate changed the simulated run")
	}
	if on.Stats.GoalHops.Total() == 0 || on.Stats.QueueDelay.N() == 0 {
		t.Fatal("detail-on run recorded no detail")
	}
	if off.Stats.GoalHops.Total() != 0 || off.Stats.GoalDist.Total() != 0 || off.Stats.QueueDelay.N() != 0 {
		t.Fatalf("gated-off run still recorded detail: hops=%d dist=%d delays=%d",
			off.Stats.GoalHops.Total(), off.Stats.GoalDist.Total(), off.Stats.QueueDelay.N())
	}
}

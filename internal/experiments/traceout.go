package experiments

import (
	"os"

	"cwnsim/internal/trace"
)

// WriteTrace executes spec once with a span-folding trace sink attached
// and writes the causal span export — Chrome trace-event JSON, loadable
// in Perfetto or chrome://tracing — to path. The traced run is separate
// from any batch execution of the same spec: a sink must not be shared
// across concurrently executing specs, and tracing every cell of a
// sweep would dominate its memory. The run is deterministic for the
// spec's seed, sharded or not (sharded runs replay the merged event
// stream at finalize), so the exported spans are reproducible.
func WriteTrace(spec RunSpec, path string) error {
	var sp trace.Spans
	spec.Trace = &sp
	if _, err := spec.ExecuteErr(); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sp.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

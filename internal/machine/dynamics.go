package machine

import (
	"fmt"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
)

// This file applies scripted environment events (internal/scenario) to
// a running machine: PE speed changes with in-flight rescaling, compute
// blackouts with drain/requeue semantics, link degradation and outages,
// and arrival-rate shocks. Nothing here runs unless Config.Scenario is
// non-empty.

// applyScenarioEvent dispatches one scripted event at its firing time.
func (m *Machine) applyScenarioEvent(ev scenario.Event) {
	switch ev.Kind {
	case scenario.SlowPE:
		for _, id := range ev.Targets(len(m.pes)) {
			pe := m.pes[id]
			m.setSpeed(pe, pe.nominalSpeed()*ev.Factor)
		}
	case scenario.RestorePE:
		targets := ev.Targets(len(m.pes))
		if targets == nil {
			for _, pe := range m.pes {
				if pe.Speed() != pe.nominalSpeed() {
					m.setSpeed(pe, pe.nominalSpeed())
				}
			}
			return
		}
		for _, id := range targets {
			m.setSpeed(m.pes[id], m.pes[id].nominalSpeed())
		}
	case scenario.FailPE:
		for _, id := range ev.Targets(len(m.pes)) {
			m.failPE(m.pes[id])
		}
	case scenario.RecoverPE:
		targets := ev.Targets(len(m.pes))
		if targets == nil {
			for _, pe := range m.pes {
				if pe.failed {
					m.recoverPE(pe)
				}
			}
			return
		}
		for _, id := range targets {
			m.recoverPE(m.pes[id])
		}
	case scenario.DegradeLink:
		m.setLink(ev.A, ev.B, ev.Factor, ev.Factor == 0)
	case scenario.RestoreLink:
		m.restoreLink(ev.A, ev.B)
	case scenario.LoadShock:
		m.rateMul = ev.Factor
	}
}

// nominalSpeed is the PE's configured base speed: PESpeeds[i] on a
// heterogeneous machine, 1 otherwise.
func (pe *PE) nominalSpeed() float64 {
	if s := pe.m.cfg.PESpeeds; s != nil {
		return s[pe.id]
	}
	return 1
}

// setSpeed changes the PE's service speed, rescaling any in-flight
// service proportionally: the remaining duration stretches or shrinks
// by oldSpeed/newSpeed, so work already performed is kept rather than
// restarted. Busy-time accounting is adjusted to the new completion.
func (m *Machine) setSpeed(pe *PE, speed float64) {
	old := pe.Speed()
	pe.speed = speed
	if !pe.busy || old == speed {
		return
	}
	now := m.eng.Now()
	remaining := pe.serviceEnd - now
	if remaining <= 0 {
		return // completion already due this instant
	}
	scaled := sim.Time(float64(remaining) * old / speed)
	if scaled < 1 {
		scaled = 1
	}
	if scaled == remaining {
		return
	}
	pe.svc.Stop()
	pe.busyTime += scaled - remaining
	pe.serviceEnd = now + scaled
	pe.svc.Schedule(scaled)
}

// failPE blacks out a PE's compute. The in-service message is cut off:
// a goal is evacuated (its partial work lost), an interrupted response
// goes back to the queue head to be combined first on recovery. Queued
// goals are evacuated to the nearest live PE in queue order; queued
// responses and pending tasks freeze in place, because the tasks
// awaiting them live here. The communication co-processor stays up —
// routing through the PE and control handling still work — and the PE
// advertises FailedLoad so load-comparing strategies steer around it.
func (m *Machine) failPE(pe *PE) {
	if pe.failed {
		return
	}
	live := 0
	for _, p := range m.pes {
		if !p.failed {
			live++
		}
	}
	if live <= 1 {
		panic("machine: scenario would fail every PE")
	}
	now := m.eng.Now()
	pe.failed = true
	pe.failedAt = now

	// The refuge is invariant across this evacuation (liveness only
	// changes between events): resolve it once, not per goal.
	refuge := m.nearestLive(pe.id)

	if pe.busy {
		it := pe.inService
		pe.inService = item{}
		remaining := pe.serviceEnd - now
		pe.svc.Stop()
		pe.busy = false
		if remaining > 0 {
			pe.busyTime -= remaining // the cut-off tail never happens
		}
		switch it.kind {
		case itemGoal:
			m.stats.ServiceAborts++
			m.evacuateGoal(pe.id, refuge, it.goal)
		case itemResponse:
			pe.ready.pushFront(it)
		}
	}

	// Evacuate queued goals in FIFO order, preserving their relative
	// ages at the refuge PE.
	for i := 0; i < pe.ready.len(); {
		if it := pe.ready.at(i); it.kind == itemGoal {
			g := it.goal
			pe.ready.removeAt(i)
			m.evacuateGoal(pe.id, refuge, g)
		} else {
			i++
		}
	}

	// Tell the neighborhood immediately (one broadcast per attached
	// channel, charged like any load word) rather than waiting for the
	// next periodic tick to advertise FailedLoad.
	m.broadcastLoad(pe)
}

// recoverPE ends a blackout: frozen responses resume service and the
// PE re-advertises its real load.
func (m *Machine) recoverPE(pe *PE) {
	if !pe.failed {
		return
	}
	pe.failed = false
	pe.downTime += m.eng.Now() - pe.failedAt
	if !pe.busy && pe.ready.len() > 0 {
		pe.startNext()
	}
	m.broadcastLoad(pe)
}

// requeueGoal evacuates a goal arriving at failed PE `from` to the
// nearest live PE, travelling hop by hop on the co-processors like any
// routed goal. Arrival-time redirects resolve the refuge per call —
// liveness genuinely varies between deliveries; batch evacuations in
// failPE resolve it once and use evacuateGoal directly.
func (m *Machine) requeueGoal(from int, g *Goal) {
	m.evacuateGoal(from, m.nearestLive(from), g)
}

// evacuateGoal ships one goal off failed PE `from` to the chosen
// refuge, counting it.
func (m *Machine) evacuateGoal(from, refuge int, g *Goal) {
	m.stats.GoalsRequeued++
	m.routeGoal(from, refuge, g)
}

// nearestLive returns the live PE topologically closest to `from`
// (lowest id on ties). Panics when every PE is failed — scripts cannot
// reach that state (failPE refuses to kill the last live PE).
func (m *Machine) nearestLive(from int) int {
	best, bestDist := -1, int(^uint(0)>>1)
	for i, p := range m.pes {
		if p.failed || i == from {
			continue
		}
		if d := m.topo.Dist(from, i); d < bestDist {
			best, bestDist = i, d
		}
	}
	if best < 0 {
		panic("machine: no live PE to requeue onto")
	}
	return best
}

// setLink applies a degradation factor (or outage) to every channel
// between a and b. A positive factor on a downed channel brings it
// back up degraded — the scripted state is absolute, not sticky — so
// messages held during the outage flush at the new (stretched) pace.
func (m *Machine) setLink(a, b int, factor float64, down bool) {
	for _, ci := range m.linkChannels(a, b) {
		ch := m.chans[ci]
		if down {
			ch.down = true
			continue
		}
		ch.degrade = factor
		m.bringUp(ch)
	}
}

// restoreLink returns every channel between a and b to nominal,
// flushing messages held during an outage in arrival order.
func (m *Machine) restoreLink(a, b int) {
	for _, ci := range m.linkChannels(a, b) {
		ch := m.chans[ci]
		ch.degrade = 0
		m.bringUp(ch)
	}
}

// bringUp ends a channel outage, transmitting the held messages in
// arrival order; a channel that is not down is untouched.
func (m *Machine) bringUp(ch *chanState) {
	if !ch.down {
		return
	}
	ch.down = false
	held := ch.held
	ch.held = nil
	for _, h := range held {
		m.transmit(ch, h.dur, h.w)
	}
}

func (m *Machine) linkChannels(a, b int) []int {
	chs := m.topo.ChannelsBetween(a, b)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: scenario link event: PEs %d and %d share no channel", a, b))
	}
	return chs
}

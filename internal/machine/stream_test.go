package machine

import (
	"math"
	"testing"

	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// runStream builds and runs a stream machine on a single PE with the
// keep-local strategy — the simplest deterministic server.
func runStream(t *testing.T, src JobSource, cfg Config) *Stats {
	t.Helper()
	return NewStream(topology.NewSingle(), src, keepLocal{}, cfg).Run()
}

func injectionTimes(st *Stats) []sim.Time {
	out := make([]sim.Time, len(st.JobRecords))
	for i, r := range st.JobRecords {
		out[i] = r.InjectedAt
	}
	return out
}

func TestPoissonArrivalsDeterministicPerSeed(t *testing.T) {
	tree := workload.NewFib(5)
	cfg := DefaultConfig()
	cfg.Seed = 42

	a := runStream(t, NewPoisson(tree, 100, 20), cfg)
	b := runStream(t, NewPoisson(tree, 100, 20), cfg)
	if !a.Completed || !b.Completed {
		t.Fatal("streams did not drain")
	}
	ta, tb := injectionTimes(a), injectionTimes(b)
	if len(ta) != 20 {
		t.Fatalf("completed %d jobs, want 20", len(ta))
	}
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("injection %d differs across identical seeds: %d vs %d", i, ta[i], tb[i])
		}
	}

	cfg.Seed = 43
	c := runStream(t, NewPoisson(tree, 100, 20), cfg)
	tc := injectionTimes(c)
	same := true
	for i := range ta {
		if ta[i] != tc[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical Poisson arrival times")
	}
}

func TestPoissonArrivalsDoNotPerturbEngineStream(t *testing.T) {
	// The arrival process draws from its own seeded stream: a machine's
	// engine must consume the exact same random sequence whether the
	// source drew arrival gaps or not. Compare a fresh engine's draws
	// against one belonging to a machine whose Poisson source has
	// already emitted jobs.
	tree := workload.NewFib(3)
	cfg := DefaultConfig()
	cfg.StaggerTicks = false // no construction-time draws
	m := NewStream(topology.NewSingle(), NewPoisson(tree, 50, 5), keepLocal{}, cfg)
	m.Run()
	got := m.Engine().Rng().Int63()
	want := sim.NewEngine(cfg.Seed).Rng().Int63()
	if got != want {
		t.Fatalf("engine stream perturbed by arrival draws: %d vs %d", got, want)
	}
}

func TestFixedIntervalSojournAccounting(t *testing.T) {
	tree := workload.NewFib(5)
	cfg := DefaultConfig()

	// Reference: one job alone takes exactly this long on one PE.
	solo := New(topology.NewSingle(), tree, keepLocal{}, cfg).Run()
	if !solo.Completed {
		t.Fatal("reference run did not complete")
	}
	soloTime := solo.Makespan

	// A gap wider than the service time means no queueing between jobs:
	// every sojourn equals the solo makespan exactly.
	const jobs = 7
	gap := soloTime + 10
	st := runStream(t, NewFixedInterval(tree, gap, jobs), cfg)
	if !st.Completed {
		t.Fatal("stream did not drain")
	}
	if st.JobsInjected != jobs || st.JobsDone != jobs {
		t.Fatalf("jobs injected/done = %d/%d, want %d/%d", st.JobsInjected, st.JobsDone, jobs, jobs)
	}
	if len(st.JobRecords) != jobs {
		t.Fatalf("JobRecords = %d, want %d", len(st.JobRecords), jobs)
	}
	for i, r := range st.JobRecords {
		if want := sim.Time(i) * gap; r.InjectedAt != want {
			t.Errorf("job %d injected at %d, want %d", i, r.InjectedAt, want)
		}
		if r.Sojourn() != soloTime {
			t.Errorf("job %d sojourn = %d, want %d (uncontended)", i, r.Sojourn(), soloTime)
		}
		if r.Result != workload.FibValue(5) {
			t.Errorf("job %d result = %d, want %d", i, r.Result, workload.FibValue(5))
		}
	}
	if st.Sojourn.N() != jobs {
		t.Fatalf("Sojourn sample n = %d, want %d", st.Sojourn.N(), jobs)
	}
	if got, want := st.Sojourn.Mean(), float64(soloTime); got != want {
		t.Errorf("mean sojourn = %f, want %f", got, want)
	}
	if got := st.SojournP99(); got != float64(soloTime) {
		t.Errorf("p99 sojourn = %f, want %f", got, float64(soloTime))
	}
	// An overlapping stream must queue: sojourns strictly above solo.
	tight := runStream(t, NewFixedInterval(tree, soloTime/2, jobs), cfg)
	if tight.SojournP99() <= float64(soloTime) {
		t.Errorf("overlapping stream p99 = %f, want > %d (queueing)", tight.SojournP99(), soloTime)
	}
	if tight.Makespan <= st.Makespan/2 {
		t.Errorf("tight stream finished implausibly early: %d", tight.Makespan)
	}
}

func TestBurstArrivalsLandTogether(t *testing.T) {
	tree := workload.NewFib(3)
	cfg := DefaultConfig()
	st := runStream(t, NewBurst(tree, 3, 1000, 2), cfg)
	if !st.Completed {
		t.Fatal("stream did not drain")
	}
	if st.JobsInjected != 6 {
		t.Fatalf("JobsInjected = %d, want 6", st.JobsInjected)
	}
	times := injectionTimes(st)
	for i, want := range []sim.Time{0, 0, 0, 1000, 1000, 1000} {
		if times[i] != want {
			t.Fatalf("injection times = %v, want bursts at 0 and 1000", times)
		}
	}
}

func TestWarmupExcludesEarlyJobs(t *testing.T) {
	tree := workload.NewFib(5)
	cfg := DefaultConfig()
	const jobs = 10
	const gap = 500
	cfg.Warmup = 2*gap + 1 // jobs 0..2 injected before the cutoff

	st := runStream(t, NewFixedInterval(tree, gap, jobs), cfg)
	if !st.Completed {
		t.Fatal("stream did not drain")
	}
	if st.Sojourn.N() != jobs {
		t.Fatalf("Sojourn n = %d, want %d (all jobs)", st.Sojourn.N(), jobs)
	}
	if st.SteadySojourn.N() != jobs-3 {
		t.Fatalf("SteadySojourn n = %d, want %d (warm-up excluded)", st.SteadySojourn.N(), jobs-3)
	}
	if u := st.SteadyUtilization(); u <= 0 || u > 1 {
		t.Fatalf("SteadyUtilization = %f, want in (0,1]", u)
	}
}

func TestSaturatedStreamReportsIncomplete(t *testing.T) {
	// One PE served a new job every 10 units needs far more than 10
	// units per job: the stream outruns the machine and the run must
	// stop at MaxTime with jobs in flight, not crash.
	tree := workload.NewFib(5)
	cfg := DefaultConfig()
	cfg.MaxTime = 2000
	st := runStream(t, NewFixedInterval(tree, 10, 1000), cfg)
	if st.Completed {
		t.Fatal("saturated stream reported complete")
	}
	if st.JobsDone >= st.JobsInjected {
		t.Fatalf("jobs done %d >= injected %d under saturation", st.JobsDone, st.JobsInjected)
	}
	if st.Makespan != cfg.MaxTime {
		t.Fatalf("saturated makespan = %d, want horizon %d", st.Makespan, cfg.MaxTime)
	}
}

// dropGoals loses every spawned child goal: the buggy-strategy case
// stall detection exists for.
type dropGoals struct{}

func (dropGoals) Name() string                { return "drop" }
func (dropGoals) Setup(*Machine)              {}
func (dropGoals) NewNode(pe *PE) NodeStrategy { return AdaptNode(dropNode{}) }

type dropNode struct{}

func (dropNode) PlaceNewGoal(*Goal)     {} // dropped on the floor
func (dropNode) GoalArrived(*Goal, int) {}
func (dropNode) Control(int, any)       {}

func TestLostGoalReportsStalledNotSaturated(t *testing.T) {
	tree := workload.NewFib(5)
	cfg := DefaultConfig()
	cfg.MaxTime = 10_000
	st := NewStream(topology.NewSingle(), NewFixedInterval(tree, 50, 3), dropGoals{}, cfg).Run()
	if st.Completed {
		t.Fatal("run with dropped goals completed")
	}
	if !st.Stalled {
		t.Fatal("lost goals not flagged as stalled")
	}

	// Genuine saturation — work still queued at the horizon — must NOT
	// be flagged as a stall.
	sat := runStream(t, NewFixedInterval(tree, 10, 1000), Config{
		Seed: 1, GrainTime: 10, CombineTime: 5, GoalHopTime: 2, RespHopTime: 2,
		CtrlHopTime: 1, LoadInterval: 20, MaxTime: 2000,
	})
	if sat.Completed || sat.Stalled {
		t.Fatalf("saturated run: completed=%v stalled=%v, want false/false", sat.Completed, sat.Stalled)
	}
}

func TestEmptySteadySampleIsNaNNotZero(t *testing.T) {
	tree := workload.NewFib(5)
	cfg := DefaultConfig()
	cfg.Warmup = 1_000_000 // past any plausible completion
	st := runStream(t, NewFixedInterval(tree, 100, 3), cfg)
	if st.SteadySojourn.N() != 0 {
		t.Fatalf("steady sample n = %d, want 0", st.SteadySojourn.N())
	}
	for name, v := range map[string]float64{
		"mean": st.MeanSojourn(), "p50": st.SojournP50(), "p99": st.SojournP99(),
	} {
		if !math.IsNaN(v) {
			t.Errorf("%s sojourn of empty steady sample = %f, want NaN", name, v)
		}
	}
}

func TestSingleJobSourceMatchesNew(t *testing.T) {
	// New(tree) and NewStream(SingleJob(tree)) are the same machine:
	// identical makespan, event count and stats labels.
	tree := workload.NewFib(8)
	cfg := DefaultConfig()
	a := New(topology.NewSingle(), tree, keepLocal{}, cfg).Run()
	b := runStream(t, NewSingleJob(tree), cfg)
	if a.Makespan != b.Makespan || a.Events != b.Events || a.Result != b.Result {
		t.Fatalf("single-job stream diverged: makespan %d/%d events %d/%d result %d/%d",
			a.Makespan, b.Makespan, a.Events, b.Events, a.Result, b.Result)
	}
	if a.Workload != b.Workload {
		t.Fatalf("workload label %q vs %q", a.Workload, b.Workload)
	}
	if b.JobsDone != 1 || len(b.JobRecords) != 1 || b.JobRecords[0].Sojourn() != b.Makespan {
		t.Fatalf("single job record wrong: %+v", b.JobRecords)
	}
}

package machine

import (
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
	"cwnsim/internal/workload"
)

// Machine wires a topology, a workload tree and a strategy into one
// runnable simulation. Build with New, run once with Run.
type Machine struct {
	eng   *sim.Engine
	topo  *topology.Topology
	cfg   Config
	strat Strategy
	tree  *workload.Tree

	pes   []*PE
	chans []*chanState
	stats *Stats

	nextGoalID int64
	completed  bool
	finishedAt sim.Time
	result     int64

	prevBusySample sim.Time
	prevBusyPerPE  []sim.Time
	frameBuf       []float64
}

// emit records a trace event if tracing is enabled.
func (m *Machine) emit(kind trace.Kind, pe, other int, goal int64) {
	if m.cfg.Trace != nil {
		m.cfg.Trace.Record(trace.Event{At: m.eng.Now(), Kind: kind, PE: pe, Other: other, Goal: goal})
	}
}

// New constructs a machine. The tree and topology are read-only and may
// be shared across machines; the strategy value must be fresh per run if
// it carries mutable global state (the core package strategies are
// stateless templates and safe to reuse).
func New(topo *topology.Topology, tree *workload.Tree, strat Strategy, cfg Config) *Machine {
	cfg.validate(topo.Size())
	m := &Machine{
		eng:   sim.NewEngine(cfg.Seed),
		topo:  topo,
		cfg:   cfg,
		strat: strat,
		tree:  tree,
	}
	m.stats = newStats(topo, tree, strat.Name())

	m.chans = make([]*chanState, len(topo.Channels()))
	for i, ch := range topo.Channels() {
		m.chans[i] = &chanState{id: ch.ID, members: ch.Members}
	}

	m.pes = make([]*PE, topo.Size())
	for i := range m.pes {
		nbrs := topo.Neighbors(i)
		pe := &PE{
			m:        m,
			id:       i,
			pending:  make(map[int64]*pendingTask),
			nbrs:     nbrs,
			nbrIndex: make(map[int]int, len(nbrs)),
			nbrLoad:  make([]int32, len(nbrs)),
			nbrSeen:  make([]sim.Time, len(nbrs)),
		}
		for j, nb := range nbrs {
			pe.nbrIndex[nb] = j
			pe.nbrSeen[j] = -1
		}
		m.pes[i] = pe
	}

	strat.Setup(m)
	for _, pe := range m.pes {
		pe.node = strat.NewNode(pe)
		if pe.node == nil {
			panic("machine: strategy returned nil NodeStrategy")
		}
	}

	// Periodic load-information broadcast (the machine-level mechanism
	// CWN relies on; strategies may layer their own control traffic).
	if cfg.LoadInterval > 0 {
		for _, pe := range m.pes {
			pe := pe
			m.NewTicker(pe, cfg.LoadInterval, func() { m.broadcastLoad(pe) })
		}
	}

	if cfg.SampleInterval > 0 {
		if cfg.MonitorPE {
			m.prevBusyPerPE = make([]sim.Time, len(m.pes))
			m.frameBuf = make([]float64, len(m.pes))
		}
		m.NewTicker(nil, cfg.SampleInterval, m.sample)
	}
	return m
}

// Engine exposes the discrete-event engine (e.g. for Now or the seeded
// random stream).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Topology returns the interconnection network.
func (m *Machine) Topology() *topology.Topology { return m.topo }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Tree returns the workload being executed.
func (m *Machine) Tree() *workload.Tree { return m.tree }

// NumPEs returns the machine size.
func (m *Machine) NumPEs() int { return len(m.pes) }

// PE returns processing element i.
func (m *Machine) PE(i int) *PE { return m.pes[i] }

// Completed reports whether the root response has been delivered.
func (m *Machine) Completed() bool { return m.completed }

// NewTicker registers a periodic process. When StaggerTicks is set the
// phase is drawn uniformly from the first period (per registration, from
// the run's seeded stream) so PEs do not act in lockstep; pe is only
// used to document ownership and may be nil for machine-level processes.
func (m *Machine) NewTicker(pe *PE, period sim.Time, fn func()) *sim.Ticker {
	var phase sim.Time
	if m.cfg.StaggerTicks && period > 1 {
		phase = sim.Time(m.eng.Rng().Int63n(int64(period)))
	}
	return sim.NewTicker(m.eng, period, phase, fn)
}

// newGoal mints a goal for task, created on PE origin for parent goal
// parentID living on parentPE.
func (m *Machine) newGoal(task *workload.Task, parentPE int, parentID int64) *Goal {
	g := &Goal{
		ID:        m.nextGoalID,
		Task:      task,
		Origin:    parentPE,
		ParentPE:  parentPE,
		ParentID:  parentID,
		CreatedAt: m.eng.Now(),
	}
	m.nextGoalID++
	if parentPE >= 0 {
		m.emit(trace.GoalCreated, parentPE, -1, g.ID)
	}
	return g
}

// broadcastLoad sends this PE's current load to all neighbors: one
// transaction per attached channel (a single bus transaction reaches all
// bus-mates).
func (m *Machine) broadcastLoad(pe *PE) {
	load := pe.Load()
	m.broadcast(pe, MsgLoad, m.cfg.CtrlHopTime, func(dst *PE, from int) {
		dst.noteLoad(from, load)
	})
}

// broadcast performs one transmission per channel attached to pe,
// delivering to every other channel member. A neighbor reachable via two
// channels (a double-lattice pair) hears the broadcast twice; deliveries
// must therefore be idempotent, which load and proximity updates are.
func (m *Machine) broadcast(pe *PE, kind MsgKind, dur sim.Time, deliver func(dst *PE, from int)) {
	from := pe.id
	for _, ci := range m.topo.ChannelsOf(from) {
		ch := m.chans[ci]
		m.stats.MsgCounts[kind]++
		m.transmit(ch, dur, func() {
			for _, member := range ch.members {
				if member != from {
					deliver(m.pes[member], from)
				}
			}
		})
	}
}

// respond sends goal g's computed value from the PE that executed it
// back to the parent's PE (or completes the run for the root goal).
func (m *Machine) respond(fromPE int, g *Goal, value int64) {
	if g.ParentPE < 0 {
		m.result = value
		m.completed = true
		m.finishedAt = m.eng.Now()
		m.eng.Stop()
		return
	}
	m.emit(trace.RespSent, fromPE, g.ParentPE, g.ID)
	m.routeResponse(fromPE, response{dstPE: g.ParentPE, goalID: g.ParentID, value: value})
}

// routeResponse moves a response one shortest-path hop at a time toward
// its destination PE, charging each channel. Forwarding happens on the
// co-processor: no PE compute time.
func (m *Machine) routeResponse(cur int, r response) {
	if cur == r.dstPE {
		m.stats.RespHops.Add(r.hops)
		m.emit(trace.RespDelivered, cur, -1, r.goalID)
		m.pes[cur].enqueue(item{kind: itemResponse, resp: r})
		return
	}
	next := m.topo.NextHop(cur, r.dstPE)
	chs := m.topo.ChannelsBetween(cur, next)
	ch := m.pickChannel(chs)
	m.stats.MsgCounts[MsgResponse]++
	r.hops++
	sentLoad := m.pes[cur].Load()
	m.transmit(ch, m.cfg.RespHopTime, func() {
		if m.cfg.PiggybackLoad {
			m.pes[next].noteLoad(cur, sentLoad)
		}
		m.routeResponse(next, r)
	})
}

// sample appends one utilization time-series point: the fraction of
// PE-time spent busy during the window just ended, as a percentage
// (matching the paper's plots 11-16).
func (m *Machine) sample() {
	var busy sim.Time
	for _, pe := range m.pes {
		busy += pe.committedBusy()
	}
	window := m.cfg.SampleInterval * sim.Time(len(m.pes))
	util := 100 * float64(busy-m.prevBusySample) / float64(window)
	m.prevBusySample = busy
	m.stats.Timeline.Add(float64(m.eng.Now()), util)

	if m.prevBusyPerPE != nil {
		for i, pe := range m.pes {
			b := pe.committedBusy()
			m.frameBuf[i] = float64(b-m.prevBusyPerPE[i]) / float64(m.cfg.SampleInterval)
			m.prevBusyPerPE[i] = b
		}
		m.stats.Monitor.Append(m.eng.Now(), m.frameBuf)
	}
}

// committedBusy returns busy time accrued up to now (excluding the not
// yet elapsed remainder of an in-service message).
func (pe *PE) committedBusy() sim.Time {
	b := pe.busyTime
	if pe.busy && pe.serviceEnd > pe.m.eng.Now() {
		b -= pe.serviceEnd - pe.m.eng.Now()
	}
	return b
}

// Run executes the simulation until the root response is delivered (or
// MaxTime elapses) and returns the collected statistics. A machine runs
// exactly once.
func (m *Machine) Run() *Stats {
	if m.stats.Makespan != 0 || m.eng.Now() != 0 {
		panic("machine: Run called twice")
	}
	root := m.newGoal(m.tree.Root, -1, -1)
	root.Origin = m.cfg.RootPE
	m.emit(trace.GoalCreated, m.cfg.RootPE, -1, root.ID)
	// The root goal arrives from the outside world: it is accepted at
	// RootPE directly rather than placed by the strategy, so both
	// competitors start from the identical state.
	m.pes[m.cfg.RootPE].Accept(root)

	m.eng.RunUntil(m.cfg.MaxTime)
	m.finalize()
	return m.stats
}

func (m *Machine) finalize() {
	s := m.stats
	s.Completed = m.completed
	s.Result = m.result
	if m.completed {
		s.Makespan = m.finishedAt
	} else {
		s.Makespan = m.eng.Now()
	}
	s.Events = m.eng.Processed()
	for i, pe := range m.pes {
		b := pe.committedBusy()
		s.BusyPerPE[i] = b
		s.TotalBusy += b
		s.GoalsPerPE[i] = pe.goalsExecuted
	}
	for i, ch := range m.chans {
		s.ChannelBusy[i] = ch.busyTotal
		s.ChannelMsgs[i] = ch.messages
	}
}

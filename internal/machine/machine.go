package machine

import (
	"math"
	"math/rand"
	"sort"
	"sync/atomic"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
	"cwnsim/internal/workload"
)

// Machine wires a topology, a job source and a strategy into one
// runnable simulation. Build with New (the paper's one-tree closed
// system) or NewStream (an open system under arrival traffic), run once
// with Run.
type Machine struct {
	eng    *sim.Engine
	topo   *topology.Topology
	cfg    Config
	strat  Strategy
	source JobSource
	tree   *workload.Tree // the single-job tree; nil for stream machines

	// pes[i] points at PE i (nil for PEs owned by other shards). The PE
	// structs themselves live contiguously in peBlock — one slab per
	// machine, indexed by lx = id - peLo — so walking the owned block
	// walks memory linearly instead of chasing a million scattered
	// allocations.
	pes     []*PE
	peBlock []PE

	// Struct-of-arrays hot state: the per-event scalars every service
	// start/completion touches live in machine-level parallel slices
	// indexed by PE.lx, not in the (much colder) PE struct, so the event
	// loop's working set is a few dense arrays. peSpeed stays nil while
	// every PE runs at nominal speed — the unscripted homogeneous fast
	// path allocates and reads nothing.
	peBusy       []bool
	peFailed     []bool
	peServiceEnd []sim.Time
	peBusyTime   []sim.Time
	peSpeed      []float64

	// chans holds the channel FIFO-server states by value in one
	// contiguous slice. The slice never grows after construction, so
	// interior *chanState pointers stay valid for the life of the run;
	// member lists are subslices of one flat backing array.
	chans []chanState
	// chanIdx/chanIDs are the sparse channel map of a multi-shard
	// machine: chanIdx[global] is the index into chans (-1 when no
	// owned PE attaches to the channel), chanIDs[local] maps back.
	// Both nil on sequential and one-shard machines, where chans is
	// dense and globally indexed.
	chanIdx []int32
	chanIDs []int32

	// chScratch is the reusable candidate buffer for per-hop channel
	// selection (AppendChannelsBetween): implicit topologies compute the
	// list into it, materialized ones copy their cached pair list — either
	// way the routing hot path allocates nothing. Valid until the next
	// routing call.
	chScratch []int

	// loadTickers is the contiguous block holding the per-PE load
	// broadcast tickers, initialized in place (sim.Ticker.Init). Never
	// resliced or copied after construction: each ticker's embedded
	// timer event points back into the block.
	loadTickers []sim.Ticker

	stats *Stats

	nextGoalID int64
	srcRng     *rand.Rand
	obsRng     *rand.Rand //simlint:obsstream observer (sampling) phases; nil unless sampling
	srcDone    bool       // the source has been exhausted
	inFlight   int64      // jobs injected but not yet responded
	started    bool
	completed  bool
	finishedAt sim.Time
	result     int64

	arrival  *sim.Timer     // reusable next-arrival event
	nextTree *workload.Tree // the tree the armed arrival injects
	rateMul  float64        // scenario LoadShock multiplier on the offered rate (1 = nominal)

	// scn is the expanded scenario script actually scheduled (chaos
	// generators resolved into concrete events); nil when unscripted.
	scn *scenario.Script
	// lossy is set when the scenario contains crash (state-loss)
	// events: it arms the epoch staleness checks and tolerates orphaned
	// responses. Never set otherwise, so blackout-only and unscripted
	// runs keep the strict lost-goal panics.
	lossy bool
	// ckpt is set when the scenario contains checkpoint ticks: it arms
	// the per-job progress bookkeeping on the execution hot path (see
	// jobState). Never set otherwise — unscripted and blackout-only
	// runs pay nothing.
	ckpt bool
	// lastCkptAt stamps the most recent checkpoint tick (-1 before the
	// first): jobs compare their ckptSeen against it to snapshot
	// lazily.
	lastCkptAt sim.Time
	// liveJobs is the home shard's registry of injected-but-unfinished
	// jobs, kept only on multi-shard checkpoint runs: the coordinator
	// walks it at each tick's barrier to snapshot every live job's
	// position eagerly (the sequential lazy snapshot would race across
	// shards). Entries are appended at injection and compacted — dead
	// jobs have a nil tree — during the same barrier walk, the only
	// reader.
	liveJobs []*jobState
	// retryPending counts crash retries armed on a backoff timer but
	// not yet re-injected, so stall detection doesn't mistake the quiet
	// backoff gap for a lost-goal deadlock.
	retryPending int64

	// winSoj collects the sojourns completing inside the current
	// sampling window; non-nil only for scenario runs with sampling
	// enabled, where each window's p99 feeds Stats.SojournWindows — the
	// series recovery analysis reads.
	winSoj []float64
	// injSoj buckets sojourns by the window their job was INJECTED in
	// (index = injectedAt/SampleInterval); finalize turns each bucket
	// into one Stats.InjSojournWindows p99 point. The injection keying
	// isolates what newly arriving jobs experienced, where winSoj lets
	// blackout stragglers echo into post-restore windows. Same gate as
	// winSoj.
	injSoj [][]float64

	// Free lists: the hot path recycles wire messages, goals, pending
	// tasks and job states instead of allocating per message/goal. The
	// lists are slice stacks, not linked lists: the garbage collector
	// scans one contiguous pointer array per list instead of chasing a
	// nextFree chain through the whole retained working set — the
	// pointer-chasing that made cross-run pooling (machine.Pool) slower
	// than allocating despite the saved allocations (PR 5; numbers in
	// the ledger's pooling section). slabFree recycles pending-slab
	// slot arrays the same way.
	msgFree     []*wireMsg
	goalFree    []*Goal
	pendingFree []*pendingTask
	jobFree     []*jobState
	slabFree    [][]pendingSlot

	// Arena tails: free-list misses carve objects out of these chunks
	// (arenaChunk objects at a time) instead of allocating singletons, so
	// the run's working set of goals, messages, pending tasks and job
	// states occupies a few contiguous blocks. A carved object is a zero
	// value, exactly like the singleton allocation it replaces — results
	// are unaffected, only the layout and allocation count change.
	goalChunk []Goal
	msgChunk  []wireMsg
	pendChunk []pendingTask
	jobChunk  []jobState

	prevBusySample sim.Time
	prevSampleAt   sim.Time
	prevBusyPerPE  []sim.Time
	frameBuf       []float64
	warmupBusy     sim.Time

	// goalsInTransit/respsInTransit count payload messages currently on
	// a channel, so a run that hits MaxTime can tell a lost goal (jobs
	// in flight but nothing anywhere the machine can see) from genuine
	// saturation (work still queued or moving).
	goalsInTransit int64
	respsInTransit int64

	// injStride is the current injection-window width of injSoj in
	// multiples of SampleInterval: 1 until a SeriesBound forces adjacent
	// buckets to merge pairwise (doubling the stride), the bucket-level
	// analogue of Series.thin.
	injStride int

	// Sharding (nil/zero on the sequential machine). A sharded group's
	// shard s is a Machine owning only the PE index block
	// [peLo, peHi): pes and stats keep full-length arrays with remote
	// entries nil/zero, chans holds this shard's own copy of every
	// channel (occupancy accrues per side), and xout[d] queues wire
	// messages addressed to shard d until the coordinator drains them at
	// the next window barrier. lastDone tracks this shard's latest job
	// completion for the group's deterministic finish rule.
	grp      *shardGroup
	shardID  int
	peLo     int
	peHi     int
	xout     [][]xmsg
	lastDone sim.Time

	// Shard-local observability capture (k >= 2 groups only). The Sink
	// contract is single-goroutine, so a multi-shard run never calls
	// Record live: each shard appends its events to traceBuf in its own
	// engine order and the coordinator replays the union, sorted by
	// (At, shard, buffer index), at finalize. shardSamples holds the
	// shard's deferred sampling partials the same way — one entry per
	// globally synchronized sample instant, folded into full-machine
	// series points by shardGroup.finalize.
	traceBuf     []trace.Event
	shardSamples []shardSample

	// traceCollector is cfg.Trace downcast once at construction, so the
	// injection path can pre-size the event slice with a goal-count hint
	// instead of re-doubling it as a long traced run appends.
	traceCollector *trace.Collector
}

// emit records a trace event if tracing is enabled. Multi-shard runs
// buffer instead of recording live: the Sink sees nothing until the
// coordinator replays the merged stream at finalize (a one-shard group
// reproduces the sequential Record call sequence bit for bit, so it
// records directly).
func (m *Machine) emit(kind trace.Kind, pe, other int, goal int64) {
	if m.cfg.Trace == nil {
		return
	}
	ev := trace.Event{At: m.eng.Now(), Kind: kind, PE: pe, Other: other, Goal: goal}
	if m.grp != nil && m.grp.k > 1 {
		m.traceBuf = append(m.traceBuf, ev)
		return
	}
	m.cfg.Trace.Record(ev)
}

// New constructs a closed-system machine executing one tree to
// completion — the paper's experiment. The tree and topology are
// read-only and may be shared across machines; the strategy value must
// be fresh per run if it carries mutable global state (the core package
// strategies are stateless templates and safe to reuse).
func New(topo *topology.Topology, tree *workload.Tree, strat Strategy, cfg Config) *Machine {
	m := NewStream(topo, NewSingleJob(tree), strat, cfg)
	m.tree = tree
	return m
}

// NewStream constructs an open-system machine: source injects root
// goals over virtual time and the run completes when the source is
// exhausted and every injected job has delivered its root response.
// The source must be a fresh value per run (sources are iterators).
//
// With Config.Shards > 0 the returned Machine is the root shard of a
// sharded group; Run executes the conservative-lookahead window
// protocol across all shards (see doc.go, "Sharded execution") and
// returns the merged statistics.
func NewStream(topo *topology.Topology, source JobSource, strat Strategy, cfg Config) *Machine {
	cfg.validate(topo.Size())
	if cfg.Shards > 0 {
		return newShardGroup(topo, source, strat, cfg).machines[0]
	}
	return newMachine(topo, source, strat, cfg, nil, 0)
}

// newMachine builds one runnable machine: the sequential machine when
// grp is nil, otherwise shard number shard of grp — which owns only its
// partition block of PEs and draws its event engine's stream from a
// per-shard salted seed (shard 0 keeps the plain seed, so a one-shard
// group replays the sequential event sequence bit for bit).
func newMachine(topo *topology.Topology, source JobSource, strat Strategy, cfg Config, grp *shardGroup, shard int) *Machine {
	seed := cfg.Seed
	if shard > 0 {
		seed = cfg.Seed ^ int64(shard)*shardSeedSalt
	}
	m := &Machine{
		eng:        sim.NewEngineSched(seed, cfg.Scheduler),
		topo:       topo,
		cfg:        cfg,
		strat:      strat,
		source:     source,
		rateMul:    1,
		lastCkptAt: -1,
		grp:        grp,
		shardID:    shard,
		peLo:       0,
		peHi:       topo.Size(),
	}
	if grp != nil {
		m.peLo, m.peHi = grp.part.Starts[shard], grp.part.Starts[shard+1]
		m.xout = make([][]xmsg, grp.k)
		// Goal IDs are banded per shard so concurrently minted goals stay
		// globally unique without synchronization. Shard 0's band starts
		// at 0, matching the sequential numbering.
		m.nextGoalID = int64(shard) << 40
	}
	if grp == nil || shard == grp.home {
		// Only the shard owning RootPE pulls from the source.
		m.srcRng = newSourceRng(cfg.Seed)
	}
	m.arrival = sim.NewTimer(m.eng, m.arrive)
	m.stats = newStats(topo, source.Name(), strat.Name())
	if cfg.SojournBound > 0 {
		m.stats.Sojourn.Bound(cfg.SojournBound)
		m.stats.SteadySojourn.Bound(cfg.SojournBound)
	}
	if cfg.SeriesBound > 0 {
		m.stats.Timeline.Bound(cfg.SeriesBound)
		m.stats.QueueLen.Bound(cfg.SeriesBound)
		m.stats.QueueImbalance.Bound(cfg.SeriesBound)
		m.stats.SojournWindows.Bound(cfg.SeriesBound)
		m.stats.InjSojournWindows.Bound(cfg.SeriesBound)
		m.stats.Monitor.Bound(cfg.SeriesBound)
	}

	// Borrow the pooled free lists before PE construction so the
	// pending-slab slot arrays recycle across runs too.
	if p := cfg.Pool; p != nil {
		p.lend(m)
	}

	block := m.peHi - m.peLo
	m.peBlock = make([]PE, block)
	m.peBusy = make([]bool, block)
	m.peFailed = make([]bool, block)
	m.peServiceEnd = make([]sim.Time, block)
	m.peBusyTime = make([]sim.Time, block)
	if cfg.PESpeeds != nil {
		m.peSpeed = make([]float64, block)
		copy(m.peSpeed, cfg.PESpeeds[m.peLo:m.peHi])
	}

	// CSR-flattened adjacency for the owned block: neighbor lists, the
	// per-neighbor load/seen/down views and the attached-channel lists are
	// subslices of flat arrays — four allocations for the whole machine
	// instead of five per PE, and the broadcast path reads its channel
	// list straight from the PE instead of asking the topology per tick.
	nbrOff := make([]int, block+1)
	chOff := make([]int, block+1)
	var nbrsFlat, chansFlat []int
	for i := m.peLo; i < m.peHi; i++ {
		nbrsFlat = topo.AppendNeighbors(nbrsFlat, i)
		nbrOff[i-m.peLo+1] = len(nbrsFlat)
		chansFlat = topo.AppendChannelsOf(chansFlat, i)
		chOff[i-m.peLo+1] = len(chansFlat)
	}
	nbrLoadFlat := make([]int32, len(nbrsFlat))
	nbrSeenFlat := make([]sim.Time, len(nbrsFlat))
	for i := range nbrSeenFlat {
		nbrSeenFlat[i] = -1
	}
	nbrDownFlat := make([]bool, len(nbrsFlat))

	// Channel states by value, member lists as subslices of one flat
	// backing. Offsets are recorded first and subslices taken after,
	// because append may move the backing array mid-build. NumChannels +
	// AppendChannelMembers never materialize the full channel list, so an
	// implicit topology's channels cost exactly this slice — no transient
	// edge-list blow-up at construction.
	//
	// A multi-shard machine only ever touches channels attached to its
	// owned PEs — every transmit, broadcast and link op resolves at the
	// sending (owned) side — so it stores chanState sparsely: chanIdx
	// maps global channel ID to the local slice (or -1), chanIDs maps
	// back, and chanAt resolves both layouts. Dense storage for a
	// million-PE torus is 2M channels x 120 B per shard; sparse keeps
	// the per-shard cost proportional to the owned block, which is what
	// lets a Shards=K million-PE run fit the same heap budget as the
	// sequential machine.
	nc := topo.NumChannels()
	if grp != nil && grp.k > 1 {
		m.chanIdx = make([]int32, nc)
		for i := range m.chanIdx {
			m.chanIdx[i] = -1
		}
		// chansFlat lists every channel attached to an owned PE
		// (duplicated across attached PEs); first-encounter order makes
		// the local numbering deterministic.
		for _, ci := range chansFlat {
			if m.chanIdx[ci] < 0 {
				m.chanIdx[ci] = int32(len(m.chanIDs))
				m.chanIDs = append(m.chanIDs, int32(ci))
			}
		}
		m.chans = make([]chanState, len(m.chanIDs))
		offs := make([]int, len(m.chanIDs)+1)
		var flat []int
		for li, ci := range m.chanIDs {
			flat = topo.AppendChannelMembers(flat, int(ci))
			offs[li+1] = len(flat)
		}
		for li := range m.chans {
			m.chans[li].members = flat[offs[li]:offs[li+1]:offs[li+1]]
		}
	} else {
		m.chans = make([]chanState, nc)
		offs := make([]int, nc+1)
		var flat []int
		for ci := 0; ci < nc; ci++ {
			flat = topo.AppendChannelMembers(flat, ci)
			offs[ci+1] = len(flat)
		}
		for ci := 0; ci < nc; ci++ {
			m.chans[ci].members = flat[offs[ci]:offs[ci+1]:offs[ci+1]]
		}
	}

	// Remote shards' entries stay nil; every local access happens through
	// the owned block or is nil-guarded (broadcast delivery).
	m.pes = make([]*PE, topo.Size())
	for i := m.peLo; i < m.peHi; i++ {
		lx := i - m.peLo
		pe := &m.peBlock[lx]
		lo, hi := nbrOff[lx], nbrOff[lx+1]
		*pe = PE{
			m:       m,
			id:      i,
			lx:      lx,
			nbrs:    nbrsFlat[lo:hi:hi],
			nbrLoad: nbrLoadFlat[lo:hi:hi],
			nbrSeen: nbrSeenFlat[lo:hi:hi],
			nbrDown: nbrDownFlat[lo:hi:hi],
			chansOf: chansFlat[chOff[lx]:chOff[lx+1]:chOff[lx+1]],
		}
		pe.pending.init(m.takeSlab())
		pe.svc.Init(m.eng, pe.serviceDone)
		m.pes[i] = pe
	}

	strat.Setup(m)
	for _, pe := range m.pes {
		if pe == nil {
			continue
		}
		pe.node = strat.NewNode(pe)
		if pe.node == nil {
			panic("machine: strategy returned nil NodeStrategy")
		}
		if fa, ok := pe.node.(FailureAware); ok {
			pe.wantsFailure = fa.WantsFailureEvents()
		}
		if sa, ok := pe.node.(SpeedAware); ok {
			pe.wantsSpeed = sa.WantsSpeedEvents()
		}
		if la, ok := pe.node.(LoadAware); ok {
			pe.wantsLoad = la.WantsLoadEvents()
		}
	}

	// Periodic load-information broadcast (the machine-level mechanism
	// CWN relies on; strategies may layer their own control traffic).
	// The tickers live in one contiguous block initialized in place —
	// one allocation plus one closure per PE, not a two-object ticker
	// graph each — with the same per-PE stagger draws, in the same
	// order, as individually constructed tickers.
	if cfg.LoadInterval > 0 {
		m.loadTickers = make([]sim.Ticker, m.peHi-m.peLo)
		ti := 0
		for _, pe := range m.pes {
			if pe == nil {
				continue
			}
			pe := pe
			m.loadTickers[ti].Init(m.eng, cfg.LoadInterval, m.tickerPhase(cfg.LoadInterval), func() { m.broadcastLoad(pe) })
			ti++
		}
	}

	if cfg.SampleInterval > 0 {
		if cfg.MonitorPE {
			// Sized to the owned PE block (the whole machine when
			// unsharded): a shard monitors only its own PEs, and the
			// coordinator concatenates the blocks into full frames.
			m.prevBusyPerPE = make([]sim.Time, m.peHi-m.peLo)
			m.frameBuf = make([]float64, m.peHi-m.peLo)
		}
		// Every shard draws the same stagger phase (newObserverRng salts
		// from the plain seed, not the per-shard one), so sample instants
		// are globally synchronized across the group.
		m.newObserverTicker(cfg.SampleInterval, m.sample)
	}
	m.traceCollector, _ = cfg.Trace.(*trace.Collector)

	// Snapshot the busy-time accrued during warm-up so steady-state
	// utilization can exclude the ramp. Only scheduled when a warm-up is
	// configured, keeping the zero-warm-up event sequence untouched.
	if cfg.Warmup > 0 {
		m.eng.At(cfg.Warmup, func() {
			for _, pe := range m.pes {
				if pe == nil {
					continue
				}
				m.warmupBusy += pe.committedBusy()
			}
		})
	}

	// Replay the scripted environment, if any. Generators (chaos,
	// checkpoint) expand into their concrete timelines here (a pure
	// function of their parameters, machine size and horizon); a
	// sharded group expands once and every shard shares the result. An
	// empty scenario schedules nothing — the run stays bit-for-bit
	// identical to an unscripted one (pinned by regression test).
	//
	// The sequential machine (and a one-shard group, which replays it
	// bit for bit) schedules the ops in its own engine at construction.
	// Construction-time scheduling pins the instant-level ordering rule
	// every mode honors: ops carry the lowest sequence numbers at their
	// timestamp, so an op fires BEFORE the machine events at its
	// instant (ties among same-instant ops break in script order). A
	// multi-shard coordinator reproduces exactly that: it parks every
	// window barrier one tick short of the next op's scripted time,
	// advances the quiescent shards' clocks onto the instant, and
	// applies the op there, before that instant's machine events run
	// (shardGroup.run, applyOps).
	if !cfg.Scenario.Empty() {
		if grp != nil {
			m.scn = grp.scn
		} else {
			m.scn = cfg.Scenario.Expand(topo.Size(), cfg.MaxTime)
		}
		for _, ev := range m.scn.Events {
			switch ev.Kind {
			case scenario.CrashPE:
				m.lossy = true
			case scenario.CheckpointTick:
				m.ckpt = true
			}
		}
		if grp == nil || grp.k == 1 {
			for _, ev := range m.scn.Events {
				ev := ev
				m.eng.At(ev.At, func() { m.applyScenarioEvent(ev) })
			}
		}
		if cfg.SampleInterval > 0 {
			m.winSoj = make([]float64, 0, 64)
			m.injSoj = make([][]float64, 0, 64)
			m.injStride = 1
		}
	}
	return m
}

// ScenarioScript returns the expanded scenario timeline this machine
// replays — chaos generators resolved into their concrete events — or
// nil for unscripted runs. Recovery analysis reads disruption/restore
// times from this script, not the unexpanded one.
func (m *Machine) ScenarioScript() *scenario.Script { return m.scn }

// Engine exposes the discrete-event engine (e.g. for Now or the seeded
// random stream).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Topology returns the interconnection network.
func (m *Machine) Topology() *topology.Topology { return m.topo }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Tree returns the workload of a single-job machine built with New;
// stream machines return nil (each job carries its own tree).
func (m *Machine) Tree() *workload.Tree { return m.tree }

// Source returns the machine's job source.
func (m *Machine) Source() JobSource { return m.source }

// NumPEs returns the machine size.
func (m *Machine) NumPEs() int { return len(m.pes) }

// PE returns processing element i. On a sharded machine a remote PE is
// resolved through its owning shard — safe for post-run inspection, but
// remote PEs advance on other goroutines while a parallel run is live
// (which is why SequentialOnly strategies cannot shard).
func (m *Machine) PE(i int) *PE {
	if pe := m.pes[i]; pe != nil || m.grp == nil {
		return pe
	}
	return m.grp.machines[m.grp.part.Assign[i]].pes[i]
}

// jobsInFlight returns the injected-but-uncompleted job count: the
// machine's own counter, or the group's shared atomic on sharded runs.
func (m *Machine) jobsInFlight() int64 {
	if m.grp != nil {
		return atomic.LoadInt64(&m.grp.inFlight)
	}
	return m.inFlight
}

// Completed reports whether the root response has been delivered.
func (m *Machine) Completed() bool { return m.completed }

// NewTicker registers a periodic process belonging to the simulated
// system (load broadcasts, strategy control processes). When
// StaggerTicks is set the phase is drawn uniformly from the first period
// — per registration, from the run's seeded engine stream, because these
// processes ARE part of the simulation; pe only documents ownership and
// may be nil for machine-level processes. Measurement processes must use
// the observer stream instead (see newObserverTicker) so that turning
// monitoring on or off cannot change the simulated result.
func (m *Machine) NewTicker(pe *PE, period sim.Time, fn func()) *sim.Ticker {
	return sim.NewTicker(m.eng, period, m.tickerPhase(period), fn)
}

// tickerPhase draws a simulated process's stagger phase from the run's
// seeded engine stream (zero when staggering is off or moot).
func (m *Machine) tickerPhase(period sim.Time) sim.Time {
	if m.cfg.StaggerTicks && period > 1 {
		return sim.Time(m.eng.Rng().Int63n(int64(period)))
	}
	return 0
}

// newObserverTicker registers a measurement process (the utilization
// sampler). Its stagger phase draws from a dedicated salted stream
// derived from the seed — not the engine stream — so that configuring
// SampleInterval/MonitorPE never reorders the simulation's tie-break
// draws: the observer must not perturb the observed.
//
//simlint:observer
func (m *Machine) newObserverTicker(period sim.Time, fn func()) *sim.Ticker {
	var phase sim.Time
	if m.cfg.StaggerTicks && period > 1 {
		if m.obsRng == nil {
			m.obsRng = newObserverRng(m.cfg.Seed)
		}
		phase = sim.Time(m.obsRng.Int63n(int64(period)))
	}
	return sim.NewTicker(m.eng, period, phase, fn)
}

// arenaChunk is the machine arenas' granularity: how many goals, wire
// messages, pending tasks or job states one free-list miss carves room
// for. Sized so a small run stays within a chunk or two per kind while
// a saturated large machine fills contiguous blocks back to back.
const arenaChunk = 1024

// newGoal mints a goal for task belonging to job j, created on PE
// origin for parent goal parentID living on parentPE. Goal objects come
// from the machine's pool; see freeGoal.
func (m *Machine) newGoal(task *workload.Task, j *jobState, parentPE int, parentID int64) *Goal {
	var g *Goal
	if n := len(m.goalFree); n > 0 {
		g = m.goalFree[n-1]
		m.goalFree[n-1] = nil
		m.goalFree = m.goalFree[:n-1]
	} else {
		if len(m.goalChunk) == 0 {
			m.goalChunk = make([]Goal, arenaChunk)
		}
		g = &m.goalChunk[0]
		m.goalChunk = m.goalChunk[1:]
	}
	*g = Goal{
		ID:        m.nextGoalID,
		Task:      task,
		job:       j,
		Origin:    parentPE,
		ParentPE:  parentPE,
		ParentID:  parentID,
		CreatedAt: m.eng.Now(),
		epoch:     j.epoch,
	}
	m.nextGoalID++
	if parentPE >= 0 {
		m.emit(trace.GoalCreated, parentPE, -1, g.ID)
	}
	return g
}

// freeGoal recycles a goal whose journey is definitively over: it
// executed, and any children's responses have been combined.
//
//simlint:free
func (m *Machine) freeGoal(g *Goal) {
	g.Task = nil
	g.job = nil
	m.goalFree = append(m.goalFree, g)
}

// newPending allocates (or recycles) the pending-task record for a goal
// awaiting kids child responses.
func (m *Machine) newPending(g *Goal, kids int) *pendingTask {
	var p *pendingTask
	if n := len(m.pendingFree); n > 0 {
		p = m.pendingFree[n-1]
		m.pendingFree[n-1] = nil
		m.pendingFree = m.pendingFree[:n-1]
	} else {
		if len(m.pendChunk) == 0 {
			m.pendChunk = make([]pendingTask, arenaChunk)
		}
		p = &m.pendChunk[0]
		m.pendChunk = m.pendChunk[1:]
	}
	p.goal = g
	p.remaining = kids
	if cap(p.vals) < kids {
		p.vals = make([]int64, 0, kids)
	} else {
		p.vals = p.vals[:0]
	}
	return p
}

// freePending recycles a completed pending-task record.
//
//simlint:free
func (m *Machine) freePending(p *pendingTask) {
	p.goal = nil
	p.vals = p.vals[:0]
	m.pendingFree = append(m.pendingFree, p)
}

// takeSlab hands a PE a recycled pending-slab slot array (nil when none
// are pooled; the slab then allocates a fresh one).
func (m *Machine) takeSlab() []pendingSlot {
	n := len(m.slabFree)
	if n == 0 {
		return nil
	}
	slots := m.slabFree[n-1]
	m.slabFree[n-1] = nil
	m.slabFree = m.slabFree[:n-1]
	return slots
}

// broadcastLoad sends this PE's current load to all neighbors: one
// transaction per attached channel (a single bus transaction reaches all
// bus-mates).
func (m *Machine) broadcastLoad(pe *PE) {
	m.broadcast(pe, wireLoadBcast, MsgLoad, m.cfg.CtrlHopTime, nil)
}

// broadcast performs one transmission per channel attached to pe,
// delivering to every other channel member. A neighbor reachable via two
// channels (a double-lattice pair) hears the broadcast twice; deliveries
// must therefore be idempotent, which load and proximity updates are.
func (m *Machine) broadcast(pe *PE, kind wireKind, msgKind MsgKind, dur sim.Time, payload any) {
	from := pe.id
	load := pe.Load()
	for _, ci := range pe.chansOf {
		ch := m.chanAt(ci)
		m.stats.MsgCounts[msgKind]++
		w := m.newMsg(kind, from, load)
		w.ch = ch
		w.payload = payload
		m.transmit(ch, dur, w)
	}
}

// respond sends goal g's computed value from the PE that executed it
// back to the parent's PE (or, for a root goal, completes its job).
func (m *Machine) respond(fromPE int, g *Goal, value int64) {
	if g.ParentPE < 0 {
		m.completeJob(g.job, value)
		return
	}
	m.emit(trace.RespSent, fromPE, g.ParentPE, g.ID)
	m.routeResponse(fromPE, response{dstPE: g.ParentPE, goalID: g.ParentID, value: value})
}

// completeJob records job j's root response: its sojourn time enters the
// latency records, and the machine stops once the source is exhausted
// and no jobs remain in flight. The jobState is recycled — every goal of
// the job is necessarily dead once the root has responded.
func (m *Machine) completeJob(j *jobState, value int64) {
	now := m.eng.Now()
	m.result = value
	m.lastDone = now
	var left int64
	if g := m.grp; g != nil {
		// The root response may be combined on any shard; only the sum
		// matters mid-window (atomic adds commute), and the value is only
		// branched on where it is deterministic — here under one shard,
		// or at a window barrier.
		left = atomic.AddInt64(&g.inFlight, -1)
	} else {
		m.inFlight--
		left = m.inFlight
	}
	m.stats.JobsDone++
	// Latency statistics accrue here, streamingly — not from JobRecords
	// at finalize — so a bounded run's memory really is bounded.
	soj := float64(now - j.injectedAt)
	m.stats.Sojourn.Add(soj)
	if m.winSoj != nil {
		m.winSoj = append(m.winSoj, soj)
	}
	if m.injSoj != nil {
		// Scenario runs with sampling only. Each shard buckets its own
		// completions; shardGroup.finalize re-buckets the shards to a
		// common stride and pools them (mergeInjSoj).
		w := int(j.injectedAt / (m.cfg.SampleInterval * sim.Time(m.injStride)))
		for len(m.injSoj) <= w {
			m.injSoj = append(m.injSoj, nil)
		}
		m.injSoj[w] = append(m.injSoj[w], soj)
		if b := m.cfg.SeriesBound; b > 0 {
			for len(m.injSoj) > b {
				m.thinInjSoj()
			}
		}
	}
	if j.injectedAt >= m.cfg.Warmup {
		m.stats.SteadySojourn.Add(soj)
	}
	if now >= m.cfg.Warmup {
		m.stats.SteadyJobsDone++
	}
	if m.cfg.SojournBound <= 0 || len(m.stats.JobRecords) < m.cfg.SojournBound {
		m.stats.JobRecords = append(m.stats.JobRecords, JobRecord{
			ID:         j.id,
			InjectedAt: j.injectedAt,
			DoneAt:     now,
			Result:     value,
		})
	}
	m.freeJob(j)
	// A multi-shard group must not stop mid-window: which shard would
	// observe the zero depends on execution order, not virtual time. Its
	// coordinator detects completion at the next window barrier instead,
	// where the count is stable (shardGroup.run).
	if m.srcDone && left == 0 && (m.grp == nil || m.grp.k == 1) {
		m.completed = true
		m.finishedAt = now
		m.eng.Stop()
	}
}

// thinInjSoj merges the raw injection-window buckets pairwise and
// doubles the bucket stride — Series.thin for the not-yet-finalized
// sojourn buckets, so a SeriesBound-ed run holds one bucket header per
// retained window instead of one per elapsed window. Re-bucketing only
// concatenates: each surviving bucket holds exactly the sojourns of
// jobs injected in its (now twice as wide) window, so the finalized
// per-window percentiles stay exact on the coarser grid.
func (m *Machine) thinInjSoj() {
	half := (len(m.injSoj) + 1) / 2
	for i := 0; i < half; i++ {
		merged := m.injSoj[2*i]
		if 2*i+1 < len(m.injSoj) {
			merged = append(merged, m.injSoj[2*i+1]...)
		}
		m.injSoj[i] = merged
	}
	for i := half; i < len(m.injSoj); i++ {
		m.injSoj[i] = nil
	}
	m.injSoj = m.injSoj[:half]
	m.injStride *= 2
}

// routeResponse moves a response one shortest-path hop at a time toward
// its destination PE, charging each channel. Forwarding happens on the
// co-processor: no PE compute time.
func (m *Machine) routeResponse(cur int, r response) {
	if cur == r.dstPE {
		m.stats.RespHops.Add(r.hops)
		m.emit(trace.RespDelivered, cur, -1, r.goalID)
		m.pes[cur].enqueue(item{kind: itemResponse, resp: r})
		return
	}
	next := m.topo.NextHop(cur, r.dstPE)
	ch := m.pickChannel(m.chansBetween(cur, next))
	m.stats.MsgCounts[MsgResponse]++
	r.hops++
	m.respsInTransit++
	w := m.newMsg(wireResp, cur, m.pes[cur].Load())
	w.resp = r
	w.to = next
	m.transmit(ch, m.cfg.RespHopTime, w)
}

// chansBetween returns the channel IDs joining neighbors a and b, in
// the machine's reusable scratch buffer — valid until the next routing
// call. Implicit topologies compute the list, materialized ones copy
// their cached pair list; the hot path allocates nothing either way.
func (m *Machine) chansBetween(a, b int) []int {
	m.chScratch = m.topo.AppendChannelsBetween(m.chScratch[:0], a, b)
	return m.chScratch
}

// routeGoal advances the goal one shortest-path hop toward dst.
func (m *Machine) routeGoal(cur, dst int, g *Goal) {
	next := m.topo.NextHop(cur, dst)
	ch := m.pickChannel(m.chansBetween(cur, next))
	g.Hops++
	m.stats.MsgCounts[MsgGoal]++
	m.emit(trace.GoalSent, cur, next, g.ID)
	m.goalsInTransit++
	w := m.newMsg(wireGoalRoute, cur, m.pes[cur].Load())
	w.goal = g
	w.to = next
	w.dst = dst
	m.transmit(ch, m.cfg.GoalHopTime, w)
}

// sample appends one utilization time-series point: the fraction of
// PE-time spent busy during the window just ended, as a percentage
// (matching the paper's plots 11-16). The divisor is the actual elapsed
// window since the previous sample — the staggered first window is
// shorter than SampleInterval, and dividing by the full period there
// distorted the first timeline point.
//
// Each shard of a multi-shard group runs its own copy of this ticker
// over its own PE block at the same synchronized instants; instead of
// emitting series points (which need the whole machine), it defers the
// window's raw partials — busy delta, queue-length sum and sum of
// squares, and the per-PE frame block — for shardGroup.finalize to fold.
// Jain's fairness index is not mergeable from per-shard indices, which
// is why the partials are deferred rather than the folded values.
func (m *Machine) sample() {
	now := m.eng.Now()
	window := now - m.prevSampleAt
	if window <= 0 {
		return // an unstaggered first firing at t=0 has no window yet
	}
	var busy sim.Time
	for _, pe := range m.pes[m.peLo:m.peHi] {
		busy += pe.committedBusy()
	}
	busyDelta := busy - m.prevBusySample
	m.prevBusySample = busy

	if m.prevBusyPerPE != nil {
		for i, pe := range m.pes[m.peLo:m.peHi] {
			b := pe.committedBusy()
			m.frameBuf[i] = float64(b-m.prevBusyPerPE[i]) / float64(window)
			m.prevBusyPerPE[i] = b
		}
	}

	// Queue balance at the sample instant: mean ready-queue length and
	// Jain's fairness index over per-PE queue lengths — the imbalance
	// curve a scenario run's recovery is read from. Pure observation:
	// no events, no random draws.
	var qsum, qsq float64
	for _, pe := range m.pes[m.peLo:m.peHi] {
		q := float64(pe.queueLen())
		qsum += q
		qsq += q * q
	}

	if m.grp != nil && m.grp.k > 1 {
		samp := shardSample{at: now, window: window, busyDelta: busyDelta, qsum: qsum, qsq: qsq}
		if m.frameBuf != nil {
			samp.frame = append([]float64(nil), m.frameBuf...)
		}
		if len(m.winSoj) > 0 {
			samp.soj = append([]float64(nil), m.winSoj...)
			m.winSoj = m.winSoj[:0]
		}
		m.shardSamples = append(m.shardSamples, samp)
		m.prevSampleAt = now
		return
	}

	util := 100 * float64(busyDelta) / (float64(window) * float64(len(m.pes)))
	m.stats.Timeline.Add(float64(now), util)
	if m.prevBusyPerPE != nil {
		m.stats.Monitor.Append(now, m.frameBuf)
	}
	m.stats.QueueLen.Add(float64(now), qsum/float64(len(m.pes)))
	imb := 1.0
	if qsq > 0 {
		imb = qsum * qsum / (float64(len(m.pes)) * qsq)
	}
	m.stats.QueueImbalance.Add(float64(now), imb)

	// Windowed sojourn p99 (scenario runs): one point per window that
	// completed at least one job. Windows ending inside the warm-up are
	// dropped — the empty-machine ramp's short sojourns would bias the
	// recovery baseline low, exactly as they would bias SteadySojourn.
	if len(m.winSoj) > 0 {
		if now >= m.cfg.Warmup {
			sort.Float64s(m.winSoj)
			rank := int(math.Ceil(0.99*float64(len(m.winSoj)))) - 1
			if rank < 0 {
				rank = 0
			}
			m.stats.SojournWindows.Add(float64(now), m.winSoj[rank])
		}
		m.winSoj = m.winSoj[:0]
	}
	m.prevSampleAt = now
}

// committedBusy returns busy time accrued up to now (excluding the not
// yet elapsed remainder of an in-service message).
func (pe *PE) committedBusy() sim.Time {
	m := pe.m
	b := m.peBusyTime[pe.lx]
	if m.peBusy[pe.lx] && m.peServiceEnd[pe.lx] > m.eng.Now() {
		b -= m.peServiceEnd[pe.lx] - m.eng.Now()
	}
	return b
}

// stalled reports whether an incomplete run is a lost-goal deadlock
// rather than genuine saturation: jobs remain in flight but no goal or
// response exists anywhere the machine can see — every PE idle with an
// empty queue, nothing on a channel, and no arrivals pending. It is
// conservative: a stall is only declared when detection is certain.
// (Caveat: a strategy that buffers goals in private node state outside
// the PE queues defeats the "certain" part; the shipped strategies keep
// goals queued or in transit.)
func (m *Machine) stalled() bool {
	if m.completed || m.jobsInFlight() == 0 || !m.srcDone {
		return false
	}
	if m.goalsInTransit != 0 || m.respsInTransit != 0 {
		return false
	}
	if m.retryPending > 0 {
		return false // a crash retry is armed on its backoff timer
	}
	for i := range m.peBusy {
		if m.peBusy[i] || m.peBlock[i].queueLen() > 0 {
			return false
		}
	}
	return true
}

// Run executes the simulation until every job the source emits has
// delivered its root response (or MaxTime elapses — for heavy arrival
// streams that is the saturation regime, reported rather than hidden)
// and returns the collected statistics. A machine runs exactly once.
func (m *Machine) Run() *Stats {
	if m.started {
		panic("machine: Run called twice")
	}
	m.started = true
	if m.grp != nil {
		if m.shardID != 0 {
			panic("machine: Run must be called on shard 0 (the NewStream return value)")
		}
		return m.grp.run()
	}
	m.pump()
	m.eng.RunUntil(m.cfg.MaxTime)
	m.finalize()
	return m.stats
}

// pump pulls arrivals from the source: jobs due now are injected
// immediately (so the first arrival and burst-mates cost no extra
// engine events — single-job runs replay the paper's exact event
// sequence), and the next future arrival is armed on the machine's
// reusable arrival timer, re-entering pump when it fires.
func (m *Machine) pump() {
	for {
		delay, tree, ok := m.source.Next(m.srcRng)
		if !ok {
			m.srcDone = true
			// Multi-shard groups defer the exhausted-and-idle stop to the
			// window barrier (a mid-window read of the shared in-flight
			// count would depend on thread schedule, not virtual time).
			if (m.grp == nil || m.grp.k == 1) && m.jobsInFlight() == 0 && !m.completed {
				m.completed = true
				m.finishedAt = m.eng.Now()
				m.eng.Stop()
			}
			return
		}
		if delay > 0 && m.rateMul != 1 {
			// A LoadShock multiplies the offered rate: divide the drawn
			// gap, floor one unit. Applied to gaps drawn after the shock;
			// an already-armed arrival fires as scheduled.
			delay = sim.Time(float64(delay) / m.rateMul)
			if delay < 1 {
				delay = 1
			}
		}
		if delay <= 0 {
			m.inject(tree)
			continue
		}
		m.nextTree = tree
		m.arrival.Schedule(delay)
		return
	}
}

// arrive fires when the armed arrival is due: inject it and pull the
// next one.
func (m *Machine) arrive() {
	tree := m.nextTree
	m.nextTree = nil
	m.inject(tree)
	m.pump()
}

// inject enters one job into the system. The root goal arrives from the
// outside world: it is accepted at RootPE directly rather than placed
// by the strategy, so competing strategies start from identical state.
func (m *Machine) inject(tree *workload.Tree) {
	var j *jobState
	if n := len(m.jobFree); n > 0 {
		j = m.jobFree[n-1]
		m.jobFree[n-1] = nil
		m.jobFree = m.jobFree[:n-1]
	} else {
		if len(m.jobChunk) == 0 {
			m.jobChunk = make([]jobState, arenaChunk)
		}
		j = &m.jobChunk[0]
		m.jobChunk = m.jobChunk[1:]
	}
	// The epoch survives the wipe, bumped: goals of the struct's
	// previous occupant (possible only on lossy runs) stay stale.
	ep := j.epoch
	*j = jobState{
		id:         m.stats.JobsInjected,
		tree:       tree,
		injectedAt: m.eng.Now(),
		epoch:      ep + 1,
		ckptSeen:   -1,
	}
	m.stats.JobsInjected++
	m.stats.Goals += tree.Count()
	if m.traceCollector != nil && (m.grp == nil || m.grp.k == 1) {
		// Each goal contributes a bounded handful of lifecycle events
		// plus a topology-dependent number of hops; 8 covers the shipped
		// strategies' typical walks so the collector rarely re-doubles.
		m.traceCollector.Grow(tree.Count() * 8)
	}
	if g := m.grp; g != nil {
		atomic.AddInt64(&g.inFlight, 1)
	} else {
		m.inFlight++
	}
	if m.ckpt && m.grp != nil && m.grp.k > 1 {
		m.liveJobs = append(m.liveJobs, j)
	}
	m.injectRoot(j)
}

// injectRoot places job j's root goal at the machine's ingress — shared
// by fresh injections and crash retries. The outside world delivers to
// a live PE: a downed root PE redirects to the nearest live one. Runs
// on the home shard (the RootPE owner); a refuge owned by another shard
// is reached through the normal cross-shard goal routing rather than a
// direct Accept, so mid-window re-injections (backoff retries) stay
// within the conservative-lookahead contract.
func (m *Machine) injectRoot(j *jobState) {
	rootPE := m.cfg.RootPE
	if m.peDown(rootPE) {
		rootPE = m.nearestLive(rootPE)
		m.stats.RootRedirects++
	}
	root := m.newGoal(j.tree.Root, j, -1, -1)
	root.Origin = rootPE
	m.emit(trace.GoalCreated, rootPE, -1, root.ID)
	if pe := m.pes[rootPE]; pe != nil {
		pe.Accept(root)
		return
	}
	m.routeGoal(m.cfg.RootPE, rootPE, root)
}

// freeJob recycles a completed job's state record.
//
//simlint:free
func (m *Machine) freeJob(j *jobState) {
	j.tree = nil
	m.jobFree = append(m.jobFree, j)
}

func (m *Machine) finalize() {
	s := m.stats
	now := m.eng.Now()
	s.Completed = m.completed
	s.Result = m.result
	if m.completed {
		s.Makespan = m.finishedAt
	} else {
		s.Makespan = now
	}
	s.Events = m.eng.Processed()
	s.Warmup = m.cfg.Warmup
	s.WarmupBusy = m.warmupBusy
	s.Stalled = m.stalled()
	for lx := range m.peBlock {
		pe := &m.peBlock[lx]
		i := pe.id
		b := pe.committedBusy()
		s.BusyPerPE[i] = b
		s.TotalBusy += b
		s.GoalsPerPE[i] = pe.goalsExecuted
		if m.peFailed[lx] {
			// Close the open blackout at the horizon so capacity
			// accounting covers the whole run.
			pe.downTime += now - pe.failedAt
			pe.failedAt = now
		}
		s.DownPETime += pe.downTime
	}
	// Channels are charged their full occupancy at transmit time; commit
	// only the elapsed part, or a run cut off with messages on the wire
	// would report > 100% channel utilization.
	for i := range m.chans {
		ch := &m.chans[i]
		gi := i
		if m.chanIDs != nil {
			gi = int(m.chanIDs[i])
		}
		s.ChannelBusy[gi] = ch.committedBusy(now)
		s.ChannelMsgs[gi] = ch.messages
	}
	// Injection-keyed windowed p99 (scenario runs with sampling): one
	// point per injection window that produced a completion, at the
	// window's end time. Computable only at finalize — a window's jobs
	// finish arbitrarily later. Warm-up windows are dropped, mirroring
	// the completion-keyed series. Multi-shard groups skip this: the
	// coordinator pools the shards' raw buckets instead (mergeInjSoj).
	if m.injSoj != nil && (m.grp == nil || m.grp.k == 1) {
		for w, sojs := range m.injSoj {
			if len(sojs) == 0 {
				continue
			}
			end := sim.Time(w+1) * m.cfg.SampleInterval * sim.Time(m.injStride)
			if end <= m.cfg.Warmup {
				continue // the window holds only pre-warm-up injections
			}
			sort.Float64s(sojs)
			rank := int(math.Ceil(0.99*float64(len(sojs)))) - 1
			if rank < 0 {
				rank = 0
			}
			s.InjSojournWindows.Add(float64(end), sojs[rank])
		}
	}
	if p := m.cfg.Pool; p != nil {
		// Release every PE's pending-slab slot array for the next run
		// before the pool takes the lists back. Slabs are lazy: a PE
		// that never held a pending task has no array to release.
		for _, pe := range m.pes {
			if slots := pe.pending.release(); slots != nil {
				m.slabFree = append(m.slabFree, slots)
			}
		}
		p.reclaim(m)
	}
}

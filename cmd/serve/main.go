// Command serve benchmarks load-distribution strategies as an open
// system: instead of the paper's single tree run to completion, a
// stream of jobs arrives over virtual time (Poisson by default) and
// each strategy is scored on serving metrics — mean/p50/p99 sojourn
// time (injection to root response), throughput, and steady-state
// utilization — across a sweep of offered arrival rates. This is the
// modern serving benchmark the closed-system experiments cannot
// express: it shows where each strategy's latency knee sits and which
// one saturates first.
//
// Examples:
//
//	serve                                    # default CWN/ACWN/GM sweep
//	serve -topos grid:10x10,dlm:10x10:5 -gaps 400,200,100,50 -jobs 300
//	serve -arrival burst -gaps 2000 -burst 25 -bursts 8
//	serve -workload fib:10 -warmup-frac 0.2 -csv out.csv
//
// Runs are deterministic for a fixed -seed: arrival times draw from a
// dedicated stream derived from the seed, so the same invocation
// reproduces the same table bit for bit.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"cwnsim/internal/experiments"
	"cwnsim/internal/machine"
	"cwnsim/internal/report"
)

func main() {
	var (
		topoArg  = flag.String("topos", "grid:10x10,dlm:10x10:5", "comma-separated topologies")
		stratArg = flag.String("strategies", "cwn:9:2,acwn:9:2:3:40,gm:1:2:20", "comma-separated strategies")
		wlArg    = flag.String("workload", "fib:10", "workload each job evaluates")
		gapsArg  = flag.String("gaps", "800,400,200,100,50", "comma-separated mean inter-arrival gaps (smaller = higher offered rate)")
		arrival  = flag.String("arrival", "poisson", "arrival process: poisson | interval | burst")
		jobs     = flag.Int("jobs", 200, "jobs per run (poisson/interval)")
		burstN   = flag.Int("burst", 20, "jobs per burst (burst arrivals)")
		bursts   = flag.Int("bursts", 10, "number of bursts (burst arrivals)")
		seed     = flag.Int64("seed", 1, "simulation seed (fixed seed => identical tables)")
		warmFrac = flag.Float64("warmup-frac", 0.1, "fraction of the expected stream duration excluded as warm-up")
		maxTime  = flag.Int64("maxtime", 0, "measurement horizon override (0 = machine default)")
		workers  = flag.Int("workers", 0, "parallel simulations (0 = GOMAXPROCS)")
		csvPath  = flag.String("csv", "", "also write the flat result table as CSV")
		scenArg  = flag.String("scenario", "", `scripted environment applied to every run, e.g. "fail:pes=25%@t=5000,recover@t=10000"`)
		sample   = flag.Int64("sample", 0, "sampling interval for recovery metrics (0 = auto when -scenario is set)")
		retryLim = flag.Int("retry-limit", 0, "crash retries per job before abandoning it (0 = unbounded; needs a crash -scenario)")
		retryBck = flag.Int64("retry-backoff", 0, "virtual-time backoff per retry attempt (attempt x backoff)")
		traceOut = flag.String("trace-out", "", "write a Perfetto span export (Chrome trace-event JSON) of the first configuration's run")
	)
	flag.Parse()

	var topos []experiments.TopoSpec
	for _, t := range strings.Split(*topoArg, ",") {
		ts, err := experiments.ParseTopo(strings.TrimSpace(t))
		fail(err)
		topos = append(topos, ts)
	}
	var strats []experiments.StrategySpec
	for _, s := range strings.Split(*stratArg, ",") {
		ss, err := experiments.ParseStrategy(strings.TrimSpace(s))
		fail(err)
		strats = append(strats, ss)
	}
	wl, err := experiments.ParseWorkload(*wlArg)
	fail(err)
	var gaps []int64
	for _, g := range strings.Split(*gapsArg, ",") {
		gap, err := strconv.ParseInt(strings.TrimSpace(g), 10, 64)
		if err != nil {
			fail(fmt.Errorf("bad gap %q: %v", strings.TrimSpace(g), err))
		}
		if gap <= 0 {
			fail(fmt.Errorf("gap must be positive, got %d", gap))
		}
		gaps = append(gaps, gap)
	}
	if *warmFrac < 0 || *warmFrac >= 1 {
		fail(fmt.Errorf("-warmup-frac must be in [0,1), got %g", *warmFrac))
	}
	if *jobs < 1 || *burstN < 1 || *bursts < 1 {
		fail(fmt.Errorf("-jobs, -burst and -bursts must be >= 1"))
	}

	// One spec per (gap, topology, strategy); warm-up scales with the
	// expected stream duration (clamped to the measurement horizon —
	// the explicit -maxtime or the machine default) so every rate sheds
	// the same fraction of its ramp.
	horizon := *maxTime
	if horizon <= 0 {
		horizon = int64(machine.DefaultConfig().MaxTime)
	}
	makeArrival := func(gap int64) (experiments.ArrivalSpec, int64) {
		var as experiments.ArrivalSpec
		var span int64
		switch *arrival {
		case "poisson":
			as, span = experiments.PoissonArrivals(float64(gap), *jobs), gap*int64(*jobs)
		case "interval":
			as, span = experiments.IntervalArrivals(gap, *jobs), gap*int64(*jobs)
		case "burst":
			as, span = experiments.BurstArrivals(*burstN, gap, *bursts), gap*int64(*bursts)
		default:
			fail(fmt.Errorf("unknown arrival process %q", *arrival))
		}
		if span > horizon {
			span = horizon
		}
		return as, span
	}
	// offeredRate is the stream's arrival intensity in jobs per 1000
	// units: bursts deliver burstN jobs per gap, the other kinds one.
	offeredRate := func(gap int64) float64 {
		perGap := 1.0
		if *arrival == "burst" {
			perGap = float64(*burstN)
		}
		return 1000 * perGap / float64(gap)
	}

	// Under a scenario, recovery metrics need the sampling timeline; an
	// unset -sample defaults to a window that gives a few hundred points
	// over the default horizon.
	sampleIvl := *sample
	if *scenArg != "" && sampleIvl <= 0 {
		sampleIvl = 250
	}

	var specs []experiments.RunSpec
	for _, gap := range gaps {
		for _, ts := range topos {
			for _, ss := range strats {
				as, span := makeArrival(gap)
				specs = append(specs, experiments.RunSpec{
					Topo:           ts,
					Workload:       wl,
					Strategy:       ss,
					Arrival:        as,
					Seed:           *seed,
					Warmup:         int64(*warmFrac * float64(span)),
					MaxTime:        *maxTime,
					Scenario:       *scenArg,
					SampleInterval: sampleIvl,
					RetryLimit:     *retryLim,
					RetryBackoff:   *retryBck,
				})
			}
		}
	}

	fmt.Printf("running %d configurations (%s arrivals, %d jobs of %s each, seed %d)...\n\n",
		len(specs), *arrival, jobsPerRun(*arrival, *jobs, *burstN, *bursts), wl.Label(), *seed)
	results, err := experiments.RunAll(specs, *workers)
	fail(err)
	// RunAll returns results in spec order, so the (gap, topo, strategy)
	// cell is plain index arithmetic over the generation loops above.
	lookup := func(gi, ti, si int) *experiments.Result {
		return results[(gi*len(topos)+ti)*len(strats)+si]
	}

	// One rate-vs-latency table per topology: rows are offered rates,
	// one p99-sojourn column per strategy. '*' marks saturated runs
	// (jobs still in flight at the horizon — p99 there is a floor).
	for ti, ts := range topos {
		headers := []string{"gap", "rate/ku"}
		for _, ss := range strats {
			headers = append(headers, ss.ShortLabel()+" p99")
		}
		tb := report.NewTable(fmt.Sprintf("p99 sojourn vs offered rate on %s (%d PEs)", ts.Label(), ts.PEs()), headers...)
		for gi, gap := range gaps {
			row := []any{gap, fmt.Sprintf("%.2f", offeredRate(gap))}
			for si := range strats {
				r := lookup(gi, ti, si)
				// NaN means no job survived the warm-up cutoff: there is
				// no latency datum, which must not print as a number.
				cell := "-"
				if !math.IsNaN(r.P99Soj) {
					cell = fmt.Sprintf("%.0f", r.P99Soj)
				}
				if r.Saturated() {
					cell += "*"
				}
				row = append(row, cell)
			}
			tb.AddRow(row...)
		}
		tb.Render(os.Stdout)
		fmt.Println()
	}

	// The flat detail table carries the full serving metrics per run.
	// Throughput is the steady (post-warm-up) figure so it shares the
	// measurement window with the warm-up-excluded sojourn percentiles —
	// whole-run throughput would fold the empty-machine ramp into the
	// knee plots the p99 columns feed.
	detail := report.NewTable("per-run serving metrics",
		"topology", "strategy", "gap", "jobs done", "mean soj", "p50", "p99", "steady tput/ku", "steady util%")
	for _, r := range results {
		st := r.Stats
		done := fmt.Sprintf("%d/%d", st.JobsDone, st.JobsInjected)
		if r.Saturated() {
			done += "*"
		}
		detail.AddRow(r.Spec.Topo.Label(), r.Spec.Strategy.ShortLabel(), r.Spec.Arrival.Label(),
			done, fmtSoj(r.MeanSoj), fmtSoj(r.P50Soj), fmtSoj(r.P99Soj),
			1000*r.SteadyTput, 100*st.SteadyUtilization())
	}
	detail.Render(os.Stdout)

	// Under a scripted environment, append the recovery metrics the
	// scenario subsystem computes per run — both windowed-p99 keyings
	// ("t2s done" completion-keyed, "t2s inj" injection-keyed) plus the
	// state-loss counters for crash scripts. "abnd" is jobs abandoned
	// after exhausting -retry-limit; goodput is completed/injected, the
	// availability a bounded-retry policy trades against latency.
	if *scenArg != "" {
		rec := report.NewTable("scenario recovery",
			"topology", "strategy", "gap", "requeued", "lost", "abnd", "goodput", "baseline p99", "peak p99", "t2s done", "t2s inj", "eff util%")
		for _, r := range results {
			base, peak, settle := r.Recovery.TableCells()
			_, _, settleInj := r.RecoveryInj.TableCells()
			rec.AddRow(r.Spec.Topo.Label(), r.Spec.Strategy.ShortLabel(), r.Spec.Arrival.Label(),
				r.Requeued, r.GoalsLost, r.JobsAbandoned, fmt.Sprintf("%.3f", r.Goodput),
				base, peak, settle, settleInj, fmt.Sprintf("%.1f", r.EffUtil))
		}
		fmt.Println()
		rec.Render(os.Stdout)
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		fail(err)
		defer f.Close()
		fail(detail.WriteCSV(f))
		fmt.Printf("\nwrote %s\n", *csvPath)
	}

	// The span export traces one extra run of the first configuration:
	// sinks cannot be shared across the batch's concurrent runs.
	if *traceOut != "" {
		fail(experiments.WriteTrace(specs[0], *traceOut))
		fmt.Printf("\nwrote %s (load in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
}

// fmtSoj renders a sojourn statistic; NaN (no post-warm-up data) shows
// as "-" rather than leaking into terminal tables and CSV output.
func fmtSoj(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

// jobsPerRun reports the stream length implied by the arrival flags.
func jobsPerRun(arrival string, jobs, burstN, bursts int) int {
	if arrival == "burst" {
		return burstN * bursts
	}
	return jobs
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		os.Exit(2)
	}
}

package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestHistMergeEqualsCombinedStream pins the shard-merge property: a
// merged histogram is indistinguishable from one fed both streams.
func TestHistMergeEqualsCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var a, b, both Hist
	for i := 0; i < 500; i++ {
		v := rng.Intn(20)
		if i%3 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a.Total() != both.Total() || a.Mean() != both.Mean() || a.Max() != both.Max() {
		t.Fatalf("merged %v != combined %v", a.String(), both.String())
	}
	for v := 0; v <= both.Max(); v++ {
		if a.Count(v) != both.Count(v) {
			t.Fatalf("bucket %d: merged %d != combined %d", v, a.Count(v), both.Count(v))
		}
	}
	// Merging into an empty histogram and merging an empty one are both
	// exact.
	var empty, c Hist
	c.Merge(&both)
	c.Merge(&empty)
	if c.Total() != both.Total() || c.Percentile(0.9) != both.Percentile(0.9) {
		t.Fatalf("empty-edge merge diverged: %v vs %v", c.String(), both.String())
	}
}

func TestSummaryMergeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Summary
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*3 + 10
		if i < 400 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		both.Add(x)
	}
	a.Merge(&b)
	if a.N() != both.N() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merged counts/extrema diverged: %v vs %v", a.String(), both.String())
	}
	if d := math.Abs(a.Mean() - both.Mean()); d > 1e-9 {
		t.Fatalf("merged mean off by %g", d)
	}
	if d := math.Abs(a.Var() - both.Var()); d > 1e-9*both.Var() {
		t.Fatalf("merged variance off by %g (direct %g)", d, both.Var())
	}
	var empty Summary
	a.Merge(&empty)
	if a.N() != both.N() {
		t.Fatal("merging an empty summary changed the count")
	}
	empty.Merge(&a)
	if empty.N() != a.N() || empty.Mean() != a.Mean() {
		t.Fatal("merging into an empty summary is not a copy")
	}
}

func TestSampleMergeExactMode(t *testing.T) {
	var a, b, both Sample
	for i := 0; i < 200; i++ {
		x := float64((i * 37) % 101)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		both.Add(x)
	}
	a.Merge(&b)
	if a.N() != both.N() || a.Mean() != both.Mean() {
		t.Fatalf("merged sample n=%d mean=%g, combined n=%d mean=%g", a.N(), a.Mean(), both.N(), both.Mean())
	}
	for _, p := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if a.Percentile(p) != both.Percentile(p) {
			t.Fatalf("p%.2f: merged %g != combined %g", p, a.Percentile(p), both.Percentile(p))
		}
	}
}

// TestSampleMergeBounded: merging collapsed (histogram) samples is
// bucket-exact — identical to streaming every observation through one
// bounded sample.
func TestSampleMergeBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var a, b, both Sample
	a.Bound(50)
	b.Bound(50)
	both.Bound(50)
	for i := 0; i < 800; i++ {
		x := math.Exp(rng.Float64() * 8)
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		both.Add(x)
	}
	if !a.Bounded() || !b.Bounded() {
		t.Fatal("inputs did not collapse")
	}
	a.Merge(&b)
	if a.N() != both.N() || a.Min() != both.Min() || a.Max() != both.Max() {
		t.Fatalf("merged bounded sample diverged: %v vs %v", a.String(), both.String())
	}
	// The running sums accumulate in different orders; identical up to
	// float associativity.
	if d := math.Abs(a.Mean() - both.Mean()); d > 1e-9*both.Mean() {
		t.Fatalf("merged mean off by %g", d)
	}
	for _, p := range []float64{0.5, 0.99} {
		if a.Percentile(p) != both.Percentile(p) {
			t.Fatalf("p%.2f: merged %g != combined %g", p, a.Percentile(p), both.Percentile(p))
		}
	}
	// Mixed modes: an exact sample absorbing a collapsed one collapses.
	var c Sample
	c.Add(3)
	c.Merge(&a)
	if !c.Bounded() || c.N() != a.N()+1 {
		t.Fatalf("mixed-mode merge: bounded=%v n=%d want %d", c.Bounded(), c.N(), a.N()+1)
	}
}

package machine

import (
	"fmt"
	"strings"

	"cwnsim/internal/metrics"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
)

// Stats holds everything ORACLE reported for one run: utilization
// (overall, per-PE, over time), completion time, channel utilizations,
// message counts and distance distributions, plus the program's result.
//
// Stats is mergeable: a sharded run folds per-shard copies with merge
// at finalize, and the statsmerge analyzer (internal/analysis) checks
// at vet time that every field is either folded there or carries a
// //simlint:nomerge tag saying why not — so a field added here but
// forgotten in merge fails the build instead of silently dropping a
// statistic from sharded runs.
//
//simlint:mergeable
type Stats struct {
	// Labels, set identically on every shard by the coordinator.
	Topology string //simlint:nomerge label: group-level, set at construction
	Strategy string //simlint:nomerge label: group-level, set at construction
	Workload string //simlint:nomerge label: group-level, set at construction
	P        int    //simlint:nomerge label: the full machine size, not a per-shard count
	Goals    int

	// Outcome. Completed means every injected job delivered its root
	// response and the source was exhausted; Result is the last
	// completed job's value (the program result for single-job runs).
	// Stalled flags an incomplete run where jobs remained in flight but
	// nothing was queued, executing, or on a channel — a lost goal or
	// deadlock, as opposed to honest saturation at MaxTime.
	Completed bool     //simlint:nomerge outcome: a group-level decision the coordinator sets at a window barrier
	Stalled   bool     //simlint:nomerge outcome: group-level, decided at window barriers
	Result    int64    //simlint:nomerge outcome: the last completed job's value, chosen by the coordinator
	Makespan  sim.Time //simlint:nomerge outcome: group virtual time, not a per-shard sum
	Events    uint64

	// Job stream accounting. JobsInjected counts arrivals; JobsDone
	// counts delivered root responses (fewer than injected when an
	// overloaded stream hits MaxTime). JobRecords holds one latency
	// record per completed job in completion order — capped at
	// Config.SojournBound records when a bound is set, so long streams
	// stay in bounded memory. Sojourn aggregates every completion and
	// SteadySojourn only jobs injected at or after Warmup, so ramp-up
	// transients do not pollute tail percentiles; both accrue
	// streamingly and are complete even when JobRecords is capped.
	// SteadyJobsDone counts root responses delivered at or after Warmup
	// — the completion count SteadyThroughput divides by, so throughput
	// and sojourn percentiles describe the same post-warm-up window.
	JobsInjected   int64
	JobsDone       int64
	SteadyJobsDone int64
	JobRecords     []JobRecord
	Sojourn        metrics.Sample
	SteadySojourn  metrics.Sample
	Warmup         sim.Time //simlint:nomerge config echo: identical on every shard by construction
	WarmupBusy     sim.Time

	// PE activity.
	TotalBusy      sim.Time
	BusyPerPE      []sim.Time
	GoalsPerPE     []int64
	GoalsExecuted  int64
	RespIntegrated int64

	// Message accounting. GoalHops is the paper's Table 3 quantity: the
	// number of hops each goal message travelled before being accepted
	// (CWN counts its whole walk, including backtracking). GoalDist is
	// the net topological displacement from the goal's origin to its
	// executing PE. RespHops counts response routing hops.
	GoalHops  metrics.Hist
	GoalDist  metrics.Hist
	RespHops  metrics.Hist
	MsgCounts [numMsgKinds]int64

	// Channel activity, indexed by channel ID.
	ChannelBusy []sim.Time
	ChannelMsgs []int64

	// QueueDelay summarizes, per executed goal, the virtual time between
	// its final acceptance and the start of its execution — the pure
	// queueing component of latency. Hoarding strategies (GM on grids)
	// show it as a long mean delay.
	QueueDelay metrics.Summary

	// Timeline is percent utilization per sampling window (plots 11-16);
	// empty unless Config.SampleInterval > 0.
	Timeline metrics.Series //simlint:nomerge sampling series: shards defer raw partials and shardGroup.mergeSamples folds them into the merged Stats directly, bypassing merge

	// QueueLen and QueueImbalance sample the ready queues alongside the
	// utilization timeline: mean queue length across PEs, and Jain's
	// fairness index over per-PE queue lengths (1 = perfectly even).
	// Empty unless Config.SampleInterval > 0.
	QueueLen       metrics.Series //simlint:nomerge sampling series: folded from deferred per-shard partials by shardGroup.mergeSamples, not merge
	QueueImbalance metrics.Series //simlint:nomerge sampling series: Jain's index is a ratio of sums, unmergeable from per-shard indices — shardGroup.mergeSamples recomputes it from pooled raw partials

	// Monitor holds the per-PE utilization frames of ORACLE's load
	// monitor; empty unless Config.MonitorPE and SampleInterval are set.
	Monitor trace.Monitor //simlint:nomerge sampling frames: shardGroup.mergeSamples concatenates the shards' PE-block frames into full-machine frames, bypassing merge

	// Scenario accounting (internal/scenario); all zero on unscripted
	// runs. GoalsRequeued counts goals evacuated from failed PEs or
	// redirected away on arrival; ServiceAborts the executions cut off
	// mid-service (their partial work was lost); RootRedirects the
	// injections diverted off a failed root PE. DownPETime integrates
	// PE-blackout time over the run, and SojournWindows records each
	// sampling window's p99 sojourn (scenario runs with sampling on) —
	// the series recovery analysis reads.
	GoalsRequeued  int64
	ServiceAborts  int64
	RootRedirects  int64
	DownPETime     sim.Time
	SojournWindows metrics.Series //simlint:nomerge scenario series: shards defer each window's raw sojourns in shardSamples and shardGroup.mergeSamples pools them into one machine-wide p99 series, bypassing merge

	// Crash-with-state-loss accounting (the `crash:` scenario op; all
	// zero under blackout-only scripts). GoalsLost counts goals whose
	// state was destroyed or discarded because a crash killed their
	// attempt: vaporized on the crashed PE (queued, in service, or an
	// executed parent's pending spawn record), purged from live PEs'
	// queues when the job aborted, or dropped in transit/at service
	// completion as stale. JobsAborted counts attempts destroyed by
	// crashes; JobsRetried the root re-injections that followed;
	// JobsAbandoned the aborts that exhausted Config.RetryLimit and
	// were given up instead (JobsRetried + JobsAbandoned ==
	// JobsAborted always — with no limit set JobsAbandoned is zero and
	// every abort retries). Retried jobs keep their original injection
	// time, so sojourn figures bill the lost attempt; abandoned jobs
	// count as injected but never done, which is what Goodput reads.
	GoalsLost     int64
	JobsAborted   int64
	JobsRetried   int64
	JobsAbandoned int64

	// InjSojournWindows is the injection-time-keyed companion of
	// SojournWindows: each point is the p99 sojourn of the jobs
	// INJECTED in that sampling window (recorded at the window's end),
	// isolating what newly arriving jobs experienced. Completion keying
	// lets blackout stragglers echo into post-restore windows; this
	// keying does not. Computed at finalize; same scenario+sampling
	// gate as SojournWindows.
	InjSojournWindows metrics.Series //simlint:nomerge scenario series: shardGroup.finalize re-buckets the shards' raw injection-window buckets to a common stride and computes the pooled percentiles directly, bypassing merge
}

func newStats(topo *topology.Topology, workloadName, stratName string) *Stats {
	return &Stats{
		Topology:    topo.Name(),
		Strategy:    stratName,
		Workload:    workloadName,
		P:           topo.Size(),
		BusyPerPE:   make([]sim.Time, topo.Size()),
		GoalsPerPE:  make([]int64, topo.Size()),
		ChannelBusy: make([]sim.Time, topo.NumChannels()),
		ChannelMsgs: make([]int64, topo.NumChannels()),
		Timeline:    metrics.Series{Label: "util%"},
	}
}

// merge folds shard o's statistics into s — the finalize step of a
// sharded run. Counters and totals sum; per-PE and per-channel arrays
// add elementwise (each shard wrote only its owned entries, and channel
// occupancy accrues per sending side); distribution metrics merge
// bucket-exactly. Outcome fields (Completed, Stalled, Result, Makespan)
// and labels are group-level decisions the coordinator sets — merge
// leaves them alone. JobRecords concatenate; the caller re-sorts them
// into completion order afterwards.
func (s *Stats) merge(o *Stats) {
	s.Goals += o.Goals
	s.Events += o.Events
	s.JobsInjected += o.JobsInjected
	s.JobsDone += o.JobsDone
	s.SteadyJobsDone += o.SteadyJobsDone
	s.JobRecords = append(s.JobRecords, o.JobRecords...)
	s.Sojourn.Merge(&o.Sojourn)
	s.SteadySojourn.Merge(&o.SteadySojourn)
	s.WarmupBusy += o.WarmupBusy
	s.TotalBusy += o.TotalBusy
	for i, b := range o.BusyPerPE {
		s.BusyPerPE[i] += b
	}
	for i, g := range o.GoalsPerPE {
		s.GoalsPerPE[i] += g
	}
	s.GoalsExecuted += o.GoalsExecuted
	s.RespIntegrated += o.RespIntegrated
	s.GoalHops.Merge(&o.GoalHops)
	s.GoalDist.Merge(&o.GoalDist)
	s.RespHops.Merge(&o.RespHops)
	for k := range s.MsgCounts {
		s.MsgCounts[k] += o.MsgCounts[k]
	}
	for i, b := range o.ChannelBusy {
		s.ChannelBusy[i] += b
	}
	for i, n := range o.ChannelMsgs {
		s.ChannelMsgs[i] += n
	}
	s.QueueDelay.Merge(&o.QueueDelay)
	// The sampling series/monitor — and, on scenario runs, the windowed
	// sojourn series — are folded from deferred per-shard partials by
	// shardGroup.mergeSamples / shardGroup.finalize after this merge (the
	// per-shard Stats copies hold no series points on multi-shard runs);
	// the crash/scenario counters merge here.
	s.GoalsRequeued += o.GoalsRequeued
	s.ServiceAborts += o.ServiceAborts
	s.RootRedirects += o.RootRedirects
	s.DownPETime += o.DownPETime
	s.GoalsLost += o.GoalsLost
	s.JobsAborted += o.JobsAborted
	s.JobsRetried += o.JobsRetried
	s.JobsAbandoned += o.JobsAbandoned
}

// Utilization returns average PE utilization in [0,1]: total busy time
// over P×makespan.
func (s *Stats) Utilization() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.TotalBusy) / (float64(s.P) * float64(s.Makespan))
}

// UtilizationPercent returns Utilization×100, the paper's y-axis.
func (s *Stats) UtilizationPercent() float64 { return 100 * s.Utilization() }

// EffectiveUtilization returns busy time over the capacity that
// actually existed: P×makespan minus PE-blackout time. On unscripted
// runs it equals Utilization; under a scenario it answers "how well was
// the surviving capacity used" where Utilization would charge the dead
// PEs' idle time against the strategy.
func (s *Stats) EffectiveUtilization() float64 {
	cap := float64(s.P)*float64(s.Makespan) - float64(s.DownPETime)
	if cap <= 0 {
		return 0
	}
	return float64(s.TotalBusy) / cap
}

// SteadyUtilization returns average PE utilization in [0,1] over the
// post-warm-up window only — the steady-state figure for arrival
// streams, where the empty-machine ramp would otherwise drag the mean
// down. With no warm-up configured it equals Utilization. Returns 0 if
// the run ended before the warm-up elapsed.
func (s *Stats) SteadyUtilization() float64 {
	if s.Warmup <= 0 {
		return s.Utilization()
	}
	window := s.Makespan - s.Warmup
	if window <= 0 {
		return 0
	}
	return float64(s.TotalBusy-s.WarmupBusy) / (float64(s.P) * float64(window))
}

// MeanSojourn returns the average time a completed job spent in the
// system (injection to root response), warm-up jobs excluded. NaN when
// no completed job survived the warm-up cutoff — no data is not zero
// latency.
func (s *Stats) MeanSojourn() float64 { return s.SteadySojourn.Mean() }

// SojournP50 returns the median steady-state sojourn time (NaN when
// the steady sample is empty).
func (s *Stats) SojournP50() float64 { return s.SteadySojourn.Percentile(0.50) }

// SojournP99 returns the 99th-percentile steady-state sojourn time —
// the tail-latency figure an arrival-rate sweep plots (NaN when the
// steady sample is empty).
func (s *Stats) SojournP99() float64 { return s.SteadySojourn.Percentile(0.99) }

// Throughput returns completed jobs per unit virtual time over the
// whole run (0 for an empty run).
func (s *Stats) Throughput() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.JobsDone) / float64(s.Makespan)
}

// SteadyThroughput returns completed jobs per unit virtual time over
// the post-warm-up window only — the figure to plot against the
// warm-up-excluded sojourn percentiles, so a knee plot compares like
// with like (whole-run Throughput drags the empty-machine ramp into the
// denominator). With no warm-up configured it equals Throughput; it
// returns 0 if the run ended before the warm-up elapsed.
func (s *Stats) SteadyThroughput() float64 {
	if s.Warmup <= 0 {
		return s.Throughput()
	}
	window := s.Makespan - s.Warmup
	if window <= 0 {
		return 0
	}
	return float64(s.SteadyJobsDone) / float64(window)
}

// Goodput returns the fraction of injected jobs that completed — the
// availability figure a bounded-retry policy trades against latency.
// On a healthy run it is 1 at completion (or below 1 only because a
// saturated stream hit MaxTime); under crashes with RetryLimit set,
// abandoned jobs pull it down. 0 for an empty run.
func (s *Stats) Goodput() float64 {
	if s.JobsInjected == 0 {
		return 0
	}
	return float64(s.JobsDone) / float64(s.JobsInjected)
}

// Speedup returns total sequential work divided by makespan. At
// completion this equals the paper's "number of PEs × average
// utilization / 100".
func (s *Stats) Speedup() float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.TotalBusy) / float64(s.Makespan)
}

// PEUtilization returns PE i's individual utilization in [0,1].
func (s *Stats) PEUtilization(i int) float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.BusyPerPE[i]) / float64(s.Makespan)
}

// ChannelUtilization returns channel c's busy fraction.
func (s *Stats) ChannelUtilization(c int) float64 {
	if s.Makespan == 0 {
		return 0
	}
	return float64(s.ChannelBusy[c]) / float64(s.Makespan)
}

// MaxChannelUtilization returns the busiest channel's utilization — the
// "communication stagnation" indicator the paper kept low.
func (s *Stats) MaxChannelUtilization() float64 {
	max := 0.0
	for c := range s.ChannelBusy {
		if u := s.ChannelUtilization(c); u > max {
			max = u
		}
	}
	return max
}

// BalanceIndex returns Jain's fairness index over per-PE busy times:
// 1.0 means the load was spread perfectly evenly, 1/P means one PE did
// everything. The paper's "effectiveness at distributing the work" as a
// single number.
func (s *Stats) BalanceIndex() float64 {
	xs := make([]float64, len(s.BusyPerPE))
	for i, b := range s.BusyPerPE {
		xs[i] = float64(b)
	}
	return metrics.JainIndex(xs)
}

// TotalMessages returns the total message transmissions of all kinds.
func (s *Stats) TotalMessages() int64 {
	var n int64
	for _, c := range s.MsgCounts {
		n += c
	}
	return n
}

// AvgGoalHops returns the mean goal travel distance (paper: ~3 hops for
// CWN vs <1 for GM on the 10×10 grid).
func (s *Stats) AvgGoalHops() float64 { return s.GoalHops.Mean() }

// String renders a one-paragraph run summary.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s | %s | %s (%d goals)\n", s.Strategy, s.Topology, s.Workload, s.Goals)
	fmt.Fprintf(&b, "  completed=%v result=%d makespan=%d events=%d\n", s.Completed, s.Result, s.Makespan, s.Events)
	if s.JobsInjected > 1 {
		fmt.Fprintf(&b, "  jobs: %d/%d done, throughput=%.4f/unit, sojourn %s\n",
			s.JobsDone, s.JobsInjected, s.Throughput(), s.SteadySojourn.String())
	}
	fmt.Fprintf(&b, "  utilization=%.1f%% speedup=%.2f balance=%.2f (P=%d)\n", s.UtilizationPercent(), s.Speedup(), s.BalanceIndex(), s.P)
	fmt.Fprintf(&b, "  goal hops: %s\n", s.GoalHops.String())
	fmt.Fprintf(&b, "  queue delay: mean=%.1f max=%.0f\n", s.QueueDelay.Mean(), s.QueueDelay.Max())
	fmt.Fprintf(&b, "  messages: goal=%d resp=%d load=%d ctrl=%d maxChanUtil=%.1f%%",
		s.MsgCounts[MsgGoal], s.MsgCounts[MsgResponse], s.MsgCounts[MsgLoad], s.MsgCounts[MsgControl],
		100*s.MaxChannelUtilization())
	if s.DownPETime > 0 || s.GoalsRequeued > 0 {
		fmt.Fprintf(&b, "\n  scenario: requeued=%d aborts=%d rootRedirects=%d downPEtime=%d effUtil=%.1f%%",
			s.GoalsRequeued, s.ServiceAborts, s.RootRedirects, s.DownPETime, 100*s.EffectiveUtilization())
	}
	if s.GoalsLost > 0 || s.JobsAborted > 0 {
		fmt.Fprintf(&b, "\n  crashes: goalsLost=%d jobsAborted=%d jobsRetried=%d jobsAbandoned=%d goodput=%.3f",
			s.GoalsLost, s.JobsAborted, s.JobsRetried, s.JobsAbandoned, s.Goodput())
	}
	return b.String()
}

package experiments

import (
	"strings"
	"testing"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TestSingleJobSeedRegression pins single-job mode to the seed's paper
// results: the job-stream refactor must reproduce the pre-refactor
// event sequences bit for bit, which makespan AND total event count
// together witness. Values were recorded from the seed simulator
// (fib(13), seed 1, default config).
func TestSingleJobSeedRegression(t *testing.T) {
	cases := []struct {
		strat    StrategySpec
		topo     TopoSpec
		makespan sim.Time
		events   uint64
	}{
		{CWN(9, 2), Grid(10), 514, 17115},
		{GM(1, 2, 20), Grid(10), 1269, 38422},
		{CWN(5, 1), DLM(10, 5), 326, 12005},
		{GM(1, 1, 20), DLM(10, 5), 820, 27337},
		{ACWN(9, 2, 3, 40), Grid(10), 491, 17764},
	}
	for _, c := range cases {
		r, err := RunSpec{Topo: c.topo, Workload: Fib(13), Strategy: c.strat}.ExecuteErr()
		if err != nil {
			t.Fatalf("%s on %s: %v", c.strat.Label(), c.topo.Label(), err)
		}
		if r.Makespan != c.makespan || r.Stats.Events != c.events {
			t.Errorf("%s on %s: makespan=%d events=%d, want makespan=%d events=%d (seed result drifted)",
				c.strat.Label(), c.topo.Label(), r.Makespan, r.Stats.Events, c.makespan, c.events)
		}
		if r.Stats.Result != workload.FibValue(13) {
			t.Errorf("%s on %s: result = %d, want fib(13)", c.strat.Label(), c.topo.Label(), r.Stats.Result)
		}
	}
}

func TestExecuteErrOnLostRun(t *testing.T) {
	// A 100-goal chain on one PE needs ~1500 units; MaxTime 50 cannot
	// finish, and a single-job run failing to drain is an error (the
	// seed panicked here).
	spec := RunSpec{
		Topo:     TopoSpec{Kind: "single"},
		Workload: WorkloadSpec{Kind: "chain", N: 100},
		Strategy: StrategySpec{Kind: "local"},
		MaxTime:  50,
	}
	if _, err := spec.ExecuteErr(); err == nil {
		t.Fatal("ExecuteErr returned nil for a run that hit MaxTime")
	}

	// RunAll propagates the failure without crashing, keeps the good
	// run's result, and leaves a nil slot for the bad one.
	good := RunSpec{Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1)}
	results, err := RunAll([]RunSpec{good, spec}, 2)
	if err == nil {
		t.Fatal("RunAll swallowed the failing spec")
	}
	if results[0] == nil || !results[0].Stats.Completed {
		t.Fatal("RunAll dropped the successful run")
	}
	if results[1] != nil {
		t.Fatal("RunAll returned a result for the failed run")
	}
}

func TestExecuteErrRecoversBuilderPanics(t *testing.T) {
	// Unknown kinds and invalid parameters panic in the builders; a
	// sweep must get an error for that run, not a process crash.
	bad := []RunSpec{
		{Topo: Grid(4), Workload: Fib(8), Strategy: StrategySpec{Kind: "no-such"}},
		{Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1), Arrival: ArrivalSpec{Kind: "interval", Gap: 0, Jobs: 5}},
		{Topo: Grid(4), Workload: Fib(8), Strategy: CWN(3, 1), Warmup: 10, MaxTime: 5},
	}
	results, err := RunAll(bad, 2)
	if err == nil {
		t.Fatal("RunAll returned nil error for all-bad specs")
	}
	for i, r := range results {
		if r != nil {
			t.Errorf("bad spec %d produced a result", i)
		}
	}
}

func TestStreamSpecExecutes(t *testing.T) {
	spec := RunSpec{
		Topo:     Grid(5),
		Workload: Fib(8),
		Strategy: CWN(3, 1),
		Arrival:  PoissonArrivals(50, 30),
		Warmup:   200,
	}
	r, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 30 {
		t.Fatalf("Jobs = %d, want 30", r.Jobs)
	}
	if r.P99Soj < r.P50Soj || r.P50Soj <= 0 {
		t.Fatalf("implausible sojourn percentiles: p50=%f p99=%f", r.P50Soj, r.P99Soj)
	}
	if r.Throughput <= 0 {
		t.Fatalf("Throughput = %f, want > 0", r.Throughput)
	}
	if !strings.Contains(spec.Name(), "poisson") {
		t.Fatalf("stream run name %q does not mention its arrival process", spec.Name())
	}

	// Same seed, same spec: identical latency numbers.
	r2, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if r.P99Soj != r2.P99Soj || r.Makespan != r2.Makespan {
		t.Fatalf("stream run not deterministic: p99 %f vs %f", r.P99Soj, r2.P99Soj)
	}
}

// droppingStrategy loses every spawned goal, stalling the machine.
type droppingStrategy struct{}

func (droppingStrategy) Name() string           { return "dropper" }
func (droppingStrategy) Setup(*machine.Machine) {}
func (droppingStrategy) NewNode(*machine.PE) machine.NodeStrategy {
	return machine.AdaptNode(dropperNode{})
}

type dropperNode struct{}

func (dropperNode) PlaceNewGoal(*machine.Goal)     {}
func (dropperNode) GoalArrived(*machine.Goal, int) {}
func (dropperNode) Control(int, any)               {}

func TestStalledStreamIsAnError(t *testing.T) {
	RegisterStrategy("stub-dropper", func(StrategySpec) machine.Strategy { return droppingStrategy{} })
	_, err := RunSpec{
		Topo:     TopoSpec{Kind: "single"},
		Workload: Fib(8),
		Strategy: StrategySpec{Kind: "stub-dropper"},
		Arrival:  IntervalArrivals(100, 3),
		MaxTime:  20_000,
	}.ExecuteErr()
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("lost-goal stream returned %v, want a stalled error", err)
	}
}

func TestSaturatedStreamIsNotAnError(t *testing.T) {
	spec := RunSpec{
		Topo:     TopoSpec{Kind: "single"},
		Workload: Fib(8),
		Strategy: StrategySpec{Kind: "local"},
		Arrival:  IntervalArrivals(10, 500),
		MaxTime:  3000,
	}
	r, err := spec.ExecuteErr()
	if err != nil {
		t.Fatalf("saturated stream returned error: %v", err)
	}
	if !r.Saturated() {
		t.Fatal("overloaded single PE did not saturate")
	}
	if r.Stats.JobsDone >= r.Stats.JobsInjected {
		t.Fatal("saturation without a backlog")
	}
}

func TestParseArrival(t *testing.T) {
	cases := []struct {
		in   string
		want ArrivalSpec
	}{
		{"single", SingleArrival()},
		{"interval:100:50", IntervalArrivals(100, 50)},
		{"poisson:62.5:200", PoissonArrivals(62.5, 200)},
		{"burst:20:500:4", BurstArrivals(20, 500, 4)},
	}
	for _, c := range cases {
		got, err := ParseArrival(c.in)
		if err != nil {
			t.Errorf("ParseArrival(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseArrival(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "poisson", "poisson:x:5", "poisson:0:5", "poisson:-3:5",
		"poisson:NaN:10", "poisson:+Inf:10",
		"interval:100", "interval:0:10", "burst:1:2", "burst:5:0:2", "single:100:50", "warp:9"} {
		if _, err := ParseArrival(bad); err == nil {
			t.Errorf("ParseArrival(%q) succeeded, want error", bad)
		}
	}
}

// stubStrategy checks custom registration end to end.
type stubStrategy struct{ interval sim.Time }

func (s stubStrategy) Name() string { return "stub" }
func (s stubStrategy) Setup(*machine.Machine) {
	if s.interval <= 0 {
		panic("stub: bad interval")
	}
}
func (s stubStrategy) NewNode(pe *machine.PE) machine.NodeStrategy {
	return machine.AdaptNode(stubNode{pe})
}

type stubNode struct{ pe *machine.PE }

func (n stubNode) PlaceNewGoal(g *machine.Goal)       { n.pe.Accept(g) }
func (n stubNode) GoalArrived(g *machine.Goal, _ int) { n.pe.Accept(g) }
func (n stubNode) Control(int, any)                   {}

func TestRegistriesArePluggable(t *testing.T) {
	RegisterStrategy("stub-test", func(ss StrategySpec) machine.Strategy {
		return stubStrategy{interval: sim.Time(ss.Interval)}
	})
	RegisterTopology("stub-line", func(ts TopoSpec) *topology.Topology { return topology.NewRing(ts.N) })
	RegisterWorkload("stub-pair", func(WorkloadSpec) *workload.Tree { return workload.NewFullBinary(1) })
	RegisterArrival("stub-twice", func(_ ArrivalSpec, tree *workload.Tree) machine.JobSource {
		return machine.NewFixedInterval(tree, 100, 2)
	})

	r, err := RunSpec{
		Topo:     TopoSpec{Kind: "stub-line", N: 4},
		Workload: WorkloadSpec{Kind: "stub-pair"},
		Strategy: StrategySpec{Kind: "stub-test", Interval: 7},
		Arrival:  ArrivalSpec{Kind: "stub-twice"},
	}.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if r.Jobs != 2 {
		t.Fatalf("custom arrival ran %d jobs, want 2", r.Jobs)
	}
	if r.Stats.Strategy != "stub" {
		t.Fatalf("custom strategy label %q", r.Stats.Strategy)
	}

	for _, kinds := range [][]string{TopologyKinds(), WorkloadKinds(), StrategyKinds(), ArrivalKinds()} {
		if len(kinds) == 0 {
			t.Fatal("a registry reports no kinds")
		}
	}
}

func TestRegistryRejectsDuplicatesAndUnknowns(t *testing.T) {
	RegisterStrategy("stub-dup", func(StrategySpec) machine.Strategy { return stubStrategy{interval: 1} })
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		RegisterStrategy("stub-dup", func(StrategySpec) machine.Strategy { return stubStrategy{interval: 1} })
	}()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Error("unknown kind did not panic")
				return
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "cwn") {
				t.Errorf("unknown-kind panic %v does not list registered kinds", r)
			}
		}()
		StrategySpec{Kind: "no-such-kind"}.Build()
	}()
}

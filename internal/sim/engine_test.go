package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %d, want 30", e.Now())
	}
}

func TestFIFOAtSameTime(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	if len(got) != 100 {
		t.Fatalf("fired %d events, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of insertion order: got[%d]=%d", i, v)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var trace []Time
	e.Schedule(10, func() {
		trace = append(trace, e.Now())
		e.Schedule(5, func() {
			trace = append(trace, e.Now())
			e.Schedule(0, func() { trace = append(trace, e.Now()) })
		})
	})
	e.Run()
	want := []Time{10, 15, 15}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	e.Schedule(5, func() { ev.Cancel() })
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	ev.Cancel()
}

func TestCancelAlreadyPopped(t *testing.T) {
	e := NewEngine(1)
	var ev *Event
	ev = e.Schedule(1, func() {})
	e.Run()
	ev.Cancel() // must not panic
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, d := range []Time{5, 10, 15, 20} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	more := e.RunUntil(12)
	if !more {
		t.Fatal("RunUntil(12) = false, want true (events pending)")
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 10 {
		t.Fatalf("fired = %v, want [5 10]", fired)
	}
	if e.Now() != 12 {
		t.Fatalf("Now = %d, want 12 after RunUntil(12)", e.Now())
	}
	more = e.RunUntil(100)
	if more {
		t.Fatal("RunUntil(100) = true, want false (drained)")
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100 (clock advances to deadline)", e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i), func() {
			n++
			if n == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if n != 3 {
		t.Fatalf("processed %d events after Stop, want 3", n)
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false")
	}
	if e.Step() {
		t.Fatal("Step succeeded after Stop")
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine(1).Schedule(-1, func() {})
}

func TestAtPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("At(past) did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil fn) did not panic")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

func TestProcessedAndPending(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed = %d, want 5", e.Processed())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Run, want 0", e.Pending())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []int {
		e := NewEngine(seed)
		var order []int
		// Schedule events at random times drawn from the engine's stream.
		for i := 0; i < 200; i++ {
			i := i
			e.Schedule(Time(e.Rng().Intn(50)), func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs with equal seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: for any set of delays, events fire in non-decreasing time
// order, ties in insertion order.
func TestQuickHeapOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine(7)
		type rec struct {
			at  Time
			seq int
		}
		var fired []rec
		for i, d := range delays {
			i := i
			at := Time(d % 997)
			e.At(at, func() { fired = append(fired, rec{at, i}) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i].at < fired[i-1].at {
				return false
			}
			if fired[i].at == fired[i-1].at && fired[i].seq < fired[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset prevents exactly that subset
// from firing.
func TestQuickCancelSubset(t *testing.T) {
	f := func(delays []uint8, mask []bool) bool {
		e := NewEngine(3)
		events := make([]*Event, len(delays))
		fired := make([]bool, len(delays))
		for i, d := range delays {
			i := i
			events[i] = e.At(Time(d), func() { fired[i] = true })
		}
		for i := range events {
			if i < len(mask) && mask[i] {
				events[i].Cancel()
			}
		}
		e.Run()
		for i := range events {
			wantFired := !(i < len(mask) && mask[i])
			if fired[i] != wantFired {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRngDeterminism(t *testing.T) {
	a := NewEngine(99).Rng()
	b := NewEngine(99).Rng()
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("engines with equal seeds have different random streams")
		}
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	delays := make([]Time, 1024)
	for i := range delays {
		delays[i] = Time(rng.Intn(1000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1)
		for _, d := range delays {
			e.Schedule(d, func() {})
		}
		e.Run()
	}
}

func BenchmarkHotLoop(b *testing.B) {
	// Self-rescheduling event: measures raw event dispatch cost.
	e := NewEngine(1)
	n := 0
	var step func()
	step = func() {
		n++
		if n < b.N {
			e.Schedule(1, step)
		}
	}
	e.Schedule(1, step)
	b.ResetTimer()
	e.Run()
}

package experiments

import (
	"encoding/json"
	"fmt"
	"os"
)

// SpecFile is the on-disk experiment description consumed by cmd/sweep:
// a list of runs plus optional shared defaults.
type SpecFile struct {
	// Comment is free-form documentation carried in the file.
	Comment string `json:"comment,omitempty"`
	// Defaults, when present, fills in zero-valued fields of every run
	// (topology, workload, strategy, seed, sampling).
	Defaults *RunSpec  `json:"defaults,omitempty"`
	Runs     []RunSpec `json:"runs"`
}

// LoadSpecs reads a SpecFile from path and applies its defaults.
func LoadSpecs(path string) ([]RunSpec, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var sf SpecFile
	if err := json.Unmarshal(blob, &sf); err != nil {
		return nil, fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if len(sf.Runs) == 0 {
		return nil, fmt.Errorf("experiments: %s contains no runs", path)
	}
	for i := range sf.Runs {
		applyDefaults(&sf.Runs[i], sf.Defaults)
		// Validate eagerly: a bad spec should fail at load, not mid-sweep.
		if err := validateSpec(sf.Runs[i]); err != nil {
			return nil, fmt.Errorf("experiments: %s run %d: %w", path, i, err)
		}
	}
	return sf.Runs, nil
}

// SaveSpecs writes runs as a SpecFile.
func SaveSpecs(path, comment string, runs []RunSpec) error {
	blob, err := json.MarshalIndent(SpecFile{Comment: comment, Runs: runs}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func applyDefaults(rs *RunSpec, d *RunSpec) {
	if d == nil {
		return
	}
	if rs.Topo.Kind == "" {
		rs.Topo = d.Topo
	}
	if rs.Workload.Kind == "" {
		rs.Workload = d.Workload
	}
	if rs.Strategy.Kind == "" {
		rs.Strategy = d.Strategy
	}
	if rs.Arrival.Kind == "" {
		rs.Arrival = d.Arrival
	}
	if rs.Seed == 0 {
		rs.Seed = d.Seed
	}
	if rs.Warmup == 0 {
		rs.Warmup = d.Warmup
	}
	if rs.MaxTime == 0 {
		rs.MaxTime = d.MaxTime
	}
	if rs.SampleInterval == 0 {
		rs.SampleInterval = d.SampleInterval
	}
	if rs.LoadMetric == "" {
		rs.LoadMetric = d.LoadMetric
	}
	if rs.GoalHopTime == 0 {
		rs.GoalHopTime = d.GoalHopTime
	}
	if rs.RespHopTime == 0 {
		rs.RespHopTime = d.RespHopTime
	}
}

// validateSpec builds the spec's components, converting panics from
// unknown kinds or bad parameters into errors.
func validateSpec(rs RunSpec) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	rs.Topo.Build()
	rs.Strategy.Build()
	rs.Arrival.Build(rs.Workload.Build())
	return nil
}

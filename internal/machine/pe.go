package machine

import (
	"fmt"
	"sync/atomic"

	"cwnsim/internal/sim"
	"cwnsim/internal/trace"
)

// itemRing is a growable circular FIFO of ready-queue items. It replaces
// the old append-and-compact slice: pushes and pops are O(1) with no
// copying, and the mid-queue removals TakeNewest/OldestQueuedGoal need
// shift only the shorter side of the removal point. Capacity is always a
// power of two (index arithmetic by mask).
type itemRing struct {
	buf  []item
	head int
	n    int
}

func (r *itemRing) len() int { return r.n }

// at returns the item at logical position i (0 = front). Callers must
// keep i < len.
func (r *itemRing) at(i int) *item {
	return &r.buf[(r.head+i)&(len(r.buf)-1)]
}

func (r *itemRing) push(it item) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = it
	r.n++
}

// pushFront prepends an item, making it the next to be served. The
// failure path uses it to put an interrupted response back at the head
// of the queue so it is combined first on recovery.
func (r *itemRing) pushFront(it item) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = it
	r.n++
}

func (r *itemRing) popFront() item {
	it := r.buf[r.head]
	r.buf[r.head] = item{} // drop references so pooled objects are not pinned
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return it
}

// removeAt deletes the item at logical position i, preserving FIFO order
// of the rest by shifting the shorter side.
func (r *itemRing) removeAt(i int) {
	mask := len(r.buf) - 1
	if i < r.n-1-i {
		for j := i; j > 0; j-- {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j-1)&mask]
		}
		r.buf[r.head] = item{}
		r.head = (r.head + 1) & mask
	} else {
		for j := i; j < r.n-1; j++ {
			r.buf[(r.head+j)&mask] = r.buf[(r.head+j+1)&mask]
		}
		r.buf[(r.head+r.n-1)&mask] = item{}
	}
	r.n--
}

func (r *itemRing) grow() {
	oldCap := len(r.buf)
	newCap := 16
	if oldCap > 0 {
		newCap = oldCap * 2
	}
	nb := make([]item, newCap)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&(oldCap-1)]
	}
	r.buf = nb
	r.head = 0
}

// PE is one processing element. It serves one ready-queue message at a
// time (goal execution or response integration); all fields are managed
// by the machine, and strategies interact through the exported methods.
//
// Memory layout: PE structs live contiguously in Machine.peBlock, and
// the per-event hot scalars — busy, serviceEnd, busyTime, failed, speed
// — live in machine-level parallel slices indexed by lx (see the
// struct-of-arrays fields on Machine), keeping the event loop's working
// set dense. The adjacency slices (nbrs, nbrLoad, nbrSeen, nbrDown,
// chansOf) are subslices of machine-wide flat backings; nbrs is
// ascending, so neighbor lookup is a binary search (nbrIdx) rather than
// a per-PE map.
type PE struct {
	m  *Machine
	id int
	lx int // index into the machine's block-local parallel slices (id - peLo)

	ready     itemRing    // FIFO ready queue of waiting messages
	inService item        // the message in service (valid while busy)
	svc       sim.Timer   // reusable service-completion event, held by value
	pending   pendingSlab // tasks awaiting child responses, by goal ID

	nbrs    []int      // cached topology neighbors, ascending
	nbrLoad []int32    // last known load per neighbor (assumed 0 initially)
	nbrSeen []sim.Time // when that load was learned (-1 = never)
	nbrDown []bool     // last availability heard per neighbor (env broadcasts)
	chansOf []int      // attached channel IDs, ascending (broadcast fan-out)

	node NodeStrategy // strategy state for this PE (set after construction)

	// Capability flags, resolved once at construction from the node's
	// optional interfaces (FailureAware/SpeedAware/LoadAware), so event
	// delivery on the hot path costs one bool test, not a type assert.
	wantsFailure bool
	wantsSpeed   bool
	wantsLoad    bool

	// Blackout accounting (internal/scenario); the failed flag itself is
	// hot state and lives in Machine.peFailed.
	failedAt sim.Time
	downTime sim.Time // accumulated blackout time (closed on recovery/finalize)

	// ckptDebt is checkpoint cost accrued while idle: a busy PE pays a
	// tick's cost by extending its in-flight service, an idle one owes
	// it and pays at its next service start (checkpointTick).
	ckptDebt sim.Time

	// accounting
	goalsExecuted  int64
	goalsAccepted  int64
	respIntegrated int64
}

// nbrIdx returns the index of nbrPE in pe.nbrs, or -1 when nbrPE is not
// a neighbor. Neighbor lists are ascending (topology contract), so a
// binary search replaces the per-PE map the old layout carried.
func (pe *PE) nbrIdx(nbrPE int) int {
	lo, hi := 0, len(pe.nbrs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pe.nbrs[mid] < nbrPE {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(pe.nbrs) && pe.nbrs[lo] == nbrPE {
		return lo
	}
	return -1
}

// FailedLoad is the load a blacked-out PE advertises: large enough
// that push strategies (which seek the least-loaded PE) steer away,
// small enough that int32 neighbor tables and strategy arithmetic
// cannot overflow. Pull strategies that hunt for the MOST-loaded
// neighbor must treat loads at or above this value as "unavailable,
// not a victim" — a failed PE's queue has been evacuated, and stealing
// from it yields only refusals until recovery.
const FailedLoad = 1 << 30

// ID returns the PE's index, 0..P-1.
func (pe *PE) ID() int { return pe.id }

// Node returns the PE's strategy state (for inspection and tests).
func (pe *PE) Node() NodeStrategy { return pe.node }

// Machine returns the owning machine.
func (pe *PE) Machine() *Machine { return pe.m }

// Now returns the current virtual time.
func (pe *PE) Now() sim.Time { return pe.m.eng.Now() }

// Load returns this PE's advertised load under the configured metric.
// A failed PE advertises FailedLoad, steering every load-comparing
// strategy away from it until recovery.
func (pe *PE) Load() int {
	if pe.m.peFailed[pe.lx] {
		return FailedLoad
	}
	load := pe.queueLen()
	if pe.m.cfg.LoadMetric == LoadQueuePlusPending {
		load += pe.pending.len()
	}
	return load
}

// Failed reports whether the PE is currently blacked out by a scenario.
func (pe *PE) Failed() bool { return pe.m.peFailed[pe.lx] }

// Speed returns the PE's current service-speed multiplier (1 nominal).
func (pe *PE) Speed() float64 {
	if sp := pe.m.peSpeed; sp != nil && sp[pe.lx] != 0 {
		return sp[pe.lx]
	}
	return 1
}

// queueLen returns the number of messages waiting (not counting one in
// service) — the paper's base load measure.
func (pe *PE) queueLen() int { return pe.ready.len() }

// QueuedGoals returns how many ready-queue entries are unstarted goals
// (exportable work, as opposed to responses which must be handled
// locally).
func (pe *PE) QueuedGoals() int {
	n := 0
	for i := 0; i < pe.ready.len(); i++ {
		if pe.ready.at(i).kind == itemGoal {
			n++
		}
	}
	return n
}

// PendingTasks returns the number of local tasks awaiting responses —
// the "future commitments" component of the refined load metric.
func (pe *PE) PendingTasks() int { return pe.pending.len() }

// Neighbors returns the PE's neighbors in ascending order. Callers must
// not modify the slice.
func (pe *PE) Neighbors() []int { return pe.nbrs }

// KnownLoad returns the most recently learned load of neighbor nbrPE and
// the time it was learned (-1 if never; loads are assumed 0 until first
// heard, as the paper assumes for proximities).
func (pe *PE) KnownLoad(nbrPE int) (load int, seenAt sim.Time) {
	i := pe.nbrIdx(nbrPE)
	if i < 0 {
		panic(fmt.Sprintf("machine: PE %d is not a neighbor of PE %d", nbrPE, pe.id))
	}
	return int(pe.nbrLoad[i]), pe.nbrSeen[i]
}

// noteLoad records a load observation for neighbor nbrPE.
func (pe *PE) noteLoad(nbrPE int, load int) {
	if i := pe.nbrIdx(nbrPE); i >= 0 {
		pe.nbrLoad[i] = int32(load)
		pe.nbrSeen[i] = pe.m.eng.Now()
		if pe.wantsLoad {
			pe.node.HandleEvent(Event{Kind: NeighborLoadChanged, From: nbrPE, Load: load})
		}
	}
}

// LeastLoadedNeighbor returns the neighbor with the smallest known load.
// Ties are broken uniformly at random from the run's seeded stream (so
// repeated forwarding does not systematically favor low PE numbers).
// Returns (-1, 0) when the PE has no neighbors.
func (pe *PE) LeastLoadedNeighbor() (nbrPE, load int) {
	if len(pe.nbrs) == 0 {
		return -1, 0
	}
	best := int32(1<<31 - 1)
	count := 0
	choice := -1
	for i, nb := range pe.nbrs {
		l := pe.nbrLoad[i]
		switch {
		case l < best:
			best, count, choice = l, 1, nb
		case l == best:
			count++
			if pe.m.eng.Rng().Intn(count) == 0 {
				choice = nb
			}
		}
	}
	return choice, int(best)
}

// MinNeighborLoad returns the smallest known neighbor load, or 0 when
// the PE has no neighbors.
func (pe *PE) MinNeighborLoad() int {
	if len(pe.nbrs) == 0 {
		return 0
	}
	best := pe.nbrLoad[0]
	for _, l := range pe.nbrLoad[1:] {
		if l < best {
			best = l
		}
	}
	return int(best)
}

// Accept places the goal in this PE's ready queue. Under CWN acceptance
// is final ("a goal, once it is accepted by a PE, remains there");
// strategies with re-distribution (GM, ACWN) may later pluck a still
// queued goal back out with TakeNewestQueuedGoal, so travel-distance
// statistics are recorded when the goal finally executes, not here.
func (pe *PE) Accept(g *Goal) {
	g.AcceptedAt = pe.m.eng.Now()
	pe.goalsAccepted++
	pe.m.emit(trace.GoalAccepted, pe.id, -1, g.ID)
	pe.enqueue(item{kind: itemGoal, goal: g})
}

// SendGoal forwards the goal one hop to neighbor `to`, charging the
// connecting channel. On delivery the receiving strategy's GoalArrived
// runs. The hop counter increments — including when a goal is bounced
// back where it came from, matching the paper's travel-distance
// accounting.
func (pe *PE) SendGoal(to int, g *Goal) {
	m := pe.m
	chs := m.chansBetween(pe.id, to)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: SendGoal %d->%d: not neighbors", pe.id, to))
	}
	g.Hops++
	m.stats.MsgCounts[MsgGoal]++
	m.emit(trace.GoalSent, pe.id, to, g.ID)
	ch := m.pickChannel(chs)
	m.goalsInTransit++
	w := m.newMsg(wireGoal, pe.id, pe.Load())
	w.goal = g
	w.to = to
	m.transmit(ch, m.cfg.GoalHopTime, w)
}

// RouteGoal ships the goal to an arbitrary destination PE along a
// shortest path, one hop at a time on the co-processors; only the final
// PE's strategy sees GoalArrived. Strategies with global placement
// decisions (e.g. the Ideal oracle baseline) use this; neighborhood
// strategies should prefer the hop-by-hop SendGoal.
func (pe *PE) RouteGoal(dst int, g *Goal) {
	if dst == pe.id {
		pe.Accept(g)
		return
	}
	pe.m.routeGoal(pe.id, dst, g)
}

// SendControl delivers an opaque strategy payload to neighbor `to`,
// charging CtrlHopTime on the connecting channel.
func (pe *PE) SendControl(to int, payload any) {
	m := pe.m
	chs := m.chansBetween(pe.id, to)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: SendControl %d->%d: not neighbors", pe.id, to))
	}
	m.stats.MsgCounts[MsgControl]++
	ch := m.pickChannel(chs)
	w := m.newMsg(wireCtrl, pe.id, pe.Load())
	w.to = to
	w.payload = payload
	m.transmit(ch, m.cfg.CtrlHopTime, w)
}

// BroadcastControl delivers a payload to every neighbor. On a bus each
// attached channel carries the broadcast as a single transaction heard
// by all members — the key bandwidth advantage of the double-lattice-
// mesh; on point-to-point topologies it degenerates to one message per
// link.
func (pe *PE) BroadcastControl(payload any) {
	pe.m.broadcast(pe, wireCtrlBcast, MsgControl, pe.m.cfg.CtrlHopTime, payload)
}

// TakeNewestQueuedGoal removes and returns the most recently enqueued
// unstarted goal, for strategies that re-export queued work. Returns
// nil when the queue holds no goals. In a depth-first tree computation
// the newest goal tends to be the smallest remaining subtree, so this
// policy keeps big work local and exports crumbs.
func (pe *PE) TakeNewestQueuedGoal() *Goal {
	for i := pe.ready.len() - 1; i >= 0; i-- {
		if it := pe.ready.at(i); it.kind == itemGoal {
			g := it.goal
			pe.ready.removeAt(i)
			return g
		}
	}
	return nil
}

// TakeOldestQueuedGoal removes and returns the least recently enqueued
// unstarted goal — the front of the queue, which in a tree computation
// is typically the largest waiting subtree. Exporting it lets the
// receiver become a self-sustaining source of further work.
func (pe *PE) TakeOldestQueuedGoal() *Goal {
	for i := 0; i < pe.ready.len(); i++ {
		if it := pe.ready.at(i); it.kind == itemGoal {
			g := it.goal
			pe.ready.removeAt(i)
			return g
		}
	}
	return nil
}

// enqueue appends a message to the ready queue and wakes the PE if
// idle. A failed PE only queues — responses freeze there until
// recovery restarts service.
func (pe *PE) enqueue(it item) {
	pe.ready.push(it)
	if m := pe.m; !m.peBusy[pe.lx] && !m.peFailed[pe.lx] {
		pe.startNext()
	}
}

// startNext begins service of the queue head.
func (pe *PE) startNext() {
	m := pe.m
	if pe.ready.len() == 0 {
		m.peBusy[pe.lx] = false
		return
	}
	it := pe.ready.popFront()
	m.peBusy[pe.lx] = true
	var dur sim.Time
	switch it.kind {
	case itemGoal:
		dur = m.cfg.GrainTime * sim.Time(it.goal.Task.Work)
		if m.cfg.TrackGoalDetail {
			m.stats.QueueDelay.Add(float64(m.eng.Now() - it.goal.AcceptedAt))
		}
		m.emit(trace.GoalExecStarted, pe.id, -1, it.goal.ID)
	case itemResponse:
		dur = m.cfg.CombineTime
	}
	if sp := m.peSpeed; sp != nil {
		if s := sp[pe.lx]; s != 0 {
			scaled := sim.Time(float64(dur) / s)
			if scaled < 1 {
				scaled = 1
			}
			dur = scaled
		}
	}
	if m.ckpt {
		// Restored work replays fast: goals of a crash retry starting
		// inside the job's replay horizon re-walk the tree at one unit
		// each — their results were snapshotted, not lost. The horizon
		// is set once at the retry and only read here, so the replay is
		// identical under any shard schedule. Checkpoint debt owed from
		// ticks that caught this PE idle is paid on top of the next
		// service.
		if it.kind == itemGoal && m.eng.Now() < it.goal.job.replayUntil {
			dur = 1
		}
		if d := pe.ckptDebt; d > 0 {
			pe.ckptDebt = 0
			dur += d
		}
	}
	m.peBusyTime[pe.lx] += dur
	m.peServiceEnd[pe.lx] = m.eng.Now() + dur
	pe.inService = it
	pe.svc.Schedule(dur)
}

// serviceDone fires when the in-service message completes: apply its
// effects, then start the next one. It is the PE's reusable Timer
// callback, so steady-state service costs no event allocations.
func (pe *PE) serviceDone() {
	it := pe.inService
	pe.inService = item{}
	pe.finish(it)
	pe.startNext()
}

// finish applies the effects of a completed service.
func (pe *PE) finish(it item) {
	switch it.kind {
	case itemGoal:
		g := it.goal
		// A goal in service when a crash aborted its job elsewhere runs
		// to completion (this PE cannot know yet) but its result has no
		// attempt to land in: discard it, service time wasted.
		if pe.m.lossy && g.epoch != g.job.epoch {
			pe.m.stats.GoalsLost++
			pe.m.freeGoal(g)
			return
		}
		pe.goalsExecuted++
		pe.m.stats.GoalsExecuted++
		if pe.m.ckpt {
			j := g.job
			if grp := pe.m.grp; grp != nil && grp.k > 1 {
				// Several shards can execute this job's goals inside one
				// window: the position is a commutative sum, advanced
				// atomically and read only at barriers. The snapshot is
				// taken eagerly by the coordinator at the tick's barrier
				// (shardGroup.applyOp), not here.
				atomic.AddInt64(&j.progress, 1)
			} else {
				// Lazy snapshot: the first goal a job executes after a
				// checkpoint tick records the position the tick saw
				// (nothing records before the first tick — lastCkptAt
				// starts at -1, matching a fresh job's ckptSeen).
				if j.ckptSeen != pe.m.lastCkptAt {
					j.ckptProgress = j.progress
					j.ckptSeen = pe.m.lastCkptAt
				}
				j.progress++
			}
		}
		// The goal's journey is definitively over: record the travel
		// distance (paper Table 3) and the net displacement.
		if pe.m.cfg.TrackGoalDetail {
			pe.m.stats.GoalHops.Add(g.Hops)
			pe.m.stats.GoalDist.Add(pe.m.topo.Dist(g.Origin, pe.id))
		}
		pe.m.emit(trace.GoalExecuted, pe.id, -1, g.ID)
		task := g.Task
		if task.IsLeaf() {
			pe.m.respond(pe.id, g, task.Value)
			pe.m.freeGoal(g)
			return
		}
		pe.pending.put(g.ID, pe.m.newPending(g, len(task.Kids)))
		for _, kid := range task.Kids {
			child := pe.m.newGoal(kid, g.job, pe.id, g.ID)
			pe.node.HandleEvent(Event{Kind: GoalCreated, Goal: child})
		}
	case itemResponse:
		r := it.resp
		p := pe.pending.get(r.goalID)
		if p == nil {
			if pe.m.lossy {
				// The awaiting task died in a crash (its pending record
				// was purged with the aborted attempt); the value has
				// nowhere to land.
				return
			}
			panic(fmt.Sprintf("machine: PE %d got response for unknown goal %d", pe.id, r.goalID))
		}
		pe.respIntegrated++
		pe.m.stats.RespIntegrated++
		p.vals = append(p.vals, r.value)
		p.remaining--
		if p.remaining == 0 {
			pe.pending.del(r.goalID)
			val := p.goal.job.tree.Combine(p.vals)
			pe.m.respond(pe.id, p.goal, val)
			pe.m.freeGoal(p.goal)
			pe.m.freePending(p)
		}
	}
}

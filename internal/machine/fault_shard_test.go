package machine

import (
	"reflect"
	"testing"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// faultCase is one scripted-failure cell of the sharded-scenario
// cross-check matrix: blackouts, correlated crash chaos, and
// checkpointed crash chaos, with bounded retries where state is lost.
type faultCase struct {
	name   string
	script string
	limit  int
	backof sim.Time
}

func faultCases() []faultCase {
	return []faultCase{
		{"blackout", "fail:pes=25%@t=400,recover@t=1100", 0, 0},
		{"crash-domains", "chaos:mtbf=700:mttr=350:until=6000:crash:domain=rack:4@seed=7", 3, 40},
		{"crash-ckpt", "chaos:mtbf=800:mttr=400:until=6000:crash:domain=block:2x2@seed=11,checkpoint:every=1500:cost=2@t=0", 2, 60},
	}
}

func (c faultCase) run(t *testing.T, topo *topology.Topology, shards int, serial bool) *Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.ShardSerial = serial
	cfg.MaxTime = 40000
	cfg.SampleInterval = 500
	cfg.RetryLimit = c.limit
	cfg.RetryBackoff = c.backof
	cfg.Scenario = scenario.MustParse(c.script)
	src := NewFixedInterval(workload.NewFib(9), 130, 40)
	return NewStream(topo, src, spread{}, cfg).Run()
}

// TestShardScenarioOneBitForBitSequential extends the Shards=1
// reference cross-check to scripted-failure runs: the one-shard group
// schedules the expanded script in its own engine and must reproduce
// the sequential machine bit for bit — blackouts, correlated crashes,
// checkpoints, bounded retries and all.
func TestShardScenarioOneBitForBitSequential(t *testing.T) {
	for _, c := range faultCases() {
		t.Run(c.name, func(t *testing.T) {
			seq := shardFPOf(c.run(t, topology.NewTorus(6, 6), 0, false))
			one := shardFPOf(c.run(t, topology.NewTorus(6, 6), 1, false))
			if !reflect.DeepEqual(seq, one) {
				t.Fatalf("Shards=1 diverged from sequential:\nseq: %+v\nshd: %+v", seq.fingerprint, one.fingerprint)
			}
		})
	}
}

// TestShardScenarioParallelMatchesSerial pins the determinism claim for
// scripted failures under real parallelism: a K-shard chaos run on K
// goroutines must equal its single-goroutine window-by-window replay
// bit for bit — barrier-applied scenario ops, eager checkpoint
// snapshots, purges and retries included.
func TestShardScenarioParallelMatchesSerial(t *testing.T) {
	for _, c := range faultCases() {
		for _, k := range []int{2, 4} {
			t.Run(c.name, func(t *testing.T) {
				par := shardFPOf(c.run(t, topology.NewTorus(6, 6), k, false))
				ser := shardFPOf(c.run(t, topology.NewTorus(6, 6), k, true))
				if !reflect.DeepEqual(par, ser) {
					t.Fatalf("K=%d parallel diverged from serial replay:\npar: %+v\nser: %+v", k, par.fingerprint, ser.fingerprint)
				}
			})
		}
	}
}

// TestDomainChaosAcrossTopologies drives domain-correlated crash chaos
// across topology kinds × shard counts: every combination must drain or
// hit MaxTime without panicking, conserve the abort accounting, and
// stay deterministic per seed.
func TestDomainChaosAcrossTopologies(t *testing.T) {
	topos := map[string]func() *topology.Topology{
		"grid6x6":  func() *topology.Topology { return topology.NewGrid(6, 6) },
		"torus6x6": func() *topology.Topology { return topology.NewTorus(6, 6) },
		"ring24":   func() *topology.Topology { return topology.NewRing(24) },
	}
	c := faultCase{script: "chaos:mtbf=600:mttr=300:until=5000:crash:domain=rack:4@seed=13", limit: 2, backof: 30}
	for name, mk := range topos {
		for _, k := range []int{1, 2, 4} {
			t.Run(name, func(t *testing.T) {
				st := c.run(t, mk(), k, false)
				if st.JobsAborted == 0 {
					t.Fatalf("K=%d: domain chaos aborted nothing — spec too tame to test", k)
				}
				if st.JobsRetried+st.JobsAbandoned != st.JobsAborted {
					t.Fatalf("K=%d: retried %d + abandoned %d != aborted %d",
						k, st.JobsRetried, st.JobsAbandoned, st.JobsAborted)
				}
				if st.JobsDone+st.JobsAbandoned > st.JobsInjected {
					t.Fatalf("K=%d: done %d + abandoned %d exceeds injected %d",
						k, st.JobsDone, st.JobsAbandoned, st.JobsInjected)
				}
				again := c.run(t, mk(), k, false)
				if fp(st) != fp(again) {
					t.Fatalf("K=%d: domain chaos run not deterministic", k)
				}
			})
		}
	}
}

// TestRetryLimitInvariants pins the bounded-retry accounting contract
// on a crash-heavy spec, sequential and sharded: with RetryLimit set
// some jobs run out of retries (JobsAbandoned > 0), every abort is
// either retried or abandoned, abandoned jobs never complete, and
// goodput reads completed over injected.
func TestRetryLimitInvariants(t *testing.T) {
	run := func(shards int) *Stats {
		cfg := DefaultConfig()
		cfg.Shards = shards
		cfg.MaxTime = 40000
		cfg.SampleInterval = 500
		cfg.RetryLimit = 1
		cfg.RetryBackoff = 50
		cfg.Scenario = scenario.MustParse("chaos:mtbf=400:mttr=300:until=20000:crash:domain=rack:8@seed=21")
		return NewStream(topology.NewTorus(8, 8), NewFixedInterval(workload.NewFib(10), 150, 60), spread{}, cfg).Run()
	}
	for _, shards := range []int{0, 4} {
		st := run(shards)
		if st.JobsAbandoned == 0 {
			t.Fatalf("Shards=%d: RetryLimit=1 under heavy crash chaos abandoned nothing", shards)
		}
		if st.JobsRetried+st.JobsAbandoned != st.JobsAborted {
			t.Fatalf("Shards=%d: retried %d + abandoned %d != aborted %d",
				shards, st.JobsRetried, st.JobsAbandoned, st.JobsAborted)
		}
		if st.JobsDone+st.JobsAbandoned > st.JobsInjected {
			t.Fatalf("Shards=%d: done %d + abandoned %d exceeds injected %d",
				shards, st.JobsDone, st.JobsAbandoned, st.JobsInjected)
		}
		if want := float64(st.JobsDone) / float64(st.JobsInjected); st.Goodput() != want {
			t.Fatalf("Shards=%d: Goodput() = %v, want %v", shards, st.Goodput(), want)
		}
	}
	unlimited := func() *Stats {
		cfg := DefaultConfig()
		cfg.MaxTime = 40000
		cfg.Scenario = scenario.MustParse("chaos:mtbf=400:mttr=300:until=20000:crash:domain=rack:8@seed=21")
		return NewStream(topology.NewTorus(8, 8), NewFixedInterval(workload.NewFib(10), 150, 60), spread{}, cfg).Run()
	}()
	if unlimited.JobsAbandoned != 0 {
		t.Fatalf("RetryLimit=0 abandoned %d jobs — retries must be unconditional", unlimited.JobsAbandoned)
	}
	if unlimited.JobsRetried != unlimited.JobsAborted {
		t.Fatalf("RetryLimit=0: retried %d != aborted %d", unlimited.JobsRetried, unlimited.JobsAborted)
	}
}

// TestCheckpointResumeSpeedsRecovery pins that checkpoint/restart does
// what it claims: on a run that crashes the working PE mid-job, free
// periodic snapshots let the retry replay the checkpointed prefix at
// unit cost, finishing strictly earlier than the same crash without
// checkpoints. The overhead side is pinned too: with a scripted cost
// and no crash, ticks strictly lengthen the run.
func TestCheckpointResumeSpeedsRecovery(t *testing.T) {
	run := func(script string) *Stats {
		cfg := DefaultConfig()
		cfg.MaxTime = 200000
		if script != "" {
			cfg.Scenario = scenario.MustParse(script)
		}
		return New(topology.NewGrid(1, 2), workload.NewFib(13), keepLocal{}, cfg).Run()
	}
	const crash = "crash:pes=0@t=3000,recover@t=9000"
	plain := run(crash)
	ckpt := run(crash + ",checkpoint:every=500:cost=0@t=0")
	if !plain.Completed || !ckpt.Completed {
		t.Fatalf("runs did not complete: plain=%v ckpt=%v", plain.Completed, ckpt.Completed)
	}
	if want := workload.FibValue(13); plain.Result != want || ckpt.Result != want {
		t.Fatalf("results wrong: plain=%d ckpt=%d want %d", plain.Result, ckpt.Result, want)
	}
	if ckpt.Makespan >= plain.Makespan {
		t.Fatalf("checkpointed retry not faster: makespan %d vs %d without checkpoints",
			ckpt.Makespan, plain.Makespan)
	}

	free := run("checkpoint:every=500:cost=0@t=0")
	costly := run("checkpoint:every=500:cost=20@t=0")
	if costly.Makespan <= free.Makespan {
		t.Fatalf("checkpoint cost invisible: makespan %d with cost vs %d free",
			costly.Makespan, free.Makespan)
	}
}

// TestShardRecoveryMetricsMatchSequential is the acceptance pin for the
// sharded recovery observables: on a placement-localized spec (keepLocal
// keeps every goal on the home shard, whose engine carries the plain
// seed) a K=4 run must reproduce the sequential recovery metrics
// exactly — the windowed sojourn p99 series behind time-to-steady, the
// injection-keyed series, and the crash accounting.
func TestShardRecoveryMetricsMatchSequential(t *testing.T) {
	scripts := map[string]string{
		"blackout":   "fail:pes=0@t=1000,recover@t=3000",
		"crash-ckpt": "crash:pes=0@t=1000,recover@t=3000,crash:pes=0@t=6000,recover@t=8000,checkpoint:every=800:cost=1@t=0",
	}
	run := func(script string, shards int) *Stats {
		cfg := DefaultConfig()
		cfg.Shards = shards
		cfg.MaxTime = 30000
		cfg.SampleInterval = 400
		cfg.RetryLimit = 5
		cfg.RetryBackoff = 25
		cfg.Scenario = scenario.MustParse(script)
		// keepLocal serves every goal on the home PE: size the load so
		// one PE sustains it (fib(5) ≈ 190 units per job, one every 250)
		// or the queue outgrows the horizon instead of recovering.
		return NewStream(topology.NewGrid(4, 4), NewFixedInterval(workload.NewFib(5), 250, 40), keepLocal{}, cfg).Run()
	}
	for name, script := range scripts {
		t.Run(name, func(t *testing.T) {
			seq := run(script, 0)
			shd := run(script, 4)
			if seq.JobsDone != shd.JobsDone || seq.Makespan != shd.Makespan {
				t.Fatalf("outcome diverged: done %d/%d makespan %d/%d",
					seq.JobsDone, shd.JobsDone, seq.Makespan, shd.Makespan)
			}
			if seq.JobsAborted != shd.JobsAborted || seq.JobsRetried != shd.JobsRetried || seq.JobsAbandoned != shd.JobsAbandoned {
				t.Fatalf("crash accounting diverged: aborted %d/%d retried %d/%d abandoned %d/%d",
					seq.JobsAborted, shd.JobsAborted, seq.JobsRetried, shd.JobsRetried, seq.JobsAbandoned, shd.JobsAbandoned)
			}
			if !reflect.DeepEqual(seq.SojournWindows.Points, shd.SojournWindows.Points) {
				t.Fatalf("windowed sojourn p99 series diverged:\nseq: %v\nshd: %v",
					seq.SojournWindows.Points, shd.SojournWindows.Points)
			}
			if !reflect.DeepEqual(seq.InjSojournWindows.Points, shd.InjSojournWindows.Points) {
				t.Fatalf("injection-keyed sojourn series diverged:\nseq: %v\nshd: %v",
					seq.InjSojournWindows.Points, shd.InjSojournWindows.Points)
			}
			if seq.SojournWindows.Len() == 0 {
				t.Fatal("no windowed sojourn points — the spec exercises nothing")
			}
		})
	}
}

package sim

import (
	"fmt"
	"math/rand"
)

// Time is virtual simulation time in abstract integer units. The paper
// charges integral "units" for primitive operations (e.g. the gradient
// process interval is 20 units), so integer time loses nothing and keeps
// event ordering exact.
type Time int64

// Never is a sentinel meaning "no deadline".
const Never Time = -1

// Event is a handle to a scheduled closure. It can be cancelled up to the
// moment it fires. Pooled events (ScheduleAction/AtAction) are recycled
// through the engine free list after firing.
//
//simlint:pooled
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	act      Action
	canceled bool
	pooled   bool // owned by the engine free list; recycled after firing
	// index locates the event inside its scheduler: a position >= 0 in
	// the overflow/standing heap, idxWheel while chained in a wheel
	// slot, idxIdle when not scheduled.
	index int
	// next/prev chain the event into a wheel slot's FIFO (two-tier
	// scheduler only; nil under the heap scheduler).
	next, prev *Event
}

const (
	// idxIdle marks an event that is not scheduled anywhere.
	idxIdle = -1
	// idxWheel marks an event chained in a bucket-wheel slot.
	idxWheel = -2

	// eventChunkSize is the arena granularity for pooled events: the
	// free-list miss path carves events out of chunks this large. The
	// steady-state pooled population is roughly the peak number of
	// simultaneously scheduled actions, so 256 keeps small runs to one
	// or two chunks while a saturated million-PE run fills whole chunks
	// back to back.
	eventChunkSize = 256
)

// Action is a schedulable behavior: the allocation-free alternative to a
// closure. Hot-path callers embed their state in a value implementing
// Action and hand it to ScheduleAction/AtAction; the engine recycles the
// backing Event through an internal free list. No handle is returned, so
// a recycled Event can never be reached through a stale *Event — pooled
// events are therefore uncancellable by construction.
type Action interface{ Act() }

// At reports the virtual time the event is scheduled for.
func (ev *Event) At() Time { return ev.at }

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (ev *Event) Cancel() {
	ev.canceled = true
}

// Canceled reports whether Cancel was called.
func (ev *Event) Canceled() bool { return ev.canceled }

// SchedulerKind selects the engine's pending-event structure. Both
// implementations order events identically — by (time, insertion
// sequence) — so the choice affects only performance: equal seeds yield
// bit-for-bit identical simulations under either scheduler (pinned by
// cross-check tests). The A/B lives in the perf ledger's sched-two-tier
// section; re-measure with cmd/bench before changing the default.
type SchedulerKind uint8

const (
	// SchedWheel is the two-tier scheduler: a rotating near-future
	// bucket wheel (O(1) amortized push/pop for events within wheelSpan
	// of the clock) backed by an overflow heap for far-future events
	// that drains into the wheel as time advances. The default (and the
	// zero value): it measured 1.8-3.4x the heap's events/sec across
	// the whole ledger matrix — see the sched-two-tier section.
	SchedWheel SchedulerKind = iota
	// SchedHeap is the indexed binary min-heap: O(log n) per operation,
	// no window assumptions, no standing slot memory. Kept selectable
	// for re-measurement and for workloads sparse enough in time that
	// stepping empty wheel slots could dominate.
	SchedHeap
)

func (k SchedulerKind) String() string {
	switch k {
	case SchedHeap:
		return "heap"
	case SchedWheel:
		return "wheel"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", uint8(k))
	}
}

// scheduler is the pending-event set. Implementations must return
// events in (at, seq) order from pop/peek; pop may surface cancelled
// events (the engine skips them), peek must not.
type scheduler interface {
	push(ev *Event)
	pop() *Event
	peek() *Event
	remove(ev *Event)
	size() int
}

// Engine is a discrete-event simulator instance.
//
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now       Time
	seq       uint64
	sched     scheduler
	kind      SchedulerKind
	free      []*Event // recycled pooled events (ScheduleAction/AtAction)
	chunk     []Event  // arena tail: pooled events are carved from here on free-list miss
	rng       *rand.Rand
	seed      int64
	stopped   bool
	processed uint64
}

// NewEngine returns an engine with the clock at zero whose random stream
// is derived from seed, using the default (two-tier wheel) scheduler.
// Equal seeds yield byte-identical simulations.
func NewEngine(seed int64) *Engine {
	return NewEngineSched(seed, SchedWheel)
}

// NewEngineSched is NewEngine with an explicit scheduler selection.
// Event ordering — and therefore every simulation result — is identical
// across kinds; only the cost profile differs.
func NewEngineSched(seed int64, kind SchedulerKind) *Engine {
	var sched scheduler
	switch kind {
	case SchedHeap:
		sched = &eventHeap{}
	case SchedWheel:
		sched = newWheelSched()
	default:
		panic(fmt.Sprintf("sim: unknown scheduler kind %d", kind))
	}
	return &Engine{
		sched: sched,
		kind:  kind,
		rng:   rand.New(rand.NewSource(seed)),
		seed:  seed,
	}
}

// Scheduler returns the engine's scheduler kind.
func (e *Engine) Scheduler() SchedulerKind { return e.kind }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was constructed with.
func (e *Engine) Seed() int64 { return e.seed }

// Rng returns the engine's deterministic random stream. All stochastic
// choices in a simulation (tie-breaks, phase staggering) must draw from
// this stream so that a run is a pure function of its seed.
func (e *Engine) Rng() *rand.Rand { return e.rng }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled (including
// cancelled events not yet discarded).
func (e *Engine) Pending() int { return e.sched.size() }

// Schedule runs fn after delay units of virtual time. A negative delay
// panics: the past is immutable in a discrete-event simulation.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %d at t=%d", delay, e.now))
	}
	return e.At(e.now+delay, fn)
}

// At runs fn at absolute virtual time t (t must not precede Now).
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%d) before now=%d", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil fn")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	e.sched.push(ev)
	return ev
}

// ScheduleAction runs a.Act() after delay units of virtual time. It is
// the pooled, closure-free analogue of Schedule: no Event handle is
// returned and the backing Event is recycled after firing.
func (e *Engine) ScheduleAction(delay Time, a Action) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleAction with negative delay %d at t=%d", delay, e.now))
	}
	e.AtAction(e.now+delay, a)
}

// AtAction runs a.Act() at absolute virtual time t (t must not precede
// Now). See ScheduleAction.
func (e *Engine) AtAction(t Time, a Action) {
	if t < e.now {
		panic(fmt.Sprintf("sim: AtAction(%d) before now=%d", t, e.now))
	}
	if a == nil {
		panic("sim: AtAction with nil Action")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		// Free-list miss: carve the next event from the arena chunk
		// instead of allocating a singleton, so the steady-state event
		// population sits in a handful of contiguous blocks rather than
		// scattered across the heap. A carved event is a zero value,
		// exactly like the &Event{} it replaces.
		if len(e.chunk) == 0 {
			e.chunk = make([]Event, eventChunkSize)
		}
		ev = &e.chunk[0]
		e.chunk = e.chunk[1:]
	}
	ev.at, ev.seq, ev.act, ev.pooled = t, e.seq, a, true
	e.seq++
	e.sched.push(ev)
}

// recycle returns a pooled event to the free list. The scheduler has
// already unlinked the event (next/prev are nil after a wheel pop), but
// they are re-zeroed here so the free list never pins a dead chain
// regardless of scheduler.
//
//simlint:free
func (e *Engine) recycle(ev *Event) {
	ev.fn, ev.act, ev.canceled, ev.pooled = nil, nil, false, false
	ev.next, ev.prev = nil, nil
	e.free = append(e.free, ev)
}

// Step fires the single next event. It returns false when no events
// remain or the engine has been stopped.
func (e *Engine) Step() bool {
	if e.stopped {
		return false
	}
	for {
		ev := e.sched.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			if ev.pooled {
				e.recycle(ev)
			}
			continue
		}
		if ev.at < e.now {
			panic("sim: event heap returned an event from the past")
		}
		e.now = ev.at
		e.processed++
		// Copy the behavior out and recycle before firing, so a handler
		// that schedules new actions reuses this very Event.
		fn, act := ev.fn, ev.act
		if ev.pooled {
			e.recycle(ev)
		}
		if act != nil {
			act.Act()
		} else {
			fn()
		}
		return true
	}
}

// Run fires events until none remain or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to deadline (if it has not passed it already). It returns true if live
// (uncancelled) events remain pending afterwards — whether they lie
// beyond the deadline or Stop froze the run with work outstanding; use
// Stopped to distinguish. When Stop fires mid-run the clock stays at the
// stopping event's time rather than jumping to the deadline.
func (e *Engine) RunUntil(deadline Time) bool {
	for {
		if e.stopped {
			return e.sched.peek() != nil
		}
		ev := e.sched.peek()
		if ev == nil {
			if e.now < deadline {
				e.now = deadline
			}
			return false
		}
		if ev.at > deadline {
			if e.now < deadline {
				e.now = deadline
			}
			return true
		}
		e.Step()
	}
}

// AdvanceTo moves the clock forward to t without firing anything. It
// panics on a rewind or when an event strictly earlier than t is still
// pending — advancing past it would fire it in the past. The sharded
// machine's coordinator uses this at window barriers to park every
// quiescent shard exactly on a scenario op's scripted instant before
// applying the op, reproducing the sequential engine's ordering (ops
// are scheduled at construction, so they fire before the machine
// events sharing their timestamp).
func (e *Engine) AdvanceTo(t Time) {
	if t < e.now {
		panic("sim: AdvanceTo would rewind the clock")
	}
	if ev := e.sched.peek(); ev != nil && ev.at < t {
		panic("sim: AdvanceTo would skip a pending event")
	}
	e.now = t
}

// NextEventAt returns the timestamp of the earliest pending live
// (uncancelled) event; ok is false when nothing is pending or the
// engine is stopped. Windowed drivers (the sharded machine's
// conservative-lookahead loop) use it to fast-forward across windows
// no shard has work in.
func (e *Engine) NextEventAt() (t Time, ok bool) {
	if e.stopped {
		return 0, false
	}
	ev := e.sched.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// Stop halts Run/RunUntil after the current event. Further Step calls
// return false. Pending events are retained (inspectable) but will not
// fire.
func (e *Engine) Stop() { e.stopped = true }

// Stopped reports whether Stop has been called.
func (e *Engine) Stopped() bool { return e.stopped }

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Poolsafe enforces the free-list discipline around pooled objects
// (types tagged //simlint:pooled, freed by functions tagged
// //simlint:free):
//
//  1. Use-after-free: once a variable is passed to a free function,
//     later statements in the same block must not touch it — the
//     object may already be wearing its next identity. (The check is
//     lexical within the enclosing statement list; frees on one loop
//     iteration observed on the next are out of scope.)
//  2. Zeroing: the free function itself must clear every
//     pointer-bearing field of the pooled type before the object
//     parks on the free list, or the retained working set anchors
//     dead object graphs for the garbage collector (the PR 5 pooling
//     regression shape). Fields deliberately retained across recycles
//     are tagged //simlint:keep <reason>.
//
// A free function's subject is its unique parameter of pooled type
// (use-after-free + zeroing) or its []T result for slab-style
// releases (zeroing only, satisfied by a whole-element composite
// store xs[i] = T{...} or clear(xs)).
var Poolsafe = &Analyzer{
	Name: "poolsafe",
	Doc:  "flag use of pooled objects after their free-list put, and free functions that skip pointer-field zeroing",
	Run:  runPoolsafe,
}

// freeSubject describes what a //simlint:free function recycles.
type freeSubject struct {
	fn       *types.Func
	decl     *ast.FuncDecl
	pooled   *types.TypeName
	strct    *types.Struct
	paramIdx int // index into call args of the freed param; -1 for result subjects
	param    *types.Var
	slice    bool // subject is a []T slab, not a single *T
}

func runPoolsafe(pass *Pass) error {
	tags := pass.CollectTags()

	// Resolve each tagged free function to its subject.
	subjects := make(map[*types.Func]*freeSubject)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if _, tagged := tags.FuncTag(fn, "free"); !tagged {
				continue
			}
			sub := pass.resolveFreeSubject(tags, fn, fd)
			if sub == nil {
				pass.Reportf(fd.Pos(), "//simlint:free on %s, but no parameter or result has a //simlint:pooled type (directly, as pointer, or as slice)", fn.Name())
				continue
			}
			subjects[fn] = sub
			pass.checkZeroing(tags, sub)
		}
	}
	if len(subjects) == 0 {
		return nil
	}

	// Use-after-free scan over every function body in the package.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			pass.checkUseAfterFree(file, fd, subjects)
		}
	}
	return nil
}

func (pass *Pass) resolveFreeSubject(tags *Tags, fn *types.Func, fd *ast.FuncDecl) *freeSubject {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if tn, sl, ok := pooledElem(tags, p.Type()); ok {
			return &freeSubject{fn: fn, decl: fd, pooled: tn, strct: structOf(tn), paramIdx: i, param: p, slice: sl}
		}
	}
	for i := 0; i < sig.Results().Len(); i++ {
		r := sig.Results().At(i)
		if tn, sl, ok := pooledElem(tags, r.Type()); ok && sl {
			return &freeSubject{fn: fn, decl: fd, pooled: tn, strct: structOf(tn), paramIdx: -1, slice: true}
		}
	}
	return nil
}

// pooledElem reports the pooled type behind T, *T or []T.
func pooledElem(tags *Tags, t types.Type) (*types.TypeName, bool, bool) {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		if tn, ok := tags.TaggedType(sl.Elem(), "pooled"); ok {
			return tn, true, true
		}
		return nil, false, false
	}
	if tn, ok := tags.TaggedType(t, "pooled"); ok {
		return tn, false, true
	}
	return nil, false, false
}

func structOf(tn *types.TypeName) *types.Struct {
	st, _ := tn.Type().Underlying().(*types.Struct)
	return st
}

// checkZeroing verifies the free function clears every pointer-bearing
// field of its pooled subject.
func (pass *Pass) checkZeroing(tags *Tags, sub *freeSubject) {
	if sub.strct == nil {
		return
	}
	if sub.slice {
		if !pass.hasElementWipe(sub) {
			pass.Reportf(sub.decl.Pos(), "%s releases a []%s slab without clearing its elements (need xs[i] = %s{...} over the array, or clear(xs)): parked slots would retain pointers into the dead run", sub.fn.Name(), sub.pooled.Name(), sub.pooled.Name())
		}
		return
	}
	var missing []string
	for i := 0; i < sub.strct.NumFields(); i++ {
		f := sub.strct.Field(i)
		if !pointerBearing(f.Type()) {
			continue
		}
		if d, ok := tags.FieldTag(f, "keep"); ok {
			if d.Args == "" {
				pass.Reportf(f.Pos(), "//simlint:keep on %s.%s needs a reason: say why the free list may retain this reference", sub.pooled.Name(), f.Name())
			}
			continue
		}
		if !pass.fieldAssigned(sub, f) {
			missing = append(missing, f.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sub.decl.Pos(), "%s parks a *%s on the free list without zeroing pointer-bearing field(s) %s: recycled objects must not retain references into the dead object graph (tag //simlint:keep <reason> if deliberate)", sub.fn.Name(), sub.pooled.Name(), strings.Join(missing, ", "))
	}
}

// fieldAssigned reports whether the free function assigns p.f (for the
// subject parameter p) or wipes *p wholesale.
func (pass *Pass) fieldAssigned(sub *freeSubject, f *types.Var) bool {
	found := false
	ast.Inspect(sub.decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for _, lhs := range as.Lhs {
			switch l := lhs.(type) {
			case *ast.SelectorExpr:
				if pass.TypesInfo.Uses[l.Sel] == f && pass.isSubjectParam(sub, l.X) {
					found = true
				}
			case *ast.StarExpr:
				if pass.isSubjectParam(sub, l.X) {
					found = true // *p = T{} wipes every field
				}
			}
		}
		return !found
	})
	return found
}

func (pass *Pass) isSubjectParam(sub *freeSubject, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	return pass.TypesInfo.Uses[id] == sub.param
}

// hasElementWipe looks for xs[i] = T{...} or clear(xs) over a slice of
// the pooled type.
func (pass *Pass) hasElementWipe(sub *freeSubject) bool {
	found := false
	ast.Inspect(sub.decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if tv, ok := pass.TypesInfo.Types[ix]; ok && namedBase(tv.Type) == sub.pooled {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "clear" && len(n.Args) == 1 {
					if tv, ok := pass.TypesInfo.Types[n.Args[0]]; ok {
						if sl, ok := tv.Type.Underlying().(*types.Slice); ok && namedBase(sl.Elem()) == sub.pooled {
							found = true
						}
					}
				}
			}
		}
		return !found
	})
	return found
}

// checkUseAfterFree scans fd's body for calls to free functions and
// flags later uses of the freed variable in the same statement list.
func (pass *Pass) checkUseAfterFree(file *ast.File, fd *ast.FuncDecl, subjects map[*types.Func]*freeSubject) {
	// Every statement list in the body, scanned independently.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var stmts []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			stmts = n.List
		case *ast.CaseClause:
			stmts = n.Body
		case *ast.CommClause:
			stmts = n.Body
		default:
			return true
		}
		for i, stmt := range stmts {
			for _, freed := range pass.freedVarsIn(stmt, subjects) {
				pass.reportLaterUses(stmts[i+1:], freed)
			}
		}
		return true
	})
}

type freedVar struct {
	obj  types.Object
	name string
	typ  string
	fn   string
}

// freedVarsIn returns the plain variables statement stmt passes to a
// free function (nested calls included, but not calls inside nested
// blocks — those belong to the inner statement list).
func (pass *Pass) freedVarsIn(stmt ast.Stmt, subjects map[*types.Func]*freeSubject) []freedVar {
	var out []freedVar
	ast.Inspect(stmt, func(n ast.Node) bool {
		if _, isBlock := n.(*ast.BlockStmt); isBlock {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var callee *types.Func
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			callee, _ = pass.TypesInfo.Uses[fun.Sel].(*types.Func)
		case *ast.Ident:
			callee, _ = pass.TypesInfo.Uses[fun].(*types.Func)
		}
		sub, ok := subjects[callee]
		if !ok || sub.paramIdx < 0 || sub.paramIdx >= len(call.Args) {
			return true
		}
		id, ok := call.Args[sub.paramIdx].(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		out = append(out, freedVar{obj: obj, name: id.Name, typ: sub.pooled.Name(), fn: sub.fn.Name()})
		return true
	})
	return out
}

// reportLaterUses walks the statements after a free and reports uses
// of the freed variable, stopping once it is reassigned.
func (pass *Pass) reportLaterUses(stmts []ast.Stmt, freed freedVar) {
	for _, stmt := range stmts {
		if as, ok := stmt.(*ast.AssignStmt); ok {
			// RHS executes before the variable is rebound.
			for _, rhs := range as.Rhs {
				if pos, ok := pass.findUse(rhs, freed.obj); ok {
					pass.report(pos, freed)
					return
				}
			}
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == freed.obj {
					return // reassigned: the variable wears a new identity
				}
			}
			continue
		}
		if pos, ok := pass.findUse(stmt, freed.obj); ok {
			pass.report(pos, freed)
			return
		}
	}
}

func (pass *Pass) report(pos ast.Node, freed freedVar) {
	pass.Reportf(pos.Pos(), "%s is used after %s returned it to the free list: the object may already be recycled under a new identity (pool-safety contract)", freed.name, freed.fn)
}

func (pass *Pass) findUse(n ast.Node, obj types.Object) (ast.Node, bool) {
	var hit ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if hit != nil {
			return false
		}
		if id, ok := c.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			hit = id
		}
		return hit == nil
	})
	return hit, hit != nil
}

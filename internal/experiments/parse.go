package experiments

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ParseTopo parses a topology argument of the form:
//
//	grid:RxC | torus:RxC | dlm:RxC:SPAN | hypercube:D |
//	ring:N | complete:N | star:N | bus:N | single
//
// An "implicit:" prefix (implicit:torus:1000x1000) forces the
// computed-neighbor form for the regular families — grid, torus and
// hypercube; machines of 65536 PEs or more use it automatically.
func ParseTopo(s string) (TopoSpec, error) {
	var implicit bool
	if rest, ok := strings.CutPrefix(s, "implicit:"); ok {
		implicit = true
		s = rest
	}
	parts := strings.Split(s, ":")
	kind := parts[0]
	if implicit {
		switch kind {
		case "grid", "torus", "hypercube":
		default:
			return TopoSpec{}, fmt.Errorf("topology %q has no implicit form (grid, torus and hypercube do)", kind)
		}
		spec, err := ParseTopo(s)
		if err != nil {
			return TopoSpec{}, err
		}
		spec.Implicit = true
		return spec, nil
	}
	dims := func(str string) (int, int, error) {
		rc := strings.Split(str, "x")
		if len(rc) != 2 {
			return 0, 0, fmt.Errorf("want RxC, got %q", str)
		}
		r, err1 := strconv.Atoi(rc[0])
		c, err2 := strconv.Atoi(rc[1])
		if err1 != nil || err2 != nil {
			return 0, 0, fmt.Errorf("bad dimensions %q", str)
		}
		return r, c, nil
	}
	switch kind {
	case "grid", "torus":
		if len(parts) != 2 {
			return TopoSpec{}, fmt.Errorf("usage: %s:RxC", kind)
		}
		r, c, err := dims(parts[1])
		if err != nil {
			return TopoSpec{}, err
		}
		return TopoSpec{Kind: kind, Rows: r, Cols: c}, nil
	case "dlm":
		if len(parts) != 3 {
			return TopoSpec{}, fmt.Errorf("usage: dlm:RxC:SPAN")
		}
		r, c, err := dims(parts[1])
		if err != nil {
			return TopoSpec{}, err
		}
		span, err := strconv.Atoi(parts[2])
		if err != nil {
			return TopoSpec{}, fmt.Errorf("bad span %q", parts[2])
		}
		return TopoSpec{Kind: "dlm", Rows: r, Cols: c, Span: span}, nil
	case "torus3d":
		if len(parts) != 2 {
			return TopoSpec{}, fmt.Errorf("usage: torus3d:XxYxZ")
		}
		xyz := strings.Split(parts[1], "x")
		if len(xyz) != 3 {
			return TopoSpec{}, fmt.Errorf("usage: torus3d:XxYxZ")
		}
		x, err1 := strconv.Atoi(xyz[0])
		y, err2 := strconv.Atoi(xyz[1])
		z, err3 := strconv.Atoi(xyz[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return TopoSpec{}, fmt.Errorf("bad dimensions %q", parts[1])
		}
		return TopoSpec{Kind: "torus3d", Rows: x, Cols: y, Z: z}, nil
	case "chordal":
		if len(parts) != 3 {
			return TopoSpec{}, fmt.Errorf("usage: chordal:N:CHORD")
		}
		n, err1 := strconv.Atoi(parts[1])
		c, err2 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil {
			return TopoSpec{}, fmt.Errorf("bad chordal args %q", s)
		}
		return TopoSpec{Kind: "chordal", N: n, Chord: c}, nil
	case "hypercube":
		if len(parts) != 2 {
			return TopoSpec{}, fmt.Errorf("usage: hypercube:DIM")
		}
		d, err := strconv.Atoi(parts[1])
		if err != nil {
			return TopoSpec{}, fmt.Errorf("bad dimension %q", parts[1])
		}
		return TopoSpec{Kind: "hypercube", Dim: d}, nil
	case "ring", "complete", "star", "bus":
		if len(parts) != 2 {
			return TopoSpec{}, fmt.Errorf("usage: %s:N", kind)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			return TopoSpec{}, fmt.Errorf("bad size %q", parts[1])
		}
		return TopoSpec{Kind: kind, N: n}, nil
	case "single":
		return TopoSpec{Kind: "single"}, nil
	default:
		return TopoSpec{}, fmt.Errorf("unknown topology %q", kind)
	}
}

// ParseWorkload parses a workload argument:
//
//	fib:M | dc:X | dc:M:N | binary:DEPTH | skew:N | chain:N | random:N:SEED
func ParseWorkload(s string) (WorkloadSpec, error) {
	parts := strings.Split(s, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("missing argument in %q", s)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "fib":
		m, err := atoi(1)
		if err != nil {
			return WorkloadSpec{}, err
		}
		return Fib(m), nil
	case "dc":
		switch len(parts) {
		case 2:
			x, err := atoi(1)
			if err != nil {
				return WorkloadSpec{}, err
			}
			return DC(x), nil
		case 3:
			m, err1 := atoi(1)
			n, err2 := atoi(2)
			if err1 != nil || err2 != nil {
				return WorkloadSpec{}, fmt.Errorf("bad dc range %q", s)
			}
			return WorkloadSpec{Kind: "dc", M: m, N: n}, nil
		default:
			return WorkloadSpec{}, fmt.Errorf("usage: dc:X or dc:M:N")
		}
	case "binary", "skew", "chain":
		n, err := atoi(1)
		if err != nil {
			return WorkloadSpec{}, err
		}
		return WorkloadSpec{Kind: parts[0], N: n}, nil
	case "random":
		n, err := atoi(1)
		if err != nil {
			return WorkloadSpec{}, err
		}
		seed := 1
		if len(parts) > 2 {
			if seed, err = atoi(2); err != nil {
				return WorkloadSpec{}, err
			}
		}
		return WorkloadSpec{Kind: "random", N: n, Seed: int64(seed)}, nil
	default:
		return WorkloadSpec{}, fmt.Errorf("unknown workload %q", parts[0])
	}
}

// ParseArrival parses an arrival-process argument:
//
//	single | interval:GAP:JOBS | poisson:MEANGAP:JOBS | burst:SIZE:GAP:BURSTS
func ParseArrival(s string) (ArrivalSpec, error) {
	parts := strings.Split(s, ":")
	atoi := func(i int) (int, error) {
		if i >= len(parts) {
			return 0, fmt.Errorf("missing argument in %q", s)
		}
		return strconv.Atoi(parts[i])
	}
	switch parts[0] {
	case "single":
		if len(parts) != 1 {
			return ArrivalSpec{}, fmt.Errorf("single takes no arguments, got %q", s)
		}
		return SingleArrival(), nil
	case "interval":
		gap, err1 := atoi(1)
		jobs, err2 := atoi(2)
		if err1 != nil || err2 != nil || len(parts) != 3 {
			return ArrivalSpec{}, fmt.Errorf("usage: interval:GAP:JOBS")
		}
		if gap <= 0 || jobs < 1 {
			return ArrivalSpec{}, fmt.Errorf("interval needs GAP > 0 and JOBS >= 1, got %q", s)
		}
		return IntervalArrivals(int64(gap), jobs), nil
	case "poisson":
		if len(parts) != 3 {
			return ArrivalSpec{}, fmt.Errorf("usage: poisson:MEANGAP:JOBS")
		}
		mean, err1 := strconv.ParseFloat(parts[1], 64)
		jobs, err2 := atoi(2)
		if err1 != nil || err2 != nil {
			return ArrivalSpec{}, fmt.Errorf("usage: poisson:MEANGAP:JOBS")
		}
		// !(mean > 0) also rejects NaN, which `mean <= 0` would let through.
		if !(mean > 0) || math.IsInf(mean, 0) || jobs < 1 {
			return ArrivalSpec{}, fmt.Errorf("poisson needs a finite MEANGAP > 0 and JOBS >= 1, got %q", s)
		}
		return PoissonArrivals(mean, jobs), nil
	case "burst":
		size, err1 := atoi(1)
		gap, err2 := atoi(2)
		bursts, err3 := atoi(3)
		if err1 != nil || err2 != nil || err3 != nil || len(parts) != 4 {
			return ArrivalSpec{}, fmt.Errorf("usage: burst:SIZE:GAP:BURSTS")
		}
		if size < 1 || gap <= 0 || bursts < 1 {
			return ArrivalSpec{}, fmt.Errorf("burst needs SIZE >= 1, GAP > 0 and BURSTS >= 1, got %q", s)
		}
		return BurstArrivals(size, int64(gap), bursts), nil
	default:
		return ArrivalSpec{}, fmt.Errorf("unknown arrival process %q", parts[0])
	}
}

// ParseStrategy parses a strategy argument:
//
//	cwn:RADIUS:HORIZON | gm:LOW:HIGH:INTERVAL | acwn:RADIUS:HORIZON:SAT:INTERVAL |
//	local | randomwalk:STEPS | roundrobin | worksteal:INTERVAL:THRESHOLD
//
// A "+fa" suffix on the kind (cwn+fa, gm+fa, worksteal+fa) selects the
// failure-aware variant: the strategy's nodes subscribe to the
// machine's PEFailed/PERecovered environment events.
func ParseStrategy(s string) (StrategySpec, error) {
	parts := strings.Split(s, ":")
	kind, fa := strings.CutSuffix(parts[0], "+fa")
	if fa {
		switch kind {
		case "cwn", "gm", "worksteal":
			parts[0] = kind
		default:
			return StrategySpec{}, fmt.Errorf("strategy %q has no failure-aware variant", kind)
		}
	}
	spec, err := parseStrategyBase(parts, s)
	if err != nil {
		return StrategySpec{}, err
	}
	spec.FailureAware = fa
	return spec, nil
}

func parseStrategyBase(parts []string, s string) (StrategySpec, error) {
	nums := make([]int, 0, len(parts)-1)
	for _, p := range parts[1:] {
		v, err := strconv.Atoi(p)
		if err != nil {
			return StrategySpec{}, fmt.Errorf("bad number %q in %q", p, s)
		}
		nums = append(nums, v)
	}
	need := func(n int, usage string) error {
		if len(nums) != n {
			return fmt.Errorf("usage: %s", usage)
		}
		return nil
	}
	switch parts[0] {
	case "cwn":
		if err := need(2, "cwn:RADIUS:HORIZON"); err != nil {
			return StrategySpec{}, err
		}
		return CWN(nums[0], nums[1]), nil
	case "gm":
		if err := need(3, "gm:LOW:HIGH:INTERVAL"); err != nil {
			return StrategySpec{}, err
		}
		return GM(nums[0], nums[1], int64(nums[2])), nil
	case "acwn":
		if err := need(4, "acwn:RADIUS:HORIZON:SAT:INTERVAL"); err != nil {
			return StrategySpec{}, err
		}
		return ACWN(nums[0], nums[1], nums[2], int64(nums[3])), nil
	case "local":
		return StrategySpec{Kind: "local"}, nil
	case "randomwalk":
		if err := need(1, "randomwalk:STEPS"); err != nil {
			return StrategySpec{}, err
		}
		return StrategySpec{Kind: "randomwalk", Steps: nums[0]}, nil
	case "roundrobin":
		return StrategySpec{Kind: "roundrobin"}, nil
	case "worksteal":
		if err := need(2, "worksteal:INTERVAL:THRESHOLD"); err != nil {
			return StrategySpec{}, err
		}
		return StrategySpec{Kind: "worksteal", Interval: int64(nums[0]), Threshold: nums[1]}, nil
	case "diffusion":
		if err := need(1, "diffusion:INTERVAL"); err != nil {
			return StrategySpec{}, err
		}
		return StrategySpec{Kind: "diffusion", Interval: int64(nums[0])}, nil
	case "ideal":
		return StrategySpec{Kind: "ideal"}, nil
	default:
		return StrategySpec{}, fmt.Errorf("unknown strategy %q", parts[0])
	}
}

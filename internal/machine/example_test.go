package machine_test

import (
	"fmt"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// A complete simulation in five lines. Only placement-independent
// facts are printed (the numeric result and conservation counts), so
// this example doubles as a determinism regression.
func Example() {
	topo := topology.NewGrid(5, 5)
	tree := workload.NewFib(11)
	stats := machine.New(topo, tree, core.PaperCWNGrid(), machine.DefaultConfig()).Run()
	fmt.Println("completed:", stats.Completed)
	fmt.Println("fib(11) =", stats.Result)
	fmt.Println("goals executed:", stats.GoalsExecuted)
	fmt.Println("responses:", stats.RespIntegrated)
	// Output:
	// completed: true
	// fib(11) = 89
	// goals executed: 287
	// responses: 286
}

package machine

import (
	"fmt"

	"cwnsim/internal/sim"
	"cwnsim/internal/trace"
)

// PE is one processing element. It serves one ready-queue message at a
// time (goal execution or response integration); all fields are managed
// by the machine, and strategies interact through the exported methods.
type PE struct {
	m  *Machine
	id int

	ready      []item // FIFO ready queue; index 0 is the head
	head       int    // index of the queue head within ready
	busy       bool
	serviceEnd sim.Time // when the in-service message finishes (valid while busy)
	pending    map[int64]*pendingTask

	nbrs     []int       // cached topology neighbors, ascending
	nbrIndex map[int]int // PE id -> index into nbrs
	nbrLoad  []int32     // last known load per neighbor (assumed 0 initially)
	nbrSeen  []sim.Time  // when that load was learned (-1 = never)

	node NodeStrategy // strategy state for this PE (set after construction)

	// accounting
	busyTime       sim.Time
	goalsExecuted  int64
	goalsAccepted  int64
	respIntegrated int64
}

// ID returns the PE's index, 0..P-1.
func (pe *PE) ID() int { return pe.id }

// Node returns the PE's strategy state (for inspection and tests).
func (pe *PE) Node() NodeStrategy { return pe.node }

// Machine returns the owning machine.
func (pe *PE) Machine() *Machine { return pe.m }

// Now returns the current virtual time.
func (pe *PE) Now() sim.Time { return pe.m.eng.Now() }

// Load returns this PE's advertised load under the configured metric.
func (pe *PE) Load() int {
	load := pe.queueLen()
	if pe.m.cfg.LoadMetric == LoadQueuePlusPending {
		load += len(pe.pending)
	}
	return load
}

// queueLen returns the number of messages waiting (not counting one in
// service) — the paper's base load measure.
func (pe *PE) queueLen() int { return len(pe.ready) - pe.head }

// QueuedGoals returns how many ready-queue entries are unstarted goals
// (exportable work, as opposed to responses which must be handled
// locally).
func (pe *PE) QueuedGoals() int {
	n := 0
	for i := pe.head; i < len(pe.ready); i++ {
		if pe.ready[i].kind == itemGoal {
			n++
		}
	}
	return n
}

// PendingTasks returns the number of local tasks awaiting responses —
// the "future commitments" component of the refined load metric.
func (pe *PE) PendingTasks() int { return len(pe.pending) }

// Neighbors returns the PE's neighbors in ascending order. Callers must
// not modify the slice.
func (pe *PE) Neighbors() []int { return pe.nbrs }

// KnownLoad returns the most recently learned load of neighbor nbrPE and
// the time it was learned (-1 if never; loads are assumed 0 until first
// heard, as the paper assumes for proximities).
func (pe *PE) KnownLoad(nbrPE int) (load int, seenAt sim.Time) {
	i, ok := pe.nbrIndex[nbrPE]
	if !ok {
		panic(fmt.Sprintf("machine: PE %d is not a neighbor of PE %d", nbrPE, pe.id))
	}
	return int(pe.nbrLoad[i]), pe.nbrSeen[i]
}

// noteLoad records a load observation for neighbor nbrPE.
func (pe *PE) noteLoad(nbrPE int, load int) {
	if i, ok := pe.nbrIndex[nbrPE]; ok {
		pe.nbrLoad[i] = int32(load)
		pe.nbrSeen[i] = pe.m.eng.Now()
	}
}

// LeastLoadedNeighbor returns the neighbor with the smallest known load.
// Ties are broken uniformly at random from the run's seeded stream (so
// repeated forwarding does not systematically favor low PE numbers).
// Returns (-1, 0) when the PE has no neighbors.
func (pe *PE) LeastLoadedNeighbor() (nbrPE, load int) {
	if len(pe.nbrs) == 0 {
		return -1, 0
	}
	best := int32(1<<31 - 1)
	count := 0
	choice := -1
	for i, nb := range pe.nbrs {
		l := pe.nbrLoad[i]
		switch {
		case l < best:
			best, count, choice = l, 1, nb
		case l == best:
			count++
			if pe.m.eng.Rng().Intn(count) == 0 {
				choice = nb
			}
		}
	}
	return choice, int(best)
}

// MinNeighborLoad returns the smallest known neighbor load, or 0 when
// the PE has no neighbors.
func (pe *PE) MinNeighborLoad() int {
	if len(pe.nbrs) == 0 {
		return 0
	}
	best := pe.nbrLoad[0]
	for _, l := range pe.nbrLoad[1:] {
		if l < best {
			best = l
		}
	}
	return int(best)
}

// Accept places the goal in this PE's ready queue. Under CWN acceptance
// is final ("a goal, once it is accepted by a PE, remains there");
// strategies with re-distribution (GM, ACWN) may later pluck a still
// queued goal back out with TakeNewestQueuedGoal, so travel-distance
// statistics are recorded when the goal finally executes, not here.
func (pe *PE) Accept(g *Goal) {
	g.AcceptedAt = pe.m.eng.Now()
	pe.goalsAccepted++
	pe.m.emit(trace.GoalAccepted, pe.id, -1, g.ID)
	pe.enqueue(item{kind: itemGoal, goal: g})
}

// SendGoal forwards the goal one hop to neighbor `to`, charging the
// connecting channel. On delivery the receiving strategy's GoalArrived
// runs. The hop counter increments — including when a goal is bounced
// back where it came from, matching the paper's travel-distance
// accounting.
func (pe *PE) SendGoal(to int, g *Goal) {
	m := pe.m
	chs := m.topo.ChannelsBetween(pe.id, to)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: SendGoal %d->%d: not neighbors", pe.id, to))
	}
	g.Hops++
	m.stats.MsgCounts[MsgGoal]++
	m.emit(trace.GoalSent, pe.id, to, g.ID)
	ch := m.pickChannel(chs)
	sentLoad := pe.Load()
	from := pe.id
	m.goalsInTransit++
	m.transmit(ch, m.cfg.GoalHopTime, func() {
		m.goalsInTransit--
		dst := m.pes[to]
		if m.cfg.PiggybackLoad {
			dst.noteLoad(from, sentLoad)
		}
		dst.node.GoalArrived(g, from)
	})
}

// RouteGoal ships the goal to an arbitrary destination PE along a
// shortest path, one hop at a time on the co-processors; only the final
// PE's strategy sees GoalArrived. Strategies with global placement
// decisions (e.g. the Ideal oracle baseline) use this; neighborhood
// strategies should prefer the hop-by-hop SendGoal.
func (pe *PE) RouteGoal(dst int, g *Goal) {
	if dst == pe.id {
		pe.Accept(g)
		return
	}
	pe.m.routeGoal(pe.id, dst, g)
}

// routeGoal advances the goal one shortest-path hop toward dst.
func (m *Machine) routeGoal(cur, dst int, g *Goal) {
	next := m.topo.NextHop(cur, dst)
	chs := m.topo.ChannelsBetween(cur, next)
	ch := m.pickChannel(chs)
	g.Hops++
	m.stats.MsgCounts[MsgGoal]++
	m.emit(trace.GoalSent, cur, next, g.ID)
	sentLoad := m.pes[cur].Load()
	m.goalsInTransit++
	m.transmit(ch, m.cfg.GoalHopTime, func() {
		m.goalsInTransit--
		if m.cfg.PiggybackLoad {
			m.pes[next].noteLoad(cur, sentLoad)
		}
		if next == dst {
			m.pes[next].node.GoalArrived(g, cur)
			return
		}
		m.routeGoal(next, dst, g)
	})
}

// SendControl delivers an opaque strategy payload to neighbor `to`,
// charging CtrlHopTime on the connecting channel.
func (pe *PE) SendControl(to int, payload any) {
	m := pe.m
	chs := m.topo.ChannelsBetween(pe.id, to)
	if len(chs) == 0 {
		panic(fmt.Sprintf("machine: SendControl %d->%d: not neighbors", pe.id, to))
	}
	m.stats.MsgCounts[MsgControl]++
	ch := m.pickChannel(chs)
	sentLoad := pe.Load()
	from := pe.id
	m.transmit(ch, m.cfg.CtrlHopTime, func() {
		dst := m.pes[to]
		if m.cfg.PiggybackLoad {
			dst.noteLoad(from, sentLoad)
		}
		dst.node.Control(from, payload)
	})
}

// BroadcastControl delivers a payload to every neighbor. On a bus each
// attached channel carries the broadcast as a single transaction heard
// by all members — the key bandwidth advantage of the double-lattice-
// mesh; on point-to-point topologies it degenerates to one message per
// link.
func (pe *PE) BroadcastControl(payload any) {
	pe.m.broadcast(pe, MsgControl, pe.m.cfg.CtrlHopTime, func(dst *PE, from int) {
		dst.node.Control(from, payload)
	})
}

// TakeNewestQueuedGoal removes and returns the most recently enqueued
// unstarted goal, for strategies that re-export queued work. Returns
// nil when the queue holds no goals. In a depth-first tree computation
// the newest goal tends to be the smallest remaining subtree, so this
// policy keeps big work local and exports crumbs.
func (pe *PE) TakeNewestQueuedGoal() *Goal {
	for i := len(pe.ready) - 1; i >= pe.head; i-- {
		if pe.ready[i].kind == itemGoal {
			g := pe.ready[i].goal
			pe.ready = append(pe.ready[:i], pe.ready[i+1:]...)
			return g
		}
	}
	return nil
}

// TakeOldestQueuedGoal removes and returns the least recently enqueued
// unstarted goal — the front of the queue, which in a tree computation
// is typically the largest waiting subtree. Exporting it lets the
// receiver become a self-sustaining source of further work.
func (pe *PE) TakeOldestQueuedGoal() *Goal {
	for i := pe.head; i < len(pe.ready); i++ {
		if pe.ready[i].kind == itemGoal {
			g := pe.ready[i].goal
			pe.ready = append(pe.ready[:i], pe.ready[i+1:]...)
			return g
		}
	}
	return nil
}

// enqueue appends a message to the ready queue and wakes the PE if idle.
func (pe *PE) enqueue(it item) {
	pe.ready = append(pe.ready, it)
	if !pe.busy {
		pe.startNext()
	}
}

// startNext begins service of the queue head.
func (pe *PE) startNext() {
	if pe.head >= len(pe.ready) {
		// Queue drained: reset storage so it can be reused.
		pe.ready = pe.ready[:0]
		pe.head = 0
		pe.busy = false
		return
	}
	it := pe.ready[pe.head]
	pe.head++
	// Compact occasionally so memory does not grow with total traffic.
	if pe.head > 64 && pe.head*2 > len(pe.ready) {
		n := copy(pe.ready, pe.ready[pe.head:])
		pe.ready = pe.ready[:n]
		pe.head = 0
	}
	pe.busy = true
	var dur sim.Time
	switch it.kind {
	case itemGoal:
		dur = pe.m.cfg.GrainTime * sim.Time(it.goal.Task.Work)
		pe.m.stats.QueueDelay.Add(float64(pe.m.eng.Now() - it.goal.AcceptedAt))
	case itemResponse:
		dur = pe.m.cfg.CombineTime
	}
	if s := pe.m.cfg.PESpeeds; s != nil {
		scaled := sim.Time(float64(dur) / s[pe.id])
		if scaled < 1 {
			scaled = 1
		}
		dur = scaled
	}
	pe.busyTime += dur
	pe.serviceEnd = pe.m.eng.Now() + dur
	pe.m.eng.Schedule(dur, func() {
		pe.finish(it)
		pe.startNext()
	})
}

// finish applies the effects of a completed service.
func (pe *PE) finish(it item) {
	switch it.kind {
	case itemGoal:
		pe.goalsExecuted++
		pe.m.stats.GoalsExecuted++
		g := it.goal
		// The goal's journey is definitively over: record the travel
		// distance (paper Table 3) and the net displacement.
		pe.m.stats.GoalHops.Add(g.Hops)
		pe.m.stats.GoalDist.Add(pe.m.topo.Dist(g.Origin, pe.id))
		pe.m.emit(trace.GoalExecuted, pe.id, -1, g.ID)
		task := g.Task
		if task.IsLeaf() {
			pe.m.respond(pe.id, g, task.Value)
			return
		}
		pe.pending[g.ID] = &pendingTask{
			goal:      g,
			remaining: len(task.Kids),
			vals:      make([]int64, 0, len(task.Kids)),
		}
		for _, kid := range task.Kids {
			child := pe.m.newGoal(kid, g.job, pe.id, g.ID)
			pe.node.PlaceNewGoal(child)
		}
	case itemResponse:
		pe.respIntegrated++
		pe.m.stats.RespIntegrated++
		r := it.resp
		p, ok := pe.pending[r.goalID]
		if !ok {
			panic(fmt.Sprintf("machine: PE %d got response for unknown goal %d", pe.id, r.goalID))
		}
		p.vals = append(p.vals, r.value)
		p.remaining--
		if p.remaining == 0 {
			delete(pe.pending, r.goalID)
			val := p.goal.job.tree.Combine(p.vals)
			pe.m.respond(pe.id, p.goal, val)
		}
	}
}

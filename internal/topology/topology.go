// Package topology models the interconnection networks of the simulated
// multiprocessor: which PEs are neighbors, which communication channels
// (point-to-point links or multi-drop buses) connect them, shortest-path
// distances, and next-hop routing.
//
// The paper's experiments use three families: the 2-dimensional
// nearest-neighbor grid (with and without wraparound), the bus-based
// double-lattice-mesh from Kale's ICPP 1986 "Optimal Communication
// Neighborhoods", and — in the appendix — binary hypercubes. Ring, star,
// complete and tree networks are included for tests and extensions.
//
// A Channel is the unit of communication contention: a point-to-point
// link has two members, a bus has span-many. Two PEs are neighbors iff
// they share at least one channel; one channel transaction is one "hop".
package topology

import (
	"fmt"
	"sort"
	"sync"
)

// Channel is a communication resource shared by its member PEs. For
// point-to-point links len(Members) == 2; for buses it is the bus span.
// Exactly one message can occupy a channel at a time.
type Channel struct {
	ID      int
	Members []int
}

// Topology is an immutable interconnection network. Construct via the
// New* functions. All slices returned by accessors must be treated as
// read-only; they are shared across concurrent simulations.
type Topology struct {
	name     string
	n        int
	channels []Channel
	chansOf  [][]int // PE -> channel IDs, ascending
	nbrs     [][]int // PE -> neighbor PE IDs, ascending
	between  map[pairKey][]int

	routeOnce sync.Once
	dist      [][]int32 // all-pairs shortest hop counts
	next      [][]int32 // next[src][dst] = first hop on a shortest path
	diameter  int
}

type pairKey struct{ a, b int }

// build assembles the derived structures from a channel list.
func build(name string, n int, channels []Channel) *Topology {
	if n <= 0 {
		panic("topology: non-positive size")
	}
	t := &Topology{
		name:     name,
		n:        n,
		channels: channels,
		chansOf:  make([][]int, n),
		nbrs:     make([][]int, n),
		between:  make(map[pairKey][]int),
	}
	nbrSet := make([]map[int]bool, n)
	for i := range nbrSet {
		nbrSet[i] = make(map[int]bool)
	}
	for ci := range channels {
		ch := &channels[ci]
		ch.ID = ci
		if len(ch.Members) < 2 {
			panic(fmt.Sprintf("topology %s: channel %d has %d members", name, ci, len(ch.Members)))
		}
		seen := make(map[int]bool, len(ch.Members))
		for _, pe := range ch.Members {
			if pe < 0 || pe >= n {
				panic(fmt.Sprintf("topology %s: channel %d member %d out of range", name, ci, pe))
			}
			if seen[pe] {
				panic(fmt.Sprintf("topology %s: channel %d lists PE %d twice", name, ci, pe))
			}
			seen[pe] = true
			t.chansOf[pe] = append(t.chansOf[pe], ci)
		}
		for _, a := range ch.Members {
			for _, b := range ch.Members {
				if a == b {
					continue
				}
				nbrSet[a][b] = true
				t.between[pairKey{a, b}] = append(t.between[pairKey{a, b}], ci)
			}
		}
	}
	for pe := range t.nbrs {
		for b := range nbrSet[pe] {
			t.nbrs[pe] = append(t.nbrs[pe], b)
		}
		sort.Ints(t.nbrs[pe])
	}
	return t
}

// Name returns a human-readable identifier, e.g. "grid-10x10" or
// "dlm-10x10-s5".
func (t *Topology) Name() string { return t.name }

// Size returns the number of PEs.
func (t *Topology) Size() int { return t.n }

// Channels returns all communication channels.
func (t *Topology) Channels() []Channel { return t.channels }

// ChannelsOf returns the IDs of channels PE pe is attached to.
func (t *Topology) ChannelsOf(pe int) []int { return t.chansOf[pe] }

// Neighbors returns the PEs sharing at least one channel with pe, in
// ascending order.
func (t *Topology) Neighbors(pe int) []int { return t.nbrs[pe] }

// ChannelsBetween returns the channels directly connecting a and b
// (nil if they are not neighbors). Bus topologies may offer several.
func (t *Topology) ChannelsBetween(a, b int) []int { return t.between[pairKey{a, b}] }

// ensureRouting computes all-pairs BFS distances, next hops and the
// diameter, once, on first use.
func (t *Topology) ensureRouting() {
	t.routeOnce.Do(func() {
		n := t.n
		t.dist = make([][]int32, n)
		queue := make([]int32, 0, n)
		for src := 0; src < n; src++ {
			d := make([]int32, n)
			for i := range d {
				d[i] = -1
			}
			d[src] = 0
			queue = queue[:0]
			queue = append(queue, int32(src))
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				for _, v := range t.nbrs[u] {
					if d[v] < 0 {
						d[v] = d[u] + 1
						queue = append(queue, int32(v))
					}
				}
			}
			t.dist[src] = d
		}
		diam := 0
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				dd := t.dist[src][dst]
				if dd < 0 {
					panic(fmt.Sprintf("topology %s: disconnected (%d unreachable from %d)", t.name, dst, src))
				}
				if int(dd) > diam {
					diam = int(dd)
				}
			}
		}
		t.diameter = diam
		// next[src][dst]: lowest-numbered neighbor of src on a shortest path.
		t.next = make([][]int32, n)
		for src := 0; src < n; src++ {
			row := make([]int32, n)
			for dst := 0; dst < n; dst++ {
				if src == dst {
					row[dst] = int32(src)
					continue
				}
				row[dst] = -1
				for _, nb := range t.nbrs[src] {
					if t.dist[nb][dst] == t.dist[src][dst]-1 {
						row[dst] = int32(nb)
						break // neighbors ascending => deterministic choice
					}
				}
				if row[dst] < 0 {
					panic("topology: no next hop on shortest path")
				}
			}
			t.next[src] = row
		}
	})
}

// Dist returns the shortest hop count between a and b.
func (t *Topology) Dist(a, b int) int {
	t.ensureRouting()
	return int(t.dist[a][b])
}

// NextHop returns the neighbor of from that is the first hop on a
// shortest path to to. NextHop(x, x) == x.
func (t *Topology) NextHop(from, to int) int {
	t.ensureRouting()
	return int(t.next[from][to])
}

// Diameter returns the maximum shortest-path distance over all PE pairs.
func (t *Topology) Diameter() int {
	t.ensureRouting()
	return t.diameter
}

// MaxDegree returns the largest neighbor count of any PE.
func (t *Topology) MaxDegree() int {
	max := 0
	for _, nb := range t.nbrs {
		if len(nb) > max {
			max = len(nb)
		}
	}
	return max
}

// AvgDegree returns the mean neighbor count.
func (t *Topology) AvgDegree() float64 {
	total := 0
	for _, nb := range t.nbrs {
		total += len(nb)
	}
	return float64(total) / float64(t.n)
}

// String implements fmt.Stringer.
func (t *Topology) String() string {
	return fmt.Sprintf("%s (%d PEs, %d channels, diameter %d)", t.name, t.n, len(t.channels), t.Diameter())
}

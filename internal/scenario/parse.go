package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"cwnsim/internal/sim"
)

// Parse reads the compact text form of a script: comma-separated
// events, each `kind[:key=value...]@t=TIME`.
//
//	fail:pes=25%@t=5000,recover@t=10000
//	crash:pes=25%@t=5000,recover@t=10000
//	slow:pes=0+1:x=0.5@t=2000,restore@t=4000
//	degradelink:a=0:b=1:x=0@t=100,restorelink:a=0:b=1@t=300
//	shock:x=3@t=1000,shock:x=1@t=2000
//	chaos:mtbf=3000:mttr=800@seed=7
//	chaos:mtbf=3000:mttr=800:domain=rack:8@seed=7
//	checkpoint:every=2000:cost=5@t=0
//
// Keys: pes= targets a percentage ("25%") or a +-separated PE list
// ("3+7+9"); x= the factor (speed multiplier for slow, occupancy
// multiplier for degradelink with 0 meaning outage, rate multiplier
// for shock); a=/b= the link endpoints. droplink is shorthand for
// degradelink with x=0. crash is the state-loss failure (fail is the
// evacuating blackout). chaos is the random-failure generator: it
// takes mtbf= and mttr= (means of the exponential failure and repair
// processes), optional until= (timeline bound; default the run
// horizon), a bare crash flag for crash-mode failures, and an optional
// domain=rack:N or domain=block:AxB shape for correlated strikes; it
// ends with @seed=N instead of @t=N — the generator's own seed,
// expanded into a concrete deterministic timeline at machine
// construction. checkpoint is the periodic-snapshot generator: it
// takes every= (snapshot period), cost= (service time each live PE
// pays per tick, default 0) and optional until=; ckpt:cost=C is the
// concrete single snapshot it expands into. An empty string parses to
// nil — the empty scenario.
func Parse(s string) (*Script, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var sc Script
	for _, part := range strings.Split(s, ",") {
		ev, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		sc.Events = append(sc.Events, ev)
	}
	return &sc, nil
}

// MustParse is Parse for trusted literals; it panics on error.
func MustParse(s string) *Script {
	sc, err := Parse(s)
	if err != nil {
		panic(err.Error())
	}
	return sc
}

func parseEvent(s string) (Event, error) {
	body, at, ok := strings.Cut(s, "@")
	if !ok {
		return Event{}, fmt.Errorf("scenario: event %q has no @t=TIME", s)
	}
	if strings.HasPrefix(body, "chaos") {
		return parseChaos(s, body, at)
	}
	tStr, ok := strings.CutPrefix(at, "t=")
	if !ok {
		return Event{}, fmt.Errorf("scenario: event %q: want @t=TIME, got %q", s, at)
	}
	t, err := strconv.ParseInt(tStr, 10, 64)
	if err != nil || t < 0 {
		return Event{}, fmt.Errorf("scenario: event %q: bad time %q", s, tStr)
	}

	fields := strings.Split(body, ":")
	ev := Event{At: sim.Time(t), A: -1, B: -1}
	switch fields[0] {
	case "slow":
		ev.Kind = SlowPE
	case "restore":
		ev.Kind = RestorePE
	case "fail":
		ev.Kind = FailPE
	case "recover":
		ev.Kind = RecoverPE
	case "crash":
		ev.Kind = CrashPE
	case "degradelink", "droplink":
		ev.Kind = DegradeLink
	case "restorelink", "fixlink":
		ev.Kind = RestoreLink
	case "shock":
		ev.Kind = LoadShock
	case "checkpoint":
		ev.Kind = Checkpoint
	case "ckpt":
		ev.Kind = CheckpointTick
	default:
		return Event{}, fmt.Errorf("scenario: unknown event kind %q in %q", fields[0], s)
	}

	var haveFactor, haveEvery bool
	for _, f := range fields[1:] {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Event{}, fmt.Errorf("scenario: event %q: want key=value, got %q", s, f)
		}
		switch key {
		case "pes":
			if err := parseTargets(&ev, val); err != nil {
				return Event{}, fmt.Errorf("scenario: event %q: %v", s, err)
			}
		case "x":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("scenario: event %q: bad factor %q", s, val)
			}
			ev.Factor = x
			haveFactor = true
		case "a", "b":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return Event{}, fmt.Errorf("scenario: event %q: bad endpoint %s=%q", s, key, val)
			}
			if key == "a" {
				ev.A = n
			} else {
				ev.B = n
			}
		case "every", "cost", "until":
			if ev.Kind != Checkpoint && ev.Kind != CheckpointTick {
				return Event{}, fmt.Errorf("scenario: event %q: key %q only applies to checkpoint events", s, key)
			}
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return Event{}, fmt.Errorf("scenario: event %q: bad %s %q", s, key, val)
			}
			switch key {
			case "every":
				ev.Every, haveEvery = sim.Time(n), true
			case "cost":
				ev.Cost = sim.Time(n)
			case "until":
				ev.Until = sim.Time(n)
			}
		default:
			return Event{}, fmt.Errorf("scenario: event %q: unknown key %q", s, key)
		}
	}

	switch ev.Kind {
	case SlowPE:
		if !haveFactor {
			return Event{}, fmt.Errorf("scenario: event %q: slow needs x=FACTOR", s)
		}
	case LoadShock:
		if !haveFactor {
			return Event{}, fmt.Errorf("scenario: event %q: shock needs x=MULTIPLIER", s)
		}
	case DegradeLink, RestoreLink:
		if ev.A < 0 || ev.B < 0 {
			return Event{}, fmt.Errorf("scenario: event %q: link events need a= and b=", s)
		}
	case Checkpoint:
		if !haveEvery {
			return Event{}, fmt.Errorf("scenario: event %q: checkpoint needs every=PERIOD", s)
		}
	}
	if ev.Kind != DegradeLink && ev.Kind != RestoreLink {
		ev.A, ev.B = 0, 0 // only link events carry endpoints
	}
	return ev, nil
}

// parseChaos reads a chaos generator event: `chaos:mtbf=M:mttr=R
// [:until=T][:crash][:domain=rack:N|:domain=block:AxB]@seed=S`. Unlike
// concrete events it is keyed by its generator seed, not a firing time
// (the timeline starts at t=0 and is drawn at machine construction).
// The domain size spec follows its key as the next ":"-field, so the
// loop is index-based.
func parseChaos(s, body, at string) (Event, error) {
	seedStr, ok := strings.CutPrefix(at, "seed=")
	if !ok {
		return Event{}, fmt.Errorf("scenario: chaos event %q: want @seed=N, got %q", s, at)
	}
	seed, err := strconv.ParseInt(seedStr, 10, 64)
	if err != nil {
		return Event{}, fmt.Errorf("scenario: chaos event %q: bad seed %q", s, seedStr)
	}
	ev := Event{Kind: Chaos, Seed: seed}
	var haveMTBF, haveMTTR bool
	fields := strings.Split(body, ":")[1:]
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		if f == "crash" {
			ev.Crash = true
			continue
		}
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return Event{}, fmt.Errorf("scenario: chaos event %q: want key=value, got %q", s, f)
		}
		switch key {
		case "domain":
			i++
			if i >= len(fields) {
				return Event{}, fmt.Errorf("scenario: chaos event %q: domain=%s needs a size (rack:N or block:AxB)", s, val)
			}
			spec := fields[i]
			switch val {
			case "rack":
				n, err := strconv.Atoi(spec)
				if err != nil || n < 1 {
					return Event{}, fmt.Errorf("scenario: chaos event %q: bad rack size %q", s, spec)
				}
				ev.Domain, ev.DomA = "rack", n
			case "block":
				aStr, bStr, ok := strings.Cut(spec, "x")
				a, errA := strconv.Atoi(aStr)
				b, errB := strconv.Atoi(bStr)
				if !ok || errA != nil || errB != nil || a < 1 || b < 1 {
					return Event{}, fmt.Errorf("scenario: chaos event %q: bad block size %q (want AxB)", s, spec)
				}
				ev.Domain, ev.DomA, ev.DomB = "block", a, b
			default:
				return Event{}, fmt.Errorf("scenario: chaos event %q: unknown domain shape %q (want rack or block)", s, val)
			}
			continue
		}
		switch key {
		case "mtbf", "mttr":
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Event{}, fmt.Errorf("scenario: chaos event %q: bad %s %q", s, key, val)
			}
			if key == "mtbf" {
				ev.MTBF, haveMTBF = x, true
			} else {
				ev.MTTR, haveMTTR = x, true
			}
		case "until":
			t, err := strconv.ParseInt(val, 10, 64)
			if err != nil || t < 0 {
				return Event{}, fmt.Errorf("scenario: chaos event %q: bad until %q", s, val)
			}
			ev.Until = sim.Time(t)
		default:
			return Event{}, fmt.Errorf("scenario: chaos event %q: unknown key %q", s, key)
		}
	}
	if !haveMTBF || !haveMTTR {
		return Event{}, fmt.Errorf("scenario: chaos event %q: needs mtbf= and mttr=", s)
	}
	return ev, nil
}

// parseTargets fills PEs or Frac from a pes= value: "25%" or "3+7+9".
func parseTargets(ev *Event, val string) error {
	if pct, ok := strings.CutSuffix(val, "%"); ok {
		f, err := strconv.ParseFloat(pct, 64)
		if err != nil || f <= 0 || f > 100 {
			return fmt.Errorf("bad percentage %q", val)
		}
		ev.Frac = f / 100
		return nil
	}
	for _, id := range strings.Split(val, "+") {
		n, err := strconv.Atoi(id)
		if err != nil || n < 0 {
			return fmt.Errorf("bad PE id %q", id)
		}
		ev.PEs = append(ev.PEs, n)
	}
	return nil
}

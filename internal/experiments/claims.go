package experiments

import "fmt"

// The paper's qualitative findings, as executable checks. cmd/validate
// runs them all and reports pass/fail — the reproduction validating
// itself against the claims EXPERIMENTS.md tracks.

// ClaimResult is the outcome of one claim check.
type ClaimResult struct {
	ID        string
	Statement string
	Pass      bool
	Detail    string
}

// Claim is one verifiable statement from the paper.
type Claim struct {
	ID        string
	Statement string
	Check     func(quick bool, workers int) (bool, string)
}

// Claims returns the paper's testable findings in order.
func Claims() []Claim {
	return []Claim{
		{
			ID:        "C1-cwn-wins",
			Statement: "CWN yields larger speedups than GM in the vast majority of pairings (paper: 118/120)",
			Check: func(quick bool, workers int) (bool, string) {
				rs, err := RunAll(SpeedupSuite(quick), workers)
				if err != nil {
					return false, err.Error()
				}
				s := Summarize(rs)
				frac := float64(s.CWNWins) / float64(s.Pairs)
				return frac >= 0.75, s.String()
			},
		},
		{
			ID:        "C2-grid-margins",
			Statement: "margins are larger on grids (diameter 8-38) than on DLMs (diameter 4-5)",
			Check: func(quick bool, workers int) (bool, string) {
				rs, err := RunAll(SpeedupSuite(quick), workers)
				if err != nil {
					return false, err.Error()
				}
				s := Summarize(rs)
				return s.GridMean > 1 && s.GridMean >= s.DLMMean*0.9,
					fmt.Sprintf("gridMean=%.2f dlmMean=%.2f", s.GridMean, s.DLMMean)
			},
		},
		{
			ID:        "C3-rise-time",
			Statement: "CWN has a much faster rise-time: it spreads work quickly to all PEs at the beginning",
			Check: func(quick bool, workers int) (bool, string) {
				wl := Fib(15)
				if quick {
					wl = Fib(13)
				}
				ts := Grid(10)
				specs := []RunSpec{
					{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts), SampleInterval: 50, MonitorPE: true},
					{Topo: ts, Workload: wl, Strategy: PaperGMFor(ts), SampleInterval: 50, MonitorPE: true},
				}
				rs, err := RunAll(specs, workers)
				if err != nil {
					return false, err.Error()
				}
				cwn, gm := rs[0].Stats.Monitor, rs[1].Stats.Monitor
				frame := 3 // t=200
				if cwn.Len() <= frame || gm.Len() <= frame {
					return false, "runs too short to compare"
				}
				c, g := cwn.ActivePEs(frame), gm.ActivePEs(frame)
				return c > g, fmt.Sprintf("active PEs at t=200: CWN %d vs GM %d", c, g)
			},
		},
		{
			ID:        "C4-gm-holds-peak",
			Statement: "GM maintains its peak utilization better once reached (it can re-distribute); CWN cannot",
			Check: func(quick bool, workers int) (bool, string) {
				// Plot 11's configuration: the big fib on the 100-PE DLM.
				wl := Fib(18)
				if quick {
					wl = Fib(15)
				}
				ts := DLM(10, 5)
				rs, err := RunAll(TimeSeriesSpecs(ts, wl, 50), workers)
				if err != nil {
					return false, err.Error()
				}
				cwnPeak := rs[0].Stats.Timeline.MaxV()
				gmPeak := rs[1].Stats.Timeline.MaxV()
				return gmPeak >= cwnPeak-10,
					fmt.Sprintf("peak util%%: CWN %.1f vs GM %.1f", cwnPeak, gmPeak)
			},
		},
		{
			ID:        "C5-cwn-comm-3x",
			Statement: "CWN requires roughly thrice the communication: mean goal distance ~3 hops vs <1 for GM, with a spike at the radius",
			Check: func(quick bool, workers int) (bool, string) {
				rs, err := RunAll(HopDistributionSpecs(1, quick), workers)
				if err != nil {
					return false, err.Error()
				}
				cwn, gm := rs[0], rs[1]
				spike := cwn.Stats.GoalHops.Count(9) > 0
				ok := cwn.AvgHops >= 2*gm.AvgHops && gm.AvgHops < 1 && spike
				return ok, fmt.Sprintf("avg hops: CWN %.2f vs GM %.2f, radius spike %d goals",
					cwn.AvgHops, gm.AvgHops, cwn.Stats.GoalHops.Count(9))
			},
		},
		{
			ID:        "C6-gm-hoards",
			Statement: "on grids GM flattens: PEs hoard work and utilization stays far below CWN's (the 'vicious cycle')",
			Check: func(quick bool, workers int) (bool, string) {
				wl := Fib(15)
				if quick {
					wl = Fib(13)
				}
				ts := Grid(10)
				rs, err := RunAll([]RunSpec{
					{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts)},
					{Topo: ts, Workload: wl, Strategy: PaperGMFor(ts)},
				}, workers)
				if err != nil {
					return false, err.Error()
				}
				return rs[0].Util > 1.5*rs[1].Util && rs[0].Balance > rs[1].Balance,
					fmt.Sprintf("util%%: CWN %.1f vs GM %.1f; balance: %.2f vs %.2f",
						rs[0].Util, rs[1].Util, rs[0].Balance, rs[1].Balance)
			},
		},
		{
			ID:        "C7-comm-ratio-caveat",
			Statement: "when communication costs rise, CWN loses its edge (paper's closing caveat)",
			Check: func(quick bool, workers int) (bool, string) {
				rs, err := RunAll(CommRatioSpecs(quick), workers)
				if err != nil {
					return false, err.Error()
				}
				cheap := rs[0].Speedup / rs[1].Speedup
				costly := rs[len(rs)-2].Speedup / rs[len(rs)-1].Speedup
				return costly < cheap,
					fmt.Sprintf("CWN/GM ratio: %.2f at hop=1 vs %.2f at hop=20", cheap, costly)
			},
		},
		{
			ID:        "C8-result-correct",
			Statement: "the simulation computes the program's actual result (ORACLE property)",
			Check: func(quick bool, workers int) (bool, string) {
				r, err := RunSpec{Topo: Grid(5), Workload: Fib(12), Strategy: CWN(5, 1)}.ExecuteErr()
				if err != nil {
					return false, err.Error()
				}
				want := Fib(12).Build().Eval()
				return r.Stats.Result == want,
					fmt.Sprintf("fib(12) = %d (expected %d)", r.Stats.Result, want)
			},
		},
		{
			ID:        "C9-acwn-improves",
			Statement: "adding a small re-distribution component to CWN helps (paper's future-work prediction)",
			Check: func(quick bool, workers int) (bool, string) {
				wl := Fib(15)
				if quick {
					wl = Fib(13)
				}
				ts := Grid(10)
				redist := ACWN(9, 2, 0, 40)
				rs, err := RunAll([]RunSpec{
					{Topo: ts, Workload: wl, Strategy: PaperCWNFor(ts)},
					{Topo: ts, Workload: wl, Strategy: redist},
				}, workers)
				if err != nil {
					return false, err.Error()
				}
				// At minimum, redistribution must not hurt materially.
				return rs[1].Speedup >= rs[0].Speedup*0.95,
					fmt.Sprintf("speedup: CWN %.2f vs ACWN-redist %.2f", rs[0].Speedup, rs[1].Speedup)
			},
		},
		{
			ID:        "C10-no-stagnation",
			Statement: "at the paper's communication ratio no channel saturates (the comparison measures distribution, not bandwidth)",
			Check: func(quick bool, workers int) (bool, string) {
				wl := Fib(15)
				if quick {
					wl = Fib(13)
				}
				var specs []RunSpec
				for _, ts := range []TopoSpec{Grid(10), DLM(10, 5)} {
					for _, strat := range []StrategySpec{PaperCWNFor(ts), PaperGMFor(ts)} {
						specs = append(specs, RunSpec{Topo: ts, Workload: wl, Strategy: strat})
					}
				}
				rs, err := RunAll(specs, workers)
				if err != nil {
					return false, err.Error()
				}
				worst := 0.0
				for _, r := range rs {
					if u := r.Stats.MaxChannelUtilization(); u > worst {
						worst = u
					}
				}
				return worst < 0.95, fmt.Sprintf("worst channel utilization %.1f%%", 100*worst)
			},
		},
	}
}

// RunClaims evaluates every claim and returns the outcomes.
func RunClaims(quick bool, workers int) []ClaimResult {
	var out []ClaimResult
	for _, c := range Claims() {
		pass, detail := c.Check(quick, workers)
		out = append(out, ClaimResult{ID: c.ID, Statement: c.Statement, Pass: pass, Detail: detail})
	}
	return out
}

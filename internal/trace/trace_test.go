package trace

import (
	"bytes"
	"strings"
	"testing"

	"cwnsim/internal/sim"
)

func TestCollector(t *testing.T) {
	var c Collector
	c.Record(Event{At: 1, Kind: GoalCreated, PE: 0, Other: -1, Goal: 7})
	c.Record(Event{At: 2, Kind: GoalSent, PE: 0, Other: 1, Goal: 7})
	c.Record(Event{At: 3, Kind: GoalAccepted, PE: 1, Other: -1, Goal: 7})
	c.Record(Event{At: 4, Kind: GoalAccepted, PE: 2, Other: -1, Goal: 9})

	if len(c.Events) != 4 {
		t.Fatalf("stored %d events", len(c.Events))
	}
	if got := c.ByKind(GoalAccepted); len(got) != 2 {
		t.Errorf("ByKind(GoalAccepted) = %d events", len(got))
	}
	if got := c.ByGoal(7); len(got) != 3 {
		t.Errorf("ByGoal(7) = %d events", len(got))
	}
	if c.Count(GoalSent) != 1 || c.Count(GoalExecuted) != 0 {
		t.Error("Count wrong")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	for i := 0; i < 5; i++ {
		c.Record(Event{Kind: GoalExecuted})
	}
	c.Record(Event{Kind: RespSent})
	if c.Count(GoalExecuted) != 5 || c.Count(RespSent) != 1 || c.Count(GoalCreated) != 0 {
		t.Errorf("counter wrong: %+v", c)
	}
	if c.Count(Kind(200)) != 0 {
		t.Error("out-of-range kind should count 0")
	}
}

func TestLogger(t *testing.T) {
	var buf bytes.Buffer
	l := &Logger{W: &buf}
	l.Record(Event{At: 42, Kind: GoalSent, PE: 3, Other: 4, Goal: 17})
	l.Record(Event{At: 50, Kind: GoalExecuted, PE: 4, Other: -1, Goal: 17})
	out := buf.String()
	if !strings.Contains(out, "goal-sent") || !strings.Contains(out, "peer=4") {
		t.Errorf("log output: %q", out)
	}
	if !strings.Contains(out, "goal-executed") {
		t.Errorf("log output: %q", out)
	}
	// Filtered logger drops unselected kinds.
	buf.Reset()
	l.Filter = func(k Kind) bool { return k == RespSent }
	l.Record(Event{At: 1, Kind: GoalSent, PE: 0, Other: 1, Goal: 1})
	if buf.Len() != 0 {
		t.Errorf("filter leaked: %q", buf.String())
	}
	l.Record(Event{At: 1, Kind: RespSent, PE: 0, Other: 1, Goal: 1})
	if buf.Len() == 0 {
		t.Error("filter dropped selected kind")
	}
}

func TestMulti(t *testing.T) {
	var a, b Counter
	m := Multi{&a, &b}
	m.Record(Event{Kind: GoalCreated})
	if a.Count(GoalCreated) != 1 || b.Count(GoalCreated) != 1 {
		t.Error("multi did not fan out")
	}
}

func TestKindString(t *testing.T) {
	for k := GoalCreated; k < numKinds; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind should fall back")
	}
}

func TestMonitorFrames(t *testing.T) {
	var m Monitor
	m.Append(10, []float64{0, 0.5, 1, 0})
	m.Append(20, []float64{1, 1, 1, 0.25})
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.ActivePEs(0) != 2 || m.ActivePEs(1) != 4 {
		t.Errorf("ActivePEs = %d, %d", m.ActivePEs(0), m.ActivePEs(1))
	}
	// Frames are copies: mutating the source must not leak in.
	src := []float64{0.9}
	m.Append(30, src)
	src[0] = 0
	if m.Frames[2].Util[0] != 0.9 {
		t.Error("frame aliases caller slice")
	}
}

func TestMonitorRender(t *testing.T) {
	var m Monitor
	m.Append(10, []float64{0, 1, 0.5, 0})
	m.Append(20, []float64{1, 1, 1, 1})
	var buf bytes.Buffer
	m.Render(&buf, 2, 2, 1)
	out := buf.String()
	if !strings.Contains(out, "t=10") || !strings.Contains(out, "t=20") {
		t.Errorf("render missing frames:\n%s", out)
	}
	if !strings.Contains(out, "2/4 PEs active") {
		t.Errorf("render missing activity count:\n%s", out)
	}
	// Stride skips frames.
	buf.Reset()
	m.Render(&buf, 2, 2, 2)
	if strings.Contains(buf.String(), "t=20") {
		t.Error("stride 2 should skip the second frame")
	}
}

func TestMonitorCSV(t *testing.T) {
	var m Monitor
	m.Append(10, []float64{0.5, 1})
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "10,0.5000,1.0000\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestMonitorBound(t *testing.T) {
	var m Monitor
	m.Bound(4)
	for i := 0; i < 100; i++ {
		m.Append(sim.Time(i), []float64{float64(i)})
	}
	if m.Len() > 4 {
		t.Fatalf("bounded monitor holds %d frames, cap 4", m.Len())
	}
	if !m.Bounded() {
		t.Fatal("monitor over its cap does not report Bounded")
	}
	prev := sim.Time(-1)
	for _, f := range m.Frames {
		if f.Util[0] != float64(f.At) {
			t.Fatalf("retained frame at t=%d lost its values", f.At)
		}
		if f.At <= prev {
			t.Fatalf("frames out of order at t=%d", f.At)
		}
		prev = f.At
	}
	// Late bounding thins immediately.
	var m2 Monitor
	for i := 0; i < 50; i++ {
		m2.Append(sim.Time(i), []float64{1})
	}
	m2.Bound(8)
	if m2.Len() > 8 {
		t.Fatalf("late Bound left %d frames", m2.Len())
	}
}

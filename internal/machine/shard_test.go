package machine

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// spread is a load-aware test strategy that generates real cross-shard
// traffic: each new goal is offloaded to the least-loaded neighbor when
// that neighbor looks strictly less loaded, so placement depends on
// piggybacked loads, broadcast timing and RNG tie-breaks — the full
// protocol surface.
type spread struct{}

func (spread) Name() string                { return "spread" }
func (spread) Setup(*Machine)              {}
func (spread) NewNode(pe *PE) NodeStrategy { return AdaptNode(spreadNode{pe}) }

type spreadNode struct{ pe *PE }

func (n spreadNode) PlaceNewGoal(g *Goal) {
	if nbr, load := n.pe.LeastLoadedNeighbor(); nbr >= 0 && load < n.pe.Load() {
		n.pe.SendGoal(nbr, g)
		return
	}
	n.pe.Accept(g)
}
func (n spreadNode) GoalArrived(g *Goal, from int) { n.pe.Accept(g) }
func (n spreadNode) Control(int, any)              {}

// shardCase is one (topology, strategy, source) cell of the shard
// cross-check matrix.
type shardCase struct {
	name  string
	topo  func() *topology.Topology
	strat Strategy
	open  bool
}

func shardCases() []shardCase {
	return []shardCase{
		{"closed/grid5x5/spread", func() *topology.Topology { return topology.NewGrid(5, 5) }, spread{}, false},
		{"closed/ring12/pushright", func() *topology.Topology { return topology.NewRing(12) }, pushRight{}, false},
		{"open/grid4x4/spread", func() *topology.Topology { return topology.NewGrid(4, 4) }, spread{}, true},
		{"open/torus4x4/spread", func() *topology.Topology { return topology.NewTorus(4, 4) }, spread{}, true},
	}
}

func (c shardCase) run(t *testing.T, shards int, serial bool) *Stats {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.ShardSerial = serial
	tree := workload.NewFib(10)
	var src JobSource = NewSingleJob(tree)
	if c.open {
		src = NewFixedInterval(tree, 120, 8)
	}
	return NewStream(c.topo(), src, c.strat, cfg).Run()
}

// shardFP extends the event-level fingerprint with every per-PE and
// per-job detail a divergence could disturb.
type shardFP struct {
	fingerprint
	goalsPerPE []int64
	busyPerPE  []sim.Time
	chanMsgs   []int64
	records    []JobRecord
	p99        float64
}

func shardFPOf(st *Stats) shardFP {
	return shardFP{
		fingerprint: fp(st),
		goalsPerPE:  st.GoalsPerPE,
		busyPerPE:   st.BusyPerPE,
		chanMsgs:    st.ChannelMsgs,
		records:     st.JobRecords,
		p99:         st.SojournP99(),
	}
}

// TestShardOneBitForBitSequential pins the protocol's reference case:
// Shards=1 runs the full windowed shard machinery — windows, barriers,
// idle fast-forward — and must reproduce the sequential machine bit
// for bit, across every matrix cell.
func TestShardOneBitForBitSequential(t *testing.T) {
	for _, c := range shardCases() {
		t.Run(c.name, func(t *testing.T) {
			seq := shardFPOf(c.run(t, 0, false))
			one := shardFPOf(c.run(t, 1, false))
			if !reflect.DeepEqual(seq, one) {
				t.Fatalf("Shards=1 diverged from sequential:\nseq: %+v\nshd: %+v", seq.fingerprint, one.fingerprint)
			}
		})
	}
}

// TestShardParallelMatchesSerial pins the determinism claim for real
// parallelism: a K-shard run on K goroutines must equal its
// single-goroutine window-by-window replay (ShardSerial) bit for bit —
// the proof that the thread schedule cannot leak into results.
func TestShardParallelMatchesSerial(t *testing.T) {
	for _, c := range shardCases() {
		for _, k := range []int{2, 4} {
			t.Run(c.name, func(t *testing.T) {
				par := shardFPOf(c.run(t, k, false))
				ser := shardFPOf(c.run(t, k, true))
				if !reflect.DeepEqual(par, ser) {
					t.Fatalf("K=%d parallel diverged from serial replay:\npar: %+v\nser: %+v", k, par.fingerprint, ser.fingerprint)
				}
			})
		}
	}
}

// TestShardParallelRepeatable runs the same parallel spec twice:
// identical results, independent of goroutine scheduling between the
// two runs.
func TestShardParallelRepeatable(t *testing.T) {
	c := shardCases()[0]
	a := shardFPOf(c.run(t, 4, false))
	b := shardFPOf(c.run(t, 4, false))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical K=4 runs diverged:\n1st: %+v\n2nd: %+v", a.fingerprint, b.fingerprint)
	}
}

// TestShardConservationVsSequential checks what K>=2 and sequential
// runs must still agree on even though same-timestamp event order
// differs: the workload's size and answer, the job stream, and the
// internal consistency of the merged per-PE accounting.
func TestShardConservationVsSequential(t *testing.T) {
	for _, c := range shardCases() {
		t.Run(c.name, func(t *testing.T) {
			seq := c.run(t, 0, false)
			for _, k := range []int{2, 3, 4} {
				st := c.run(t, k, false)
				if !st.Completed || !seq.Completed {
					t.Fatalf("K=%d: completed=%v, sequential completed=%v", k, st.Completed, seq.Completed)
				}
				if st.Result != seq.Result {
					t.Errorf("K=%d: result %d, sequential %d", k, st.Result, seq.Result)
				}
				for name, pair := range map[string][2]int64{
					"goals":          {int64(st.Goals), int64(seq.Goals)},
					"goalsExecuted":  {st.GoalsExecuted, seq.GoalsExecuted},
					"respIntegrated": {st.RespIntegrated, seq.RespIntegrated},
					"jobsInjected":   {st.JobsInjected, seq.JobsInjected},
					"jobsDone":       {st.JobsDone, seq.JobsDone},
					"sojournN":       {int64(st.Sojourn.N()), int64(seq.Sojourn.N())},
				} {
					if pair[0] != pair[1] {
						t.Errorf("K=%d: %s = %d, sequential %d", k, name, pair[0], pair[1])
					}
				}
				var perPE int64
				for _, g := range st.GoalsPerPE {
					perPE += g
				}
				if perPE != st.GoalsExecuted {
					t.Errorf("K=%d: per-PE goal counts sum to %d, want %d", k, perPE, st.GoalsExecuted)
				}
				var busy sim.Time
				for _, b := range st.BusyPerPE {
					busy += b
				}
				if busy != st.TotalBusy {
					t.Errorf("K=%d: per-PE busy sums to %d, want %d", k, busy, st.TotalBusy)
				}
				if int64(len(st.JobRecords)) != st.JobsDone {
					t.Errorf("K=%d: %d job records for %d jobs", k, len(st.JobRecords), st.JobsDone)
				}
				for i := 1; i < len(st.JobRecords); i++ {
					if st.JobRecords[i].DoneAt < st.JobRecords[i-1].DoneAt {
						t.Errorf("K=%d: job records out of completion order at %d", k, i)
						break
					}
				}
			}
		})
	}
}

// TestShardClampAndOvershard pins the clamp: more shards than PEs is
// the PEs-many-shards run, not a panic.
func TestShardClampAndOvershard(t *testing.T) {
	c := shardCase{topo: func() *topology.Topology { return topology.NewGrid(3, 3) }, strat: spread{}}
	big := shardFPOf(c.run(t, 64, false))
	exact := shardFPOf(c.run(t, 9, false))
	if !reflect.DeepEqual(big, exact) {
		t.Fatalf("Shards=64 on 9 PEs diverged from Shards=9")
	}
}

// TestShardRejectsSequentialOnly pins the SequentialOnly gate: a
// strategy declaring global state must refuse to shard, with its
// reason in the panic.
func TestShardRejectsSequentialOnly(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("sharding a SequentialOnly strategy did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "global-test reads everything") {
			t.Fatalf("panic %v does not carry the strategy's reason", r)
		}
	}()
	cfg := DefaultConfig()
	cfg.Shards = 2
	NewStream(topology.NewGrid(3, 3), NewSingleJob(workload.NewFib(5)), globalStrat{}, cfg)
}

type globalStrat struct{ spread }

func (globalStrat) Name() string           { return "global-test" }
func (globalStrat) SequentialOnly() string { return "global-test reads everything" }

// TestShardConfigRejections pins validate's incompatibility panics.
func TestShardConfigRejections(t *testing.T) {
	base := func() Config {
		cfg := DefaultConfig()
		cfg.Shards = 2
		return cfg
	}
	cases := map[string]Config{}
	cfg := base()
	cfg.Pool = &Pool{}
	cases["pool"] = cfg
	cfg = base()
	cfg.Shards = -1
	cases["negative"] = cfg
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Shards with %s did not panic", name)
				}
			}()
			NewStream(topology.NewGrid(3, 3), NewSingleJob(workload.NewFib(5)), spread{}, cfg)
		})
	}
}

// TestInjSojournBucketsBounded pins the SeriesBound residual fix: the
// raw injection-window buckets behind InjSojournWindows stop growing
// past the cap — they merge pairwise and double their stride — while
// conserving every observation.
func TestInjSojournBucketsBounded(t *testing.T) {
	run := func(bound int) (*Machine, *Stats) {
		cfg := DefaultConfig()
		cfg.SampleInterval = 5
		cfg.SeriesBound = bound
		// The injection-window buckets exist only on scenario runs (they
		// feed recovery analysis); a brief mid-run slowdown makes one.
		cfg.Scenario = scenario.MustParse("slow:pes=0:x=0.5@t=200,restore@t=400")
		m := NewStream(topology.NewGrid(3, 3), NewFixedInterval(workload.NewFib(8), 40, 40), spread{}, cfg)
		return m, m.Run()
	}
	exact, est := run(0)
	boundM, bst := run(4)
	if est.JobsDone != bst.JobsDone || est.JobsDone == 0 {
		t.Fatalf("jobs done diverged: %d vs %d", est.JobsDone, bst.JobsDone)
	}
	if len(boundM.injSoj) > 4 {
		t.Fatalf("bounded run retains %d injection buckets, cap 4", len(boundM.injSoj))
	}
	if len(exact.injSoj) <= 4 {
		t.Fatalf("exact run kept only %d buckets — the case does not exercise thinning", len(exact.injSoj))
	}
	if boundM.injStride < 2 || boundM.injStride&(boundM.injStride-1) != 0 {
		t.Fatalf("bounded stride %d: want a power of two >= 2", boundM.injStride)
	}
	flat := func(m *Machine) []float64 {
		var all []float64
		for _, b := range m.injSoj {
			all = append(all, b...)
		}
		sort.Float64s(all)
		return all
	}
	if !reflect.DeepEqual(flat(exact), flat(boundM)) {
		t.Fatal("thinning lost or altered sojourn observations")
	}
	if got := bst.InjSojournWindows.Len(); got > 4 {
		t.Fatalf("finalized InjSojournWindows has %d points, cap 4", got)
	}
}

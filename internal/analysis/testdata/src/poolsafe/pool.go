// Package poolsafefix exercises the poolsafe analyzer: free functions
// must zero pointer-bearing fields of pooled objects, and callers must
// not touch an object after handing it to a free function.
package poolsafefix

// obj is a pooled node; next must be zeroed when it parks on the free
// list or parked objects anchor dead object graphs.
//
//simlint:pooled
type obj struct {
	next *obj
	id   int
}

var pool []*obj

// freeObj is the compliant free: zeroes the pointer field, then parks.
//
//simlint:free
func freeObj(p *obj) {
	p.next = nil
	pool = append(pool, p)
}

//simlint:free
func freeLeaky(p *obj) { // want `freeLeaky parks a \*obj on the free list without zeroing pointer-bearing field\(s\) next`
	pool = append(pool, p)
}

func newObj() *obj {
	if n := len(pool); n > 0 {
		p := pool[n-1]
		pool = pool[:n-1]
		return p
	}
	return &obj{}
}

func useAfterFree(p *obj) int {
	freeObj(p)
	return p.id // want `p is used after freeObj returned it to the free list`
}

// freeLast is the compliant call shape: the object is read before the
// free, never after.
func freeLast(p *obj) int {
	id := p.id
	freeObj(p)
	return id
}

// rebind is also compliant: reassigning the variable gives it a new
// identity, so later uses are not uses of the freed object.
func rebind(p *obj) int {
	freeObj(p)
	p = newObj()
	return p.id
}

package simfix

import "math/rand"

// sampler reproduces the shape of the machine's utilization sampler:
// one shared simulation stream and one dedicated observer stream.
type sampler struct {
	rng    *rand.Rand // the simulation's tie-break stream
	obsRng *rand.Rand //simlint:obsstream dedicated observer stream, salted from the run seed
}

// staggerBad is the historical PR 2 bug shape: the observer ticker
// drew its stagger phase from the shared simulation stream, so merely
// enabling sampling reordered the run's tie-break draws and changed
// the simulated result.
//
//simlint:observer
func (s *sampler) staggerBad(period int64) int64 {
	return s.rng.Int63n(period) // want `observer code draws from a simulation RNG stream`
}

// staggerGood draws from the obsstream-tagged field: measurement
// randomness stays disjoint from the simulation's.
//
//simlint:observer
func (s *sampler) staggerGood(period int64) int64 {
	return s.obsRng.Int63n(period)
}

// simDraw is untagged simulation code: drawing from the simulation
// stream here is exactly right.
func (s *sampler) simDraw(period int64) int64 {
	return s.rng.Int63n(period)
}

// Package experiments turns declarative run specifications into
// simulation results and regenerates every table and figure of the
// paper: the parameter-optimization runs behind Table 1, the 240-run
// comparison behind Table 2, the hop-distance distribution of Table 3,
// the utilization-versus-problem-size curves of Plots 1-10, the
// utilization-versus-time traces of Plots 11-16, and the appendix
// hypercube studies. Beyond the paper, RunSpec carries an ArrivalSpec,
// so the same declarative layer drives open-system runs: job streams
// with latency and throughput results (cmd/serve).
//
// Specs name their components by kind and are dispatched through
// registries — see RegisterTopology, RegisterWorkload, RegisterStrategy
// and RegisterArrival in registry.go for how to plug in new kinds.
package experiments

import (
	"fmt"
	"sync"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TopoSpec names an interconnection network. Specs are plain data so
// experiment definitions can be serialized and reported.
type TopoSpec struct {
	Kind  string `json:"kind"` // grid|torus|torus3d|dlm|hypercube|ring|chordal|complete|star|bus|single
	Rows  int    `json:"rows,omitempty"`
	Cols  int    `json:"cols,omitempty"`
	Span  int    `json:"span,omitempty"`  // dlm bus span
	Dim   int    `json:"dim,omitempty"`   // hypercube dimension
	N     int    `json:"n,omitempty"`     // ring/chordal/complete/star/bus size
	Z     int    `json:"z,omitempty"`     // torus3d third dimension
	Chord int    `json:"chord,omitempty"` // chordal ring stride

	// Implicit forces the computed-neighbor (implicit) topology form for
	// the regular families (grid, torus, hypercube): O(1) memory, no
	// stored edge lists, results bit-for-bit identical to the
	// materialized build. Machines of implicitThreshold PEs or more
	// promote to the implicit form automatically; irregular kinds ignore
	// the flag and always materialize.
	Implicit bool `json:"implicit,omitempty"`
}

// implicitThreshold is the machine size at or above which the regular
// families build in implicit form without being asked: past it the
// materialized adjacency (and its lazily built O(n²) routing tables)
// dominates memory, and the forms are bit-for-bit interchangeable.
const implicitThreshold = 65536

// implicitForm reports whether Build selects the computed-neighbor form.
func (ts TopoSpec) implicitForm() bool {
	switch ts.Kind {
	case "grid", "torus", "hypercube":
		return ts.Implicit || ts.PEs() >= implicitThreshold
	}
	return false
}

// Grid returns a non-wraparound side×side grid spec.
func Grid(side int) TopoSpec { return TopoSpec{Kind: "grid", Rows: side, Cols: side} }

// Torus returns a wraparound side×side grid spec.
func Torus(side int) TopoSpec { return TopoSpec{Kind: "torus", Rows: side, Cols: side} }

// DLM returns a side×side double-lattice-mesh spec with the given span.
func DLM(side, span int) TopoSpec {
	return TopoSpec{Kind: "dlm", Rows: side, Cols: side, Span: span}
}

// Hypercube returns a hypercube spec of the given dimension.
func Hypercube(dim int) TopoSpec { return TopoSpec{Kind: "hypercube", Dim: dim} }

// Build constructs (and caches) the topology via the topology registry.
func (ts TopoSpec) Build() *topology.Topology {
	topoCacheMu.Lock()
	defer topoCacheMu.Unlock()
	key := ts.Label()
	if ts.implicitForm() {
		// Same Label (run names and ledgers are form-agnostic), distinct
		// cache entry: an explicit Implicit flag must not alias a
		// materialized build of the same dimensions.
		key += "+implicit"
	}
	if t, ok := topoCache[key]; ok {
		return t
	}
	t := topoRegistry.build(ts.Kind, ts)
	topoCache[key] = t
	return t
}

func init() {
	RegisterTopology("grid", func(ts TopoSpec) *topology.Topology {
		if ts.implicitForm() {
			return topology.NewGridImplicit(ts.Rows, ts.Cols)
		}
		return topology.NewGrid(ts.Rows, ts.Cols)
	})
	RegisterTopology("torus", func(ts TopoSpec) *topology.Topology {
		if ts.implicitForm() {
			return topology.NewTorusImplicit(ts.Rows, ts.Cols)
		}
		return topology.NewTorus(ts.Rows, ts.Cols)
	})
	RegisterTopology("torus3d", func(ts TopoSpec) *topology.Topology { return topology.NewTorus3D(ts.Rows, ts.Cols, ts.Z) })
	RegisterTopology("dlm", func(ts TopoSpec) *topology.Topology { return topology.NewDLM(ts.Rows, ts.Cols, ts.Span) })
	RegisterTopology("hypercube", func(ts TopoSpec) *topology.Topology {
		if ts.implicitForm() {
			return topology.NewHypercubeImplicit(ts.Dim)
		}
		return topology.NewHypercube(ts.Dim)
	})
	RegisterTopology("ring", func(ts TopoSpec) *topology.Topology { return topology.NewRing(ts.N) })
	RegisterTopology("chordal", func(ts TopoSpec) *topology.Topology { return topology.NewChordalRing(ts.N, ts.Chord) })
	RegisterTopology("complete", func(ts TopoSpec) *topology.Topology { return topology.NewComplete(ts.N) })
	RegisterTopology("star", func(ts TopoSpec) *topology.Topology { return topology.NewStar(ts.N) })
	RegisterTopology("bus", func(ts TopoSpec) *topology.Topology { return topology.NewBusGlobal(ts.N) })
	RegisterTopology("single", func(TopoSpec) *topology.Topology { return topology.NewSingle() })
}

// Label is a short stable identifier, e.g. "grid-20x20" or "dlm-10x10-s5".
func (ts TopoSpec) Label() string {
	switch ts.Kind {
	case "grid", "torus":
		return fmt.Sprintf("%s-%dx%d", ts.Kind, ts.Rows, ts.Cols)
	case "torus3d":
		return fmt.Sprintf("torus3d-%dx%dx%d", ts.Rows, ts.Cols, ts.Z)
	case "dlm":
		return fmt.Sprintf("dlm-%dx%d-s%d", ts.Rows, ts.Cols, ts.Span)
	case "hypercube":
		return fmt.Sprintf("hypercube-d%d", ts.Dim)
	case "chordal":
		return fmt.Sprintf("chordal-%d-c%d", ts.N, ts.Chord)
	case "single":
		return "single"
	default:
		return fmt.Sprintf("%s-%d", ts.Kind, ts.N)
	}
}

// PEs returns the machine size without building the topology.
func (ts TopoSpec) PEs() int {
	switch ts.Kind {
	case "grid", "torus", "dlm":
		return ts.Rows * ts.Cols
	case "torus3d":
		return ts.Rows * ts.Cols * ts.Z
	case "hypercube":
		return 1 << uint(ts.Dim)
	case "single":
		return 1
	default:
		return ts.N
	}
}

var (
	topoCacheMu sync.Mutex
	topoCache   = map[string]*topology.Topology{}
)

// WorkloadSpec names a computation tree.
type WorkloadSpec struct {
	Kind string  `json:"kind"` // fib|dc|binary|skew|chain|random|imbal
	M    int     `json:"m,omitempty"`
	N    int     `json:"n,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	Frac float64 `json:"frac,omitempty"` // imbal left fraction
}

// Fib returns the fib(m) workload spec.
func Fib(m int) WorkloadSpec { return WorkloadSpec{Kind: "fib", M: m} }

// DC returns the dc(1,x) workload spec.
func DC(x int) WorkloadSpec { return WorkloadSpec{Kind: "dc", M: 1, N: x} }

// Build constructs (and caches) the tree via the workload registry.
func (ws WorkloadSpec) Build() *workload.Tree {
	treeCacheMu.Lock()
	defer treeCacheMu.Unlock()
	key := ws.Label()
	if t, ok := treeCache[key]; ok {
		return t
	}
	t := workloadRegistry.build(ws.Kind, ws)
	treeCache[key] = t
	return t
}

func init() {
	RegisterWorkload("fib", func(ws WorkloadSpec) *workload.Tree { return workload.NewFib(ws.M) })
	RegisterWorkload("dc", func(ws WorkloadSpec) *workload.Tree { return workload.NewDC(ws.M, ws.N) })
	RegisterWorkload("binary", func(ws WorkloadSpec) *workload.Tree { return workload.NewFullBinary(ws.N) })
	RegisterWorkload("skew", func(ws WorkloadSpec) *workload.Tree { return workload.NewSkewed(ws.N) })
	RegisterWorkload("chain", func(ws WorkloadSpec) *workload.Tree { return workload.NewChain(ws.N) })
	RegisterWorkload("random", func(ws WorkloadSpec) *workload.Tree {
		return workload.NewRandom(workload.RandomConfig{Seed: ws.Seed, Goals: ws.N, MaxKids: 4, MaxWork: 3, LeafValue: 1})
	})
	RegisterWorkload("imbal", func(ws WorkloadSpec) *workload.Tree { return workload.NewImbalanced(ws.N, ws.Frac) })
}

// Label is a short stable identifier, e.g. "fib(18)" or "dc(1,4181)".
func (ws WorkloadSpec) Label() string {
	switch ws.Kind {
	case "fib":
		return fmt.Sprintf("fib(%d)", ws.M)
	case "dc":
		return fmt.Sprintf("dc(%d,%d)", ws.M, ws.N)
	case "random":
		return fmt.Sprintf("random(%d,seed=%d)", ws.N, ws.Seed)
	case "imbal":
		return fmt.Sprintf("imbal(%d,%.2f)", ws.N, ws.Frac)
	default:
		return fmt.Sprintf("%s(%d)", ws.Kind, ws.N)
	}
}

var (
	treeCacheMu sync.Mutex
	treeCache   = map[string]*workload.Tree{}
)

// StrategySpec names a load-distribution strategy and its parameters.
type StrategySpec struct {
	Kind          string `json:"kind"` // cwn|gm|acwn|local|randomwalk|roundrobin|worksteal
	Radius        int    `json:"radius,omitempty"`
	Horizon       int    `json:"horizon,omitempty"`
	Low           int    `json:"low,omitempty"`
	High          int    `json:"high,omitempty"`
	Interval      int64  `json:"interval,omitempty"`
	Sat           int    `json:"sat,omitempty"`
	Redistribute  bool   `json:"redistribute,omitempty"`
	RequireTarget bool   `json:"requireTarget,omitempty"`
	Strict        bool   `json:"strict,omitempty"`       // CWN/ACWN strict local-minimum rule
	ExportNewest  bool   `json:"exportNewest,omitempty"` // GM newest-goal export policy
	Steps         int    `json:"steps,omitempty"`
	Threshold     int    `json:"threshold,omitempty"`
	// FailureAware opts cwn/gm/worksteal nodes into the environment
	// event stream (PEFailed/PERecovered): immediate re-steering and
	// backfill on availability changes instead of sentinel-only
	// reaction. Ignored by strategies without a failure-aware mode.
	FailureAware bool `json:"failureAware,omitempty"`
}

// CWN returns a CWN strategy spec.
func CWN(radius, horizon int) StrategySpec {
	return StrategySpec{Kind: "cwn", Radius: radius, Horizon: horizon}
}

// GM returns a Gradient Model strategy spec.
func GM(low, high int, interval int64) StrategySpec {
	return StrategySpec{Kind: "gm", Low: low, High: high, Interval: interval}
}

// ACWN returns an adaptive-CWN strategy spec.
func ACWN(radius, horizon, sat int, interval int64) StrategySpec {
	return StrategySpec{Kind: "acwn", Radius: radius, Horizon: horizon, Sat: sat, Interval: interval, Redistribute: true}
}

// Build constructs a fresh strategy via the strategy registry.
func (ss StrategySpec) Build() machine.Strategy {
	return strategyRegistry.build(ss.Kind, ss)
}

func init() {
	RegisterStrategy("cwn", func(ss StrategySpec) machine.Strategy {
		c := core.NewCWN(ss.Radius, ss.Horizon)
		c.StrictMinimum = ss.Strict
		c.FailureAware = ss.FailureAware
		return c
	})
	RegisterStrategy("gm", func(ss StrategySpec) machine.Strategy {
		g := core.NewGradient(ss.Low, ss.High, sim.Time(ss.Interval))
		g.RequireTarget = ss.RequireTarget
		g.ExportNewest = ss.ExportNewest
		g.FailureAware = ss.FailureAware
		return g
	})
	RegisterStrategy("acwn", func(ss StrategySpec) machine.Strategy {
		a := core.NewACWN(ss.Radius, ss.Horizon, ss.Sat, sim.Time(ss.Interval))
		a.Redistribute = ss.Redistribute
		a.StrictMinimum = ss.Strict
		return a
	})
	RegisterStrategy("local", func(StrategySpec) machine.Strategy { return core.NewLocal() })
	RegisterStrategy("randomwalk", func(ss StrategySpec) machine.Strategy { return core.NewRandomWalk(ss.Steps) })
	RegisterStrategy("roundrobin", func(StrategySpec) machine.Strategy { return core.NewRoundRobin() })
	RegisterStrategy("worksteal", func(ss StrategySpec) machine.Strategy {
		w := core.NewWorkSteal(sim.Time(ss.Interval), ss.Threshold)
		w.FailureAware = ss.FailureAware
		return w
	})
	RegisterStrategy("diffusion", func(ss StrategySpec) machine.Strategy { return core.NewDiffusion(sim.Time(ss.Interval)) })
	RegisterStrategy("ideal", func(StrategySpec) machine.Strategy { return core.NewIdeal() })
}

// Label returns the built strategy's display name.
func (ss StrategySpec) Label() string { return ss.Build().Name() }

// ShortLabel returns just the scheme family, for table columns.
func (ss StrategySpec) ShortLabel() string {
	switch ss.Kind {
	case "cwn":
		return "CWN"
	case "gm":
		return "GM"
	case "acwn":
		return "ACWN"
	default:
		return ss.Kind
	}
}

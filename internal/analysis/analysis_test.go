package analysis_test

import (
	"strings"
	"testing"

	"cwnsim/internal/analysis"
	"cwnsim/internal/analysis/analysistest"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand", analysis.Detrand)
}

// TestDetrandIgnoresNonSimPackages proves the path gate: the fixture
// reads the wall clock and the global rand stream but is not
// simulation-path code, so the analyzer must stay silent (the fixture
// has no wants, and the harness fails on any unexpected diagnostic).
func TestDetrandIgnoresNonSimPackages(t *testing.T) {
	analysistest.Run(t, "testdata/src/detrand_nonsim", analysis.Detrand)
}

func TestStatsmerge(t *testing.T) {
	analysistest.Run(t, "testdata/src/statsmerge", analysis.Statsmerge)
}

func TestPoolsafe(t *testing.T) {
	analysistest.Run(t, "testdata/src/poolsafe", analysis.Poolsafe)
}

func TestSeqonly(t *testing.T) {
	analysistest.Run(t, "testdata/src/seqonly", analysis.Seqonly)
}

// TestSuiteCleanOnRepo runs the whole suite over the whole module —
// the same check CI runs through `go vet -vettool` — and requires
// zero findings: the shipped code either satisfies every contract or
// carries a reasoned suppression.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the full module")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole module", len(pkgs))
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestLookup pins the suite roster: cmd/simlint flags and CI reference
// analyzers by these names.
func TestLookup(t *testing.T) {
	for _, name := range []string{"detrand", "statsmerge", "poolsafe", "seqonly"} {
		a := analysis.Lookup(name)
		if a == nil {
			t.Fatalf("Lookup(%q) = nil", name)
		}
		if a.Name != name || a.Doc == "" || a.Run == nil {
			t.Errorf("Lookup(%q) returned incomplete analyzer %+v", name, a)
		}
	}
	if analysis.Lookup("nosuch") != nil {
		t.Error("Lookup of unknown name should be nil")
	}
	if n := len(analysis.All()); n != 4 {
		t.Errorf("All() has %d analyzers, want 4", n)
	}
}

// TestDiagnosticString pins the standalone output format (file:line:col,
// message, analyzer tag) that the vettool mode mirrors to stderr.
func TestDiagnosticString(t *testing.T) {
	pkgs, err := analysis.Load("testdata/src/detrand", ".")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{analysis.Detrand})
	if err != nil {
		t.Fatalf("running detrand: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("expected findings in the detrand fixture")
	}
	s := diags[0].String()
	if !strings.Contains(s, "[detrand]") || !strings.Contains(s, "ambient.go:") {
		t.Errorf("diagnostic string %q missing analyzer tag or position", s)
	}
}

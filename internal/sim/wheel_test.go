package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// driveRandom runs a self-expanding random event cascade on the given
// scheduler and returns the firing log. All randomness flows from one
// seeded source whose draws happen in firing order, so two schedulers
// produce identical logs if and only if they fire events in the same
// order — any ordering divergence derails the cascade immediately.
func driveRandom(kind SchedulerKind, seed int64) []string {
	e := NewEngineSched(1, kind)
	rng := rand.New(rand.NewSource(seed))
	var log []string
	var id int
	var spawn func(depth int)
	spawn = func(depth int) {
		if depth > 3 {
			return
		}
		n := rng.Intn(3) + 1
		for i := 0; i < n; i++ {
			myID := id
			id++
			var delay Time
			switch rng.Intn(6) {
			case 0, 1:
				delay = 0 // same-timestamp FIFO pressure
			case 2:
				delay = Time(rng.Intn(20))
			case 3:
				delay = Time(rng.Intn(int(wheelSpan)))
			case 4:
				delay = wheelSpan + Time(rng.Intn(300)) // overflow tier
			case 5:
				delay = 3*wheelSpan + Time(rng.Intn(2000)) // deep overflow
			}
			ev := e.Schedule(delay, func() {
				log = append(log, fmt.Sprintf("%d@%d", myID, e.Now()))
				spawn(depth + 1)
			})
			// The root burst is never cancelled so every cascade fires.
			if rng.Intn(10) == 0 && depth > 0 {
				ev.Cancel()
			}
		}
	}
	spawn(0)
	e.Run()
	return log
}

// TestSchedulerEquivalence pins the tentpole guarantee: the two-tier
// wheel fires events in exactly the heap's (at, seq) order, across
// same-timestamp ties, wheel wraps, overflow drains and cancellations.
func TestSchedulerEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		heapLog := driveRandom(SchedHeap, seed)
		wheelLog := driveRandom(SchedWheel, seed)
		if len(heapLog) == 0 {
			t.Fatalf("seed %d: empty cascade", seed)
		}
		if !reflect.DeepEqual(heapLog, wheelLog) {
			for i := range heapLog {
				if i >= len(wheelLog) || heapLog[i] != wheelLog[i] {
					t.Fatalf("seed %d: firing order diverges at %d: heap %q vs wheel %q",
						seed, i, heapLog[i], wheelLog[i])
				}
			}
			t.Fatalf("seed %d: wheel log longer than heap log (%d vs %d)", seed, len(wheelLog), len(heapLog))
		}
	}
}

// TestWheelSameTimestampFIFOAcrossWrap schedules bursts at the same
// timestamp several full wheel revolutions apart: within each burst the
// firing order must be scheduling order (seq FIFO), including for the
// timestamps that reuse slots already wrapped past.
func TestWheelSameTimestampFIFOAcrossWrap(t *testing.T) {
	e := NewEngineSched(1, SchedWheel)
	var fired []int
	id := 0
	for rev := 0; rev < 3; rev++ {
		at := Time(rev) * (wheelSpan + 7) // same slot family, different revolutions
		for i := 0; i < 4; i++ {
			myID := id
			id++
			e.At(at, func() { fired = append(fired, myID) })
		}
	}
	e.Run()
	want := make([]int, id)
	for i := range want {
		want[i] = i
	}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("firing order %v, want strict scheduling order %v", fired, want)
	}
}

// TestWheelHeapToWheelDrainOrder pins the drain invariant: an event
// that waited in the overflow heap must fire before a same-timestamp
// event pushed directly into the wheel later (larger seq), because the
// drain lands it in the slot first.
func TestWheelHeapToWheelDrainOrder(t *testing.T) {
	e := NewEngineSched(1, SchedWheel)
	target := 2*wheelSpan + 13
	var fired []string
	// Scheduled at t=0: beyond the window, so it parks in the overflow.
	e.At(target, func() { fired = append(fired, "early-seq") })
	// An intermediate event schedules the same timestamp once the target
	// is inside the window (the overflow has drained by then).
	e.At(target-10, func() {
		e.At(target, func() { fired = append(fired, "late-seq") })
	})
	e.Run()
	want := []string{"early-seq", "late-seq"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("drain order %v, want %v", fired, want)
	}
}

// TestWheelTimerStopRecycle exercises cancel-then-recycle safety on
// both tiers: a Timer stopped while chained in a wheel slot and while
// parked in the overflow heap must disarm cleanly and re-arm its one
// embedded Event without disturbing other events.
func TestWheelTimerStopRecycle(t *testing.T) {
	e := NewEngineSched(1, SchedWheel)
	var fired []string
	tm := NewTimer(e, func() { fired = append(fired, fmt.Sprintf("timer@%d", e.Now())) })

	// Stop while in a wheel slot.
	tm.Schedule(5)
	if !tm.Stop() {
		t.Fatal("Stop on a wheel-chained timer reported no pending firing")
	}
	if tm.Armed() {
		t.Fatal("timer still armed after Stop")
	}
	// Stop while in the overflow heap.
	tm.Schedule(wheelSpan + 100)
	if !tm.Stop() {
		t.Fatal("Stop on an overflow timer reported no pending firing")
	}
	// Re-arm between two neighbors at the same timestamp: FIFO by seq
	// puts the re-armed timer after a, before b.
	e.At(50, func() { fired = append(fired, "a") })
	tm.At(50)
	e.At(50, func() { fired = append(fired, "b") })
	e.Run()
	want := []string{"a", "timer@50", "b"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if got := e.Pending(); got != 0 {
		t.Fatalf("%d events pending after Run", got)
	}
}

// TestWheelRunUntilTruthful mirrors the engine contract tests on the
// wheel: RunUntil reports whether live events remain pending, and the
// clock lands on the deadline when it stops short of them.
func TestWheelRunUntilTruthful(t *testing.T) {
	e := NewEngineSched(1, SchedWheel)
	var fired int
	e.At(10, func() { fired++ })
	e.At(3*wheelSpan, func() { fired++ })
	if !e.RunUntil(100) {
		t.Fatal("RunUntil(100) = false with an overflow event pending")
	}
	if fired != 1 || e.Now() != 100 {
		t.Fatalf("after RunUntil(100): fired=%d now=%d, want 1 fired at now=100", fired, e.Now())
	}
	if e.RunUntil(4 * wheelSpan) {
		t.Fatal("RunUntil past the last event = true")
	}
	if fired != 2 || e.Now() != 4*wheelSpan {
		t.Fatalf("after final RunUntil: fired=%d now=%d", fired, e.Now())
	}
	// A cancelled far-future event is not "live pending".
	ev := e.At(8*wheelSpan, func() { fired++ })
	ev.Cancel()
	if e.RunUntil(5 * wheelSpan) {
		t.Fatal("RunUntil = true with only a cancelled event pending")
	}
}

// TestWheelRewindAfterRunUntil covers the cold push-behind-the-cursor
// path: RunUntil leaves the wheel's cursor parked on a far-future
// event's timestamp; scheduling into the gap must rewind the window
// (evicting chained events the narrower horizon cannot cover) and
// preserve global ordering.
func TestWheelRewindAfterRunUntil(t *testing.T) {
	e := NewEngineSched(1, SchedWheel)
	var fired []string
	// A lands beyond the initial window (overflow), B even further.
	e.At(3000, func() { fired = append(fired, "A") })
	e.At(3000+wheelSpan-1, func() { fired = append(fired, "B") })
	// The peek inside RunUntil advances the cursor to t=3000 and drains
	// both events into the wheel.
	if !e.RunUntil(10) {
		t.Fatal("RunUntil(10) = false with events pending")
	}
	// Pushing at t=100 < cursor rewinds the window to [100, 100+span);
	// A and B now lie beyond it and must be evicted back to the
	// overflow, then drain again in order as time advances.
	e.At(100, func() { fired = append(fired, "C") })
	e.Run()
	want := []string{"C", "A", "B"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestWheelPendingCount checks size accounting across both tiers and
// through drains.
func TestWheelPendingCount(t *testing.T) {
	e := NewEngineSched(1, SchedWheel)
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	for i := 0; i < 5; i++ {
		e.At(2*wheelSpan+Time(i), func() {})
	}
	if got := e.Pending(); got != 10 {
		t.Fatalf("Pending = %d, want 10", got)
	}
	e.RunUntil(wheelSpan)
	if got := e.Pending(); got != 5 {
		t.Fatalf("Pending after near tier = %d, want 5", got)
	}
	e.Run()
	if got := e.Pending(); got != 0 {
		t.Fatalf("Pending after Run = %d, want 0", got)
	}
}

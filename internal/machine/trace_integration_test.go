package machine_test

import (
	"testing"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/trace"
	"cwnsim/internal/workload"
)

// TestTraceLifecycleInvariants replays a CWN run through the trace
// collector and checks the goal lifecycle event-by-event: every goal is
// created once, executed once, its events are causally ordered, and its
// recorded walk length equals the hop histogram's entry.
func TestTraceLifecycleInvariants(t *testing.T) {
	tree := workload.NewFib(10)
	var col trace.Collector
	cfg := machine.DefaultConfig()
	cfg.Trace = &col
	st := machine.New(topology.NewGrid(4, 4), tree, core.NewCWN(4, 1), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}

	goals := tree.Count()
	if got := col.Count(trace.GoalCreated); got != goals {
		t.Errorf("GoalCreated = %d, want %d", got, goals)
	}
	if got := col.Count(trace.GoalExecuted); got != goals {
		t.Errorf("GoalExecuted = %d, want %d", got, goals)
	}
	// Under CWN a goal is accepted exactly once (no re-distribution).
	if got := col.Count(trace.GoalAccepted); got != goals {
		t.Errorf("GoalAccepted = %d, want %d", got, goals)
	}
	if got := col.Count(trace.RespSent); got != goals-1 {
		t.Errorf("RespSent = %d, want %d", got, goals-1)
	}
	if got := col.Count(trace.RespDelivered); got != goals-1 {
		t.Errorf("RespDelivered = %d, want %d", got, goals-1)
	}

	for id := int64(0); id < int64(goals); id++ {
		evs := col.ByGoal(id)
		var created, accepted, executed, sent int
		var lastAt int64 = -1
		for _, ev := range evs {
			if int64(ev.At) < lastAt {
				t.Fatalf("goal %d: events out of time order", id)
			}
			lastAt = int64(ev.At)
			switch ev.Kind {
			case trace.GoalCreated:
				created++
				if accepted+executed+sent > 0 {
					t.Fatalf("goal %d: created after other events", id)
				}
			case trace.GoalSent:
				sent++
				if executed > 0 {
					t.Fatalf("goal %d: sent after execution", id)
				}
			case trace.GoalAccepted:
				accepted++
			case trace.GoalExecuted:
				executed++
			}
		}
		if created != 1 || executed != 1 {
			t.Fatalf("goal %d: created %d times, executed %d times", id, created, executed)
		}
		if sent > 4 {
			t.Fatalf("goal %d: %d hops exceeds radius 4", id, sent)
		}
	}
}

// TestTraceWalkMatchesHistogram cross-checks the trace against the
// aggregate statistics: per-goal GoalSent counts must reproduce the hop
// histogram exactly.
func TestTraceWalkMatchesHistogram(t *testing.T) {
	tree := workload.NewFib(9)
	var col trace.Collector
	cfg := machine.DefaultConfig()
	cfg.Trace = &col
	st := machine.New(topology.NewGrid(3, 3), tree, core.NewCWN(3, 1), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	hopCount := map[int64]int{}
	for _, ev := range col.ByKind(trace.GoalSent) {
		hopCount[ev.Goal]++
	}
	hist := map[int]int64{}
	for id := int64(0); id < int64(tree.Count()); id++ {
		hist[hopCount[id]]++
	}
	for hops, n := range hist {
		if got := st.GoalHops.Count(hops); got != n {
			t.Errorf("hop %d: histogram %d, trace %d", hops, got, n)
		}
	}
}

// TestTraceGMReExport verifies that under the Gradient Model some goals
// are accepted more than once (export re-places a queued goal), which
// the statistics layer must not double-count.
func TestTraceGMReExport(t *testing.T) {
	tree := workload.NewFib(12)
	var col trace.Collector
	cfg := machine.DefaultConfig()
	cfg.Trace = &col
	st := machine.New(topology.NewGrid(3, 3), tree, core.NewGradient(1, 2, 20), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	if col.Count(trace.GoalAccepted) <= tree.Count() {
		t.Error("expected re-acceptances under GM export")
	}
	if st.GoalHops.Total() != int64(tree.Count()) {
		t.Errorf("hop histogram total %d, want %d (exactly once per goal)", st.GoalHops.Total(), tree.Count())
	}
	if got := col.Count(trace.GoalExecuted); got != tree.Count() {
		t.Errorf("GoalExecuted = %d, want %d", got, tree.Count())
	}
}

// TestMonitorFramesIntegration runs with the per-PE monitor enabled and
// validates the frames, including the paper's rise-time contrast: early
// in the run CWN has spread work to more PEs than GM.
func TestMonitorFramesIntegration(t *testing.T) {
	tree := workload.NewFib(13)
	run := func(strat machine.Strategy) *machine.Stats {
		cfg := machine.DefaultConfig()
		cfg.SampleInterval = 50
		cfg.MonitorPE = true
		st := machine.New(topology.NewGrid(5, 5), tree, strat, cfg).Run()
		if !st.Completed {
			t.Fatal("incomplete")
		}
		return st
	}
	cwn := run(core.PaperCWNGrid())
	gm := run(core.PaperGMGrid())

	for _, st := range []*machine.Stats{cwn, gm} {
		if st.Monitor.Len() < 2 {
			t.Fatalf("monitor has %d frames", st.Monitor.Len())
		}
		for _, f := range st.Monitor.Frames {
			if len(f.Util) != 25 {
				t.Fatalf("frame has %d PEs", len(f.Util))
			}
			for pe, u := range f.Util {
				if u < 0 || u > 1.0001 {
					t.Fatalf("frame t=%d PE %d utilization %f out of [0,1]", f.At, pe, u)
				}
			}
		}
	}
	// Rise-time: by the 4th sample (t=200) CWN must have activated at
	// least as many PEs as GM — the paper's "much faster rise-time".
	frame := 3
	if cwn.Monitor.Len() <= frame || gm.Monitor.Len() <= frame {
		t.Skip("run too short to compare rise-time")
	}
	if cwn.Monitor.ActivePEs(frame) < gm.Monitor.ActivePEs(frame) {
		t.Errorf("at frame %d CWN activated %d PEs < GM %d — rise-time inverted",
			frame, cwn.Monitor.ActivePEs(frame), gm.Monitor.ActivePEs(frame))
	}
}

// TestMonitorDisabledByDefault ensures no frames accumulate without the
// opt-in.
func TestMonitorDisabledByDefault(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.SampleInterval = 50
	st := machine.New(topology.NewGrid(3, 3), workload.NewFib(8), core.NewCWN(3, 1), cfg).Run()
	if st.Monitor.Len() != 0 {
		t.Errorf("monitor collected %d frames without MonitorPE", st.Monitor.Len())
	}
}

package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
)

// RunSpec is one complete simulation specification.
type RunSpec struct {
	Label          string       `json:"label,omitempty"`
	Topo           TopoSpec     `json:"topo"`
	Workload       WorkloadSpec `json:"workload"`
	Strategy       StrategySpec `json:"strategy"`
	Seed           int64        `json:"seed,omitempty"`           // default 1
	SampleInterval int64        `json:"sampleInterval,omitempty"` // time-series sampling; 0 = off
	MonitorPE      bool         `json:"monitorPE,omitempty"`      // per-PE frames (needs SampleInterval)
	LoadMetric     string       `json:"loadMetric,omitempty"`     // "", "queue", "queue+pending"
	GoalHopTime    int64        `json:"goalHopTime,omitempty"`    // override; 0 = default
	RespHopTime    int64        `json:"respHopTime,omitempty"`
}

// Name returns a human-readable run identifier.
func (rs RunSpec) Name() string {
	if rs.Label != "" {
		return rs.Label
	}
	return fmt.Sprintf("%s | %s | %s", rs.Strategy.Label(), rs.Topo.Label(), rs.Workload.Label())
}

// Config materializes the machine configuration for this run.
func (rs RunSpec) Config() machine.Config {
	cfg := machine.DefaultConfig()
	if rs.Seed != 0 {
		cfg.Seed = rs.Seed
	}
	cfg.SampleInterval = sim.Time(rs.SampleInterval)
	cfg.MonitorPE = rs.MonitorPE
	if rs.LoadMetric == "queue+pending" {
		cfg.LoadMetric = machine.LoadQueuePlusPending
	}
	if rs.GoalHopTime > 0 {
		cfg.GoalHopTime = sim.Time(rs.GoalHopTime)
	}
	if rs.RespHopTime > 0 {
		cfg.RespHopTime = sim.Time(rs.RespHopTime)
	}
	return cfg
}

// Result is the outcome of one run.
type Result struct {
	Spec     RunSpec
	Stats    *machine.Stats
	Goals    int
	Util     float64 // percent, the paper's y-axis
	Speedup  float64
	Bound    float64 // min(P, T1/T∞): the workload's speedup ceiling
	Balance  float64 // Jain index over per-PE busy time
	AvgHops  float64
	Makespan sim.Time
	Wall     time.Duration
}

// OfBound returns the measured speedup as a fraction of the workload's
// parallelism ceiling on this machine size.
func (r *Result) OfBound() float64 {
	if r.Bound == 0 {
		return 0
	}
	return r.Speedup / r.Bound
}

// Execute builds and runs the specified simulation synchronously.
func (rs RunSpec) Execute() *Result {
	topo := rs.Topo.Build()
	tree := rs.Workload.Build()
	strat := rs.Strategy.Build()
	cfg := rs.Config()
	start := time.Now()
	st := machine.New(topo, tree, strat, cfg).Run()
	if !st.Completed {
		panic(fmt.Sprintf("experiments: run %q aborted at MaxTime — a goal was lost or the machine is misconfigured", rs.Name()))
	}
	bound := tree.MaxSpeedup(int64(cfg.GrainTime), int64(cfg.CombineTime))
	if p := float64(topo.Size()); bound > p {
		bound = p
	}
	return &Result{
		Spec:     rs,
		Stats:    st,
		Goals:    tree.Count(),
		Util:     st.UtilizationPercent(),
		Speedup:  st.Speedup(),
		Bound:    bound,
		Balance:  st.BalanceIndex(),
		AvgHops:  st.AvgGoalHops(),
		Makespan: st.Makespan,
		Wall:     time.Since(start),
	}
}

// RunAll executes specs concurrently on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns results in spec order.
// Each simulation is single-threaded and independent; parallelism across
// runs is free determinism-wise.
func RunAll(specs []RunSpec, workers int) []*Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*Result, len(specs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = specs[i].Execute()
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

package workload_test

import (
	"fmt"

	"cwnsim/internal/workload"
)

// The paper's two programs, sized so both generate identical goal
// counts (the dc sizes are Fibonacci numbers).
func Example() {
	fib := workload.NewFib(11)
	dc := workload.NewDC(1, 144)
	fmt.Println(fib, "value", fib.Eval())
	fmt.Println(dc, "value", dc.Eval())
	// Output:
	// fib(11) (287 goals, depth 10) value 89
	// dc(1,144) (287 goals, depth 8) value 10440
}

func ExampleTree_MaxSpeedup() {
	// The work/span bound: dc's balanced tree has far more parallelism
	// than fib's skewed one at equal goal count.
	fib := workload.NewFib(15)
	dc := workload.NewDC(1, 987)
	fmt.Printf("fib(15): T1=%d Tinf=%d bound=%.0f\n",
		fib.SequentialTime(10, 5), fib.CriticalPath(10, 5), fib.MaxSpeedup(10, 5))
	fmt.Printf("dc(1,987): T1=%d Tinf=%d bound=%.0f\n",
		dc.SequentialTime(10, 5), dc.CriticalPath(10, 5), dc.MaxSpeedup(10, 5))
	// Output:
	// fib(15): T1=29590 Tinf=220 bound=134
	// dc(1,987): T1=29590 Tinf=160 bound=185
}

func ExampleTree_Walk() {
	tr := workload.NewDC(1, 4)
	tr.Walk(func(t *workload.Task) {
		if t.IsLeaf() {
			fmt.Printf("leaf %d value %d\n", t.ID, t.Value)
		}
	})
	// Output:
	// leaf 2 value 1
	// leaf 3 value 2
	// leaf 5 value 3
	// leaf 6 value 4
}

package topology

import "fmt"

// NewTorus3D returns an x×y×z wraparound mesh: the natural next step
// for the paper's "how do the schemes behave when the size of the
// system changes" question, with diameter ⌊x/2⌋+⌊y/2⌋+⌊z/2⌋ — much
// smaller than a 2-D torus of equal size. PE (i,j,k) has ID
// (i*y + j)*z + k.
func NewTorus3D(x, y, z int) *Topology {
	if x <= 0 || y <= 0 || z <= 0 {
		panic("topology: torus3d dimensions must be positive")
	}
	id := func(i, j, k int) int { return (i*y+j)*z + k }
	var chans []Channel
	link := func(a, b int) {
		if a != b { // dimension of size 1 yields self-loops; skip
			chans = append(chans, Channel{Members: []int{a, b}})
		}
	}
	addDim := func(n int, at func(w int) int) {
		for w := 0; w < n-1; w++ {
			link(at(w), at(w+1))
		}
		if n > 2 {
			link(at(n-1), at(0))
		}
	}
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			addDim(z, func(w int) int { return id(i, j, w) })
		}
	}
	for i := 0; i < x; i++ {
		for k := 0; k < z; k++ {
			addDim(y, func(w int) int { return id(i, w, k) })
		}
	}
	for j := 0; j < y; j++ {
		for k := 0; k < z; k++ {
			addDim(x, func(w int) int { return id(w, j, k) })
		}
	}
	return build(fmt.Sprintf("torus3d-%dx%dx%d", x, y, z), x*y*z, chans)
}

// NewChordalRing returns a ring of n PEs augmented with chords of the
// given stride (each PE also links to the PE `chord` positions ahead) —
// a classic 1980s degree-4 network with diameter O(n/chord + chord).
func NewChordalRing(n, chord int) *Topology {
	if n < 3 {
		panic("topology: chordal ring needs at least 3 PEs")
	}
	if chord < 2 || chord > n/2 {
		panic("topology: chord must be in [2, n/2]")
	}
	var chans []Channel
	seen := map[pairKey]bool{}
	link := func(a, b int) {
		if a > b {
			a, b = b, a
		}
		k := pairKey{a, b}
		if a == b || seen[k] {
			return
		}
		seen[k] = true
		chans = append(chans, Channel{Members: []int{a, b}})
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
		link(i, (i+chord)%n)
	}
	return build(fmt.Sprintf("chordal-%d-c%d", n, chord), n, chans)
}

package topology

import (
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// all returns a representative pool of topologies exercised by the
// generic invariant tests.
func pool() []*Topology {
	return []*Topology{
		NewGrid(5, 5),
		NewGrid(8, 8),
		NewGrid(3, 7),
		NewTorus(5, 5),
		NewTorus(10, 10),
		NewTorus(2, 2),
		NewTorus(1, 4),
		NewDLM(5, 5, 5),
		NewDLM(10, 10, 5),
		NewDLM(8, 8, 4),
		NewHypercube(0),
		NewHypercube(3),
		NewHypercube(5),
		NewRing(9),
		NewComplete(6),
		NewSingle(),
		NewStar(7),
		NewTree(2, 4),
		NewBusGlobal(8),
		NewTorus3D(3, 3, 3),
		NewTorus3D(2, 3, 4),
		NewChordalRing(14, 4),
	}
}

func TestSizes(t *testing.T) {
	cases := []struct {
		topo *Topology
		want int
	}{
		{NewGrid(5, 5), 25},
		{NewGrid(20, 20), 400},
		{NewDLM(10, 10, 5), 100},
		{NewHypercube(7), 128},
		{NewRing(11), 11},
		{NewComplete(9), 9},
		{NewSingle(), 1},
		{NewStar(5), 5},
		{NewTree(2, 4), 15},
		{NewTree(3, 3), 13},
	}
	for _, c := range cases {
		if got := c.topo.Size(); got != c.want {
			t.Errorf("%s: Size = %d, want %d", c.topo.Name(), got, c.want)
		}
	}
}

func TestDiameters(t *testing.T) {
	cases := []struct {
		topo *Topology
		want int
	}{
		// Non-wrap grids: 2(n-1). The paper quotes grid diameters
		// "8 to 38" for sides 5..20 — exactly these values.
		{NewGrid(5, 5), 8},
		{NewGrid(8, 8), 14},
		{NewGrid(10, 10), 18},
		{NewGrid(16, 16), 30},
		{NewGrid(20, 20), 38},
		// Tori: floor(r/2)+floor(c/2).
		{NewTorus(5, 5), 4},
		{NewTorus(10, 10), 10},
		{NewTorus(20, 20), 20},
		// Hypercubes: dimension.
		{NewHypercube(3), 3},
		{NewHypercube(5), 5},
		{NewHypercube(7), 7},
		// Others.
		{NewRing(10), 5},
		{NewRing(11), 5},
		{NewComplete(8), 1},
		{NewStar(6), 2},
		{NewSingle(), 0},
		{NewBusGlobal(5), 1},
	}
	for _, c := range cases {
		if got := c.topo.Diameter(); got != c.want {
			t.Errorf("%s: Diameter = %d, want %d", c.topo.Name(), got, c.want)
		}
	}
}

func TestDLMDiametersSmall(t *testing.T) {
	// The paper: "The DLM topologies have smaller diameters (4-5)
	// compared to the grids (ranges from 8 to 38)."
	cases := []struct {
		rows, span int
		max        int
	}{
		{5, 5, 2},
		{8, 4, 4},
		{10, 5, 4},
		{16, 4, 8},
		{20, 5, 8},
	}
	for _, c := range cases {
		topo := NewDLM(c.rows, c.rows, c.span)
		if d := topo.Diameter(); d > c.max {
			t.Errorf("%s: diameter %d exceeds expected bound %d", topo.Name(), d, c.max)
		}
	}
}

func TestGridNeighbors(t *testing.T) {
	g := NewGrid(3, 3)
	// Corner PE 0 has 2 neighbors, edge PE 1 has 3, center PE 4 has 4.
	if n := g.Neighbors(0); len(n) != 2 {
		t.Errorf("corner neighbors = %v", n)
	}
	if n := g.Neighbors(1); len(n) != 3 {
		t.Errorf("edge neighbors = %v", n)
	}
	if n := g.Neighbors(4); len(n) != 4 {
		t.Errorf("center neighbors = %v", n)
	}
	tor := NewTorus(4, 4)
	for pe := 0; pe < 16; pe++ {
		if n := tor.Neighbors(pe); len(n) != 4 {
			t.Errorf("torus PE %d has %d neighbors, want 4", pe, len(n))
		}
	}
}

func TestHypercubeStructure(t *testing.T) {
	h := NewHypercube(5)
	for pe := 0; pe < h.Size(); pe++ {
		nbrs := h.Neighbors(pe)
		if len(nbrs) != 5 {
			t.Fatalf("PE %d degree %d, want 5", pe, len(nbrs))
		}
		for _, nb := range nbrs {
			if bits.OnesCount(uint(pe^nb)) != 1 {
				t.Fatalf("PE %d adjacent to %d: differ in >1 bit", pe, nb)
			}
		}
	}
	// Distance on a hypercube is Hamming distance.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(32), rng.Intn(32)
		want := bits.OnesCount(uint(a ^ b))
		if got := h.Dist(a, b); got != want {
			t.Fatalf("Dist(%d,%d) = %d, want Hamming %d", a, b, got, want)
		}
	}
}

func TestDLMStructure(t *testing.T) {
	topo := NewDLM(10, 10, 5)
	// Every PE sits on exactly 4 buses: two horizontal, two vertical.
	for pe := 0; pe < topo.Size(); pe++ {
		if got := len(topo.ChannelsOf(pe)); got != 4 {
			t.Fatalf("PE %d on %d buses, want 4", pe, got)
		}
	}
	// Every bus has span members.
	for _, ch := range topo.Channels() {
		if len(ch.Members) != 5 {
			t.Fatalf("bus %d has %d members, want 5", ch.ID, len(ch.Members))
		}
	}
	// Bus count: 2 lattices × (10 rows × 2 buses + 10 cols × 2 buses).
	if got := len(topo.Channels()); got != 80 {
		t.Fatalf("bus count = %d, want 80", got)
	}
	// Neighbor count bounded by 4·(span-1).
	for pe := 0; pe < topo.Size(); pe++ {
		if got := len(topo.Neighbors(pe)); got > 16 || got < 4 {
			t.Fatalf("PE %d has %d neighbors, want 4..16", pe, got)
		}
	}
}

func TestNeighborSymmetryAndChannels(t *testing.T) {
	for _, topo := range pool() {
		for a := 0; a < topo.Size(); a++ {
			for _, b := range topo.Neighbors(a) {
				found := false
				for _, x := range topo.Neighbors(b) {
					if x == a {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: %d->%d neighbor not symmetric", topo.Name(), a, b)
				}
				chs := topo.ChannelsBetween(a, b)
				if len(chs) == 0 {
					t.Fatalf("%s: neighbors %d,%d share no channel", topo.Name(), a, b)
				}
				for _, ci := range chs {
					ch := topo.Channels()[ci]
					hasA, hasB := false, false
					for _, m := range ch.Members {
						hasA = hasA || m == a
						hasB = hasB || m == b
					}
					if !hasA || !hasB {
						t.Fatalf("%s: channel %d claimed between %d,%d but members %v", topo.Name(), ci, a, b, ch.Members)
					}
				}
			}
		}
	}
}

func TestDistanceInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, topo := range pool() {
		n := topo.Size()
		for i := 0; i < 100; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			dab, dba := topo.Dist(a, b), topo.Dist(b, a)
			if dab != dba {
				t.Fatalf("%s: Dist(%d,%d)=%d != Dist(%d,%d)=%d", topo.Name(), a, b, dab, b, a, dba)
			}
			if (a == b) != (dab == 0) {
				t.Fatalf("%s: Dist(%d,%d)=%d", topo.Name(), a, b, dab)
			}
			if dab > topo.Diameter() {
				t.Fatalf("%s: Dist(%d,%d)=%d exceeds diameter %d", topo.Name(), a, b, dab, topo.Diameter())
			}
		}
	}
}

func TestNextHopDecreasesDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, topo := range pool() {
		n := topo.Size()
		for i := 0; i < 200; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				if topo.NextHop(a, b) != a {
					t.Fatalf("%s: NextHop(%d,%d) != %d", topo.Name(), a, b, a)
				}
				continue
			}
			// Walk the full route; it must take exactly Dist(a,b) hops.
			steps, cur := 0, a
			for cur != b {
				nxt := topo.NextHop(cur, b)
				if topo.Dist(nxt, b) != topo.Dist(cur, b)-1 {
					t.Fatalf("%s: NextHop(%d,%d)=%d does not decrease distance", topo.Name(), cur, b, nxt)
				}
				cur = nxt
				steps++
				if steps > n {
					t.Fatalf("%s: routing loop %d->%d", topo.Name(), a, b)
				}
			}
			if steps != topo.Dist(a, b) {
				t.Fatalf("%s: route %d->%d took %d hops, Dist=%d", topo.Name(), a, b, steps, topo.Dist(a, b))
			}
		}
	}
}

func TestQuickTorusDistanceFormula(t *testing.T) {
	topo := NewTorus(8, 8)
	f := func(a, b uint8) bool {
		pa, pb := int(a)%64, int(b)%64
		ra, ca := pa/8, pa%8
		rb, cb := pb/8, pb%8
		dr := abs(ra - rb)
		if dr > 4 {
			dr = 8 - dr
		}
		dc := abs(ca - cb)
		if dc > 4 {
			dc = 8 - dc
		}
		return topo.Dist(pa, pb) == dr+dc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGridDistanceFormula(t *testing.T) {
	topo := NewGrid(7, 9)
	f := func(a, b uint8) bool {
		pa, pb := int(a)%63, int(b)%63
		ra, ca := pa/9, pa%9
		rb, cb := pb/9, pb%9
		return topo.Dist(pa, pb) == abs(ra-rb)+abs(ca-cb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestDegreeStats(t *testing.T) {
	g := NewGrid(3, 3)
	if g.MaxDegree() != 4 {
		t.Errorf("grid MaxDegree = %d, want 4", g.MaxDegree())
	}
	if avg := g.AvgDegree(); avg < 2.6 || avg > 2.7 {
		t.Errorf("grid AvgDegree = %f, want 24/9", avg)
	}
	c := NewComplete(5)
	if c.MaxDegree() != 4 {
		t.Errorf("complete MaxDegree = %d, want 4", c.MaxDegree())
	}
}

func TestStringer(t *testing.T) {
	s := NewGrid(5, 5).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewGrid(0, 5) },
		func() { NewDLM(10, 10, 3) }, // 10 % 3 != 0
		func() { NewDLM(10, 10, 1) }, // span < 2
		func() { NewHypercube(-1) },
		func() { NewRing(2) },
		func() { NewComplete(0) },
		func() { NewStar(1) },
		func() { NewTree(1, 3) },
		func() { NewTree(2, 1) },
		func() { NewBusGlobal(1) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestRoutingConcurrentInit(t *testing.T) {
	// ensureRouting must be safe under concurrent first use.
	topo := NewGrid(12, 12)
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			_ = topo.Diameter()
			_ = topo.NextHop(0, topo.Size()-1)
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func BenchmarkBFSRouting400(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := NewGrid(20, 20)
		_ = topo.Diameter()
	}
}

package sim

// Ticker fires a callback at a fixed virtual-time period. It models the
// paper's periodic asynchronous processes: the Gradient Model's per-PE
// "gradient process" and the load-information broadcast in CWN.
//
// The first firing happens at phase (an offset into the first period) so
// that the PEs' periodic processes are not artificially synchronized — on
// real hardware they would drift; the machine staggers phases from the
// run's seeded streams.
//
// Internally a Ticker re-arms one Timer, so steady-state ticking
// allocates no events: construction costs two small objects (one when
// the Ticker lives in a caller-owned block; see Init), firings cost
// zero.
type Ticker struct {
	timer   Timer
	period  Time
	fn      func()
	stopped bool
	firings uint64
}

// NewTicker schedules fn every period units, first at now+phase.
// period must be positive; phase must be non-negative.
func NewTicker(eng *Engine, period, phase Time, fn func()) *Ticker {
	t := &Ticker{}
	t.Init(eng, period, phase, fn)
	return t
}

// Init readies a zero Ticker in place and schedules its first firing —
// the allocation-free form of NewTicker for tickers embedded in a
// caller-owned block (a million-PE machine holds one contiguous array
// of load tickers, not a million two-object ticker graphs). The Ticker
// must not be copied after Init: its embedded Timer's event points back
// at it.
func (t *Ticker) Init(eng *Engine, period, phase Time, fn func()) {
	if period <= 0 {
		panic("sim: NewTicker with non-positive period")
	}
	if phase < 0 {
		panic("sim: NewTicker with negative phase")
	}
	t.period = period
	t.fn = fn
	t.stopped = false
	t.firings = 0
	t.timer.Init(eng, t.fire)
	t.timer.Schedule(phase)
}

func (t *Ticker) fire() {
	if t.stopped {
		return
	}
	t.firings++
	t.fn()
	if !t.stopped { // fn may have stopped us
		t.timer.Schedule(t.period)
	}
}

// Stop cancels future firings.
func (t *Ticker) Stop() {
	t.stopped = true
	t.timer.Stop()
}

// Firings returns how many times the ticker has fired.
func (t *Ticker) Firings() uint64 { return t.firings }

// Period returns the ticker period.
func (t *Ticker) Period() Time { return t.period }

package topology

import "fmt"

// Partition divides the PE index space into contiguous blocks — the
// spatial shards of a parallel simulation. Block s owns the half-open
// index range [Starts[s], Starts[s+1]); blocks differ in size by at
// most one PE. Contiguity is deliberate: the New* constructors number
// PEs so that index-adjacent PEs are topology-adjacent (row-major
// grids, Gray-coded hypercubes' low bits, ring order), so contiguous
// blocks cut few channels and the cross-shard traffic the conservative
// synchronization protocol must queue stays small.
type Partition struct {
	topo *Topology

	// Shards is the block count (1 <= Shards <= Size).
	Shards int
	// Assign maps each PE to its owning shard, non-decreasing.
	Assign []int
	// Starts[s] is the first PE of shard s; Starts[Shards] == Size.
	Starts []int
	// Cross lists the IDs of channels whose members live on more than
	// one shard, ascending. Empty iff Shards == 1.
	Cross []int
}

// Partition splits the topology into the given number of contiguous
// shards. shards must be in [1, Size]; callers scaling a shard count to
// small machines should clamp before calling.
func (t *Topology) Partition(shards int) Partition {
	if shards < 1 || shards > t.n {
		panic(fmt.Sprintf("topology %s: Partition(%d) outside [1,%d]", t.name, shards, t.n))
	}
	p := Partition{
		topo:   t,
		Shards: shards,
		Assign: make([]int, t.n),
		Starts: make([]int, shards+1),
	}
	for i := range p.Assign {
		// Floor division spreads the remainder over the leading shards;
		// every shard is non-empty because shards <= n.
		p.Assign[i] = i * shards / t.n
	}
	p.Starts[shards] = t.n
	for i := t.n - 1; i >= 0; i-- {
		p.Starts[p.Assign[i]] = i
	}
	// Scan channels in ascending ID order on either form — the Cross
	// list comes out identical for a materialized and an implicit build
	// of the same network (pinned by TestImplicitMatchesMaterialized).
	if t.impl == implNone {
		for ci := range t.channels {
			members := t.channels[ci].Members
			first := p.Assign[members[0]]
			for _, pe := range members[1:] {
				if p.Assign[pe] != first {
					p.Cross = append(p.Cross, ci)
					break
				}
			}
		}
	} else {
		var buf [2]int
		nc := t.NumChannels()
		for ci := 0; ci < nc; ci++ {
			members := t.appendImplChanMembers(buf[:0], ci)
			if p.Assign[members[0]] != p.Assign[members[1]] {
				p.Cross = append(p.Cross, ci)
			}
		}
	}
	return p
}

// Owner returns the shard owning PE pe.
func (p *Partition) Owner(pe int) int { return p.Assign[pe] }

// Size returns the number of PEs shard s owns.
func (p *Partition) Size(s int) int { return p.Starts[s+1] - p.Starts[s] }

// MinCrossLatency returns the smallest wire latency over the cross-shard
// channels, with lat giving each channel's latency (the minimum over
// message kinds the simulation can put on it). This is the conservative
// lookahead bound: a message sent on a cross-shard channel at time t
// cannot be delivered before t + MinCrossLatency, so shards simulated
// in lockstep windows of at most this width never receive a message
// for their own past. ok is false when no channel crosses a shard
// boundary (single-shard partitions) — lookahead is then unbounded.
func (p *Partition) MinCrossLatency(lat func(Channel) int64) (min int64, ok bool) {
	for _, ci := range p.Cross {
		// ChannelAt works on both forms; the Cross set is small, so the
		// implicit form's per-call Members allocation is fine here.
		l := lat(p.topo.ChannelAt(ci))
		if l <= 0 {
			panic(fmt.Sprintf("topology %s: channel %d has non-positive latency %d", p.topo.name, ci, l))
		}
		if !ok || l < min {
			min, ok = l, true
		}
	}
	return min, ok
}

// Package sim implements the deterministic discrete-event simulation
// engine underneath the multiprocessor model — the Go analogue of the
// kernel of ORACLE, the SIMSCRIPT simulator the paper's experiments were
// run on.
//
// The engine maintains a virtual clock and a pending-event set ordered by
// (time, insertion sequence). Resources such as processing elements and
// communication channels are modelled by the machine package as state
// machines that schedule their own continuation events.
//
// # Determinism
//
// A run is a pure function of its seed: two events at the same virtual
// time fire in the order they were scheduled, and every stochastic choice
// inside the simulated system draws from the engine's single seeded
// generator (Rng). Streams that merely feed or observe the system — job
// arrival processes, utilization samplers — draw from their own salted
// generators derived from the same seed, so turning a workload stream or
// a monitor on or off never perturbs the system's tie-break draws.
//
// # Schedulers
//
// The pending-event set is selectable (NewEngineSched, SchedulerKind);
// both implementations fire events in identical (time, sequence) order
// — a run's results are bit-for-bit the same under either — so the
// choice is purely a cost profile:
//
//   - SchedWheel (the default): a two-tier scheduler. Tier one is a
//     rotating bucket wheel — 2048 slots, one per unit of virtual time,
//     covering the window [now, now+2048). Integral time plus a window
//     equal to the slot count means each slot holds exactly one
//     timestamp, so ordering within a slot is a doubly-linked FIFO
//     appended in seq order: push and pop are O(1) pointer moves with no
//     comparisons. Tier two is an overflow min-heap for events beyond
//     the window; it drains into the wheel as the window advances, in
//     (time, seq) order, into slots that are necessarily still empty —
//     which is what preserves exact heap-equivalent ordering across the
//     tier boundary. The wheel wins wherever events are dense in time
//     relative to the window — Timer re-arm traffic (service
//     completions, tickers, arrival pumps) and control-heavy machines
//     with thousands of resident timers: 1.8-3.4x the heap's events/sec
//     across the whole perf-ledger matrix (sched-two-tier section). Its
//     costs are 32KB of standing slot memory per engine and one nil
//     check per empty slot stepped over.
//   - SchedHeap: a hand-rolled indexed binary heap ([]*Event with each
//     Event carrying its heap position), avoiding container/heap's
//     interface boxing and enabling O(log n) removal. No window to
//     maintain and no standing memory; wins only when events are
//     extremely sparse per unit of virtual time. It remains the wheel's
//     overflow tier and stays selectable (heap-arity precedent) for
//     re-measurement — the A/B re-runs live on every cmd/bench
//     regeneration, and CI's bench smoke cross-checks that both
//     schedulers still agree on every result.
//
// # Performance model
//
// A full comparison run of the paper's suite pops a few hundred million
// events, so the hot path is engineered to allocate nothing in steady
// state:
//
//   - Schedule/At allocate one Event per call and return it as a
//     cancellable handle; those handles are never recycled, so a stale
//     handle is always safe.
//   - ScheduleAction/AtAction take an Action value instead of a closure,
//     return no handle, and recycle the backing Event through a free
//     list: steady-state messaging costs zero allocations per event.
//   - Timer owns one embedded Event it re-arms for every firing — the
//     building block for tickers, PE service completions and arrival
//     pumps. Ticker is built on Timer, so periodic processes allocate
//     only at construction.
//
// Each engine is intentionally single-goroutine: its event loop is a
// sequential computation over virtual time, with no locks on the hot
// path. Parallelism lives one level up, in two forms. The experiment
// harness runs many independent simulations on separate goroutines.
// And one large simulation can be sharded (machine.Config.Shards): K
// engines each own a slice of the machine and advance in lockstep
// through bounded windows via RunUntil(deadline) — fire everything due
// by the deadline, report whether live events remain — with
// NextEventAt letting the coordinator fast-forward over windows no
// engine has events in. Windowed stepping is exact: any partition of a
// run into RunUntil calls fires the same events in the same order as
// one call, so the window protocol adds synchronization points, never
// reordering. Cross-engine sends are injected between windows via
// AtAction by the coordinating goroutine while the engines are
// quiescent; the engine itself stays lock-free.
package sim

module statsmergefix

go 1.24

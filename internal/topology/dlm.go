package topology

import "fmt"

// NewDLM returns a rows×cols double-lattice-mesh with the given bus span,
// reconstructed from Figure 1 of the paper and Kale's ICPP 1986 "Optimal
// Communication Neighborhoods".
//
// Per row, lattice A partitions the row into cols/span buses of span
// consecutive PEs; lattice B is the same partition shifted right by
// span/2 with wraparound, so adjacent A-buses are bridged. Columns get
// the same two lattices vertically. Every PE therefore sits on exactly
// four buses (two horizontal, two vertical); its neighbors are all its
// bus-mates (up to 4·(span-1) PEs), and a single bus transaction reaches
// any of them — or, for a broadcast, all of them at once.
//
// rows and cols must be divisible by span (all paper configurations are:
// span 5 for 5×5, 10×10, 20×20; span 4 for 8×8, 16×16). The resulting
// diameters, 2–6 over 25–400 PEs, match the paper's quoted 4–5 for the
// larger meshes.
func NewDLM(rows, cols, span int) *Topology {
	if rows <= 0 || cols <= 0 {
		panic("topology: DLM dimensions must be positive")
	}
	if span < 2 {
		panic("topology: DLM span must be at least 2")
	}
	if rows%span != 0 || cols%span != 0 {
		panic(fmt.Sprintf("topology: DLM %dx%d not divisible by span %d", rows, cols, span))
	}
	n := rows * cols
	id := func(r, c int) int { return r*cols + c }
	var chans []Channel

	// Horizontal buses: for each row, lattice A starts at columns
	// 0, span, 2·span, ...; lattice B at span/2 + the same offsets,
	// wrapping around the row.
	for r := 0; r < rows; r++ {
		for _, off := range []int{0, span / 2} {
			for c0 := off; c0 < cols+off; c0 += span {
				members := make([]int, span)
				for k := 0; k < span; k++ {
					members[k] = id(r, (c0+k)%cols)
				}
				chans = append(chans, Channel{Members: members})
			}
		}
	}
	// Vertical buses, symmetrically.
	for c := 0; c < cols; c++ {
		for _, off := range []int{0, span / 2} {
			for r0 := off; r0 < rows+off; r0 += span {
				members := make([]int, span)
				for k := 0; k < span; k++ {
					members[k] = id((r0+k)%rows, c)
				}
				chans = append(chans, Channel{Members: members})
			}
		}
	}
	return build(fmt.Sprintf("dlm-%dx%d-s%d", rows, cols, span), n, chans)
}

// Command bench runs the pinned closed+open benchmark matrix
// (experiments.BenchMatrix) and writes the repository's performance
// ledger — a JSON file recording ns/op, allocs/op, bytes/op and
// events/sec per case, next to the frozen pre-optimization baseline, so
// the perf trajectory is pinned in the tree rather than in someone's
// terminal scrollback.
//
// Regenerate the committed ledger with:
//
//	go run ./cmd/bench -o BENCH_PR10.json
//
// CI runs the fast regression gate on every PR:
//
//	go run ./cmd/bench -short -o -
//
// which trims the matrix to the headline and one scheduler-heavy case,
// still runs the heap-vs-wheel A/B on the latter plus the first two
// shard cross-check cells, the observer-overhead A/B, the 262,144-PE
// footprint gate (construction + a short run of an implicit torus512,
// with a bytes-per-PE budget assertion), and the PR 10 fault-tolerance
// gates (the checkpoint-interval sweep and the sequential-vs-sharded
// scenario agreement check), and — like the full run — exits non-zero
// if the two schedulers or the sequential and sharded machines ever
// disagree on results, if disabled observability stops being free (the
// off side's allocs/op exceeding the headline measurement), if machine
// construction outgrows its per-PE memory budget, if no checkpoint
// interval beats both no-checkpointing and over-frequent checkpointing,
// or if the bounded-retry ledger stops balancing, so an event-ordering,
// observer-cost, memory-layout or fault-accounting regression fails the
// build, not just a perf number.
//
// Profile a case instead of guessing:
//
//	go run ./cmd/bench -short -cpuprofile cpu.out -memprofile mem.out
//
// Numbers are wall-clock and machine-dependent; allocs/op and bytes/op
// are deterministic per Go version (the simulation itself is a pure
// function of its seeds), which is why allocation reduction is the
// ledger's headline acceptance figure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cwnsim/internal/experiments"
	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
	"cwnsim/internal/trace"
)

// metricSet is one measured (or recorded) set of per-op figures.
type metricSet struct {
	NsPerOp      int64   `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec"`
}

type caseResult struct {
	Name        string    `json:"name"`
	Iterations  int       `json:"iterations"`
	EventsPerOp uint64    `json:"events_per_op"`
	Current     metricSet `json:"current"`
	// Baseline is the frozen pre-PR2 measurement for this case (nil for
	// cases added after PR 2).
	Baseline *metricSet `json:"baseline,omitempty"`
	// AllocsReductionPct and SpeedupX compare Current against Baseline.
	AllocsReductionPct float64 `json:"allocs_reduction_pct,omitempty"`
	SpeedupX           float64 `json:"speedup_x,omitempty"`
}

type ledger struct {
	Schema string `json:"schema"`
	PR     int    `json:"pr"`
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// CPUs and GOMAXPROCS pin the parallelism the regeneration host
	// actually had: the shard-scaling section only measures real
	// speedups when both exceed the shard counts, and a ledger produced
	// on a 1-CPU container must be readable as protocol-overhead data,
	// not as a parallelism verdict.
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note"`
	Headline   string `json:"headline_case"`
	// Experiments records one-off measured comparisons whose losing
	// side is not in the tree anymore (e.g. the PR 3 heap-arity trial),
	// so the decision stays auditable from the ledger alone.
	Experiments []experimentRecord `json:"experiments,omitempty"`
	// Sched is the PR 5 two-tier-scheduler A/B: each scheduler-heavy
	// case run under both the standing binary heap and the bucket
	// wheel, interleaved. Both sides are in the tree (sim.SchedulerKind),
	// so the section re-measures live on every regeneration, and each
	// entry asserts the two schedulers produced identical results.
	Sched []schedResult `json:"sched_two_tier,omitempty"`
	// SchedDecision pins what the A/B decided and why.
	SchedDecision string `json:"sched_decision,omitempty"`
	// Pooling is the PR 4 replication-pooling A/B: the same spec run
	// repeatedly with and without a shared machine.Pool (the
	// cross-run free-list reuse RunAll workers use). Re-measured live
	// on every regeneration — both sides are in the tree.
	Pooling *poolingResult `json:"pooling,omitempty"`
	// Shard is the PR 6 conservative-lookahead sharding sweep: the
	// largest matrix case run at 1/2/4/8 shards against the sequential
	// reference, re-measured live on every regeneration.
	Shard *shardScaling `json:"shard_scaling,omitempty"`
	// ShardCross records the shard cross-check gate: every pinned cell
	// certified sequential-vs-sharded (experiments.ShardCrossCheck).
	// cmd/bench exits non-zero on the first disagreement.
	ShardCross []shardCrossResult `json:"shard_crosscheck,omitempty"`
	// Memory is the PR 9 footprint table: machine construction cost
	// (bytes and allocations per PE) and the run's peak OS-backed heap
	// at four machine sizes spanning the materialized-to-implicit
	// promotion, up to the million-PE torus. Two gates ride on it:
	// the torus512 row's bytes/PE budget (runs in -short, the CI
	// smoke) and the torus1000 row's 2 GB peak-heap ceiling (full
	// regenerations).
	Memory *memFootprint `json:"memory_footprint,omitempty"`
	// Fault is the PR 10 fault-tolerance section: the checkpoint-interval
	// sweep (overhead paid vs work re-lost), the sequential-vs-sharded
	// scenario agreement gate, the bounded-retry ledger, and — on full
	// regenerations — the sharded million-PE chaos soak with its peak-heap
	// gate. The sweep and agreement gates run in -short (the CI smoke).
	Fault *faultSection `json:"fault_tolerance,omitempty"`
	// Observer is the PR 8 observability-cost A/B: the headline case
	// with the full observer surface (sampling + per-PE monitoring +
	// tracing) off versus on. The off side doubles as a regression
	// gate: it is the headline spec verbatim, so its allocs/op may not
	// exceed the headline measurement — disabled observability costing
	// anything fails the run. Runs in -short too (the CI smoke).
	Observer *observerOverhead `json:"observer_overhead,omitempty"`
	Results  []caseResult      `json:"results"`
}

// memFootprint is the PR 9 memory-footprint section.
type memFootprint struct {
	Rows []memRow `json:"rows"`
	// Gate documents the enforced budgets; a violation exits non-zero.
	Gate     string `json:"gate"`
	Decision string `json:"decision,omitempty"`
}

// memRow is one machine size's footprint measurement: a fresh machine
// is constructed between two MemStats reads (build cost), then run to
// its short horizon (peak heap under traffic).
type memRow struct {
	Case     string `json:"case"`
	PEs      int    `json:"pes"`
	Implicit bool   `json:"implicit_topology"`
	// BuildHeapBytes is the live-heap growth of constructing the
	// machine (HeapAlloc delta across machine.New after a GC fence);
	// BuildBytesPerPE divides it by the machine size.
	BuildHeapBytes   int64   `json:"build_heap_bytes"`
	BuildBytesPerPE  int64   `json:"build_bytes_per_pe"`
	BuildAllocs      int64   `json:"build_allocs"`
	BuildAllocsPerPE float64 `json:"build_allocs_per_pe"`
	// PeakHeapBytes is the OS-backed heap high-water after the run
	// (HeapSys - HeapReleased): what the process actually held from
	// the operating system to build and run this machine.
	PeakHeapBytes uint64 `json:"peak_heap_bytes"`
	RunEvents     uint64 `json:"run_events"`
}

// memBudgetBytesPerPE and memBudgetAllocsPerPE gate the torus512 row
// (the -short CI smoke): machine construction regressing past these
// budgets fails the build. The PR 9 struct-of-arrays layout measures
// ~1070 bytes/PE and exactly 4 allocations/PE (the load-broadcast
// closure, the ticker-fire and serviceDone method values, and the
// strategy's per-PE node); the budgets carry ~50% headroom so noise
// cannot trip the gate but one accidental per-PE allocation — a map,
// a slice that escaped the flat backings — does.
const (
	memBudgetBytesPerPE  = 1600
	memBudgetAllocsPerPE = 6.0
)

// memPeakBudget is the tentpole ceiling: the million-PE run must fit
// in 2 GB of OS-backed heap.
const memPeakBudget = 2 << 30

// footprintCases returns the footprint table's machine sizes. The
// -short smoke keeps only the 262,144-PE gate row.
func footprintCases(short bool) []memCase {
	all := []memCase{
		{name: "build/torus64", topo: experiments.Torus(64), maxTime: 2_000},
		{name: "build/torus256", topo: experiments.Torus(256), maxTime: 300},
		{name: "build/torus512", topo: experiments.Torus(512), maxTime: 100, allocGate: true},
		{name: "build/torus1000", topo: experiments.Torus(1000), maxTime: 120, peakGate: true},
	}
	if short {
		return all[2:3]
	}
	return all
}

// memCase pins one footprint row's machine size and horizon.
type memCase struct {
	name      string
	topo      experiments.TopoSpec
	maxTime   int64
	allocGate bool // enforce the per-PE construction budgets
	peakGate  bool // enforce the 2 GB peak-heap ceiling
}

// measureFootprint builds and briefly runs one machine size. The
// workload and strategy are fixed (a single fib(9) job under CWN) —
// at these sizes the footprint is the machine itself, not the job.
func measureFootprint(mc memCase) memRow {
	topo := mc.topo.Build()
	tree := experiments.Fib(9).Build()
	strat := experiments.CWN(9, 2).Build()
	cfg := machine.DefaultConfig()
	cfg.MaxTime = sim.Time(mc.maxTime)
	var m0, m1, m2 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	mach := machine.New(topo, tree, strat, cfg)
	// A GC fence before the build reading: bytes/PE is the machine the
	// run retains, not construction garbage (append-growth copies of
	// the flat adjacency backings).
	runtime.GC()
	runtime.ReadMemStats(&m1)
	st := mach.Run()
	runtime.ReadMemStats(&m2)
	pes := mc.topo.PEs()
	build := int64(m1.HeapAlloc - m0.HeapAlloc)
	allocs := int64(m1.Mallocs - m0.Mallocs)
	return memRow{
		Case:             mc.name,
		PEs:              pes,
		Implicit:         topo.Implicit(),
		BuildHeapBytes:   build,
		BuildBytesPerPE:  build / int64(pes),
		BuildAllocs:      allocs,
		BuildAllocsPerPE: float64(allocs) / float64(pes),
		PeakHeapBytes:    m2.HeapSys - m2.HeapReleased,
		RunEvents:        st.Events,
	}
}

// faultSection is the PR 10 fault-tolerance ledger block.
type faultSection struct {
	Checkpoint *ckptSweep          `json:"checkpoint_sweep,omitempty"`
	Agreement  []scenarioCrossItem `json:"scenario_agreement,omitempty"`
	Retry      *retryLedger        `json:"retry_ledger,omitempty"`
	Soak       *shardedSoak        `json:"sharded_soak,omitempty"`
}

// ckptSweep is the checkpoint-interval tradeoff: the same pinned crash
// workload run with no checkpointing, over-frequent checkpointing, and
// a band of mid intervals. The gate requires some mid interval to
// strictly beat BOTH endpoints on goodput — checkpointing must be
// worth something, and its cost must be real.
type ckptSweep struct {
	Case     string      `json:"case"`
	Scenario string      `json:"base_scenario"`
	Points   []ckptPoint `json:"points"`
	Winner   string      `json:"winner"`
	Gate     string      `json:"gate"`
	Decision string      `json:"decision,omitempty"`
}

// ckptPoint is one checkpoint interval's measurement. Interval 0 means
// no checkpointing; the smallest interval carries an inflated per-tick
// cost (the deliberately over-frequent endpoint).
type ckptPoint struct {
	Interval      int64   `json:"interval"`
	Cost          int64   `json:"cost"`
	Goodput       float64 `json:"goodput"`
	JobsDone      int64   `json:"jobs_done"`
	JobsInjected  int64   `json:"jobs_injected"`
	JobsAbandoned int64   `json:"jobs_abandoned"`
	TotalBusy     int64   `json:"total_busy"`
	Makespan      int64   `json:"makespan"`
}

// scenarioCrossItem is one certified scenario agreement cell.
type scenarioCrossItem struct {
	Case   string `json:"case"`
	Shards int    `json:"shards"`
	OK     bool   `json:"ok"`
}

// retryLedger records the bounded-retry accounting on the agreement
// spec, sequential and sharded, with the machine-wide invariant
// (retried + abandoned == aborted) re-checked at both.
type retryLedger struct {
	Case       string      `json:"case"`
	Sequential retryCounts `json:"sequential"`
	Sharded    retryCounts `json:"sharded"`
	Invariant  string      `json:"invariant"`
}

// retryCounts is one mode's job-fate accounting.
type retryCounts struct {
	Injected  int64   `json:"jobs_injected"`
	Done      int64   `json:"jobs_done"`
	Aborted   int64   `json:"jobs_aborted"`
	Retried   int64   `json:"jobs_retried"`
	Abandoned int64   `json:"jobs_abandoned"`
	Goodput   float64 `json:"goodput"`
}

// shardedSoak is the million-PE sharded chaos soak's footprint row:
// the full fault stack (domain crashes, checkpoints, bounded retry)
// under Shards=4 on the implicit torus1000, gated by the same 2 GiB
// peak-heap ceiling as the sequential million-PE case.
type shardedSoak struct {
	Case          string  `json:"case"`
	Shards        int     `json:"shards"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	Events        uint64  `json:"run_events"`
	JobsAborted   int64   `json:"jobs_aborted"`
	JobsRetried   int64   `json:"jobs_retried"`
	JobsAbandoned int64   `json:"jobs_abandoned"`
	Goodput       float64 `json:"goodput"`
	Gate          string  `json:"gate"`
}

// ckptSweepSpec is the pinned crash workload the checkpoint-interval
// sweep reruns per interval: a 16-PE grid under a steady stream, 25%
// of the machine crashing four times with a one-retry budget. Tight
// enough that replay position matters (long intervals re-lose work,
// jobs caught mid-replay by the next crash exhaust their budget) and
// busy enough that per-tick snapshot cost is visible.
func ckptSweepSpec() experiments.RunSpec {
	return experiments.RunSpec{
		Topo:         experiments.Grid(4),
		Workload:     experiments.Fib(11),
		Strategy:     experiments.CWN(9, 2),
		Arrival:      experiments.IntervalArrivals(150, 40),
		Scenario:     "crash:pes=25%@t=1500,recover@t=1700,crash:pes=25%@t=3000,recover@t=3200,crash:pes=25%@t=4500,recover@t=4700,crash:pes=25%@t=6000,recover@t=6200",
		RetryLimit:   1,
		RetryBackoff: 25,
	}
}

// ckptIntervals pins the sweep points: none, the over-frequent endpoint
// (every 20 units at 6 cost — a ~30% service tax), and three mid
// intervals at the scripted cost of 2.
var ckptIntervals = []struct{ every, cost int64 }{
	{0, 0}, {20, 6}, {200, 2}, {300, 2}, {400, 2},
}

// measureCkptSweep runs the sweep and enforces the tradeoff gate.
func measureCkptSweep() (*ckptSweep, error) {
	base := ckptSweepSpec()
	sweep := &ckptSweep{
		Case:     "fault/ckpt-grid4-crash25",
		Scenario: base.Scenario,
		Gate:     "some mid interval strictly beats both interval=0 (no checkpointing) and the over-frequent endpoint on goodput",
	}
	for _, p := range ckptIntervals {
		s := base
		if p.every > 0 {
			s.Scenario = fmt.Sprintf("%s,checkpoint:every=%d:cost=%d@t=0", base.Scenario, p.every, p.cost)
		}
		r, err := s.ExecuteErr()
		if err != nil {
			return nil, fmt.Errorf("interval %d: %w", p.every, err)
		}
		st := r.Stats
		sweep.Points = append(sweep.Points, ckptPoint{
			Interval:      p.every,
			Cost:          p.cost,
			Goodput:       st.Goodput(),
			JobsDone:      st.JobsDone,
			JobsInjected:  st.JobsInjected,
			JobsAbandoned: st.JobsAbandoned,
			TotalBusy:     int64(st.TotalBusy),
			Makespan:      int64(st.Makespan),
		})
	}
	none, overfreq := sweep.Points[0], sweep.Points[1]
	best := -1
	for i, p := range sweep.Points[2:] {
		if p.Goodput > none.Goodput && p.Goodput > overfreq.Goodput {
			if best < 0 || p.Goodput > sweep.Points[2+best].Goodput {
				best = i
			}
		}
	}
	if best < 0 {
		return sweep, fmt.Errorf("no mid interval beat both endpoints: none %.4f, over-frequent %.4f, mids %+v",
			none.Goodput, overfreq.Goodput, sweep.Points[2:])
	}
	win := sweep.Points[2+best]
	sweep.Winner = fmt.Sprintf("every=%d:cost=%d", win.Interval, win.Cost)
	sweep.Decision = fmt.Sprintf(
		"checkpointing pays when its interval matches the crash cadence: every=%d resumes retries near the loss point (goodput %.4f vs %.4f without checkpoints — replay from the root leaves jobs mid-flight when the next strike lands) "+
			"while the over-frequent endpoint (every=%d at cost %d) taxes every live PE's service enough to hold goodput at %.4f; the gate pins that both failure modes stay measurable",
		win.Interval, win.Goodput, none.Goodput, overfreq.Interval, overfreq.Cost, overfreq.Goodput)
	return sweep, nil
}

// agreementSpec is the pinned scripted spec the scenario agreement gate
// certifies across run modes: domain-shaped crash chaos, periodic
// checkpoints and a one-retry budget on a 16-PE grid — every piece of
// the fault stack in one script, small enough for the CI smoke.
func agreementSpec() experiments.RunSpec {
	return experiments.RunSpec{
		Topo:           experiments.Grid(4),
		Workload:       experiments.Fib(9),
		Strategy:       experiments.CWN(9, 2),
		Arrival:        experiments.IntervalArrivals(100, 60),
		Scenario:       "chaos:mtbf=1500:mttr=400:crash:domain=rack:4@seed=11,checkpoint:every=400:cost=1@t=0",
		RetryLimit:     1,
		RetryBackoff:   25,
		SampleInterval: 200,
	}
}

// measureRetryLedger runs the agreement spec sequentially and sharded
// and records both modes' job-fate accounting, re-checking the
// machine-wide invariant the acceptance criteria pin.
func measureRetryLedger(spec experiments.RunSpec, name string, k int) (*retryLedger, error) {
	counts := func(shards int) (retryCounts, error) {
		s := spec
		s.Shards = shards
		r, err := s.ExecuteErr()
		if err != nil {
			return retryCounts{}, err
		}
		st := r.Stats
		if st.JobsRetried+st.JobsAbandoned != st.JobsAborted {
			return retryCounts{}, fmt.Errorf("shards=%d retry ledger unbalanced: retried %d + abandoned %d != aborted %d",
				shards, st.JobsRetried, st.JobsAbandoned, st.JobsAborted)
		}
		if st.JobsAbandoned == 0 {
			return retryCounts{}, fmt.Errorf("shards=%d abandoned no jobs — the pinned crash script must exhaust some retry budget", shards)
		}
		return retryCounts{
			Injected:  st.JobsInjected,
			Done:      st.JobsDone,
			Aborted:   st.JobsAborted,
			Retried:   st.JobsRetried,
			Abandoned: st.JobsAbandoned,
			Goodput:   st.Goodput(),
		}, nil
	}
	seq, err := counts(0)
	if err != nil {
		return nil, err
	}
	shd, err := counts(k)
	if err != nil {
		return nil, err
	}
	return &retryLedger{
		Case:       name,
		Sequential: seq,
		Sharded:    shd,
		Invariant:  "JobsRetried + JobsAbandoned == JobsAborted and JobsAbandoned > 0, machine-wide, sequential and sharded",
	}, nil
}

// measureShardedSoak runs the million-PE sharded chaos soak once
// between MemStats reads and reports its peak OS-backed heap. It runs
// right after the footprint table (smallest machines first) so the
// process high-water it reads is this machine's own peak.
func measureShardedSoak(spec experiments.RunSpec, name string) (*shardedSoak, error) {
	spec.Topo.Build()
	spec.Workload.Build()
	runtime.GC()
	r, err := spec.ExecuteErr()
	if err != nil {
		return nil, err
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	st := r.Stats
	return &shardedSoak{
		Case:          name,
		Shards:        spec.Shards,
		PeakHeapBytes: ms.HeapSys - ms.HeapReleased,
		Events:        st.Events,
		JobsAborted:   st.JobsAborted,
		JobsRetried:   st.JobsRetried,
		JobsAbandoned: st.JobsAbandoned,
		Goodput:       st.Goodput(),
		Gate:          "peak OS-backed heap < 2 GiB with the full fault stack live at Shards=4",
	}, nil
}

// observerOverhead is the off-vs-on observability measurement.
type observerOverhead struct {
	Case       string    `json:"case"`
	Iterations int       `json:"iterations_per_side"`
	Off        metricSet `json:"off"`
	On         metricSet `json:"on"`
	// NsOverheadPct and AllocsOverheadPct are the on side's cost over
	// the off side (positive = observing is slower/allocates more).
	NsOverheadPct     float64 `json:"ns_overhead_pct"`
	AllocsOverheadPct float64 `json:"allocs_overhead_pct"`
	Decision          string  `json:"decision,omitempty"`
}

// shardScaling is the PR 6 scaling table: one point per shard count on
// one pinned case, plus the sequential reference the speedups divide by.
type shardScaling struct {
	Case       string            `json:"case"`
	Iterations int               `json:"iterations_per_point"`
	Sequential metricSet         `json:"sequential"`
	Points     []shardScalePoint `json:"points"`
	Decision   string            `json:"decision,omitempty"`
}

// shardScalePoint is one shard count's measurement.
type shardScalePoint struct {
	Shards  int       `json:"shards"`
	Metrics metricSet `json:"metrics"`
	// SpeedupX is sequential ns/op over this point's ns/op — wall-clock
	// speedup for the same virtual-time horizon.
	SpeedupX float64 `json:"speedup_vs_sequential_x"`
}

// shardCrossResult is one certified cross-check cell.
type shardCrossResult struct {
	Case   string `json:"case"`
	Shards int    `json:"shards"`
	OK     bool   `json:"ok"`
}

// poolingResult is the before/after of machine-object reuse across
// replications (ROADMAP: "machine-object reuse across runs in sweeps").
type poolingResult struct {
	Case               string    `json:"case"`
	RunsPerSide        int       `json:"runs_per_side"`
	Without            metricSet `json:"without_pool"`
	With               metricSet `json:"with_pool"`
	AllocsReductionPct float64   `json:"allocs_reduction_pct"`
	SpeedupX           float64   `json:"speedup_x"`
	// Decision records why pooling is (or is not) the sweeps default.
	Decision string `json:"decision,omitempty"`
}

// schedResult is one case of the heap-vs-wheel A/B.
type schedResult struct {
	Case          string    `json:"case"`
	Iterations    int       `json:"iterations_per_side"`
	Heap          metricSet `json:"heap"`
	Wheel         metricSet `json:"wheel"`
	WheelSpeedupX float64   `json:"wheel_speedup_x"`
	// Identical asserts both schedulers produced the same events,
	// makespan, result and job count — the bit-for-bit guarantee the
	// wheel's per-bucket seq-FIFO exists for. cmd/bench exits non-zero
	// if it is ever false.
	Identical bool `json:"results_identical"`
}

// experimentRecord pins an A/B decision: what was tried, on which
// case, what each side measured and where, and what was kept. Unlike
// the per-case results, these numbers are NOT re-measured when the
// ledger regenerates (the losing side is no longer in the tree);
// MeasuredOn carries their provenance so a ledger produced on other
// hardware does not misattribute them.
type experimentRecord struct {
	Name       string  `json:"name"`
	Case       string  `json:"case"`
	AName      string  `json:"a"`
	AEvtSec    float64 `json:"a_events_per_sec"`
	BName      string  `json:"b"`
	BEvtSec    float64 `json:"b_events_per_sec"`
	Kept       string  `json:"kept"`
	Decision   string  `json:"decision"`
	MeasuredOn string  `json:"measured_on"`
}

// heapExperiment is the PR 3 heap-arity trial. The 4-ary heap lost and
// was removed; the binary heap stays, parameterized (sim/heap.go
// heapArity) — since PR 5 as the selectable non-default scheduler and
// the wheel's overflow tier.
var heapExperiment = experimentRecord{
	Name:       "engine-heap-arity",
	Case:       "open/ctrl-grid32-gm",
	AName:      "binary heap (kept)",
	AEvtSec:    4437829,
	BName:      "4-ary heap",
	BEvtSec:    4200984,
	Kept:       "binary",
	Decision:   "4-ary measured ~5% fewer events/sec: the standing heap is shallow (thousands of events) so halved depth does not repay 3 extra sibling comparisons per down-level; Timer re-arm/removeAt traffic leans on up(), which arity does not help",
	MeasuredOn: "PR 3 reference container, go1.24.0 linux/amd64, 6 interleaved iterations per side (mean events/sec); frozen, not re-measured on regeneration",
}

// seekBitmapExperiment is the PR 6 wheel-occupancy-bitmap trial,
// resolved at the profiling stage: the candidate was never built
// because the code it would accelerate is not hot.
var seekBitmapExperiment = experimentRecord{
	Name:    "wheel-occupancy-bitmap",
	Case:    "open/chaos-grid16-cwn-fa",
	AName:   "linear slot stepping (kept)",
	AEvtSec: 11576067,
	BName:   "occupancy bitmap (rejected unbuilt)",
	BEvtSec: 0,
	Kept:    "linear",
	Decision: "profiled 20 back-to-back runs of the chaos case (7.87s CPU samples): wheelSched.seek measured 2.5% flat / 2.7% cumulative, peek 3.4% cumulative — the whole wheel family (push/pop/peek/seek/chain) is ~11%. " +
		"A per-word occupancy bitmap caps the win at seek's 2.5% while taxing every push and pop with bit maintenance, so it cannot pay for itself; empty-slot stepping stays",
	MeasuredOn: "PR 6 reference container (1 CPU), go1.24 linux/amd64, sequential engine; frozen, not re-measured on regeneration",
}

// millionPEProfileExperiment is the PR 9 memory-profile verification of
// the million-PE layout (-memprofile run against the full matrix,
// including open/poisson-torus1000). Recorded here because the numbers
// answer "where do the bytes go at 10^6 PEs" once, from a known tree;
// a regeneration re-measures the footprint table but not this profile.
var millionPEProfileExperiment = experimentRecord{
	Name:    "millionpe-memprofile",
	Case:    "open/poisson-torus1000",
	AName:   "implicit topology + SoA/arena layout (kept)",
	AEvtSec: 1557801,
	BName:   "materialized adjacency (profiled, not rebuilt)",
	BEvtSec: 0,
	Kept:    "implicit+arena",
	Decision: "alloc_space over the full -memprofile matrix run: machine.newMachine 36.8% flat (flat CSR backings, peBlock, SoA slices, arena chunks across every build), topology.ensureRouting 35.6% — the materialized form's all-pairs BFS rows, triggered on the 10,000-PE torus100 soak by chaos-evacuation Dist/NextHop and retaining ~1.0 GB in-use, which the implicit form replaces with closed-form arithmetic (zero bytes on the 1M-PE case); " +
		"implicit CSR append targets (appendImplNeighbors/appendImplChansOf/gridChanMembers) ~6.2% each, wire-message arenas 2.1%, newStats 1.9%, everything else <1.5%. Footprint row for the 1M-PE build: 1070 B/PE, 4.000 allocs/PE, 1414 MiB peak heap — under the 2 GiB gate",
	MeasuredOn: "PR 9 reference container (1 CPU, 128 GB), go1.24.0 linux/amd64, `go run ./cmd/bench -iters 1 -memprofile` over the full matrix; frozen, not re-measured on regeneration",
}

// baseline holds the pre-optimization numbers, recorded at the PR 1
// tree (closure-per-hop transmit, per-event allocation, unpooled goals)
// with `go test -bench BenchmarkLedger -benchtime 3x` on the reference
// container. Frozen here so every future regeneration of the ledger
// keeps reporting the trajectory since the optimization landed.
var baseline = map[string]metricSet{
	"closed/cwn-grid10-fib13": {NsPerOp: 5454257, AllocsPerOp: 40136, BytesPerOp: 1993730, EventsPerSec: 3138117},
	"closed/gm-grid10-fib13":  {NsPerOp: 11274463, AllocsPerOp: 87071, BytesPerOp: 3794413, EventsPerSec: 3408023},
	"open/poisson-grid8":      {NsPerOp: 256607173, AllocsPerOp: 1708389, BytesPerOp: 82558530, EventsPerSec: 2941300},
	"open/poisson-dlm10":      {NsPerOp: 286814602, AllocsPerOp: 1600726, BytesPerOp: 75826389, EventsPerSec: 2437025},
	"open/burst-grid10-gm":    {NsPerOp: 193647355, AllocsPerOp: 1345875, BytesPerOp: 57478608, EventsPerSec: 3102158},
}

func main() {
	var (
		out        = flag.String("o", "BENCH_PR10.json", "ledger output path (- for stdout)")
		iters      = flag.Int("iters", 5, "iterations per case (fixed, for comparable allocs/op)")
		short      = flag.Bool("short", false, "regression smoke: headline + one sched-heavy case, 1 iteration, sched A/B equality still enforced")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the measurement runs to this file")
		memprofile = flag.String("memprofile", "", "write an allocation profile (after the runs) to this file")
	)
	flag.Parse()
	if *iters < 1 {
		fail(fmt.Errorf("-iters must be >= 1, got %d", *iters))
	}
	if *short {
		*iters = 1
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		fail(err)
		fail(pprof.StartCPUProfile(f))
		defer pprof.StopCPUProfile()
	}

	matrix := experiments.BenchMatrix()
	schedCases := experiments.SchedCases()
	if *short {
		matrix = trimMatrix(matrix, "open/poisson-grid8", "open/ctrl-grid32-gm")
		schedCases = []string{"open/ctrl-grid32-gm"}
	}

	led := ledger{
		Schema:      "cwnsim-bench/v1",
		PR:          10,
		Go:          runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Note:        "one op = one full simulation run of the named spec under the default (wheel) scheduler; baseline frozen at the pre-PR2 tree (cases added later carry none)",
		Headline:    "open/poisson-grid8",
		Experiments: []experimentRecord{heapExperiment, seekBitmapExperiment, millionPEProfileExperiment},
		SchedDecision: "two-tier wheel promoted to default scheduler: it won every matrix case (1.8-3.4x events/sec at PR 5 measurement) with results identical to the heap on all of them; " +
			"the binary heap stays selectable (RunSpec.Scheduler=\"heap\", sim.SchedHeap) as the overflow tier and for re-measurement",
	}
	// The footprint table runs first, smallest machine to largest, so
	// the process's heap high-water when the torus1000 row reads it is
	// the million-PE machine's own peak, not residue from other
	// sections. Gate violations are layout regressions: exit non-zero.
	{
		mem := &memFootprint{
			Gate: fmt.Sprintf("torus512 build <= %d bytes/PE and <= %.2f allocs/PE; torus1000 peak heap < 2 GiB", memBudgetBytesPerPE, memBudgetAllocsPerPE),
			Decision: "machine hot state is struct-of-arrays (flat busy/failed/serviceEnd/busyTime slices), adjacency is CSR subslices of shared flat backings, " +
				"channels are a value slice, and goals/messages/pending/jobs/events carve from chunk arenas — so per-PE cost is flat array bytes, not object headers, " +
				"and machines past 65536 PEs promote to implicit (computed-neighbor) topologies with no stored edge lists",
		}
		for _, mc := range footprintCases(*short) {
			row := measureFootprint(mc)
			mem.Rows = append(mem.Rows, row)
			fmt.Fprintf(os.Stderr, "%-28s %8d PEs  %5d B/PE  %.3f allocs/PE  peak %6.1f MiB  (implicit=%v)\n",
				"mem:"+row.Case, row.PEs, row.BuildBytesPerPE, row.BuildAllocsPerPE, float64(row.PeakHeapBytes)/(1<<20), row.Implicit)
			if mc.allocGate && (row.BuildBytesPerPE > memBudgetBytesPerPE || row.BuildAllocsPerPE > memBudgetAllocsPerPE) {
				fail(fmt.Errorf("memory gate: %s built at %d bytes/PE, %.3f allocs/PE (budget %d B/PE, %.2f allocs/PE) — machine construction regressed",
					row.Case, row.BuildBytesPerPE, row.BuildAllocsPerPE, memBudgetBytesPerPE, memBudgetAllocsPerPE))
			}
			if mc.peakGate && row.PeakHeapBytes >= memPeakBudget {
				fail(fmt.Errorf("memory gate: %s peaked at %.1f MiB heap — the million-PE machine must fit in 2 GiB",
					row.Case, float64(row.PeakHeapBytes)/(1<<20)))
			}
		}
		led.Memory = mem
	}

	// The fault-tolerance section. The sharded million-PE soak runs
	// immediately after the footprint table (same smallest-to-largest
	// discipline: the heap high-water it reads must be its own machine's
	// peak, not a later case's); the checkpoint-interval sweep and the
	// scenario agreement gate are small pinned specs that run in -short
	// too — they are CI's fault-accounting smoke.
	{
		fault := &faultSection{}
		if !*short {
			const soakCase = "open/chaos-torus1000-sharded-soak"
			spec, ok := findCase(experiments.BenchMatrix(), soakCase)
			if !ok {
				fail(fmt.Errorf("sharded soak case %s not in BenchMatrix", soakCase))
			}
			soak, err := measureShardedSoak(spec, soakCase)
			if err != nil {
				fail(fmt.Errorf("sharded soak: %v", err))
			}
			fault.Soak = soak
			fmt.Fprintf(os.Stderr, "%-28s %d shards  peak %6.1f MiB  aborted=%d retried=%d abandoned=%d goodput=%.3f\n",
				"soak:"+soakCase, soak.Shards, float64(soak.PeakHeapBytes)/(1<<20),
				soak.JobsAborted, soak.JobsRetried, soak.JobsAbandoned, soak.Goodput)
			if soak.PeakHeapBytes >= memPeakBudget {
				fail(fmt.Errorf("memory gate: %s peaked at %.1f MiB heap — the sharded million-PE fault stack must fit in 2 GiB",
					soakCase, float64(soak.PeakHeapBytes)/(1<<20)))
			}
		}

		sweep, err := measureCkptSweep()
		if err != nil {
			fail(fmt.Errorf("checkpoint sweep gate: %v", err))
		}
		fault.Checkpoint = sweep
		for _, p := range sweep.Points {
			fmt.Fprintf(os.Stderr, "%-28s every=%-4d cost=%d  goodput=%.4f  done=%d/%d  busy=%d\n",
				"ckpt:"+sweep.Case, p.Interval, p.Cost, p.Goodput, p.JobsDone, p.JobsInjected, p.TotalBusy)
		}
		fmt.Fprintf(os.Stderr, "%-28s winner %s\n", "ckpt:"+sweep.Case, sweep.Winner)

		const agreeCase = "fault/agree-grid4-chaos-rack"
		if err := experiments.ScenarioCrossCheck(agreementSpec(), 4); err != nil {
			fail(fmt.Errorf("scenario agreement gate %s: sequential and sharded machines DISAGREE:\n%v", agreeCase, err))
		}
		fault.Agreement = append(fault.Agreement, scenarioCrossItem{Case: agreeCase, Shards: 4, OK: true})
		fmt.Fprintf(os.Stderr, "%-28s certified (seq == shards=1 incl. recovery metrics, parallel == serial, retry ledger balanced at k=4)\n", "scenck:"+agreeCase)

		rl, err := measureRetryLedger(agreementSpec(), agreeCase, 4)
		if err != nil {
			fail(fmt.Errorf("retry ledger gate: %v", err))
		}
		fault.Retry = rl
		fmt.Fprintf(os.Stderr, "%-28s seq %d/%d done, %d abandoned (goodput %.3f) | shards=4 %d/%d done, %d abandoned (goodput %.3f)\n",
			"retry:"+agreeCase, rl.Sequential.Done, rl.Sequential.Injected, rl.Sequential.Abandoned, rl.Sequential.Goodput,
			rl.Sharded.Done, rl.Sharded.Injected, rl.Sharded.Abandoned, rl.Sharded.Goodput)
		led.Fault = fault
	}

	// The two giant matrix cases take tens of seconds per op; capping
	// their iteration count keeps full regenerations tractable without
	// touching the comparability of the long-standing cases. Each
	// result records the count it actually ran.
	iterCap := map[string]int{
		"open/poisson-torus1000":            2,
		"open/chaos-torus100-soak":          2,
		"open/chaos-torus1000-sharded-soak": 1,
	}
	for _, c := range matrix {
		// Warm registry caches so construction of shared immutables is
		// not billed to the first iteration.
		c.Spec.Topo.Build()
		c.Spec.Workload.Build()

		n := *iters
		if cap, ok := iterCap[c.Name]; ok && n > cap {
			n = cap
		}
		res, err := measure(c.Spec, n)
		if err != nil {
			fail(fmt.Errorf("case %s: %v", c.Name, err))
		}
		res.Name = c.Name
		if base, ok := baseline[c.Name]; ok {
			b := base
			res.Baseline = &b
			if b.AllocsPerOp > 0 {
				res.AllocsReductionPct = 100 * (1 - float64(res.Current.AllocsPerOp)/float64(b.AllocsPerOp))
			}
			if res.Current.NsPerOp > 0 {
				res.SpeedupX = float64(b.NsPerOp) / float64(res.Current.NsPerOp)
			}
		}
		led.Results = append(led.Results, res)
		fmt.Fprintf(os.Stderr, "%-28s %12d ns/op %10d allocs/op %12.0f events/sec", c.Name,
			res.Current.NsPerOp, res.Current.AllocsPerOp, res.Current.EventsPerSec)
		if res.Baseline != nil {
			fmt.Fprintf(os.Stderr, "   allocs %+.1f%%, %.2fx faster", -res.AllocsReductionPct, res.SpeedupX)
		}
		fmt.Fprintln(os.Stderr)
	}

	// The scheduler A/B: each sched-heavy case under heap and wheel,
	// sides interleaved within every iteration so clock drift cannot
	// favor one. A results divergence is a correctness failure, not a
	// perf datum: exit non-zero.
	for _, name := range schedCases {
		spec, ok := findCase(experiments.BenchMatrix(), name)
		if !ok {
			fail(fmt.Errorf("sched case %s not in BenchMatrix", name))
		}
		sr, err := measureSched(spec, name, *iters)
		if err != nil {
			fail(fmt.Errorf("sched A/B %s: %v", name, err))
		}
		led.Sched = append(led.Sched, sr)
		fmt.Fprintf(os.Stderr, "%-28s heap %11.0f -> wheel %11.0f events/sec (%.2fx), identical=%v\n",
			"sched:"+name, sr.Heap.EventsPerSec, sr.Wheel.EventsPerSec, sr.WheelSpeedupX, sr.Identical)
		if !sr.Identical {
			fail(fmt.Errorf("sched A/B %s: heap and wheel produced DIFFERENT results — event ordering regression", name))
		}
	}

	// The shard cross-check gate: certify the sequential/sharded
	// agreement contract on the pinned matrix. A disagreement is a
	// correctness failure — exit non-zero.
	crossCases := experiments.ShardCrossMatrix()
	if *short {
		crossCases = crossCases[:2]
	}
	for _, c := range crossCases {
		if err := experiments.ShardCrossCheck(c.Spec, 4); err != nil {
			fail(fmt.Errorf("shard cross-check %s: sequential and sharded machines DISAGREE:\n%v", c.Name, err))
		}
		led.ShardCross = append(led.ShardCross, shardCrossResult{Case: c.Name, Shards: 4, OK: true})
		fmt.Fprintf(os.Stderr, "%-28s certified (seq == shards=1, parallel == serial, conservation at k=4)\n", "shardck:"+c.Name)
	}

	// The shard scaling sweep: the 4096-PE control-heavy case at each
	// shard count against the sequential reference.
	if !*short {
		const scaleCase = "open/ctrl-grid64-gm"
		spec, ok := findCase(experiments.BenchMatrix(), scaleCase)
		if !ok {
			fail(fmt.Errorf("shard scaling case %s not in BenchMatrix", scaleCase))
		}
		sc, err := measureShardScaling(spec, scaleCase, *iters)
		if err != nil {
			fail(fmt.Errorf("shard scaling: %v", err))
		}
		sc.Decision = fmt.Sprintf(
			"this regeneration ran on %d CPU(s); with fewer cores than shards the sweep measures PROTOCOL OVERHEAD rather than parallelism. "+
				"PR 6 reference finding, re-confirmed unchanged by the PR 8 regeneration (both 1-CPU containers): K=4 fully serialized onto one core ran at parity with the sequential engine — "+
				"the window/barrier/drain machinery costs ~0%% even at lookahead 1 (CtrlHopTime bounds the min cross-shard latency, so this case runs ~MaxTime windows, the worst case) — "+
				"which is the precondition for wall-clock scaling on a multicore host. The table re-measures live on every regeneration; regenerate on an N-core machine to pin real speedups",
			runtime.NumCPU())
		led.Shard = &sc
		for _, p := range sc.Points {
			fmt.Fprintf(os.Stderr, "%-28s %d shards %12.0f events/sec  %.2fx vs sequential\n",
				"shard:"+scaleCase, p.Shards, p.Metrics.EventsPerSec, p.SpeedupX)
		}
	}

	// The pooling A/B: replicate the headline case's spec with and
	// without a shared pool. More side-by-side runs than -iters so the
	// pool's steady state (second run onward) dominates the mean.
	if !*short {
		spec, ok := findCase(matrix, led.Headline)
		if !ok {
			fail(fmt.Errorf("headline case %s not in BenchMatrix", led.Headline))
		}
		poolRuns := 2 * *iters
		pr, err := measurePooling(spec, led.Headline, poolRuns)
		if err != nil {
			fail(fmt.Errorf("pooling A/B: %v", err))
		}
		pr.Decision = "slice-stack free lists (PR 5) fixed the PR 4 0.97x regression: the GC re-marked the pool's retained working set by chasing per-object nextFree chains every cycle; " +
			"with contiguous pointer arrays pooling measures at parity or better on time (>=1.0x interleaved; run-to-run noise is a few percent either way) and keeps the ~45% allocs/op win, " +
			"so RunAll workers keep pooling by default"
		led.Pooling = &pr
		fmt.Fprintf(os.Stderr, "%-28s %12d -> %d allocs/op with pool (%.1f%% fewer), %.0f -> %.0f events/sec\n",
			"pooling:"+pr.Case, pr.Without.AllocsPerOp, pr.With.AllocsPerOp,
			pr.AllocsReductionPct, pr.Without.EventsPerSec, pr.With.EventsPerSec)
	}

	// The observer A/B and its gate: the headline case with observability
	// off versus on, interleaved. Runs in -short too — this is the CI
	// smoke's observability gate: the off side is the headline spec
	// verbatim, so its allocs/op must match the headline measurement;
	// drift means disabled observability started costing something.
	{
		spec, ok := findCase(matrix, led.Headline)
		if !ok {
			fail(fmt.Errorf("headline case %s not in BenchMatrix", led.Headline))
		}
		ob, err := measureObserver(spec, led.Headline, *iters)
		if err != nil {
			fail(fmt.Errorf("observer A/B: %v", err))
		}
		// The gate is one-sided: the headline runs cold (the process's
		// first measurement absorbs one-time runtime warm-up allocs) so
		// the warm off side legitimately measures at or below it — but
		// an off side ABOVE the headline means the disabled-observability
		// fast paths started allocating (e.g. per-event work ahead of the
		// nil-sink check), which would exceed it by orders of magnitude.
		var drift float64
		for _, res := range led.Results {
			if res.Name == led.Headline && res.Current.AllocsPerOp > 0 {
				drift = 100 * (float64(ob.Off.AllocsPerOp) - float64(res.Current.AllocsPerOp)) / float64(res.Current.AllocsPerOp)
			}
		}
		if drift > 1 {
			fail(fmt.Errorf("observer gate: observability-off allocs/op (%d) exceeds the headline measurement by %+.2f%% — disabled observability must be free", ob.Off.AllocsPerOp, drift))
		}
		ob.Decision = fmt.Sprintf(
			"observability is pay-for-what-you-configure: the off side is the headline spec verbatim and its allocs/op held at or below the headline measurement (drift %+.2f%% this run; the gate fails above +1%%) — "+
				"the emit/sample fast paths are nil-sink/zero-interval branches with no allocation. The on side prices the full surface at once (SampleInterval=500 windowed sampling, per-PE monitor frames, a counting trace sink); "+
				"its cost scales with sink retention — a Collector or Spans sink pays for event storage on top of this figure",
			drift)
		led.Observer = &ob
		fmt.Fprintf(os.Stderr, "%-28s off %12d ns/op %10d allocs/op | on %+.1f%% ns/op, %+.1f%% allocs/op (off-vs-headline drift %+.2f%%)\n",
			"observer:"+ob.Case, ob.Off.NsPerOp, ob.Off.AllocsPerOp, ob.NsOverheadPct, ob.AllocsOverheadPct, drift)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		fail(err)
		runtime.GC()
		fail(pprof.WriteHeapProfile(f))
		fail(f.Close())
	}

	enc, err := json.MarshalIndent(led, "", "  ")
	fail(err)
	enc = append(enc, '\n')
	if *out == "-" {
		_, err = os.Stdout.Write(enc)
		fail(err)
		return
	}
	fail(os.WriteFile(*out, enc, 0o644))
	fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
}

// trimMatrix keeps only the named cases, in matrix order.
func trimMatrix(matrix []experiments.BenchCase, names ...string) []experiments.BenchCase {
	keep := map[string]bool{}
	for _, n := range names {
		keep[n] = true
	}
	var out []experiments.BenchCase
	for _, c := range matrix {
		if keep[c.Name] {
			out = append(out, c)
		}
	}
	return out
}

// findCase returns the named case's spec.
func findCase(matrix []experiments.BenchCase, name string) (experiments.RunSpec, bool) {
	for _, c := range matrix {
		if c.Name == name {
			return c.Spec, true
		}
	}
	return experiments.RunSpec{}, false
}

// measure runs the spec iters times and reports per-op means. Mallocs
// and bytes come from runtime.MemStats deltas (the same counters
// testing.B uses); a GC fence before the window keeps prior garbage out
// of the byte count.
func measure(spec experiments.RunSpec, iters int) (caseResult, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	var events uint64
	for i := 0; i < iters; i++ {
		r, err := spec.ExecuteErr()
		if err != nil {
			return caseResult{}, err
		}
		events = r.Stats.Events
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	n := uint64(iters)
	return caseResult{
		Iterations:  iters,
		EventsPerOp: events,
		Current: metricSet{
			NsPerOp:      elapsed.Nanoseconds() / int64(iters),
			AllocsPerOp:  int64((after.Mallocs - before.Mallocs) / n),
			BytesPerOp:   int64((after.TotalAlloc - before.TotalAlloc) / n),
			EventsPerSec: float64(events) * float64(iters) / elapsed.Seconds(),
		},
	}, nil
}

// schedSideFP is the per-side results digest the A/B compares.
type schedSideFP struct {
	events   uint64
	makespan int64
	result   int64
	jobs     int64
	busy     int64
}

// measureSched runs the spec iters times per scheduler, interleaved,
// and reports both metric sets plus whether results were identical.
func measureSched(spec experiments.RunSpec, name string, iters int) (schedResult, error) {
	spec.Topo.Build()
	spec.Workload.Build()
	sides := [2]string{"heap", "wheel"}
	var elapsed [2]time.Duration
	var allocs, bytes [2]uint64
	var events [2]uint64
	var fp [2]schedSideFP
	for i := 0; i < iters; i++ {
		for side, sched := range sides {
			s := spec
			s.Scheduler = sched
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			r, err := s.ExecuteErr()
			if err != nil {
				return schedResult{}, err
			}
			elapsed[side] += time.Since(start)
			runtime.ReadMemStats(&after)
			allocs[side] += after.Mallocs - before.Mallocs
			bytes[side] += after.TotalAlloc - before.TotalAlloc
			events[side] = r.Stats.Events
			fp[side] = schedSideFP{
				events:   r.Stats.Events,
				makespan: int64(r.Stats.Makespan),
				result:   r.Stats.Result,
				jobs:     r.Stats.JobsDone,
				busy:     int64(r.Stats.TotalBusy),
			}
		}
	}
	n := uint64(iters)
	mk := func(side int) metricSet {
		return metricSet{
			NsPerOp:      elapsed[side].Nanoseconds() / int64(iters),
			AllocsPerOp:  int64(allocs[side] / n),
			BytesPerOp:   int64(bytes[side] / n),
			EventsPerSec: float64(events[side]) * float64(iters) / elapsed[side].Seconds(),
		}
	}
	sr := schedResult{
		Case:       name,
		Iterations: iters,
		Heap:       mk(0),
		Wheel:      mk(1),
		Identical:  fp[0] == fp[1],
	}
	if sr.Wheel.NsPerOp > 0 {
		sr.WheelSpeedupX = float64(sr.Heap.NsPerOp) / float64(sr.Wheel.NsPerOp)
	}
	return sr, nil
}

// measurePooling runs the spec `runs` times per side — fresh execution
// versus a shared machine.Pool carried across the runs (what each
// RunAll worker does in a sweep) — and reports both per-op metric sets.
// Sides are interleaved run by run so clock drift and GC-state carry-
// over from earlier ledger sections cannot bias one side, and each side
// gets one untimed warm-up (the pooled side's first run fills an empty
// pool — pure cost, which a RunAll worker amortizes over a whole sweep).
func measurePooling(spec experiments.RunSpec, name string, runs int) (poolingResult, error) {
	pool := &machine.Pool{}
	sides := []*machine.Pool{nil, pool}
	var elapsed [2]time.Duration
	var allocs, bytes [2]uint64
	var events [2]uint64
	for _, p := range sides {
		if _, err := spec.ExecuteWithPool(p); err != nil {
			return poolingResult{}, err
		}
	}
	for i := 0; i < runs; i++ {
		for side, p := range sides {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			r, err := spec.ExecuteWithPool(p)
			if err != nil {
				return poolingResult{}, err
			}
			elapsed[side] += time.Since(start)
			runtime.ReadMemStats(&after)
			allocs[side] += after.Mallocs - before.Mallocs
			bytes[side] += after.TotalAlloc - before.TotalAlloc
			events[side] = r.Stats.Events
		}
	}
	var sets [2]metricSet
	n := uint64(runs)
	for side := range sides {
		sets[side] = metricSet{
			NsPerOp:      elapsed[side].Nanoseconds() / int64(runs),
			AllocsPerOp:  int64(allocs[side] / n),
			BytesPerOp:   int64(bytes[side] / n),
			EventsPerSec: float64(events[side]) * float64(runs) / elapsed[side].Seconds(),
		}
	}
	pr := poolingResult{Case: name, RunsPerSide: runs, Without: sets[0], With: sets[1]}
	if pr.Without.AllocsPerOp > 0 {
		pr.AllocsReductionPct = 100 * (1 - float64(pr.With.AllocsPerOp)/float64(pr.Without.AllocsPerOp))
	}
	if pr.With.NsPerOp > 0 {
		pr.SpeedupX = float64(pr.Without.NsPerOp) / float64(pr.With.NsPerOp)
	}
	return pr, nil
}

// measureShardScaling times the spec sequentially and at 1/2/4/8
// shards (clamped points beyond the machine size would be redundant;
// the case is 4096 PEs so all counts are real). Iterations interleave
// the shard counts so clock drift cannot favor one.
func measureShardScaling(spec experiments.RunSpec, name string, iters int) (shardScaling, error) {
	spec.Topo.Build()
	spec.Workload.Build()
	counts := []int{0, 1, 2, 4, 8}
	elapsed := make([]time.Duration, len(counts))
	allocs := make([]uint64, len(counts))
	bytes := make([]uint64, len(counts))
	events := make([]uint64, len(counts))
	for i := 0; i < iters; i++ {
		for ci, shards := range counts {
			s := spec
			s.Shards = shards
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			r, err := s.ExecuteErr()
			if err != nil {
				return shardScaling{}, fmt.Errorf("shards=%d: %w", shards, err)
			}
			elapsed[ci] += time.Since(start)
			runtime.ReadMemStats(&after)
			allocs[ci] += after.Mallocs - before.Mallocs
			bytes[ci] += after.TotalAlloc - before.TotalAlloc
			events[ci] = r.Stats.Events
		}
	}
	n := uint64(iters)
	mk := func(ci int) metricSet {
		return metricSet{
			NsPerOp:      elapsed[ci].Nanoseconds() / int64(iters),
			AllocsPerOp:  int64(allocs[ci] / n),
			BytesPerOp:   int64(bytes[ci] / n),
			EventsPerSec: float64(events[ci]) * float64(iters) / elapsed[ci].Seconds(),
		}
	}
	sc := shardScaling{Case: name, Iterations: iters, Sequential: mk(0)}
	for ci, shards := range counts[1:] {
		p := shardScalePoint{Shards: shards, Metrics: mk(ci + 1)}
		if p.Metrics.NsPerOp > 0 {
			p.SpeedupX = float64(sc.Sequential.NsPerOp) / float64(p.Metrics.NsPerOp)
		}
		sc.Points = append(sc.Points, p)
	}
	return sc, nil
}

// measureObserver runs the spec iters times per side — observability
// off (the spec verbatim) versus on (windowed sampling, per-PE monitor
// frames and a counting trace sink) — interleaved so clock drift cannot
// favor one, and reports both per-op metric sets plus the on side's
// overhead. The sink is fresh per run: sinks must not be shared across
// runs, and a persistent one would bill warm-up to the first iteration.
func measureObserver(spec experiments.RunSpec, name string, iters int) (observerOverhead, error) {
	spec.Topo.Build()
	spec.Workload.Build()
	on := spec
	on.SampleInterval = 500
	on.MonitorPE = true
	sides := [2]experiments.RunSpec{spec, on}
	var elapsed [2]time.Duration
	var allocs, bytes [2]uint64
	var events [2]uint64
	for i := 0; i < iters; i++ {
		for side := range sides {
			s := sides[side]
			if side == 1 {
				s.Trace = &trace.Counter{}
			}
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now()
			r, err := s.ExecuteErr()
			if err != nil {
				return observerOverhead{}, err
			}
			elapsed[side] += time.Since(start)
			runtime.ReadMemStats(&after)
			allocs[side] += after.Mallocs - before.Mallocs
			bytes[side] += after.TotalAlloc - before.TotalAlloc
			events[side] = r.Stats.Events
		}
	}
	n := uint64(iters)
	mk := func(side int) metricSet {
		return metricSet{
			NsPerOp:      elapsed[side].Nanoseconds() / int64(iters),
			AllocsPerOp:  int64(allocs[side] / n),
			BytesPerOp:   int64(bytes[side] / n),
			EventsPerSec: float64(events[side]) * float64(iters) / elapsed[side].Seconds(),
		}
	}
	ob := observerOverhead{Case: name, Iterations: iters, Off: mk(0), On: mk(1)}
	if ob.Off.NsPerOp > 0 {
		ob.NsOverheadPct = 100 * (float64(ob.On.NsPerOp)/float64(ob.Off.NsPerOp) - 1)
	}
	if ob.Off.AllocsPerOp > 0 {
		ob.AllocsOverheadPct = 100 * (float64(ob.On.AllocsPerOp)/float64(ob.Off.AllocsPerOp) - 1)
	}
	return ob, nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(2)
	}
}

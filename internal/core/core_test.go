package core

import (
	"strings"
	"testing"

	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func mustRun(t *testing.T, topo *topology.Topology, tree *workload.Tree, strat machine.Strategy) *machine.Stats {
	t.Helper()
	cfg := machine.DefaultConfig()
	st := machine.New(topo, tree, strat, cfg).Run()
	if !st.Completed {
		t.Fatalf("%s did not complete on %s", strat.Name(), topo.Name())
	}
	if st.Result != tree.Eval() {
		t.Fatalf("%s computed %d, want %d", strat.Name(), st.Result, tree.Eval())
	}
	return st
}

func TestConstructorValidation(t *testing.T) {
	bad := []func(){
		func() { NewCWN(0, 0) },
		func() { NewCWN(3, -1) },
		func() { NewCWN(3, 4) },
		func() { NewGradient(-1, 2, 20) },
		func() { NewGradient(2, 1, 20) },
		func() { NewGradient(1, 2, 0) },
		func() { NewACWN(0, 0, 0, 20) },
		func() { NewACWN(3, 1, -1, 20) },
		func() { NewACWN(3, 1, 2, 0) },
		func() { NewRandomWalk(0) },
		func() { NewWorkSteal(0, 1) },
		func() { NewWorkSteal(20, 0) },
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestNames(t *testing.T) {
	cases := []struct {
		s    machine.Strategy
		want string
	}{
		{NewCWN(9, 2), "CWN(r=9,h=2)"},
		{NewGradient(1, 2, 20), "GM(l=1,h=2,i=20)"},
		{NewLocal(), "Local"},
		{NewRoundRobin(), "RoundRobin"},
		{NewRandomWalk(3), "RandomWalk(3)"},
		{NewWorkSteal(20, 1), "WorkSteal(i=20,t=1)"},
	}
	for _, c := range cases {
		if got := c.s.Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
	if !strings.HasPrefix(NewACWN(5, 1, 3, 20).Name(), "ACWN(") {
		t.Error("ACWN name prefix wrong")
	}
}

func TestPaperParameters(t *testing.T) {
	// Table 1 of the paper.
	g := PaperCWNGrid()
	if g.Radius != 9 || g.Horizon != 2 {
		t.Errorf("grid CWN = r%d h%d, want r9 h2", g.Radius, g.Horizon)
	}
	d := PaperCWNDLM()
	if d.Radius != 5 || d.Horizon != 1 {
		t.Errorf("DLM CWN = r%d h%d, want r5 h1", d.Radius, d.Horizon)
	}
	gg := PaperGMGrid()
	if gg.LowWater != 1 || gg.HighWater != 2 || gg.Interval != 20 {
		t.Errorf("grid GM = %+v, want low1 high2 i20", gg)
	}
	gd := PaperGMDLM()
	if gd.LowWater != 1 || gd.HighWater != 1 || gd.Interval != 20 {
		t.Errorf("DLM GM = %+v, want low1 high1 i20", gd)
	}
}

func TestGradientClassify(t *testing.T) {
	s := NewGradient(1, 2, 20)
	cases := []struct {
		load int
		want peState
	}{
		{0, stateIdle},     // below low-water-mark
		{1, stateNeutral},  // between the marks
		{2, stateNeutral},  // at high-water-mark
		{3, stateAbundant}, // above high-water-mark
		{100, stateAbundant},
	}
	for _, c := range cases {
		if got := s.classify(c.load); got != c.want {
			t.Errorf("classify(%d) = %d, want %d", c.load, got, c.want)
		}
	}
	// DLM parameters: low 1, high 1 — neutral band is exactly load 1.
	s2 := NewGradient(1, 1, 20)
	if s2.classify(0) != stateIdle || s2.classify(1) != stateNeutral || s2.classify(2) != stateAbundant {
		t.Error("DLM watermark classification wrong")
	}
}

func TestCWNRadiusOneAcceptsFirstHop(t *testing.T) {
	tree := workload.NewFib(9)
	st := mustRun(t, topology.NewGrid(4, 4), tree, NewCWN(1, 0))
	goals := int64(tree.Count())
	if st.GoalHops.Count(0) != 1 {
		t.Errorf("%d goals at hop 0, want 1 (root)", st.GoalHops.Count(0))
	}
	if st.GoalHops.Count(1) != goals-1 {
		t.Errorf("%d goals at hop 1, want %d (radius 1 forces immediate stop)", st.GoalHops.Count(1), goals-1)
	}
}

func TestCWNHorizonForbidsEarlyStops(t *testing.T) {
	tree := workload.NewFib(11)
	st := mustRun(t, topology.NewGrid(5, 5), tree, NewCWN(6, 3))
	for h := 1; h < 3; h++ {
		if n := st.GoalHops.Count(h); n != 0 {
			t.Errorf("%d goals stopped at %d hops despite horizon 3", n, h)
		}
	}
	if st.GoalHops.Max() > 6 {
		t.Errorf("max hops %d > radius 6", st.GoalHops.Max())
	}
}

func TestCWNSpikesAtRadius(t *testing.T) {
	// The paper's Table 3 shows a spike at the radius ("A message that
	// has gone that far must stop at that distance"). With a generous
	// radius on a heavily loaded small machine, some goals must exhaust
	// their radius.
	tree := workload.NewFib(13)
	st := mustRun(t, topology.NewGrid(3, 3), tree, NewCWN(5, 1))
	if st.GoalHops.Count(5) == 0 {
		t.Error("no goals stopped at the radius — expected a spike under saturation")
	}
}

func TestRandomWalkExactSteps(t *testing.T) {
	tree := workload.NewFib(9)
	st := mustRun(t, topology.NewGrid(4, 4), tree, NewRandomWalk(3))
	goals := int64(tree.Count())
	if st.GoalHops.Count(0) != 1 || st.GoalHops.Count(3) != goals-1 {
		t.Errorf("random walk hops: %s, want all %d goals at exactly 3", st.GoalHops.String(), goals-1)
	}
}

func TestRoundRobinOneHop(t *testing.T) {
	tree := workload.NewFib(9)
	st := mustRun(t, topology.NewGrid(4, 4), tree, NewRoundRobin())
	goals := int64(tree.Count())
	if st.GoalHops.Count(1) != goals-1 {
		t.Errorf("round robin: %d goals at 1 hop, want %d", st.GoalHops.Count(1), goals-1)
	}
}

func TestRoundRobinRotates(t *testing.T) {
	// On a torus every PE has 4 neighbors; a root spawning 4+ goals must
	// hit at least 3 distinct neighbors early on.
	tree := workload.NewFullBinary(6)
	st := mustRun(t, topology.NewTorus(4, 4), tree, NewRoundRobin())
	busy := 0
	for i := range st.BusyPerPE {
		if st.BusyPerPE[i] > 0 {
			busy++
		}
	}
	if busy < 5 {
		t.Errorf("round robin reached only %d PEs", busy)
	}
}

func TestWorkStealMovesWork(t *testing.T) {
	tree := workload.NewFib(11)
	st := mustRun(t, topology.NewGrid(3, 3), tree, NewWorkSteal(20, 1))
	busy := 0
	for i := range st.BusyPerPE {
		if st.BusyPerPE[i] > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Error("work stealing never moved any work")
	}
	if st.Speedup() <= 1.0 {
		t.Errorf("work stealing speedup %.2f, want > 1", st.Speedup())
	}
}

func TestACWNSaturationReducesGoalTraffic(t *testing.T) {
	// On a small saturated machine, saturation control must cut goal
	// messages versus plain CWN with the same radius/horizon.
	tree := workload.NewFib(13)
	topo := topology.NewGrid(2, 2)
	cwn := mustRun(t, topo, tree, NewCWN(3, 1))
	acwn := NewACWN(3, 1, 2, 40)
	acwn.Redistribute = false // isolate saturation control
	ast := mustRun(t, topo, tree, acwn)
	if ast.MsgCounts[machine.MsgGoal] >= cwn.MsgCounts[machine.MsgGoal] {
		t.Errorf("ACWN goal messages %d >= CWN %d — saturation control ineffective",
			ast.MsgCounts[machine.MsgGoal], cwn.MsgCounts[machine.MsgGoal])
	}
}

func TestACWNRedistributeCompletes(t *testing.T) {
	tree := workload.NewFib(11)
	st := mustRun(t, topology.NewGrid(4, 4), tree, NewACWN(4, 1, 3, 40))
	if st.Speedup() <= 1.0 {
		t.Errorf("ACWN speedup %.2f, want > 1", st.Speedup())
	}
}

func TestGradientProximityBoundedByDiameter(t *testing.T) {
	// Run GM and inspect every node's proximity estimates at the end:
	// all must lie in [0, diameter+1].
	tree := workload.NewFib(10)
	topo := topology.NewGrid(4, 4)
	cfg := machine.DefaultConfig()
	s := NewGradient(1, 2, 20)
	m := machine.New(topo, tree, s, cfg)
	nodes := gmNodesOf(m)
	st := m.Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	max := int32(topo.Diameter() + 1)
	for _, n := range nodes {
		if n.myProx < 0 || n.myProx > max {
			t.Fatalf("PE %d proximity %d out of [0,%d]", n.pe.ID(), n.myProx, max)
		}
		for i, p := range n.nbrProx {
			if p < 0 || p > max {
				t.Fatalf("PE %d sees neighbor %d proximity %d out of range", n.pe.ID(), i, p)
			}
		}
	}
}

// gmNodesOf exposes the per-PE gradient nodes for white-box inspection.
func gmNodesOf(m *machine.Machine) []*gmNode {
	var out []*gmNode
	for i := 0; i < m.NumPEs(); i++ {
		if n, ok := nodeOf(m.PE(i)).(*gmNode); ok {
			out = append(out, n)
		}
	}
	return out
}

// nodeOf returns a PE's strategy node.
func nodeOf(pe *machine.PE) machine.NodeStrategy { return pe.Node() }

func TestGradientAbundantExports(t *testing.T) {
	// Two PEs, fat workload: the root PE becomes abundant and must ship
	// goals to its neighbor.
	tree := workload.NewFib(11)
	st := mustRun(t, topology.NewGrid(1, 2), tree, NewGradient(1, 2, 20))
	if st.BusyPerPE[1] == 0 {
		t.Fatal("GM never exported work to the idle neighbor")
	}
	if st.MsgCounts[machine.MsgGoal] == 0 {
		t.Fatal("GM sent no goal messages")
	}
}

func TestGradientIgnoresForeignControl(t *testing.T) {
	// A gmNode must ignore payloads it does not understand.
	tree := workload.NewFib(8)
	topo := topology.NewGrid(1, 2)
	m := machine.New(topo, tree, NewGradient(1, 2, 20), machine.DefaultConfig())
	n, ok := nodeOf(m.PE(0)).(*gmNode)
	if !ok {
		t.Fatal("node is not a gmNode")
	}
	n.HandleEvent(machine.Event{Kind: machine.Control, From: 1, Payload: "garbage"}) // must not panic
	st := m.Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
}

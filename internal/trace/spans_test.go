package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// spanEvents is a hand-built lifecycle for two goals: goal 7 created on
// PE 0, hopped to PE 1, accepted, executed there, response back to
// PE 0; goal 8 created and executed in place on PE 2, cut off before
// its response delivered.
func spanEvents() []Event {
	return []Event{
		{At: 0, Kind: GoalCreated, PE: 0, Other: -1, Goal: 7},
		{At: 2, Kind: GoalSent, PE: 0, Other: 1, Goal: 7},
		{At: 4, Kind: GoalAccepted, PE: 1, Other: -1, Goal: 7},
		{At: 5, Kind: GoalCreated, PE: 2, Other: -1, Goal: 8},
		{At: 6, Kind: GoalAccepted, PE: 2, Other: -1, Goal: 8},
		{At: 7, Kind: GoalExecStarted, PE: 1, Other: -1, Goal: 7},
		{At: 9, Kind: GoalExecStarted, PE: 2, Other: -1, Goal: 8},
		{At: 17, Kind: GoalExecuted, PE: 1, Other: -1, Goal: 7},
		{At: 18, Kind: RespSent, PE: 1, Other: 0, Goal: 7},
		{At: 19, Kind: GoalExecuted, PE: 2, Other: -1, Goal: 8},
		{At: 20, Kind: RespDelivered, PE: 0, Other: -1, Goal: 7},
		{At: 21, Kind: RespSent, PE: 2, Other: 0, Goal: 8},
	}
}

func TestSpansFold(t *testing.T) {
	var sp Spans
	for _, ev := range spanEvents() {
		sp.Record(ev)
	}
	if sp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", sp.Len())
	}
	s7 := sp.Span(7)
	if s7 == nil {
		t.Fatal("goal 7 has no span")
	}
	if s7.CreatedAt != 0 || s7.CreatedPE != 0 {
		t.Errorf("goal 7 creation = (%d, PE %d), want (0, PE 0)", s7.CreatedAt, s7.CreatedPE)
	}
	if len(s7.Hops) != 1 || s7.Hops[0] != (Hop{At: 2, From: 0, To: 1}) {
		t.Errorf("goal 7 hops = %+v", s7.Hops)
	}
	if len(s7.Accepts) != 1 || s7.Accepts[0] != (Accept{At: 4, PE: 1}) {
		t.Errorf("goal 7 accepts = %+v", s7.Accepts)
	}
	if s7.ExecStart != 7 || s7.ExecEnd != 17 || s7.ExecPE != 1 {
		t.Errorf("goal 7 exec = [%d,%d] on PE %d, want [7,17] on PE 1", s7.ExecStart, s7.ExecEnd, s7.ExecPE)
	}
	if s7.RespSentAt != 18 || s7.RespFrom != 1 || s7.RespTo != 0 || s7.RespDeliveredAt != 20 {
		t.Errorf("goal 7 response = %+v", s7)
	}
	s8 := sp.Span(8)
	if s8.RespDeliveredAt != -1 {
		t.Errorf("goal 8 response delivery should be unset, got %d", s8.RespDeliveredAt)
	}
	if got := s8.end(); got != 21 {
		t.Errorf("goal 8 end = %d, want 21 (the dangling RespSent)", got)
	}
	all := sp.All()
	if len(all) != 2 || all[0].Goal != 7 || all[1].Goal != 8 {
		t.Errorf("All not in goal-ID order: %v, %v", all[0].Goal, all[1].Goal)
	}
}

func TestSpansWritePerfettoValidJSON(t *testing.T) {
	var sp Spans
	for _, ev := range spanEvents() {
		sp.Record(ev)
	}
	var buf bytes.Buffer
	if err := sp.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	// 3 PEs * 2 metadata + goal 7 (b, e, 1 hop i, X, resp b+e) + goal 8
	// (b, e, X, resp b+e — no hops).
	if want := 6 + 6 + 5; len(doc.TraceEvents) != want {
		t.Fatalf("emitted %d events, want %d", len(doc.TraceEvents), want)
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := ev["ph"].(string); !ok {
			t.Fatalf("event missing ph: %v", ev)
		}
	}
}

func TestSpansEmpty(t *testing.T) {
	var sp Spans
	var buf bytes.Buffer
	if err := sp.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty export is not valid JSON: %s", buf.String())
	}
	if sp.Len() != 0 || sp.Span(1) != nil || len(sp.All()) != 0 {
		t.Error("empty Spans should report nothing")
	}
}

func TestCollectorGrow(t *testing.T) {
	var c Collector
	c.Record(Event{Goal: 1})
	c.Grow(100)
	if cap(c.Events)-len(c.Events) < 100 {
		t.Fatalf("Grow(100) left headroom %d", cap(c.Events)-len(c.Events))
	}
	if len(c.Events) != 1 || c.Events[0].Goal != 1 {
		t.Fatal("Grow must preserve recorded events")
	}
	before := cap(c.Events)
	c.Grow(50) // headroom already present: no-op
	if cap(c.Events) != before {
		t.Errorf("Grow with sufficient headroom reallocated: %d -> %d", before, cap(c.Events))
	}
	c.Grow(0)
	c.Grow(-5) // no-ops, must not panic
}

func TestMonitorBoundZeroRestoresExact(t *testing.T) {
	var m Monitor
	m.Bound(4)
	for i := 0; i < 32; i++ {
		m.Append(0, []float64{float64(i)})
	}
	if !m.Bounded() {
		t.Fatal("expected thinning after 32 frames under Bound(4)")
	}
	m.Bound(0)
	n := m.Len()
	for i := 0; i < 10; i++ {
		m.Append(0, []float64{1})
	}
	if m.Len() != n+10 {
		t.Fatalf("after Bound(0) every frame must be retained: %d -> %d", n, m.Len())
	}
	for _, bad := range []int{1, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bound(%d) did not panic", bad)
				}
			}()
			m.Bound(bad)
		}()
	}
}

package experiments

import "testing"

func TestClaimsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("claim checks run dozens of simulations")
	}
	results := RunClaims(true, 0)
	if len(results) != len(Claims()) {
		t.Fatalf("got %d results for %d claims", len(results), len(Claims()))
	}
	for _, r := range results {
		if r.Detail == "" {
			t.Errorf("%s: empty detail", r.ID)
		}
		// C4 and C9 are scale-sensitive (GM needs the big fib to reach
		// its plateau; redistribution pays off on loaded machines):
		// tolerate failure at quick scale but log it.
		if !r.Pass {
			switch r.ID {
			case "C4-gm-holds-peak", "C9-acwn-improves", "C2-grid-margins":
				t.Logf("%s failed at quick scale (known scale-sensitivity): %s", r.ID, r.Detail)
			default:
				t.Errorf("%s failed: %s", r.ID, r.Detail)
			}
		}
	}
}

func TestClaimIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Claims() {
		if seen[c.ID] {
			t.Errorf("duplicate claim ID %s", c.ID)
		}
		seen[c.ID] = true
		if c.Statement == "" || c.Check == nil {
			t.Errorf("claim %s incomplete", c.ID)
		}
	}
}

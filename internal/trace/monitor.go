package trace

import (
	"fmt"
	"io"

	"cwnsim/internal/report"
	"cwnsim/internal/sim"
)

// Frame is one sampling instant of the load monitor: every PE's
// utilization over the window that just ended.
type Frame struct {
	At   sim.Time
	Util []float64 // per PE, in [0,1]
}

// Monitor accumulates per-PE utilization frames — the data ORACLE
// shipped to its color graphics display. The machine appends a frame
// every sample interval when monitoring is enabled. Frames dominate a
// monitored run's sample memory (one float64 per PE per frame), so
// Bound caps them the same way metrics.Series.Bound caps a series.
type Monitor struct {
	Frames []Frame

	limit  int // 0 = retain every frame
	stride int // record every stride-th appended frame (1 = all)
	skip   int
}

// Bound caps the monitor at limit retained frames: past the cap, every
// other frame is dropped and the stride between future recordings
// doubles, exactly like metrics.Series.Bound. A retained frame is
// exact; only the flip-book's frame rate halves per doubling. Bound(0)
// restores the documented default — retain every frame from here on —
// and limit 1 (or negative) panics; the contract is shared with
// metrics.Series.Bound.
func (m *Monitor) Bound(limit int) {
	if limit == 0 {
		m.limit, m.stride, m.skip = 0, 1, 0
		return
	}
	if limit < 2 {
		panic("trace: Monitor.Bound needs limit 0 (exact) or >= 2")
	}
	m.limit = limit
	if m.stride == 0 {
		m.stride = 1
	}
	for len(m.Frames) > m.limit {
		m.thin()
	}
}

// Bounded reports whether frames have been dropped to stay under the
// bound.
func (m *Monitor) Bounded() bool { return m.stride > 1 }

func (m *Monitor) thin() {
	kept := m.Frames[:0]
	for i := 0; i < len(m.Frames); i += 2 {
		kept = append(kept, m.Frames[i])
	}
	// Drop the references so the dead frames' utilization slices are
	// collectable.
	for i := len(kept); i < len(m.Frames); i++ {
		m.Frames[i] = Frame{}
	}
	m.Frames = kept
	m.stride *= 2
	m.skip = 0
}

// Append adds a frame (the utilization slice is copied; past a bound,
// only every stride-th frame is kept).
func (m *Monitor) Append(at sim.Time, util []float64) {
	if m.stride > 1 {
		if m.skip++; m.skip < m.stride {
			return
		}
		m.skip = 0
	}
	cp := make([]float64, len(util))
	copy(cp, util)
	m.Frames = append(m.Frames, Frame{At: at, Util: cp})
	if m.limit > 0 && len(m.Frames) > m.limit {
		m.thin()
	}
}

// Len returns the number of frames.
func (m *Monitor) Len() int { return len(m.Frames) }

// ActivePEs returns how many PEs were busy at all in frame i.
func (m *Monitor) ActivePEs(i int) int {
	n := 0
	for _, u := range m.Frames[i].Util {
		if u > 0 {
			n++
		}
	}
	return n
}

// Render writes a selection of frames as heat maps laid out on a
// rows×cols PE grid: a flip-book of the load spreading across the
// machine ("red: busy, blue: idle" in ASCII shades). every selects the
// stride between rendered frames (1 = all).
func (m *Monitor) Render(w io.Writer, rows, cols, every int) {
	if every < 1 {
		every = 1
	}
	for i := 0; i < len(m.Frames); i += every {
		f := m.Frames[i]
		hm := report.NewHeatmap(fmt.Sprintf("t=%d  (%d/%d PEs active)", f.At, m.ActivePEs(i), len(f.Util)), rows, cols)
		copy(hm.Values, f.Util)
		hm.Render(w)
	}
}

// WriteCSV emits the frames in ORACLE's machine-readable monitor format:
// one row per frame, first column the time, then one utilization column
// per PE — suitable for driving an external plotting program.
func (m *Monitor) WriteCSV(w io.Writer) error {
	for _, f := range m.Frames {
		if _, err := fmt.Fprintf(w, "%d", f.At); err != nil {
			return err
		}
		for _, u := range f.Util {
			if _, err := fmt.Fprintf(w, ",%.4f", u); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

package topology

import "fmt"

// NewHypercube returns a binary hypercube of the given dimension:
// 2^dim PEs, with PEs adjacent iff their IDs differ in exactly one bit.
// Diameter and degree both equal dim. Used by the paper's appendix
// experiments (dimensions 5–7).
func NewHypercube(dim int) *Topology {
	if dim < 0 || dim > 20 {
		panic("topology: hypercube dimension out of range [0,20]")
	}
	n := 1 << uint(dim)
	var chans []Channel
	for pe := 0; pe < n; pe++ {
		for b := 0; b < dim; b++ {
			other := pe ^ (1 << uint(b))
			if other > pe { // add each edge once
				chans = append(chans, Channel{Members: []int{pe, other}})
			}
		}
	}
	return build(fmt.Sprintf("hypercube-d%d", dim), n, chans)
}

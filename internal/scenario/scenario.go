package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cwnsim/internal/sim"
)

// Kind discriminates perturbation events.
type Kind uint8

const (
	// SlowPE sets the targets' service speed to Factor × nominal (0.5 =
	// half speed). The setting is absolute, not compounding: a second
	// slow event replaces the first rather than stacking on it.
	// In-flight service rescales proportionally.
	SlowPE Kind = iota
	// RestorePE returns the targets to their nominal speed.
	RestorePE
	// FailPE blacks out the targets' compute: service stops, queued and
	// arriving goals are evacuated to the nearest live PE, responses and
	// pending tasks freeze in place.
	FailPE
	// RecoverPE brings failed (or crashed) targets back; work frozen by
	// a blackout resumes — a crashed PE comes back empty.
	RecoverPE
	// CrashPE is the state-loss failure: the targets' queued and
	// in-flight goals, queued responses and pending tasks are destroyed
	// (not evacuated). Every job that lost state is aborted — its
	// surviving goals machine-wide are discarded — and retried from its
	// root, keeping its original injection time. RecoverPE brings a
	// crashed PE back.
	CrashPE
	// Chaos is a random-failure generator, not a concrete perturbation:
	// at machine construction it expands (Script.Expand) into a
	// deterministic timeline of single-PE failures and recoveries drawn
	// from a salted stream of its Seed — exponential inter-failure gaps
	// with mean MTBF and repair times with mean MTTR, over uniformly
	// chosen PEs, crash-mode when Crash is set. Same seed, machine size
	// and horizon give the identical timeline.
	Chaos
	// DegradeLink multiplies the occupancy time of every channel between
	// A and B by Factor; Factor 0 takes the link down entirely. The
	// scripted state is absolute: a positive factor on a downed link
	// brings it back up degraded, flushing messages held meanwhile.
	DegradeLink
	// RestoreLink returns the channels between A and B to nominal,
	// flushing any messages held during an outage.
	RestoreLink
	// LoadShock multiplies the arrival process's offered rate by Factor
	// for subsequently drawn inter-arrival gaps (1 restores nominal).
	LoadShock
	// Checkpoint is a generator like Chaos, not a concrete perturbation:
	// Script.Expand resolves it into CheckpointTick events every Every
	// units of virtual time, from At+Every until the horizon (or Until).
	// Each tick makes the machine's pending-task state as of the tick
	// durable, at Cost service time per live PE, so a crash retry
	// resumes from the last tick's subtree frontier instead of the root.
	Checkpoint
	// CheckpointTick is one concrete periodic snapshot: every live PE
	// pays Cost service time (a busy PE's in-flight service extends by
	// Cost; an idle PE pays it at its next service start), and jobs'
	// execution progress as of the tick becomes the durable frontier
	// crash retries resume from.
	CheckpointTick
)

func (k Kind) String() string {
	switch k {
	case SlowPE:
		return "slow"
	case RestorePE:
		return "restore"
	case FailPE:
		return "fail"
	case RecoverPE:
		return "recover"
	case CrashPE:
		return "crash"
	case Chaos:
		return "chaos"
	case DegradeLink:
		return "degradelink"
	case RestoreLink:
		return "restorelink"
	case LoadShock:
		return "shock"
	case Checkpoint:
		return "checkpoint"
	case CheckpointTick:
		return "ckpt"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scripted perturbation, firing at virtual time At.
type Event struct {
	At   sim.Time `json:"at"`
	Kind Kind     `json:"kind"`

	// PEs are explicit target PEs for the PE kinds. When nil, Frac
	// selects targets instead; for RestorePE/RecoverPE, nil-and-zero
	// means "every slowed/failed PE".
	PEs []int `json:"pes,omitempty"`
	// Frac selects round(Frac×P) targets when PEs is nil — the
	// highest-numbered PEs, a deterministic choice that spares the
	// injection PE (RootPE defaults to 0) until Frac reaches 1.
	Frac float64 `json:"frac,omitempty"`

	// Factor is the SlowPE speed multiplier, the DegradeLink occupancy
	// multiplier (0 = outage), or the LoadShock rate multiplier.
	Factor float64 `json:"factor,omitempty"`

	// A and B are the link endpoints for DegradeLink/RestoreLink; every
	// channel connecting them is affected.
	A int `json:"a,omitempty"`
	B int `json:"b,omitempty"`

	// Chaos generator parameters (Kind Chaos only). MTBF and MTTR are
	// the mean time between failures and mean time to repair of the
	// exponential processes; Seed salts the dedicated generator stream;
	// Until bounds the generated timeline (0 = the run's horizon);
	// Crash selects crash-with-state-loss failures instead of
	// blackouts.
	MTBF  float64  `json:"mtbf,omitempty"`
	MTTR  float64  `json:"mttr,omitempty"`
	Seed  int64    `json:"seed,omitempty"`
	Until sim.Time `json:"until,omitempty"`
	Crash bool     `json:"crash,omitempty"`

	// Domain shapes chaos draws into correlated failure domains instead
	// of single uniform PEs: "rack" strikes a contiguous block of DomA
	// consecutive PE indices; "block" strikes a DomA×DomB axis-aligned
	// tile of the row-major √P×√P grid. Empty means uncorrelated
	// single-PE draws (the pre-domain behavior, bit-for-bit).
	Domain string `json:"domain,omitempty"`
	DomA   int    `json:"doma,omitempty"`
	DomB   int    `json:"domb,omitempty"`

	// Checkpoint generator parameters (Kind Checkpoint; Cost is shared
	// with the concrete CheckpointTick). Every is the snapshot period;
	// Cost the service time every live PE pays per tick; Until bounds
	// the tick timeline (0 = the run's horizon).
	Every sim.Time `json:"every,omitempty"`
	Cost  sim.Time `json:"cost,omitempty"`
}

// String renders the event in the parseable text form.
func (e Event) String() string {
	if e.Kind == Chaos {
		var b strings.Builder
		fmt.Fprintf(&b, "chaos:mtbf=%g:mttr=%g", e.MTBF, e.MTTR)
		if e.Until > 0 {
			fmt.Fprintf(&b, ":until=%d", e.Until)
		}
		if e.Crash {
			b.WriteString(":crash")
		}
		switch e.Domain {
		case "rack":
			fmt.Fprintf(&b, ":domain=rack:%d", e.DomA)
		case "block":
			fmt.Fprintf(&b, ":domain=block:%dx%d", e.DomA, e.DomB)
		}
		fmt.Fprintf(&b, "@seed=%d", e.Seed)
		return b.String()
	}
	if e.Kind == Checkpoint {
		var b strings.Builder
		fmt.Fprintf(&b, "checkpoint:every=%d:cost=%d", e.Every, e.Cost)
		if e.Until > 0 {
			fmt.Fprintf(&b, ":until=%d", e.Until)
		}
		fmt.Fprintf(&b, "@t=%d", e.At)
		return b.String()
	}
	var b strings.Builder
	b.WriteString(e.Kind.String())
	switch e.Kind {
	case SlowPE, RestorePE, FailPE, RecoverPE, CrashPE:
		if e.PEs != nil {
			ids := make([]string, len(e.PEs))
			for i, pe := range e.PEs {
				ids[i] = fmt.Sprintf("%d", pe)
			}
			fmt.Fprintf(&b, ":pes=%s", strings.Join(ids, "+"))
		} else if e.Frac > 0 {
			fmt.Fprintf(&b, ":pes=%g%%", 100*e.Frac)
		}
		if e.Kind == SlowPE {
			fmt.Fprintf(&b, ":x=%g", e.Factor)
		}
	case DegradeLink:
		fmt.Fprintf(&b, ":a=%d:b=%d:x=%g", e.A, e.B, e.Factor)
	case RestoreLink:
		fmt.Fprintf(&b, ":a=%d:b=%d", e.A, e.B)
	case LoadShock:
		fmt.Fprintf(&b, ":x=%g", e.Factor)
	case CheckpointTick:
		fmt.Fprintf(&b, ":cost=%d", e.Cost)
	}
	fmt.Fprintf(&b, "@t=%d", e.At)
	return b.String()
}

// Targets resolves the event's PE targets on a machine of numPEs
// processors: the explicit list when given, otherwise the round(Frac×P)
// highest-numbered PEs (at least one when Frac > 0). Nil when the event
// names no targets (restore/recover-all).
func (e Event) Targets(numPEs int) []int {
	if e.PEs != nil {
		return e.PEs
	}
	if e.Frac <= 0 {
		return nil
	}
	k := int(math.Round(e.Frac * float64(numPEs)))
	if k < 1 {
		k = 1
	}
	if k > numPEs {
		k = numPEs
	}
	out := make([]int, k)
	for i := range out {
		out[i] = numPEs - k + i
	}
	return out
}

// Script is a deterministic timeline of perturbation events. The zero
// value (and nil) is the empty scenario: nothing is scheduled and a run
// is bit-for-bit identical to one without a script.
type Script struct {
	Events []Event `json:"events"`
}

// Empty reports whether the script schedules nothing.
func (s *Script) Empty() bool { return s == nil || len(s.Events) == 0 }

// String renders the script in the parseable comma-separated text form.
func (s *Script) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Events))
	for i, e := range s.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Sorted returns the events in firing order (stable by At, preserving
// script order among same-time events).
func (s *Script) Sorted() []Event {
	if s.Empty() {
		return nil
	}
	out := make([]Event, len(s.Events))
	copy(out, s.Events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// DisruptAt returns the time of the first event — where the environment
// first shifts (Never for an empty script).
func (s *Script) DisruptAt() sim.Time {
	if s.Empty() {
		return sim.Never
	}
	t := s.Events[0].At
	for _, e := range s.Events[1:] {
		if e.At < t {
			t = e.At
		}
	}
	return t
}

// RestoreAt returns the time of the last event — after which the
// environment holds steady and recovery can be measured (Never for an
// empty script).
func (s *Script) RestoreAt() sim.Time {
	if s.Empty() {
		return sim.Never
	}
	t := s.Events[0].At
	for _, e := range s.Events[1:] {
		if e.At > t {
			t = e.At
		}
	}
	return t
}

// Validate checks the script against a machine of numPEs processors,
// returning a descriptive error for events that could not apply: PE
// indices out of range, fractions outside (0,1], non-finite or negative
// factors, zero/negative speed multipliers, link endpoints equal, or
// negative times. Link adjacency is checked by the machine at apply
// time (it owns the topology).
func (s *Script) Validate(numPEs int) error {
	if s.Empty() {
		return nil
	}
	finite := func(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
	for i, e := range s.Events {
		if e.At < 0 {
			return fmt.Errorf("scenario: event %d (%s): negative time %d", i, e.Kind, e.At)
		}
		switch e.Kind {
		case SlowPE, RestorePE, FailPE, RecoverPE, CrashPE:
			for _, pe := range e.PEs {
				if pe < 0 || pe >= numPEs {
					return fmt.Errorf("scenario: event %d (%s): PE %d out of range [0,%d)", i, e.Kind, pe, numPEs)
				}
			}
			if e.PEs == nil && e.Frac != 0 && (e.Frac < 0 || e.Frac > 1 || !finite(e.Frac)) {
				return fmt.Errorf("scenario: event %d (%s): fraction %g outside (0,1]", i, e.Kind, e.Frac)
			}
			if e.PEs == nil && e.Frac == 0 && (e.Kind == SlowPE || e.Kind == FailPE || e.Kind == CrashPE) {
				return fmt.Errorf("scenario: event %d (%s): no targets (need pes=... or a fraction)", i, e.Kind)
			}
			if e.Kind == FailPE || e.Kind == CrashPE {
				// A single event whose targets cover the whole machine is
				// guaranteed to die at apply time (the machine keeps one
				// PE live); reject it before any simulation time is
				// spent. Cumulative whole-machine failure across several
				// events stays a runtime panic — it depends on recovers
				// in between.
				distinct := make(map[int]struct{}, numPEs)
				for _, pe := range e.Targets(numPEs) {
					distinct[pe] = struct{}{}
				}
				if len(distinct) >= numPEs {
					return fmt.Errorf("scenario: event %d (%s): targets every PE — the machine needs at least one live PE", i, e.Kind)
				}
			}
			if e.Kind == SlowPE && (!finite(e.Factor) || e.Factor <= 0) {
				return fmt.Errorf("scenario: event %d (slow): speed factor %g must be finite and > 0", i, e.Factor)
			}
		case DegradeLink, RestoreLink:
			if e.A < 0 || e.A >= numPEs || e.B < 0 || e.B >= numPEs {
				return fmt.Errorf("scenario: event %d (%s): endpoints %d-%d out of range [0,%d)", i, e.Kind, e.A, e.B, numPEs)
			}
			if e.A == e.B {
				return fmt.Errorf("scenario: event %d (%s): link endpoints coincide (%d)", i, e.Kind, e.A)
			}
			if e.Kind == DegradeLink && (!finite(e.Factor) || e.Factor < 0) {
				return fmt.Errorf("scenario: event %d (degradelink): factor %g must be finite and >= 0", i, e.Factor)
			}
		case LoadShock:
			if !finite(e.Factor) || e.Factor <= 0 {
				return fmt.Errorf("scenario: event %d (shock): rate multiplier %g must be finite and > 0", i, e.Factor)
			}
		case Chaos:
			if !finite(e.MTBF) || e.MTBF <= 0 {
				return fmt.Errorf("scenario: event %d (chaos): mtbf %g must be finite and > 0", i, e.MTBF)
			}
			if !finite(e.MTTR) || e.MTTR <= 0 {
				return fmt.Errorf("scenario: event %d (chaos): mttr %g must be finite and > 0", i, e.MTTR)
			}
			if e.Until < 0 {
				return fmt.Errorf("scenario: event %d (chaos): negative until %d", i, e.Until)
			}
			switch e.Domain {
			case "":
			case "rack":
				if e.DomA < 1 {
					return fmt.Errorf("scenario: event %d (chaos): rack domain size %d must be >= 1", i, e.DomA)
				}
			case "block":
				if e.DomA < 1 || e.DomB < 1 {
					return fmt.Errorf("scenario: event %d (chaos): block domain %dx%d must have positive sides", i, e.DomA, e.DomB)
				}
			default:
				return fmt.Errorf("scenario: event %d (chaos): unknown domain shape %q (want rack or block)", i, e.Domain)
			}
		case Checkpoint:
			if e.Every < 1 {
				return fmt.Errorf("scenario: event %d (checkpoint): period %d must be >= 1", i, e.Every)
			}
			if e.Cost < 0 {
				return fmt.Errorf("scenario: event %d (checkpoint): negative cost %d", i, e.Cost)
			}
			if e.Until < 0 {
				return fmt.Errorf("scenario: event %d (checkpoint): negative until %d", i, e.Until)
			}
		case CheckpointTick:
			if e.Cost < 0 {
				return fmt.Errorf("scenario: event %d (ckpt): negative cost %d", i, e.Cost)
			}
		default:
			return fmt.Errorf("scenario: event %d: unknown kind %d", i, int(e.Kind))
		}
	}
	return nil
}

// Blackout returns the acceptance scenario: fail frac of the PEs at
// failAt and recover them at recoverAt.
func Blackout(frac float64, failAt, recoverAt sim.Time) *Script {
	return &Script{Events: []Event{
		{At: failAt, Kind: FailPE, Frac: frac},
		{At: recoverAt, Kind: RecoverPE},
	}}
}

package topology

import "testing"

func TestTorus3D(t *testing.T) {
	topo := NewTorus3D(4, 4, 4)
	if topo.Size() != 64 {
		t.Fatalf("size = %d", topo.Size())
	}
	// Every PE has 6 neighbors on a full 3-D torus.
	for pe := 0; pe < topo.Size(); pe++ {
		if got := len(topo.Neighbors(pe)); got != 6 {
			t.Fatalf("PE %d degree = %d, want 6", pe, got)
		}
	}
	if got, want := topo.Diameter(), 6; got != want {
		t.Errorf("diameter = %d, want %d", got, want)
	}
	// Degenerate thin torus still builds and connects.
	thin := NewTorus3D(1, 2, 3)
	if thin.Size() != 6 {
		t.Fatalf("thin size = %d", thin.Size())
	}
	if thin.Diameter() <= 0 {
		t.Error("thin torus disconnected")
	}
}

func TestTorus3DVsTorus2DDiameter(t *testing.T) {
	// Same PE count, smaller diameter: 4x4x4 (diam 6) vs 8x8 (diam 8).
	if NewTorus3D(4, 4, 4).Diameter() >= NewTorus(8, 8).Diameter() {
		t.Error("3-D torus should have smaller diameter than 2-D at 64 PEs")
	}
}

func TestChordalRing(t *testing.T) {
	topo := NewChordalRing(16, 4)
	if topo.Size() != 16 {
		t.Fatalf("size = %d", topo.Size())
	}
	// Degree 4: two ring links + two chords (stride 4 both directions).
	for pe := 0; pe < topo.Size(); pe++ {
		if got := len(topo.Neighbors(pe)); got != 4 {
			t.Fatalf("PE %d degree = %d, want 4", pe, got)
		}
	}
	// Chords shrink the diameter below the plain ring's.
	if topo.Diameter() >= NewRing(16).Diameter() {
		t.Errorf("chordal diameter %d not smaller than ring %d",
			topo.Diameter(), NewRing(16).Diameter())
	}
}

func TestChordalRingDegenerateChord(t *testing.T) {
	// chord == n/2 links i and i+n/2 once (not twice); no duplicates.
	topo := NewChordalRing(8, 4)
	want := 8 + 4 // 8 ring links, 4 distinct diameter chords
	if got := len(topo.Channels()); got != want {
		t.Errorf("channels = %d, want %d", got, want)
	}
}

func TestExtraConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewTorus3D(0, 2, 2) },
		func() { NewChordalRing(2, 2) },
		func() { NewChordalRing(10, 1) },
		func() { NewChordalRing(10, 6) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestExtraTopologiesRouteCleanly(t *testing.T) {
	for _, topo := range []*Topology{NewTorus3D(3, 3, 3), NewChordalRing(12, 3)} {
		n := topo.Size()
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				steps, cur := 0, a
				for cur != b {
					cur = topo.NextHop(cur, b)
					steps++
					if steps > n {
						t.Fatalf("%s: routing loop %d->%d", topo.Name(), a, b)
					}
				}
				if steps != topo.Dist(a, b) {
					t.Fatalf("%s: route %d->%d = %d hops, Dist %d", topo.Name(), a, b, steps, topo.Dist(a, b))
				}
			}
		}
	}
}

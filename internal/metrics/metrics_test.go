package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Total() != 0 || h.Max() != -1 || h.Mean() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	for _, v := range []int{0, 1, 1, 3, 3, 3} {
		h.Add(v)
	}
	if h.Total() != 6 {
		t.Errorf("Total = %d, want 6", h.Total())
	}
	if h.Count(1) != 2 || h.Count(3) != 3 || h.Count(2) != 0 || h.Count(99) != 0 {
		t.Errorf("bucket counts wrong: %v", h.Counts())
	}
	if h.Max() != 3 {
		t.Errorf("Max = %d, want 3", h.Max())
	}
	want := (0.0 + 1 + 1 + 3 + 3 + 3) / 6
	if math.Abs(h.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %f, want %f", h.Mean(), want)
	}
	if got := h.Counts(); len(got) != 4 {
		t.Errorf("Counts len = %d, want 4", len(got))
	}
	if h.String() == "" {
		t.Error("empty String")
	}
}

func TestHistPercentile(t *testing.T) {
	var h Hist
	for v := 1; v <= 100; v++ {
		h.Add(v)
	}
	if p := h.Percentile(0.5); p != 50 {
		t.Errorf("P50 = %d, want 50", p)
	}
	if p := h.Percentile(0.99); p != 99 {
		t.Errorf("P99 = %d, want 99", p)
	}
	if p := h.Percentile(1.0); p != 100 {
		t.Errorf("P100 = %d, want 100", p)
	}
	if p := h.Percentile(0); p != 1 {
		t.Errorf("P0 = %d, want 1", p)
	}
	var empty Hist
	if empty.Percentile(0.5) != 0 {
		t.Error("empty percentile != 0")
	}
}

func TestHistNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var h Hist
	h.Add(-1)
}

func TestSummaryAgainstDirectComputation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	var s Summary
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 10
		s.Add(xs[i])
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var varr float64
	for _, x := range xs {
		varr += (x - mean) * (x - mean)
	}
	varr /= float64(len(xs) - 1)
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", s.Mean(), mean)
	}
	if math.Abs(s.Var()-varr) > 1e-9 {
		t.Errorf("Var = %v, want %v", s.Var(), varr)
	}
	if s.N() != 1000 {
		t.Errorf("N = %d", s.N())
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestSummaryMinMax(t *testing.T) {
	var s Summary
	if s.Min() != 0 || s.Max() != 0 || s.Var() != 0 {
		t.Fatal("zero-value summary not zeroed")
	}
	s.Add(5)
	s.Add(-2)
	s.Add(9)
	if s.Min() != -2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want -2/9", s.Min(), s.Max())
	}
}

func TestQuickSummaryMeanBounds(t *testing.T) {
	f := func(raw []int16) bool {
		var s Summary
		if len(raw) == 0 {
			return true
		}
		for _, r := range raw {
			s.Add(float64(r) / 32.0)
		}
		return s.Mean() >= s.Min()-1e-9 && s.Mean() <= s.Max()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 0)
	s.Add(10, 100)
	s.Add(20, 50)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.MaxV() != 100 {
		t.Errorf("MaxV = %v", s.MaxV())
	}
	if got := s.At(5); math.Abs(got-50) > 1e-9 {
		t.Errorf("At(5) = %v, want 50 (interpolated)", got)
	}
	if got := s.At(15); math.Abs(got-75) > 1e-9 {
		t.Errorf("At(15) = %v, want 75", got)
	}
	if got := s.At(-1); got != 0 {
		t.Errorf("At(-1) = %v, want 0 (clamped)", got)
	}
	if got := s.At(99); got != 50 {
		t.Errorf("At(99) = %v, want 50 (clamped)", got)
	}
	if got := s.Mean(); math.Abs(got-50) > 1e-9 {
		t.Errorf("Mean = %v, want 50", got)
	}
	var empty Series
	if empty.At(5) != 0 || empty.Mean() != 0 || empty.MaxV() != 0 {
		t.Error("empty series accessors not zero")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio(_,0) != 0")
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal loads: %f, want 1", got)
	}
	// One PE does everything: index = 1/n.
	if got := JainIndex([]float64{9, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("concentrated load: %f, want 1/3", got)
	}
	if JainIndex(nil) != 1 || JainIndex([]float64{0, 0}) != 1 {
		t.Error("degenerate inputs should return 1")
	}
	// Monotone sanity: a more even split scores higher.
	uneven := JainIndex([]float64{8, 2})
	even := JainIndex([]float64{5, 5})
	if uneven >= even {
		t.Errorf("uneven %f >= even %f", uneven, even)
	}
}

func TestQuickJainBounds(t *testing.T) {
	f := func(raw []uint8) bool {
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		j := JainIndex(xs)
		if len(xs) == 0 {
			return j == 1
		}
		return j >= 1.0/float64(len(xs))-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesBound(t *testing.T) {
	var s Series
	s.Bound(8)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i), float64(i)*2)
	}
	if n := s.Len(); n > 8 {
		t.Fatalf("bounded series holds %d points, cap 8", n)
	}
	if !s.Bounded() {
		t.Fatal("series over its cap does not report Bounded")
	}
	// Retained points keep their exact values and time order.
	prev := -1.0
	for _, p := range s.Points {
		if p.V != p.T*2 {
			t.Fatalf("retained point (%v,%v) lost its exact value", p.T, p.V)
		}
		if p.T <= prev {
			t.Fatalf("retained points out of time order at t=%v", p.T)
		}
		prev = p.T
	}
	// Coverage spans the run, not just its head: the last retained
	// point must come from the final stride window.
	if last := s.Points[len(s.Points)-1].T; last < 1000-256 {
		t.Fatalf("last retained point at t=%v — thinning kept only the head", last)
	}
	// Bounding an already over-full series thins it immediately.
	var s2 Series
	for i := 0; i < 100; i++ {
		s2.Add(float64(i), 1)
	}
	s2.Bound(16)
	if n := s2.Len(); n > 16 {
		t.Fatalf("late Bound left %d points, cap 16", n)
	}
}

func TestSeriesUnboundedUnchanged(t *testing.T) {
	var s Series
	for i := 0; i < 500; i++ {
		s.Add(float64(i), 1)
	}
	if s.Len() != 500 || s.Bounded() {
		t.Fatalf("unbounded series altered: len=%d bounded=%v", s.Len(), s.Bounded())
	}
}

func TestSeriesBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bound(1) did not panic")
		}
	}()
	var s Series
	s.Bound(1)
}

func TestSeriesBoundZeroRestoresExact(t *testing.T) {
	var s Series
	s.Bound(4)
	for i := 0; i < 64; i++ {
		s.Add(float64(i), 1)
	}
	if !s.Bounded() {
		t.Fatal("expected thinning after 64 points under Bound(4)")
	}
	s.Bound(0)
	n := s.Len()
	for i := 0; i < 10; i++ {
		s.Add(float64(i), 1)
	}
	if s.Len() != n+10 {
		t.Fatalf("after Bound(0) every point must be retained: %d -> %d", n, s.Len())
	}
}

package topology

import (
	"math/rand"
	"testing"
)

// partitionFixtures covers every topology family the package builds.
func partitionFixtures() []*Topology {
	return []*Topology{
		NewGrid(8, 8),
		NewGrid(3, 7),
		NewTorus(5, 5),
		NewTorus3D(3, 3, 3),
		NewDLM(6, 6, 3),
		NewHypercube(6),
		NewRing(17),
		NewChordalRing(16, 5),
		NewComplete(9),
		NewStar(9),
		NewTree(2, 4),
		NewBusGlobal(7),
	}
}

func TestPartitionCoversDisjointly(t *testing.T) {
	for _, topo := range partitionFixtures() {
		for _, k := range []int{1, 2, 3, 4, 7, 8} {
			if k > topo.Size() {
				continue
			}
			p := topo.Partition(k)
			if p.Shards != k || len(p.Assign) != topo.Size() || len(p.Starts) != k+1 {
				t.Fatalf("%s k=%d: malformed partition %+v", topo.Name(), k, p)
			}
			// Starts must be a strictly increasing full cover: every PE
			// in exactly one shard, every shard non-empty.
			if p.Starts[0] != 0 || p.Starts[k] != topo.Size() {
				t.Fatalf("%s k=%d: starts %v do not span [0,%d)", topo.Name(), k, p.Starts, topo.Size())
			}
			for s := 0; s < k; s++ {
				if p.Size(s) <= 0 {
					t.Fatalf("%s k=%d: shard %d empty (starts %v)", topo.Name(), k, s, p.Starts)
				}
				for pe := p.Starts[s]; pe < p.Starts[s+1]; pe++ {
					if p.Assign[pe] != s || p.Owner(pe) != s {
						t.Fatalf("%s k=%d: PE %d assigned to %d, block says %d", topo.Name(), k, pe, p.Assign[pe], s)
					}
				}
			}
			// Balance: contiguous blocks must differ by at most one PE.
			lo, hi := topo.Size(), 0
			for s := 0; s < k; s++ {
				n := p.Size(s)
				if n < lo {
					lo = n
				}
				if n > hi {
					hi = n
				}
			}
			if hi-lo > 1 {
				t.Fatalf("%s k=%d: imbalanced blocks (sizes span %d..%d)", topo.Name(), k, lo, hi)
			}
		}
	}
}

func TestPartitionCrossChannels(t *testing.T) {
	for _, topo := range partitionFixtures() {
		for _, k := range []int{1, 2, 3, 4, 7, 8} {
			if k > topo.Size() {
				continue
			}
			p := topo.Partition(k)
			cross := make(map[int]bool, len(p.Cross))
			prev := -1
			for _, ci := range p.Cross {
				if ci <= prev {
					t.Fatalf("%s k=%d: Cross not ascending/unique: %v", topo.Name(), k, p.Cross)
				}
				prev = ci
				cross[ci] = true
			}
			for _, ch := range topo.Channels() {
				shards := make(map[int]bool)
				for _, pe := range ch.Members {
					shards[p.Assign[pe]] = true
				}
				if spans := len(shards) > 1; spans != cross[ch.ID] {
					t.Fatalf("%s k=%d: channel %d spans %d shards but Cross=%v",
						topo.Name(), k, ch.ID, len(shards), cross[ch.ID])
				}
			}
			if k == 1 && len(p.Cross) != 0 {
				t.Fatalf("%s: single-shard partition has cross channels %v", topo.Name(), p.Cross)
			}
		}
	}
}

// TestPartitionLookaheadProperty pins the conservative-lookahead bound:
// under arbitrary positive per-channel latencies, MinCrossLatency never
// exceeds the latency of ANY cross-shard channel (running shards in
// windows of that width can therefore never deliver a message into a
// shard's past), and it is achieved by at least one of them.
func TestPartitionLookaheadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, topo := range partitionFixtures() {
		for _, k := range []int{2, 3, 4, 8} {
			if k > topo.Size() {
				continue
			}
			p := topo.Partition(k)
			lats := make([]int64, len(topo.Channels()))
			for i := range lats {
				lats[i] = 1 + rng.Int63n(50)
			}
			lat := func(ch Channel) int64 { return lats[ch.ID] }
			min, ok := p.MinCrossLatency(lat)
			if len(p.Cross) == 0 {
				if ok {
					t.Fatalf("%s k=%d: lookahead bound %d with no cross channels", topo.Name(), k, min)
				}
				continue
			}
			if !ok {
				t.Fatalf("%s k=%d: no lookahead bound despite %d cross channels", topo.Name(), k, len(p.Cross))
			}
			achieved := false
			for _, ci := range p.Cross {
				if min > lats[ci] {
					t.Fatalf("%s k=%d: lookahead %d exceeds cross channel %d latency %d",
						topo.Name(), k, min, ci, lats[ci])
				}
				if min == lats[ci] {
					achieved = true
				}
			}
			if !achieved {
				t.Fatalf("%s k=%d: lookahead %d matches no cross-channel latency", topo.Name(), k, min)
			}
		}
	}
}

package machine

import (
	"testing"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// recorded is one environment event as seen by a recorder node.
type recorded struct {
	at     sim.Time
	kind   EventKind
	from   int
	factor float64
}

// recorder is a keep-local strategy whose nodes subscribe to the
// environment streams per the flags and log what they receive — the
// white-box probe for event delivery.
type recorder struct {
	failure, speed, load bool
	log                  map[int][]recorded // PE id -> events
}

func newRecorder(failure, speed, load bool) *recorder {
	return &recorder{failure: failure, speed: speed, load: load, log: map[int][]recorded{}}
}

func (r *recorder) Name() string   { return "recorder" }
func (r *recorder) Setup(*Machine) {}
func (r *recorder) NewNode(pe *PE) NodeStrategy {
	return &recorderNode{s: r, pe: pe}
}

type recorderNode struct {
	s  *recorder
	pe *PE
}

func (n *recorderNode) WantsFailureEvents() bool { return n.s.failure }
func (n *recorderNode) WantsSpeedEvents() bool   { return n.s.speed }
func (n *recorderNode) WantsLoadEvents() bool    { return n.s.load }

func (n *recorderNode) HandleEvent(ev Event) {
	switch ev.Kind {
	case GoalCreated, GoalArrived:
		n.pe.Accept(ev.Goal)
	case Control:
	default:
		n.s.log[n.pe.ID()] = append(n.s.log[n.pe.ID()],
			recorded{at: n.pe.Now(), kind: ev.Kind, from: ev.From, factor: ev.Factor})
	}
}

// TestFailureEventsReachNeighbors pins PEFailed/PERecovered delivery:
// the notification rides the failing PE's immediate sentinel broadcast,
// so neighbors hear it one control-hop later, and non-subscribing nodes
// hear nothing.
func TestFailureEventsReachNeighbors(t *testing.T) {
	rec := newRecorder(true, false, false)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0 // isolate the env broadcasts
	cfg.Scenario = scenario.MustParse("fail:pes=1@t=10,recover@t=50")
	New(topology.NewGrid(1, 3), workload.NewChain(40), rec, cfg).Run()

	for _, pe := range []int{0, 2} { // both neighbors of PE 1
		evs := rec.log[pe]
		if len(evs) != 2 {
			t.Fatalf("PE %d saw %d env events, want 2: %+v", pe, len(evs), evs)
		}
		if evs[0].kind != PEFailed || evs[0].from != 1 || evs[0].at != 10+cfg.CtrlHopTime {
			t.Fatalf("PE %d first event = %+v, want PEFailed from 1 at t=%d", pe, evs[0], 10+cfg.CtrlHopTime)
		}
		if evs[1].kind != PERecovered || evs[1].from != 1 || evs[1].at < 50 {
			t.Fatalf("PE %d second event = %+v, want PERecovered from 1 after t=50", pe, evs[1])
		}
	}
	if len(rec.log[1]) != 0 {
		t.Fatalf("the failed PE heard its own broadcast: %+v", rec.log[1])
	}

	// Without the subscription, the same run delivers nothing.
	silent := newRecorder(false, false, false)
	cfg2 := DefaultConfig()
	cfg2.LoadInterval = 0
	cfg2.Scenario = scenario.MustParse("fail:pes=1@t=10,recover@t=50")
	New(topology.NewGrid(1, 3), workload.NewChain(40), silent, cfg2).Run()
	if len(silent.log) != 0 {
		t.Fatalf("non-subscribing nodes received env events: %+v", silent.log)
	}
}

// TestLinkEventsReachEndpoints pins LinkDown/LinkRestored: both
// endpoints sense the transition locally at the scripted instant, and a
// degrade without outage notifies nobody.
func TestLinkEventsReachEndpoints(t *testing.T) {
	rec := newRecorder(true, false, false)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.Scenario = scenario.MustParse("degradelink:a=0:b=1:x=2@t=5,droplink:a=0:b=1@t=20,restorelink:a=0:b=1@t=60")
	New(topology.NewGrid(1, 2), workload.NewChain(30), rec, cfg).Run()

	for _, pe := range []int{0, 1} {
		other := 1 - pe
		evs := rec.log[pe]
		if len(evs) != 2 {
			t.Fatalf("PE %d saw %d link events, want 2 (degrade is not an outage): %+v", pe, len(evs), evs)
		}
		if evs[0] != (recorded{at: 20, kind: LinkDown, from: other}) {
			t.Fatalf("PE %d first = %+v, want LinkDown from %d at t=20", pe, evs[0], other)
		}
		if evs[1] != (recorded{at: 60, kind: LinkRestored, from: other}) {
			t.Fatalf("PE %d second = %+v, want LinkRestored from %d at t=60", pe, evs[1], other)
		}
	}
}

// TestSpeedEventsReachOwnNode pins PESlowed: the affected PE's own node
// hears each speed change with the new factor, immediately.
func TestSpeedEventsReachOwnNode(t *testing.T) {
	rec := newRecorder(false, true, false)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.Scenario = scenario.MustParse("slow:pes=0:x=0.5@t=25,restore@t=55")
	New(topology.NewSingle(), workload.NewChain(20), rec, cfg).Run()

	evs := rec.log[0]
	if len(evs) != 2 {
		t.Fatalf("node saw %d speed events, want 2: %+v", len(evs), evs)
	}
	if evs[0] != (recorded{at: 25, kind: PESlowed, from: 0, factor: 0.5}) {
		t.Fatalf("first = %+v, want PESlowed x=0.5 at t=25", evs[0])
	}
	if evs[1] != (recorded{at: 55, kind: PESlowed, from: 0, factor: 1}) {
		t.Fatalf("second = %+v, want PESlowed x=1 at t=55", evs[1])
	}
}

// TestNeighborLoadEventsDelivered pins the LoadAware hot-path stream:
// one NeighborLoadChanged per load word learned, from broadcast or
// piggyback.
func TestNeighborLoadEventsDelivered(t *testing.T) {
	rec := newRecorder(false, false, true)
	cfg := DefaultConfig()
	New(topology.NewGrid(1, 2), workload.NewFib(8), rec, cfg).Run()
	if len(rec.log[0]) == 0 || len(rec.log[1]) == 0 {
		t.Fatalf("LoadAware nodes heard no NeighborLoadChanged: %d/%d events",
			len(rec.log[0]), len(rec.log[1]))
	}
	for _, ev := range rec.log[0] {
		if ev.kind != NeighborLoadChanged || ev.from != 1 {
			t.Fatalf("PE 0 heard %+v, want NeighborLoadChanged from 1", ev)
		}
	}
}

// TestFailureEventsIdempotentOnDualChannels pins the broadcast
// contract for the env notification: a double-lattice pair hears every
// broadcast once per shared bus, so event delivery must dedup on the
// availability transition — each neighbor reacts exactly once per
// failure and once per recovery, however many channels carried the
// word.
func TestFailureEventsIdempotentOnDualChannels(t *testing.T) {
	topo := topology.NewDLM(4, 4, 4) // PEs 0 and 1 share two buses
	if n := len(topo.ChannelsBetween(0, 1)); n != 2 {
		t.Fatalf("test premise broken: PEs 0-1 share %d channels, want 2", n)
	}
	rec := newRecorder(true, false, false)
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.Scenario = scenario.MustParse("fail:pes=1@t=10,recover@t=100")
	New(topo, workload.NewChain(60), rec, cfg).Run()

	for _, nb := range topo.Neighbors(1) {
		var fails, recovers int
		for _, ev := range rec.log[nb] {
			switch ev.kind {
			case PEFailed:
				fails++
			case PERecovered:
				recovers++
			}
		}
		if fails != 1 || recovers != 1 {
			t.Errorf("neighbor %d heard %d PEFailed / %d PERecovered, want exactly 1/1 (%d shared channels)",
				nb, fails, recovers, len(topo.ChannelsBetween(nb, 1)))
		}
	}
}

// TestEnvNotificationCostsNoExtraTraffic pins the piggyback design: the
// availability notification rides the sentinel load broadcast, so a
// failure-aware subscriber (that takes no actions) leaves the run's
// message counts and event sequence identical to a non-subscriber's.
func TestEnvNotificationCostsNoExtraTraffic(t *testing.T) {
	run := func(aware bool) fingerprint {
		cfg := DefaultConfig()
		cfg.Scenario = scenario.MustParse("fail:pes=1@t=200,recover@t=900")
		return fp(New(topology.NewGrid(1, 3), workload.NewFib(8), newRecorder(aware, false, false), cfg).Run())
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("passive subscription changed the run: %+v vs %+v", a, b)
	}
}

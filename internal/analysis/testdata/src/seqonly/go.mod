module seqonlyfix

go 1.24

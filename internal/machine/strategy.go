package machine

// Strategy is a load-distribution scheme. One Strategy value configures
// a whole machine; NewNode supplies the per-PE state. Implementations
// live in package core (CWN, the Gradient Model, baselines).
//
// Strategies run on the PEs' communication co-processors, as the paper
// assumes: their decisions cost channel time (for the messages they
// send) but never PE compute time.
type Strategy interface {
	// Name identifies the strategy in reports, e.g. "CWN(r=9,h=2)".
	Name() string
	// Setup runs once before the simulation starts, after the machine
	// is wired. Strategies typically capture the topology diameter or
	// validate parameters here.
	Setup(m *Machine)
	// NewNode returns the per-PE strategy state. Called once per PE
	// after Setup. Strategies register periodic processes here via
	// Machine.NewTicker.
	NewNode(pe *PE) NodeStrategy
}

// EventKind discriminates the typed events a NodeStrategy receives.
type EventKind uint8

const (
	// GoalCreated asks the node to place a goal just created on this PE:
	// keep it (pe.Accept) or ship it (pe.SendGoal / pe.RouteGoal).
	GoalCreated EventKind = iota
	// GoalArrived delivers a goal message from neighbor From: accept it
	// or forward it on.
	GoalArrived
	// Control delivers a strategy control payload from neighbor From
	// (e.g. a Gradient Model proximity update).
	Control

	// Environment events (scenario runs only). They are delivered only
	// to nodes that opt in via the FailureAware / SpeedAware / LoadAware
	// capability interfaces, so strategies that ignore the environment
	// behave — and cost — exactly as before.

	// PEFailed announces that PE From lost its compute (blackout or
	// crash). It arrives with the failed PE's immediate sentinel-load
	// broadcast, so it is charged channel time like any load word and
	// reaches only the failed PE's neighbors.
	PEFailed
	// PERecovered announces that PE From is serving again; it arrives
	// with the recovery load broadcast, neighbors only.
	PERecovered
	// PESlowed tells a node its own PE's service speed changed; Factor
	// carries the new multiplier (nominal speed = the configured base).
	// Local and instantaneous — a PE knows its own clock.
	PESlowed
	// LinkDown tells a link-endpoint node the link toward PE From went
	// down (carrier loss is sensed locally, so no channel time).
	LinkDown
	// LinkRestored tells a link-endpoint node the link toward PE From
	// is carrying traffic again.
	LinkRestored
	// NeighborLoadChanged fires whenever this PE learns a new load value
	// for neighbor From (broadcast or piggyback); Load is the value.
	// Hot-path: delivered only to LoadAware nodes.
	NeighborLoadChanged
)

// Event is one typed occurrence delivered to a NodeStrategy. Which
// fields are meaningful depends on Kind; the zero value of the rest is
// never read.
type Event struct {
	Kind EventKind
	// Goal is the goal being placed (GoalCreated) or delivered
	// (GoalArrived). Pooled — do not retain after handing it back to
	// the machine.
	Goal *Goal
	// From is the event's other party: the sending neighbor for
	// GoalArrived/Control, the affected PE for PEFailed/PERecovered/
	// PESlowed/NeighborLoadChanged, the far endpoint for LinkDown/
	// LinkRestored.
	From int
	// Payload is the Control message body.
	Payload any
	// Factor is the new speed multiplier (PESlowed).
	Factor float64
	// Load is the newly learned neighbor load (NeighborLoadChanged).
	Load int
}

// NodeStrategy is the per-PE half of a Strategy: a handler for the
// typed event stream the machine delivers. Every node sees GoalCreated,
// GoalArrived and Control; environment events additionally require the
// matching capability interface below.
type NodeStrategy interface {
	HandleEvent(ev Event)
}

// SequentialOnly marks strategies whose nodes read global machine state
// — the Ideal oracle inspects every PE's true queue length on each
// placement. Such reads are fine on the sequential machine but are
// cross-shard data races on a sharded one, where remote PEs advance on
// other goroutines; NewStream refuses to shard them.
type SequentialOnly interface {
	Strategy
	// SequentialOnly documents why sharding is impossible.
	SequentialOnly() string
}

// FailureAware is the opt-in for availability events: a node whose
// WantsFailureEvents returns true receives PEFailed/PERecovered (from
// failing neighbors, with their sentinel-load broadcast) and LinkDown/
// LinkRestored (for links this PE terminates). The bool lets one node
// type gate the capability on a strategy flag, so "sentinel-only" and
// "failure-aware" variants of a scheme can be compared head to head.
type FailureAware interface {
	NodeStrategy
	WantsFailureEvents() bool
}

// SpeedAware is the opt-in for PESlowed events (own-PE service-speed
// changes from SlowPE/RestorePE scenario events).
type SpeedAware interface {
	NodeStrategy
	WantsSpeedEvents() bool
}

// LoadAware is the opt-in for NeighborLoadChanged events — one event
// per load word learned, on the hot path, so only strategies that act
// on individual observations should want it.
type LoadAware interface {
	NodeStrategy
	WantsLoadEvents() bool
}

// ClassicNodeStrategy is the pre-event three-method per-PE interface.
// It still compiles and runs unchanged through AdaptNode; environment
// events do not exist in this shape (a classic node is by construction
// sentinel-only).
type ClassicNodeStrategy interface {
	// PlaceNewGoal decides where a goal created on this PE goes.
	PlaceNewGoal(g *Goal)
	// GoalArrived handles a goal message delivered from neighbor from.
	GoalArrived(g *Goal, from int)
	// Control handles a strategy control payload from neighbor from.
	Control(from int, payload any)
}

// AdaptNode wraps a classic three-method node in the event API: the
// goal and control events map onto the old entry points and environment
// events are dropped. The adapter is allocation-free per event and adds
// one method call of indirection.
func AdaptNode(n ClassicNodeStrategy) NodeStrategy { return classicNode{n} }

type classicNode struct{ n ClassicNodeStrategy }

func (a classicNode) HandleEvent(ev Event) {
	switch ev.Kind {
	case GoalCreated:
		a.n.PlaceNewGoal(ev.Goal)
	case GoalArrived:
		a.n.GoalArrived(ev.Goal, ev.From)
	case Control:
		a.n.Control(ev.From, ev.Payload)
	}
}

// ClassicStrategy is the pre-event whole-strategy shape: NewNode
// returns a ClassicNodeStrategy. Adapt turns one into a Strategy.
type ClassicStrategy interface {
	Name() string
	Setup(m *Machine)
	NewNode(pe *PE) ClassicNodeStrategy
}

// Adapt wraps a classic strategy in the event API, adapting every node
// it creates via AdaptNode.
func Adapt(s ClassicStrategy) Strategy { return classicStrategy{s} }

type classicStrategy struct{ s ClassicStrategy }

func (a classicStrategy) Name() string                { return a.s.Name() }
func (a classicStrategy) Setup(m *Machine)            { a.s.Setup(m) }
func (a classicStrategy) NewNode(pe *PE) NodeStrategy { return AdaptNode(a.s.NewNode(pe)) }

// ClassicView is the inverse adapter: it exposes an event-driven node
// through the classic three-method shape, for code (and the compat
// regression tests) that still drives nodes via the old entry points.
// The round trip AdaptNode(ClassicView(n)) is behaviour-preserving for
// goal and control traffic; environment events and the capability
// interfaces do not survive it.
func ClassicView(n NodeStrategy) ClassicNodeStrategy { return classicView{n} }

type classicView struct{ n NodeStrategy }

func (v classicView) PlaceNewGoal(g *Goal) { v.n.HandleEvent(Event{Kind: GoalCreated, Goal: g}) }
func (v classicView) GoalArrived(g *Goal, from int) {
	v.n.HandleEvent(Event{Kind: GoalArrived, Goal: g, From: from})
}
func (v classicView) Control(from int, payload any) {
	v.n.HandleEvent(Event{Kind: Control, From: from, Payload: payload})
}

module poolsafefix

go 1.24

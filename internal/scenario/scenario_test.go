package scenario

import (
	"strings"
	"testing"

	"cwnsim/internal/metrics"
	"cwnsim/internal/sim"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"fail:pes=25%@t=5000,recover@t=10000",
		"slow:pes=0+1:x=0.5@t=2000,restore:pes=0+1@t=4000",
		"degradelink:a=0:b=1:x=2@t=100,restorelink:a=0:b=1@t=300",
		"shock:x=3@t=1000,shock:x=1@t=2000",
		"fail:pes=3+7+9@t=50,recover:pes=3+7+9@t=90",
	}
	for _, in := range cases {
		sc, err := Parse(in)
		if err != nil {
			t.Errorf("Parse(%q): %v", in, err)
			continue
		}
		out := sc.String()
		sc2, err := Parse(out)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", out, err)
			continue
		}
		if sc2.String() != out {
			t.Errorf("Parse(%q) round-trips to %q then %q", in, out, sc2.String())
		}
	}
}

func TestParseKnownScript(t *testing.T) {
	sc, err := Parse("fail:pes=25%@t=5000,recover@t=10000")
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Events) != 2 {
		t.Fatalf("parsed %d events, want 2", len(sc.Events))
	}
	f := sc.Events[0]
	if f.Kind != FailPE || f.At != 5000 || f.Frac != 0.25 || f.PEs != nil {
		t.Fatalf("fail event = %+v", f)
	}
	r := sc.Events[1]
	if r.Kind != RecoverPE || r.At != 10000 || r.PEs != nil || r.Frac != 0 {
		t.Fatalf("recover event = %+v", r)
	}
	if sc.DisruptAt() != 5000 || sc.RestoreAt() != 10000 {
		t.Fatalf("disrupt/restore = %d/%d", sc.DisruptAt(), sc.RestoreAt())
	}
	// droplink is shorthand for degradelink with x=0.
	dl := MustParse("droplink:a=2:b=3@t=7")
	if e := dl.Events[0]; e.Kind != DegradeLink || e.Factor != 0 || e.A != 2 || e.B != 3 {
		t.Fatalf("droplink event = %+v", e)
	}
}

func TestParseEmptyIsNil(t *testing.T) {
	for _, in := range []string{"", "   "} {
		sc, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if sc != nil {
			t.Fatalf("Parse(%q) = %+v, want nil", in, sc)
		}
		if !sc.Empty() || sc.String() != "" || sc.Validate(16) != nil {
			t.Fatal("nil script is not fully inert")
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"fail:pes=25%",              // no time
		"fail:pes=25%@5000",         // missing t=
		"warp:x=2@t=10",             // unknown kind
		"slow:pes=0@t=10",           // slow without factor
		"shock@t=10",                // shock without multiplier
		"degradelink:a=0:x=2@t=10",  // missing endpoint
		"fail:pes=120%@t=10",        // >100%
		"fail:pes=-1@t=10",          // negative PE
		"fail:pes=0@t=-5",           // negative time
		"slow:pes=0:x=half@t=10",    // non-numeric factor
		"fail:pes=0:weird=yes@t=10", // unknown key
		"fail:pes@t=10",             // key without value
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestTargetsFraction(t *testing.T) {
	ev := Event{Kind: FailPE, Frac: 0.25}
	got := ev.Targets(100)
	if len(got) != 25 || got[0] != 75 || got[24] != 99 {
		t.Fatalf("25%% of 100 PEs = %v", got)
	}
	// At least one target, capped at P, explicit list wins.
	if got := (Event{Frac: 0.001}).Targets(10); len(got) != 1 || got[0] != 9 {
		t.Fatalf("tiny fraction targets %v, want [9]", got)
	}
	if got := (Event{Frac: 1}).Targets(4); len(got) != 4 {
		t.Fatalf("100%% of 4 PEs targets %v", got)
	}
	if got := (Event{PEs: []int{2, 5}, Frac: 0.5}).Targets(100); len(got) != 2 {
		t.Fatalf("explicit list ignored: %v", got)
	}
	if got := (Event{Kind: RecoverPE}).Targets(8); got != nil {
		t.Fatalf("recover-all resolved targets %v, want nil", got)
	}
}

func TestValidate(t *testing.T) {
	nan := 0.0
	nan /= nan
	bad := []Script{
		{Events: []Event{{Kind: FailPE, PEs: []int{16}}}},                                                   // PE out of range
		{Events: []Event{{Kind: SlowPE, PEs: []int{0}, Factor: 0}}},                                         // zero speed
		{Events: []Event{{Kind: SlowPE, PEs: []int{0}, Factor: nan}}},                                       // NaN speed
		{Events: []Event{{Kind: FailPE}}},                                                                   // fail with no targets
		{Events: []Event{{Kind: DegradeLink, A: 1, B: 1, Factor: 2}}},                                       // self-link
		{Events: []Event{{Kind: DegradeLink, A: 0, B: 99, Factor: 2}}},                                      // endpoint out of range
		{Events: []Event{{Kind: LoadShock, Factor: 0}}},                                                     // zero rate
		{Events: []Event{{At: -1, Kind: RecoverPE}}},                                                        // negative time
		{Events: []Event{{Kind: FailPE, Frac: 1.5}}},                                                        // fraction > 1
		{Events: []Event{{Kind: FailPE, Frac: 1}}},                                                          // fails every PE
		{Events: []Event{{Kind: FailPE, PEs: []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}}}}, // explicit full cover
		{Events: []Event{{Kind: Kind(250), PEs: []int{0}}}},                                                 // unknown kind
		{Events: []Event{{Kind: SlowPE, PEs: []int{3}, Factor: -2}, {At: 900}}},                             // bad among good
	}
	for i, sc := range bad {
		if err := sc.Validate(16); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, sc.Events)
		}
	}
	ok := MustParse("fail:pes=25%@t=5,slow:pes=0:x=0.25@t=9,recover@t=20,restore@t=21,shock:x=0.5@t=30")
	if err := ok.Validate(16); err != nil {
		t.Fatalf("Validate rejected a good script: %v", err)
	}
}

func TestBlackoutHelper(t *testing.T) {
	sc := Blackout(0.25, 5000, 10000)
	if err := sc.Validate(100); err != nil {
		t.Fatal(err)
	}
	if sc.String() != "fail:pes=25%@t=5000,recover@t=10000" {
		t.Fatalf("Blackout renders %q", sc.String())
	}
}

func TestSortedIsStable(t *testing.T) {
	sc := Script{Events: []Event{
		{At: 10, Kind: RecoverPE},
		{At: 5, Kind: FailPE, Frac: 0.5},
		{At: 10, Kind: LoadShock, Factor: 2},
	}}
	got := sc.Sorted()
	if got[0].Kind != FailPE || got[1].Kind != RecoverPE || got[2].Kind != LoadShock {
		t.Fatalf("Sorted order wrong: %v", got)
	}
	if sc.Events[0].Kind != RecoverPE {
		t.Fatal("Sorted mutated the script")
	}
}

// series builds a windowed-p99 series from (t, v) pairs.
func series(pts ...float64) metrics.Series {
	var s metrics.Series
	for i := 0; i+1 < len(pts); i += 2 {
		s.Add(pts[i], pts[i+1])
	}
	return s
}

func TestAnalyzeRecovery(t *testing.T) {
	sc := Blackout(0.25, 100, 200)

	// Healthy baseline 100, spike during the blackout, settles after.
	rec := AnalyzeRecovery(sc, series(
		50, 90, 80, 110, 120, 500, 180, 900, 220, 600, 260, 150, 300, 120, 340, 110,
	), 7, 2, AnalyzeConfig{})
	if rec.DisruptAt != 100 || rec.RestoreAt != 200 {
		t.Fatalf("disrupt/restore = %d/%d", rec.DisruptAt, rec.RestoreAt)
	}
	if rec.BaselineP99 != 90 && rec.BaselineP99 != 110 {
		t.Fatalf("baseline = %f, want a pre-disruption median", rec.BaselineP99)
	}
	if rec.PeakP99 != 900 {
		t.Fatalf("peak = %f, want 900", rec.PeakP99)
	}
	if !rec.Recovered() || rec.SteadyAgainAt != 260 || rec.TimeToSteady != 60 {
		t.Fatalf("steady = %d (+%d), want 260 (+60)", rec.SteadyAgainAt, rec.TimeToSteady)
	}
	if rec.GoalsRequeued != 7 || rec.ServiceAborts != 2 {
		t.Fatalf("requeued/aborts = %d/%d", rec.GoalsRequeued, rec.ServiceAborts)
	}
	if s := rec.String(); !strings.Contains(s, "steady again") || !strings.Contains(s, "7 goals requeued") {
		t.Fatalf("summary %q", s)
	}

	// Never settles: the tail stays above 2x baseline.
	never := AnalyzeRecovery(sc, series(50, 100, 260, 900, 300, 800, 340, 700), 0, 0, AnalyzeConfig{})
	if never.Recovered() || never.SteadyAgainAt != sim.Never || never.TimeToSteady != sim.Never {
		t.Fatalf("never-settling run reported recovery: %+v", never)
	}
	if !strings.Contains(never.String(), "never settled") {
		t.Fatalf("summary %q", never.String())
	}

	// A dip back into the band that blows up again is not recovery.
	relapse := AnalyzeRecovery(sc, series(50, 100, 260, 120, 300, 110, 340, 900), 0, 0, AnalyzeConfig{})
	if relapse.Recovered() {
		t.Fatalf("relapsing run reported recovery at %d", relapse.SteadyAgainAt)
	}

	// A single in-band final window is not confirmation (Consecutive=2).
	thin := AnalyzeRecovery(sc, series(50, 100, 260, 900, 300, 120), 0, 0, AnalyzeConfig{})
	if thin.Recovered() {
		t.Fatal("one in-band window confirmed recovery")
	}

	// No pre-disruption window: baseline unknown, nothing to measure.
	blind := AnalyzeRecovery(sc, series(260, 500, 300, 400), 0, 0, AnalyzeConfig{})
	if !isNaN(blind.BaselineP99) || blind.Recovered() {
		t.Fatalf("baseline-less analysis = %+v", blind)
	}

	// Empty script: inert report.
	empty := AnalyzeRecovery(nil, series(1, 2), 0, 0, AnalyzeConfig{})
	if empty.DisruptAt != sim.Never || empty.Recovered() {
		t.Fatalf("empty-script analysis = %+v", empty)
	}
}

func isNaN(f float64) bool { return f != f }

package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, parsed and type-checked package ready for
// analysis.
type Package struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	Error      *struct{ Err string }
}

// Load parses and type-checks the packages matching patterns in the
// module rooted at (or containing) dir, returning the non-dependency
// packages ready for analysis. Dependencies — the standard library and
// sibling packages alike — are imported from compiled export data, so
// loading a package costs one `go list -export` plus parsing its own
// files, exactly like a `go vet` compilation unit. Test files are not
// loaded (go list's GoFiles excludes them): the analyzers enforce
// contracts on shipped code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,Standard,DepOnly,GoFiles,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// GOWORK could pull unrelated modules into scope; analysis is
	// always per-module.
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exportFile := make(map[string]string)
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listPkg)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exportFile[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := ExportDataImporter(fset, func(path string) (string, bool) {
		f, ok := exportFile[path]
		return f, ok
	})
	var pkgs []*Package
	for _, p := range targets {
		if p.Name == "" || len(p.GoFiles) == 0 {
			continue // e.g. a directory with only test files
		}
		var files []*ast.File
		for _, gf := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := Check(p.ImportPath, fset, files, imp)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   p.ImportPath,
			Dir:       p.Dir,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// ExportDataImporter returns a types.Importer that reads compiled
// export data, locating each package's export file through lookup.
// Shared by Load (fed from `go list -export`) and cmd/simlint's
// vettool mode (fed from the vet config's PackageFile map).
func ExportDataImporter(fset *token.FileSet, lookup func(path string) (file string, ok bool)) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := lookup(path)
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// Check type-checks one package's parsed files with the full
// types.Info the analyzers rely on.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	conf := &types.Config{Importer: imp}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// Command simlint runs the repo's custom static-analysis suite
// (internal/analysis: detrand, statsmerge, poolsafe, seqonly) over the
// simulator's own contracts: seed-determinism, exact shard-stats
// merging, free-list pool safety, and the sequential-only feature
// boundary.
//
// Two modes:
//
//	simlint [packages]            standalone: load via the go tool and
//	                              report findings (default ./...)
//	go vet -vettool=/path/simlint ./...
//	                              vet mode: speaks the go vet unit
//	                              protocol (-V=full, -flags, unit.cfg)
//
// Findings print as file:line:col: message [analyzer]. Suppress a
// deliberate exception with a `//lint:ignore <analyzer> <reason>`
// comment on (or directly above) the offending line.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"log"
	"os"
	"strings"

	"cwnsim/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("simlint: ")
	args := os.Args[1:]

	switch {
	case len(args) == 1 && args[0] == "-V=full":
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// The build tool asks which analyzer flags exist; none do.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		runVetUnit(args[0])
	default:
		runStandalone(args)
	}
}

// printVersion implements the -V=full protocol: the build tool caches
// vet results keyed on this line, so it embeds a content hash of the
// binary — rebuilding simlint invalidates stale vet caches.
func printVersion() {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("simlint version simlint-%x\n", h.Sum(nil)[:12])
}

// runStandalone loads the named package patterns from the current
// directory and reports findings.
func runStandalone(patterns []string) {
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Fatal(err)
	}
	diags, err := analysis.RunAnalyzers(pkgs, analysis.All())
	if err != nil {
		log.Fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// vetConfig mirrors the JSON schema go vet hands a -vettool for each
// compilation unit (the unitchecker protocol).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one go vet compilation unit.
func runVetUnit(cfgFile string) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	cfg := new(vetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		log.Fatalf("cannot decode vet config %s: %v", cfgFile, err)
	}
	// The protocol requires a facts file per unit even though these
	// analyzers produce none.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Dependencies are vetted only for facts, and test variants
	// re-present packages already vetted plainly plus _test.go files;
	// the contracts hold for shipped (non-test) code, so both are
	// fact-only no-ops here.
	if cfg.VetxOnly || strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		writeVetx()
		return
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return
			}
			log.Fatal(err)
		}
		files = append(files, f)
	}
	imp := analysis.ExportDataImporter(fset, func(path string) (string, bool) {
		if real, ok := cfg.ImportMap[path]; ok {
			path = real
		}
		f, ok := cfg.PackageFile[path]
		return f, ok
	})
	pkg, info, err := analysis.Check(cfg.ImportPath, fset, files, imp)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return
		}
		log.Fatal(err)
	}
	diags, err := analysis.RunPackage(fset, files, pkg, info, analysis.All())
	if err != nil {
		log.Fatal(err)
	}
	writeVetx()
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

package poolsafefix

// slot is a slab element: released as whole arrays, so the free
// function's subject is the []slot it returns.
//
//simlint:pooled
type slot struct {
	task *obj
	id   int64
}

// releaseSlots is the compliant slab release: clear wipes every
// element before the array is recycled.
//
//simlint:free
func releaseSlots(xs []slot) []slot {
	clear(xs)
	return xs
}

//simlint:free
func releaseDirty(xs []slot) []slot { // want `releaseDirty releases a \[\]slot slab without clearing its elements`
	return xs
}

// wrap deliberately retains its buffer across recycles — but the keep
// tag below is missing its mandatory reason.
//
//simlint:pooled
type wrap struct {
	//simlint:keep
	buf []byte // want `//simlint:keep on wrap\.buf needs a reason`
	n   int
}

var wrapPool []*wrap

//simlint:free
func freeWrap(w *wrap) {
	wrapPool = append(wrapPool, w)
}

// arena retains its buffer too, with the reason the tag demands: the
// whole point of pooling it is keeping the allocation.
//
//simlint:pooled
type arena struct {
	buf []byte //simlint:keep the backing array is the pooled asset; len is reset by the next init
	n   int
}

var arenaPool []*arena

//simlint:free
func freeArena(a *arena) {
	arenaPool = append(arenaPool, a)
}

package sim

import "testing"

func TestTickerFiresPeriodically(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	tk := NewTicker(e, 20, 0, func() { times = append(times, e.Now()) })
	e.RunUntil(100)
	want := []Time{0, 20, 40, 60, 80, 100}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
	if tk.Firings() != uint64(len(want)) {
		t.Fatalf("Firings = %d, want %d", tk.Firings(), len(want))
	}
}

func TestTickerPhase(t *testing.T) {
	e := NewEngine(1)
	var times []Time
	NewTicker(e, 20, 7, func() { times = append(times, e.Now()) })
	e.RunUntil(50)
	want := []Time{7, 27, 47}
	if len(times) != len(want) {
		t.Fatalf("fired at %v, want %v", times, want)
	}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("fired at %v, want %v", times, want)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(e, 10, 0, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	e.RunUntil(1000)
	if n != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3, want 3", n)
	}
	if e.Pending() != 0 && peekLive(e) {
		t.Fatal("stopped ticker left live events pending")
	}
}

func peekLive(e *Engine) bool {
	return e.sched.peek() != nil
}

func TestTickerStopExternally(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tk := NewTicker(e, 10, 0, func() { n++ })
	e.Schedule(35, func() { tk.Stop() })
	e.Run()
	if n != 4 { // t=0,10,20,30
		t.Fatalf("ticker fired %d times, want 4", n)
	}
	if tk.Period() != 10 {
		t.Fatalf("Period = %d, want 10", tk.Period())
	}
}

func TestTickerBadArgsPanic(t *testing.T) {
	e := NewEngine(1)
	for _, tc := range []struct{ period, phase Time }{{0, 0}, {-5, 0}, {5, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewTicker(%d,%d) did not panic", tc.period, tc.phase)
				}
			}()
			NewTicker(e, tc.period, tc.phase, func() {})
		}()
	}
}

package sim

// eventHeap is a min-heap of events ordered by (at, seq). It is
// hand-rolled rather than built on container/heap to avoid interface
// boxing on the hot path: a full comparison run of the paper's suite pops
// a few hundred million events. Since PR 5 it serves two roles: the
// selectable standing scheduler (SchedHeap) and the far-future overflow
// tier of the default two-tier wheel (wheel.go).
//
// The branching factor is a parameter because the obvious d-ary-heap
// optimization was tried and rejected: arity 4 halves the tree depth
// but pays ≤3 sibling comparisons per level on the way down, and on
// the heap-heaviest case in the ledger (open/ctrl-grid32-gm — 1024
// PEs' tickers and timers resident in the heap) it measured ~5% FEWER
// events/sec than the binary heap (see the heap_experiment record in
// BENCH_PR3.json). The standing heap here is thousands of events, so
// depth is cheap, while Timer.Stop's removeAt and every re-arm push
// lean on up(), which arity only makes shallower at the cost of wider
// down() — the trade does not pay at this heap shape. Re-measure with
// cmd/bench before changing heapArity.
type eventHeap []*Event

const heapArity = 2

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) push(ev *Event) {
	*h = append(*h, ev)
	ev.index = len(*h) - 1
	h.up(ev.index)
}

// peek returns the next live event without removing it, discarding any
// cancelled events encountered at the top.
func (h *eventHeap) peek() *Event {
	for len(*h) > 0 {
		top := (*h)[0]
		if !top.canceled {
			return top
		}
		h.popTop()
	}
	return nil
}

// pop removes and returns the earliest event, or nil if empty. Cancelled
// events may be returned; the engine skips them.
func (h *eventHeap) pop() *Event {
	if len(*h) == 0 {
		return nil
	}
	return h.popTop()
}

func (h *eventHeap) popTop() *Event {
	old := *h
	n := len(old)
	top := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if n > 1 {
		h.down(0)
	}
	top.index = -1
	return top
}

// remove deletes a scheduled event in O(log n) using the index field
// events carry. Timer.Stop uses it (via the scheduler interface) so a
// stopped timer leaves no cancelled tombstone behind and can re-arm its
// one Event at once.
func (h *eventHeap) remove(ev *Event) {
	h.removeAt(ev.index)
}

// size reports the number of scheduled events (cancelled included).
func (h *eventHeap) size() int { return len(*h) }

// removeAt deletes the event at heap position i in O(log n) using the
// index field events carry.
func (h *eventHeap) removeAt(i int) {
	old := *h
	n := len(old)
	ev := old[i]
	old.swap(i, n-1)
	old[n-1] = nil
	*h = old[:n-1]
	if i < n-1 {
		h.down(i)
		h.up(i)
	}
	ev.index = -1
}

func (h eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / heapArity
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h eventHeap) down(i int) {
	n := len(h)
	for {
		first := heapArity*i + 1
		if first >= n {
			return
		}
		smallest := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

// Package sim implements the deterministic discrete-event simulation
// engine underneath the multiprocessor model — the Go analogue of the
// kernel of ORACLE, the SIMSCRIPT simulator the paper's experiments were
// run on.
//
// The engine maintains a virtual clock and a pending-event set ordered by
// (time, insertion sequence). Resources such as processing elements and
// communication channels are modelled by the machine package as state
// machines that schedule their own continuation events.
//
// # Determinism
//
// A run is a pure function of its seed: two events at the same virtual
// time fire in the order they were scheduled, and every stochastic choice
// inside the simulated system draws from the engine's single seeded
// generator (Rng). Streams that merely feed or observe the system — job
// arrival processes, utilization samplers — draw from their own salted
// generators derived from the same seed, so turning a workload stream or
// a monitor on or off never perturbs the system's tie-break draws.
//
// # Performance model
//
// A full comparison run of the paper's suite pops a few hundred million
// events, so the hot path is engineered to allocate nothing in steady
// state:
//
//   - The pending set is a hand-rolled indexed binary heap ([]*Event with
//     each Event carrying its heap position), avoiding container/heap's
//     interface boxing and enabling O(log n) removal.
//   - Schedule/At allocate one Event per call and return it as a
//     cancellable handle; those handles are never recycled, so a stale
//     handle is always safe.
//   - ScheduleAction/AtAction take an Action value instead of a closure,
//     return no handle, and recycle the backing Event through a free
//     list: steady-state messaging costs zero allocations per event.
//   - Timer owns one embedded Event it re-arms for every firing — the
//     building block for tickers, PE service completions and arrival
//     pumps. Ticker is built on Timer, so periodic processes allocate
//     only at construction.
//
// The engine is intentionally single-goroutine: one simulation run is a
// sequential computation over virtual time. Parallelism belongs one level
// up, where the experiment harness runs many independent simulations on
// separate goroutines.
package sim

package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cwnsim/internal/machine"
	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/trace"
)

// RunSpec is one complete simulation specification.
type RunSpec struct {
	Label          string       `json:"label,omitempty"`
	Topo           TopoSpec     `json:"topo"`
	Workload       WorkloadSpec `json:"workload"`
	Strategy       StrategySpec `json:"strategy"`
	Arrival        ArrivalSpec  `json:"arrival,omitzero"`         // zero value = the paper's single job
	Seed           int64        `json:"seed,omitempty"`           // default 1
	Warmup         int64        `json:"warmup,omitempty"`         // steady-state warm-up exclusion; 0 = off
	SampleInterval int64        `json:"sampleInterval,omitempty"` // time-series sampling; 0 = off
	MonitorPE      bool         `json:"monitorPE,omitempty"`      // per-PE frames (needs SampleInterval)
	LoadMetric     string       `json:"loadMetric,omitempty"`     // "", "queue", "queue+pending"
	GoalHopTime    int64        `json:"goalHopTime,omitempty"`    // override; 0 = default
	RespHopTime    int64        `json:"respHopTime,omitempty"`
	MaxTime        int64        `json:"maxTime,omitempty"`      // measurement horizon override; 0 = default
	SojournBound   int64        `json:"sojournBound,omitempty"` // cap on retained sojourn observations; 0 = exact
	SeriesBound    int64        `json:"seriesBound,omitempty"`  // cap on retained time-series points/frames; 0 = exact

	// Scheduler selects the engine's pending-event structure: "" or
	// "wheel" for the two-tier bucket wheel (the default), "heap" for
	// the standing binary heap. Results are identical either way
	// (pinned by the sched cross-check test); only events/sec differs —
	// see the perf ledger's sched-two-tier section.
	Scheduler string `json:"scheduler,omitempty"`

	// Shards > 0 runs the machine on that many conservative-lookahead
	// spatial shards (machine.Config.Shards): 0 = sequential reference,
	// 1 = the windowed protocol bit-for-bit equal to sequential, >= 2 =
	// parallel execution with deterministic results per (seed, shards).
	// ShardSerial replays a sharded run's window protocol on one
	// goroutine — the determinism reference the shard cross-check pins
	// parallel runs against.
	Shards      int  `json:"shards,omitempty"`
	ShardSerial bool `json:"shardSerial,omitempty"`

	// Scenario scripts a dynamic environment into the run, in the
	// compact text form of scenario.Parse — e.g.
	// "fail:pes=25%@t=5000,recover@t=10000". Empty = static machine.
	Scenario string `json:"scenario,omitempty"`
	// RetryLimit bounds crash retries per job before the machine
	// abandons it (machine.Config.RetryLimit); 0 retries without bound.
	// RetryBackoff delays each retry by attempt × RetryBackoff virtual
	// time units. Only meaningful with a crashing Scenario.
	RetryLimit   int   `json:"retryLimit,omitempty"`
	RetryBackoff int64 `json:"retryBackoff,omitempty"`
	// NoGoalDetail switches off the per-goal QueueDelay/GoalHops/
	// GoalDist bookkeeping (machine.Config.TrackGoalDetail) for sweeps
	// that only read latency and throughput.
	NoGoalDetail bool `json:"noGoalDetail,omitempty"`

	// Trace attaches an event sink to the run (machine.Config.Trace);
	// nil = no tracing. Not serializable — set programmatically, e.g.
	// by the CLIs' -trace-out span export. Sinks see events on one
	// goroutine only (sharded runs replay at finalize), but a sink must
	// still not be shared between concurrently executing specs.
	Trace trace.Sink `json:"-"`
}

// Name returns a human-readable run identifier.
func (rs RunSpec) Name() string {
	if rs.Label != "" {
		return rs.Label
	}
	name := fmt.Sprintf("%s | %s | %s", rs.Strategy.Label(), rs.Topo.Label(), rs.Workload.Label())
	if !rs.Arrival.IsSingle() {
		name += " | " + rs.Arrival.Label()
	}
	if rs.Scenario != "" {
		name += " | " + rs.Scenario
	}
	return name
}

// Config materializes the machine configuration for this run.
func (rs RunSpec) Config() machine.Config {
	cfg := machine.DefaultConfig()
	if rs.Seed != 0 {
		cfg.Seed = rs.Seed
	}
	cfg.Warmup = sim.Time(rs.Warmup)
	cfg.SampleInterval = sim.Time(rs.SampleInterval)
	cfg.MonitorPE = rs.MonitorPE
	if rs.LoadMetric == "queue+pending" {
		cfg.LoadMetric = machine.LoadQueuePlusPending
	}
	if rs.GoalHopTime > 0 {
		cfg.GoalHopTime = sim.Time(rs.GoalHopTime)
	}
	if rs.RespHopTime > 0 {
		cfg.RespHopTime = sim.Time(rs.RespHopTime)
	}
	if rs.MaxTime > 0 {
		cfg.MaxTime = sim.Time(rs.MaxTime)
	}
	cfg.SojournBound = int(rs.SojournBound)
	cfg.SeriesBound = int(rs.SeriesBound)
	cfg.TrackGoalDetail = !rs.NoGoalDetail
	switch rs.Scheduler {
	case "", "wheel":
		cfg.Scheduler = sim.SchedWheel
	case "heap":
		cfg.Scheduler = sim.SchedHeap
	default:
		panic(fmt.Sprintf("experiments: unknown scheduler %q (want heap or wheel)", rs.Scheduler))
	}
	if rs.Scenario != "" {
		sc, err := scenario.Parse(rs.Scenario)
		if err != nil {
			panic(err.Error()) // ExecuteErr converts spec panics to errors
		}
		cfg.Scenario = sc
	}
	cfg.RetryLimit = rs.RetryLimit
	cfg.RetryBackoff = sim.Time(rs.RetryBackoff)
	cfg.Shards = rs.Shards
	cfg.ShardSerial = rs.ShardSerial
	cfg.Trace = rs.Trace
	return cfg
}

// Result is the outcome of one run.
type Result struct {
	Spec     RunSpec
	Stats    *machine.Stats
	Goals    int
	Util     float64 // percent, the paper's y-axis
	Speedup  float64
	Bound    float64 // min(P, T1/T∞): the workload's speedup ceiling
	Balance  float64 // Jain index over per-PE busy time
	AvgHops  float64
	Makespan sim.Time
	Wall     time.Duration

	// Stream metrics (single-job runs report their one job here too).
	Jobs       int64   // completed jobs
	MeanSoj    float64 // mean sojourn time, warm-up excluded
	P50Soj     float64 // median sojourn
	P99Soj     float64 // tail sojourn — the serving benchmark's headline
	Throughput float64 // completed jobs per unit virtual time, whole run
	SteadyTput float64 // completions per unit time, post-warm-up window only

	// Scenario metrics (zero / nil on static runs). EffUtil is busy
	// time over the capacity that actually existed (blackout time
	// excluded). Recovery is the tail-latency recovery report keyed by
	// job COMPLETION time and RecoveryInj its companion keyed by job
	// INJECTION time (what newly arriving jobs saw); both present when
	// the run sampled (SampleInterval > 0).
	Requeued    int64
	EffUtil     float64
	Recovery    *scenario.Recovery
	RecoveryInj *scenario.Recovery

	// Crash (state-loss) metrics, zero under blackout-only scripts:
	// goals destroyed or discarded by crashes, job attempts aborted,
	// root re-injections performed, and jobs given up after exhausting
	// RetryLimit. Goodput is completed over injected jobs — the
	// availability figure a bounded-retry policy trades against
	// latency (1 on a healthy completed run).
	GoalsLost     int64
	JobsAborted   int64
	JobsRetried   int64
	JobsAbandoned int64
	Goodput       float64
}

// OfBound returns the measured speedup as a fraction of the workload's
// parallelism ceiling on this machine size.
func (r *Result) OfBound() float64 {
	if r.Bound == 0 {
		return 0
	}
	return r.Speedup / r.Bound
}

// Saturated reports whether the run hit its measurement horizon with
// jobs still in flight — the stream outran the machine.
func (r *Result) Saturated() bool { return !r.Stats.Completed }

// ExecuteErr builds and runs the specified simulation synchronously. A
// single-job run that hits MaxTime returns an error (a goal was lost or
// the machine is misconfigured — the closed system must drain). An
// arrival stream that hits MaxTime is the saturation regime: it is
// reported as a Result with Saturated() true, not an error. Builder and
// configuration panics (unknown registry kinds, bad arrival parameters,
// invalid warm-up) are converted to errors, so a bad spec fails its own
// run rather than crashing a whole sweep.
func (rs RunSpec) ExecuteErr() (*Result, error) { return rs.ExecuteWithPool(nil) }

// ExecuteWithPool is ExecuteErr lending the machine a shared object
// pool (machine.Config.Pool), so sequential runs on one goroutine reuse
// each other's wire messages, goals, pending tasks and job states
// instead of re-allocating the working set per run. Results are
// bit-for-bit identical to unpooled execution (pinned by regression
// test); pass nil for no pooling.
func (rs RunSpec) ExecuteWithPool(pool *machine.Pool) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			// Name() rebuilds the strategy and would re-panic on an
			// unknown kind; identify the run by its raw spec labels.
			res, err = nil, fmt.Errorf("experiments: run %s|%s|%s: %v",
				rs.Strategy.Kind, rs.Topo.Label(), rs.Workload.Label(), r)
		}
	}()
	topo := rs.Topo.Build()
	tree := rs.Workload.Build()
	strat := rs.Strategy.Build()
	cfg := rs.Config()
	if cfg.Shards == 0 {
		// Sharded machines keep per-shard free lists; a shared pool is
		// sequential-only (Config.Pool doc) and validate rejects the mix.
		cfg.Pool = pool
	}
	start := time.Now()
	m := machine.NewStream(topo, rs.Arrival.Build(tree), strat, cfg)
	st := m.Run()
	if !st.Completed && rs.Arrival.IsSingle() {
		return nil, fmt.Errorf("experiments: run %q aborted at MaxTime=%d — a goal was lost or the machine is misconfigured", rs.Name(), cfg.MaxTime)
	}
	if st.Stalled {
		return nil, fmt.Errorf("experiments: run %q stalled with %d job(s) in flight and no work anywhere — a goal was lost", rs.Name(), st.JobsInjected-st.JobsDone)
	}
	// Bound is a closed-system figure (one tree's parallelism ceiling);
	// it has no analogue for a stream's aggregate speedup, so stream
	// runs report 0 rather than a misleading per-job ceiling.
	var bound float64
	if rs.Arrival.IsSingle() {
		bound = tree.MaxSpeedup(int64(cfg.GrainTime), int64(cfg.CombineTime))
		if p := float64(topo.Size()); bound > p {
			bound = p
		}
	}
	res = &Result{
		Spec:          rs,
		Stats:         st,
		Goals:         st.Goals,
		Util:          st.UtilizationPercent(),
		Speedup:       st.Speedup(),
		Bound:         bound,
		Balance:       st.BalanceIndex(),
		AvgHops:       st.AvgGoalHops(),
		Makespan:      st.Makespan,
		Wall:          time.Since(start),
		Jobs:          st.JobsDone,
		MeanSoj:       st.MeanSojourn(),
		P50Soj:        st.SojournP50(),
		P99Soj:        st.SojournP99(),
		Throughput:    st.Throughput(),
		SteadyTput:    st.SteadyThroughput(),
		Requeued:      st.GoalsRequeued,
		EffUtil:       100 * st.EffectiveUtilization(),
		GoalsLost:     st.GoalsLost,
		JobsAborted:   st.JobsAborted,
		JobsRetried:   st.JobsRetried,
		JobsAbandoned: st.JobsAbandoned,
		Goodput:       st.Goodput(),
	}
	if !cfg.Scenario.Empty() && cfg.SampleInterval > 0 {
		// Recovery reads disruption/restore times from the machine's
		// EXPANDED script — chaos generators resolved — in both
		// keyings: completion-time windows (stragglers echo past the
		// restore) and injection-time windows (what new arrivals saw).
		script := m.ScenarioScript()
		rec := scenario.AnalyzeRecovery(script, st.SojournWindows,
			st.GoalsRequeued, st.ServiceAborts, scenario.AnalyzeConfig{})
		res.Recovery = &rec
		recInj := scenario.AnalyzeRecovery(script, st.InjSojournWindows,
			st.GoalsRequeued, st.ServiceAborts, scenario.AnalyzeConfig{})
		res.RecoveryInj = &recInj
	}
	return res, nil
}

// Execute is ExecuteErr for callers that treat failure as fatal.
func (rs RunSpec) Execute() *Result {
	r, err := rs.ExecuteErr()
	if err != nil {
		panic(err.Error())
	}
	return r
}

// RunAll executes specs concurrently on up to workers goroutines
// (workers <= 0 selects GOMAXPROCS) and returns results in spec order.
// Each simulation is single-threaded and independent; parallelism across
// runs is free determinism-wise, and each worker reuses one
// machine.Pool across the runs it executes, so replicated sweeps pay
// the object-allocation warm-up once per worker instead of once per
// run. A failing run leaves a nil slot in the results and contributes
// to the joined error, so one bad spec no longer crashes a whole sweep.
func RunAll(specs []RunSpec, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool := &machine.Pool{}
			for i := range next {
				results[i], errs[i] = specs[i].ExecuteWithPool(pool)
			}
		}()
	}
	for i := range specs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results, errors.Join(errs...)
}

package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"cwnsim/internal/sim"
)

// Hop is one goal-message transmission: the goal left From toward To at
// virtual time At.
type Hop struct {
	At       sim.Time
	From, To int
}

// Accept is one acceptance of a goal into a PE's ready queue. Most
// goals have exactly one; strategies with re-distribution (GM, ACWN)
// may pluck a queued goal back out and re-export it, producing another
// hop round and another Accept — the re-export chain.
type Accept struct {
	At sim.Time
	PE int
}

// Span is one goal's folded lifecycle: created → (hops → accepted)* →
// executing → responded. Timestamps that never happened (a goal cut off
// at the horizon, a root goal's response) are -1.
type Span struct {
	Goal      int64
	CreatedAt sim.Time
	CreatedPE int

	Hops    []Hop
	Accepts []Accept

	ExecStart sim.Time
	ExecEnd   sim.Time
	ExecPE    int

	RespSentAt      sim.Time
	RespFrom        int
	RespTo          int
	RespDeliveredAt sim.Time
}

// end returns the span's last known instant — the close of its
// lifetime slice even when the run cut it off mid-flight.
func (s *Span) end() sim.Time {
	t := s.CreatedAt
	for _, h := range s.Hops {
		if h.At > t {
			t = h.At
		}
	}
	for _, a := range s.Accepts {
		if a.At > t {
			t = a.At
		}
	}
	for _, c := range []sim.Time{s.ExecStart, s.ExecEnd, s.RespSentAt, s.RespDeliveredAt} {
		if c > t {
			t = c
		}
	}
	return t
}

// Spans folds the flat event stream into per-goal spans — the causal
// view of a run. It implements Sink; attach it as Config.Trace (or one
// arm of a Multi), then query the spans or export them with
// WritePerfetto. Like every sink it sees events on one goroutine only:
// live on sequential runs, replayed in merged order at finalize on
// sharded ones.
type Spans struct {
	byGoal map[int64]*Span
	maxPE  int
}

// Record implements Sink.
func (sp *Spans) Record(ev Event) {
	if sp.byGoal == nil {
		sp.byGoal = make(map[int64]*Span)
	}
	if ev.PE > sp.maxPE {
		sp.maxPE = ev.PE
	}
	if ev.Other > sp.maxPE {
		sp.maxPE = ev.Other
	}
	s := sp.byGoal[ev.Goal]
	if s == nil {
		s = &Span{Goal: ev.Goal, CreatedAt: ev.At, CreatedPE: ev.PE,
			ExecStart: -1, ExecEnd: -1, ExecPE: -1,
			RespSentAt: -1, RespFrom: -1, RespTo: -1, RespDeliveredAt: -1}
		sp.byGoal[ev.Goal] = s
	}
	switch ev.Kind {
	case GoalCreated:
		s.CreatedAt, s.CreatedPE = ev.At, ev.PE
	case GoalSent:
		s.Hops = append(s.Hops, Hop{At: ev.At, From: ev.PE, To: ev.Other})
	case GoalAccepted:
		s.Accepts = append(s.Accepts, Accept{At: ev.At, PE: ev.PE})
	case GoalExecStarted:
		s.ExecStart, s.ExecPE = ev.At, ev.PE
	case GoalExecuted:
		s.ExecEnd, s.ExecPE = ev.At, ev.PE
	case RespSent:
		s.RespSentAt, s.RespFrom, s.RespTo = ev.At, ev.PE, ev.Other
	case RespDelivered:
		s.RespDeliveredAt = ev.At
	}
}

// Len returns the number of goals spanned.
func (sp *Spans) Len() int { return len(sp.byGoal) }

// Span returns goal id's span, or nil.
func (sp *Spans) Span(id int64) *Span { return sp.byGoal[id] }

// All returns every span ordered by goal ID — a deterministic order for
// both the sequential machine (IDs mint sequentially) and sharded runs
// (IDs band per shard).
func (sp *Spans) All() []*Span {
	out := make([]*Span, 0, len(sp.byGoal))
	for _, s := range sp.byGoal {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Goal < out[j].Goal })
	return out
}

// path renders the goal's travel as "pe>pe>..." from its creation PE
// through every hop destination.
func (s *Span) path() string {
	p := fmt.Sprintf("%d", s.CreatedPE)
	for _, h := range s.Hops {
		p += fmt.Sprintf(">%d", h.To)
	}
	return p
}

// WritePerfetto renders the spans as Chrome trace-event JSON — the
// format Perfetto and chrome://tracing load directly. The mapping: one
// trace "process" per PE; each goal's execution window is an "X"
// complete slice on its executing PE's track (PEs serve one message at
// a time, so slices never overlap); the whole created-to-responded
// lifetime is an async "b"/"e" span anchored at the creating PE, with
// the hop path and accept count in its args (re-export chains show as
// accepts > 1); each goal-message hop is an "i" instant on the sending
// PE; the response trip is a second async span from executor to
// parent. Virtual time units are written as microseconds (the format's
// ts unit) one-to-one. Output is deterministic: spans emit in goal-ID
// order, integers only.
func (sp *Spans) WritePerfetto(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			fmt.Fprint(bw, ",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for pe := 0; pe <= sp.maxPE; pe++ {
		emit(`{"ph":"M","name":"process_name","pid":%d,"args":{"name":"PE %d"}}`, pe, pe)
		emit(`{"ph":"M","name":"process_sort_index","pid":%d,"args":{"sort_index":%d}}`, pe, pe)
	}
	for _, s := range sp.All() {
		emit(`{"ph":"b","cat":"goal","id":"%d","name":"goal %d","pid":%d,"tid":0,"ts":%d,"args":{"hops":%d,"accepts":%d,"path":"%s"}}`,
			s.Goal, s.Goal, s.CreatedPE, s.CreatedAt, len(s.Hops), len(s.Accepts), s.path())
		emit(`{"ph":"e","cat":"goal","id":"%d","name":"goal %d","pid":%d,"tid":0,"ts":%d}`,
			s.Goal, s.Goal, s.CreatedPE, s.end())
		for _, h := range s.Hops {
			emit(`{"ph":"i","cat":"hop","name":"goal %d: %d->%d","pid":%d,"tid":0,"ts":%d,"s":"p"}`,
				s.Goal, h.From, h.To, h.From, h.At)
		}
		if s.ExecEnd >= 0 {
			start := s.ExecStart
			if start < 0 {
				start = s.ExecEnd // stream lacked exec-start events
			}
			emit(`{"ph":"X","cat":"exec","name":"goal %d","pid":%d,"tid":0,"ts":%d,"dur":%d}`,
				s.Goal, s.ExecPE, start, s.ExecEnd-start)
		}
		if s.RespSentAt >= 0 {
			end := s.RespDeliveredAt
			if end < 0 {
				end = s.end() // response still on the wire at the horizon
			}
			emit(`{"ph":"b","cat":"resp","id":"%d","name":"resp %d","pid":%d,"tid":0,"ts":%d,"args":{"to":%d}}`,
				s.Goal, s.Goal, s.RespFrom, s.RespSentAt, s.RespTo)
			emit(`{"ph":"e","cat":"resp","id":"%d","name":"resp %d","pid":%d,"tid":0,"ts":%d}`,
				s.Goal, s.Goal, s.RespFrom, end)
		}
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

package workload

import (
	"testing"
	"testing/quick"
)

func TestSequentialTime(t *testing.T) {
	// fib(5): 15 goals, 7 inner nodes with 2 kids each.
	tr := NewFib(5)
	inner := tr.Count() - tr.Leaves()
	want := int64(tr.Count())*10 + int64(inner)*2*5
	if got := tr.SequentialTime(10, 5); got != want {
		t.Errorf("T1 = %d, want %d", got, want)
	}
}

func TestCriticalPathChain(t *testing.T) {
	// A chain has zero parallelism: T∞ differs from T1 only in combine
	// accounting (each inner node has one child: T1 charges 1 combine,
	// the chain also passes through it).
	tr := NewChain(100)
	t1 := tr.SequentialTime(10, 5)
	cp := tr.CriticalPath(10, 5)
	if cp != t1 {
		t.Errorf("chain: T∞ %d != T1 %d", cp, t1)
	}
	if s := tr.MaxSpeedup(10, 5); s != 1.0 {
		t.Errorf("chain max speedup = %f, want 1", s)
	}
}

func TestCriticalPathFullBinary(t *testing.T) {
	// Depth-d full binary tree: T∞ = (d+1)*grain + d*combine.
	tr := NewFullBinary(6)
	want := int64(7)*10 + int64(6)*5
	if got := tr.CriticalPath(10, 5); got != want {
		t.Errorf("T∞ = %d, want %d", got, want)
	}
	// Plenty of parallelism: bound far above 1.
	if s := tr.MaxSpeedup(10, 5); s < 10 {
		t.Errorf("binary tree max speedup = %f, want >> 1", s)
	}
}

func TestCriticalPathLeaf(t *testing.T) {
	tr := NewFib(0)
	if got := tr.CriticalPath(10, 5); got != 10 {
		t.Errorf("leaf T∞ = %d, want 10", got)
	}
	if tr.MaxSpeedup(10, 5) != 1 {
		t.Error("leaf max speedup != 1")
	}
}

func TestCriticalPathDeepNoOverflow(t *testing.T) {
	tr := NewChain(200000)
	if tr.CriticalPath(10, 5) <= 0 {
		t.Fatal("deep chain critical path failed")
	}
}

func TestQuickCriticalPathBounds(t *testing.T) {
	// For any tree: T∞ <= T1, and T∞ >= (depth+1)*grain.
	f := func(seed int64, raw uint8) bool {
		goals := int(raw)%400 + 1
		tr := NewRandom(RandomConfig{Seed: seed, Goals: goals, MaxKids: 4, MaxWork: 2, LeafValue: 1})
		t1 := tr.SequentialTime(10, 5)
		cp := tr.CriticalPath(10, 5)
		return cp <= t1 && cp >= int64(tr.Depth()+1)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFibCriticalPathRecurrence(t *testing.T) {
	// span(n) = grain + span(n-1) + combine for n >= 2 (left child is
	// always the deeper one).
	for n := 2; n <= 12; n++ {
		a := NewFib(n).CriticalPath(10, 5)
		b := NewFib(n-1).CriticalPath(10, 5)
		if a != 10+b+5 {
			t.Errorf("fib(%d): span %d != grain + span(fib(%d))=%d + combine", n, a, n-1, b)
		}
	}
}

// Irregular: the paper's motivation is that symbolic computations have
// unpredictable structure. This example builds an irregular random task
// tree whose parallelism waxes and wanes — plus a pathological skewed
// tree — and shows how CWN and the Gradient Model cope, including the
// per-PE utilization heat map that reproduces ORACLE's graphics monitor.
//
// Run with: go run ./examples/irregular
package main

import (
	"fmt"
	"os"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/report"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func main() {
	topo := topology.NewDLM(10, 10, 5)

	// An irregular computation: ~2000 goals, 2-4 children per task,
	// task grain varying 1x-3x.
	irregular := workload.NewRandom(workload.RandomConfig{
		Seed:      42,
		Goals:     2000,
		MaxKids:   4,
		MaxWork:   3,
		LeafValue: 1,
	})
	// A worst case: a maximally unbalanced caterpillar tree.
	skewed := workload.NewSkewed(400)

	for _, tree := range []*workload.Tree{irregular, skewed} {
		fmt.Printf("=== %s ===\n", tree)
		for _, strat := range []machine.Strategy{core.PaperCWNDLM(), core.PaperGMDLM()} {
			cfg := machine.DefaultConfig()
			stats := machine.New(topo, tree, strat, cfg).Run()
			fmt.Printf("%-16s util %5.1f%%  speedup %6.2f  makespan %6d  avg hops %.2f\n",
				strat.Name(), stats.UtilizationPercent(), stats.Speedup(), stats.Makespan, stats.AvgGoalHops())

			if tree == irregular {
				hm := report.NewHeatmap(fmt.Sprintf("  per-PE utilization under %s", strat.Name()), 10, 10)
				for i := 0; i < stats.P; i++ {
					hm.Values[i] = stats.PEUtilization(i)
				}
				hm.Render(os.Stdout)
			}
		}
		fmt.Println()
	}
}

package core

import (
	"fmt"

	"cwnsim/internal/machine"
)

// CWN is the Contracting-Within-a-Neighborhood strategy (Kale). Every
// newly created goal is immediately contracted out: it is sent to the
// source's least-loaded neighbor and then walks the steepest local load
// gradient until it reaches a local load minimum — but no nearer to its
// source than Horizon hops ("looking over the horizon") and no farther
// than Radius hops. A goal accepted by a PE executes there and is never
// re-sent.
type CWN struct {
	// Radius is the maximum distance (in hops) a goal message may
	// travel; a message that has travelled Radius hops must be kept.
	Radius int
	// Horizon is the minimum number of hops a goal must have travelled
	// before a PE may keep it for being a local load minimum. A source
	// PE can never keep its own new goal regardless of Horizon.
	Horizon int
	// StrictMinimum selects the local-minimum test. The paper's text
	// says "own load is less than its least loaded neighbor's" (strict);
	// with integer loads and frequent ties a strict test almost never
	// stops a goal early and nearly every goal walks out to the full
	// radius. The paper's published hop histogram (Table 3: ~48% of
	// goals stopping after one hop, mean 3.15) is only consistent with
	// accepting on ties, so the default is the non-strict test; set
	// StrictMinimum for the literal reading. See EXPERIMENTS.md.
	StrictMinimum bool
	// FailureAware opts the nodes into PEFailed/PERecovered events
	// (machine.FailureAware): on a neighbor's failure a node sheds part
	// of its queue to its least-loaded live neighbor before the
	// evacuation flood lands, and on a neighbor's recovery it backfills
	// the empty PE with queued goals immediately — instead of waiting
	// for new goals to contract there. Off (sentinel-only, the PR 3
	// behaviour) by default.
	FailureAware bool
}

// shedBatch caps how many queued goals one availability event may move:
// enough to matter (a recovered PE gets real work at once), small
// enough that one event cannot stampede a queue onto a single neighbor.
const shedBatch = 8

// NewCWN returns a CWN strategy. The paper's tuned parameters are
// radius 9 / horizon 2 on grids and radius 5 / horizon 1 on
// double-lattice-meshes (Table 1).
func NewCWN(radius, horizon int) *CWN {
	if radius < 1 {
		panic("core: CWN radius must be >= 1")
	}
	if horizon < 0 || horizon > radius {
		panic("core: CWN horizon must be in [0, radius]")
	}
	return &CWN{Radius: radius, Horizon: horizon}
}

// Name implements machine.Strategy.
func (s *CWN) Name() string {
	if s.FailureAware {
		return fmt.Sprintf("CWN+fa(r=%d,h=%d)", s.Radius, s.Horizon)
	}
	return fmt.Sprintf("CWN(r=%d,h=%d)", s.Radius, s.Horizon)
}

// Setup implements machine.Strategy.
func (s *CWN) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *CWN) NewNode(pe *machine.PE) machine.NodeStrategy {
	return &cwnNode{s: s, pe: pe}
}

type cwnNode struct {
	s  *CWN
	pe *machine.PE
}

// WantsFailureEvents implements machine.FailureAware, gated on the
// strategy flag so sentinel-only and failure-aware CWN compare head to
// head through identical machinery.
func (n *cwnNode) WantsFailureEvents() bool { return n.s.FailureAware }

// HandleEvent implements machine.NodeStrategy.
func (n *cwnNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		n.place(ev.Goal)
	case machine.GoalArrived:
		n.arrived(ev.Goal)
	case machine.PEFailed:
		// A neighbor died: its evacuees are about to land here. Make
		// room by spreading part of the standing queue one hop down the
		// load gradient now, not after the flood has serialized.
		n.shed(n.pe.QueuedGoals() / 2)
	case machine.PERecovered:
		// The neighbor came back empty. Backfill it immediately — new
		// goals alone would take a full contraction cycle to find it.
		n.backfill(ev.From)
	}
}

// place contracts every new goal out to the least-loaded neighbor
// ("this scheme sends every subgoal out to another PE as soon as it is
// created"). On a machine with a single PE it degenerates to local
// execution.
func (n *cwnNode) place(g *machine.Goal) {
	nbr, _ := n.pe.LeastLoadedNeighbor()
	if nbr < 0 {
		n.pe.Accept(g)
		return
	}
	n.pe.SendGoal(nbr, g)
}

// arrived implements the contraction walk: keep when the radius is
// exhausted; keep when this PE is a known local load minimum and the
// goal has looked over the horizon; otherwise forward down the steepest
// load gradient (possibly straight back where it came from — the walk
// distance, not the displacement, is what Radius bounds).
func (n *cwnNode) arrived(g *machine.Goal) {
	if g.Hops >= n.s.Radius {
		n.pe.Accept(g)
		return
	}
	if g.Hops >= n.s.Horizon && isLocalMinimum(n.pe, n.s.StrictMinimum) {
		n.pe.Accept(g)
		return
	}
	nbr, _ := n.pe.LeastLoadedNeighbor()
	if nbr < 0 {
		n.pe.Accept(g)
		return
	}
	n.pe.SendGoal(nbr, g)
}

// shed re-exports up to max (capped at shedBatch) queued goals to the
// least-loaded known neighbor, skipping the move when no neighbor looks
// lighter than this PE.
func (n *cwnNode) shed(max int) {
	if max > shedBatch {
		max = shedBatch
	}
	for i := 0; i < max; i++ {
		nbr, load := n.pe.LeastLoadedNeighbor()
		if nbr < 0 || load >= n.pe.Load() {
			return
		}
		g := n.pe.TakeNewestQueuedGoal()
		if g == nil {
			return
		}
		n.pe.SendGoal(nbr, g)
	}
}

// backfill pushes up to half this PE's queued goals (capped at
// shedBatch) to the just-recovered neighbor.
func (n *cwnNode) backfill(to int) {
	max := n.pe.QueuedGoals() / 2
	if max > shedBatch {
		max = shedBatch
	}
	for i := 0; i < max; i++ {
		g := n.pe.TakeNewestQueuedGoal()
		if g == nil {
			return
		}
		n.pe.SendGoal(to, g)
	}
}

// isLocalMinimum reports whether pe's own load makes it a local load
// minimum among its known neighbor loads.
func isLocalMinimum(pe *machine.PE, strict bool) bool {
	if strict {
		return pe.Load() < pe.MinNeighborLoad()
	}
	return pe.Load() <= pe.MinNeighborLoad()
}

package scenario

import (
	"math/rand"
	"sort"

	"cwnsim/internal/sim"
)

// chaosSeedSalt decorrelates the chaos generator's stream from the
// run's engine, arrival and observer streams (which salt the same user
// seed): availability sweeps can share one seed across all four
// processes without the failure timeline echoing the arrival timeline.
const chaosSeedSalt int64 = 0x5E3779B97F4A7C15

// Expand resolves the script's Chaos generator events into concrete
// single-PE failure/recovery timelines on a machine of numPEs
// processors with measurement horizon `horizon`, leaving every other
// event untouched. A script with no Chaos events is returned as-is
// (same pointer — the empty scenario stays free). Expansion is a pure
// function of (generator parameters, numPEs, horizon): the same seed
// always yields the identical timeline, pinned by regression test.
func (s *Script) Expand(numPEs int, horizon sim.Time) *Script {
	if s.Empty() {
		return s
	}
	any := false
	for _, e := range s.Events {
		if e.Kind == Chaos {
			any = true
			break
		}
	}
	if !any {
		return s
	}
	out := &Script{Events: make([]Event, 0, len(s.Events))}
	for _, e := range s.Events {
		if e.Kind != Chaos {
			out.Events = append(out.Events, e)
			continue
		}
		out.Events = append(out.Events, e.generate(numPEs, horizon)...)
	}
	return out
}

// generate draws one chaos event's concrete timeline: failure instants
// arrive as a Poisson process (exponential gaps, mean MTBF) starting at
// the event's At, each striking a uniformly chosen PE and holding it
// down for an exponential repair time (mean MTTR, floor one unit). A PE
// already down when struck absorbs the failure (the draw is still
// consumed, keeping the stream aligned), and a strike that would take
// the last live PE down is skipped — the machine refuses to lose its
// final processor.
func (e Event) generate(numPEs int, horizon sim.Time) []Event {
	rng := rand.New(rand.NewSource(e.Seed ^ chaosSeedSalt))
	until := e.Until
	if until <= 0 || until > horizon {
		until = horizon
	}
	failKind := FailPE
	if e.Crash {
		failKind = CrashPE
	}
	downUntil := make([]float64, numPEs)
	var out []Event
	t := float64(e.At)
	for {
		t += rng.ExpFloat64() * e.MTBF
		at := sim.Time(t)
		if at >= until {
			break
		}
		pe := rng.Intn(numPEs)
		repair := rng.ExpFloat64() * e.MTTR
		if repair < 1 {
			repair = 1
		}
		if downUntil[pe] > t {
			continue // struck while already down: absorbed
		}
		live := 0
		for _, du := range downUntil {
			if du <= t {
				live++
			}
		}
		if live <= 1 {
			continue // never take the last live PE down
		}
		rec := t + repair
		downUntil[pe] = rec
		out = append(out,
			Event{At: at, Kind: failKind, PEs: []int{pe}},
			Event{At: sim.Time(rec), Kind: RecoverPE, PEs: []int{pe}})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

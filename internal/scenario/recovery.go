package scenario

import (
	"fmt"
	"math"
	"sort"

	"cwnsim/internal/metrics"
	"cwnsim/internal/sim"
)

// Recovery is the headline report of a scenario run: how far the
// disruption pushed tail latency and how long the system took to find
// its way back after the environment was restored.
type Recovery struct {
	// DisruptAt and RestoreAt bracket the scripted disturbance: the
	// first and last event times.
	DisruptAt sim.Time
	RestoreAt sim.Time

	// BaselineP99 is the median of the windowed sojourn p99 before the
	// disruption — the steady state to restore. NaN when no window
	// completed before DisruptAt.
	BaselineP99 float64
	// PeakP99 is the worst windowed p99 observed at or after the
	// disruption. NaN when no window completed after it.
	PeakP99 float64

	// SteadyAgainAt is the end of the first window at or after RestoreAt
	// from which the windowed p99 stays within Tolerance of baseline for
	// the remainder of the run, confirmed by at least Consecutive
	// in-band windows (sim.Never when the p99 never settles or the run
	// ends before confirmation).
	SteadyAgainAt sim.Time
	// TimeToSteady is SteadyAgainAt − RestoreAt (sim.Never when p99
	// never settles).
	TimeToSteady sim.Time

	// GoalsRequeued counts goals evacuated from failed PEs or redirected
	// away from them on arrival; ServiceAborts counts executions cut off
	// mid-service by a failure (their work was lost and redone).
	GoalsRequeued int64
	ServiceAborts int64
}

// Recovered reports whether the tail latency settled back to baseline
// within the measured horizon.
func (r Recovery) Recovered() bool { return r.SteadyAgainAt != sim.Never }

// TableCells renders the recovery triple the CLI tables share:
// baseline and peak windowed p99 ("-" when no window produced a
// datum) and time-to-steady ("never" when the p99 did not settle). A
// nil receiver — no recovery report, e.g. an unsampled run — yields
// all dashes.
func (r *Recovery) TableCells() (baseline, peak, settle string) {
	if r == nil {
		return "-", "-", "-"
	}
	f := func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.0f", v)
	}
	settle = "never"
	if r.Recovered() {
		settle = fmt.Sprintf("%d", r.TimeToSteady)
	}
	return f(r.BaselineP99), f(r.PeakP99), settle
}

// String renders a one-line recovery summary.
func (r Recovery) String() string {
	settle := "never settled"
	if r.Recovered() {
		settle = fmt.Sprintf("steady again at t=%d (+%d after restore)", r.SteadyAgainAt, r.TimeToSteady)
	}
	return fmt.Sprintf("disrupt@%d restore@%d p99 %.0f→%.0f peak, %s, %d goals requeued (%d aborts)",
		r.DisruptAt, r.RestoreAt, r.BaselineP99, r.PeakP99, settle, r.GoalsRequeued, r.ServiceAborts)
}

// AnalyzeConfig tunes steadiness detection.
type AnalyzeConfig struct {
	// Tolerance is the relative band around baseline that counts as
	// "restored" (1 = within 2× baseline). The default is 1: windowed
	// p99 of a healthy system already fluctuates tens of percent at
	// practical window sizes, and jobs injected during the disruption
	// keep echoing into completion-time windows long after restore — a
	// tighter band mostly measures that noise. Default 1.
	Tolerance float64
	// Consecutive is the minimum number of in-band windows that must
	// confirm the return to baseline — a guard against a single lucky
	// final window. Default 2.
	Consecutive int
}

func (c *AnalyzeConfig) defaults() {
	if c.Tolerance <= 0 {
		c.Tolerance = 1
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 2
	}
}

// AnalyzeRecovery computes the recovery report for script from the
// windowed sojourn-p99 series a scenario run records (one point per
// sampling window that completed at least one job). The requeue and
// abort counts are passed through from the run's stats. cfg may be
// zero for defaults.
func AnalyzeRecovery(script *Script, p99 metrics.Series, requeued, aborts int64, cfg AnalyzeConfig) Recovery {
	cfg.defaults()
	r := Recovery{
		DisruptAt:     script.DisruptAt(),
		RestoreAt:     script.RestoreAt(),
		BaselineP99:   math.NaN(),
		PeakP99:       math.NaN(),
		SteadyAgainAt: sim.Never,
		TimeToSteady:  sim.Never,
		GoalsRequeued: requeued,
		ServiceAborts: aborts,
	}
	if script.Empty() {
		return r
	}

	var before []float64
	for _, p := range p99.Points {
		if sim.Time(p.T) <= r.DisruptAt {
			before = append(before, p.V)
		} else if math.IsNaN(r.PeakP99) || p.V > r.PeakP99 {
			r.PeakP99 = p.V
		}
	}
	if len(before) == 0 {
		return r // no pre-disruption window: nothing to measure against
	}
	sort.Float64s(before)
	r.BaselineP99 = before[len(before)/2]

	// The restore point is the start of the last in-band stretch that
	// holds through the end of the run: a strategy that dips back to
	// baseline and blows up again later has not recovered.
	band := r.BaselineP99 * (1 + cfg.Tolerance)
	candidate, inBand := sim.Never, 0
	for _, p := range p99.Points {
		if sim.Time(p.T) < r.RestoreAt {
			continue
		}
		if p.V <= band {
			if candidate == sim.Never {
				candidate = sim.Time(p.T)
			}
			inBand++
		} else {
			candidate, inBand = sim.Never, 0
		}
	}
	if candidate != sim.Never && inBand >= cfg.Consecutive {
		r.SteadyAgainAt = candidate
		r.TimeToSteady = candidate - r.RestoreAt
		if r.TimeToSteady < 0 {
			r.TimeToSteady = 0
		}
	}
	return r
}

// Package seqonlyfix exercises the seqonly analyzer: functions
// reachable from a //simlint:seqonly file must not reach
// //simlint:globalstate fields unguarded. Trace, SampleInterval and
// Scenario are deliberately untagged — they model the shard-safe
// features (per-shard capture merged at finalize; scripted scenarios
// replayed by the coordinator at window barriers), so the analyzer must
// stay silent on unguarded reaches into them.
package seqonlyfix

type sink interface{ Emit(string) }

type script struct{ events []string }

type pool struct{ free []int64 }

type config struct {
	Trace          sink    // shard-safe: per-shard buffers replayed at finalize
	SampleInterval int64   // shard-safe: synchronized per-shard sampling
	Scenario       *script // shard-safe: ops applied at window barriers
	Pool           *pool   //simlint:globalstate free lists are single-threaded
}

type machine struct {
	cfg  config
	seen int64
}

// emit reaches the untagged Trace field unguarded — shard-safe, never
// reported.
func (m *machine) emit(ev string) {
	m.cfg.Trace.Emit(ev)
}

// sampleWindow reaches the untagged SampleInterval unguarded — also
// never reported.
func (m *machine) sampleWindow() int64 {
	return m.cfg.SampleInterval
}

// applyOps reaches the untagged Scenario unguarded — shard-safe since
// the barrier-replay retag, never reported even though shard-path code
// calls it.
func (m *machine) applyOps() {
	m.cfg.Scenario.events = nil
}

func (m *machine) poolGet() int64 {
	return m.cfg.Pool.free[0] // want `shard-path code reaches sequential-only feature Pool unguarded \(reached via step → poolGet\)`
}

// recycle is a trusted boundary: the traversal stops here and its Pool
// reference below is never reported.
//
//simlint:seqsafe only called back from the sequential driver after the shard group has torn down
func (m *machine) recycle() {
	m.cfg.Pool.free = nil
}

//simlint:seqsafe
func (m *machine) recycleNoReason() { // want `//simlint:seqsafe on recycleNoReason needs a reason`
	m.cfg.Pool.free = nil
}

// offPath reaches Pool unguarded but is not reachable from the seqonly
// file: never reported.
func (m *machine) offPath() {
	m.cfg.Pool.free = nil
}

package machine

import "cwnsim/internal/sim"

// chanState models one communication channel (link or bus) as a serial
// FIFO server: exactly one message occupies the channel at a time;
// requests queue in arrival order. This mirrors ORACLE's "one process
// per communication channel" contention model without materializing a
// queue — because service is FIFO and non-preemptive, tracking the time
// the channel frees up is sufficient.
type chanState struct {
	id        int
	members   []int
	busyUntil sim.Time
	busyTotal sim.Time
	messages  int64
}

// MsgKind classifies traffic for accounting.
type MsgKind uint8

const (
	// MsgGoal is a goal (new work) message.
	MsgGoal MsgKind = iota
	// MsgResponse is a completed goal's value travelling to its parent.
	MsgResponse
	// MsgLoad is the short periodic load-information word.
	MsgLoad
	// MsgControl is a strategy control message (e.g. GM proximity).
	MsgControl
	numMsgKinds
)

func (k MsgKind) String() string {
	switch k {
	case MsgGoal:
		return "goal"
	case MsgResponse:
		return "response"
	case MsgLoad:
		return "load"
	case MsgControl:
		return "control"
	default:
		return "unknown"
	}
}

// transmit occupies the channel for dur units starting when it next
// frees up, then invokes deliver. Returns the delivery time.
func (m *Machine) transmit(ch *chanState, dur sim.Time, deliver func()) sim.Time {
	start := m.eng.Now()
	if ch.busyUntil > start {
		start = ch.busyUntil
	}
	end := start + dur
	ch.busyUntil = end
	ch.busyTotal += dur
	ch.messages++
	m.eng.At(end, deliver)
	return end
}

// pickChannel returns the least-backlogged channel among the candidates
// (channel IDs), breaking ties toward the lower ID. Bus topologies give
// a PE pair up to two parallel buses; links give exactly one.
func (m *Machine) pickChannel(candidates []int) *chanState {
	best := m.chans[candidates[0]]
	for _, ci := range candidates[1:] {
		if m.chans[ci].busyUntil < best.busyUntil {
			best = m.chans[ci]
		}
	}
	return best
}

package topology

import (
	"reflect"
	"testing"
)

// implPairs returns (materialized, implicit) builds of the same network
// for every implicit family, over sizes that exercise the degenerate
// dimensions (1 and 2, where wrap links vanish) as well as squares,
// rectangles and the hypercube range.
func implPairs() [][2]*Topology {
	var pairs [][2]*Topology
	dims := [][2]int{
		{1, 1}, {1, 2}, {2, 1}, {1, 5}, {5, 1}, {2, 2}, {2, 3}, {3, 2},
		{2, 5}, {5, 2}, {3, 3}, {3, 7}, {7, 3}, {4, 4}, {5, 5}, {8, 8},
		{6, 10}, {10, 6}, {10, 10}, {16, 16},
	}
	for _, d := range dims {
		pairs = append(pairs,
			[2]*Topology{NewGrid(d[0], d[1]), NewGridImplicit(d[0], d[1])},
			[2]*Topology{NewTorus(d[0], d[1]), NewTorusImplicit(d[0], d[1])})
	}
	for dim := 0; dim <= 8; dim++ {
		pairs = append(pairs, [2]*Topology{NewHypercube(dim), NewHypercubeImplicit(dim)})
	}
	return pairs
}

// TestImplicitMatchesMaterialized pins the implicit forms bit-for-bit
// against the materialized builds on every accessor the simulator uses:
// channel numbering and member order, adjacency order, routing, degrees,
// and partition blocks. The machine layer depends on this equivalence —
// it is what makes switching a big run to the implicit form a pure
// memory-layout change with identical results.
func TestImplicitMatchesMaterialized(t *testing.T) {
	for _, pair := range implPairs() {
		mat, imp := pair[0], pair[1]
		if !imp.Implicit() || mat.Implicit() {
			t.Fatalf("%s: Implicit() flags wrong way around", mat.Name())
		}
		if mat.Name() != imp.Name() {
			t.Fatalf("name mismatch: %q vs %q", mat.Name(), imp.Name())
		}
		name := mat.Name()
		if mat.Size() != imp.Size() {
			t.Fatalf("%s: size %d vs %d", name, mat.Size(), imp.Size())
		}
		n := mat.Size()

		// Channel list: count, IDs, member order.
		mc, ic := mat.Channels(), imp.Channels()
		if len(mc) != imp.NumChannels() || len(mc) != len(ic) {
			t.Fatalf("%s: %d channels materialized, %d implicit", name, len(mc), len(ic))
		}
		for ci := range mc {
			if !reflect.DeepEqual(mc[ci], ic[ci]) {
				t.Fatalf("%s: channel %d: %+v vs %+v", name, ci, mc[ci], ic[ci])
			}
			if got := imp.ChannelAt(ci); !reflect.DeepEqual(mc[ci], got) {
				t.Fatalf("%s: ChannelAt(%d): %+v vs %+v", name, ci, mc[ci], got)
			}
			if got := imp.AppendChannelMembers(nil, ci); !equalInts(mc[ci].Members, got) {
				t.Fatalf("%s: AppendChannelMembers(%d): %v vs %v", name, ci, mc[ci].Members, got)
			}
		}

		// Per-PE adjacency: neighbor order, channel order, degree.
		for pe := 0; pe < n; pe++ {
			if !equalInts(mat.Neighbors(pe), imp.Neighbors(pe)) {
				t.Fatalf("%s: Neighbors(%d): %v vs %v", name, pe, mat.Neighbors(pe), imp.Neighbors(pe))
			}
			if got := imp.AppendNeighbors(nil, pe); !equalInts(mat.Neighbors(pe), got) {
				t.Fatalf("%s: AppendNeighbors(%d): %v vs %v", name, pe, mat.Neighbors(pe), got)
			}
			if !equalInts(mat.ChannelsOf(pe), imp.ChannelsOf(pe)) {
				t.Fatalf("%s: ChannelsOf(%d): %v vs %v", name, pe, mat.ChannelsOf(pe), imp.ChannelsOf(pe))
			}
			if got := imp.AppendChannelsOf(nil, pe); !equalInts(mat.ChannelsOf(pe), got) {
				t.Fatalf("%s: AppendChannelsOf(%d): %v vs %v", name, pe, mat.ChannelsOf(pe), got)
			}
			if mat.Degree(pe) != imp.Degree(pe) || imp.Degree(pe) != len(mat.Neighbors(pe)) {
				t.Fatalf("%s: Degree(%d): %d vs %d", name, pe, mat.Degree(pe), imp.Degree(pe))
			}
		}

		// Pairwise: channels-between, distance, next hop.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !equalInts(mat.ChannelsBetween(a, b), imp.ChannelsBetween(a, b)) {
					t.Fatalf("%s: ChannelsBetween(%d,%d): %v vs %v",
						name, a, b, mat.ChannelsBetween(a, b), imp.ChannelsBetween(a, b))
				}
				if got := imp.AppendChannelsBetween(nil, a, b); !equalInts(mat.ChannelsBetween(a, b), got) {
					t.Fatalf("%s: AppendChannelsBetween(%d,%d): %v vs %v",
						name, a, b, mat.ChannelsBetween(a, b), got)
				}
				if mat.Dist(a, b) != imp.Dist(a, b) {
					t.Fatalf("%s: Dist(%d,%d): %d vs %d", name, a, b, mat.Dist(a, b), imp.Dist(a, b))
				}
				if mat.NextHop(a, b) != imp.NextHop(a, b) {
					t.Fatalf("%s: NextHop(%d,%d): %d vs %d", name, a, b, mat.NextHop(a, b), imp.NextHop(a, b))
				}
			}
		}

		// Aggregates.
		if mat.Diameter() != imp.Diameter() {
			t.Fatalf("%s: Diameter: %d vs %d", name, mat.Diameter(), imp.Diameter())
		}
		if mat.MaxDegree() != imp.MaxDegree() {
			t.Fatalf("%s: MaxDegree: %d vs %d", name, mat.MaxDegree(), imp.MaxDegree())
		}
		if mat.AvgDegree() != imp.AvgDegree() {
			t.Fatalf("%s: AvgDegree: %g vs %g", name, mat.AvgDegree(), imp.AvgDegree())
		}
		if mat.String() != imp.String() {
			t.Fatalf("%s: String: %q vs %q", name, mat.String(), imp.String())
		}

		// Partition blocks and cross-channel sets, every shard count up
		// to a cap (the full range on small machines).
		maxShards := n
		if maxShards > 12 {
			maxShards = 12
		}
		for shards := 1; shards <= maxShards; shards++ {
			pm, pi := mat.Partition(shards), imp.Partition(shards)
			if !equalInts(pm.Assign, pi.Assign) || !equalInts(pm.Starts, pi.Starts) || !equalInts(pm.Cross, pi.Cross) {
				t.Fatalf("%s: Partition(%d) diverged:\n mat assign=%v starts=%v cross=%v\n imp assign=%v starts=%v cross=%v",
					name, shards, pm.Assign, pm.Starts, pm.Cross, pi.Assign, pi.Starts, pi.Cross)
			}
			lat := func(ch Channel) int64 { return int64(ch.ID%3 + 1) }
			lm, okm := pm.MinCrossLatency(lat)
			li, oki := pi.MinCrossLatency(lat)
			if lm != li || okm != oki {
				t.Fatalf("%s: MinCrossLatency(%d): (%d,%v) vs (%d,%v)", name, shards, lm, okm, li, oki)
			}
		}
	}
}

// TestImplicitLargeSpotChecks exercises the implicit forms at sizes the
// materialized build cannot reach, checking internal consistency: every
// listed neighbor is mutual, linked by exactly the channel the ID
// arithmetic names, and channel IDs are a bijection onto [0, NumChannels).
func TestImplicitLargeSpotChecks(t *testing.T) {
	for _, topo := range []*Topology{
		NewTorusImplicit(1000, 1000),
		NewGridImplicit(512, 512),
		NewHypercubeImplicit(20),
	} {
		n := topo.Size()
		// Probe a deterministic scatter of PEs rather than all of them.
		for pe := 0; pe < n; pe += n/97 + 1 {
			for _, nb := range topo.Neighbors(pe) {
				if topo.Dist(pe, nb) != 1 {
					t.Fatalf("%s: neighbor %d of %d at distance %d", topo.Name(), nb, pe, topo.Dist(pe, nb))
				}
				cis := topo.ChannelsBetween(pe, nb)
				if len(cis) != 1 {
					t.Fatalf("%s: %d channels between neighbors %d,%d", topo.Name(), len(cis), pe, nb)
				}
				members := topo.AppendChannelMembers(nil, cis[0])
				if !(members[0] == pe && members[1] == nb) && !(members[0] == nb && members[1] == pe) {
					t.Fatalf("%s: channel %d members %v, want {%d,%d}", topo.Name(), cis[0], members, pe, nb)
				}
			}
			// ChannelsOf must be ascending and mutual.
			prev := -1
			for _, ci := range topo.ChannelsOf(pe) {
				if ci <= prev {
					t.Fatalf("%s: ChannelsOf(%d) not ascending", topo.Name(), pe)
				}
				prev = ci
				if ci < 0 || ci >= topo.NumChannels() {
					t.Fatalf("%s: ChannelsOf(%d) out of range: %d", topo.Name(), pe, ci)
				}
			}
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package machine

import (
	"fmt"
	"math"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/trace"
)

// LoadMetric selects how a PE's advertised load is computed.
type LoadMetric int

const (
	// LoadQueue counts the messages (goals + responses) waiting in the
	// ready queue — the paper's measure.
	LoadQueue LoadMetric = iota
	// LoadQueuePlusPending adds the number of tasks blocked awaiting
	// responses: the "future commitments" refinement the paper's
	// conclusions propose after observing the extended tail in Plot 11.
	LoadQueuePlusPending
)

func (m LoadMetric) String() string {
	switch m {
	case LoadQueue:
		return "queue"
	case LoadQueuePlusPending:
		return "queue+pending"
	default:
		return fmt.Sprintf("LoadMetric(%d)", int(m))
	}
}

// Config holds the machine's charged times and policies. All durations
// are in abstract simulation units, as in the paper. Use DefaultConfig
// and override fields as needed.
type Config struct {
	// Seed drives every random choice in the run (tie-breaks, ticker
	// phases). Equal seeds give identical runs.
	Seed int64

	// Scheduler selects the engine's pending-event structure: the
	// two-tier bucket wheel + overflow heap (sim.SchedWheel, the zero
	// value and default) or the standing binary heap (sim.SchedHeap).
	// Both fire events in the same (time, sequence) order, so results
	// are bit-for-bit identical either way (pinned by cross-check
	// tests); only the events/sec differ — the wheel measured 1.8-3.4x
	// across the ledger matrix (sched-two-tier section).
	Scheduler sim.SchedulerKind

	// GrainTime is the PE service time to execute one goal body
	// (multiplied by the task's Work factor).
	GrainTime sim.Time
	// CombineTime is the PE service time to integrate one response
	// message into its waiting parent task.
	CombineTime sim.Time

	// GoalHopTime is the channel occupancy for one hop of a goal
	// message; RespHopTime likewise for responses and CtrlHopTime for
	// the "very short" load/control words. The paper chose these low
	// relative to GrainTime so that communication stagnation does not
	// interfere with the load-distribution comparison.
	GoalHopTime sim.Time
	RespHopTime sim.Time
	CtrlHopTime sim.Time

	// LoadInterval is the period of each PE's load-information broadcast
	// to its neighbors; <= 0 disables periodic broadcasts (piggybacking
	// may still propagate loads).
	LoadInterval sim.Time
	// PiggybackLoad stamps the sender's current load on every message,
	// updating the receiver's view on delivery — the paper's
	// optimization.
	PiggybackLoad bool
	// LoadMetric selects the advertised load definition.
	LoadMetric LoadMetric

	// SampleInterval is the utilization time-series sampling period
	// (plots 11-16); <= 0 disables sampling. Shard-safe: on a sharded
	// run every shard samples its own PE block at the same globally
	// synchronized instants (the observer ticker's phase derives from
	// the plain run seed, identical on every shard), and the
	// coordinator folds the per-shard partial sums into one
	// machine-wide series at finalize. One shard reproduces the
	// sequential series bit for bit.
	SampleInterval sim.Time
	// MonitorPE additionally records every PE's utilization at each
	// sample — ORACLE's load-distribution monitor (requires
	// SampleInterval > 0). Frames land in Stats.Monitor; a sharded run
	// concatenates each shard's PE block into full-machine frames at
	// finalize.
	MonitorPE bool
	// Trace receives lifecycle events (goal created/sent/accepted/
	// executed, responses). nil disables tracing. Shard-safe: shards
	// buffer their events privately in engine order and the coordinator
	// replays the merged (At, shard, seq)-ordered stream into the sink
	// at finalize, so Record always runs on one goroutine (trace
	// package doc, "Sharded runs").
	Trace trace.Sink

	// RootPE is where the root goal is injected.
	RootPE int

	// MaxTime aborts a run that has not completed by this virtual time.
	// For single-job runs it is a safety net (completed runs stop at
	// root-response delivery); for arrival streams it bounds the
	// measurement horizon — an overloaded stream legitimately runs to
	// MaxTime with jobs still in flight (saturation).
	MaxTime sim.Time

	// Warmup excludes the stream's ramp-up from steady-state statistics:
	// jobs injected before Warmup are left out of the steady sojourn
	// sample, and SteadyUtilization measures busy time accrued after
	// this instant. 0 (the default) disables the exclusion and adds no
	// events to the run.
	Warmup sim.Time

	// StaggerTicks randomizes each periodic process's phase within its
	// first period, so the PEs' asynchronous processes do not fire in
	// lockstep. Simulation processes draw phases from the run's seeded
	// engine stream; observer processes (the utilization sampler) draw
	// from a dedicated salted stream so monitoring cannot perturb the
	// simulated result.
	StaggerTicks bool

	// SojournBound caps the run's per-job memory. Beyond the cap the
	// sojourn samples collapse into a bounded-memory streaming
	// histogram (mean/min/max/count stay exact, percentiles become
	// approximate with ~3% relative error) and Stats.JobRecords stops
	// growing — only the first SojournBound records are retained. 0
	// (the default) keeps every observation and record: exact
	// percentiles, memory linear in completed jobs.
	SojournBound int

	// SeriesBound caps every sampled time series (Timeline, QueueLen,
	// QueueImbalance, SojournWindows, InjSojournWindows) at this many
	// retained points and the per-PE Monitor at this many frames: past
	// the cap a series halves itself and doubles its recording stride
	// (metrics.Series.Bound), so a month-long virtual run holds a
	// uniformly thinned timeline instead of millions of points.
	// Retained points keep their exact windowed values — only time
	// resolution is lost — but recovery analysis over a bounded
	// SojournWindows reads a coarser grid, so scenario runs should
	// bound generously. 0 (the default) retains every sample: bounded
	// memory is opt-in, like SojournBound, because the paper-scale runs
	// are short and exact plots are the point. 4096 points cover a
	// month of virtual time at SampleInterval=100 with two halvings and
	// ~64KB per series — the recommended setting for long-horizon
	// sweeps (decision record: ROADMAP perf section). The raw
	// injection-window buckets behind InjSojournWindows are bounded the
	// same way: past the cap, adjacent buckets merge pairwise and the
	// window width doubles, so the finalized series reads a coarser
	// injection grid with exact per-window percentiles.
	SeriesBound int

	// PESpeeds optionally makes the machine heterogeneous: PE i's
	// service times are divided by PESpeeds[i] (1.0 = nominal, 0.5 =
	// half speed). nil means uniform speed — the paper's setting. An
	// extension knob: load balancing on heterogeneous machines.
	PESpeeds []float64

	// TrackGoalDetail enables the per-goal bookkeeping behind
	// Stats.QueueDelay, GoalHops and GoalDist (paper Table 3).
	// DefaultConfig sets it true; large open-system sweeps that only
	// read latency and throughput can switch it off to trim per-goal
	// work from the hot path. CAUTION: a Config built literally (not
	// via DefaultConfig) leaves it false and records no goal detail —
	// as with every other field, start from DefaultConfig.
	TrackGoalDetail bool

	// Pool, when non-nil, shares the machine's object free lists across
	// sequential runs: construction borrows the pooled wire messages,
	// goals, pending tasks and job states, and finalize returns them.
	// Results are unaffected (recycled objects are fully reinitialized);
	// only allocation volume changes. Not safe for concurrent machines —
	// one Pool per worker goroutine.
	Pool *Pool //simlint:globalstate free lists are single-threaded; validate rejects it under Shards

	// Scenario optionally scripts a dynamic environment into the run:
	// PE slowdowns and failures, link degradation and outages,
	// checkpoint ticks and arrival-rate shocks, replayed
	// deterministically at their scripted virtual times. nil (or an
	// empty script) leaves the run bit-for-bit identical to an
	// unscripted one. Shard-safe: a sharded run expands the script once
	// at construction and the coordinator lands a window barrier on
	// each op's exact scripted instant, applying it there — before that
	// instant's machine events, like the sequential engine — and
	// routing it to the shards owning the affected PEs and channels
	// (see machine doc.go, "Sharded execution").
	Scenario *scenario.Script

	// RetryLimit bounds how many times a crash-aborted job is retried
	// before the machine gives up on it (Stats.JobsAbandoned). 0 (the
	// default) retries unconditionally — the pre-policy behavior, where
	// JobsRetried == JobsAborted always. Only meaningful with a
	// Scenario that crashes PEs.
	RetryLimit int

	// RetryBackoff delays each retry's root re-injection by
	// attempt-number × RetryBackoff virtual time units (first retry
	// waits one backoff, second two, ...). 0 (the default) re-injects
	// immediately at the abort instant, as before.
	RetryBackoff sim.Time

	// Shards > 0 partitions the PE index space into that many contiguous
	// spatial shards, each owning its own event engine and (for Shards
	// >= 2) its own goroutine, synchronized by conservative lookahead
	// windows — the parallel runtime for large machines (see
	// internal/machine doc.go, "Sharded execution"). 0 (the default) is
	// the sequential reference engine. Shards == 1 runs the full
	// windowed shard protocol on a single shard and is bit-for-bit
	// identical to sequential (pinned by cross-check tests); Shards >= 2
	// runs deterministically (a pure function of seed and shard count,
	// independent of thread schedule) but orders same-timestamp events
	// differently than the sequential machine, so only conservation
	// totals — per-PE goal counts, job counts, sojourn distributions —
	// are comparable bit-for-bit against it. The count is clamped to the
	// machine size. Sharded runs reject Pool (see validate) and refuse
	// SequentialOnly strategies; sampling, monitoring, tracing and
	// scripted Scenarios are shard-safe (per-shard capture / barrier
	// application, merged deterministically at finalize).
	Shards int

	// ShardSerial executes a sharded run's window protocol on a single
	// goroutine, shard by shard, instead of in parallel — same code
	// path, same event order, no concurrency. A parallel run must match
	// its serial replay bit for bit (pinned by cross-check tests): that
	// is the proof the parallel result does not depend on the thread
	// schedule. Meaningful only with Shards >= 2.
	ShardSerial bool
}

// DefaultConfig returns the parameters used for the paper reproduction:
// grain 10, combine 5, goal/response hop 2, control hop 1, load and
// gradient intervals 20 (the paper's "fairly low" 20 units against total
// execution times of 1000-23000), piggybacking on.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		GrainTime:       10,
		CombineTime:     5,
		GoalHopTime:     2,
		RespHopTime:     2,
		CtrlHopTime:     1,
		LoadInterval:    20,
		PiggybackLoad:   true,
		LoadMetric:      LoadQueue,
		SampleInterval:  0,
		RootPE:          0,
		MaxTime:         2_000_000,
		StaggerTicks:    true,
		TrackGoalDetail: true,
	}
}

// validate panics on configurations that would make the simulation
// meaningless.
func (c *Config) validate(numPEs int) {
	if c.GrainTime <= 0 {
		panic("machine: GrainTime must be positive")
	}
	if c.CombineTime <= 0 {
		panic("machine: CombineTime must be positive")
	}
	if c.GoalHopTime <= 0 || c.RespHopTime <= 0 || c.CtrlHopTime <= 0 {
		panic("machine: hop times must be positive")
	}
	if c.RootPE < 0 || c.RootPE >= numPEs {
		panic(fmt.Sprintf("machine: RootPE %d out of range [0,%d)", c.RootPE, numPEs))
	}
	if c.MaxTime <= 0 {
		panic("machine: MaxTime must be positive")
	}
	if c.Warmup < 0 {
		panic("machine: Warmup must be non-negative")
	}
	if c.Warmup >= c.MaxTime {
		panic("machine: Warmup must precede MaxTime")
	}
	if c.PESpeeds != nil {
		if len(c.PESpeeds) != numPEs {
			panic(fmt.Sprintf("machine: PESpeeds has %d entries for %d PEs", len(c.PESpeeds), numPEs))
		}
		for i, s := range c.PESpeeds {
			// !(s > 0) also rejects NaN, which `s <= 0` lets through.
			if !(s > 0) || math.IsInf(s, 0) {
				panic(fmt.Sprintf("machine: PESpeeds[%d] = %v must be finite and positive", i, s))
			}
		}
	}
	if err := c.Scenario.Validate(numPEs); err != nil {
		panic(err.Error())
	}
	if c.RetryLimit < 0 {
		panic("machine: RetryLimit must be non-negative")
	}
	if c.RetryBackoff < 0 {
		panic("machine: RetryBackoff must be non-negative")
	}
	if c.MonitorPE && c.SampleInterval <= 0 {
		panic("machine: MonitorPE requires SampleInterval > 0")
	}
	if c.SojournBound < 0 {
		panic("machine: SojournBound must be non-negative")
	}
	if c.SeriesBound < 0 {
		panic("machine: SeriesBound must be non-negative")
	}
	if c.SeriesBound == 1 {
		panic("machine: SeriesBound must be 0 (exact) or >= 2")
	}
	if c.Shards < 0 {
		panic("machine: Shards must be non-negative")
	}
	if c.Shards > 0 {
		// The sharded runtime covers the steady-state measurement
		// configuration (big machines, arrival streams, final statistics),
		// the observability features (sampling, monitoring, tracing —
		// captured per shard, merged deterministically at finalize) and
		// scripted Scenarios (ops applied at window barriers by the
		// coordinator). The one remaining global-state feature stays
		// sequential: Pool free lists are single-threaded by design.
		if c.Pool != nil {
			panic("machine: Shards is incompatible with Pool (free lists are per-shard)")
		}
	}
}

package core

import (
	"fmt"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
)

// Gradient is the Gradient Model of Lin and Keller as described in
// Section 2.2 of the paper. New goals stay on their source PE. A
// periodic per-PE gradient process classifies the PE by its load —
// idle (< LowWater), abundant (> HighWater), else neutral — maintains a
// proximity value (its guess at the distance to the nearest idle PE,
// clamped to diameter+1), broadcasts the proximity to neighbors when it
// changes, and, when abundant, exports one queued goal per wakeup to the
// neighbor with least proximity. A PE receiving a goal message just
// enqueues it.
type Gradient struct {
	// LowWater / HighWater are the watermarks. Paper (Table 1): low 1 /
	// high 2 on grids, low 1 / high 1 on double-lattice-meshes.
	LowWater  int
	HighWater int
	// Interval is the gradient process period (paper: 20 units — "fairly
	// low" against total execution times of 1000-23000).
	Interval sim.Time
	// RequireTarget, when set, suppresses export while no idle PE is
	// inferred anywhere (all neighbor proximities at the clamp value).
	// The paper's text exports unconditionally when abundant; this gate
	// exists for the ablation study.
	RequireTarget bool
	// ExportNewest exports the most recently created queued goal instead
	// of the queue front. The paper says only "a goal message from the
	// local queue"; taking the front (oldest, typically the largest
	// waiting subtree) is both the natural queue discipline and the only
	// reading under which GM approaches the near-full utilization the
	// paper's plots show, so it is the default. See EXPERIMENTS.md.
	ExportNewest bool
	// FailureAware opts the nodes into PEFailed/PERecovered events —
	// the recovery path plain GM lacks entirely: a failed neighbor's
	// proximity is pinned unreachable at once (no work drifts toward a
	// dead region on stale gradient data), and a recovered neighbor is
	// treated as the idle PE it is — proximity zero, plus an immediate
	// batch export instead of the one-goal-per-wakeup trickle that left
	// PR 3's blackout backlogs standing forever. Off by default.
	FailureAware bool
}

// NewGradient returns a Gradient Model strategy with the paper's
// semantics (RequireTarget off).
func NewGradient(lowWater, highWater int, interval sim.Time) *Gradient {
	if lowWater < 0 || highWater < lowWater {
		panic("core: Gradient watermarks must satisfy 0 <= low <= high")
	}
	if interval <= 0 {
		panic("core: Gradient interval must be positive")
	}
	return &Gradient{LowWater: lowWater, HighWater: highWater, Interval: interval}
}

// Name implements machine.Strategy.
func (s *Gradient) Name() string {
	if s.FailureAware {
		return fmt.Sprintf("GM+fa(l=%d,h=%d,i=%d)", s.LowWater, s.HighWater, s.Interval)
	}
	return fmt.Sprintf("GM(l=%d,h=%d,i=%d)", s.LowWater, s.HighWater, s.Interval)
}

// Setup implements machine.Strategy.
func (s *Gradient) Setup(m *machine.Machine) {}

// proxUpdate is the control payload carrying a PE's new proximity.
type proxUpdate int32

// NewNode implements machine.Strategy.
func (s *Gradient) NewNode(pe *machine.PE) machine.NodeStrategy {
	maxProx := int32(pe.Machine().Topology().Diameter() + 1)
	n := &gmNode{
		s:       s,
		pe:      pe,
		maxProx: maxProx,
		nbrProx: make([]int32, len(pe.Neighbors())),
		// "All the PEs initially assume that the proximities of their
		// neighbors are 0", so nbrProx starts zeroed; own proximity
		// starts at 0 too (nothing has been broadcast yet).
	}
	pe.Machine().NewTicker(pe, s.Interval, n.tick)
	return n
}

type gmNode struct {
	s       *Gradient
	pe      *machine.PE
	maxProx int32
	myProx  int32
	nbrProx []int32 // indexed parallel to pe.Neighbors()
}

// peState is the gradient process's three-way classification.
type peState uint8

const (
	stateIdle peState = iota
	stateNeutral
	stateAbundant
)

func (s *Gradient) classify(load int) peState {
	switch {
	case load < s.LowWater:
		return stateIdle
	case load > s.HighWater:
		return stateAbundant
	default:
		return stateNeutral
	}
}

// tick is one wakeup of the asynchronous gradient process.
func (n *gmNode) tick() {
	load := n.pe.Load()
	state := n.s.classify(load)

	// Recompute own proximity.
	var p int32
	if state == stateIdle {
		p = 0
	} else {
		p = n.minNbrProx() + 1
		if p > n.maxProx {
			p = n.maxProx
		}
	}
	if p != n.myProx {
		n.myProx = p
		n.pe.BroadcastControl(proxUpdate(p))
	}

	if state != stateAbundant {
		return
	}
	if n.s.RequireTarget && n.minNbrProx() >= n.maxProx {
		return
	}
	target := n.leastProxNeighbor()
	if target < 0 {
		return
	}
	if g := n.takeExport(); g != nil {
		n.pe.SendGoal(target, g)
	}
}

// minNbrProx returns the smallest known neighbor proximity (maxProx when
// the PE has no neighbors).
func (n *gmNode) minNbrProx() int32 {
	if len(n.nbrProx) == 0 {
		return n.maxProx
	}
	min := n.nbrProx[0]
	for _, p := range n.nbrProx[1:] {
		if p < min {
			min = p
		}
	}
	return min
}

// leastProxNeighbor picks the neighbor with minimum proximity, breaking
// ties uniformly at random from the run's seeded stream.
func (n *gmNode) leastProxNeighbor() int {
	nbrs := n.pe.Neighbors()
	if len(nbrs) == 0 {
		return -1
	}
	rng := n.pe.Machine().Engine().Rng()
	best := n.nbrProx[0]
	choice := nbrs[0]
	count := 1
	for i := 1; i < len(nbrs); i++ {
		switch {
		case n.nbrProx[i] < best:
			best, choice, count = n.nbrProx[i], nbrs[i], 1
		case n.nbrProx[i] == best:
			count++
			if rng.Intn(count) == 0 {
				choice = nbrs[i]
			}
		}
	}
	return choice
}

// WantsFailureEvents implements machine.FailureAware, gated on the
// strategy flag.
func (n *gmNode) WantsFailureEvents() bool { return n.s.FailureAware }

// HandleEvent implements machine.NodeStrategy. New goals stay local
// ("the Gradient Model keeps the newly created tasks on the source PE,
// and distributes them when required") and arrivals enqueue
// unconditionally ("Any PE that receives a goal message from its
// neighbor just adds it to its queue"). A Control payload records the
// neighbor's proximity broadcast, acted on at the next gradient-process
// wakeup, as in the paper. Availability events fire only in
// failure-aware mode.
func (n *gmNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated, machine.GoalArrived:
		n.pe.Accept(ev.Goal)
	case machine.Control:
		p, ok := ev.Payload.(proxUpdate)
		if !ok {
			return
		}
		n.setNbrProx(ev.From, int32(p))
	case machine.PEFailed:
		// A dead neighbor consumes nothing: pin its proximity at the
		// clamp so the gradient stops pointing into the dead region the
		// instant the sentinel lands, not a wakeup later.
		n.setNbrProx(ev.From, n.maxProx)
	case machine.PERecovered:
		// The recovered neighbor is an empty, idle PE — proximity zero
		// by definition. Export a batch now: the periodic process's one
		// goal per wakeup cannot drain a blackout backlog.
		n.setNbrProx(ev.From, 0)
		if n.s.classify(n.pe.Load()) == stateAbundant {
			for i := 0; i < shedBatch && n.pe.QueuedGoals() > 1; i++ {
				g := n.takeExport()
				if g == nil {
					return
				}
				n.pe.SendGoal(ev.From, g)
			}
		}
	}
}

// takeExport pulls the next goal to export under the configured policy.
func (n *gmNode) takeExport() *machine.Goal {
	if n.s.ExportNewest {
		return n.pe.TakeNewestQueuedGoal()
	}
	return n.pe.TakeOldestQueuedGoal()
}

// setNbrProx updates the recorded proximity of neighbor `from`.
func (n *gmNode) setNbrProx(from int, p int32) {
	for i, nb := range n.pe.Neighbors() {
		if nb == from {
			n.nbrProx[i] = p
			return
		}
	}
}

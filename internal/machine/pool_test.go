package machine

import (
	"testing"

	"cwnsim/internal/scenario"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TestPooledRunsBitForBit pins the Pool contract: a machine fed a warm
// pool (objects recycled from previous runs) produces exactly the
// fingerprint of an unpooled machine, across closed, open and scenario
// runs — pooling moves allocations, never results.
func TestPooledRunsBitForBit(t *testing.T) {
	topo := topology.NewGrid(3, 3)
	tree := workload.NewFib(8)
	run := func(pool *Pool, scripted bool) fingerprint {
		cfg := DefaultConfig()
		cfg.Pool = pool
		if scripted {
			cfg.Scenario = scenario.MustParse("crash:pes=25%@t=500,recover@t=1500")
		}
		return fp(NewStream(topo, NewPoisson(tree, 60, 40), pushRight{}, cfg).Run())
	}
	for _, scripted := range []bool{false, true} {
		base := run(nil, scripted)
		pool := &Pool{}
		warm := run(pool, scripted) // cold pool: fills it
		if warm != base {
			t.Fatalf("scripted=%v: cold-pooled run diverged: %+v vs %+v", scripted, warm, base)
		}
		for i := 0; i < 3; i++ { // warm pool: recycles the previous run's objects
			if got := run(pool, scripted); got != base {
				t.Fatalf("scripted=%v: warm-pooled run %d diverged: %+v vs %+v", scripted, i, got, base)
			}
		}
	}
}

// TestPoolCrossesWorkloads checks the uglier reuse path: the same pool
// carries objects between runs of different workloads, strategies and
// machine shapes without bleed-through.
func TestPoolCrossesWorkloads(t *testing.T) {
	pool := &Pool{}
	runs := []func(p *Pool) fingerprint{
		func(p *Pool) fingerprint {
			cfg := DefaultConfig()
			cfg.Pool = p
			return fp(New(topology.NewGrid(1, 2), workload.NewFib(9), keepLocal{}, cfg).Run())
		},
		func(p *Pool) fingerprint {
			cfg := DefaultConfig()
			cfg.Pool = p
			return fp(NewStream(topology.NewGrid(2, 2), NewFixedInterval(workload.NewChain(12), 80, 15), pushRight{}, cfg).Run())
		},
	}
	var clean []fingerprint
	for _, r := range runs {
		clean = append(clean, r(nil))
	}
	for round := 0; round < 2; round++ {
		for i, r := range runs {
			if got := r(pool); got != clean[i] {
				t.Fatalf("round %d run %d diverged with shared pool: %+v vs %+v", round, i, got, clean[i])
			}
		}
	}
}

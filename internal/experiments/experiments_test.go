package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestSpecLabels(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Grid(10).Label(), "grid-10x10"},
		{Torus(5).Label(), "torus-5x5"},
		{DLM(10, 5).Label(), "dlm-10x10-s5"},
		{Hypercube(7).Label(), "hypercube-d7"},
		{Fib(18).Label(), "fib(18)"},
		{DC(4181).Label(), "dc(1,4181)"},
		{CWN(9, 2).Label(), "CWN(r=9,h=2)"},
		{GM(1, 2, 20).Label(), "GM(l=1,h=2,i=20)"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("label = %q, want %q", c.got, c.want)
		}
	}
}

func TestSpecPEs(t *testing.T) {
	cases := []struct {
		ts   TopoSpec
		want int
	}{
		{Grid(20), 400},
		{DLM(16, 4), 256},
		{Hypercube(7), 128},
		{TopoSpec{Kind: "ring", N: 9}, 9},
		{TopoSpec{Kind: "single"}, 1},
	}
	for _, c := range cases {
		if got := c.ts.PEs(); got != c.want {
			t.Errorf("%s PEs = %d, want %d", c.ts.Label(), got, c.want)
		}
	}
}

func TestSpecBuildCaching(t *testing.T) {
	a := Grid(6).Build()
	b := Grid(6).Build()
	if a != b {
		t.Error("topology cache miss for identical spec")
	}
	wa := Fib(9).Build()
	wb := Fib(9).Build()
	if wa != wb {
		t.Error("tree cache miss for identical spec")
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	spec := RunSpec{
		Topo:     DLM(10, 5),
		Workload: Fib(15),
		Strategy: CWN(5, 1),
		Seed:     7,
	}
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Topo.Label() != spec.Topo.Label() || back.Workload.Label() != spec.Workload.Label() ||
		back.Strategy.Label() != spec.Strategy.Label() || back.Seed != 7 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestUnknownKindsPanic(t *testing.T) {
	cases := []func(){
		func() { TopoSpec{Kind: "mobius"}.Build() },
		func() { WorkloadSpec{Kind: "ackermann"}.Build() },
		func() { StrategySpec{Kind: "telepathy"}.Build() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestExecuteSingleRun(t *testing.T) {
	r := RunSpec{Topo: Grid(4), Workload: Fib(9), Strategy: CWN(4, 1)}.Execute()
	if r.Util <= 0 || r.Util > 100 {
		t.Errorf("Util = %f", r.Util)
	}
	if r.Speedup <= 0 {
		t.Errorf("Speedup = %f", r.Speedup)
	}
	if r.Goals != 109 {
		t.Errorf("Goals = %d, want 109", r.Goals)
	}
	if !strings.Contains(r.Spec.Name(), "CWN") {
		t.Errorf("Name = %q", r.Spec.Name())
	}
}

func TestRunAllOrderAndParallelism(t *testing.T) {
	specs := []RunSpec{
		{Topo: Grid(3), Workload: Fib(8), Strategy: CWN(3, 1)},
		{Topo: Grid(3), Workload: Fib(8), Strategy: GM(1, 2, 20)},
		{Topo: Grid(4), Workload: Fib(9), Strategy: CWN(3, 1)},
		{Topo: DLM(5, 5), Workload: DC(55), Strategy: GM(1, 1, 20)},
	}
	results, err := RunAll(specs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil {
			t.Fatalf("result %d is nil", i)
		}
		if r.Spec.Strategy.Kind != specs[i].Strategy.Kind || r.Spec.Topo.Label() != specs[i].Topo.Label() {
			t.Fatalf("result %d out of order", i)
		}
	}
}

func TestRunAllMatchesSequentialExecution(t *testing.T) {
	// Concurrency must not perturb determinism: RunAll and Execute give
	// identical numbers for identical specs.
	spec := RunSpec{Topo: Grid(4), Workload: Fib(10), Strategy: CWN(4, 1), Seed: 3}
	seq := spec.Execute()
	par, err := RunAll([]RunSpec{spec, spec, spec}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range par {
		if r.Makespan != seq.Makespan || r.Util != seq.Util {
			t.Fatalf("parallel run diverged: %v vs %v", r.Makespan, seq.Makespan)
		}
	}
}

func TestSpeedupSuiteQuickShape(t *testing.T) {
	specs := SpeedupSuite(true)
	// 2 programs x 4 sizes x 6 machines (<=100 PEs) x 2 strategies.
	if len(specs) != 2*4*6*2 {
		t.Fatalf("quick suite has %d specs, want 96", len(specs))
	}
	for _, s := range specs {
		if s.Topo.PEs() > 100 {
			t.Fatalf("quick suite contains %s with %d PEs", s.Topo.Label(), s.Topo.PEs())
		}
	}
}

func TestSpeedupSuiteFullShape(t *testing.T) {
	specs := SpeedupSuite(false)
	if len(specs) != 240 {
		t.Fatalf("full suite has %d specs, want 240 (the paper's count)", len(specs))
	}
}

func TestPaperHeadlineAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("quick suite still takes a few seconds")
	}
	results, err := RunAll(SpeedupSuite(true), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(results)
	if s.Pairs != 48 {
		t.Fatalf("pairs = %d, want 48", s.Pairs)
	}
	// The paper: CWN wins 118/120 with ~10% tolerance. At quick scale we
	// allow a couple of upsets but the bulk must hold.
	if s.CWNWins < s.Pairs*3/4 {
		t.Errorf("CWN won only %d/%d pairings: %s", s.CWNWins, s.Pairs, s)
	}
	if s.GridMean <= 1.0 {
		t.Errorf("grid mean ratio %.2f <= 1", s.GridMean)
	}
	tb := SpeedupTable(results)
	if tb.NumRows() != 8 { // 4 dc sizes + 4 fib sizes
		t.Errorf("speedup table rows = %d, want 8", tb.NumRows())
	}
	if !strings.Contains(tb.String(), "grid-5x5") {
		t.Error("speedup table missing topology column")
	}
}

func TestUtilizationCurve(t *testing.T) {
	specs := UtilizationCurveSpecs(Grid(5), "dc", true)
	if len(specs) != 8 {
		t.Fatalf("curve specs = %d, want 8", len(specs))
	}
	results, err := RunAll(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch := UtilizationChart("Plot: dc on grid-5x5", results)
	out := ch.String()
	if !strings.Contains(out, "CWN") || !strings.Contains(out, "GM") {
		t.Errorf("chart missing strategies:\n%s", out)
	}
}

func TestTimeSeriesExperiment(t *testing.T) {
	specs := TimeSeriesSpecs(Grid(5), Fib(11), 50)
	results, err := RunAll(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Stats.Timeline.Len() == 0 {
			t.Fatalf("%s produced no timeline", r.Spec.Name())
		}
	}
	ch := TimeSeriesChart("Plot: fib(11) over time", results)
	if !strings.Contains(ch.String(), "time") {
		t.Error("chart missing x label")
	}
}

func TestHopDistributionQuick(t *testing.T) {
	results, err := RunAll(HopDistributionSpecs(1, true), 0)
	if err != nil {
		t.Fatal(err)
	}
	tb := HopDistributionTable(results)
	if tb.NumRows() != 2 {
		t.Fatalf("table rows = %d, want 2", tb.NumRows())
	}
	cwn, gm := results[0], results[1]
	// Paper shape: CWN travels much farther than GM on average; GM
	// leaves a large share of goals at hop 0; CWN spikes at the radius.
	if cwn.AvgHops <= gm.AvgHops {
		t.Errorf("CWN avg hops %.2f <= GM %.2f", cwn.AvgHops, gm.AvgHops)
	}
	if gm.Stats.GoalHops.Count(0) == 0 {
		t.Error("GM moved every goal; expected many to stay put")
	}
	if cwn.Stats.GoalHops.Count(9) == 0 {
		t.Error("no CWN spike at radius 9")
	}
}

func TestOptimizationSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep takes a few seconds")
	}
	ts, wls := SamplePoints(PaperGrids(), true)
	radii, horizons := DefaultCWNGridSearch(true)
	cwnOut, err := OptimizeCWN(ts, wls, radii, horizons, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cwnOut) != 6 { // 3 radii x 2 horizons
		t.Fatalf("CWN candidates = %d, want 6", len(cwnOut))
	}
	for i := 1; i < len(cwnOut); i++ {
		if cwnOut[i].MeanSpeedup > cwnOut[i-1].MeanSpeedup {
			t.Fatal("optimization output not sorted best-first")
		}
	}
	lows, highs, ivs := DefaultGMGridSearch(true)
	gmOut, err := OptimizeGM(ts, wls, lows, highs, ivs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gmOut) != 2 {
		t.Fatalf("GM candidates = %d, want 2", len(gmOut))
	}
	tb := OptimizationTable(cwnOut[0], cwnOut[0], gmOut[0], gmOut[0])
	if tb.NumRows() != 5 {
		t.Errorf("Table 1 rows = %d, want 5", tb.NumRows())
	}
}

func TestAblationSpecsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation runs take a few seconds")
	}
	specs := AblationSpecs(true)
	results, err := RunAll(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb := ResultTable("ablation", results)
	if tb.NumRows() != len(specs) {
		t.Fatalf("rows = %d, want %d", tb.NumRows(), len(specs))
	}
	idx := map[string]*Result{}
	for _, r := range results {
		idx[r.Spec.Label] = r
	}
	if idx["Local (no balancing)"].Speedup != 1.0 {
		t.Errorf("local speedup = %f, want 1", idx["Local (no balancing)"].Speedup)
	}
	if idx["CWN (paper)"].Speedup <= idx["Local (no balancing)"].Speedup {
		t.Error("CWN no better than no balancing at all")
	}
}

func TestCommRatioSpecsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("comm-ratio runs take a few seconds")
	}
	specs := CommRatioSpecs(true)
	results, err := RunAll(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("results = %d, want 10", len(results))
	}
	// The paper's caveat: CWN's advantage shrinks as hops get costlier.
	ratioAt := func(i int) float64 { return results[i].Speedup / results[i+1].Speedup }
	cheap, costly := ratioAt(0), ratioAt(len(results)-2)
	if costly >= cheap {
		t.Logf("note: CWN/GM ratio did not shrink (cheap=%.2f costly=%.2f) — acceptable, shape varies at quick scale", cheap, costly)
	}
}

func TestResultSetIndex(t *testing.T) {
	r := RunSpec{Topo: Grid(3), Workload: Fib(8), Strategy: CWN(3, 1)}.Execute()
	idx := Index([]*Result{r})
	if idx.Get(Fib(8), Grid(3), "cwn") != r {
		t.Error("index lookup failed")
	}
	if idx.Get(Fib(9), Grid(3), "cwn") != nil {
		t.Error("index returned wrong result")
	}
}

func TestSamplePointsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SamplePoints with 2 topologies did not panic")
		}
	}()
	SamplePoints([]TopoSpec{Grid(3), Grid(4)}, true)
}

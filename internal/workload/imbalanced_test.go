package workload

import (
	"testing"
	"testing/quick"
)

func TestImbalancedExactCount(t *testing.T) {
	for _, goals := range []int{1, 2, 3, 10, 101, 500} {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			tr := NewImbalanced(goals, frac)
			if tr.Count() != goals {
				t.Errorf("imbal(%d,%.1f) count = %d", goals, frac, tr.Count())
			}
			if tr.Eval() != int64(tr.Leaves()) {
				t.Errorf("imbal(%d,%.1f) eval %d != leaves %d", goals, frac, tr.Eval(), tr.Leaves())
			}
		}
	}
}

func TestImbalancedDepthGrowsWithSkew(t *testing.T) {
	balanced := NewImbalanced(511, 0.5)
	skewed := NewImbalanced(511, 0.9)
	if skewed.Depth() <= balanced.Depth() {
		t.Errorf("skewed depth %d <= balanced depth %d", skewed.Depth(), balanced.Depth())
	}
}

func TestImbalancedMatchesDCWhenBalanced(t *testing.T) {
	// At 0.5 the shape approximates dc: depth within 2x of log2(n).
	tr := NewImbalanced(1023, 0.5)
	if tr.Depth() > 20 {
		t.Errorf("balanced split depth = %d, want near 10", tr.Depth())
	}
}

func TestQuickImbalancedCount(t *testing.T) {
	f := func(raw uint16, fr uint8) bool {
		goals := int(raw%2000) + 1
		frac := 0.05 + 0.9*float64(fr)/255
		tr := NewImbalanced(goals, frac)
		return tr.Count() == goals
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestImbalancedPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewImbalanced(0, 0.5) },
		func() { NewImbalanced(10, 0) },
		func() { NewImbalanced(10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestWalkIsPreorder(t *testing.T) {
	tr := NewDC(1, 8)
	var ids []int32
	tr.Walk(func(task *Task) { ids = append(ids, task.ID) })
	for i, id := range ids {
		if int32(i) != id {
			t.Fatalf("walk order not preorder-ID order at %d: %v", i, ids[:i+1])
		}
	}
}

func TestTotalWorkWithMultipliers(t *testing.T) {
	tr := NewRandom(RandomConfig{Seed: 9, Goals: 300, MaxKids: 3, MaxWork: 5, LeafValue: 1})
	var manual int64
	tr.Walk(func(task *Task) { manual += int64(task.Work) })
	if tr.TotalWork() != manual {
		t.Errorf("TotalWork %d != manual sum %d", tr.TotalWork(), manual)
	}
	if tr.TotalWork() < int64(tr.Count()) {
		t.Error("TotalWork below count despite Work >= 1")
	}
}

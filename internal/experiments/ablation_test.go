package experiments

import (
	"strings"
	"testing"
)

func TestDiameterStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 10 simulations")
	}
	specs := DiameterStudySpecs(true)
	if len(specs) != 14 {
		t.Fatalf("specs = %d, want 14 (7 topologies x 2 strategies)", len(specs))
	}
	// Specs alternate CWN, GM per topology.
	for i := 0; i < len(specs); i += 2 {
		if specs[i].Strategy.Kind != "cwn" || specs[i+1].Strategy.Kind != "gm" {
			t.Fatalf("spec order wrong at %d", i)
		}
		if specs[i].Topo.PEs() != 64 {
			t.Fatalf("%s has %d PEs, want 64 (fixed machine size)", specs[i].Topo.Label(), specs[i].Topo.PEs())
		}
	}
	results, err := RunAll(specs, 0)
	if err != nil {
		t.Fatal(err)
	}
	tb := DiameterStudyTable(results)
	if tb.NumRows() != 7 {
		t.Fatalf("table rows = %d", tb.NumRows())
	}
	out := tb.String()
	for _, want := range []string{"complete-64", "hypercube-d6", "ring-64"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %s:\n%s", want, out)
		}
	}
	// CWN wins at every diameter in this study.
	for i := 0; i+1 < len(results); i += 2 {
		if results[i].Speedup <= results[i+1].Speedup {
			t.Errorf("%s: CWN %.2f <= GM %.2f", results[i].Spec.Topo.Label(),
				results[i].Speedup, results[i+1].Speedup)
		}
	}
}

func TestAblationIncludesNewBaselines(t *testing.T) {
	labels := map[string]bool{}
	for _, s := range AblationSpecs(true) {
		labels[s.Label] = true
	}
	for _, want := range []string{"Diffusion", "Ideal (perfect info)", "CWN (paper)"} {
		if !labels[want] {
			t.Errorf("ablation suite missing %q", want)
		}
	}
}

// Package simfix exercises the detrand analyzer. The fixture module's
// path ends in internal/sim, so the analyzer treats it as
// simulation-path code.
package simfix

import (
	"math/rand"
	"sort"
	"time"
)

var clock int64

func wallClock() {
	clock = time.Now().UnixNano() // want `time\.Now is wall-clock`
}

func globalDraw() int {
	return rand.Intn(6) // want `rand\.Intn draws from the process-global random stream`
}

// seededDraw is compliant: the rand constructors build an explicitly
// seeded stream instead of drawing from the global one.
func seededDraw(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// suppressedClock proves //lint:ignore directives are honored: the
// time.Now below would otherwise be a finding.
func suppressedClock() int64 {
	//lint:ignore detrand fixture: proves suppression directives are honored
	return time.Now().UnixNano()
}

func leakOrder(m map[int]int) []int {
	var out []int
	for k := range m { // want `map iteration order is nondeterministic`
		out = append(out, k)
	}
	return out
}

// collectThenSort is the tolerated shape: the loop only collects, and
// a later statement in the same block sorts the slice.
func collectThenSort(m map[int]int) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// drain only deletes from the ranged map itself — order-insensitive.
func drain(m map[int]int) {
	for k := range m {
		delete(m, k)
	}
}

// sliceRange is not a map range at all; never flagged.
func sliceRange(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

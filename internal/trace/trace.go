// Package trace implements ORACLE's observability features: a typed
// event stream of the goal/message lifecycle, and the load-distribution
// monitor ("a specially formatted output that can be used to drive a
// graphics program to monitor load distribution … displayed with a
// continuum of colors representing relative activity on each PE"),
// which the paper's authors "found particularly useful for debugging
// the load balancing strategies". So did we.
//
// # Sharded runs
//
// Tracing and monitoring are shard-safe. A sharded machine
// (machine.Config.Shards) does not stream events to the Sink live —
// shards run on their own goroutines, and a live interleaving would
// depend on the thread schedule. Instead each shard appends its events
// to a private buffer in its own deterministic engine order, and the
// coordinator replays the union into the Sink at finalize, totally
// ordered by (At, shard, within-shard sequence). Record therefore runs
// on one goroutine always: on the simulation hot path sequentially, or
// on the coordinator after the shards have torn down. One shard
// reproduces the sequential machine's Record call sequence bit for
// bit; K >= 2 shards conserve per-kind event counts against the
// sequential run but order same-timestamp cross-shard events
// differently and route goals along different walks (GoalSent counts
// are placement-dependent, so only the placement-independent kinds are
// conserved). Monitor frames merge the same way: every shard samples
// its own PE block at globally synchronized instants and the
// coordinator concatenates the blocks into full-machine frames.
//
// # Span export
//
// Spans is the causal consumer of the event stream: it folds the flat
// events into one span per goal — created, hop path, acceptances
// (re-exports under GM/ACWN appear as extra accept/send rounds),
// execution window, response trip — and WritePerfetto renders them as
// Chrome trace-event JSON (one process per PE, "X" slices for
// execution, async spans for goal lifetimes and response trips)
// loadable in Perfetto or chrome://tracing. cmd/sweep and cmd/serve
// expose it via -trace-out.
package trace

import (
	"fmt"
	"io"

	"cwnsim/internal/sim"
)

// Kind classifies trace events.
type Kind uint8

const (
	// GoalCreated: a task spawned a child goal on PE.
	GoalCreated Kind = iota
	// GoalSent: PE forwarded a goal one hop to Other.
	GoalSent
	// GoalAccepted: PE accepted a goal for execution (terminal for CWN;
	// GM/ACWN may later re-export a still-queued goal, producing another
	// GoalSent/GoalAccepted pair).
	GoalAccepted
	// GoalExecStarted: PE began executing a goal's body (service start).
	// Together with GoalExecuted it brackets the execution window —
	// the "executing" slice of a goal's span.
	GoalExecStarted
	// GoalExecuted: PE finished executing a goal's body.
	GoalExecuted
	// RespSent: PE emitted a response toward Other (the parent's PE).
	RespSent
	// RespDelivered: the response for Goal's parent arrived at PE.
	RespDelivered
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case GoalCreated:
		return "goal-created"
	case GoalSent:
		return "goal-sent"
	case GoalAccepted:
		return "goal-accepted"
	case GoalExecStarted:
		return "goal-exec-started"
	case GoalExecuted:
		return "goal-executed"
	case RespSent:
		return "resp-sent"
	case RespDelivered:
		return "resp-delivered"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one observation of the simulation.
type Event struct {
	At    sim.Time
	Kind  Kind
	PE    int   // where it happened
	Other int   // peer PE (destination for sends), -1 if n/a
	Goal  int64 // goal ID, -1 if n/a
}

// Sink receives events as they happen. Implementations must be cheap:
// Record runs on the simulation's hot path.
type Sink interface {
	Record(ev Event)
}

// Collector stores every event in memory, with query helpers. It is the
// test suite's microscope.
type Collector struct {
	Events []Event
}

// Record implements Sink.
func (c *Collector) Record(ev Event) { c.Events = append(c.Events, ev) }

// Grow pre-sizes the collector for at least n more events, so a long
// traced run appends into reserved capacity instead of re-doubling the
// event slice as it grows. The machine calls it per injected job with a
// goal-count-derived hint; n <= 0 is a no-op.
func (c *Collector) Grow(n int) {
	if n <= 0 || cap(c.Events)-len(c.Events) >= n {
		return
	}
	grown := make([]Event, len(c.Events), len(c.Events)+n)
	copy(grown, c.Events)
	c.Events = grown
}

// ByKind returns the events of one kind, in order.
func (c *Collector) ByKind(k Kind) []Event {
	var out []Event
	for _, ev := range c.Events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// ByGoal returns the events mentioning goal id, in order.
func (c *Collector) ByGoal(id int64) []Event {
	var out []Event
	for _, ev := range c.Events {
		if ev.Goal == id {
			out = append(out, ev)
		}
	}
	return out
}

// Count returns how many events of kind k were recorded.
func (c *Collector) Count(k Kind) int {
	n := 0
	for _, ev := range c.Events {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// Counter tallies events by kind without storing them.
type Counter struct {
	counts [numKinds]int64
}

// Record implements Sink.
func (c *Counter) Record(ev Event) {
	if ev.Kind < numKinds {
		c.counts[ev.Kind]++
	}
}

// Count returns the tally for kind k.
func (c *Counter) Count(k Kind) int64 {
	if k >= numKinds {
		return 0
	}
	return c.counts[k]
}

// Logger writes one formatted line per event — ORACLE's textual trace.
// A Filter (nil = everything) selects which kinds are written.
type Logger struct {
	W      io.Writer
	Filter func(Kind) bool
}

// Record implements Sink.
func (l *Logger) Record(ev Event) {
	if l.Filter != nil && !l.Filter(ev.Kind) {
		return
	}
	if ev.Other >= 0 {
		fmt.Fprintf(l.W, "%8d %-14s pe=%-4d peer=%-4d goal=%d\n", ev.At, ev.Kind, ev.PE, ev.Other, ev.Goal)
		return
	}
	fmt.Fprintf(l.W, "%8d %-14s pe=%-4d goal=%d\n", ev.At, ev.Kind, ev.PE, ev.Goal)
}

// Multi fans events out to several sinks.
type Multi []Sink

// Record implements Sink.
func (m Multi) Record(ev Event) {
	for _, s := range m {
		s.Record(ev)
	}
}

// Package seqonlyfix exercises the seqonly analyzer: functions
// reachable from a //simlint:seqonly file must not reach
// //simlint:globalstate fields unguarded. Trace and SampleInterval are
// deliberately untagged — they model the shard-safe observability
// features (per-shard capture merged at finalize), so the analyzer must
// stay silent on unguarded reaches into them.
package seqonlyfix

type sink interface{ Emit(string) }

type script struct{ events []string }

type pool struct{ free []int64 }

type config struct {
	Trace          sink    // shard-safe: per-shard buffers replayed at finalize
	SampleInterval int64   // shard-safe: synchronized per-shard sampling
	Scenario       *script //simlint:globalstate scripted environments run sequentially
	Pool           *pool   //simlint:globalstate free lists are single-threaded
}

type machine struct {
	cfg  config
	seen int64
}

// emit reaches the untagged Trace field unguarded — shard-safe, never
// reported.
func (m *machine) emit(ev string) {
	m.cfg.Trace.Emit(ev)
}

// sampleWindow reaches the untagged SampleInterval unguarded — also
// never reported.
func (m *machine) sampleWindow() int64 {
	return m.cfg.SampleInterval
}

func (m *machine) poolGet() int64 {
	return m.cfg.Pool.free[0] // want `shard-path code reaches sequential-only feature Pool unguarded \(reached via step → poolGet\)`
}

// replay is a trusted boundary: the traversal stops here and its
// Scenario reference below is never reported.
//
//simlint:seqsafe only called back from the sequential driver after the shard group has torn down
func (m *machine) replay() {
	m.cfg.Scenario.events = nil
}

//simlint:seqsafe
func (m *machine) replayNoReason() { // want `//simlint:seqsafe on replayNoReason needs a reason`
	m.cfg.Scenario.events = nil
}

// offPath reaches Scenario unguarded but is not reachable from the
// seqonly file: never reported.
func (m *machine) offPath() {
	m.cfg.Scenario.events = nil
}

package report

import (
	"bytes"
	"strings"
	"testing"

	"cwnsim/internal/metrics"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Speedups", "PEs", "CWN", "GM", "ratio")
	tb.AddRow(25, 10.5, 6.72, 1.5625)
	tb.AddRow(400, 120.0, 40.0, 3.0)
	s := tb.String()
	if !strings.Contains(s, "Speedups") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "PEs") || !strings.Contains(s, "ratio") {
		t.Error("missing headers")
	}
	if !strings.Contains(s, "10.50") {
		t.Errorf("float not formatted: %s", s)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
	// Columns align: each line of the body has the same width.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few lines: %q", s)
	}
	if len(lines[1]) != len(lines[3]) {
		t.Errorf("misaligned rows:\n%s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, "x,y")
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "a,b") || !strings.Contains(got, `"x,y"`) {
		t.Errorf("CSV = %q", got)
	}
}

func TestChartRendering(t *testing.T) {
	var up, down metrics.Series
	up.Label = "rising"
	down.Label = "falling"
	for i := 0; i <= 100; i++ {
		up.Add(float64(i), float64(i))
		down.Add(float64(i), float64(100-i))
	}
	c := NewChart("test", "time", "util%")
	c.Add(&up, '+')
	c.Add(&down, 'o')
	s := c.String()
	if !strings.Contains(s, "test") || !strings.Contains(s, "rising") || !strings.Contains(s, "falling") {
		t.Errorf("chart missing labels:\n%s", s)
	}
	if !strings.Contains(s, "+") || !strings.Contains(s, "o") {
		t.Errorf("chart missing markers:\n%s", s)
	}
	// Rising series ends top-right: the first grid row should contain a
	// marker near its right edge.
	lines := strings.Split(s, "\n")
	firstRow := lines[1]
	if !strings.Contains(firstRow, "+") && !strings.Contains(firstRow, "o") {
		t.Errorf("no marker on top row:\n%s", s)
	}
}

func TestChartEmpty(t *testing.T) {
	c := NewChart("empty", "", "")
	if !strings.Contains(c.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartFixedYMax(t *testing.T) {
	var s metrics.Series
	s.Label = "x"
	s.Add(0, 50)
	s.Add(10, 50)
	c := NewChart("", "", "")
	c.YMax = 100
	c.Add(&s, '*')
	out := c.String()
	if !strings.Contains(out, "100.0") {
		t.Errorf("fixed YMax not honored:\n%s", out)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("util", 2, 3)
	h.Values = []float64{0, 0.5, 1, 1, 0.5, 0}
	s := h.String()
	if !strings.Contains(s, "util") {
		t.Error("missing title")
	}
	if !strings.Contains(s, "@") {
		t.Errorf("busy glyph missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 { // title + 2 rows + scale
		t.Errorf("unexpected line count %d:\n%s", len(lines), s)
	}
}

func TestShadeClamps(t *testing.T) {
	if Shade(-1) != ' ' {
		t.Error("negative should clamp to idle")
	}
	if Shade(2) != '@' {
		t.Error(">1 should clamp to busy")
	}
	if Shade(0) != ' ' || Shade(1) != '@' {
		t.Error("endpoints wrong")
	}
}

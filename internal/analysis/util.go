package analysis

import (
	"go/ast"
	"go/types"
)

// pointerBearing reports whether values of t can hold references the
// garbage collector must trace (or that could alias a recycled
// object): pointers, slices, maps, channels, functions, interfaces,
// strings, and aggregates containing any of those.
func pointerBearing(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if pointerBearing(u.Field(i).Type()) {
				return true
			}
		}
		return false
	case *types.Array:
		return pointerBearing(u.Elem())
	}
	return false
}

// parentMap maps every node in the file to its parent, for walking
// upward from a reference to its enclosing statements.
func parentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

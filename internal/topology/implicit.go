package topology

import (
	"fmt"
	"math/bits"
)

// Implicit (computed-neighbor) topologies.
//
// The paper's regular families — grid, torus, hypercube — are all
// computable: a PE's neighbors, its channels, and shortest-path routing
// are index arithmetic. The materialized form stores O(n) adjacency
// slices, an O(channels) edge list, a neighbor-pair map, and lazily an
// O(n²) routing table; at a million PEs the routing table alone is
// terabytes and the adjacency gigabytes. The implicit form stores only
// the dimensions and computes everything on demand, bit-for-bit
// compatible with the materialized numbering:
//
//   - Channel IDs reproduce the exact emission order of newGrid /
//     NewHypercube (scan order, wrap blocks last), so per-channel
//     statistics line up index-for-index.
//   - Neighbors and ChannelsOf return the same ascending orders the
//     materialized build derives, so strategy tie-breaks and partition
//     blocks are identical.
//   - Dist/NextHop use closed forms that equal the materialized BFS
//     ("lowest-numbered neighbor on a shortest path").
//
// Equivalence on every accessor is pinned by TestImplicitMatchesMaterialized.

// implKind discriminates the computed-neighbor families. implNone marks
// a materialized topology (stored channel list).
type implKind uint8

const (
	implNone implKind = iota
	implGrid
	implTorus
	implHypercube
)

// NewGridImplicit returns the same rows×cols grid as NewGrid in
// computed-neighbor form: no stored edge lists, O(1) memory, identical
// name, channel numbering, neighbor orders and routing.
func NewGridImplicit(rows, cols int) *Topology {
	if rows <= 0 || cols <= 0 {
		panic("topology: grid dimensions must be positive")
	}
	return &Topology{
		name: fmt.Sprintf("grid-%dx%d", rows, cols),
		n:    rows * cols,
		impl: implGrid,
		rows: rows,
		cols: cols,
	}
}

// NewTorusImplicit returns the same rows×cols torus as NewTorus in
// computed-neighbor form.
func NewTorusImplicit(rows, cols int) *Topology {
	t := NewGridImplicit(rows, cols)
	t.name = fmt.Sprintf("torus-%dx%d", rows, cols)
	t.impl = implTorus
	return t
}

// NewHypercubeImplicit returns the same binary hypercube as NewHypercube
// in computed-neighbor form. The dimension cap is lifted to 30 — the
// whole point of the implicit form is machines past the materialized
// ceiling.
func NewHypercubeImplicit(dim int) *Topology {
	if dim < 0 || dim > 30 {
		panic("topology: hypercube dimension out of range [0,30]")
	}
	return &Topology{
		name: fmt.Sprintf("hypercube-d%d", dim),
		n:    1 << uint(dim),
		impl: implHypercube,
		dim:  dim,
	}
}

// Implicit reports whether the topology is in computed-neighbor form.
func (t *Topology) Implicit() bool { return t.impl != implNone }

// ---- channel numbering ----
//
// Grid channels follow newGrid's emission order: scan (r, c) row-major,
// each cell emitting its right link then its down link. A non-final row
// therefore emits 2*cols-1 channels (cols-1 rights interleaved with
// cols downs); the final row emits only its cols-1 rights. A torus
// appends the row-wrap links (one per row, iff cols > 2) and then the
// column-wrap links (one per column, iff rows > 2).

// gridChannelCount returns the number of non-wrap grid channels.
func (t *Topology) gridChannelCount() int {
	return t.rows*(t.cols-1) + (t.rows-1)*t.cols
}

// gridRight returns the ID of the link (r,c)-(r,c+1); caller guarantees
// c+1 < cols.
func (t *Topology) gridRight(r, c int) int {
	if r == t.rows-1 {
		return r*(2*t.cols-1) + c
	}
	return r*(2*t.cols-1) + 2*c
}

// gridDown returns the ID of the link (r,c)-(r+1,c); caller guarantees
// r+1 < rows.
func (t *Topology) gridDown(r, c int) int {
	base := r*(2*t.cols-1) + 2*c
	if c < t.cols-1 {
		return base + 1
	}
	return base
}

// rowWrapBase is the ID of row 0's wrap link; valid iff cols > 2.
func (t *Topology) rowWrapBase() int { return t.gridChannelCount() }

// colWrapBase is the ID of column 0's wrap link; valid iff rows > 2.
func (t *Topology) colWrapBase() int {
	b := t.gridChannelCount()
	if t.cols > 2 {
		b += t.rows
	}
	return b
}

// Hypercube channels follow NewHypercube's emission order: scan PEs
// ascending, each emitting one channel per zero bit b (the link to
// pe|1<<b), bits ascending. cubeZ(pe) counts the channels emitted by
// all lower PEs, so the link at (pe, b) has ID cubeZ(pe) plus the
// number of zero bits of pe below b.

// cubeZerosUpTo returns how many integers in [0, m) have bit b clear.
func cubeZerosUpTo(m, b int) int {
	period := 1 << uint(b+1)
	half := 1 << uint(b)
	z := m / period * half
	if r := m % period; r < half {
		z += r
	} else {
		z += half
	}
	return z
}

// cubeZ returns the number of channels emitted by PEs below pe.
func (t *Topology) cubeZ(pe int) int {
	z := 0
	for b := 0; b < t.dim; b++ {
		z += cubeZerosUpTo(pe, b)
	}
	return z
}

// cubeChan returns the ID of the link (pe, pe|1<<b); caller guarantees
// bit b of pe is clear.
func (t *Topology) cubeChan(pe, b int) int {
	return t.cubeZ(pe) + b - bits.OnesCount(uint(pe)&(1<<uint(b)-1))
}

// cubeChanAt inverts cubeChan: the (pe, b) pair of channel ci.
func (t *Topology) cubeChanAt(ci int) (pe, b int) {
	// Binary search the emitting PE: cubeZ is non-decreasing, and pe is
	// the unique value with cubeZ(pe) <= ci < cubeZ(pe+1).
	lo, hi := 0, t.n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if t.cubeZ(mid+1) > ci {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	pe = lo
	k := ci - t.cubeZ(pe)
	for b := 0; b < t.dim; b++ {
		if pe&(1<<uint(b)) == 0 {
			if k == 0 {
				return pe, b
			}
			k--
		}
	}
	panic(fmt.Sprintf("topology %s: channel %d out of range", t.name, ci))
}

// gridChanMembers appends the member pair of grid/torus channel ci.
func (t *Topology) gridChanMembers(dst []int, ci int) []int {
	rows, cols := t.rows, t.cols
	gc := t.gridChannelCount()
	if ci < gc {
		rowLen := 2*cols - 1
		full := (rows - 1) * rowLen
		if ci < full {
			r, rem := ci/rowLen, ci%rowLen
			if rem < 2*(cols-1) {
				a := r*cols + rem/2
				if rem%2 == 0 {
					return append(dst, a, a+1) // right link
				}
				return append(dst, a, a+cols) // down link
			}
			a := r*cols + cols - 1 // the last column's down link
			return append(dst, a, a+cols)
		}
		a := (rows-1)*cols + (ci - full) // final row: right links only
		return append(dst, a, a+1)
	}
	// Wrap links, in newGrid's member order (high end first).
	off := ci - gc
	if cols > 2 {
		if off < rows {
			return append(dst, off*cols+cols-1, off*cols)
		}
		off -= rows
	}
	return append(dst, (rows-1)*cols+off, off)
}

// appendImplChanMembers appends the member pair of implicit channel ci.
func (t *Topology) appendImplChanMembers(dst []int, ci int) []int {
	if ci < 0 || ci >= t.NumChannels() {
		panic(fmt.Sprintf("topology %s: channel %d out of range", t.name, ci))
	}
	if t.impl == implHypercube {
		pe, b := t.cubeChanAt(ci)
		return append(dst, pe, pe|1<<uint(b))
	}
	return t.gridChanMembers(dst, ci)
}

// ---- neighbors and degrees ----

// appendImplNeighbors appends pe's neighbors in ascending order —
// exactly the order the materialized build derives.
func (t *Topology) appendImplNeighbors(dst []int, pe int) []int {
	switch t.impl {
	case implGrid:
		r, c := pe/t.cols, pe%t.cols
		if r > 0 {
			dst = append(dst, pe-t.cols)
		}
		if c > 0 {
			dst = append(dst, pe-1)
		}
		if c < t.cols-1 {
			dst = append(dst, pe+1)
		}
		if r < t.rows-1 {
			dst = append(dst, pe+t.cols)
		}
		return dst
	case implTorus:
		start := len(dst)
		r, c := pe/t.cols, pe%t.cols
		if r > 0 {
			dst = append(dst, pe-t.cols)
		}
		if c > 0 {
			dst = append(dst, pe-1)
		}
		if c < t.cols-1 {
			dst = append(dst, pe+1)
		}
		if r < t.rows-1 {
			dst = append(dst, pe+t.cols)
		}
		if t.cols > 2 {
			if c == 0 {
				dst = append(dst, pe+t.cols-1)
			} else if c == t.cols-1 {
				dst = append(dst, pe-(t.cols-1))
			}
		}
		if t.rows > 2 {
			if r == 0 {
				dst = append(dst, pe+(t.rows-1)*t.cols)
			} else if r == t.rows-1 {
				dst = append(dst, pe-(t.rows-1)*t.cols)
			}
		}
		insertionSortInts(dst[start:])
		return dst
	case implHypercube:
		// Clearing a set bit gives a smaller ID (ascending as the bit
		// descends); setting a clear bit a larger one (ascending as the
		// bit ascends).
		for b := t.dim - 1; b >= 0; b-- {
			if pe&(1<<uint(b)) != 0 {
				dst = append(dst, pe&^(1<<uint(b)))
			}
		}
		for b := 0; b < t.dim; b++ {
			if pe&(1<<uint(b)) == 0 {
				dst = append(dst, pe|1<<uint(b))
			}
		}
		return dst
	}
	panic("topology: appendImplNeighbors on materialized topology")
}

// appendImplChansOf appends the channel IDs of pe, ascending.
func (t *Topology) appendImplChansOf(dst []int, pe int) []int {
	switch t.impl {
	case implGrid, implTorus:
		r, c := pe/t.cols, pe%t.cols
		// up, left, right, down, then wraps: already ascending (lower
		// source rows emit first, wraps numbered last).
		if r > 0 {
			dst = append(dst, t.gridDown(r-1, c))
		}
		if c > 0 {
			dst = append(dst, t.gridRight(r, c-1))
		}
		if c < t.cols-1 {
			dst = append(dst, t.gridRight(r, c))
		}
		if r < t.rows-1 {
			dst = append(dst, t.gridDown(r, c))
		}
		if t.impl == implTorus {
			if t.cols > 2 && (c == 0 || c == t.cols-1) {
				dst = append(dst, t.rowWrapBase()+r)
			}
			if t.rows > 2 && (r == 0 || r == t.rows-1) {
				dst = append(dst, t.colWrapBase()+c)
			}
		}
		return dst
	case implHypercube:
		start := len(dst)
		for b := 0; b < t.dim; b++ {
			if pe&(1<<uint(b)) == 0 {
				dst = append(dst, t.cubeChan(pe, b))
			} else {
				dst = append(dst, t.cubeChan(pe&^(1<<uint(b)), b))
			}
		}
		insertionSortInts(dst[start:])
		return dst
	}
	panic("topology: appendImplChansOf on materialized topology")
}

// implLinkBetween returns the channel directly connecting a and b, if
// any. Implicit topologies are point-to-point, so there is at most one.
func (t *Topology) implLinkBetween(a, b int) (ci int, ok bool) {
	if a == b {
		return 0, false
	}
	if a > b {
		a, b = b, a
	}
	switch t.impl {
	case implGrid, implTorus:
		ar, ac := a/t.cols, a%t.cols
		br, bc := b/t.cols, b%t.cols
		if ar == br && bc == ac+1 {
			return t.gridRight(ar, ac), true
		}
		if ac == bc && br == ar+1 {
			return t.gridDown(ar, ac), true
		}
		if t.impl == implTorus {
			if t.cols > 2 && ar == br && ac == 0 && bc == t.cols-1 {
				return t.rowWrapBase() + ar, true
			}
			if t.rows > 2 && ac == bc && ar == 0 && br == t.rows-1 {
				return t.colWrapBase() + ac, true
			}
		}
		return 0, false
	case implHypercube:
		if x := a ^ b; x&(x-1) == 0 {
			return t.cubeChan(a, bits.TrailingZeros(uint(x))), true
		}
		return 0, false
	}
	return 0, false
}

// ---- routing ----

// implDist is the closed-form shortest hop count.
func (t *Topology) implDist(a, b int) int {
	switch t.impl {
	case implGrid:
		return absInt(a/t.cols-b/t.cols) + absInt(a%t.cols-b%t.cols)
	case implTorus:
		// min(d, size-d) per dimension; for sizes <= 2 (no wrap link)
		// the two coincide, so no special case is needed.
		dr := absInt(a/t.cols - b/t.cols)
		if w := t.rows - dr; w < dr {
			dr = w
		}
		dc := absInt(a%t.cols - b%t.cols)
		if w := t.cols - dc; w < dc {
			dc = w
		}
		return dr + dc
	case implHypercube:
		return bits.OnesCount(uint(a ^ b))
	}
	panic("topology: implDist on materialized topology")
}

// implNextHop reproduces the materialized rule: the lowest-numbered
// neighbor of from on a shortest path to to.
func (t *Topology) implNextHop(from, to int) int {
	if from == to {
		return from
	}
	if t.impl == implHypercube {
		// Neighbors ascend by clearing the highest set bit first; a
		// neighbor shortens the path iff the flipped bit differs from
		// to. So: clear the highest set differing bit if any, else set
		// the lowest clear differing bit.
		diff := from ^ to
		if down := diff & from; down != 0 {
			return from &^ (1 << uint(bits.Len(uint(down))-1))
		}
		return from | 1<<uint(bits.TrailingZeros(uint(diff)))
	}
	var buf [8]int
	nbrs := t.appendImplNeighbors(buf[:0], from)
	d := t.implDist(from, to)
	for _, nb := range nbrs {
		if t.implDist(nb, to) == d-1 {
			return nb
		}
	}
	panic("topology: no next hop on shortest path")
}

// implDiameter is the closed-form diameter.
func (t *Topology) implDiameter() int {
	switch t.impl {
	case implGrid:
		return t.rows - 1 + t.cols - 1
	case implTorus:
		return torusDimDiameter(t.rows) + torusDimDiameter(t.cols)
	case implHypercube:
		return t.dim
	}
	panic("topology: implDiameter on materialized topology")
}

// torusDimDiameter is a wrapped dimension's contribution: floor(s/2)
// once a wrap link exists, the path length s-1 below that.
func torusDimDiameter(s int) int {
	if s > 2 {
		return s / 2
	}
	return s - 1
}

// implDimDegree is one dimension's contribution to a PE's degree.
func gridDimDegree(pos, size int) int {
	switch {
	case size == 1:
		return 0
	case pos == 0 || pos == size-1:
		return 1
	default:
		return 2
	}
}

func torusDimDegree(size int) int {
	switch {
	case size == 1:
		return 0
	case size == 2:
		return 1
	default:
		return 2
	}
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

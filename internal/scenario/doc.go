// Package scenario scripts dynamic-environment perturbations into a
// run: a deterministic timeline of events the machine replays during
// the simulation. The paper compares CWN and the Gradient Model on a
// uniform, static machine; this package supplies the missing axis —
// how a *dynamic* load-distribution method re-distributes after the
// environment shifts under it.
//
// A Script is an ordered list of Events, each firing at a virtual
// time:
//
//   - SlowPE / RestorePE   rescale PE service speed mid-run (in-flight
//     service is rescaled proportionally, not restarted)
//   - FailPE / RecoverPE   compute blackout: the PE stops serving, its
//     queued goals are evacuated to the nearest live PE, and arriving
//     goals are redirected; pending tasks and queued responses freeze
//     in place until recovery (the communication co-processor stays
//     up, so routing through a failed PE still works)
//   - DegradeLink / RestoreLink   multiply a link's occupancy time, or
//     (factor 0) take it down entirely — messages queue at the sender
//     and flush in order on restore
//   - LoadShock   multiply the arrival process's offered rate for all
//     subsequently drawn inter-arrival gaps
//
// Scripts are plain data: build them programmatically or parse the
// compact text form used by spec files and the CLI, e.g.
//
//	fail:pes=25%@t=5000,recover@t=10000
//	slow:pes=0+1:x=0.5@t=2000,restore:pes=0+1@t=4000
//	degradelink:a=0:b=1:x=0@t=100,restorelink:a=0:b=1@t=300
//	shock:x=3@t=1000,shock:x=1@t=2000
//
// An empty (or nil) Script schedules nothing and leaves a run
// bit-for-bit identical to one without a scenario — pinned by
// regression test — so the scripted machinery costs nothing when
// unused.
//
// Recovery analysis: AnalyzeRecovery turns the windowed sojourn-p99
// series a scenario run records into the subsystem's headline metrics
// — the pre-disruption baseline p99, the peak during the disruption,
// and the time after the last restore event until the p99 holds
// steady at baseline again.
package scenario

// Package sim implements the deterministic discrete-event simulation
// engine underneath the multiprocessor model — the Go analogue of the
// kernel of ORACLE, the SIMSCRIPT simulator the paper's experiments were
// run on.
//
// The engine maintains a virtual clock and a pending-event set ordered by
// (time, insertion sequence). Events are plain closures; resources such as
// processing elements and communication channels are modelled by the
// machine package as state machines that schedule their own continuation
// events. Determinism is guaranteed: two events at the same virtual time
// fire in the order they were scheduled, and all randomness flows from a
// single seeded generator owned by the engine.
//
// The engine is intentionally single-goroutine: one simulation run is a
// sequential computation over virtual time. Parallelism belongs one level
// up, where the experiment harness runs many independent simulations on
// separate goroutines.
package sim

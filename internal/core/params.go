package core

import "cwnsim/internal/machine"

// The paper's Table 1: "Selected Parameters" — the winning parameter
// combinations from the optimization experiments, used for all the main
// comparison runs.

// PaperCWNGrid returns CWN with the grid parameters: radius 9, horizon 2.
func PaperCWNGrid() *CWN { return NewCWN(9, 2) }

// PaperCWNDLM returns CWN with the lattice-mesh parameters: radius 5,
// horizon 1.
func PaperCWNDLM() *CWN { return NewCWN(5, 1) }

// PaperGMGrid returns the Gradient Model with the grid parameters:
// high-water-mark 2, low-water-mark 1, interval 20.
func PaperGMGrid() *Gradient { return NewGradient(1, 2, 20) }

// PaperGMDLM returns the Gradient Model with the lattice-mesh
// parameters: high-water-mark 1, low-water-mark 1, interval 20.
func PaperGMDLM() *Gradient { return NewGradient(1, 1, 20) }

// Verify interface satisfaction at compile time.
var (
	_ machine.Strategy = (*CWN)(nil)
	_ machine.Strategy = (*Gradient)(nil)
	_ machine.Strategy = (*ACWN)(nil)
	_ machine.Strategy = (*Local)(nil)
	_ machine.Strategy = (*RandomWalk)(nil)
	_ machine.Strategy = (*RoundRobin)(nil)
	_ machine.Strategy = (*WorkSteal)(nil)
	_ machine.Strategy = (*Diffusion)(nil)
	_ machine.Strategy = (*Ideal)(nil)
)

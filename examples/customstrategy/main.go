// Customstrategy: the machine model accepts any implementation of
// machine.Strategy, so new load-distribution policies can be prototyped
// in a few dozen lines. This example implements "Threshold" — a simple
// sender-initiated policy from the classic load-sharing literature: keep
// new goals local until the local load exceeds T, then push to a random
// neighbor (probing up to K neighbors for one with load below T) — and
// races it against the paper's two schemes.
//
// Run with: go run ./examples/customstrategy
package main

import (
	"fmt"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// Threshold is the custom sender-initiated strategy.
type Threshold struct {
	T int // queue length above which new goals are pushed away
	K int // how many known-neighbor loads to probe
}

// Name implements machine.Strategy.
func (s *Threshold) Name() string { return fmt.Sprintf("Threshold(T=%d,K=%d)", s.T, s.K) }

// Setup implements machine.Strategy.
func (s *Threshold) Setup(m *machine.Machine) {}

// NewNode implements machine.Strategy.
func (s *Threshold) NewNode(pe *machine.PE) machine.NodeStrategy {
	return &thresholdNode{s: s, pe: pe}
}

type thresholdNode struct {
	s  *Threshold
	pe *machine.PE
}

// HandleEvent implements machine.NodeStrategy — the event-driven API: a
// node receives a typed event stream and reacts to the kinds it cares
// about. Threshold keeps a new goal unless the local queue is past the
// threshold; then it probes K random neighbors for one believed to be
// below the threshold and pushes the goal there (or to the last probe).
// Transferred goals are accepted unconditionally (one-hop transfers
// only, like the Gradient Model's); everything else — control payloads,
// environment notifications — is ignored. (A strategy written against
// the pre-event three-method shape still runs via machine.AdaptNode /
// machine.Adapt.)
func (n *thresholdNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		n.place(ev.Goal)
	case machine.GoalArrived:
		n.pe.Accept(ev.Goal)
	}
}

func (n *thresholdNode) place(g *machine.Goal) {
	if n.pe.Load() <= n.s.T {
		n.pe.Accept(g)
		return
	}
	nbrs := n.pe.Neighbors()
	if len(nbrs) == 0 {
		n.pe.Accept(g)
		return
	}
	rng := n.pe.Machine().Engine().Rng()
	target := nbrs[rng.Intn(len(nbrs))]
	for probe := 0; probe < n.s.K; probe++ {
		cand := nbrs[rng.Intn(len(nbrs))]
		if load, _ := n.pe.KnownLoad(cand); load <= n.s.T {
			target = cand
			break
		}
	}
	n.pe.SendGoal(target, g)
}

func main() {
	topo := topology.NewGrid(10, 10)
	tree := workload.NewFib(15)

	strategies := []machine.Strategy{
		&Threshold{T: 2, K: 3},
		core.PaperCWNGrid(),
		core.PaperGMGrid(),
	}
	fmt.Printf("%s, %s\n\n", tree, topo)
	for _, strat := range strategies {
		stats := machine.New(topo, tree, strat, machine.DefaultConfig()).Run()
		fmt.Printf("%-18s util %5.1f%%  speedup %6.2f  avg hops %.2f  goal msgs %d\n",
			strat.Name(), stats.UtilizationPercent(), stats.Speedup(),
			stats.AvgGoalHops(), stats.MsgCounts[machine.MsgGoal])
	}
}

module cwnsim

go 1.24

// Command lbsim runs a single load-balancing simulation and reports the
// statistics ORACLE reported: utilization (overall, per PE, over time),
// completion time, message distance distributions, channel utilization,
// and the computed program result.
//
// Examples:
//
//	lbsim -topo grid:10x10 -workload fib:15 -strategy cwn:9:2
//	lbsim -topo dlm:10x10:5 -workload dc:4181 -strategy gm:1:1:20 -heatmap
//	lbsim -topo hypercube:7 -workload fib:18 -strategy cwn:5:1 -sample 50 -chart
package main

import (
	"flag"
	"fmt"
	"os"

	"cwnsim/internal/experiments"
	"cwnsim/internal/metrics"
	"cwnsim/internal/report"
)

func main() {
	var (
		topoArg  = flag.String("topo", "grid:10x10", "topology: grid:RxC | torus:RxC | dlm:RxC:SPAN | hypercube:D | ring:N | complete:N | star:N | bus:N | single")
		wlArg    = flag.String("workload", "fib:15", "workload: fib:M | dc:X | dc:M:N | binary:D | skew:N | chain:N | random:N:SEED")
		stratArg = flag.String("strategy", "cwn:9:2", "strategy: cwn:R:H | gm:LOW:HIGH:IVL | acwn:R:H:SAT:IVL | local | randomwalk:K | roundrobin | worksteal:IVL:T")
		arrArg   = flag.String("arrival", "single", "arrival process: single | interval:GAP:JOBS | poisson:MEANGAP:JOBS | burst:SIZE:GAP:BURSTS")
		warmup   = flag.Int64("warmup", 0, "exclude jobs injected before this virtual time from steady-state latency stats")
		seed     = flag.Int64("seed", 1, "simulation seed")
		sample   = flag.Int64("sample", 0, "utilization sampling interval (0 = off)")
		chart    = flag.Bool("chart", false, "render the utilization-over-time chart (needs -sample)")
		heatmap  = flag.Bool("heatmap", false, "render the per-PE utilization heat map (grid-shaped topologies)")
		hops     = flag.Bool("hops", false, "print the goal hop-distance distribution")
		loadMet  = flag.String("load", "queue", "load metric: queue | queue+pending")
		hopTime  = flag.Int64("hoptime", 0, "override goal/response hop time (0 = default 2)")
		monitor  = flag.Int("monitor", 0, "render every Nth per-PE utilization frame (ORACLE's load monitor; needs -sample)")
	)
	flag.Parse()

	topo, err := experiments.ParseTopo(*topoArg)
	fail(err)
	wl, err := experiments.ParseWorkload(*wlArg)
	fail(err)
	strat, err := experiments.ParseStrategy(*stratArg)
	fail(err)
	arr, err := experiments.ParseArrival(*arrArg)
	fail(err)

	spec := experiments.RunSpec{
		Topo:           topo,
		Workload:       wl,
		Strategy:       strat,
		Arrival:        arr,
		Seed:           *seed,
		Warmup:         *warmup,
		SampleInterval: *sample,
		MonitorPE:      *monitor > 0,
		LoadMetric:     *loadMet,
		GoalHopTime:    *hopTime,
		RespHopTime:    *hopTime,
	}
	res, err := spec.ExecuteErr()
	fail(err)
	st := res.Stats

	fmt.Println(st.String())
	fmt.Printf("  wall time: %v\n", res.Wall)

	if *hops {
		fmt.Println()
		tb := report.NewTable("goal hop distribution", "hops", "count")
		for h := 0; h <= st.GoalHops.Max(); h++ {
			tb.AddRow(h, st.GoalHops.Count(h))
		}
		tb.Render(os.Stdout)
	}

	if *chart {
		if st.Timeline.Len() == 0 {
			fmt.Fprintln(os.Stderr, "lbsim: -chart needs -sample > 0")
		} else {
			fmt.Println()
			ch := report.NewChart(fmt.Sprintf("utilization over time: %s", spec.Name()), "time", "% PE utilization")
			ch.YMax = 100
			tl := st.Timeline
			tl.Label = strat.Label()
			ch.Add(&tl, '+')
			ch.Render(os.Stdout)
		}
	}

	if *monitor > 0 {
		if st.Monitor.Len() == 0 {
			fmt.Fprintln(os.Stderr, "lbsim: -monitor needs -sample > 0")
		} else {
			rows, cols := topo.Rows, topo.Cols
			if rows == 0 || cols == 0 {
				rows, cols = 1, st.P
			}
			fmt.Printf("\nload monitor (every %d frames):\n", *monitor)
			st.Monitor.Render(os.Stdout, rows, cols, *monitor)
		}
	}

	if *heatmap {
		rows, cols := topo.Rows, topo.Cols
		if rows == 0 || cols == 0 {
			// Non-rectangular topology: lay PEs out in one row.
			rows, cols = 1, st.P
		}
		hm := report.NewHeatmap(fmt.Sprintf("per-PE utilization: %s", spec.Name()), rows, cols)
		for i := 0; i < st.P; i++ {
			hm.Values[i] = st.PEUtilization(i)
		}
		fmt.Println()
		hm.Render(os.Stdout)
		var s metrics.Summary
		for i := 0; i < st.P; i++ {
			s.Add(st.PEUtilization(i))
		}
		fmt.Printf("  per-PE utilization: %s\n", s.String())
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "lbsim:", err)
		os.Exit(2)
	}
}

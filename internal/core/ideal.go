package core

import (
	"cwnsim/internal/machine"
)

// Ideal is the perfect-information comparator: it models the paper's
// introduction remark that "on shared memory machines, the load
// balancing is relatively simple: we can maintain all the work in a
// central pool" — every new goal is placed on the globally least-loaded
// PE using perfect, zero-latency knowledge of all queue lengths, while
// still paying communication time along the shortest path.
//
// It is deliberately not a strict upper bound: goals in transit are
// invisible to the load measure, so simultaneous placements herd toward
// the same recently-idle PE, and distant placements pay real transit
// time — which is why CWN can and does beat it on larger machines. The
// gap in either direction is informative: it separates the value of
// information quality from the cost of acting on it.
type Ideal struct{}

// NewIdeal returns the perfect-information baseline.
func NewIdeal() *Ideal { return &Ideal{} }

// Name implements machine.Strategy.
func (s *Ideal) Name() string { return "Ideal" }

// Setup implements machine.Strategy.
func (s *Ideal) Setup(m *machine.Machine) {}

// SequentialOnly implements machine.SequentialOnly: the oracle reads
// every PE's true load at placement time, which on a sharded machine
// would race with remote shards' goroutines.
func (s *Ideal) SequentialOnly() string {
	return "Ideal reads all PEs' true loads with zero latency"
}

// NewNode implements machine.Strategy.
func (s *Ideal) NewNode(pe *machine.PE) machine.NodeStrategy {
	return &idealNode{pe: pe}
}

type idealNode struct {
	pe *machine.PE
}

// HandleEvent implements machine.NodeStrategy: a new goal is routed by
// inspecting every PE's true load (the omniscient oracle) straight to
// the global minimum, preferring nearer PEs among equals to limit
// communication; an arriving goal is accepted — its placement was
// already final.
func (n *idealNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated:
		m := n.pe.Machine()
		self := n.pe.ID()
		best, bestLoad, bestDist := self, n.pe.Load(), 0
		for i := 0; i < m.NumPEs(); i++ {
			load := m.PE(i).Load()
			d := m.Topology().Dist(self, i)
			if load < bestLoad || (load == bestLoad && d < bestDist) {
				best, bestLoad, bestDist = i, load, d
			}
		}
		n.pe.RouteGoal(best, ev.Goal)
	case machine.GoalArrived:
		n.pe.Accept(ev.Goal)
	}
}

// Compare: race every load-distribution strategy in the library on the
// same workload and machine — the paper's CWN-versus-Gradient-Model
// comparison extended with the future-work ACWN and the classic
// baselines.
//
// Run with: go run ./examples/compare
package main

import (
	"fmt"
	"os"

	"cwnsim/internal/experiments"
	"cwnsim/internal/machine"
	"cwnsim/internal/report"
)

func main() {
	topo := experiments.Grid(10)
	wl := experiments.Fib(15)

	specs := []experiments.RunSpec{
		{Label: "CWN (paper grid params)", Topo: topo, Workload: wl, Strategy: experiments.CWN(9, 2)},
		{Label: "Gradient Model (paper)", Topo: topo, Workload: wl, Strategy: experiments.GM(1, 2, 20)},
		{Label: "ACWN (future work)", Topo: topo, Workload: wl, Strategy: experiments.ACWN(9, 2, 3, 40)},
		{Label: "Work stealing", Topo: topo, Workload: wl, Strategy: experiments.StrategySpec{Kind: "worksteal", Interval: 20, Threshold: 1}},
		{Label: "Random walk (3 hops)", Topo: topo, Workload: wl, Strategy: experiments.StrategySpec{Kind: "randomwalk", Steps: 3}},
		{Label: "Round robin", Topo: topo, Workload: wl, Strategy: experiments.StrategySpec{Kind: "roundrobin"}},
		{Label: "No balancing", Topo: topo, Workload: wl, Strategy: experiments.StrategySpec{Kind: "local"}},
	}

	// Simulations are independent; run them on all cores.
	results, err := experiments.RunAll(specs, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}

	tb := report.NewTable(
		fmt.Sprintf("%s on %s (%d PEs)", wl.Label(), topo.Label(), topo.PEs()),
		"strategy", "util%", "speedup", "avg hops", "goal msgs", "makespan")
	for _, r := range results {
		tb.AddRow(r.Spec.Label, r.Util, r.Speedup, r.AvgHops,
			r.Stats.MsgCounts[machine.MsgGoal], int64(r.Makespan))
	}
	tb.Render(os.Stdout)

	best := results[0]
	for _, r := range results {
		if r.Speedup > best.Speedup {
			best = r
		}
	}
	fmt.Printf("\nwinner: %s with speedup %.1f\n", best.Spec.Label, best.Speedup)
}

package workload

import (
	"testing"
	"testing/quick"
)

func TestFibValues(t *testing.T) {
	want := []int64{0, 1, 1, 2, 3, 5, 8, 13, 21, 34, 55}
	for n, w := range want {
		if got := FibValue(n); got != w {
			t.Errorf("FibValue(%d) = %d, want %d", n, got, w)
		}
	}
	if got := FibValue(18); got != 2584 {
		t.Errorf("FibValue(18) = %d, want 2584", got)
	}
}

func TestFibTreeMatchesClosedForms(t *testing.T) {
	for _, m := range append([]int{0, 1, 2, 3}, PaperFibSizes...) {
		tr := NewFib(m)
		if got, want := tr.Count(), FibGoalCount(m); got != want {
			t.Errorf("fib(%d) count = %d, want %d", m, got, want)
		}
		if got, want := tr.Eval(), FibValue(m); got != want {
			t.Errorf("fib(%d) eval = %d, want %d", m, got, want)
		}
	}
}

func TestDCTreeMatchesClosedForms(t *testing.T) {
	for _, x := range append([]int{1, 2, 3}, PaperDCSizes...) {
		tr := NewDC(1, x)
		if got, want := tr.Count(), DCGoalCount(1, x); got != want {
			t.Errorf("dc(1,%d) count = %d, want %d", x, got, want)
		}
		if got, want := tr.Eval(), DCSum(1, x); got != want {
			t.Errorf("dc(1,%d) eval = %d, want %d", x, got, want)
		}
	}
	// Non-unit lower bound.
	tr := NewDC(5, 17)
	if got, want := tr.Eval(), DCSum(5, 17); got != want {
		t.Errorf("dc(5,17) eval = %d, want %d", got, want)
	}
}

func TestPaperSizesAlign(t *testing.T) {
	// The paper chose dc sizes to be Fibonacci numbers so both programs
	// generate identical goal counts: 41, 109, 287, 753, 1973, 8361.
	wantGoals := []int{41, 109, 287, 753, 1973, 8361}
	for i := range PaperFibSizes {
		fibGoals := NewFib(PaperFibSizes[i]).Count()
		dcGoals := NewDC(1, PaperDCSizes[i]).Count()
		if fibGoals != dcGoals {
			t.Errorf("size %d: fib goals %d != dc goals %d", i, fibGoals, dcGoals)
		}
		if fibGoals != wantGoals[i] {
			t.Errorf("size %d: goals = %d, want %d", i, fibGoals, wantGoals[i])
		}
	}
}

func TestFullBinary(t *testing.T) {
	tr := NewFullBinary(5)
	if tr.Count() != 63 {
		t.Errorf("count = %d, want 63", tr.Count())
	}
	if tr.Leaves() != 32 {
		t.Errorf("leaves = %d, want 32", tr.Leaves())
	}
	if tr.Depth() != 5 {
		t.Errorf("depth = %d, want 5", tr.Depth())
	}
	if tr.Eval() != 32 {
		t.Errorf("eval = %d, want 32", tr.Eval())
	}
}

func TestSkewed(t *testing.T) {
	tr := NewSkewed(10)
	if tr.Depth() != 10 {
		t.Errorf("depth = %d, want 10", tr.Depth())
	}
	if tr.Count() != 21 { // 10 inner + 10 leaf siblings + terminal leaf
		t.Errorf("count = %d, want 21", tr.Count())
	}
	if tr.Eval() != 11 {
		t.Errorf("eval = %d, want 11", tr.Eval())
	}
}

func TestChain(t *testing.T) {
	tr := NewChain(1000)
	if tr.Count() != 1000 {
		t.Errorf("count = %d, want 1000", tr.Count())
	}
	if tr.Depth() != 999 {
		t.Errorf("depth = %d, want 999", tr.Depth())
	}
	if tr.Eval() != 7 {
		t.Errorf("eval = %d, want 7 (chain passes value through)", tr.Eval())
	}
}

func TestDeepChainEvalNoOverflow(t *testing.T) {
	tr := NewChain(200000)
	if tr.Eval() != 7 {
		t.Fatal("deep chain eval wrong")
	}
	if tr.TotalWork() != 200000 {
		t.Fatalf("TotalWork = %d, want 200000", tr.TotalWork())
	}
}

func TestRandomTree(t *testing.T) {
	cfg := RandomConfig{Seed: 5, Goals: 500, MaxKids: 4, MaxWork: 3, LeafValue: 1}
	tr := NewRandom(cfg)
	if tr.Count() < 100 || tr.Count() > 600 {
		t.Errorf("random tree count = %d, want roughly 500", tr.Count())
	}
	// Value = number of leaves when LeafValue is 1 and combine is sum.
	if tr.Eval() != int64(tr.Leaves()) {
		t.Errorf("eval = %d, want leaves = %d", tr.Eval(), tr.Leaves())
	}
	// Determinism.
	tr2 := NewRandom(cfg)
	if tr2.Count() != tr.Count() || tr2.Eval() != tr.Eval() {
		t.Error("random tree with same seed differs")
	}
}

func TestWalkVisitsAllExactlyOnce(t *testing.T) {
	tr := NewFib(10)
	seen := make(map[int32]int)
	tr.Walk(func(task *Task) { seen[task.ID]++ })
	if len(seen) != tr.Count() {
		t.Fatalf("walk visited %d distinct tasks, want %d", len(seen), tr.Count())
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("task %d visited %d times", id, n)
		}
	}
	// IDs are 0..Count-1 (preorder).
	for i := 0; i < tr.Count(); i++ {
		if seen[int32(i)] != 1 {
			t.Fatalf("task ID %d missing", i)
		}
	}
}

func TestQuickFibCountRecurrence(t *testing.T) {
	// goals(n) = 1 + goals(n-1) + goals(n-2) for n >= 2.
	f := func(raw uint8) bool {
		n := int(raw%14) + 2
		return FibGoalCount(n) == 1+FibGoalCount(n-1)+FibGoalCount(n-2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDCEvalAnyRange(t *testing.T) {
	f := func(a, span uint8) bool {
		m := int(a)
		n := m + int(span%64)
		tr := NewDC(m, n)
		return tr.Eval() == DCSum(m, n) && tr.Count() == DCGoalCount(m, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewFib(-1) },
		func() { NewFib(41) },
		func() { NewDC(5, 4) },
		func() { NewFullBinary(-1) },
		func() { NewSkewed(0) },
		func() { NewChain(0) },
		func() { NewRandom(RandomConfig{Goals: 0}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestStringer(t *testing.T) {
	if NewFib(7).String() == "" {
		t.Fatal("empty String")
	}
}

func BenchmarkNewFib18(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = NewFib(18)
	}
}

func BenchmarkEvalFib18(b *testing.B) {
	tr := NewFib(18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.Eval()
	}
}

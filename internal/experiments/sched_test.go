package experiments

import (
	"reflect"
	"testing"

	"cwnsim/internal/machine"
)

// schedFingerprint captures everything an event-ordering divergence
// between the two schedulers would disturb: the event count and
// makespan pin the sequence length, the result and message counts pin
// the computation, and the sojourn stats pin per-job timing.
type schedFingerprint struct {
	events    uint64
	makespan  int64
	result    int64
	totalBusy int64
	jobsDone  int64
	goalsExec int64
	sojMean   float64
	sojP99    float64
}

func schedFP(st *machine.Stats) schedFingerprint {
	return schedFingerprint{
		events:    st.Events,
		makespan:  int64(st.Makespan),
		result:    st.Result,
		totalBusy: int64(st.TotalBusy),
		jobsDone:  st.JobsDone,
		goalsExec: st.GoalsExecuted,
		sojMean:   st.Sojourn.Mean(),
		sojP99:    st.Sojourn.Percentile(0.99),
	}
}

// TestSchedulerCrossCheck pins the tentpole's hard requirement: the
// two-tier wheel scheduler reproduces the heap's results bit for bit on
// the regression-grade spec matrix — closed single-job runs, open
// Poisson/burst streams, GM control traffic, a scripted blackout
// scenario and a chaos-driven crash timeline (the Timer-re-arm-heavy
// regime the wheel exists for).
func TestSchedulerCrossCheck(t *testing.T) {
	specs := []RunSpec{
		{Label: "closed-cwn", Topo: Grid(6), Workload: Fib(10), Strategy: CWN(5, 2)},
		{Label: "closed-gm", Topo: Grid(6), Workload: Fib(10), Strategy: GM(1, 2, 20)},
		{Label: "open-poisson", Topo: Grid(5), Workload: Fib(8), Strategy: CWN(3, 1),
			Arrival: PoissonArrivals(40, 200), Warmup: 1000},
		{Label: "open-burst-gm", Topo: DLM(4, 2), Workload: Fib(8), Strategy: GM(1, 2, 20),
			Arrival: BurstArrivals(10, 500, 4), Warmup: 500},
		{Label: "scenario-blackout", Topo: Grid(5), Workload: Fib(8), Strategy: CWN(3, 1),
			Arrival: PoissonArrivals(50, 150), SampleInterval: 100,
			Scenario: "fail:pes=20%@t=2000,recover@t=4000"},
		{Label: "chaos-crash", Topo: Grid(5), Workload: Fib(8),
			Strategy: StrategySpec{Kind: "cwn", Radius: 3, Horizon: 1, FailureAware: true},
			Arrival:  PoissonArrivals(50, 150), SampleInterval: 100,
			Scenario: "chaos:mtbf=3000:mttr=800:crash@seed=5", MaxTime: 60_000},
	}
	for _, spec := range specs {
		t.Run(spec.Label, func(t *testing.T) {
			heapSpec, wheelSpec := spec, spec
			heapSpec.Scheduler = "heap"
			wheelSpec.Scheduler = "wheel"
			hr, err := heapSpec.ExecuteErr()
			if err != nil {
				t.Fatal(err)
			}
			wr, err := wheelSpec.ExecuteErr()
			if err != nil {
				t.Fatal(err)
			}
			hf, wf := schedFP(hr.Stats), schedFP(wr.Stats)
			if !reflect.DeepEqual(hf, wf) {
				t.Fatalf("heap and wheel diverge:\n heap:  %+v\n wheel: %+v", hf, wf)
			}
			if hr.Stats.MsgCounts != wr.Stats.MsgCounts {
				t.Fatalf("message counts diverge: %v vs %v", hr.Stats.MsgCounts, wr.Stats.MsgCounts)
			}
			// Per-PE distributions, not just totals: a reordering that
			// conserves sums would still shift work between PEs.
			if !reflect.DeepEqual(hr.Stats.BusyPerPE, wr.Stats.BusyPerPE) {
				t.Fatal("per-PE busy time diverges between schedulers")
			}
			if !reflect.DeepEqual(hr.Stats.GoalsPerPE, wr.Stats.GoalsPerPE) {
				t.Fatal("per-PE goal counts diverge between schedulers")
			}
		})
	}
}

package core

import (
	"testing"

	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TestWorkStealNackPath forces refusals: a 2-PE machine where the
// victim rarely has queued goals. The thief must recover via nacks and
// still finish (outstanding flag must not deadlock).
func TestWorkStealNackPath(t *testing.T) {
	// A caterpillar tree keeps the victim's queue hovering around 0-2:
	// steal requests fire but often find nothing, exercising the nack
	// recovery path.
	tree := workload.NewSkewed(60)
	st := mustRun(t, topology.NewGrid(1, 2), tree, NewWorkSteal(10, 2))
	if st.GoalsExecuted != int64(tree.Count()) {
		t.Fatalf("executed %d, want %d", st.GoalsExecuted, tree.Count())
	}
	if st.MsgCounts[machine.MsgControl] == 0 {
		t.Error("no steal requests were ever sent")
	}
}

// TestGradientRequireTargetReducesTraffic compares goal traffic with
// and without the export gate on a machine that saturates (everyone
// abundant, nobody idle): the gated variant must ship fewer goals.
func TestGradientRequireTargetReducesTraffic(t *testing.T) {
	tree := workload.NewFib(13)
	topo := topology.NewGrid(2, 2)
	ungated := mustRun(t, topo, tree, NewGradient(1, 1, 20))
	g := NewGradient(1, 1, 20)
	g.RequireTarget = true
	gated := mustRun(t, topo, tree, g)
	if gated.MsgCounts[machine.MsgGoal] >= ungated.MsgCounts[machine.MsgGoal] {
		t.Errorf("gated GM sent %d goal msgs >= ungated %d",
			gated.MsgCounts[machine.MsgGoal], ungated.MsgCounts[machine.MsgGoal])
	}
}

// TestGMExportNewestVariant completes and underperforms the default
// oldest-export on a machine large enough for spread to matter.
func TestGMExportNewestVariant(t *testing.T) {
	tree := workload.NewFib(13)
	topo := topology.NewGrid(5, 5)
	oldest := mustRun(t, topo, tree, NewGradient(1, 2, 20))
	g := NewGradient(1, 2, 20)
	g.ExportNewest = true
	newest := mustRun(t, topo, tree, g)
	if newest.Speedup() >= oldest.Speedup() {
		t.Errorf("newest-export %.2f >= oldest-export %.2f — expected big-subtree export to win",
			newest.Speedup(), oldest.Speedup())
	}
}

// TestCWNStrictVariantWalksFarther confirms the documented behavior
// difference between the two local-minimum readings.
func TestCWNStrictVariantWalksFarther(t *testing.T) {
	tree := workload.NewFib(12)
	topo := topology.NewGrid(5, 5)
	nonstrict := mustRun(t, topo, tree, NewCWN(6, 1))
	s := NewCWN(6, 1)
	s.StrictMinimum = true
	strict := mustRun(t, topo, tree, s)
	if strict.AvgGoalHops() <= nonstrict.AvgGoalHops() {
		t.Errorf("strict avg hops %.2f <= nonstrict %.2f — strict should walk farther",
			strict.AvgGoalHops(), nonstrict.AvgGoalHops())
	}
}

// TestCWNCommitmentAwareLoadChangesAdvertisement checks the pending
// component is actually reflected in what neighbors learn: under
// LoadQueuePlusPending a PE with many blocked tasks advertises a higher
// load (behavioral check: the run differs from the queue-only run).
func TestCWNCommitmentAwareLoadChangesAdvertisement(t *testing.T) {
	tree := workload.NewFib(12)
	topo := topology.NewGrid(4, 4)
	base := machine.DefaultConfig()
	queueOnly := machine.New(topo, tree, NewCWN(4, 1), base).Run()
	cfg := machine.DefaultConfig()
	cfg.LoadMetric = machine.LoadQueuePlusPending
	pending := machine.New(topo, tree, NewCWN(4, 1), cfg).Run()
	if !queueOnly.Completed || !pending.Completed {
		t.Fatal("incomplete")
	}
	if queueOnly.Makespan == pending.Makespan && queueOnly.TotalMessages() == pending.TotalMessages() {
		t.Error("commitment-aware load produced a byte-identical run — metric not plumbed through")
	}
}

// TestStrategiesOnChordalAndTorus3D exercises the extension topologies
// end to end.
func TestStrategiesOnChordalAndTorus3D(t *testing.T) {
	tree := workload.NewFib(10)
	for _, topo := range []*topology.Topology{
		topology.NewChordalRing(12, 3),
		topology.NewTorus3D(3, 3, 3),
	} {
		for _, strat := range []machine.Strategy{NewCWN(4, 1), NewGradient(1, 2, 20), NewDiffusion(20)} {
			st := mustRun(t, topo, tree, strat)
			if st.GoalsExecuted != int64(tree.Count()) {
				t.Fatalf("%s on %s: executed %d, want %d", strat.Name(), topo.Name(), st.GoalsExecuted, tree.Count())
			}
		}
	}
}

// TestRootPlacementInvariance: CWN's performance shouldn't depend
// wildly on where the root lands in a symmetric torus (every PE is
// equivalent); this is a sanity check rather than an exact invariance
// (random tie-breaks differ by seed path).
func TestRootPlacementInvariance(t *testing.T) {
	tree := workload.NewFib(12)
	topo := topology.NewTorus(4, 4)
	var speedups []float64
	for _, root := range []int{0, 5, 10, 15} {
		cfg := machine.DefaultConfig()
		cfg.RootPE = root
		st := machine.New(topo, tree, NewCWN(4, 1), cfg).Run()
		if !st.Completed {
			t.Fatal("incomplete")
		}
		speedups = append(speedups, st.Speedup())
	}
	min, max := speedups[0], speedups[0]
	for _, s := range speedups {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max/min > 1.5 {
		t.Errorf("speedup varies %0.2f-%0.2f across equivalent roots", min, max)
	}
}

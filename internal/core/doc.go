// Package core implements the load-distribution strategies the paper
// compares — Contracting Within a Neighborhood (CWN) and the Gradient
// Model (GM) — plus the improvements the paper's conclusions propose
// (ACWN: saturation control, re-distribution, commitment-aware load) and
// reference baselines (local-only, random walk, round-robin, and
// receiver-initiated work stealing) used by the extended ablations.
//
// Each strategy is a stateless template implementing machine.Strategy;
// per-PE state lives in the NodeStrategy values created for each run, so
// one strategy value can configure many concurrent machines.
package core

package experiments

import (
	"fmt"

	"cwnsim/internal/metrics"
	"cwnsim/internal/report"
)

// The paper ran each configuration once (240 runs already cost 15
// minutes to 3 hours each on the VAX-750); a modern reproduction can
// afford replication. Replicate and Aggregate provide seed-replicated
// runs with mean/spread reporting, used by cmd/sweep -repeats.

// Replicate returns n copies of the spec with seeds base, base+1, …
// (base is the spec's seed, or 1 if unset).
func (rs RunSpec) Replicate(n int) []RunSpec {
	if n < 1 {
		panic("experiments: Replicate needs n >= 1")
	}
	base := rs.Seed
	if base == 0 {
		base = 1
	}
	out := make([]RunSpec, n)
	for i := range out {
		out[i] = rs
		out[i].Seed = base + int64(i)
	}
	return out
}

// Aggregate summarizes replicated results.
type Aggregate struct {
	Spec     RunSpec // representative (first) spec
	Util     metrics.Summary
	Speedup  metrics.Summary
	AvgHops  metrics.Summary
	Makespan metrics.Summary
}

// AggregateResults folds replicated results into summaries.
func AggregateResults(results []*Result) Aggregate {
	if len(results) == 0 {
		panic("experiments: AggregateResults on empty slice")
	}
	agg := Aggregate{Spec: results[0].Spec}
	for _, r := range results {
		agg.Util.Add(r.Util)
		agg.Speedup.Add(r.Speedup)
		agg.AvgHops.Add(r.AvgHops)
		agg.Makespan.Add(float64(r.Makespan))
	}
	return agg
}

// String renders "mean ± sd" for the key metrics.
func (a Aggregate) String() string {
	return fmt.Sprintf("%s: util %.1f±%.1f%% speedup %.2f±%.2f (n=%d)",
		a.Spec.Name(), a.Util.Mean(), a.Util.Stddev(), a.Speedup.Mean(), a.Speedup.Stddev(), a.Util.N())
}

// RunReplicated executes each spec n times with consecutive seeds and
// returns one aggregate per input spec, preserving order.
func RunReplicated(specs []RunSpec, n, workers int) ([]Aggregate, error) {
	aggs, _, err := RunReplicatedResults(specs, n, workers)
	return aggs, err
}

// RunReplicatedResults is RunReplicated for callers that also need the
// individual runs: results holds n consecutive entries per input spec
// (seeds base..base+n-1, spec order preserved), so spec i's first-seed
// run is results[i*n]. The aggregate table and any per-run reporting
// (e.g. cmd/sweep's scenario recovery table) share one simulation pass.
func RunReplicatedResults(specs []RunSpec, n, workers int) ([]Aggregate, []*Result, error) {
	var flat []RunSpec
	for _, s := range specs {
		flat = append(flat, s.Replicate(n)...)
	}
	results, err := RunAll(flat, workers)
	if err != nil {
		return nil, nil, err
	}
	out := make([]Aggregate, len(specs))
	for i := range specs {
		out[i] = AggregateResults(results[i*n : (i+1)*n])
	}
	return out, results, nil
}

// AggregateTable renders replicated outcomes with their spreads.
func AggregateTable(title string, aggs []Aggregate) *report.Table {
	tb := report.NewTable(title,
		"run", "n", "util% mean", "util% sd", "speedup mean", "speedup sd", "hops mean", "makespan mean")
	for _, a := range aggs {
		tb.AddRow(
			a.Spec.Name(),
			a.Util.N(),
			a.Util.Mean(), a.Util.Stddev(),
			a.Speedup.Mean(), a.Speedup.Stddev(),
			a.AvgHops.Mean(),
			a.Makespan.Mean(),
		)
	}
	return tb
}

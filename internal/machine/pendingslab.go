package machine

// pendingSlab is the per-PE index of pending tasks — tasks that spawned
// children and await their responses — keyed by goal ID. It replaces
// the last hash map on the per-goal path: goal IDs are minted
// sequentially machine-wide, so their low bits already distribute
// uniformly and a power-of-two open-addressed table probed linearly
// resolves a lookup with one mask and, in the common case, one slot
// touched — goal completion does no hashing. Deletion back-shifts the
// probe cluster over the hole (no tombstones), so probe lengths stay
// bounded by the load factor, which growth keeps under 3/4.
//
// Slot arrays are reusable across runs: machine.Pool carries released
// arrays between sequential machines (see Pool), so a replicated sweep
// allocates each PE's table once per worker, not once per run.

// pendingSlot is one table entry; id is slabEmpty when vacant.
//
//simlint:pooled
type pendingSlot struct {
	id   int64
	task *pendingTask
}

const (
	slabEmpty    int64 = -1
	slabMinSlots       = 16
)

type pendingSlab struct {
	slots []pendingSlot
	n     int
}

// newSlabSlots returns a cleared slot array of the given power-of-two
// size.
func newSlabSlots(size int) []pendingSlot {
	slots := make([]pendingSlot, size)
	for i := range slots {
		slots[i].id = slabEmpty
	}
	return slots
}

// init readies the slab on the given recycled slot array (already
// cleared; see release). A nil array is fine: the table materializes
// on the first put, so PEs that never hold a pending task — most of a
// million-PE machine — cost nothing here.
func (s *pendingSlab) init(slots []pendingSlot) {
	s.slots = slots
	s.n = 0
}

// release detaches and returns the slot array, cleared for reuse. Only
// entries still live (a run cut off at MaxTime) need wiping — deletion
// already clears vacated slots — so a drained machine pays nothing.
//
//simlint:free
func (s *pendingSlab) release() []pendingSlot {
	slots := s.slots
	s.slots = nil
	if s.n > 0 {
		for i := range slots {
			slots[i] = pendingSlot{id: slabEmpty}
		}
		s.n = 0
	}
	return slots
}

// len returns the number of pending tasks.
func (s *pendingSlab) len() int { return s.n }

// get returns the pending task for goal id, or nil.
func (s *pendingSlab) get(id int64) *pendingTask {
	if s.n == 0 {
		return nil
	}
	mask := len(s.slots) - 1
	for i := int(id) & mask; ; i = (i + 1) & mask {
		slot := &s.slots[i]
		if slot.id == id {
			return slot.task
		}
		if slot.id == slabEmpty {
			return nil
		}
	}
}

// put inserts the pending task for goal id. Goal IDs are unique within
// a run and a goal executes exactly once, so id is never already
// present.
func (s *pendingSlab) put(id int64, task *pendingTask) {
	if s.slots == nil {
		s.slots = newSlabSlots(slabMinSlots)
	} else if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := len(s.slots) - 1
	i := int(id) & mask
	for s.slots[i].id != slabEmpty {
		i = (i + 1) & mask
	}
	s.slots[i] = pendingSlot{id: id, task: task}
	s.n++
}

// del removes goal id (which must be present), back-shifting the probe
// cluster so later lookups never walk a tombstone.
func (s *pendingSlab) del(id int64) {
	mask := len(s.slots) - 1
	i := int(id) & mask
	for s.slots[i].id != id {
		i = (i + 1) & mask
	}
	// Close the hole at i: walk the cluster and pull back the first
	// entry whose home position permits it (i lies on its probe path),
	// repeating from the new hole until the cluster ends.
	j := i
	for {
		j = (j + 1) & mask
		e := s.slots[j]
		if e.id == slabEmpty {
			break
		}
		if home := int(e.id) & mask; (j-home)&mask >= (j-i)&mask {
			s.slots[i] = e
			i = j
		}
	}
	s.slots[i] = pendingSlot{id: slabEmpty}
	s.n--
}

// grow doubles the table and reinserts every entry.
func (s *pendingSlab) grow() {
	old := s.slots
	s.slots = newSlabSlots(2 * len(old))
	mask := len(s.slots) - 1
	for _, e := range old {
		if e.id == slabEmpty {
			continue
		}
		i := int(e.id) & mask
		for s.slots[i].id != slabEmpty {
			i = (i + 1) & mask
		}
		s.slots[i] = e
	}
}

// forEach visits every entry in slot order. The callback must not
// mutate the slab (del back-shifts entries across the cursor): crash
// paths collect IDs first and delete afterwards, in sorted order, for
// determinism.
func (s *pendingSlab) forEach(fn func(id int64, task *pendingTask)) {
	if s.n == 0 {
		return
	}
	for i := range s.slots {
		if s.slots[i].id != slabEmpty {
			fn(s.slots[i].id, s.slots[i].task)
		}
	}
}

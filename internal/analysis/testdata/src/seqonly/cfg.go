// Package seqonlyfix exercises the seqonly analyzer: functions
// reachable from a //simlint:seqonly file must not reach
// //simlint:globalstate fields unguarded.
package seqonlyfix

type sink interface{ Emit(string) }

type script struct{ events []string }

type config struct {
	Trace          sink    //simlint:globalstate traces interleave cross-shard events; validate rejects it for sharded runs
	SampleInterval int64   //simlint:globalstate the sampler reads every PE at one instant; validate rejects it for sharded runs
	Scenario       *script //simlint:globalstate scripted environments run sequentially
}

type machine struct {
	cfg  config
	seen int64
}

// emit is guarded: the nil check on the field itself proves the branch
// is dead on sharded runs, where validate keeps Trace nil.
func (m *machine) emit(ev string) {
	if m.cfg.Trace != nil {
		m.cfg.Trace.Emit(ev)
	}
}

func (m *machine) sampleWindow() int64 {
	return m.cfg.SampleInterval // want `shard-path code reaches sequential-only feature SampleInterval unguarded \(reached via step → sampleWindow\)`
}

// replay is a trusted boundary: the traversal stops here and its
// Scenario reference below is never reported.
//
//simlint:seqsafe only called back from the sequential driver after the shard group has torn down
func (m *machine) replay() {
	m.cfg.Scenario.events = nil
}

//simlint:seqsafe
func (m *machine) replayNoReason() { // want `//simlint:seqsafe on replayNoReason needs a reason`
	m.cfg.Scenario.events = nil
}

// offPath reaches Trace unguarded but is not reachable from the
// seqonly file: never reported.
func (m *machine) offPath() {
	m.cfg.Trace.Emit("sequential-only caller")
}

package core

import (
	"fmt"

	"cwnsim/internal/machine"
	"cwnsim/internal/sim"
)

// Diffusion is the classic nearest-neighbor diffusion balancer
// (contemporary with the paper; analyzed by Cybenko 1989): a periodic
// per-PE process compares its load with each neighbor's last known load
// and, for every neighbor lighter by at least MinGap, transfers half
// the difference in queued goals. Like GM it is receiver-agnostic and
// periodic; unlike GM it uses no global demand signal (no proximity),
// so it measures what GM's gradient information is actually worth.
type Diffusion struct {
	// Interval is the diffusion process period.
	Interval sim.Time
	// MinGap is the minimum load difference that triggers a transfer
	// (>= 2; transferring on a difference of 1 just swaps the imbalance).
	MinGap int
	// MaxPerCycle caps how many goals move to one neighbor per wakeup.
	MaxPerCycle int
}

// NewDiffusion returns a diffusion balancer with sensible caps.
func NewDiffusion(interval sim.Time) *Diffusion {
	if interval <= 0 {
		panic("core: Diffusion interval must be positive")
	}
	return &Diffusion{Interval: interval, MinGap: 2, MaxPerCycle: 4}
}

// Name implements machine.Strategy.
func (s *Diffusion) Name() string { return fmt.Sprintf("Diffusion(i=%d)", s.Interval) }

// Setup implements machine.Strategy.
func (s *Diffusion) Setup(m *machine.Machine) {
	if s.MinGap < 2 {
		s.MinGap = 2
	}
	if s.MaxPerCycle < 1 {
		s.MaxPerCycle = 1
	}
}

// NewNode implements machine.Strategy.
func (s *Diffusion) NewNode(pe *machine.PE) machine.NodeStrategy {
	n := &diffusionNode{s: s, pe: pe}
	pe.Machine().NewTicker(pe, s.Interval, n.tick)
	return n
}

type diffusionNode struct {
	s  *Diffusion
	pe *machine.PE
}

// HandleEvent implements machine.NodeStrategy: new goals stay local
// (like GM) and arrivals enqueue unconditionally; diffusion needs no
// control traffic beyond the machine's load words.
func (n *diffusionNode) HandleEvent(ev machine.Event) {
	switch ev.Kind {
	case machine.GoalCreated, machine.GoalArrived:
		n.pe.Accept(ev.Goal)
	}
}

// tick equalizes with every lighter neighbor.
func (n *diffusionNode) tick() {
	for _, nb := range n.pe.Neighbors() {
		load := n.pe.Load()
		nbLoad, seen := n.pe.KnownLoad(nb)
		if seen < 0 {
			continue
		}
		diff := load - nbLoad
		if diff < n.s.MinGap {
			continue
		}
		move := diff / 2
		if move > n.s.MaxPerCycle {
			move = n.s.MaxPerCycle
		}
		for i := 0; i < move; i++ {
			g := n.pe.TakeOldestQueuedGoal()
			if g == nil {
				return
			}
			n.pe.SendGoal(nb, g)
		}
	}
}

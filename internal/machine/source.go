package machine

import (
	"fmt"
	"math"
	"math/rand"

	"cwnsim/internal/sim"
	"cwnsim/internal/workload"
)

// JobSource feeds root goals ("jobs") into the machine over virtual
// time, turning the paper's closed one-tree-per-run experiment into an
// open system under sustained arrival traffic. The machine pulls
// arrivals one at a time: Next returns the delay from the previous
// arrival to the next one and the computation tree that job evaluates.
//
// Sources are single-use iterators — construct a fresh value per run,
// like strategies with mutable state. All randomness must come from the
// rng argument, a dedicated stream derived from the run seed but
// disjoint from the engine's own stream, so that arrival times are
// deterministic per seed and do not perturb the simulation's
// tie-breaking draws (single-job runs stay bit-for-bit identical to the
// paper reproduction).
type JobSource interface {
	// Name labels the stream in stats (the Workload field of reports).
	Name() string
	// Next returns the inter-arrival delay before the next job and the
	// tree it evaluates. ok=false means the stream is exhausted; the run
	// then completes once every in-flight job has responded.
	Next(rng *rand.Rand) (delay sim.Time, tree *workload.Tree, ok bool)
}

// srcSeedSalt decorrelates the arrival stream from the engine stream
// while keeping both pure functions of the run seed; obsSeedSalt does
// the same for the observer (sampling) stream. All three streams are
// pairwise disjoint, so neither feeding jobs nor watching utilization
// perturbs the simulation's own tie-break draws.
const (
	srcSeedSalt = 0x5DEECE66D
	obsSeedSalt = 0x2545F4914F6CDD1D
)

func newSourceRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ srcSeedSalt))
}

func newObserverRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ obsSeedSalt))
}

// singleJob emits one job at time zero: the paper's closed-system
// experiment expressed as the trivial stream.
type singleJob struct {
	tree    *workload.Tree
	emitted bool
}

// NewSingleJob returns the one-shot source the paper experiments use.
// Its name is the tree's name, so single-job stats keep their labels.
func NewSingleJob(tree *workload.Tree) JobSource { return &singleJob{tree: tree} }

func (s *singleJob) Name() string { return s.tree.Name }

func (s *singleJob) Next(*rand.Rand) (sim.Time, *workload.Tree, bool) {
	if s.emitted {
		return 0, nil, false
	}
	s.emitted = true
	return 0, s.tree, true
}

// fixedInterval emits jobs a constant gap apart, the first at time zero.
type fixedInterval struct {
	tree    *workload.Tree
	gap     sim.Time
	jobs    int
	emitted int
}

// NewFixedInterval returns a source emitting jobs copies of tree, one
// every gap units of virtual time starting at time zero. gap and jobs
// must be positive.
func NewFixedInterval(tree *workload.Tree, gap sim.Time, jobs int) JobSource {
	if gap <= 0 {
		panic("machine: NewFixedInterval needs gap > 0")
	}
	if jobs < 1 {
		panic("machine: NewFixedInterval needs jobs >= 1")
	}
	return &fixedInterval{tree: tree, gap: gap, jobs: jobs}
}

func (s *fixedInterval) Name() string {
	return fmt.Sprintf("%s@interval(gap=%d,n=%d)", s.tree.Name, s.gap, s.jobs)
}

func (s *fixedInterval) Next(*rand.Rand) (sim.Time, *workload.Tree, bool) {
	if s.emitted >= s.jobs {
		return 0, nil, false
	}
	s.emitted++
	if s.emitted == 1 {
		return 0, s.tree, true
	}
	return s.gap, s.tree, true
}

// poisson emits jobs with exponentially distributed inter-arrival gaps —
// the memoryless arrival process production traffic studies assume.
type poisson struct {
	tree    *workload.Tree
	meanGap float64
	jobs    int
	emitted int
}

// NewPoisson returns a Poisson source: jobs copies of tree with
// exponential inter-arrival gaps of the given mean (so the offered rate
// is 1/meanGap jobs per unit time). The first gap is drawn too — the
// stream starts mid-flow, as an open system does. Gaps are rounded down
// to the integer clock with a floor of 1 unit.
func NewPoisson(tree *workload.Tree, meanGap float64, jobs int) JobSource {
	// !(meanGap > 0) also rejects NaN, which meanGap <= 0 would not.
	if !(meanGap > 0) || math.IsInf(meanGap, 0) {
		panic("machine: NewPoisson needs a finite meanGap > 0")
	}
	if jobs < 1 {
		panic("machine: NewPoisson needs jobs >= 1")
	}
	return &poisson{tree: tree, meanGap: meanGap, jobs: jobs}
}

func (s *poisson) Name() string {
	return fmt.Sprintf("%s@poisson(gap=%g,n=%d)", s.tree.Name, s.meanGap, s.jobs)
}

func (s *poisson) Next(rng *rand.Rand) (sim.Time, *workload.Tree, bool) {
	if s.emitted >= s.jobs {
		return 0, nil, false
	}
	s.emitted++
	gap := sim.Time(rng.ExpFloat64() * s.meanGap)
	if gap < 1 {
		gap = 1
	}
	return gap, s.tree, true
}

// burst emits rounds of simultaneous jobs separated by a fixed gap —
// the flash-crowd pattern that stresses a balancer's rise time.
type burst struct {
	tree    *workload.Tree
	size    int
	gap     sim.Time
	bursts  int
	emitted int
}

// NewBurst returns a bursty source: bursts rounds of size simultaneous
// jobs, rounds gap units apart, the first at time zero.
func NewBurst(tree *workload.Tree, size int, gap sim.Time, bursts int) JobSource {
	if size < 1 || bursts < 1 {
		panic("machine: NewBurst needs size >= 1 and bursts >= 1")
	}
	if gap <= 0 {
		panic("machine: NewBurst needs gap > 0")
	}
	return &burst{tree: tree, size: size, gap: gap, bursts: bursts}
}

func (s *burst) Name() string {
	return fmt.Sprintf("%s@burst(size=%d,gap=%d,n=%d)", s.tree.Name, s.size, s.gap, s.bursts)
}

func (s *burst) Next(*rand.Rand) (sim.Time, *workload.Tree, bool) {
	if s.emitted >= s.size*s.bursts {
		return 0, nil, false
	}
	s.emitted++
	if s.emitted == 1 || (s.emitted-1)%s.size != 0 {
		return 0, s.tree, true
	}
	return s.gap, s.tree, true
}

// jobState is the machine's record of one injected job: the root goal's
// tree (per-job, so heterogeneous streams are possible) and the times
// bounding its sojourn in the system. Job states are pooled — recycled
// when the root response is delivered.
//
//simlint:pooled
type jobState struct {
	id         int64
	tree       *workload.Tree
	injectedAt sim.Time

	// epoch is the job's attempt counter for crash-with-state-loss
	// runs: a crash that destroys any of the job's state bumps it,
	// instantly staling every goal of the old attempt, and the job is
	// retried from its root. It also bumps when the pooled struct is
	// recycled for a new job, so a stale goal that outlives its job can
	// never alias the next occupant. Monotonic per struct — never reset.
	epoch uint64
	// aborting marks the job as already collected by the crash sweep in
	// progress, so one crash that destroys several of its goals aborts
	// it exactly once.
	aborting bool
	// retries counts the crash retries consumed so far; once it reaches
	// Config.RetryLimit (when set) the next abort abandons the job
	// instead of re-injecting it.
	retries int

	// Checkpoint/restart state. progress counts the goals the *current
	// attempt* has executed — the job's position in its deterministic
	// tree walk. On a sequential (or one-shard) machine a checkpoint
	// tick snapshots that position lazily: the first goal executed
	// after a tick copies progress into ckptProgress and stamps
	// ckptSeen with the tick's time, so idle jobs record the position
	// the tick actually saw. On a multi-shard run the coordinator
	// snapshots every live job eagerly at the tick's window barrier
	// (see shardGroup.applyOp) — same values, but no cross-shard write
	// on the execution hot path; progress itself is then bumped with an
	// atomic add, since several shards can execute one job's goals
	// inside a window. On a crash retry the durable frontier (the last
	// snapshot, or the current position when nothing has executed since
	// the tick) becomes a replay horizon: goals of the retried attempt
	// that start service before replayUntil execute in one time unit
	// each instead of their full service demand — work before the
	// frontier is restored, not recomputed. The horizon is virtual
	// time, not a countdown, so it is read-only while the attempt runs
	// and identical under any shard schedule. progress resets per
	// attempt; ckptProgress/ckptSeen persist — the snapshot is durable
	// across the crash.
	progress     int64
	ckptProgress int64
	ckptSeen     sim.Time
	replayUntil  sim.Time
}

// JobRecord is one completed job's latency record, the per-job datum an
// open-system benchmark aggregates into mean/p50/p99 sojourn.
type JobRecord struct {
	ID         int64
	InjectedAt sim.Time
	DoneAt     sim.Time
	Result     int64
}

// Sojourn returns the job's time in system: injection to root response.
func (r JobRecord) Sojourn() sim.Time { return r.DoneAt - r.InjectedAt }

package experiments

import (
	"testing"

	"cwnsim/internal/sim"
)

// blackoutSpec is the examples/scenario configuration: a Poisson stream
// on grid-10x10 losing 25% of its PEs between t=5000 and t=10000.
func blackoutSpec(strat StrategySpec, script string) RunSpec {
	return RunSpec{
		Topo:           Grid(10),
		Workload:       Fib(9),
		Strategy:       strat,
		Arrival:        PoissonArrivals(25, 600),
		Warmup:         1000,
		SampleInterval: 250,
		Scenario:       script,
	}
}

// TestFailureAwareCWNRecoversFaster pins the tentpole's headline: on
// the showcase blackout, CWN subscribing to PEFailed/PERecovered cuts
// the completion-keyed time-to-steady measurably against sentinel-only
// CWN (PR 3 measured ~3k units; the event-driven variant sheds queue at
// failure and backfills at recovery). Deterministic per seed, so the
// comparison is exact, with a ≥10% margin so parameter jitter cannot
// flip it silently.
func TestFailureAwareCWNRecoversFaster(t *testing.T) {
	const script = "fail:pes=25%@t=5000,recover@t=10000"
	base, err := blackoutSpec(CWN(9, 2), script).ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	aware, err := blackoutSpec(StrategySpec{Kind: "cwn", Radius: 9, Horizon: 2, FailureAware: true}, script).ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if !base.Recovery.Recovered() || !aware.Recovery.Recovered() {
		t.Fatalf("a CWN variant never recovered: base=%v aware=%v",
			base.Recovery.TimeToSteady, aware.Recovery.TimeToSteady)
	}
	if b, a := base.Recovery.TimeToSteady, aware.Recovery.TimeToSteady; float64(a) > 0.9*float64(b) {
		t.Fatalf("failure-aware CWN did not cut recovery time: %d vs sentinel-only %d", a, b)
	}
}

// TestFailureAwareGMGainsRecovery pins the other half of the claim: at
// a rate where the blackout hurts but does not saturate, GM+fa beats
// plain GM on peak tail latency and on the injection-keyed recovery
// time — the keying that isolates what newly arriving jobs saw (GM's
// completion-keyed windows never settle in either mode: its blackout
// stragglers echo to the end of the run, exactly the bias the
// injection keying removes).
func TestFailureAwareGMGainsRecovery(t *testing.T) {
	const script = "fail:pes=25%@t=5000,recover@t=10000"
	run := func(fa bool) *Result {
		spec := blackoutSpec(StrategySpec{Kind: "gm", Low: 1, High: 2, Interval: 20, FailureAware: fa}, script)
		spec.Arrival = PoissonArrivals(80, 400)
		r, err := spec.ExecuteErr()
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base, aware := run(false), run(true)
	if aware.Recovery.PeakP99 >= base.Recovery.PeakP99 {
		t.Fatalf("GM+fa peak p99 %.0f not below GM's %.0f", aware.Recovery.PeakP99, base.Recovery.PeakP99)
	}
	if !aware.RecoveryInj.Recovered() {
		t.Fatal("GM+fa never recovered in the injection keying")
	}
	if base.RecoveryInj.Recovered() && aware.RecoveryInj.TimeToSteady >= base.RecoveryInj.TimeToSteady {
		t.Fatalf("GM+fa injection-keyed t2s %d not below GM's %d",
			aware.RecoveryInj.TimeToSteady, base.RecoveryInj.TimeToSteady)
	}
	if aware.Makespan >= base.Makespan {
		t.Fatalf("GM+fa makespan %d not below GM's %d", aware.Makespan, base.Makespan)
	}
}

// TestCrashSpecEndToEnd drives the crash op through the declarative
// layer: parse → machine → abort/retry → Result plumbing, with both
// recovery keyings populated.
func TestCrashSpecEndToEnd(t *testing.T) {
	spec := blackoutSpec(CWN(9, 2), "crash:pes=25%@t=5000,recover@t=10000")
	spec.Arrival = PoissonArrivals(25, 300)
	r, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if r.GoalsLost == 0 || r.JobsAborted == 0 {
		t.Fatalf("crash run lost nothing: lost=%d aborted=%d", r.GoalsLost, r.JobsAborted)
	}
	if r.JobsRetried != r.JobsAborted {
		t.Fatalf("JobsRetried %d != JobsAborted %d", r.JobsRetried, r.JobsAborted)
	}
	if r.Stats.JobsDone != 300 {
		t.Fatalf("crash run dropped jobs: %d/300 done", r.Stats.JobsDone)
	}
	if r.Recovery == nil || r.RecoveryInj == nil {
		t.Fatal("recovery reports missing")
	}
	if len(r.Stats.InjSojournWindows.Points) == 0 {
		t.Fatal("injection-keyed window series empty")
	}
}

// TestChaosSpecDeterministic pins the spec-level chaos contract: the
// same chaos scenario string produces bit-identical results, and the
// recovery report reads the EXPANDED timeline (restore time from the
// last generated recover, not the unexpanded generator event at t=0).
func TestChaosSpecDeterministic(t *testing.T) {
	spec := RunSpec{
		Topo:           Grid(4),
		Workload:       Fib(7),
		Strategy:       CWN(9, 2),
		Arrival:        PoissonArrivals(60, 150),
		Warmup:         500,
		SampleInterval: 250,
		Scenario:       "chaos:mtbf=1500:mttr=400:until=8000@seed=9",
	}
	a, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.Stats.Events != b.Stats.Events || a.Requeued != b.Requeued {
		t.Fatalf("chaos spec not deterministic: %d/%d/%d vs %d/%d/%d",
			a.Makespan, a.Stats.Events, a.Requeued, b.Makespan, b.Stats.Events, b.Requeued)
	}
	if a.Stats.DownPETime == 0 {
		t.Fatal("chaos generated no downtime")
	}
	if a.Recovery.RestoreAt <= 0 || a.Recovery.RestoreAt == sim.Never {
		t.Fatalf("recovery read the unexpanded script: RestoreAt=%d", a.Recovery.RestoreAt)
	}
}

// TestCrashSweepDeterministic is the regression for the crash victim
// sweep's iteration order: a crash that destroys pending tasks of
// several jobs at once must abort and reinject them in a deterministic
// order (goal-ID order, not map order), or identically-seeded runs
// diverge. This configuration — CWN spreading many jobs' pendings
// across the crashed quarter of the grid — reproduced the divergence
// before the sweep was sorted.
func TestCrashSweepDeterministic(t *testing.T) {
	spec := RunSpec{
		Topo:     Grid(6),
		Workload: Fib(7),
		Strategy: CWN(9, 2),
		Arrival:  PoissonArrivals(20, 120),
		Scenario: "crash:pes=25%@t=500,recover@t=3000",
	}
	var first *Result
	for i := 0; i < 4; i++ {
		r, err := spec.ExecuteErr()
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = r
			if r.JobsAborted < 2 {
				t.Fatalf("test premise broken: only %d jobs aborted — the sweep order is not exercised", r.JobsAborted)
			}
			continue
		}
		if r.Makespan != first.Makespan || r.Stats.Events != first.Stats.Events ||
			r.Stats.TotalBusy != first.Stats.TotalBusy || r.GoalsLost != first.GoalsLost {
			t.Fatalf("run %d diverged: makespan %d/%d events %d/%d lost %d/%d",
				i, r.Makespan, first.Makespan, r.Stats.Events, first.Stats.Events, r.GoalsLost, first.GoalsLost)
		}
	}
}

// TestPooledSweepMatchesUnpooled pins RunAll's per-worker pooling: a
// replicated sweep's results equal fresh per-spec execution exactly.
func TestPooledSweepMatchesUnpooled(t *testing.T) {
	spec := RunSpec{
		Topo:     Grid(4),
		Workload: Fib(8),
		Strategy: CWN(9, 2),
		Arrival:  PoissonArrivals(50, 80),
	}
	specs := spec.Replicate(4)
	pooled, err := RunAll(specs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range specs {
		fresh, err := s.ExecuteErr()
		if err != nil {
			t.Fatal(err)
		}
		if pooled[i].Makespan != fresh.Makespan || pooled[i].Stats.Events != fresh.Stats.Events ||
			pooled[i].Stats.TotalBusy != fresh.Stats.TotalBusy {
			t.Fatalf("seed %d diverged under pooling: makespan %d vs %d", s.Seed, pooled[i].Makespan, fresh.Makespan)
		}
	}
}

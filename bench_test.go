package cwnsim_test

// One benchmark per table and figure of the paper, at reduced scale so
// `go test -bench=.` completes in minutes; the full-scale regeneration
// is `go run ./cmd/paper`. Beyond wall-clock time, each benchmark
// reports the achieved simulation quality as custom metrics
// (speedup, util%), so the design-choice ablations — CWN's
// local-minimum rule, GM's export policy, the load metric — can be read
// straight from benchmark output.

import (
	"testing"

	"cwnsim/internal/experiments"
)

// benchSpecs executes specs once per iteration and reports the mean
// speedup and utilization of the batch as custom metrics.
func benchSpecs(b *testing.B, specs []experiments.RunSpec) {
	b.Helper()
	var speedup, util float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunAll(specs, 0)
		if err != nil {
			b.Fatal(err)
		}
		speedup, util = 0, 0
		for _, r := range results {
			speedup += r.Speedup
			util += r.Util
		}
		speedup /= float64(len(results))
		util /= float64(len(results))
	}
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(util, "util%")
}

// BenchmarkLedger runs the pinned closed+open benchmark matrix behind
// the perf ledger (BENCH_PR2.json; regenerate with `go run ./cmd/bench`).
// Allocations are reported because the ledger tracks allocs/op across
// PRs; events/sec is the simulator's headline throughput figure.
func BenchmarkLedger(b *testing.B) {
	for _, c := range experiments.BenchMatrix() {
		c := c
		b.Run(c.Name, func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			for i := 0; i < b.N; i++ {
				r, err := c.Spec.ExecuteErr()
				if err != nil {
					b.Fatal(err)
				}
				events = r.Stats.Events
			}
			b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds(), "events/sec")
		})
	}
}

// BenchmarkTable1Optimization regenerates a slice of the Table 1
// parameter-optimization process: a CWN radius/horizon sweep at one
// sample point.
func BenchmarkTable1Optimization(b *testing.B) {
	var specs []experiments.RunSpec
	for _, radius := range []int{3, 5, 9} {
		for _, horizon := range []int{1, 2} {
			specs = append(specs, experiments.RunSpec{
				Topo:     experiments.Grid(8),
				Workload: experiments.Fib(11),
				Strategy: experiments.CWN(radius, horizon),
			})
		}
	}
	benchSpecs(b, specs)
}

// BenchmarkTable2SpeedupCell regenerates one cell pair of Table 2:
// CWN and GM on the 10x10 grid with fib(13).
func BenchmarkTable2SpeedupCell(b *testing.B) {
	ts := experiments.Grid(10)
	benchSpecs(b, []experiments.RunSpec{
		{Topo: ts, Workload: experiments.Fib(13), Strategy: experiments.PaperCWNFor(ts)},
		{Topo: ts, Workload: experiments.Fib(13), Strategy: experiments.PaperGMFor(ts)},
	})
}

// BenchmarkTable2SpeedupQuickSuite regenerates the whole comparison at
// quick scale: 96 runs over machines up to 100 PEs.
func BenchmarkTable2SpeedupQuickSuite(b *testing.B) {
	benchSpecs(b, experiments.SpeedupSuite(true))
}

// BenchmarkTable3HopDistribution regenerates the message-distance
// histogram runs.
func BenchmarkTable3HopDistribution(b *testing.B) {
	benchSpecs(b, experiments.HopDistributionSpecs(1, true))
}

// BenchmarkPlot1DLMDCCurve regenerates Plot 1's family member on the
// 10x10 double-lattice-mesh: dc utilization-vs-size curve (both
// strategies, quick sizes).
func BenchmarkPlot1DLMDCCurve(b *testing.B) {
	benchSpecs(b, experiments.UtilizationCurveSpecs(experiments.DLM(10, 5), "dc", true))
}

// BenchmarkPlot7GridDCCurve regenerates Plot 7: dc on the 10x10 grid.
func BenchmarkPlot7GridDCCurve(b *testing.B) {
	benchSpecs(b, experiments.UtilizationCurveSpecs(experiments.Grid(10), "dc", true))
}

// BenchmarkPlotsFibCurve regenerates the fib analogue the paper omits
// for space ("the Fibonacci plots are very similar").
func BenchmarkPlotsFibCurve(b *testing.B) {
	benchSpecs(b, experiments.UtilizationCurveSpecs(experiments.Grid(8), "fib", true))
}

// BenchmarkPlot11TimeSeriesDLM regenerates Plot 11-13 style runs:
// utilization sampled over time on the 10x10 DLM.
func BenchmarkPlot11TimeSeriesDLM(b *testing.B) {
	benchSpecs(b, experiments.TimeSeriesSpecs(experiments.DLM(10, 5), experiments.Fib(13), 50))
}

// BenchmarkPlot14TimeSeriesGrid regenerates Plot 14-16 style runs on
// the 10x10 grid.
func BenchmarkPlot14TimeSeriesGrid(b *testing.B) {
	benchSpecs(b, experiments.TimeSeriesSpecs(experiments.Grid(10), experiments.Fib(13), 50))
}

// BenchmarkAppendixHypercube regenerates an appendix curve: fib on the
// dimension-5 hypercube.
func BenchmarkAppendixHypercube(b *testing.B) {
	benchSpecs(b, experiments.UtilizationCurveSpecs(experiments.Hypercube(5), "fib", true))
}

// BenchmarkAblationExtensions measures the future-work extension suite
// (ACWN variants vs CWN vs baselines).
func BenchmarkAblationExtensions(b *testing.B) {
	benchSpecs(b, experiments.AblationSpecs(true))
}

// BenchmarkCommRatioSweep measures the communication-ratio caveat sweep.
func BenchmarkCommRatioSweep(b *testing.B) {
	benchSpecs(b, experiments.CommRatioSpecs(true))
}

// BenchmarkCWNMinimumRule isolates the local-minimum acceptance rule
// (DESIGN.md design choice): the paper's text reads strict-<, its data
// implies <=. Compare achieved speedup via the custom metric.
func BenchmarkCWNMinimumRule(b *testing.B) {
	base := experiments.RunSpec{Topo: experiments.Grid(10), Workload: experiments.Fib(13)}
	b.Run("nonstrict", func(b *testing.B) {
		s := base
		s.Strategy = experiments.CWN(9, 2)
		benchSpecs(b, []experiments.RunSpec{s})
	})
	b.Run("strict", func(b *testing.B) {
		s := base
		s.Strategy = experiments.CWN(9, 2)
		s.Strategy.Strict = true
		benchSpecs(b, []experiments.RunSpec{s})
	})
}

// BenchmarkGMExportPolicy isolates the Gradient Model's export-selection
// policy (DESIGN.md design choice): exporting the queue front (oldest,
// biggest subtree) versus the newest goal.
func BenchmarkGMExportPolicy(b *testing.B) {
	b.Run("oldest", func(b *testing.B) {
		benchSpecs(b, []experiments.RunSpec{{
			Topo: experiments.Grid(10), Workload: experiments.Fib(13),
			Strategy: experiments.GM(1, 2, 20),
		}})
	})
	b.Run("newest", func(b *testing.B) {
		benchSpecs(b, []experiments.RunSpec{{
			Topo: experiments.Grid(10), Workload: experiments.Fib(13),
			Strategy: experiments.StrategySpec{Kind: "gm", Low: 1, High: 2, Interval: 20, ExportNewest: true},
		}})
	})
}

// BenchmarkLoadMetric isolates the commitment-aware load refinement.
func BenchmarkLoadMetric(b *testing.B) {
	base := experiments.RunSpec{Topo: experiments.Grid(10), Workload: experiments.Fib(13), Strategy: experiments.CWN(9, 2)}
	b.Run("queue", func(b *testing.B) { benchSpecs(b, []experiments.RunSpec{base}) })
	b.Run("queue+pending", func(b *testing.B) {
		s := base
		s.LoadMetric = "queue+pending"
		benchSpecs(b, []experiments.RunSpec{s})
	})
}

// BenchmarkDiameterStudy regenerates the extension study of the paper's
// closing conjecture (CWN's edge vs network diameter).
func BenchmarkDiameterStudy(b *testing.B) {
	benchSpecs(b, experiments.DiameterStudySpecs(true))
}

// BenchmarkImbalanceSweep regenerates the tree-skew extension study.
func BenchmarkImbalanceSweep(b *testing.B) {
	benchSpecs(b, experiments.ImbalanceSpecs(true))
}

// BenchmarkMonitorOverhead measures the cost of ORACLE's per-PE load
// monitor against the same run without it.
func BenchmarkMonitorOverhead(b *testing.B) {
	base := experiments.RunSpec{Topo: experiments.Grid(10), Workload: experiments.Fib(13), Strategy: experiments.CWN(9, 2)}
	b.Run("off", func(b *testing.B) { benchSpecs(b, []experiments.RunSpec{base}) })
	b.Run("on", func(b *testing.B) {
		s := base
		s.SampleInterval = 50
		s.MonitorPE = true
		benchSpecs(b, []experiments.RunSpec{s})
	})
}

// BenchmarkStrategyZoo compares every strategy in the library on one
// configuration; the speedup metric column is the interesting output.
func BenchmarkStrategyZoo(b *testing.B) {
	for _, ss := range []experiments.StrategySpec{
		experiments.CWN(9, 2),
		experiments.GM(1, 2, 20),
		experiments.ACWN(9, 2, 3, 40),
		{Kind: "diffusion", Interval: 20},
		{Kind: "worksteal", Interval: 20, Threshold: 1},
		{Kind: "randomwalk", Steps: 3},
		{Kind: "roundrobin"},
		{Kind: "ideal"},
		{Kind: "local"},
	} {
		ss := ss
		b.Run(ss.Label(), func(b *testing.B) {
			benchSpecs(b, []experiments.RunSpec{{
				Topo: experiments.Grid(10), Workload: experiments.Fib(13), Strategy: ss,
			}})
		})
	}
}

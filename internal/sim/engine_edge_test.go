package sim

import (
	"math/rand"
	"testing"
)

// TestHeapStressInterleaved exercises the hand-rolled heap with a long
// random interleaving of schedules and cancellations, validated against
// a reference model.
func TestHeapStressInterleaved(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	e := NewEngine(1)
	type rec struct {
		at  Time
		seq int
	}
	var want []rec // live events only
	var live []*Event
	var liveRec []rec
	seq := 0
	for round := 0; round < 2000; round++ {
		switch rng.Intn(3) {
		case 0, 1: // schedule
			at := Time(rng.Intn(500))
			r := rec{at, seq}
			seq++
			idx := len(liveRec)
			_ = idx
			var self rec = r
			ev := e.At(at, func() {})
			live = append(live, ev)
			liveRec = append(liveRec, self)
		case 2: // cancel a random live event
			if len(live) > 0 {
				i := rng.Intn(len(live))
				live[i].Cancel()
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				liveRec[i] = liveRec[len(liveRec)-1]
				liveRec = liveRec[:len(liveRec)-1]
			}
		}
	}
	want = append(want, liveRec...)
	// Count survivors by draining.
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != len(want) {
		t.Fatalf("fired %d events, want %d live", fired, len(want))
	}
}

func TestRunUntilExactEventTime(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(10, func() { fired = true })
	// Deadline exactly at the event: it must fire (<= semantics).
	e.RunUntil(10)
	if !fired {
		t.Fatal("event at the deadline did not fire")
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %d", e.Now())
	}
}

func TestRunUntilZero(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Schedule(0, func() { n++ })
	e.Schedule(1, func() { n++ })
	e.RunUntil(0)
	if n != 1 {
		t.Fatalf("fired %d events at t=0, want 1", n)
	}
}

func TestEventAtAccessor(t *testing.T) {
	e := NewEngine(1)
	ev := e.Schedule(17, func() {})
	if ev.At() != 17 {
		t.Fatalf("At = %d", ev.At())
	}
}

func TestManySameTimeEventsScheduledDuringFire(t *testing.T) {
	// Events scheduled at the current instant from within a handler run
	// in the same instant, after already-queued ones.
	e := NewEngine(1)
	var order []string
	e.Schedule(5, func() {
		order = append(order, "a")
		e.Schedule(0, func() { order = append(order, "nested") })
	})
	e.Schedule(5, func() { order = append(order, "b") })
	e.Run()
	want := []string{"a", "b", "nested"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestStopInsideRunUntil(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Schedule(1, func() { n++; e.Stop() })
	e.Schedule(2, func() { n++ })
	more := e.RunUntil(100)
	// The event at t=2 is still pending: RunUntil reports it truthfully
	// (its documented contract), and Stopped says why it will not fire.
	if !more {
		t.Fatal("RunUntil = false with a live event still pending")
	}
	if !e.Stopped() {
		t.Fatal("Stopped() = false after Stop fired")
	}
	if n != 1 {
		t.Fatalf("fired %d, want 1", n)
	}
	if e.Now() != 1 {
		t.Fatalf("clock advanced to %d after Stop, want 1", e.Now())
	}
}

func TestStopInsideRunUntilDrainedHeap(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() { e.Stop() })
	if more := e.RunUntil(100); more {
		t.Fatal("RunUntil = true with nothing pending after Stop")
	}
}

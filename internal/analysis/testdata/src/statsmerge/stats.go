// Package statsmergefix exercises the statsmerge analyzer: every
// field of a //simlint:mergeable struct must be folded by the type's
// merge method or carry a reasoned //simlint:nomerge tag.
package statsmergefix

// stats mirrors the shape of the machine's shard-merged statistics,
// with one field deliberately missing from the merge — the regression
// the analyzer exists to catch (a field added to the struct but
// forgotten in the shard fold would silently drop that statistic from
// every sharded run).
//
//simlint:mergeable
type stats struct {
	Goals int64
	Msgs  int64
	Label string //simlint:nomerge identifying label, not a statistic
	//simlint:nomerge
	Flags   int   // want `//simlint:nomerge on stats\.Flags needs a reason`
	Dropped int64 // want `field stats\.Dropped is not referenced by the type's merge method`
}

func (s *stats) merge(o *stats) {
	s.Goals += o.Goals
	s.Msgs += o.Msgs
}

// counts is the compliant shape: every field folded, upper-case Merge
// accepted the same as merge.
//
//simlint:mergeable
type counts struct {
	Hits   int64
	Misses int64
}

func (c *counts) Merge(o *counts) {
	c.Hits += o.Hits
	c.Misses += o.Misses
}

// orphan is tagged mergeable but has no merge method at all.
//
//simlint:mergeable
type orphan struct { // want `type orphan is tagged //simlint:mergeable but has no merge method`
	N int
}

// plain is untagged: nothing is checked, merge or not.
type plain struct {
	A, B int
}

package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReplicate(t *testing.T) {
	rs := RunSpec{Topo: Grid(3), Workload: Fib(8), Strategy: CWN(3, 1), Seed: 10}
	reps := rs.Replicate(3)
	if len(reps) != 3 {
		t.Fatalf("got %d replicas", len(reps))
	}
	for i, r := range reps {
		if r.Seed != 10+int64(i) {
			t.Errorf("replica %d seed = %d", i, r.Seed)
		}
		if r.Topo.Label() != rs.Topo.Label() {
			t.Errorf("replica %d lost topology", i)
		}
	}
	// Unset seed defaults to base 1.
	reps = RunSpec{Topo: Grid(3), Workload: Fib(8), Strategy: CWN(3, 1)}.Replicate(2)
	if reps[0].Seed != 1 || reps[1].Seed != 2 {
		t.Errorf("default seeds = %d, %d", reps[0].Seed, reps[1].Seed)
	}
}

func TestReplicateValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Replicate(0) did not panic")
		}
	}()
	RunSpec{}.Replicate(0)
}

func TestRunReplicatedAggregates(t *testing.T) {
	specs := []RunSpec{
		{Topo: Grid(4), Workload: Fib(10), Strategy: CWN(4, 1)},
		{Topo: Grid(4), Workload: Fib(10), Strategy: GM(1, 2, 20)},
	}
	aggs, err := RunReplicated(specs, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("got %d aggregates", len(aggs))
	}
	for _, a := range aggs {
		if a.Util.N() != 4 {
			t.Errorf("%s: n = %d, want 4", a.Spec.Name(), a.Util.N())
		}
		if a.Speedup.Mean() <= 0 {
			t.Errorf("%s: mean speedup %f", a.Spec.Name(), a.Speedup.Mean())
		}
		// Seed-to-seed variation exists but is bounded for a healthy
		// strategy: coefficient of variation under 50%.
		if cv := a.Speedup.Stddev() / a.Speedup.Mean(); cv > 0.5 {
			t.Errorf("%s: speedup CV %.2f too large", a.Spec.Name(), cv)
		}
		if a.String() == "" {
			t.Error("empty aggregate string")
		}
	}
	// CWN's mean must beat GM's even with seed noise.
	if aggs[0].Speedup.Mean() <= aggs[1].Speedup.Mean() {
		t.Errorf("CWN mean %.2f <= GM mean %.2f across seeds",
			aggs[0].Speedup.Mean(), aggs[1].Speedup.Mean())
	}
	tb := AggregateTable("t", aggs)
	if tb.NumRows() != 2 {
		t.Errorf("table rows = %d", tb.NumRows())
	}
}

func TestSpecFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "specs.json")
	specs := []RunSpec{
		{Topo: Grid(4), Workload: Fib(9), Strategy: CWN(4, 1), Seed: 3},
		{Topo: DLM(5, 5), Workload: DC(55), Strategy: GM(1, 1, 20)},
	}
	if err := SaveSpecs(path, "test batch", specs); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("loaded %d specs", len(back))
	}
	if back[0].Topo.Label() != "grid-4x4" || back[1].Strategy.Kind != "gm" || back[0].Seed != 3 {
		t.Errorf("round trip mangled specs: %+v", back)
	}
	// Loaded specs actually run.
	r := back[0].Execute()
	if r.Speedup <= 0 {
		t.Error("loaded spec did not run")
	}
}

func TestSpecFileDefaults(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "specs.json")
	blob := `{
  "comment": "defaults test",
  "defaults": {"topo": {"kind":"grid","rows":4,"cols":4}, "workload": {"kind":"fib","m":9}, "seed": 7},
  "runs": [
    {"strategy": {"kind":"cwn","radius":4,"horizon":1}},
    {"strategy": {"kind":"gm","low":1,"high":2,"interval":20}, "seed": 9}
  ]
}`
	if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, err := LoadSpecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Topo.Label() != "grid-4x4" || specs[0].Workload.Label() != "fib(9)" {
		t.Errorf("defaults not applied: %+v", specs[0])
	}
	if specs[0].Seed != 7 {
		t.Errorf("default seed not applied: %d", specs[0].Seed)
	}
	if specs[1].Seed != 9 {
		t.Errorf("explicit seed overridden: %d", specs[1].Seed)
	}
}

func TestShippedSweepSpecLoads(t *testing.T) {
	specs, err := LoadSpecs("../../examples/sweeps/comparison.json")
	if err != nil {
		t.Fatalf("shipped spec file broken: %v", err)
	}
	if len(specs) != 7 {
		t.Fatalf("loaded %d specs, want 7", len(specs))
	}
	// Defaults fill in the grid and fib(15) for the first five runs.
	if specs[0].Topo.Label() != "grid-10x10" || specs[0].Workload.Label() != "fib(15)" {
		t.Errorf("defaults not applied: %+v", specs[0])
	}
	// Explicit DLM overrides survive.
	if specs[5].Topo.Label() != "dlm-10x10-s5" {
		t.Errorf("override lost: %+v", specs[5].Topo)
	}
}

func TestSpecFileErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadSpecs(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadSpecs(bad); err == nil {
		t.Error("bad JSON should error")
	}
	empty := filepath.Join(dir, "empty.json")
	os.WriteFile(empty, []byte(`{"runs": []}`), 0o644)
	if _, err := LoadSpecs(empty); err == nil {
		t.Error("empty runs should error")
	}
	badspec := filepath.Join(dir, "badspec.json")
	os.WriteFile(badspec, []byte(`{"runs": [{"topo":{"kind":"mobius"},"workload":{"kind":"fib","m":5},"strategy":{"kind":"cwn","radius":3,"horizon":1}}]}`), 0o644)
	if _, err := LoadSpecs(badspec); err == nil {
		t.Error("unknown topology kind should error at load")
	}
	if !strings.Contains(func() string {
		_, err := LoadSpecs(badspec)
		return err.Error()
	}(), "run 0") {
		t.Error("error should name the offending run")
	}
}

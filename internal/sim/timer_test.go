package sim

import "testing"

func TestTimerFiresOnce(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	tm := NewTimer(e, func() { fired = append(fired, e.Now()) })
	tm.Schedule(10)
	if !tm.Armed() || tm.Next() != 10 {
		t.Fatalf("armed=%v next=%d, want true/10", tm.Armed(), tm.Next())
	}
	e.Run()
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired = %v, want [10]", fired)
	}
	if tm.Armed() {
		t.Fatal("timer still armed after firing")
	}
}

func TestTimerRearmAfterFire(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	var tm *Timer
	tm = NewTimer(e, func() {
		fired = append(fired, e.Now())
		if len(fired) < 3 {
			tm.Schedule(5)
		}
	})
	tm.Schedule(5)
	e.Run()
	want := []Time{5, 10, 15}
	if len(fired) != 3 {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestTimerStopAndRearm(t *testing.T) {
	e := NewEngine(1)
	n := 0
	tm := NewTimer(e, func() { n++ })
	tm.Schedule(10)
	if !tm.Stop() {
		t.Fatal("Stop() = false on an armed timer")
	}
	if tm.Armed() {
		t.Fatal("timer armed after Stop")
	}
	if tm.Stop() {
		t.Fatal("Stop() = true on an idle timer")
	}
	// A stopped timer re-arms cleanly: no tombstone remains in the heap.
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after Stop, want 0", e.Pending())
	}
	tm.Schedule(20)
	e.Run()
	if n != 1 {
		t.Fatalf("fired %d times, want 1 (the re-armed firing)", n)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %d, want 20", e.Now())
	}
}

func TestTimerDoubleArmPanics(t *testing.T) {
	e := NewEngine(1)
	tm := NewTimer(e, func() {})
	tm.Schedule(5)
	defer func() {
		if recover() == nil {
			t.Fatal("re-arming a pending timer did not panic")
		}
	}()
	tm.Schedule(5)
}

func TestTimerValidation(t *testing.T) {
	e := NewEngine(1)
	for name, f := range map[string]func(){
		"nil fn":         func() { NewTimer(e, nil) },
		"negative delay": func() { NewTimer(e, func() {}).Schedule(-1) },
		"past At":        func() { e.Schedule(0, func() {}); e.Run(); NewTimer(e, func() {}).At(e.Now() - 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestTimerOrderingMatchesSchedule(t *testing.T) {
	// A timer armed after a Schedule at the same instant fires after it
	// (sequence order), exactly like two Schedules would.
	e := NewEngine(1)
	var order []string
	e.Schedule(5, func() { order = append(order, "event") })
	tm := NewTimer(e, func() { order = append(order, "timer") })
	tm.Schedule(5)
	e.Run()
	if len(order) != 2 || order[0] != "event" || order[1] != "timer" {
		t.Fatalf("order = %v, want [event timer]", order)
	}
}

// countAction exercises the pooled-event path.
type countAction struct {
	e *Engine
	n int
	N int
}

func (a *countAction) Act() {
	a.n++
	if a.n < a.N {
		a.e.ScheduleAction(1, a)
	}
}

func TestScheduleActionFiresInOrder(t *testing.T) {
	e := NewEngine(1)
	a := &countAction{e: e, N: 100}
	e.ScheduleAction(1, a)
	e.Run()
	if a.n != 100 {
		t.Fatalf("action fired %d times, want 100", a.n)
	}
	if e.Processed() != 100 {
		t.Fatalf("Processed = %d, want 100", e.Processed())
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %d, want 100", e.Now())
	}
}

func TestActionAndClosureInterleave(t *testing.T) {
	e := NewEngine(1)
	var order []int
	rec := &recordAction{order: &order, v: 2}
	e.Schedule(5, func() { order = append(order, 1) })
	e.AtAction(5, rec)
	e.Schedule(5, func() { order = append(order, 3) })
	e.Run()
	for i, want := range []int{1, 2, 3} {
		if order[i] != want {
			t.Fatalf("order = %v, want [1 2 3]", order)
		}
	}
}

type recordAction struct {
	order *[]int
	v     int
}

func (a *recordAction) Act() { *a.order = append(*a.order, a.v) }

func TestAtActionValidation(t *testing.T) {
	e := NewEngine(1)
	for name, f := range map[string]func(){
		"nil action":     func() { e.AtAction(0, nil) },
		"negative delay": func() { e.ScheduleAction(-1, &countAction{e: e, N: 1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSteadyStateSchedulingAllocsNothing pins the PR 2 fast path: once
// the free list and timers warm up, steady-state event turnover — a
// ticker firing and a self-rescheduling pooled action — performs zero
// allocations per event.
func TestSteadyStateSchedulingAllocsNothing(t *testing.T) {
	e := NewEngine(1)
	ticks := 0
	NewTicker(e, 10, 0, func() { ticks++ })
	a := &countAction{e: e, N: 1 << 30}
	e.ScheduleAction(1, a)
	e.RunUntil(100) // warm up the pool

	allocs := testing.AllocsPerRun(100, func() {
		e.RunUntil(e.Now() + 50)
	})
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f per 50-unit window, want 0", allocs)
	}
	if ticks == 0 || a.n == 0 {
		t.Fatal("nothing fired")
	}
}

func TestPooledEventsDoNotCorruptCancelledHandles(t *testing.T) {
	// A cancelled public event and pooled actions share the heap; the
	// handle's Cancel must keep meaning that one logical event even as
	// pooled events recycle around it.
	e := NewEngine(1)
	fired := false
	ev := e.Schedule(50, func() { fired = true })
	a := &countAction{e: e, N: 40}
	e.ScheduleAction(1, a)
	e.RunUntil(10)
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired amid pooled-event recycling")
	}
	if a.n != 40 {
		t.Fatalf("action fired %d, want 40", a.n)
	}
}

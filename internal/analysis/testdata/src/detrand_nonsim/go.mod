module utilfix

go 1.24

package experiments

import "fmt"

// ResultSet indexes results by (workload, topology, strategy family) for
// the table formatters.
type ResultSet struct {
	byKey map[string]*Result
}

func key(w WorkloadSpec, t TopoSpec, stratKind string) string {
	return fmt.Sprintf("%s|%s|%s", w.Label(), t.Label(), stratKind)
}

// Index builds a ResultSet. When several results share a key (e.g.
// repeated seeds) the last one wins.
func Index(results []*Result) *ResultSet {
	rs := &ResultSet{byKey: make(map[string]*Result, len(results))}
	for _, r := range results {
		rs.byKey[key(r.Spec.Workload, r.Spec.Topo, r.Spec.Strategy.Kind)] = r
	}
	return rs
}

// Get returns the result for a configuration, or nil.
func (rs *ResultSet) Get(w WorkloadSpec, t TopoSpec, stratKind string) *Result {
	return rs.byKey[key(w, t, stratKind)]
}

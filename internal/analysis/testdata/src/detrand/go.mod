module detrandfix/internal/sim

go 1.24

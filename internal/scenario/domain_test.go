package scenario

import (
	"fmt"
	"reflect"
	"testing"
)

// TestDomainChaosWellFormed is the property suite for correlated
// failure domains: across domain shapes and machine sizes, every
// expanded timeline must be deterministic, strike only valid PEs, keep
// each strike inside one domain, pair every failure with one shared
// recovery, and never take the machine's last live PE down.
func TestDomainChaosWellFormed(t *testing.T) {
	type shape struct {
		spec string
		a, b int // rack size, or block tile dims
	}
	shapes := []shape{
		{"rack:1", 1, 0},
		{"rack:4", 4, 0},
		{"rack:8", 8, 0},
		{"block:2x2", 2, 2},
		{"block:4x4", 4, 4},
		{"block:3x2", 3, 2},
	}
	sizes := []int{2, 7, 16, 33, 64, 100, 1024}
	const horizon = 50000
	for _, sh := range shapes {
		for _, p := range sizes {
			t.Run(fmt.Sprintf("%s/p%d", sh.spec, p), func(t *testing.T) {
				src := MustParse("chaos:mtbf=400:mttr=250:crash:domain=" + sh.spec + "@seed=9")
				ev := src.Events[0]
				out := src.Expand(p, horizon)
				if again := src.Expand(p, horizon); !reflect.DeepEqual(out.Events, again.Events) {
					t.Fatal("expansion is not deterministic")
				}
				if ev.domainCount(p) >= 2 && len(out.Events) == 0 {
					t.Fatal("multi-domain machine produced an empty timeline")
				}
				// Replay the timeline in emitted order, checking global
				// consistency: strikes hit only live PEs, recoveries only
				// downed ones, and at least one PE stays live throughout.
				down := make(map[int]bool)
				for i, e := range out.Events {
					if i > 0 && e.At < out.Events[i-1].At {
						t.Fatalf("timeline out of order at %d", i)
					}
					if len(e.PEs) == 0 {
						t.Fatalf("event %d has no targets", i)
					}
					for k, pe := range e.PEs {
						if pe < 0 || pe >= p {
							t.Fatalf("event %d targets PE %d outside [0,%d)", i, pe, p)
						}
						if k > 0 && e.PEs[k] <= e.PEs[k-1] {
							t.Fatalf("event %d targets not ascending/unique: %v", i, e.PEs)
						}
					}
					switch e.Kind {
					case CrashPE:
						checkOneDomain(t, sh.spec, sh.a, sh.b, p, e.PEs)
						for _, pe := range e.PEs {
							if down[pe] {
								t.Fatalf("event %d strikes PE %d while already down", i, pe)
							}
							down[pe] = true
						}
						if len(down) >= p {
							t.Fatalf("event %d took the last live PE down", i)
						}
					case RecoverPE:
						for _, pe := range e.PEs {
							if !down[pe] {
								t.Fatalf("event %d recovers PE %d which is up", i, pe)
							}
							delete(down, pe)
						}
					default:
						t.Fatalf("event %d has unexpected kind %v", i, e.Kind)
					}
				}
				// Every strike's shared repair must eventually appear.
				if len(down) != 0 {
					t.Fatalf("timeline ends with %d PEs still down (unpaired strikes)", len(down))
				}
			})
		}
	}
}

// checkOneDomain asserts a strike fits inside a single failure domain
// of the given shape.
func checkOneDomain(t *testing.T, spec string, a, b, p int, pes []int) {
	t.Helper()
	switch {
	case a > 0 && b == 0: // rack: one contiguous index run
		if pes[0]/a != pes[len(pes)-1]/a {
			t.Fatalf("rack strike %v spans racks of size %d", pes, a)
		}
	default: // block: one tile of the covering square grid
		side := gridSide(p)
		bx, by := (pes[0]%side)/a, (pes[0]/side)/b
		for _, pe := range pes {
			if (pe%side)/a != bx || (pe/side)/b != by {
				t.Fatalf("block strike %v spans %dx%d tiles (side %d)", pes, a, b, side)
			}
		}
	}
}

// TestDomainChaosBlackoutMode pins that domains compose with the
// blackout (non-crash) mode: same structure, FailPE kind.
func TestDomainChaosBlackoutMode(t *testing.T) {
	out := MustParse("chaos:mtbf=300:mttr=200:domain=rack:4@seed=5").Expand(32, 20000)
	fails := 0
	for _, e := range out.Events {
		switch e.Kind {
		case FailPE:
			fails++
		case RecoverPE:
		default:
			t.Fatalf("unexpected kind %v in blackout-mode domain chaos", e.Kind)
		}
	}
	if fails == 0 {
		t.Fatal("no blackout strikes generated")
	}
}

// TestDomainChaosCorrelatedRepair pins the defining correlation: all
// members of one strike come back at the same instant.
func TestDomainChaosCorrelatedRepair(t *testing.T) {
	out := MustParse("chaos:mtbf=500:mttr=300:crash:domain=rack:8@seed=3").Expand(64, 40000)
	multi := 0
	for i, e := range out.Events {
		if e.Kind != CrashPE || len(e.PEs) < 2 {
			continue
		}
		multi++
		// The paired recovery carries the identical member list at one
		// later instant.
		found := false
		for _, r := range out.Events[i:] {
			if r.Kind == RecoverPE && reflect.DeepEqual(r.PEs, e.PEs) && r.At > e.At {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("strike at %d (%v) has no shared recovery", e.At, e.PEs)
		}
	}
	if multi == 0 {
		t.Fatal("seed produced no multi-PE strikes — pick another seed")
	}
}

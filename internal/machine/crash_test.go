package machine

import (
	"testing"

	"cwnsim/internal/scenario"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TestCrashLosesStateAndRetries pins the state-loss semantics on the
// simplest machine: all work piled on PE 0, which crashes mid-run. The
// queued and in-flight goals and the pending tasks vanish (GoalsLost),
// the one affected job aborts and retries from its root on the live
// neighbor, and the final result is still correct.
func TestCrashLosesStateAndRetries(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("crash:pes=0@t=35,recover@t=400")
	tree := workload.NewFib(6)
	st := New(topology.NewGrid(1, 2), tree, keepLocal{}, cfg).Run()
	if !st.Completed {
		t.Fatalf("crash run did not complete: %d/%d jobs", st.JobsDone, st.JobsInjected)
	}
	if st.Result != workload.FibValue(6) {
		t.Fatalf("Result = %d, want fib(6) = %d", st.Result, workload.FibValue(6))
	}
	if st.GoalsLost == 0 {
		t.Fatal("no goals lost by the crash")
	}
	if st.JobsAborted != 1 || st.JobsRetried != 1 {
		t.Fatalf("JobsAborted/JobsRetried = %d/%d, want 1/1", st.JobsAborted, st.JobsRetried)
	}
	if st.ServiceAborts != 1 {
		t.Fatalf("ServiceAborts = %d, want 1 (the goal in service at t=35)", st.ServiceAborts)
	}
	if st.DownPETime != 400-35 {
		t.Fatalf("DownPETime = %d, want %d", st.DownPETime, 400-35)
	}
	// Nothing was evacuated — a crash destroys, it does not requeue.
	if st.GoalsRequeued != 0 {
		t.Fatalf("GoalsRequeued = %d, want 0 for a crash", st.GoalsRequeued)
	}
	// The retry kept the job's original injection time, so the sojourn
	// bills the failed attempt: the job completes well after the crash
	// but its record still starts at t=0.
	rec := st.JobRecords[0]
	if rec.InjectedAt != 0 {
		t.Fatalf("retried job's InjectedAt = %d, want 0", rec.InjectedAt)
	}
	if rec.Sojourn() <= 35 {
		t.Fatalf("Sojourn = %d, want > 35 (the lost attempt is billed)", rec.Sojourn())
	}
}

// TestCrashStreamCorrectness drives a stream whose goals cross PEs
// through repeated crashes: every job must still deliver the correct
// result — stale responses are dropped, not mis-integrated — and every
// abort must be matched by a retry.
func TestCrashStreamCorrectness(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("crash:pes=1@t=300,recover@t=800,crash:pes=2@t=1500,recover@t=2000")
	tree := workload.NewFib(7)
	st := NewStream(topology.NewGrid(1, 3), NewFixedInterval(tree, 150, 20), pushRight{}, cfg).Run()
	if !st.Completed {
		t.Fatalf("stream did not drain: %d/%d", st.JobsDone, st.JobsInjected)
	}
	if st.JobsDone != 20 {
		t.Fatalf("JobsDone = %d, want 20", st.JobsDone)
	}
	want := workload.FibValue(7)
	for _, r := range st.JobRecords {
		if r.Result != want {
			t.Fatalf("job %d computed %d, want %d — a stale response was integrated", r.ID, r.Result, want)
		}
	}
	if st.JobsAborted == 0 {
		t.Fatal("no jobs aborted across two crashes of busy PEs")
	}
	if st.JobsRetried != st.JobsAborted {
		t.Fatalf("JobsRetried = %d != JobsAborted = %d", st.JobsRetried, st.JobsAborted)
	}
}

// TestCrashVersusFail pins the defining difference of the two fault
// modes on the same script shape: a blackout loses nothing (goals
// evacuate), a crash loses state and aborts jobs.
func TestCrashVersusFail(t *testing.T) {
	run := func(op string) *Stats {
		cfg := DefaultConfig()
		cfg.Scenario = scenario.MustParse(op + ":pes=0@t=35,recover@t=400")
		return New(topology.NewGrid(1, 2), workload.NewFib(6), keepLocal{}, cfg).Run()
	}
	fail, crash := run("fail"), run("crash")
	if fail.GoalsLost != 0 || fail.JobsAborted != 0 {
		t.Fatalf("blackout lost state: lost=%d aborted=%d", fail.GoalsLost, fail.JobsAborted)
	}
	if fail.GoalsRequeued == 0 {
		t.Fatal("blackout evacuated nothing")
	}
	if crash.GoalsLost == 0 || crash.JobsAborted == 0 {
		t.Fatalf("crash lost nothing: lost=%d aborted=%d", crash.GoalsLost, crash.JobsAborted)
	}
	if crash.Result != fail.Result {
		t.Fatalf("fault modes disagree on the result: %d vs %d", crash.Result, fail.Result)
	}
}

// TestCrashingEveryPERejected pins both guards: a single all-PE crash
// is rejected at validation, and cumulative whole-machine crashes panic
// at apply time.
func TestCrashingEveryPERejected(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("constructing a machine with an all-PE crash did not panic")
			}
		}()
		cfg := DefaultConfig()
		cfg.Scenario = scenario.MustParse("crash:pes=100%@t=10")
		New(topology.NewGrid(1, 2), workload.NewChain(50), keepLocal{}, cfg)
	}()

	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("crash:pes=0@t=10,crash:pes=1@t=20")
	m := New(topology.NewGrid(1, 2), workload.NewChain(50), keepLocal{}, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("cumulatively crashing every PE did not panic")
		}
	}()
	m.Run()
}

// TestCrashDeterministicPerSeed runs the same crash scenario twice and
// demands identical fingerprints: abort/retry adds no hidden
// nondeterminism (victim collection is in deterministic encounter
// order).
func TestCrashDeterministicPerSeed(t *testing.T) {
	run := func() fingerprint {
		cfg := DefaultConfig()
		cfg.Scenario = scenario.MustParse("crash:pes=25%@t=500,recover@t=1500")
		tree := workload.NewFib(6)
		return fp(NewStream(topology.NewGrid(2, 2), NewPoisson(tree, 50, 50), pushRight{}, cfg).Run())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("crash run not deterministic: %+v vs %+v", a, b)
	}
}

// TestChaosScenarioRuns drives a generated failure timeline end to end:
// the machine expands the chaos spec deterministically and the stream
// drains through every generated blackout.
func TestChaosScenarioRuns(t *testing.T) {
	run := func() (*Stats, *scenario.Script, fingerprint) {
		cfg := DefaultConfig()
		cfg.Scenario = scenario.MustParse("chaos:mtbf=500:mttr=200:until=5000@seed=3")
		tree := workload.NewFib(4)
		m := NewStream(topology.NewGrid(2, 2), NewFixedInterval(tree, 100, 30), keepLocal{}, cfg)
		st := m.Run()
		return st, m.ScenarioScript(), fp(st)
	}
	st, script, f1 := run()
	if !st.Completed {
		t.Fatal("chaos stream did not drain")
	}
	if st.DownPETime == 0 {
		t.Fatal("chaos generated no downtime")
	}
	if len(script.Events) == 0 || script.Events[0].Kind == scenario.Chaos {
		t.Fatalf("ScenarioScript not expanded: %v", script)
	}
	if _, _, f2 := run(); f1 != f2 {
		t.Fatalf("chaos run not deterministic: %+v vs %+v", f1, f2)
	}
}

// TestCrashChaosScenarioRuns is the crash-mode chaos variant: state
// loss with random timing must still deliver every job, correctly.
func TestCrashChaosScenarioRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("chaos:mtbf=400:mttr=150:until=4000:crash@seed=11")
	tree := workload.NewFib(5)
	st := NewStream(topology.NewGrid(2, 2), NewFixedInterval(tree, 120, 25), pushRight{}, cfg).Run()
	if !st.Completed {
		t.Fatalf("crash-chaos stream did not drain: %d/%d", st.JobsDone, st.JobsInjected)
	}
	want := workload.FibValue(5)
	for _, r := range st.JobRecords {
		if r.Result != want {
			t.Fatalf("job %d computed %d, want %d", r.ID, r.Result, want)
		}
	}
}

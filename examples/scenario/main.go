// Example scenario drives load-distribution strategies through the
// same scripted disaster: a Poisson job stream on a 10×10 grid loses
// 25% of its PEs at t=5000 and gets them back at t=10000. The
// comparison the static paper cannot express: which strategy
// re-distributes fastest when the environment shifts under it.
//
// Two fault modes and two strategy generations meet here:
//
//   - fail: (blackout) — queued goals evacuate to the nearest live PE,
//     arriving goals are redirected, nothing is lost;
//   - crash: (state loss) — queued and in-flight goals vanish, every
//     affected job aborts and retries from its root (GoalsLost /
//     JobsAborted / JobsRetried accounting), or is abandoned once a
//     RetryLimit budget runs out (JobsAbandoned, goodput);
//   - sentinel-only strategies react through load words alone, while
//     the +fa variants subscribe to the machine's PEFailed/PERecovered
//     events — shedding queue ahead of the evacuation flood and
//     backfilling recovered PEs immediately.
//
// Recovery is reported in both windowed-p99 keyings: completion-time
// (stragglers echo past the restore) and injection-time ("t2s inj" —
// what newly arriving jobs saw).
//
// Run with: go run ./examples/scenario
package main

import (
	"fmt"
	"os"

	"cwnsim/internal/experiments"
	"cwnsim/internal/report"
	"cwnsim/internal/scenario"
)

func run(ss experiments.StrategySpec, script string, retryLimit int) *experiments.Result {
	spec := experiments.RunSpec{
		Topo:           experiments.Grid(10),
		Workload:       experiments.Fib(9),
		Strategy:       ss,
		Arrival:        experiments.PoissonArrivals(25, 600),
		Warmup:         1000,
		SampleInterval: 250,
		Scenario:       script,
		RetryLimit:     retryLimit,
	}
	if retryLimit > 0 {
		spec.RetryBackoff = 50
	}
	r, err := spec.ExecuteErr()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scenario example:", err)
		os.Exit(1)
	}
	return r
}

func settleCell(rec *scenario.Recovery) string {
	if rec.Recovered() {
		return fmt.Sprintf("%d", rec.TimeToSteady)
	}
	return "never"
}

func main() {
	const blackout = "fail:pes=25%@t=5000,recover@t=10000"
	const crash = "crash:pes=25%@t=5000,recover@t=10000"

	strategies := []experiments.StrategySpec{
		experiments.CWN(9, 2),
		{Kind: "cwn", Radius: 9, Horizon: 2, FailureAware: true},
		experiments.GM(1, 2, 20),
		{Kind: "gm", Low: 1, High: 2, Interval: 20, FailureAware: true},
		{Kind: "worksteal", Interval: 20, Threshold: 2},
		{Kind: "worksteal", Interval: 20, Threshold: 2, FailureAware: true},
	}

	fmt.Printf("25%%-PE blackout on grid-10x10, fib(9) jobs, Poisson arrivals (gap 25)\n")
	fmt.Printf("scenario: %s\n\n", blackout)

	tb := report.NewTable("recovery through the blackout (fail: evacuating)",
		"strategy", "jobs done", "requeued", "baseline p99", "peak p99", "t2s done", "t2s inj", "eff util%")
	util := report.NewChart("mean ready-queue length over time (blackout t=5000..10000)", "virtual time", "mean queue length")
	markers := []rune{'c', 'C', 'g', 'G', 'w', 'W'}

	for i, ss := range strategies {
		r := run(ss, blackout, 0)
		done := fmt.Sprintf("%d/%d", r.Stats.JobsDone, r.Stats.JobsInjected)
		if r.Saturated() {
			done += "*"
		}
		tb.AddRow(ss.Label(), done, r.Requeued,
			fmt.Sprintf("%.0f", r.Recovery.BaselineP99), fmt.Sprintf("%.0f", r.Recovery.PeakP99),
			settleCell(r.Recovery), settleCell(r.RecoveryInj), fmt.Sprintf("%.1f", r.EffUtil))

		q := r.Stats.QueueLen
		q.Label = ss.Label()
		util.Add(&q, markers[i])
	}
	tb.Render(os.Stdout)
	fmt.Println()
	util.Render(os.Stdout)

	// The same disaster as a crash: state is lost, jobs abort and
	// retry, and the jobs-lost accounting becomes non-trivial. Each
	// strategy runs twice — unbounded retry (the pre-policy behavior,
	// goodput 1 unless saturated) and with a 2-retry budget plus
	// backoff, where the machine abandons unlucky jobs and goodput
	// prices the availability it gave up.
	fmt.Printf("\nsame disaster with state loss\nscenario: %s\n\n", crash)
	ct := report.NewTable("recovery through the crash (crash: state loss)",
		"strategy", "retry policy", "jobs done", "lost goals", "aborted", "retried", "abandoned", "goodput", "peak p99", "t2s done", "t2s inj")
	for _, ss := range []experiments.StrategySpec{
		experiments.CWN(9, 2),
		{Kind: "cwn", Radius: 9, Horizon: 2, FailureAware: true},
	} {
		for _, limit := range []int{0, 2} {
			r := run(ss, crash, limit)
			policy := "unbounded"
			if limit > 0 {
				policy = fmt.Sprintf("limit %d +backoff", limit)
			}
			done := fmt.Sprintf("%d/%d", r.Stats.JobsDone, r.Stats.JobsInjected)
			if r.Saturated() {
				done += "*"
			}
			ct.AddRow(ss.Label(), policy, done, r.GoalsLost, r.JobsAborted, r.JobsRetried,
				r.JobsAbandoned, fmt.Sprintf("%.3f", r.Goodput),
				fmt.Sprintf("%.0f", r.Recovery.PeakP99),
				settleCell(r.Recovery), settleCell(r.RecoveryInj))
		}
	}
	ct.Render(os.Stdout)
}

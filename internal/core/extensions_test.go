package core

import (
	"testing"

	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func TestDiffusionSpreadsWork(t *testing.T) {
	tree := workload.NewFib(12)
	st := mustRun(t, topology.NewGrid(4, 4), tree, NewDiffusion(20))
	busy := 0
	for i := range st.BusyPerPE {
		if st.BusyPerPE[i] > 0 {
			busy++
		}
	}
	if busy < 8 {
		t.Errorf("diffusion reached only %d/16 PEs", busy)
	}
	if st.Speedup() <= 1.5 {
		t.Errorf("diffusion speedup %.2f, want > 1.5", st.Speedup())
	}
}

func TestDiffusionConservation(t *testing.T) {
	tree := workload.NewFib(11)
	st := mustRun(t, topology.NewDLM(5, 5, 5), tree, NewDiffusion(20))
	if st.GoalsExecuted != int64(tree.Count()) {
		t.Errorf("executed %d goals, want %d", st.GoalsExecuted, tree.Count())
	}
	if st.GoalHops.Total() != int64(tree.Count()) {
		t.Errorf("hop histogram total %d, want %d", st.GoalHops.Total(), tree.Count())
	}
}

func TestDiffusionBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDiffusion(0) did not panic")
		}
	}()
	NewDiffusion(0)
}

func TestIdealBeatsNeighborhoodSchemes(t *testing.T) {
	// Perfect information must not lose to neighborhood information on
	// a mid-sized machine: Ideal >= GM, and Ideal at least competitive
	// with CWN (within 25% — Ideal pays full shortest-path routing for
	// every goal).
	tree := workload.NewFib(13)
	topo := topology.NewGrid(5, 5)
	ideal := mustRun(t, topo, tree, NewIdeal())
	gm := mustRun(t, topo, tree, PaperGMGrid())
	cwn := mustRun(t, topo, tree, PaperCWNGrid())
	if ideal.Speedup() < gm.Speedup() {
		t.Errorf("Ideal %.2f < GM %.2f", ideal.Speedup(), gm.Speedup())
	}
	if ideal.Speedup() < cwn.Speedup()*0.75 {
		t.Errorf("Ideal %.2f far below CWN %.2f — oracle should be competitive",
			ideal.Speedup(), cwn.Speedup())
	}
}

func TestIdealOnSinglePE(t *testing.T) {
	tree := workload.NewFib(8)
	st := mustRun(t, topology.NewSingle(), tree, NewIdeal())
	if st.Speedup() != 1.0 {
		t.Errorf("single-PE ideal speedup %.2f, want 1", st.Speedup())
	}
}

func TestIdealRoutesMultiHop(t *testing.T) {
	// On a ring the least-loaded PE is often several hops away; goals
	// must arrive (and the net displacement histogram must see distances
	// greater than 1).
	tree := workload.NewFib(11)
	st := mustRun(t, topology.NewRing(8), tree, NewIdeal())
	if st.GoalDist.Max() < 2 {
		t.Errorf("ideal never placed beyond neighbors (max dist %d)", st.GoalDist.Max())
	}
}

func TestHeterogeneousMachine(t *testing.T) {
	// Half-speed PEs: the balancer must still complete correctly, and
	// the fast PEs should absorb more work than the slow ones.
	tree := workload.NewFib(13)
	topo := topology.NewGrid(4, 4)
	cfg := machine.DefaultConfig()
	cfg.PESpeeds = make([]float64, 16)
	for i := range cfg.PESpeeds {
		if i%2 == 0 {
			cfg.PESpeeds[i] = 1.0
		} else {
			cfg.PESpeeds[i] = 0.25
		}
	}
	st := machine.New(topo, tree, NewCWN(4, 1), cfg).Run()
	if !st.Completed {
		t.Fatal("incomplete")
	}
	if st.Result != tree.Eval() {
		t.Fatalf("result %d, want %d", st.Result, tree.Eval())
	}
	var fastGoals, slowGoals int64
	for i := 0; i < 16; i++ {
		// Goals executed per PE are not exported; approximate with busy
		// time normalized by speed (busy time scales with 1/speed).
		if i%2 == 0 {
			fastGoals += int64(st.BusyPerPE[i])
		} else {
			slowGoals += int64(float64(st.BusyPerPE[i]) * 0.25)
		}
	}
	if fastGoals <= slowGoals {
		t.Errorf("fast PEs did %d work units vs slow %d — balancer ignored speed",
			fastGoals, slowGoals)
	}
}

func TestHeterogeneousValidation(t *testing.T) {
	topo := topology.NewGrid(2, 2)
	tree := workload.NewFib(5)
	for i, speeds := range [][]float64{{1, 1}, {1, 1, 1, 0}, {1, 1, 1, -2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			cfg := machine.DefaultConfig()
			cfg.PESpeeds = speeds
			machine.New(topo, tree, NewLocal(), cfg)
		}()
	}
}

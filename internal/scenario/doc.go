// Package scenario scripts dynamic-environment perturbations into a
// run: a deterministic timeline of events the machine replays during
// the simulation. The paper compares CWN and the Gradient Model on a
// uniform, static machine; this package supplies the missing axis —
// how a *dynamic* load-distribution method re-distributes after the
// environment shifts under it.
//
// A Script is an ordered list of Events, each firing at a virtual
// time:
//
//   - SlowPE / RestorePE   rescale PE service speed mid-run (in-flight
//     service is rescaled proportionally, not restarted)
//   - FailPE / RecoverPE   compute blackout: the PE stops serving, its
//     queued goals are evacuated to the nearest live PE, and arriving
//     goals are redirected; pending tasks and queued responses freeze
//     in place until recovery (the communication co-processor stays
//     up, so routing through a failed PE still works)
//   - CrashPE              crash with state loss: queued and in-flight
//     goals, queued responses and pending tasks are destroyed; every
//     job that lost state aborts and is retried — from its last
//     checkpoint frontier when checkpointing is scripted, from its
//     root otherwise — or abandoned once Config.RetryLimit runs out.
//     RecoverPE brings a crashed PE back, empty
//   - DegradeLink / RestoreLink   multiply a link's occupancy time, or
//     (factor 0) take it down entirely — messages queue at the sender
//     and flush in order on restore
//   - LoadShock   multiply the arrival process's offered rate for all
//     subsequently drawn inter-arrival gaps
//   - CheckpointTick   periodic snapshot: every live job's execution
//     position becomes durable, and every live PE pays the scripted
//     cost (see "Checkpoint semantics" below)
//   - Chaos       a random-failure generator rather than a concrete
//     event: exponential MTBF/MTTR processes over uniformly chosen
//     PEs — or uniformly chosen failure *domains* (see below) — drawn
//     from a dedicated salted stream of the generator seed.
//     Script.Expand resolves it into a concrete fail/recover (or
//     crash-mode) timeline at machine construction — the same seed,
//     machine size and horizon always produce the identical timeline
//
// Scripts are plain data: build them programmatically or parse the
// compact text form used by spec files and the CLI, e.g.
//
//	fail:pes=25%@t=5000,recover@t=10000
//	crash:pes=25%@t=5000,recover@t=10000
//	slow:pes=0+1:x=0.5@t=2000,restore:pes=0+1@t=4000
//	degradelink:a=0:b=1:x=0@t=100,restorelink:a=0:b=1@t=300
//	shock:x=3@t=1000,shock:x=1@t=2000
//	checkpoint:every=2000:cost=5@t=0
//	chaos:mtbf=3000:mttr=800@seed=7
//	chaos:mtbf=3000:mttr=800:crash:domain=rack:8@seed=7
//	chaos:mtbf=3000:mttr=800:domain=block:4x4@seed=7
//
// An empty (or nil) Script schedules nothing and leaves a run
// bit-for-bit identical to one without a scenario — pinned by
// regression test — so the scripted machinery costs nothing when
// unused.
//
// # Failure domains
//
// Real machines do not fail one PE at a time: a rack loses power, a
// backplane drops a contiguous block. The chaos generator's domain
// modes draw correlated strikes with that blast radius. domain=rack:N
// partitions the index space into contiguous runs of N PEs;
// domain=block:AxB tiles a row-major ceil-sqrt grid of the machine
// into AxB rectangles. Each strike picks one domain uniformly, fails
// (or crashes) every live member at the same instant, and repairs the
// whole domain together after an exponential MTTR draw — a correlated
// blackout with a shared RecoverPE. Domain arithmetic is closed-form
// (pure index math), so domain chaos runs unchanged on the implicit
// million-PE topologies; the generator never strikes the last live
// domain, keeping the machine serviceable. Correlated strikes are the
// stress test for locality-aware re-steering: a failure-aware strategy
// that evacuates one PE's neighborhood must now survive losing the
// whole neighborhood at once, and a spatially sharded run sees entire
// shard blocks go dark inside one window.
//
// # Checkpoint semantics
//
// checkpoint:every=E:cost=C@t=0 schedules a CheckpointTick every E
// virtual units. At each tick, every live job's execution position (its
// count of executed goals, maintained only while a crash script is
// live) becomes the job's durable frontier, and every live PE pays C:
// a busy PE's in-flight service extends by C, an idle PE accrues debt
// paid at its next service start — snapshotting is not free, which is
// the entire tradeoff. When a crash later aborts a job, the retry
// resumes from the durable frontier rather than the root: goals of the
// new attempt that start service before the replay horizon run at one
// unit each (re-deriving state is cheaper than computing it), and full
// cost resumes past the frontier. The checkpoint-interval sweep in
// cmd/bench pins the resulting U-curve: too-rare snapshots re-lose
// work to every crash, too-frequent ones tax every service; some
// middle interval strictly beats both.
//
// # Retry and abandonment policy
//
// Unbounded retry (the default, Config.RetryLimit == 0) means a
// crashed job is re-injected as often as it takes: JobsRetried ==
// JobsAborted always, and availability is unmeasurable because the
// machine never gives up. A positive RetryLimit bounds the budget:
// each abort either re-injects the job (JobsRetried, after an optional
// attempt-count × Config.RetryBackoff delay) or — once the job has
// been aborted more than RetryLimit times — abandons it for good
// (JobsAbandoned): the job leaves the system uncompleted, exactly what
// Stats.Goodput (JobsDone / JobsInjected) prices. The ledger balances
// machine-wide in every run mode: JobsRetried + JobsAbandoned ==
// JobsAborted, pinned by test and by the cmd/bench retry-ledger gate.
//
// Availability transitions also feed the machine's event-driven
// strategy API: failing/recovering PEs announce PEFailed/PERecovered
// with their immediate sentinel broadcast, and link outages notify
// their endpoints — strategies opting in (machine.FailureAware) can
// re-steer the moment the environment shifts instead of waiting for
// the next periodic load word.
//
// Recovery analysis: AnalyzeRecovery turns a windowed sojourn-p99
// series into the subsystem's headline metrics — the pre-disruption
// baseline p99, the peak during the disruption, and the time after the
// last restore event until the p99 holds steady at baseline again. Two
// keyings of the series exist: completion-time windows
// (Stats.SojournWindows, where jobs injected during the disruption
// echo into post-restore windows as they straggle home) and
// injection-time windows (Stats.InjSojournWindows, isolating what
// newly arriving jobs experienced); runs report both. Both keyings,
// and the rest of the scenario accounting, fold through the sharded
// merge path: a scripted run under Config.Shards reports the same
// recovery metrics surface as a sequential one.
package scenario

package experiments

import "fmt"

// ResultSet indexes results by (workload, topology, strategy family) for
// the table formatters.
type ResultSet struct {
	byKey map[string]*Result
}

func key(w WorkloadSpec, t TopoSpec, stratKind, arrival string) string {
	return fmt.Sprintf("%s|%s|%s|%s", w.Label(), t.Label(), stratKind, arrival)
}

// Index builds a ResultSet. When several results share a key (e.g.
// repeated seeds) the last one wins. Results are indexed by arrival
// process too, so stream sweeps at several rates do not clobber each
// other. nil results (failed runs from RunAll) are skipped.
func Index(results []*Result) *ResultSet {
	rs := &ResultSet{byKey: make(map[string]*Result, len(results))}
	for _, r := range results {
		if r == nil {
			continue
		}
		rs.byKey[key(r.Spec.Workload, r.Spec.Topo, r.Spec.Strategy.Kind, r.Spec.Arrival.Label())] = r
	}
	return rs
}

// Get returns the single-job result for a configuration, or nil.
func (rs *ResultSet) Get(w WorkloadSpec, t TopoSpec, stratKind string) *Result {
	return rs.byKey[key(w, t, stratKind, SingleArrival().Label())]
}

// GetArrival returns the result for a stream configuration, or nil.
func (rs *ResultSet) GetArrival(w WorkloadSpec, t TopoSpec, stratKind string, a ArrivalSpec) *Result {
	return rs.byKey[key(w, t, stratKind, a.Label())]
}

package topology

import "fmt"

// NewRing returns a cycle of n PEs (n >= 3), each linked to its two
// neighbors. Diameter floor(n/2). Useful as a worst-case large-diameter
// network in tests and ablations.
func NewRing(n int) *Topology {
	if n < 3 {
		panic("topology: ring needs at least 3 PEs")
	}
	var chans []Channel
	for i := 0; i < n; i++ {
		chans = append(chans, Channel{Members: []int{i, (i + 1) % n}})
	}
	return build(fmt.Sprintf("ring-%d", n), n, chans)
}

// NewComplete returns a fully connected network of n PEs: the idealized
// (non-scalable) global-communication machine the paper argues against.
// With n == 1 it is the degenerate single-PE machine.
func NewComplete(n int) *Topology {
	if n <= 0 {
		panic("topology: complete graph needs at least 1 PE")
	}
	var chans []Channel
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			chans = append(chans, Channel{Members: []int{i, j}})
		}
	}
	return build(fmt.Sprintf("complete-%d", n), n, chans)
}

// NewSingle returns the one-PE machine: no channels, every strategy
// degenerates to local execution.
func NewSingle() *Topology {
	return build("single", 1, nil)
}

// NewStar returns a hub-and-spoke network: PE 0 is the hub, PEs 1..n-1
// are leaves. Models a centralized load-distribution bottleneck.
func NewStar(n int) *Topology {
	if n < 2 {
		panic("topology: star needs at least 2 PEs")
	}
	var chans []Channel
	for i := 1; i < n; i++ {
		chans = append(chans, Channel{Members: []int{0, i}})
	}
	return build(fmt.Sprintf("star-%d", n), n, chans)
}

// NewTree returns a complete k-ary tree with the given number of levels
// (levels >= 1; levels == 1 is a single PE... rejected here, use
// NewSingle). Node i's children are k*i+1 .. k*i+k.
func NewTree(arity, levels int) *Topology {
	if arity < 2 {
		panic("topology: tree arity must be at least 2")
	}
	if levels < 2 {
		panic("topology: tree needs at least 2 levels")
	}
	n := 0
	pow := 1
	for l := 0; l < levels; l++ {
		n += pow
		pow *= arity
	}
	var chans []Channel
	for i := 0; i < n; i++ {
		for c := arity*i + 1; c <= arity*i+arity && c < n; c++ {
			chans = append(chans, Channel{Members: []int{i, c}})
		}
	}
	return build(fmt.Sprintf("tree-a%d-l%d", arity, levels), n, chans)
}

// NewBusGlobal returns n PEs on one shared bus: every PE is one hop from
// every other, but all communication contends for a single channel.
// An extreme contention stress case for the machine model.
func NewBusGlobal(n int) *Topology {
	if n < 2 {
		panic("topology: global bus needs at least 2 PEs")
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return build(fmt.Sprintf("bus-%d", n), n, []Channel{{Members: members}})
}
